module nmvgas

go 1.22
