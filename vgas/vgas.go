// Package vgas is the public API of the network-managed virtual global
// address space runtime.
//
// # Overview
//
// A World is a set of localities connected by a network substrate. Memory
// is allocated in blocks named by 64-bit global virtual addresses (GVA);
// computation moves to data as parcels (active messages) that run
// registered actions at a block's current owner and synchronize through
// LCOs (futures, gates, reductions). Blocks can migrate between
// localities without changing their address — and the Mode selects who
// keeps the translation state that makes that work:
//
//   - PGAS: static arithmetic translation, no migration (baseline);
//   - AGASSW: software-managed AGAS — host-side caches and host
//     forwarding (baseline);
//   - AGASNM: network-managed AGAS — NIC-resident translation,
//     in-network forwarding, NIC table updates (the paper's system).
//
// # Mode selection
//
// Set Config.Mode directly, or work with address-space descriptors:
// Spaces() enumerates every built-in space with its capabilities,
// SpaceFor(mode) returns one descriptor, and NewWorldFor(spec, cfg)
// builds a world running it. ParseMode/ParseEngine turn the String()
// names ("pgas", "agas-sw", "agas-nm"; "des", "go") back into values for
// command-line flags. Gate mode-dependent behaviour on the Caps fields
// (Migration, NICTranslation, HostTranslation) instead of comparing Mode
// values; a Config with RequireMigration set is rejected by NewWorld
// when the selected space cannot move blocks.
//
// Two engines execute the same protocol code: EngineDES is a
// deterministic discrete-event simulation with a calibrated cost model
// (what the experiments use), and EngineGo runs localities as real
// goroutines.
//
// # Quickstart
//
//	w, _ := vgas.NewWorld(vgas.Config{Ranks: 4, Mode: vgas.AGASNM})
//	hello := w.Register("hello", func(c *vgas.Ctx) { c.Continue(c.P.Payload) })
//	w.Start()
//	lay, _ := w.AllocCyclic(0, 4096, 8)
//	fut := w.Proc(0).Call(lay.BlockAt(3), hello, []byte("hi"))
//	reply := w.MustWait(fut)
//
// See the examples/ directory for complete programs.
package vgas

import (
	"nmvgas/internal/agas"
	"nmvgas/internal/gas"
	"nmvgas/internal/lco"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// Core world types.
type (
	// World is one running system of localities.
	World = runtime.World
	// Config configures NewWorld.
	Config = runtime.Config
	// Mode selects the address-space design.
	Mode = runtime.Mode
	// EngineKind selects discrete-event or goroutine execution.
	EngineKind = runtime.EngineKind
	// Ctx is the context handed to actions.
	Ctx = runtime.Ctx
	// Action is a parcel handler.
	Action = runtime.Action
	// Proc is a driver-side handle for issuing operations from a
	// locality.
	Proc = runtime.Proc
	// LCORef names an LCO in the global address space.
	LCORef = runtime.LCORef
	// Locality is one simulated compute node.
	Locality = runtime.Locality
	// AddressSpace is the per-locality translation strategy interface.
	AddressSpace = runtime.AddressSpace
	// Caps describes what an address space can do.
	Caps = runtime.Caps
	// SpaceSpec pairs a Mode with its address space's capabilities.
	SpaceSpec = runtime.SpaceSpec
)

// Address-space types.
type (
	// GVA is a 64-bit global virtual address.
	GVA = gas.GVA
	// BlockID is a globally unique block number.
	BlockID = gas.BlockID
	// Layout describes one allocation's distribution.
	Layout = gas.Layout
	// Dist selects a block distribution.
	Dist = gas.Dist
)

// Messaging types.
type (
	// Parcel is an active message.
	Parcel = parcel.Parcel
	// ActionID names a registered action.
	ActionID = parcel.ActionID
	// Combiner folds reduction contributions.
	Combiner = lco.Combiner
	// Model is the simulated fabric's cost model.
	Model = netsim.Model
	// VTime is simulated time in nanoseconds.
	VTime = netsim.VTime
	// Policy configures NIC behaviour in AGASNM mode.
	Policy = netsim.Policy
	// Topology selects the simulated fabric shape.
	Topology = netsim.Topology
	// CoalesceConfig enables parcel batching.
	CoalesceConfig = runtime.CoalesceConfig

	// HeatConfig enables sampled access-heat tracking (Config.Heat) for
	// the load-balancing policy engine.
	HeatConfig = runtime.HeatConfig
	// PutSeg is one fragment of a vectored put (Proc.PutVecWait).
	PutSeg = runtime.PutSeg
	// GetSeg is one fragment of a vectored get (Proc.GetVecWaitInto).
	GetSeg = runtime.GetSeg
	// TraceEvent is one observable protocol step (see World.SetTracer).
	TraceEvent = runtime.TraceEvent
	// TraceKind classifies trace events.
	TraceKind = runtime.TraceKind
	// WorldStats aggregates runtime counters.
	WorldStats = runtime.WorldStats
	// Coherence selects the replica coherence policy (Config.Coherence).
	Coherence = agas.Coherence
	// MemberState is one locality's lifecycle state in the membership
	// table (see World.MemberState, World.Kill, World.Retire, World.Join).
	MemberState = runtime.MemberState
	// MembershipStats reports the elastic-membership counters
	// (WorldStats.Membership).
	MembershipStats = runtime.MembershipStats
	// PulseConfig enables the runtime pulse (Config.Pulse): a periodic
	// in-runtime control tick driving watchdogs and OnPulse clients.
	PulseConfig = runtime.PulseConfig
	// PulseInfo is handed to OnPulse clients on each tick.
	PulseInfo = runtime.PulseInfo
	// WatchdogConfig tunes the invariant monitors evaluated each pulse
	// (PulseConfig.Watchdogs).
	WatchdogConfig = runtime.WatchdogConfig
	// WatchLevel is a watchdog's thresholded state (ok/warn/critical).
	WatchLevel = runtime.WatchLevel
	// WatchdogStatus is one monitor's state as of the last pulse.
	WatchdogStatus = runtime.WatchdogStatus
	// WatchdogEvent is delivered to OnWatchdogTrip callbacks when a
	// monitor escalates.
	WatchdogEvent = runtime.WatchdogEvent
	// HealthReport is the aggregated watchdog state (World.Health, and
	// the /healthz endpoint's JSON body).
	HealthReport = runtime.HealthReport
	// FaultPlan schedules message-level faults and whole-locality
	// kill/restart events on the fabric (Config.Faults).
	FaultPlan = netsim.FaultPlan
	// ReliabilityConfig tunes reliable delivery (Config.Reliability);
	// Force enables it even without a fault plan, which crash recovery
	// requires.
	ReliabilityConfig = runtime.ReliabilityConfig
)

// Replica coherence policies (see World.ReplicateLive).
const (
	// WriteInvalidate fans invalidations out to replica holders on every
	// master write; stale holders refill on demand (the default).
	WriteInvalidate = agas.WriteInvalidate
	// WriteUpdate pushes the written block's new contents to every holder.
	WriteUpdate = agas.WriteUpdate
	// RWLease skips per-write coherence traffic; holders re-validate when
	// their time-bounded lease (Config.LeaseNs) expires.
	RWLease = agas.RWLease
)

// Modes.
const (
	PGAS   = runtime.PGAS
	AGASSW = runtime.AGASSW
	AGASNM = runtime.AGASNM
)

// Engines.
const (
	EngineDES = runtime.EngineDES
	EngineGo  = runtime.EngineGo
)

// Distributions.
const (
	DistLocal   = gas.DistLocal
	DistCyclic  = gas.DistCyclic
	DistBlocked = gas.DistBlocked
)

// Builtin actions.
const (
	// LCOSet delivers a payload into the LCO block it targets.
	LCOSet = runtime.ALCOSet
	// Nop does nothing (barriers, wiring).
	Nop = runtime.ANop
)

// Trace event kinds (see World.SetTracer and internal/trace).
const (
	TraceSend         = runtime.TraceSend
	TraceExec         = runtime.TraceExec
	TraceHostForward  = runtime.TraceHostForward
	TraceHostNack     = runtime.TraceHostNack
	TraceNICNack      = runtime.TraceNICNack
	TraceMigrateStart = runtime.TraceMigrateStart
	TraceMigrateDone  = runtime.TraceMigrateDone
	TraceQueued       = runtime.TraceQueued
)

// Migration status codes (decode a Migrate future with MigrateStatus).
const (
	MigrateOK        = runtime.MigrateOK
	MigratePinned    = runtime.MigratePinned
	MigrateBadTarget = runtime.MigrateBadTarget
)

// Watchdog levels (see World.Health and PulseConfig.Watchdogs).
const (
	WatchOK       = runtime.WatchOK
	WatchWarn     = runtime.WatchWarn
	WatchCritical = runtime.WatchCritical
)

// Watchdog catalog names (WatchdogStatus.Name, metric labels).
const (
	WatchQueueDepth     = runtime.WatchQueueDepth
	WatchRetransStorm   = runtime.WatchRetransStorm
	WatchUnackedBacklog = runtime.WatchUnackedBacklog
	WatchMemberDwell    = runtime.WatchMemberDwell
	WatchHeatImbalance  = runtime.WatchHeatImbalance
	WatchMigrationStall = runtime.WatchMigrationStall
)

// Membership lifecycle states (see World.MemberState).
const (
	MemberAlive    = runtime.MemberAlive
	MemberSuspect  = runtime.MemberSuspect
	MemberDraining = runtime.MemberDraining
	MemberDead     = runtime.MemberDead
	MemberJoining  = runtime.MemberJoining
)

// NewWorld builds a world; see Config.
func NewWorld(cfg Config) (*World, error) { return runtime.NewWorld(cfg) }

// NewWorldFor builds a world running spec's address space (cfg.Mode is
// overridden by the spec).
func NewWorldFor(spec SpaceSpec, cfg Config) (*World, error) {
	return runtime.NewWorldFor(spec, cfg)
}

// Spaces enumerates every built-in address space in canonical order.
func Spaces() []SpaceSpec { return runtime.Spaces() }

// SpaceFor returns the address-space descriptor for m.
func SpaceFor(m Mode) SpaceSpec { return runtime.SpaceFor(m) }

// ParseMode parses a Mode.String name ("pgas", "agas-sw", "agas-nm").
func ParseMode(s string) (Mode, error) { return runtime.ParseMode(s) }

// ParseEngine parses an EngineKind.String name ("des", "go").
func ParseEngine(s string) (EngineKind, error) { return runtime.ParseEngine(s) }

// ParseCoherence parses a Coherence.String name ("write-invalidate",
// "write-update", "rw-lease").
func ParseCoherence(s string) (Coherence, error) { return agas.ParseCoherence(s) }

// ParseFaultPlan parses a compact fault-plan spec such as
// "drop=0.05,kill=1:50000,restart=1:60000000" (see netsim.ParseFaultPlan).
func ParseFaultPlan(s string) (FaultPlan, error) { return netsim.ParseFaultPlan(s) }

// MigrateStatus decodes a Migrate future's value.
func MigrateStatus(v []byte) int64 { return runtime.MigrateStatus(v) }

// DefaultModel returns the calibrated fabric cost model.
func DefaultModel() Model { return netsim.DefaultModel() }

// DefaultPolicy returns the paper's NIC policy: in-network forwarding
// with pushed table updates.
func DefaultPolicy() Policy { return netsim.DefaultPolicy() }

// Reduction combiners over little-endian int64 records.
var (
	SumI64 = lco.SumI64
	MinI64 = lco.MinI64
	MaxI64 = lco.MaxI64
)

// EncodeI64 builds the 8-byte record the int64 combiners consume.
func EncodeI64(v int64) []byte { return lco.EncodeI64(v) }

// DecodeI64 parses an 8-byte little-endian record.
func DecodeI64(b []byte) int64 { return lco.DecodeI64(b) }

// EncodeLayout serializes a layout for transport through an LCO (the
// AllocAsync result format).
func EncodeLayout(l Layout) []byte { return runtime.EncodeLayout(l) }

// DecodeLayout parses an EncodeLayout record.
func DecodeLayout(b []byte) Layout { return runtime.DecodeLayout(b) }

// NewTwoTier builds an oversubscribed two-tier topology (pods of podSize
// behind an oversub× spine).
func NewTwoTier(podSize int, oversub float64) Topology {
	return netsim.NewTwoTier(podSize, oversub)
}

// NewFatTree builds a hierarchical fat-tree: leaves of leafSize ranks,
// podLeaves leaves per pod, with per-level oversubscription (edge at the
// aggregation hop, edge×core across the core). Hop distances are 1
// (intra-leaf), 3 (intra-pod), and 5 (inter-pod).
func NewFatTree(leafSize, podLeaves int, edgeOversub, coreOversub float64) Topology {
	return netsim.NewFatTree(leafSize, podLeaves, edgeOversub, coreOversub)
}

// NewDragonfly builds a dragonfly: all-to-all groups of groupSize ranks
// joined by globalOversub×-tapered global links. Hop distances are 1
// (intra-group) and 3 (inter-group).
func NewDragonfly(groupSize int, globalOversub float64) Topology {
	return netsim.NewDragonfly(groupSize, globalOversub)
}

// ParseTopology builds a fabric for the given rank count from a spec
// string: "crossbar", "two-tier[:pod=N,oversub=F]",
// "fat-tree[:leaf=N,pod=N,oversub=F]", or "dragonfly[:group=N,oversub=F]"
// (omitted parameters default to balanced √ranks-sized groupings). Use
// the result as Config.Topology.
func ParseTopology(spec string, ranks int) (Topology, error) {
	return netsim.ParseTopology(spec, ranks)
}
