package vgas_test

import (
	"fmt"
	"log"

	"nmvgas/vgas"
)

// ExampleNewWorld shows the core loop: allocate, act on data where it
// lives, migrate, and keep using the same address.
func ExampleNewWorld() {
	w, err := vgas.NewWorld(vgas.Config{Ranks: 4, Mode: vgas.AGASNM})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Stop()

	first := w.Register("first", func(c *vgas.Ctx) {
		c.Continue([]byte{c.Local(c.P.Target)[0]})
	})
	w.Start()

	lay, err := w.AllocCyclic(0, 4096, 8)
	if err != nil {
		log.Fatal(err)
	}
	g := lay.BlockAt(5)
	w.MustWait(w.Proc(0).Put(g, []byte{42}))
	v := w.MustWait(w.Proc(3).Call(g, first, nil))
	fmt.Println("before migration:", v[0])

	w.MustWait(w.Proc(0).Migrate(g, 2))
	v = w.MustWait(w.Proc(3).Call(g, first, nil))
	fmt.Println("after migration: ", v[0])
	// Output:
	// before migration: 42
	// after migration:  42
}

// ExampleWorld_NewReduce shows LCO-based reduction across localities.
func ExampleWorld_NewReduce() {
	w, err := vgas.NewWorld(vgas.Config{Ranks: 4, Mode: vgas.PGAS})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Stop()
	give := w.Register("give", func(c *vgas.Ctx) {
		c.Continue(vgas.EncodeI64(int64(c.Rank() + 1)))
	})
	w.Start()

	red := w.NewReduce(0, 4, vgas.SumI64)
	for r := 0; r < 4; r++ {
		r := r
		w.Proc(r).Run(func() {
			w.Locality(r).SendParcel(&vgas.Parcel{
				Action: give, Target: w.LocalityGVA(r),
				CAction: vgas.LCOSet, CTarget: red.G,
			})
		})
	}
	fmt.Println("sum:", vgas.DecodeI64(w.MustWait(red)))
	// Output:
	// sum: 10
}
