package vgas_test

import (
	"bytes"
	"testing"

	"nmvgas/internal/trace"
	"nmvgas/vgas"
)

// These tests exercise the extension features end-to-end through the
// public API: async allocation, read-only replication, coalescing,
// tracing, topology, and diagnostics.

func TestFacadeAsyncAllocAndFree(t *testing.T) {
	w, err := vgas.NewWorld(vgas.Config{Ranks: 3, Mode: vgas.AGASNM})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	w.Start()
	lay := vgas.DecodeLayout(w.MustWait(w.Proc(1).AllocAsync(512, 6, vgas.DistCyclic)))
	if lay.NBlocks != 6 {
		t.Fatalf("layout %+v", lay)
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(2), []byte{3}))
	got := w.MustWait(w.Proc(2).Get(lay.BlockAt(2), 1))
	if got[0] != 3 {
		t.Fatal("async allocation unusable")
	}
	w.MustWait(w.Proc(0).FreeAsync(lay))
	for r := 0; r < 3; r++ {
		if _, ok := w.Locality(r).Store().Get(lay.BlockAt(2).Block()); ok {
			t.Fatal("block survived FreeAsync")
		}
	}
}

func TestFacadeReplication(t *testing.T) {
	w, err := vgas.NewWorld(vgas.Config{Ranks: 4, Mode: vgas.AGASNM})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	w.Start()
	lay, err := w.AllocLocal(0, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(0), []byte("ro")))
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		got := w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 2))
		if !bytes.Equal(got, []byte("ro")) {
			t.Fatalf("rank %d replica read %q", r, got)
		}
	}
}

func TestFacadeCoalescingAndTracing(t *testing.T) {
	w, err := vgas.NewWorld(vgas.Config{
		Ranks:    3,
		Mode:     vgas.AGASNM,
		Coalesce: vgas.CoalesceConfig{MaxParcels: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	ring := trace.Attach(w, 256)
	echo := w.Register("echo", func(c *vgas.Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	gate := w.NewAndGate(0, n)
	w.Proc(0).Run(func() {
		for i := 0; i < n; i++ {
			w.Locality(0).SendParcel(&vgas.Parcel{
				Action: echo, Target: lay.BlockAt(0),
				CAction: vgas.LCOSet, CTarget: gate.G,
			})
		}
	})
	w.MustWait(gate)
	if ring.CountKind(vgas.TraceSend) < n {
		t.Fatalf("trace saw %d sends", ring.CountKind(vgas.TraceSend))
	}
	if ring.CountKind(vgas.TraceExec) < n {
		t.Fatalf("trace saw %d execs", ring.CountKind(vgas.TraceExec))
	}
}

func TestFacadeTopologyAndDump(t *testing.T) {
	w, err := vgas.NewWorld(vgas.Config{
		Ranks:    8,
		Mode:     vgas.AGASNM,
		Topology: vgas.NewTwoTier(4, 2.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(7), []byte{1}))
	var sb bytes.Buffer
	if err := w.DumpState(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() == 0 {
		t.Fatal("empty dump")
	}
	if w.Stats().NetSent == 0 {
		t.Fatal("stats empty after remote put")
	}
}

func TestFacadeMigrateManyAndCallWhen(t *testing.T) {
	w, err := vgas.NewWorld(vgas.Config{Ranks: 3, Mode: vgas.AGASSW})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	echo := w.Register("echo", func(c *vgas.Ctx) { c.Continue([]byte{77}) })
	w.Start()
	lay, err := w.AllocLocal(0, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	gate, futs := w.Proc(0).MigrateMany(
		[]vgas.GVA{lay.BlockAt(0), lay.BlockAt(1), lay.BlockAt(2)},
		[]int{1, 2, 1},
	)
	w.MustWait(gate)
	for _, f := range futs {
		if vgas.MigrateStatus(f.Value()) != vgas.MigrateOK {
			t.Fatal("bulk migration failed")
		}
	}
	dep := w.NewFuture(0)
	res := w.Proc(0).CallWhen(dep, lay.BlockAt(1), echo, nil)
	w.Proc(2).Invoke(dep.G, vgas.LCOSet, nil)
	if v := w.MustWait(res); v[0] != 77 {
		t.Fatal("dependent call result wrong")
	}
}
