package vgas_test

import (
	"bytes"
	"testing"

	"nmvgas/vgas"
)

// The facade tests double as compile-time checks that the public API
// surface stays wired to the implementation.

func TestFacadeQuickstart(t *testing.T) {
	w, err := vgas.NewWorld(vgas.Config{Ranks: 4, Mode: vgas.AGASNM})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	hello := w.Register("hello", func(c *vgas.Ctx) { c.Continue(c.P.Payload) })
	w.Start()
	lay, err := w.AllocCyclic(0, 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	reply := w.MustWait(w.Proc(0).Call(lay.BlockAt(3), hello, []byte("hi")))
	if !bytes.Equal(reply, []byte("hi")) {
		t.Fatalf("reply %q", reply)
	}
}

func TestFacadeMigration(t *testing.T) {
	w, err := vgas.NewWorld(vgas.Config{Ranks: 3, Mode: vgas.AGASNM})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	w.Start()
	lay, err := w.AllocLocal(0, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	w.MustWait(w.Proc(0).Put(g, []byte{7}))
	st := w.MustWait(w.Proc(0).Migrate(g, 2))
	if vgas.MigrateStatus(st) != vgas.MigrateOK {
		t.Fatalf("status %d", vgas.MigrateStatus(st))
	}
	got := w.MustWait(w.Proc(1).Get(g, 1))
	if got[0] != 7 {
		t.Fatal("data lost")
	}
}

func TestFacadeReductionHelpers(t *testing.T) {
	if vgas.DecodeI64(vgas.EncodeI64(-5)) != -5 {
		t.Fatal("i64 helpers broken")
	}
	acc := vgas.SumI64(nil, vgas.EncodeI64(2))
	acc = vgas.SumI64(acc, vgas.EncodeI64(3))
	if vgas.DecodeI64(acc) != 5 {
		t.Fatal("SumI64 broken")
	}
}

func TestFacadeDefaults(t *testing.T) {
	if vgas.DefaultModel().Latency == 0 {
		t.Fatal("model default empty")
	}
	if !vgas.DefaultPolicy().ForwardInNetwork {
		t.Fatal("policy default wrong")
	}
	if vgas.PGAS.String() != "pgas" || vgas.AGASNM.String() != "agas-nm" {
		t.Fatal("mode constants miswired")
	}
}
