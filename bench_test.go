// Package bench holds the benchmark harness: one testing.B benchmark per
// table and figure of the reconstructed evaluation (regenerating the
// experiment on the deterministic simulator and reporting its headline
// number as a custom metric), the ablation benches DESIGN.md §5 calls
// out, and wall-clock microbenchmarks of the software substrates
// themselves.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
package bench

import (
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"nmvgas/internal/exp"
	"nmvgas/internal/gas"
	"nmvgas/internal/microbench"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
	"nmvgas/internal/sched"
	"nmvgas/internal/workloads"
	"nmvgas/vgas"
)

// benchOpts keeps experiment iterations small enough for testing.B.
func benchOpts() exp.Options { return exp.Options{Quick: true, Seed: 42} }

// runExperiment executes one registered experiment per iteration and
// reports the numeric value of the given (row, col) cell as metric.
func runExperiment(b *testing.B, id string, row, col int, metric string) {
	e, ok := exp.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		tb := e.Run(benchOpts())
		cellStr := strings.TrimSuffix(tb.Rows()[row][col], "x")
		v, err := strconv.ParseFloat(cellStr, 64)
		if err != nil {
			b.Fatalf("%s cell (%d,%d) = %q: %v", id, row, col, cellStr, err)
		}
		last = v
	}
	b.ReportMetric(last, metric)
}

// ---------------------------------------------------------------------
// One benchmark per table / figure (headline cell as custom metric).

func BenchmarkT1PutLatency(b *testing.B) { runExperiment(b, "T1", 0, 3, "nm_us_8B") }
func BenchmarkT2GetLatency(b *testing.B) { runExperiment(b, "T2", 0, 3, "nm_us_8B") }
func BenchmarkF1PutThroughput(b *testing.B) {
	runExperiment(b, "F1", 2, 3, "nm_MBs_large")
}
func BenchmarkF2ParcelRTT(b *testing.B)   { runExperiment(b, "F2", 0, 3, "nm_rtt_us_8B") }
func BenchmarkF3Translation(b *testing.B) { runExperiment(b, "F3", 0, 1, "nm_hit_rate_fit") }
func BenchmarkF4Migration(b *testing.B)   { runExperiment(b, "F4", 0, 2, "nm_migrate_us_256B") }
func BenchmarkF5GUPS(b *testing.B)        { runExperiment(b, "F5", 0, 3, "nm_Kups_2ranks") }
func BenchmarkF6Chase(b *testing.B)       { runExperiment(b, "F6", 2, 3, "nm_consolidation_x") }
func BenchmarkF7BFS(b *testing.B)         { runExperiment(b, "F7", 2, 2, "nm_rebalanced_KTEPS") }
func BenchmarkF8Stencil(b *testing.B)     { runExperiment(b, "F8", 2, 3, "nm_adaptive_x") }
func BenchmarkF9Churn(b *testing.B)       { runExperiment(b, "F9", 1, 3, "nm_Kops_under_churn") }
func BenchmarkF10Histogram(b *testing.B)  { runExperiment(b, "F10", 2, 2, "nm_placed_Kops") }
func BenchmarkT3Scaling(b *testing.B)     { runExperiment(b, "T3", 0, 3, "nm_put_us_2ranks") }
func BenchmarkT4Breakdown(b *testing.B)   { runExperiment(b, "T4", 2, 5, "nm_oneway_ns") }
func BenchmarkT5AllToAll(b *testing.B)    { runExperiment(b, "T5", 0, 3, "nm_MBs_small") }
func BenchmarkF11SSSP(b *testing.B)       { runExperiment(b, "F11", 2, 1, "nm_cyclic_ms") }
func BenchmarkF12Topology(b *testing.B)   { runExperiment(b, "F12", 0, 3, "nm_interpod_put_us") }
func BenchmarkF13Coalesce(b *testing.B)   { runExperiment(b, "F13", 1, 1, "coal4_Kups") }
func BenchmarkF14Replication(b *testing.B) {
	runExperiment(b, "F14", 2, 3, "nm_replication_x")
}

// Ablations (DESIGN.md §5).

func BenchmarkAblationForwarding(b *testing.B)   { runExperiment(b, "A1", 0, 1, "fwd_first_us") }
func BenchmarkAblationUpdatePolicy(b *testing.B) { runExperiment(b, "A2", 1, 2, "bcast_ctrl_msgs") }

// BenchmarkAblationEngines compares the same GUPS run on the two
// execution engines: the DES engine's wall-clock cost per simulated
// update vs the goroutine engine's real concurrent throughput.
func BenchmarkAblationEngines(b *testing.B) {
	for _, eng := range []runtime.EngineKind{runtime.EngineDES, runtime.EngineGo} {
		b.Run(eng.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := vgas.NewWorld(vgas.Config{Ranks: 4, Mode: vgas.AGASNM, Engine: eng})
				if err != nil {
					b.Fatal(err)
				}
				g := workloads.NewGUPS(w, "gups")
				w.Start()
				if err := g.Setup(512, 16, workloads.KeysUniform, 1); err != nil {
					b.Fatal(err)
				}
				if _, err := g.Run(100, 8); err != nil {
					b.Fatal(err)
				}
				w.Stop()
			}
		})
	}
}

// ---------------------------------------------------------------------
// Wall-clock microbenchmarks of the substrates.

func BenchmarkGVAEncodeDecode(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		g := gas.New(i&gas.MaxHome, gas.BlockID(i), uint32(i)&(gas.MaxBlockSize-1))
		sink += g.Home() + int(g.Block()) + int(g.Offset())
	}
	_ = sink
}

func BenchmarkParcelEncode(b *testing.B) {
	p := &parcel.Parcel{Action: 3, Target: gas.New(1, 2, 3), Payload: make([]byte, 64)}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = parcel.AppendEncode(buf[:0], p)
	}
}

func BenchmarkParcelDecode(b *testing.B) {
	enc := parcel.Encode(&parcel.Parcel{Action: 3, Target: gas.New(1, 2, 3), Payload: make([]byte, 64)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parcel.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransTableLookup(b *testing.B) {
	tt := netsim.NewTransTable(1024)
	for i := 0; i < 1024; i++ {
		tt.Update(gas.BlockID(i), i%8)
	}
	for i := 0; i < b.N; i++ {
		tt.Lookup(gas.BlockID(i % 1024))
	}
}

func BenchmarkTransTableUpdateWithEviction(b *testing.B) {
	tt := netsim.NewTransTable(256)
	for i := 0; i < b.N; i++ {
		tt.Update(gas.BlockID(i%4096), i%8)
	}
}

func BenchmarkDESEngineEventThroughput(b *testing.B) { microbench.DESEngineEvents(b) }

func BenchmarkSchedPoolSubmit(b *testing.B) {
	p := sched.NewPool(4, 1)
	p.Start()
	defer p.Stop()
	done := make(chan struct{})
	var n atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(func() {
			if n.Add(1) == int64(b.N) {
				close(done)
			}
		})
	}
	<-done
}

// The wall-clock fast-path microbenchmarks live in internal/microbench,
// shared with vgasbench's -bench-json emitter so `go test -bench` and
// BENCH_PR3.json report the exact same workloads.

// BenchmarkGoEnginePutThroughput measures real concurrent one-sided
// throughput on the goroutine engine (wall clock, not simulated): puts
// are pipelined through a bounded window over pooled wire buffers.
func BenchmarkGoEnginePutThroughput(b *testing.B) { microbench.GoEnginePut(b) }

// BenchmarkGoEngineGetThroughput is the blocking get round trip with a
// pooled reply buffer.
func BenchmarkGoEngineGetThroughput(b *testing.B) { microbench.GoEngineGet(b) }

// BenchmarkGoEnginePutVecThroughput writes 8 scattered fragments per op
// as one wire message with one ack.
func BenchmarkGoEnginePutVecThroughput(b *testing.B) { microbench.GoEnginePutVec(b) }

// BenchmarkGoEngineGetVecThroughput gathers 8 scattered fragments per op
// as one request/reply pair.
func BenchmarkGoEngineGetVecThroughput(b *testing.B) { microbench.GoEngineGetVec(b) }

// BenchmarkGoEngineCoalesceThroughput is the pump workload through
// 16-deep coalesced batches split by the receiving NIC path.
func BenchmarkGoEngineCoalesceThroughput(b *testing.B) { microbench.GoEngineCoalesce(b) }

// BenchmarkF16ReplicatedReads is the replica-hit read fast path: blocking
// reads of a remote-owned block served from a local live replica, with
// the runtime's get-completion percentiles as p50_ns/p95_ns/p99_ns.
func BenchmarkF16ReplicatedReads(b *testing.B) { microbench.F16ReplicatedReads(b) }

// BenchmarkGoEnginePumpThroughput is the send→deliver pump workload on
// the goroutine engine (msgs/sec and allocs/op for the whole fast path).
func BenchmarkGoEnginePumpThroughput(b *testing.B) { microbench.GoEnginePump(b) }

// BenchmarkDESEnginePutThroughput measures the wall-clock cost of one
// simulated put round trip on the DES engine.
func BenchmarkDESEnginePutThroughput(b *testing.B) { microbench.DESEnginePut(b) }

// BenchmarkGoEnginePumpMetricsThroughput is the pump with Config.Metrics
// on: compare its ns/op and allocs/op against GoEnginePumpThroughput to
// see the enabled-path observability cost; the runtime's send→exec
// percentiles are reported as p50_ns/p95_ns/p99_ns.
func BenchmarkGoEnginePumpMetricsThroughput(b *testing.B) { microbench.GoEnginePumpMetrics(b) }

// BenchmarkDESEnginePutMetricsThroughput is the simulated put round trip
// with Config.Metrics on, reporting the put-completion percentiles.
func BenchmarkDESEnginePutMetricsThroughput(b *testing.B) { microbench.DESEnginePutMetrics(b) }
