// BFS: distributed breadth-first search over a synthetic power-law graph,
// validated against a sequential reference, then accelerated by
// migration-based load balancing driven by observed block heat.
package main

import (
	"fmt"
	"log"

	"nmvgas/internal/collective"
	"nmvgas/internal/loadbal"
	"nmvgas/internal/workloads"
	"nmvgas/vgas"
)

func main() {
	const (
		ranks = 8
		n     = 4000
		deg   = 8
	)
	w, err := vgas.NewWorld(vgas.Config{Ranks: ranks, Mode: vgas.AGASNM,
		Heat: vgas.HeatConfig{Enabled: true}})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Stop()
	ops := collective.New(w)
	bfs := workloads.NewBFS(w, ops, "bfs")
	w.Start()

	g := workloads.GenGraph(n, deg, 7)
	fmt.Printf("graph: %d vertices, %d edges (zipf-skewed degrees)\n", g.N, g.Edges())
	if err := bfs.Setup(g, 64, vgas.DistCyclic); err != nil {
		log.Fatal(err)
	}

	run := func(label string) {
		start := w.Now()
		edges, levels, err := bfs.Run(0)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := w.Now() - start
		kteps := float64(edges) / (float64(elapsed) / 1e9) / 1e3
		fmt.Printf("%-12s %7d edges in %3d levels  %10.1f KTEPS\n", label, edges, levels, kteps)
	}

	run("static")

	// Validate against the sequential reference.
	ref := g.SeqBFS(0)
	for v := uint32(0); v < g.N; v++ {
		if bfs.Dist(v) != ref[v] {
			log.Fatalf("dist[%d] = %d, want %d", v, bfs.Dist(v), ref[v])
		}
	}
	fmt.Println("distances match sequential reference ✓")

	// Rebalance the distance blocks by observed heat and rerun.
	moved, err := loadbal.Rebalance(w, 0, bfs.Layout())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebalanced: %d blocks migrated by heat\n", moved)
	run("rebalanced")

	for v := uint32(0); v < g.N; v++ {
		if bfs.Dist(v) != ref[v] {
			log.Fatalf("post-rebalance dist[%d] wrong", v)
		}
	}
	fmt.Println("distances still correct after migration ✓")
}
