// Quickstart: allocate global memory, move data with one-sided ops, run
// actions at the data, and synchronize with futures — the whole public
// API in ~60 lines.
package main

import (
	"fmt"
	"log"

	"nmvgas/vgas"
)

func main() {
	// A 4-locality world with the network-managed address space, running
	// on real goroutines (EngineGo) — this is the mode a library user
	// embeds.
	w, err := vgas.NewWorld(vgas.Config{
		Ranks:  4,
		Mode:   vgas.AGASNM,
		Engine: vgas.EngineGo,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Stop()

	// Actions are registered before Start, identically on every
	// locality (one registry in-process).
	sum := w.Register("sum", func(c *vgas.Ctx) {
		data := c.Local(c.P.Target) // the block's bytes, resident here
		var s int64
		for _, b := range data[:16] {
			s += int64(b)
		}
		c.Continue(vgas.EncodeI64(s))
	})
	w.Start()

	// A cyclic allocation: 8 blocks of 4 KiB spread over the world.
	lay, err := w.AllocCyclic(0, 4096, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated %d bytes over %d blocks (%s)\n",
		lay.Bytes(), lay.NBlocks, lay.Dist)

	// One-sided put from rank 0 into block 5 (which lives on rank 1),
	// then a get from rank 3.
	g := lay.BlockAt(5)
	w.MustWait(w.Proc(0).Put(g, []byte{1, 2, 3, 4, 5, 6, 7, 8}))
	back := w.MustWait(w.Proc(3).Get(g, 8))
	fmt.Printf("round-tripped bytes: %v\n", back)

	// A parcel: run `sum` at the block's owner; the result arrives
	// through a future.
	res := w.MustWait(w.Proc(2).Call(g, sum, nil))
	fmt.Printf("sum computed at the owner: %d\n", vgas.DecodeI64(res))

	// Migrate the block — the address stays valid.
	if st := w.MustWait(w.Proc(0).Migrate(g, 3)); vgas.MigrateStatus(st) != vgas.MigrateOK {
		log.Fatalf("migrate failed: %d", vgas.MigrateStatus(st))
	}
	res = w.MustWait(w.Proc(2).Call(g, sum, nil))
	fmt.Printf("same address after migration, sum: %d\n", vgas.DecodeI64(res))
}
