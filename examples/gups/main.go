// GUPS: the random-access update benchmark across all three address-space
// modes on the deterministic simulator, printing updates/second — a
// minimal version of the paper's Figure 5.
package main

import (
	"fmt"
	"log"

	"nmvgas/internal/workloads"
	"nmvgas/vgas"
)

func main() {
	const (
		ranks   = 8
		perRank = 500
		window  = 8
	)
	fmt.Printf("GUPS: %d ranks, %d updates/rank, window %d\n\n", ranks, perRank, window)
	fmt.Printf("%-8s %12s %14s\n", "mode", "Kups/s", "sim elapsed")
	var checksums []uint64
	for _, mode := range []vgas.Mode{vgas.PGAS, vgas.AGASSW, vgas.AGASNM} {
		w, err := vgas.NewWorld(vgas.Config{Ranks: ranks, Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		g := workloads.NewGUPS(w, "gups")
		w.Start()
		if err := g.Setup(1024, 32, workloads.KeysUniform, 42); err != nil {
			log.Fatal(err)
		}
		start := w.Now()
		n, err := g.Run(perRank, window)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := w.Now() - start
		rate := float64(n) / (float64(elapsed) / 1e9) / 1e3
		fmt.Printf("%-8s %12.1f %14v\n", mode, rate, elapsed)
		checksums = append(checksums, g.Checksum())
		w.Stop()
	}
	fmt.Printf("\ntable checksums (must match — translation never changes semantics):\n")
	for i, c := range checksums {
		fmt.Printf("  mode %d: %016x\n", i, c)
	}
	if checksums[0] != checksums[1] || checksums[1] != checksums[2] {
		log.Fatal("CHECKSUM MISMATCH")
	}
	fmt.Println("all modes agree ✓")
}
