// Stencil: 1-D heat diffusion on a heterogeneous machine (one locality is
// 8x slower). The static blocked partition stalls every timestep on the
// slow node; the adaptive run migrates blocks off it and the same
// numerics finish much faster — something a static PGAS cannot do.
package main

import (
	"fmt"
	"log"
	"math"

	"nmvgas/internal/netsim"
	"nmvgas/internal/workloads"
	"nmvgas/vgas"
)

func main() {
	const (
		ranks    = 8
		perBlock = 128
		nblocks  = 32
		steps    = 8
	)
	slow := make([]float64, ranks)
	for i := range slow {
		slow[i] = 1
	}
	slow[0] = 8
	fmt.Printf("1-D heat, %d cells over %d localities; rank 0 is 8x slower\n\n",
		perBlock*nblocks, ranks)

	run := func(adapt bool) (perStepUs float64, sum float64) {
		w, err := vgas.NewWorld(vgas.Config{Ranks: ranks, Mode: vgas.AGASNM})
		if err != nil {
			log.Fatal(err)
		}
		defer w.Stop()
		s := workloads.NewStencil(w, "st")
		w.Start()
		if err := s.Setup(perBlock, nblocks, slow, 200*netsim.Nanosecond); err != nil {
			log.Fatal(err)
		}
		if adapt {
			if err := s.AdaptPartition(0); err != nil {
				log.Fatal(err)
			}
		}
		start := w.Now()
		if err := s.Run(steps); err != nil {
			log.Fatal(err)
		}
		return (w.Now() - start).Micros() / steps, s.Sum()
	}

	staticUs, staticSum := run(false)
	adaptUs, adaptSum := run(true)
	fmt.Printf("static    %10.1f µs/step\n", staticUs)
	fmt.Printf("adaptive  %10.1f µs/step  (%.2fx speedup)\n", adaptUs, staticUs/adaptUs)

	if math.Abs(staticSum-adaptSum) > 1e-9 {
		log.Fatalf("numerics diverged: %v vs %v", staticSum, adaptSum)
	}
	fmt.Printf("\nheat conserved and identical in both runs (sum=%.9f) ✓\n", staticSum)
}
