// Migration: live-migrate a block while other localities hammer it with
// updates, and show (a) no update is lost, (b) how each AGAS design pays
// for the move — host forwarding and cache repair in software-managed
// mode vs in-network forwarding and NIC table updates in network-managed
// mode.
package main

import (
	"fmt"
	"log"

	"nmvgas/internal/parcel"
	"nmvgas/vgas"
)

func run(mode vgas.Mode) {
	const ranks = 4
	w, err := vgas.NewWorld(vgas.Config{Ranks: ranks, Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Stop()
	incr := w.Register("incr", func(c *vgas.Ctx) {
		data := c.Local(c.P.Target)
		v := parcel.U64(data, 0)
		copy(data, parcel.PutU64(nil, v+1))
		c.Continue(nil)
	})
	w.Start()

	lay, err := w.AllocLocal(1, 256, 1)
	if err != nil {
		log.Fatal(err)
	}
	g := lay.BlockAt(0)

	const updates = 120
	gate := w.NewAndGate(0, updates)
	// Start the migration, then immediately fire updates from all ranks.
	mig := w.Proc(0).Migrate(g, 3)
	for i := 0; i < updates; i++ {
		r := i % ranks
		w.Proc(r).Run(func() {
			w.Locality(r).SendParcel(&vgas.Parcel{
				Action: incr, Target: g,
				CAction: vgas.LCOSet, CTarget: gate.G,
			})
		})
	}
	w.MustWait(mig)
	w.MustWait(gate)

	got := w.MustWait(w.Proc(2).Get(g, 8))
	fmt.Printf("%-8s counter=%d/%d", mode, parcel.U64(got, 0), updates)
	if mode == vgas.AGASNM {
		st := w.Fabric().TotalStats()
		fmt.Printf("  in-network forwards=%d nic-table-updates=%d host-forwards=%d",
			st.Forwards, st.TableUpdatesRx, hostForwards(w, ranks))
	} else {
		fmt.Printf("  host-forwards=%d host-nacks=%d",
			hostForwards(w, ranks), hostNacks(w, ranks))
	}
	fmt.Println()
	if parcel.U64(got, 0) != updates {
		log.Fatal("updates lost during migration!")
	}
}

func hostForwards(w *vgas.World, ranks int) int64 {
	var n int64
	for r := 0; r < ranks; r++ {
		n += w.Locality(r).Stats.HostForwards.Load()
	}
	return n
}

func hostNacks(w *vgas.World, ranks int) int64 {
	var n int64
	for r := 0; r < ranks; r++ {
		n += w.Locality(r).Stats.HostNacks.Load()
	}
	return n
}

func main() {
	fmt.Println("live migration under fire: 120 increments race one migration")
	fmt.Println()
	for _, mode := range []vgas.Mode{vgas.AGASSW, vgas.AGASNM} {
		run(mode)
	}
	fmt.Println("\nno updates lost in either mode; note who did the forwarding work.")
}
