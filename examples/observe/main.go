// Observe: the runtime's observability surface — a flight-recorder trace
// of every protocol step, aggregate world counters, and the coalescing
// knob — around a migration-under-load scenario.
package main

import (
	"fmt"
	"log"
	"os"

	"nmvgas/internal/trace"
	"nmvgas/vgas"
)

func main() {
	w, err := vgas.NewWorld(vgas.Config{
		Ranks: 4,
		Mode:  vgas.AGASNM,
		// Batch up to 8 parcels per destination.
		Coalesce: vgas.CoalesceConfig{MaxParcels: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Stop()
	ring := trace.Attach(w, 4096)
	incr := w.Register("incr", func(c *vgas.Ctx) {
		d := c.Local(c.P.Target)
		d[0]++
		c.Continue(nil)
	})
	w.Start()

	lay, err := w.AllocLocal(1, 256, 1)
	if err != nil {
		log.Fatal(err)
	}
	g := lay.BlockAt(0)

	// A migration races a burst of increments.
	const n = 48
	gate := w.NewAndGate(0, n)
	mig := w.Proc(0).Migrate(g, 3)
	for i := 0; i < n; i++ {
		r := i % 4
		w.Proc(r).Run(func() {
			w.Locality(r).SendParcel(&vgas.Parcel{
				Action: incr, Target: g,
				CAction: vgas.LCOSet, CTarget: gate.G,
			})
		})
	}
	w.MustWait(mig)
	w.MustWait(gate)

	got := w.MustWait(w.Proc(2).Get(g, 1))
	fmt.Printf("counter after migration under load: %d/%d\n\n", got[0], n)

	fmt.Println("== migration timeline (from the trace ring) ==")
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case vgas.TraceMigrateStart, vgas.TraceMigrateDone:
			fmt.Printf("  %12v rank=%d %-14s block=%d → %d\n",
				ev.Time, ev.Rank, ev.Kind, ev.Block, ev.Info)
		}
	}
	fmt.Printf("\ntrace observed %d protocol events; queued-behind-migration: %d\n\n",
		ring.Total(), ring.CountKind(vgas.TraceQueued))

	fmt.Println("== world counters ==")
	if err := w.StatsTable().Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
