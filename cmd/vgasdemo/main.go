// Command vgasdemo is a guided tour: it walks through the runtime's core
// operations on a small world and narrates what the selected address
// space is doing underneath.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"nmvgas/internal/exp"
	"nmvgas/internal/loadbal"
	"nmvgas/internal/metrics"
	"nmvgas/internal/trace"
	"nmvgas/vgas"
)

func main() {
	modeFlag := flag.String("mode", "agas-nm", "address space: pgas, agas-sw, or agas-nm")
	engineFlag := flag.String("engine", "des", "execution engine: des or go")
	replicasFlag := flag.Int("replicas", 3, "read replicas installed in the replication step (0 skips it)")
	coherenceFlag := flag.String("coherence", "", "replica coherence policy: write-invalidate, write-update, or rw-lease")
	httpAddr := flag.String("http", "", "after the tour, serve /metrics, /metrics.json, "+
		"/trace.json, /healthz, /debug/flight and /debug/pprof on this address "+
		"(e.g. :8080) until interrupted")
	killFlag := flag.Bool("kill", false, "add a failure step: crash rank 1 mid-tour, watch the survivors "+
		"declare it dead and promote replicas, then re-admit it via Join")
	topologyFlag := flag.String("topology", "", "add a topology tour step: build a 64-rank fabric of this "+
		"spec (fat-tree, dragonfly:group=8, two-tier, ...) and print the per-distance "+
		"translation/forwarding cost table for all three address spaces")
	flag.Parse()

	mode, err := vgas.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgasdemo: %v\n", err)
		os.Exit(2)
	}
	engine, err := vgas.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgasdemo: %v\n", err)
		os.Exit(2)
	}
	var coherence vgas.Coherence
	if *coherenceFlag != "" {
		if coherence, err = vgas.ParseCoherence(*coherenceFlag); err != nil {
			fmt.Fprintf(os.Stderr, "vgasdemo: %v\n", err)
			os.Exit(2)
		}
	}
	sp := vgas.SpaceFor(mode)

	fmt.Printf("== virtual global address space demo: %s on %s ==\n", sp, engine)
	cfg := vgas.Config{
		Ranks: 4, Engine: engine, Coherence: coherence, Metrics: *httpAddr != "",
		// Sampled heat tracking feeds the rebalancing step (and the
		// nmvgas_heat_* series when -http is on); off the hot paths it
		// costs a single nil check.
		Heat: vgas.HeatConfig{Enabled: true},
		// The runtime pulse drives the watchdog catalog (and /healthz
		// when -http is on); the health tour below depends on it.
		Pulse: vgas.PulseConfig{Enabled: true},
	}
	if *killFlag {
		// Crash recovery rides on reliable delivery: retransmission
		// silence is what raises suspicion, and the stalled op must
		// survive the backoff climb plus two probe rounds.
		cfg.Reliability = vgas.ReliabilityConfig{Force: true, MaxAttempts: 64}
	}
	w, err := vgas.NewWorldFor(sp, cfg)
	if err != nil {
		panic(err)
	}
	defer w.Stop()
	// The flight recorder replaces the plain trace ring: same always-on
	// event window (it serves /trace.json through Ring), plus correlated
	// diagnostic bundles on watchdog trips and /debug/flight.
	flight := trace.NewFlight(w, trace.FlightConfig{Capacity: 1 << 15})
	flight.Arm()

	echo := w.Register("echo", func(c *vgas.Ctx) {
		fmt.Printf("   [rank %d] action runs where the data lives\n", c.Rank())
		c.Continue(c.P.Payload)
	})
	w.Start()

	fmt.Println("\n1. Allocate 8 blocks, spread cyclically over 4 localities.")
	lay, err := w.AllocCyclic(0, 4096, 8)
	if err != nil {
		panic(err)
	}
	g := lay.BlockAt(1)
	fmt.Printf("   block 1 lives at its home, rank %d; its address is %v\n", g.Home(), g)

	fmt.Println("\n2. One-sided put/get: the target NIC handles the transfer.")
	w.MustWait(w.Proc(0).Put(g, []byte("hello")))
	got := w.MustWait(w.Proc(3).Get(g, 5))
	fmt.Printf("   rank 3 reads back: %q\n", got)

	fmt.Println("\n3. A parcel runs an action at the owner.")
	reply := w.MustWait(w.Proc(0).Call(g, echo, []byte("ping")))
	fmt.Printf("   reply: %q\n", reply)

	// replication narrates the coherent read-replication step: install
	// live replicas, serve reads locally, and keep holders coherent
	// through a write.
	replication := func(step int) {
		if *replicasFlag <= 0 {
			return
		}
		fmt.Printf("\n%d. Install %d live read replicas per block (%v coherence).\n",
			step, *replicasFlag, coherence)
		if err := w.ReplicateLive(lay, *replicasFlag); err != nil {
			panic(err)
		}
		for r := 0; r < 4; r++ {
			w.MustWait(w.Proc(r).Get(g, 5))
		}
		fmt.Printf("   every rank read the same address; %d reads were served by replicas\n",
			w.Stats().ReplicaReads)
		fmt.Println("   the block stays writable: the master keeps holders coherent")
		w.MustWait(w.Proc(0).Put(g, []byte("world")))
		if engine == vgas.EngineDES {
			w.Drain()
		} else {
			time.Sleep(50 * time.Millisecond)
		}
		s := w.Stats()
		fmt.Printf("   coherence traffic: %d invalidations, %d refills, %d pushed updates\n",
			s.ReplicaInvals, s.ReplicaFills, s.ReplicaUpdates)
		got := w.MustWait(w.Proc(1).Get(g, 5))
		fmt.Printf("   rank 1 reads back after the write: %q\n", got)
	}

	// chaos narrates the failure step: a whole-node crash, failure
	// suspicion driven by retransmission silence, replica promotion on
	// the survivors, and runtime re-admission through Join.
	chaos := func(step int) {
		if !*killFlag {
			return
		}
		victim := lay.BlockAt(5) // homed at rank 1, the rank about to die
		if *replicasFlag <= 0 {
			fmt.Printf("\n%d. Install 2 read replicas per block so rank 1's data survives it.\n", step)
			if err := w.ReplicateLive(lay, 2); err != nil {
				panic(err)
			}
			step++
		}
		fmt.Printf("\n%d. Crash rank 1: its link goes down, fail-stop, no goodbye.\n", step)
		w.Kill(1)
		fmt.Println("   rank 2 writes to a block homed at the corpse; the put stalls in")
		fmt.Println("   retransmission, backoff hits its ceiling, probes confirm the death,")
		fmt.Println("   a surviving replica holder is promoted, and the put lands there.")
		w.MustWait(w.Proc(2).Put(victim, []byte("crash")))
		if !w.AwaitMember(1, vgas.MemberDead, 30*time.Second) {
			panic("demo: rank 1 was never declared dead")
		}
		// Let the write's coherence fan-out reach the surviving holders
		// before reading through them (same settle as the replication
		// step).
		if engine == vgas.EngineDES {
			w.Drain()
		} else {
			time.Sleep(50 * time.Millisecond)
		}
		ms := w.Stats().Membership
		fmt.Printf("   death confirmed: %d suspicion probes, %d blocks re-homed, %d lost, epoch %d\n",
			ms.Suspicions, ms.Rehomed, ms.Lost, ms.Epoch)
		got := w.MustWait(w.Proc(3).Get(victim, 5))
		fmt.Printf("   rank 3 reads %q from the promoted holder — the address never changed\n", got)

		fmt.Printf("\n%d. Re-admit rank 1 via Join: state wiped, routes relearned, epoch bumped.\n", step+1)
		if err := w.Join(1); err != nil {
			panic(err)
		}
		if !w.AwaitMember(1, vgas.MemberAlive, 30*time.Second) {
			panic("demo: rank 1 never rejoined")
		}
		got = w.MustWait(w.Proc(1).Get(victim, 5))
		ms = w.Stats().Membership
		fmt.Printf("   reborn rank 1 reads %q; membership: deaths=%d joins=%d epoch=%d\n",
			got, ms.Deaths, ms.Joins, ms.Epoch)
	}

	// rebalanceTour narrates the closed control loop: sampled heat
	// tracking spots a remote consumer hammering a block, and one policy
	// epoch migrates the block to it — same address, now-local accesses.
	rebalanceTour := func(step int) {
		hot := lay.BlockAt(0)
		fmt.Printf("\n%d. Heat-driven rebalancing: rank 3 hammers block 0, homed at rank %d.\n",
			step, hot.Home())
		w.HeatEpoch() // fresh sampling window for this story
		start := w.Now()
		for i := 0; i < 120; i++ {
			w.MustWait(w.Proc(3).Get(hot, 64))
		}
		remote := w.Now() - start
		if top := w.HeatTop(1); len(top) > 0 {
			fmt.Printf("   the heat sketch agrees: hottest block is %d, %d sampled accesses, all from rank %d\n",
				top[0].Block-lay.Base.Block(), top[0].Count, top[0].Src)
		}
		p, err := loadbal.NewPolicy(w, loadbal.PolicyConfig{Layout: lay, MinSamples: 32})
		if err != nil {
			panic(err)
		}
		rep, err := p.Step()
		if err != nil {
			panic(err)
		}
		fmt.Printf("   one policy epoch: %d migration(s) toward the dominant accessor (imbalance %.2f)\n",
			rep.Moves, rep.Imbalance)
		start = w.Now()
		for i := 0; i < 120; i++ {
			w.MustWait(w.Proc(3).Get(hot, 64))
		}
		if engine == vgas.EngineDES {
			fmt.Printf("   120 reads again, same address: %v remote before, %v local after the move\n",
				remote, w.Now()-start)
		} else {
			fmt.Println("   the same reads are now served locally — the address never changed")
		}
	}

	// healthTour narrates the observability loop end to end: inject a
	// migration stall, watch the watchdog walk warn → critical on the
	// pulse clock, read the flight recorder's trip bundle, then release
	// the pin and watch health return to ok.
	healthTour := func(step int) {
		fmt.Printf("\n%d. Health tour: pin a migration and let the watchdogs catch it.\n", step)
		pin := lay.BlockAt(3)
		release := w.InjectMigrationStall()
		fut := w.Proc(0).Migrate(pin, 0)
		fmt.Println("   the migration's data install is stalled; the block is pinned at its")
		fmt.Println("   old owner and the migration-stall watchdog starts aging the pin...")
		if !w.AwaitHealth(vgas.WatchCritical, 30*time.Second) {
			panic("demo: stall never went critical")
		}
		h := w.Health()
		for _, st := range h.Watchdogs {
			if st.Name == vgas.WatchMigrationStall {
				fmt.Printf("   pulse %d: %s is %v — %s\n", h.Pulse, st.Name, st.Level, st.Detail)
			}
		}
		if b := flight.Latest(); b != nil {
			fmt.Printf("   the trip dumped a flight bundle: trigger %s, %d trace events around the anomaly\n",
				b.Trigger, b.TraceEvents)
		}
		fmt.Println("   releasing the pin: the deferred install completes, health recovers")
		release()
		if st := vgas.MigrateStatus(w.MustWait(fut)); st != vgas.MigrateOK {
			panic(fmt.Sprintf("demo: pinned migration finished with status %d", st))
		}
		if !w.AwaitHealth(vgas.WatchOK, 30*time.Second) {
			panic("demo: health never returned to ok")
		}
		fmt.Printf("   health back to %v at pulse %d — same story /healthz would tell\n",
			w.Health().Level, w.Health().Pulse)
	}

	// topoTour narrates distance-dependent translation cost: on a 64-rank
	// hierarchical fabric, a stale translation's repair detour spans real
	// hop distance, so where the forwarding happens (host vs NIC) shows
	// up in the latency — the nm-vs-sw crossover, interactively.
	topoTour := func(step int) {
		if *topologyFlag == "" {
			return
		}
		topo, err := vgas.ParseTopology(*topologyFlag, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vgasdemo: -topology: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("\n%d. Topology tour: 64 localities on a %s fabric.\n", step, topo.Name())
		fmt.Println("   Each row migrates a block one tier further from the sender, then")
		fmt.Println("   times the first put against the now-stale translation. The software")
		fmt.Println("   space detours through the old home's host; the network-managed")
		fmt.Println("   space forwards in the NIC — watch the gap widen with distance.")
		if err := exp.DistanceCosts(*topologyFlag).Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vgasdemo: %v\n", err)
			os.Exit(1)
		}
	}

	serve := func() {
		if *httpAddr == "" {
			return
		}
		reg := metrics.NewRegistry()
		pub := metrics.PublishWorld(reg, w)
		health := metrics.PublishHealth(reg, w)
		fmt.Printf("\nServing observability endpoint on %s (/metrics, /metrics.json, /trace.json, /healthz, /debug/flight, /debug/pprof) — Ctrl-C to exit.\n", *httpAddr)
		if err := http.ListenAndServe(*httpAddr, metrics.Handler(reg, metrics.HandlerOptions{
			Refresh: func() { pub.Refresh(); health.Refresh() },
			Ring:    flight.Ring(),
			Health:  w.Health,
			Flight:  flight,
		})); err != nil {
			fmt.Fprintf(os.Stderr, "vgasdemo: %v\n", err)
			os.Exit(1)
		}
	}

	if !sp.Caps.Migration {
		fmt.Printf("\n4. %s is static: blocks cannot migrate (Caps.Migration=false).\n", sp)
		st := w.MustWait(w.Proc(0).Migrate(g, 2))
		fmt.Printf("   migrate status: %d (1 = pinned/refused)\n", vgas.MigrateStatus(st))
		replication(5)
		chaos(6)
		topoTour(8)
		fmt.Println("\nDone.")
		serve()
		return
	}

	fmt.Println("\n4. Migrate the block to rank 2 — its address does not change.")
	st := w.MustWait(w.Proc(0).Migrate(g, 2))
	fmt.Printf("   migrate status: %d (0 = ok)\n", vgas.MigrateStatus(st))

	fmt.Println("\n5. Send to the SAME address: stale translation is repaired")
	fmt.Println("   by the mode's strategy (host forwarding or NIC tables).")
	if w.Fabric() != nil && sp.Caps.NICTranslation {
		before := w.Fabric().TotalStats().Forwards
		w.MustWait(w.Proc(0).Call(g, echo, []byte("after-move")))
		mid := w.Fabric().TotalStats().Forwards
		w.MustWait(w.Proc(0).Call(g, echo, []byte("again")))
		after := w.Fabric().TotalStats().Forwards
		fmt.Printf("   in-network forwards: first send %d, second send %d (learned!)\n",
			mid-before, after-mid)
	} else {
		before := w.Locality(g.Home()).Stats.HostForwards.Load()
		w.MustWait(w.Proc(0).Call(g, echo, []byte("after-move")))
		mid := w.Locality(g.Home()).Stats.HostForwards.Load()
		w.MustWait(w.Proc(0).Call(g, echo, []byte("again")))
		after := w.Locality(g.Home()).Stats.HostForwards.Load()
		fmt.Printf("   host forwards at the old owner: first send %d, second send %d\n",
			mid-before, after-mid)
	}

	rebalanceTour(6)
	replication(7)
	chaos(8)
	healthTour(10)
	topoTour(11)

	if w.Fabric() != nil {
		fmt.Printf("\nSimulated time elapsed: %v. Done.\n", w.Now())
	} else {
		fmt.Println("\nDone.")
	}
	serve()
}
