// Command vgasdemo is a guided tour: it walks through the runtime's core
// operations on a small world and narrates what the selected address
// space is doing underneath.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"nmvgas/internal/metrics"
	"nmvgas/internal/trace"
	"nmvgas/vgas"
)

func main() {
	modeFlag := flag.String("mode", "agas-nm", "address space: pgas, agas-sw, or agas-nm")
	engineFlag := flag.String("engine", "des", "execution engine: des or go")
	replicasFlag := flag.Int("replicas", 3, "read replicas installed in the replication step (0 skips it)")
	coherenceFlag := flag.String("coherence", "", "replica coherence policy: write-invalidate, write-update, or rw-lease")
	httpAddr := flag.String("http", "", "after the tour, serve /metrics, /metrics.json, "+
		"/trace.json and /debug/pprof on this address (e.g. :8080) until interrupted")
	flag.Parse()

	mode, err := vgas.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgasdemo: %v\n", err)
		os.Exit(2)
	}
	engine, err := vgas.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgasdemo: %v\n", err)
		os.Exit(2)
	}
	var coherence vgas.Coherence
	if *coherenceFlag != "" {
		if coherence, err = vgas.ParseCoherence(*coherenceFlag); err != nil {
			fmt.Fprintf(os.Stderr, "vgasdemo: %v\n", err)
			os.Exit(2)
		}
	}
	sp := vgas.SpaceFor(mode)

	fmt.Printf("== virtual global address space demo: %s on %s ==\n", sp, engine)
	w, err := vgas.NewWorldFor(sp, vgas.Config{
		Ranks: 4, Engine: engine, Coherence: coherence, Metrics: *httpAddr != "",
	})
	if err != nil {
		panic(err)
	}
	defer w.Stop()
	var ring *trace.Ring
	if *httpAddr != "" {
		ring = trace.Attach(w, 1<<15)
	}

	echo := w.Register("echo", func(c *vgas.Ctx) {
		fmt.Printf("   [rank %d] action runs where the data lives\n", c.Rank())
		c.Continue(c.P.Payload)
	})
	w.Start()

	fmt.Println("\n1. Allocate 8 blocks, spread cyclically over 4 localities.")
	lay, err := w.AllocCyclic(0, 4096, 8)
	if err != nil {
		panic(err)
	}
	g := lay.BlockAt(1)
	fmt.Printf("   block 1 lives at its home, rank %d; its address is %v\n", g.Home(), g)

	fmt.Println("\n2. One-sided put/get: the target NIC handles the transfer.")
	w.MustWait(w.Proc(0).Put(g, []byte("hello")))
	got := w.MustWait(w.Proc(3).Get(g, 5))
	fmt.Printf("   rank 3 reads back: %q\n", got)

	fmt.Println("\n3. A parcel runs an action at the owner.")
	reply := w.MustWait(w.Proc(0).Call(g, echo, []byte("ping")))
	fmt.Printf("   reply: %q\n", reply)

	// replication narrates the coherent read-replication step: install
	// live replicas, serve reads locally, and keep holders coherent
	// through a write.
	replication := func(step int) {
		if *replicasFlag <= 0 {
			return
		}
		fmt.Printf("\n%d. Install %d live read replicas per block (%v coherence).\n",
			step, *replicasFlag, coherence)
		if err := w.ReplicateLive(lay, *replicasFlag); err != nil {
			panic(err)
		}
		for r := 0; r < 4; r++ {
			w.MustWait(w.Proc(r).Get(g, 5))
		}
		fmt.Printf("   every rank read the same address; %d reads were served by replicas\n",
			w.Stats().ReplicaReads)
		fmt.Println("   the block stays writable: the master keeps holders coherent")
		w.MustWait(w.Proc(0).Put(g, []byte("world")))
		if engine == vgas.EngineDES {
			w.Drain()
		} else {
			time.Sleep(50 * time.Millisecond)
		}
		s := w.Stats()
		fmt.Printf("   coherence traffic: %d invalidations, %d refills, %d pushed updates\n",
			s.ReplicaInvals, s.ReplicaFills, s.ReplicaUpdates)
		got := w.MustWait(w.Proc(1).Get(g, 5))
		fmt.Printf("   rank 1 reads back after the write: %q\n", got)
	}

	serve := func() {
		if *httpAddr == "" {
			return
		}
		reg := metrics.NewRegistry()
		pub := metrics.PublishWorld(reg, w)
		fmt.Printf("\nServing observability endpoint on %s (/metrics, /metrics.json, /trace.json, /debug/pprof) — Ctrl-C to exit.\n", *httpAddr)
		if err := http.ListenAndServe(*httpAddr, metrics.Handler(reg, metrics.HandlerOptions{
			Refresh: pub.Refresh,
			Ring:    ring,
		})); err != nil {
			fmt.Fprintf(os.Stderr, "vgasdemo: %v\n", err)
			os.Exit(1)
		}
	}

	if !sp.Caps.Migration {
		fmt.Printf("\n4. %s is static: blocks cannot migrate (Caps.Migration=false).\n", sp)
		st := w.MustWait(w.Proc(0).Migrate(g, 2))
		fmt.Printf("   migrate status: %d (1 = pinned/refused)\n", vgas.MigrateStatus(st))
		replication(5)
		fmt.Println("\nDone.")
		serve()
		return
	}

	fmt.Println("\n4. Migrate the block to rank 2 — its address does not change.")
	st := w.MustWait(w.Proc(0).Migrate(g, 2))
	fmt.Printf("   migrate status: %d (0 = ok)\n", vgas.MigrateStatus(st))

	fmt.Println("\n5. Send to the SAME address: stale translation is repaired")
	fmt.Println("   by the mode's strategy (host forwarding or NIC tables).")
	if w.Fabric() != nil && sp.Caps.NICTranslation {
		before := w.Fabric().TotalStats().Forwards
		w.MustWait(w.Proc(0).Call(g, echo, []byte("after-move")))
		mid := w.Fabric().TotalStats().Forwards
		w.MustWait(w.Proc(0).Call(g, echo, []byte("again")))
		after := w.Fabric().TotalStats().Forwards
		fmt.Printf("   in-network forwards: first send %d, second send %d (learned!)\n",
			mid-before, after-mid)
	} else {
		before := w.Locality(g.Home()).Stats.HostForwards.Load()
		w.MustWait(w.Proc(0).Call(g, echo, []byte("after-move")))
		mid := w.Locality(g.Home()).Stats.HostForwards.Load()
		w.MustWait(w.Proc(0).Call(g, echo, []byte("again")))
		after := w.Locality(g.Home()).Stats.HostForwards.Load()
		fmt.Printf("   host forwards at the old owner: first send %d, second send %d\n",
			mid-before, after-mid)
	}

	replication(6)

	if w.Fabric() != nil {
		fmt.Printf("\nSimulated time elapsed: %v. Done.\n", w.Now())
	} else {
		fmt.Println("\nDone.")
	}
	serve()
}
