// Command vgasdemo is a guided tour: it walks through the runtime's core
// operations on a small world and narrates what the network-managed
// address space is doing underneath.
package main

import (
	"fmt"

	"nmvgas/vgas"
)

func main() {
	fmt.Println("== network-managed virtual global address space: demo ==")
	w, err := vgas.NewWorld(vgas.Config{Ranks: 4, Mode: vgas.AGASNM})
	if err != nil {
		panic(err)
	}
	defer w.Stop()

	echo := w.Register("echo", func(c *vgas.Ctx) {
		fmt.Printf("   [rank %d] action runs where the data lives\n", c.Rank())
		c.Continue(c.P.Payload)
	})
	w.Start()

	fmt.Println("\n1. Allocate 8 blocks, spread cyclically over 4 localities.")
	lay, err := w.AllocCyclic(0, 4096, 8)
	if err != nil {
		panic(err)
	}
	g := lay.BlockAt(1)
	fmt.Printf("   block 1 lives at its home, rank %d; its address is %v\n", g.Home(), g)

	fmt.Println("\n2. One-sided put/get: the target NIC handles the transfer.")
	w.MustWait(w.Proc(0).Put(g, []byte("hello")))
	got := w.MustWait(w.Proc(3).Get(g, 5))
	fmt.Printf("   rank 3 reads back: %q\n", got)

	fmt.Println("\n3. A parcel runs an action at the owner.")
	reply := w.MustWait(w.Proc(0).Call(g, echo, []byte("ping")))
	fmt.Printf("   reply: %q\n", reply)

	fmt.Println("\n4. Migrate the block to rank 2 — its address does not change.")
	st := w.MustWait(w.Proc(0).Migrate(g, 2))
	fmt.Printf("   migrate status: %d (0 = ok)\n", vgas.MigrateStatus(st))

	fmt.Println("\n5. Send to the SAME address: the home NIC forwards in-network,")
	fmt.Println("   then pushes the new owner into the source NIC table.")
	before := w.Fabric().TotalStats().Forwards
	w.MustWait(w.Proc(0).Call(g, echo, []byte("after-move")))
	mid := w.Fabric().TotalStats().Forwards
	w.MustWait(w.Proc(0).Call(g, echo, []byte("again")))
	after := w.Fabric().TotalStats().Forwards
	fmt.Printf("   in-network forwards: first send %d, second send %d (learned!)\n",
		mid-before, after-mid)

	fmt.Printf("\nSimulated time elapsed: %v. Done.\n", w.Now())
}
