// Command vgasbench regenerates the paper's tables and figures.
//
// Usage:
//
//	vgasbench -list                 # show the experiment registry
//	vgasbench                       # run everything (full scale)
//	vgasbench -quick T1 F5          # run selected experiments, small sweeps
//	vgasbench -csv F1               # emit CSV instead of aligned tables
//	vgasbench -modes agas-nm F6     # restrict row-per-mode sweeps
//	vgasbench -loss 0.05 -dup 0.02 -reorder C1   # extra chaos fault plan
//	vgasbench -bench-json BENCH.json             # fast-path microbenchmarks as JSON
//	vgasbench -cpuprofile cpu.out -quick F5      # pprof the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"nmvgas/internal/exp"
	"nmvgas/internal/microbench"
	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "run reduced sweeps")
	csv := flag.Bool("csv", false, "emit CSV")
	seed := flag.Int64("seed", 42, "workload seed")
	modes := flag.String("modes", "", "comma-separated address-space modes to sweep "+
		"(pgas, agas-sw, agas-nm; empty = all). Experiments with fixed per-mode "+
		"columns always sweep every mode.")
	loss := flag.Float64("loss", 0, "message drop probability [0,1) for the chaos experiment's extra plan")
	dup := flag.Float64("dup", 0, "message duplication probability [0,1) for the chaos experiment's extra plan")
	reorder := flag.Bool("reorder", false, "randomize per-message delay (reordering) in the chaos experiment's extra plan")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchJSON := flag.String("bench-json", "", "run the fast-path microbenchmarks and write results as JSON to this file ('-' = stdout), then exit")
	flag.Parse()

	if *list {
		for _, e := range exp.Registry {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("vgasbench: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("vgasbench: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatalf("vgasbench: %v", err)
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("vgasbench: %v", err)
			}
		}()
	}

	if *benchJSON != "" {
		results := microbench.RunAll()
		enc, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatalf("vgasbench: %v", err)
		}
		enc = append(enc, '\n')
		if *benchJSON == "-" {
			os.Stdout.Write(enc)
			return
		}
		if err := os.WriteFile(*benchJSON, enc, 0o644); err != nil {
			fatalf("vgasbench: %v", err)
		}
		return
	}

	o := exp.Options{Quick: *quick, Seed: *seed}
	if *loss != 0 || *dup != 0 || *reorder {
		o.Faults = netsim.FaultPlan{Drop: *loss, Duplicate: *dup, Reorder: *reorder, Seed: *seed}
	}
	if *modes != "" {
		for _, name := range strings.Split(*modes, ",") {
			m, err := runtime.ParseMode(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "vgasbench: %v\n", err)
				os.Exit(2)
			}
			o.Spaces = append(o.Spaces, runtime.SpaceFor(m))
		}
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	for _, id := range ids {
		e, ok := exp.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "vgasbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		tb := e.Run(o)
		if *csv {
			fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			continue
		}
		if err := tb.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vgasbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
