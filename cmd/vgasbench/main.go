// Command vgasbench regenerates the paper's tables and figures.
//
// Usage:
//
//	vgasbench -list                 # show the experiment registry
//	vgasbench                       # run everything (full scale)
//	vgasbench -quick T1 F5          # run selected experiments, small sweeps
//	vgasbench -csv F1               # emit CSV instead of aligned tables
//	vgasbench -modes agas-nm F6     # restrict row-per-mode sweeps
//	vgasbench -loss 0.05 -dup 0.02 -reorder C1   # extra chaos fault plan
//	vgasbench -kill 1:50000 -join 1:60000000 C2  # schedule a whole-node crash + rejoin
//	NMVGAS_FAULTS="kill=1:50000,restart=1:60000000" vgasbench C2  # same, via env (CI hook)
//	vgasbench -replicas 3 -coherence write-update F16   # replication sweep override
//	vgasbench -localities 1024 -shards 1,8 F17   # scaling sweep override
//	vgasbench -topology dragonfly:group=32 F17   # fabric override for the sweep
//	vgasbench -tenants 16 -shift 2 F19           # rebalancing sweep overrides
//	vgasbench -rebalance 8 F19                   # cap the policy's per-epoch move budget
//	vgasbench -scale-json BENCH.json             # F17 scaling rows as JSON (CI artifact)
//	vgasbench -rebalance-json BENCH.json         # F19 rebalancing rows as JSON (CI artifact)
//	vgasbench -bench-json BENCH.json             # fast-path microbenchmarks as JSON
//	vgasbench -cpuprofile cpu.out -quick F5      # pprof the run
//	vgasbench -metrics-out m.prom -trace-out t.json  # instrumented run: metrics + Chrome trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"nmvgas/internal/agas"
	"nmvgas/internal/exp"
	"nmvgas/internal/metrics"
	"nmvgas/internal/microbench"
	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
	"nmvgas/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "run reduced sweeps")
	csv := flag.Bool("csv", false, "emit CSV")
	seed := flag.Int64("seed", 42, "workload seed")
	modes := flag.String("modes", "", "comma-separated address-space modes to sweep "+
		"(pgas, agas-sw, agas-nm; empty = all). Experiments with fixed per-mode "+
		"columns always sweep every mode.")
	replicas := flag.Int("replicas", 0, "replica count for the replication experiment's sweep "+
		"(0 = default sweep; n > 0 runs {0, n})")
	coherence := flag.String("coherence", "", "replica coherence policy for the replication "+
		"experiment (write-invalidate, write-update, rw-lease; empty = write-invalidate)")
	loss := flag.Float64("loss", 0, "message drop probability [0,1) for the chaos experiment's extra plan")
	dup := flag.Float64("dup", 0, "message duplication probability [0,1) for the chaos experiment's extra plan")
	reorder := flag.Bool("reorder", false, "randomize per-message delay (reordering) in the chaos experiment's extra plan")
	kill := flag.String("kill", "", "schedule whole-locality crashes in the fault plan: comma-separated "+
		"rank:vtime pairs in simulated ns (e.g. -kill 1:50000)")
	join := flag.String("join", "", "schedule crashed localities' links back up (the runtime re-admits them "+
		"via Join once the death is confirmed): comma-separated rank:vtime pairs (e.g. -join 1:60000000)")
	localities := flag.String("localities", "", "comma-separated world sizes for the scaling "+
		"experiment's sweep (e.g. -localities 256,1024; empty = default sweep)")
	shards := flag.String("shards", "", "comma-separated event-shard counts for the scaling "+
		"experiment's sweep (0 = classic single-heap engine; empty = default sweep)")
	topology := flag.String("topology", "", "fabric spec for the scaling experiment "+
		"(crossbar, two-tier, fat-tree, dragonfly, with optional :key=value params; "+
		"empty = balanced fat-tree)")
	tenants := flag.Int("tenants", 0, "blocks per tenant for the rebalancing experiment "+
		"(0 = default 8)")
	shift := flag.Int("shift", 0, "hotspot shifts the rebalancing experiment applies, each "+
		"followed by a convergence window (0 = default 1)")
	rebalance := flag.Int("rebalance", 0, "per-epoch migration budget for the rebalancing "+
		"policy (0 = default 16)")
	flightOut := flag.String("flight-out", "", "write the F20 health experiment's flight-recorder "+
		"trip bundle (indented JSON) to this file")
	scaleJSON := flag.String("scale-json", "", "run the F17 scaling sweep and write the rows as "+
		"JSON to this file ('-' = stdout), then exit; defaults to 64/256/1024 localities × "+
		"shards {0,1,4} unless -localities/-shards override")
	rebalanceJSON := flag.String("rebalance-json", "", "run the F19 rebalancing sweep and write "+
		"the rows as JSON to this file ('-' = stdout), then exit; honors -tenants/-shift/"+
		"-rebalance/-quick")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchJSON := flag.String("bench-json", "", "run the fast-path microbenchmarks and write results as JSON to this file ('-' = stdout), then exit")
	metricsOut := flag.String("metrics-out", "", "run an instrumented migration workload and write a metrics snapshot to this file (.json = JSON snapshot, otherwise Prometheus text), then exit")
	traceOut := flag.String("trace-out", "", "with or without -metrics-out: write the instrumented run's Chrome trace-event JSON to this file, then exit")
	flag.Parse()

	if *list {
		for _, e := range exp.Registry {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("vgasbench: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("vgasbench: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatalf("vgasbench: %v", err)
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("vgasbench: %v", err)
			}
		}()
	}

	if *benchJSON != "" {
		results := microbench.RunAll()
		enc, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatalf("vgasbench: %v", err)
		}
		enc = append(enc, '\n')
		if *benchJSON == "-" {
			os.Stdout.Write(enc)
			return
		}
		if err := os.WriteFile(*benchJSON, enc, 0o644); err != nil {
			fatalf("vgasbench: %v", err)
		}
		return
	}

	if *metricsOut != "" || *traceOut != "" {
		if err := observedRun(*seed, *metricsOut, *traceOut); err != nil {
			fatalf("vgasbench: %v", err)
		}
		return
	}

	o := exp.Options{Quick: *quick, Seed: *seed, Replicas: *replicas,
		Localities:   parseIntList("localities", *localities),
		ShardSweep:   parseIntList("shards", *shards),
		Topology:     *topology,
		TenantBlocks: *tenants, Shifts: *shift, MoveBudget: *rebalance,
		FlightOut: *flightOut}

	if *scaleJSON != "" {
		if err := scaleRun(o, *scaleJSON); err != nil {
			fatalf("vgasbench: %v", err)
		}
		return
	}
	if *rebalanceJSON != "" {
		if err := rebalanceRun(o, *rebalanceJSON); err != nil {
			fatalf("vgasbench: %v", err)
		}
		return
	}
	if *coherence != "" {
		c, err := agas.ParseCoherence(*coherence)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vgasbench: %v\n", err)
			os.Exit(2)
		}
		o.Coherence = c
	}
	// The fault plan layers: NMVGAS_FAULTS (full spec string, the CI
	// chaos job's override hook) is the base, then the individual flags
	// override or extend it.
	if env := os.Getenv("NMVGAS_FAULTS"); env != "" {
		p, err := netsim.ParseFaultPlan(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vgasbench: NMVGAS_FAULTS: %v\n", err)
			os.Exit(2)
		}
		o.Faults = p
	}
	if *loss != 0 || *dup != 0 || *reorder {
		o.Faults.Drop, o.Faults.Duplicate, o.Faults.Reorder = *loss, *dup, *reorder
	}
	if *kill != "" {
		o.Faults.KillAt = mergeSchedule(o.Faults.KillAt, parseSchedule("kill", *kill))
	}
	if *join != "" {
		o.Faults.RestartAt = mergeSchedule(o.Faults.RestartAt, parseSchedule("restart", *join))
	}
	if o.Faults.Enabled() && o.Faults.Seed == 0 {
		o.Faults.Seed = *seed
	}
	if *modes != "" {
		for _, name := range strings.Split(*modes, ",") {
			m, err := runtime.ParseMode(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "vgasbench: %v\n", err)
				os.Exit(2)
			}
			o.Spaces = append(o.Spaces, runtime.SpaceFor(m))
		}
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	for _, id := range ids {
		e, ok := exp.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "vgasbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		tb := e.Run(o)
		if *csv {
			fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			continue
		}
		if err := tb.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vgasbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// parseIntList parses a comma-separated list of non-negative ints from
// a flag value ("" = nil).
func parseIntList(name, spec string) []int {
	if spec == "" {
		return nil
	}
	var out []int
	for _, t := range strings.Split(spec, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(t), "%d", &n); err != nil || n < 0 {
			fatalf("vgasbench: bad -%s entry %q: want a non-negative integer", name, t)
		}
		out = append(out, n)
	}
	return out
}

// scaleRun emits the F17 scaling sweep as JSON (the CI scaling-smoke
// job's BENCH_PR8.json artifact). Without -localities/-shards overrides
// it measures 64/256/1024 localities at shards {0, 1, 4}.
func scaleRun(o exp.Options, path string) error {
	if len(o.Localities) == 0 {
		o.Localities = []int{64, 256, 1024}
	}
	if len(o.ShardSweep) == 0 {
		o.ShardSweep = []int{0, 1, 4}
	}
	out := struct {
		Description string           `json:"description"`
		Rows        []exp.ScalePoint `json:"rows"`
	}{
		Description: "F17 parallel-DES scaling rows: hot-potato parcel storm on a balanced " +
			"fat-tree, AGAS-NM space. golden_parcels is the determinism gate — it must be " +
			"identical across shard counts at each world size. events_per_sec and " +
			"ns_per_event are wall-clock and scale with the host's core count. " +
			"Regenerate with `go run ./cmd/vgasbench -scale-json -`.",
		Rows: exp.ScaleBench(o),
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if path == "-" {
		os.Stdout.Write(enc)
		return nil
	}
	return os.WriteFile(path, enc, 0o644)
}

// rebalanceRun emits the F19 rebalancing sweep as JSON (the CI
// rebalance-smoke job's BENCH_PR9.json artifact): the multi-tenant
// Zipfian serving workload on every migrating space, policy off vs on,
// across a mid-run hotspot shift.
func rebalanceRun(o exp.Options, path string) error {
	out := struct {
		Description string               `json:"description"`
		Rows        []exp.RebalancePoint `json:"rows"`
	}{
		Description: "F19 rebalancing rows: multi-tenant Zipfian serving with colocated " +
			"hotspots, policy off vs on, across a mid-run hotspot shift. All columns are " +
			"deterministic DES measurements (simulated time): pre/post_shift_ops_per_ms are " +
			"the converged steady states of each regime, imbalance is max/mean per-rank " +
			"sampled serving load at the end. Regenerate with " +
			"`go run ./cmd/vgasbench -rebalance-json -`.",
		Rows: exp.RebalanceBench(o),
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if path == "-" {
		os.Stdout.Write(enc)
		return nil
	}
	return os.WriteFile(path, enc, 0o644)
}

// parseSchedule turns a "rank:vtime,rank:vtime" flag value into a fault
// schedule by feeding each pair through the canonical fault-plan parser
// under the given key ("kill" or "restart").
func parseSchedule(key, spec string) map[int]netsim.VTime {
	terms := make([]string, 0, 4)
	for _, t := range strings.Split(spec, ",") {
		terms = append(terms, key+"="+strings.TrimSpace(t))
	}
	p, err := netsim.ParseFaultPlan(strings.Join(terms, ","))
	if err != nil {
		fatalf("vgasbench: bad %s schedule %q: %v", key, spec, err)
	}
	if key == "kill" {
		return p.KillAt
	}
	return p.RestartAt
}

// mergeSchedule overlays add onto base (flag entries win over the
// NMVGAS_FAULTS base plan).
func mergeSchedule(base, add map[int]netsim.VTime) map[int]netsim.VTime {
	if base == nil {
		return add
	}
	for r, t := range add {
		base[r] = t
	}
	return base
}

// observedRun drives a migration-under-load workload on the DES engine
// with Config.Metrics on and a trace ring attached, then writes the
// registry snapshot (Prometheus text, or JSON for .json paths) and the
// Chrome trace-event export to the requested files.
func observedRun(seed int64, metricsOut, traceOut string) error {
	w, err := runtime.NewWorld(runtime.Config{
		Ranks: 4, Mode: runtime.AGASNM, Engine: runtime.EngineDES, Metrics: true,
		Pulse: runtime.PulseConfig{Enabled: true},
	})
	if err != nil {
		return err
	}
	defer w.Stop()
	flight := trace.NewFlight(w, trace.FlightConfig{Capacity: 1 << 15})
	flight.Arm()
	ring := flight.Ring()
	bump := w.Register("bump", func(c *runtime.Ctx) { c.Continue(nil) })
	w.Start()

	const nblocks = 16
	lay, err := w.AllocCyclic(0, 512, nblocks)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	pub := metrics.PublishWorld(reg, w)
	health := metrics.PublishHealth(reg, w)
	sampler := metrics.NewSampler(w)
	sampler.RunDES(50*netsim.Microsecond, 8)

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 8; i++ {
		w.MustWait(w.Proc(0).Migrate(lay.BlockAt(uint32(rng.Intn(nblocks))), 1+rng.Intn(3)))
	}
	buf := make([]byte, 64)
	for i := 0; i < 200; i++ {
		g := lay.BlockAt(uint32(rng.Intn(nblocks)))
		switch i % 4 {
		case 0:
			w.MustWait(w.Proc(0).Put(g, buf))
		case 1:
			w.MustWait(w.Proc(0).Get(g, 64))
		default:
			w.MustWait(w.Proc(0).Call(g, bump, nil))
		}
	}
	pub.Refresh()
	health.Refresh()
	sampler.Publish(reg)

	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if filepath.Ext(metricsOut) == ".json" {
			err = reg.WriteJSON(f)
		} else {
			err = reg.WritePrometheus(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		// Validate what actually landed on disk, so the CI smoke job can
		// rely on the exit code alone.
		raw, err := os.ReadFile(metricsOut)
		if err != nil {
			return err
		}
		if filepath.Ext(metricsOut) == ".json" {
			if !json.Valid(raw) {
				return fmt.Errorf("%s: snapshot is not valid JSON", metricsOut)
			}
		} else if err := metrics.ValidatePrometheus(strings.NewReader(string(raw))); err != nil {
			return fmt.Errorf("%s: %v", metricsOut, err)
		}
		fmt.Printf("wrote metrics snapshot to %s (validated)\n", metricsOut)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		err = ring.DumpChrome(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		raw, err := os.ReadFile(traceOut)
		if err != nil {
			return err
		}
		if !json.Valid(raw) {
			return fmt.Errorf("%s: trace export is not valid JSON", traceOut)
		}
		fmt.Printf("wrote Chrome trace (%d events) to %s — load it in Perfetto (validated)\n",
			ring.Total(), traceOut)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
