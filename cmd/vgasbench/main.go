// Command vgasbench regenerates the paper's tables and figures.
//
// Usage:
//
//	vgasbench -list                 # show the experiment registry
//	vgasbench                       # run everything (full scale)
//	vgasbench -quick T1 F5          # run selected experiments, small sweeps
//	vgasbench -csv F1               # emit CSV instead of aligned tables
//	vgasbench -modes agas-nm F6     # restrict row-per-mode sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nmvgas/internal/exp"
	"nmvgas/internal/runtime"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "run reduced sweeps")
	csv := flag.Bool("csv", false, "emit CSV")
	seed := flag.Int64("seed", 42, "workload seed")
	modes := flag.String("modes", "", "comma-separated address-space modes to sweep "+
		"(pgas, agas-sw, agas-nm; empty = all). Experiments with fixed per-mode "+
		"columns always sweep every mode.")
	flag.Parse()

	if *list {
		for _, e := range exp.Registry {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	o := exp.Options{Quick: *quick, Seed: *seed}
	if *modes != "" {
		for _, name := range strings.Split(*modes, ",") {
			m, err := runtime.ParseMode(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "vgasbench: %v\n", err)
				os.Exit(2)
			}
			o.Spaces = append(o.Spaces, runtime.SpaceFor(m))
		}
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	for _, id := range ids {
		e, ok := exp.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "vgasbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		tb := e.Run(o)
		if *csv {
			fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			continue
		}
		if err := tb.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vgasbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
