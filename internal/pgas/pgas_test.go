package pgas

import (
	"errors"
	"testing"
	"testing/quick"

	"nmvgas/internal/gas"
)

func TestOwnerIsAlwaysHome(t *testing.T) {
	r := NewResolver(8)
	f := func(homeRaw uint8, block uint32, off uint32) bool {
		home := int(homeRaw % 8)
		g := gas.New(home, gas.BlockID(block), off&(gas.MaxBlockSize-1))
		o, err := r.Owner(g)
		return err == nil && o == home
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOwnerRejectsOutOfWorld(t *testing.T) {
	r := NewResolver(4)
	if _, err := r.Owner(gas.New(4, 1, 0)); !errors.Is(err, gas.ErrBadAddress) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.Owner(gas.New(3, 1, 0)); err != nil {
		t.Fatalf("in-world address rejected: %v", err)
	}
}

func TestRanks(t *testing.T) {
	if NewResolver(16).Ranks() != 16 {
		t.Fatal("Ranks mismatch")
	}
}
