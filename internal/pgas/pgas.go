// Package pgas implements the static-translation baseline: the classical
// partitioned global address space in which an address's owner is a pure
// function of the address. Translation is arithmetic — no table, no
// directory, no network state — which makes it the latency floor every
// AGAS design is measured against. The price is rigidity: blocks can
// never move, so data locality can only be chosen once, at allocation.
package pgas

import (
	"errors"

	"nmvgas/internal/gas"
)

// ErrNoMigration is returned for any attempt to migrate a block under
// static PGAS addressing.
var ErrNoMigration = errors.New("pgas: static addressing cannot migrate blocks")

// Resolver performs arithmetic translation.
type Resolver struct {
	ranks int
}

// NewResolver returns a resolver for a world of the given size.
func NewResolver(ranks int) *Resolver { return &Resolver{ranks: ranks} }

// Owner returns the locality that owns g: always its encoded home. The
// error return exists to share a signature with dynamic resolvers and is
// non-nil only for addresses outside the world.
func (r *Resolver) Owner(g gas.GVA) (int, error) {
	h := g.Home()
	if h >= r.ranks {
		return 0, gas.ErrBadAddress
	}
	return h, nil
}

// Ranks returns the world size the resolver was built for.
func (r *Resolver) Ranks() int { return r.ranks }
