package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
)

func init() {
	register("F17", "Fig. 17: parallel DES scaling — events/sec vs shard count at 1024+ localities", f17ParScaling)
	register("F18", "Fig. 18: translation/forwarding cost vs topology distance (nm/sw crossover)", f18DistanceCrossover)
}

// f17Workload drives a hot-potato parcel storm: every rank seeds one
// potato that relays rank-to-rank for ttl hops, next hop chosen by an
// LCG carried in the payload. The work is entirely handler-driven — no
// driver round-trips — so the event population spreads across all ranks
// and the windowed engine can actually overlap shards. Returns
// (events executed, parcels run, wall-clock).
//
// ParcelsRun is the golden counter: potatoes × (ttl+1) handler runs,
// independent of engine, shard count, and wall-clock — the CI scaling
// smoke compares it across shard counts to catch determinism breaks.
func f17Workload(w *runtime.World, ttl int) (events uint64, parcels int64, wall time.Duration) {
	ranks := w.Config().Ranks
	var dead atomic.Int64 // potatoes that exhausted their ttl (handler-side, any rank)
	relay := w.Register("relay", func(c *runtime.Ctx) {
		p := c.P.Payload
		hops := parcel.U64(p, 0)
		if hops == 0 {
			dead.Add(1)
			return
		}
		state := parcel.U64(p, 8)*6364136223846793005 + 1442695040888963407
		next := int(state>>33) % c.Ranks()
		buf := parcel.PutU64(nil, hops-1)
		buf = parcel.PutU64(buf, state)
		c.Call(c.World().LocalityGVA(next), c.P.Action, buf)
	})
	w.Start()
	for r := 0; r < ranks; r++ {
		buf := parcel.PutU64(nil, uint64(ttl))
		buf = parcel.PutU64(buf, uint64(r+1)*0x9E3779B9)
		w.Proc(r).Call(w.LocalityGVA((r+1)%ranks), relay, buf)
	}
	start := time.Now()
	// Stride-checked drain on the hot path: the completion counter is an
	// atomic the handlers bump from worker goroutines, so probing it every
	// event would serialize the windows for nothing. The sharded driver
	// quantizes to window boundaries anyway; the classic engine checks
	// every 4096 events. Overshoot is irrelevant — the trailing Run()
	// drains residual acks either way, so events/golden counts are stable.
	w.Engine().RunUntilStride(func() bool { return dead.Load() >= int64(ranks) }, 4096)
	w.Engine().Run()
	wall = time.Since(start)
	events = w.Engine().Processed()
	parcels = w.Stats().ParcelsRun
	w.Stop()
	return events, parcels, wall
}

// ScalePoint is one measured row of the F17 scaling sweep in
// machine-readable form (vgasbench -scale-json emits these as
// BENCH_PR8-style records).
type ScalePoint struct {
	Localities    int     `json:"localities"`
	Shards        int     `json:"shards"`
	Events        uint64  `json:"events"`
	GoldenParcels int64   `json:"golden_parcels"`
	WallNS        int64   `json:"wall_ns"`
	EventsPerSec  float64 `json:"events_per_sec"`
	NSPerEvent    float64 `json:"ns_per_event"`
}

// ScaleBench runs the hot-potato storm across the configured world-size
// × shard-count sweep and returns the raw measurements. GoldenParcels
// is deterministic (potatoes × (ttl+1)) and must agree across shard
// counts at the same world size; the wall-clock columns scale with the
// host's core count.
func ScaleBench(o Options) []ScalePoint {
	rankSweep := []int{256, 1024, 2048, 4096}
	shardSweep := []int{0, 1, 2, 4, 8}
	ttl := 32
	if o.Quick {
		rankSweep = []int{64, 256}
		shardSweep = []int{0, 1, 4}
		ttl = 8
	}
	if len(o.Localities) > 0 {
		rankSweep = o.Localities
	}
	if len(o.ShardSweep) > 0 {
		shardSweep = o.ShardSweep
	}
	topoSpec := o.Topology
	if topoSpec == "" {
		topoSpec = "fat-tree"
	}
	var out []ScalePoint
	for _, ranks := range rankSweep {
		for _, shards := range shardSweep {
			w := newWorld(spaceNM(), ranks, func(c *runtime.Config) {
				c.Shards = shards
				c.Topology = topoFor(topoSpec, ranks)
			})
			events, parcels, wall := f17Workload(w, ttl)
			pt := ScalePoint{
				Localities: ranks, Shards: shards,
				Events: events, GoldenParcels: parcels,
				WallNS: wall.Nanoseconds(),
			}
			if wall > 0 && events > 0 {
				pt.EventsPerSec = float64(events) / wall.Seconds()
				pt.NSPerEvent = float64(wall.Nanoseconds()) / float64(events)
			}
			out = append(out, pt)
		}
	}
	return out
}

// f17ParScaling sweeps world size × shard count on a fat-tree fabric.
// The golden column must be identical down each rank-count group (that
// is the determinism gate); events/sec and ns/event are wall-clock
// measurements and scale with the host's core count — on a single-core
// runner the parallel rows mostly expose the window overhead, on an
// 8-core box shards=8 is where the ≥3× target lives.
func f17ParScaling(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 17: parallel DES scaling, hot-potato storm on a fat-tree",
		"ranks", "shards", "events", "golden_parcels", "wall_ms", "kevents_per_s", "ns_per_event")
	for _, pt := range ScaleBench(o) {
		tb.AddRow(pt.Localities, pt.Shards, int(pt.Events), pt.GoldenParcels,
			float64(pt.WallNS)/1e6, pt.EventsPerSec/1e3, pt.NSPerEvent)
	}
	return tb
}

// spaceNM returns the network-managed space spec.
func spaceNM() runtime.SpaceSpec {
	for _, sp := range spaces {
		if sp.Mode == runtime.AGASNM {
			return sp
		}
	}
	panic("exp: no agas-nm space registered")
}

// topoFor builds the fabric named by spec over the given rank count
// (bare "fat-tree" defaults to √ranks-sized leaves, two leaves per pod,
// 2× oversubscription per aggregation level).
func topoFor(spec string, ranks int) netsim.Topology {
	t, err := netsim.ParseTopology(spec, ranks)
	if err != nil {
		panic(err)
	}
	return t
}

// DistanceCosts measures the per-distance translation/forwarding cost
// on a 64-rank fabric built from the given topology spec (empty =
// balanced fat-tree, whose leaves of 8 expose hop distances 1, 3, and
// 5): a direct put at each distance under static addressing, and a
// stale-translation put whose repair — host NACK + re-route for the
// software space, in-network NIC forward for the network-managed space —
// spans that distance. Exported so the demo's -topology tour can print
// the same table the F18 experiment records.
func DistanceCosts(spec string) *stats.Table {
	const ranks = 64
	if spec == "" {
		spec = "fat-tree" // leaf=8, pod=2: 16 ranks per pod
	}
	topo, err := netsim.ParseTopology(spec, ranks)
	if err != nil {
		panic(err)
	}
	tb := stats.NewTable(
		"translation/forwarding cost vs "+topo.Name()+" distance (64 ranks)",
		"hops", "tier", "pgas_put_us", "sw_stale_us", "nm_stale_us")
	mut := func(c *runtime.Config) { c.Topology = topo }
	// Sender is rank 0; the home is the nearest other rank, so the
	// allocation round trip is off the probed path. The block then
	// migrates to an owner at each distinct hop distance the fabric
	// exposes (first representative per distance, scanning up).
	home := 1
	for r := 2; r < ranks; r++ {
		if topo.Hops(0, r) < topo.Hops(0, home) {
			home = r
		}
	}
	type tier struct{ hops, owner int }
	var cases []tier
	seen := map[int]bool{}
	for r := 1; r < ranks; r++ {
		if r == home {
			continue
		}
		if h := topo.Hops(0, r); !seen[h] {
			seen[h] = true
			cases = append(cases, tier{h, r})
		}
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].hops < cases[j].hops })
	for _, cse := range cases {
		hops := cse.hops
		row := map[runtime.Mode]float64{}
		for _, sp := range spaces {
			w := newWorld(sp, ranks, mut)
			w.Start()
			var cost netsim.VTime
			if sp.Caps.Migration {
				lay, err := w.AllocLocal(home, 256, 1)
				if err != nil {
					panic(err)
				}
				g := lay.BlockAt(0)
				w.MustWait(w.Proc(0).Put(g, make([]byte, 32))) // warm translation state
				w.MustWait(w.Proc(0).Migrate(g, cse.owner))
				// First post-migration put from the sender: stale state,
				// full repair on the critical path.
				cost = timeOp(w, func() *runtime.LCORef {
					return w.Proc(0).Put(g, make([]byte, 32))
				})
			} else {
				lay, err := w.AllocLocal(cse.owner, 256, 1)
				if err != nil {
					panic(err)
				}
				cost = timeOp(w, func() *runtime.LCORef {
					return w.Proc(0).Put(lay.BlockAt(0), make([]byte, 32))
				})
			}
			row[sp.Mode] = cost.Micros()
			w.Stop()
		}
		tb.AddRow(hops, tierLabel(topo.Name(), hops), row[runtime.PGAS], row[runtime.AGASSW], row[runtime.AGASNM])
	}
	return tb
}

// tierLabel names a hop distance in the fabric's own vocabulary.
func tierLabel(topoName string, hops int) string {
	switch {
	case strings.HasPrefix(topoName, "fat-tree"):
		switch hops {
		case 1:
			return "intra-leaf"
		case 3:
			return "intra-pod"
		case 5:
			return "inter-pod"
		}
	case strings.HasPrefix(topoName, "dragonfly"):
		switch hops {
		case 1:
			return "intra-group"
		case 3:
			return "inter-group"
		}
	case strings.HasPrefix(topoName, "two-tier"):
		switch hops {
		case 1:
			return "intra-pod"
		case 3:
			return "inter-pod"
		}
	}
	return fmt.Sprintf("%d-hop", hops)
}

// f18DistanceCrossover records the distance table: the software space's
// stale-put penalty grows with the host-forward detour's hop distance,
// while in-network forwarding keeps the network-managed space's penalty
// close to the direct cost at every tier.
func f18DistanceCrossover(Options) *stats.Table {
	return DistanceCosts("")
}
