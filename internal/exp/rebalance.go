package exp

import (
	"nmvgas/internal/loadbal"
	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
	"nmvgas/internal/workloads"
)

func init() {
	register("F19", "Fig. 19: multi-tenant rebalancing — closed-loop heat policy vs static placement across a hotspot shift", f19Rebalance)
}

// RebalancePoint is one measured (mode, policy) cell of the F19
// rebalancing experiment in machine-readable form (vgasbench
// -rebalance-json emits these as BENCH_PR9-style records).
type RebalancePoint struct {
	Mode         string  `json:"mode"`
	Policy       bool    `json:"policy"`
	PreOpsPerMs  float64 `json:"pre_shift_ops_per_ms"`
	PostOpsPerMs float64 `json:"post_shift_ops_per_ms"`
	Imbalance    float64 `json:"imbalance"`
	Moves        int64   `json:"moves"`
	MoveFailures int64   `json:"move_failures"`
	Replications int64   `json:"replications"`
	Teardowns    int64   `json:"teardowns"`
	Detours      int64   `json:"host_detours"`
	// Pulse marks a run whose policy epochs were driven by the in-runtime
	// pulse (Policy.AttachPulse) instead of the driver loop; PulseTicks is
	// how many ticks fired (0 for driver-stepped runs).
	Pulse      bool   `json:"pulse,omitempty"`
	PulseTicks uint64 `json:"pulse_ticks,omitempty"`
}

// RebalanceBench drives the multi-tenant serving workload with and
// without the closed-loop policy on every migrating address space.
//
// The workload is adversarial by construction: one tenant per rank,
// blocks-per-tenant a multiple of the rank count, so the cyclic layout
// colocates every tenant's Zipf-hottest block on the SAME rank. Without
// the policy the bulk of all traffic serializes through that one
// locality — and stays remote for everyone. Each control epoch the
// policy migrates each tenant's dominant blocks to the rank that
// hammers them and replicates the read-mostly shared region, after
// which almost every access is a local hit. Mid-run, Shift() rotates
// every hotspot onto fresh (again colocated) blocks, invalidating the
// converged placement; the steady state measured after the shift shows
// whether the policy re-converges or the world stays pinned on the new
// hot rank.
//
// PreOpsPerMs/PostOpsPerMs are the last epoch of each regime — the
// converged steady states the F19 shape test compares. Imbalance is
// max/mean of the final epoch's per-rank sampled serving load.
func RebalanceBench(o Options) []RebalancePoint {
	// perRank > 200 so every epoch crosses the shared region's write
	// stride: the rare writes keep replica coherence honest, and their
	// invalidation windows are where software AGAS pays host-side repair
	// detours that the NIC-managed space absorbs in-network.
	perRank, preEpochs, postEpochs := 480, 5, 5
	if o.Quick {
		perRank, preEpochs, postEpochs = 220, 4, 4
	}
	perTenant := uint32(8)
	if o.TenantBlocks > 0 {
		perTenant = uint32(o.TenantBlocks)
	}
	shifts := 1
	if o.Shifts > 0 {
		shifts = o.Shifts
	}
	budget := 16
	if o.MoveBudget > 0 {
		budget = o.MoveBudget
	}
	var out []RebalancePoint
	for _, sp := range o.sweep() {
		if !sp.Caps.Migration {
			continue // a static space has no policy story to measure
		}
		for _, policy := range []bool{false, true} {
			pt, _ := rebalanceCell(o, sp, perRank, preEpochs, postEpochs,
				perTenant, shifts, budget, policy, false)
			out = append(out, pt)
		}
	}
	return out
}

// rebalanceExtra carries the pulse-side observations of a viaPulse cell:
// how many ticks fired and when the heat-imbalance watchdog first saw —
// and last saw — the hotspot (F20's remediation-latency row reads these).
type rebalanceExtra struct {
	pulses      uint64
	heatOnset   uint64 // first pulse the heat watchdog left ok
	heatLastHot uint64 // last pulse it was still above ok
}

func rebalanceCell(o Options, sp runtime.SpaceSpec, perRank, preEpochs, postEpochs int,
	perTenant uint32, shifts, budget int, policy, viaPulse bool) (RebalancePoint, rebalanceExtra) {
	const (
		ranks  = 8
		window = 8
	)
	w := newWorld(sp, ranks, withHeat, func(cfg *runtime.Config) {
		if viaPulse {
			// The pulse replaces the driver epoch loop; the heat watchdog's
			// thresholds are lowered so the colocated hotspot registers as
			// an anomaly the pulse-driven policy then remediates.
			cfg.Pulse = runtime.PulseConfig{
				Enabled: true,
				Period:  200 * netsim.Microsecond,
				Watchdogs: runtime.WatchdogConfig{
					HeatWarn: 2, HeatCritical: 3, HeatMinSamples: 64,
				},
			}
		}
	})
	tn := workloads.NewTenants(w)
	var extra rebalanceExtra
	if viaPulse {
		w.OnPulse("exp.heat-track", func(pi runtime.PulseInfo) {
			for _, st := range w.Health().Watchdogs {
				if st.Name == runtime.WatchHeatImbalance && st.Level > runtime.WatchOK {
					if extra.heatOnset == 0 {
						extra.heatOnset = pi.Seq
					}
					extra.heatLastHot = pi.Seq
				}
			}
		})
	}
	w.Start()
	// bsize 256, 4 shared read-mostly blocks, 64B reads, skew 1.8, a
	// write every 6th tenant op: hot blocks are write-mixed (so the
	// policy migrates them) while the shared region stays read-dominated
	// (so the policy replicates it).
	if err := tn.Setup(256, perTenant, 4, 64, 1.8, 6, o.Seed); err != nil {
		panic(err)
	}
	var p *loadbal.Policy
	if policy {
		cfg := loadbal.PolicyConfig{
			Layout:     tn.Layout(),
			MoveBudget: budget,
			// Low hot floor: the colocated second- and third-ranked Zipf
			// blocks carry enough aggregate traffic to matter, so the
			// policy must chase more than one block per tenant.
			HotShare: 0.005,
		}
		if sp.Caps.Replication {
			cfg.Replicas = ranks - 1
		}
		var err error
		if p, err = loadbal.NewPolicy(w, cfg); err != nil {
			panic(err)
		}
		if viaPulse {
			p.AttachPulse(1)
		}
	}
	imb := 0.0
	epoch := func() float64 {
		start := w.Now()
		n, err := tn.Run(perRank, window)
		if err != nil {
			panic(err)
		}
		elapsed := w.Now() - start
		if p != nil && viaPulse {
			// The pulse steps the policy in-runtime; the driver only reads
			// the latest control outcome.
			imb = p.LastReport().Imbalance
		} else if p != nil {
			rep, err := p.Step()
			if err != nil {
				panic(err)
			}
			imb = rep.Imbalance
		} else {
			// Policy off: consume the heat window anyway so both arms
			// measure identical per-epoch sampling state.
			loads, _ := w.HeatEpoch()
			imb = loadbal.Imbalance(loads)
		}
		return float64(n) / (elapsed.Micros() / 1000)
	}
	var pre, post float64
	for e := 0; e < preEpochs; e++ {
		pre = epoch()
	}
	for s := 0; s < shifts; s++ {
		tn.Shift()
		for e := 0; e < postEpochs; e++ {
			post = epoch()
		}
	}
	ws := w.Stats()
	pt := RebalancePoint{
		Mode:        sp.String(),
		Policy:      policy,
		PreOpsPerMs: pre, PostOpsPerMs: post,
		Imbalance: imb,
		Detours:   ws.HostForwards + ws.HostNacks,
		Pulse:     viaPulse,
	}
	if p != nil {
		st := p.Stats()
		pt.Moves, pt.MoveFailures = st.Moves, st.MoveFailures
		pt.Replications, pt.Teardowns = st.Replications, st.Teardowns
	}
	extra.pulses = w.PulseCount()
	pt.PulseTicks = extra.pulses
	w.Stop()
	return pt, extra
}

// f19Rebalance renders the rebalancing sweep: for each migrating mode, a
// policy-off baseline row and a policy-on row. The claims under test:
// the policy's steady state sustains a multiple of the static
// throughput before AND after the hotspot shift (it re-converges), its
// serving load flattens to max/mean ≤ 1.3, and the migration churn that
// software AGAS pays for in host-side repair detours is absorbed
// in-network by the NIC-managed space.
func f19Rebalance(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 19: multi-tenant Zipfian serving across a hotspot shift (ops/ms; policy off vs on)",
		"mode", "policy", "pre_ops_ms", "post_ops_ms", "imbalance", "moves", "repl", "detours")
	for _, pt := range RebalanceBench(o) {
		pol := "off"
		if pt.Policy {
			pol = "on"
		}
		tb.AddRow(pt.Mode, pol, pt.PreOpsPerMs, pt.PostOpsPerMs, pt.Imbalance,
			pt.Moves, pt.Replications, pt.Detours)
	}
	return tb
}
