package exp

import (
	"math/rand"

	"nmvgas/internal/agas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/nmagas"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
	"nmvgas/internal/workloads"
)

func init() {
	register("F3", "Fig. 3: NIC translation-table capacity cliff", f3Translation)
	register("F4", "Fig. 4: migration cost vs block size", f4Migration)
	register("F9", "Fig. 9: update throughput vs migration churn", f9Churn)
	register("A1", "Ablation 1: in-network forwarding vs NACK", a1Forwarding)
	register("A2", "Ablation 2: NIC table update policy", a2UpdatePolicy)
}

// f3Translation sweeps the migrated working-set size against a fixed NIC
// table capacity: once the working set exceeds the table, every access
// misses at the source and pays the home bounce (the capacity cliff that
// motivates managing NIC translation state carefully). The unbounded
// software cache never cliffs but pays its per-op software probe.
func f3Translation(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 3: translation behaviour vs working set (NIC table cap = 32)",
		"working_set_blocks", "nm_hit_rate", "nm_avg_us", "sw_hit_rate", "sw_avg_us")
	const tableCap = 32
	sweeps := []uint32{8, 16, 32, 64, 128}
	if o.Quick {
		sweeps = []uint32{8, 32, 64}
	}
	rounds := 3
	for _, ws := range sweeps {
		// Network-managed with a bounded NIC table.
		nmHit, nmUs := translationProbe(o, runtime.SpaceFor(runtime.AGASNM), tableCap, ws, rounds)
		// Software-managed with an unbounded cache.
		swHit, swUs := translationProbe(o, runtime.SpaceFor(runtime.AGASSW), 0, ws, rounds)
		tb.AddRow(ws, nmHit, nmUs, swHit, swUs)
	}
	return tb
}

// translationProbe migrates ws blocks away from their home and then
// round-robins accesses over them from a third rank, returning the
// steady-state source hit rate and mean access latency.
func translationProbe(o Options, sp runtime.SpaceSpec, tableCap int, ws uint32, rounds int) (hitRate, avgUs float64) {
	w := newWorld(sp, 3, func(c *runtime.Config) { c.NICTableCap = tableCap })
	echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(nil) })
	w.Start()
	defer w.Stop()
	lay, err := w.AllocLocal(1, 256, ws)
	if err != nil {
		panic(err)
	}
	for d := uint32(0); d < ws; d++ {
		w.MustWait(w.Proc(1).Migrate(lay.BlockAt(d), 2))
	}
	// One cold pass to populate, then measured passes; the hit rate is
	// computed over the measured passes only (steady state).
	for d := uint32(0); d < ws; d++ {
		w.MustWait(w.Proc(0).Call(lay.BlockAt(d), echo, nil))
	}
	var h0, m0 uint64
	if sp.Caps.NICTranslation {
		h0, m0, _, _ = w.Fabric().NIC(0).Table.Stats()
	} else {
		h0, m0, _, _, _ = w.Locality(0).Cache().Stats()
	}
	var samples []netsim.VTime
	for r := 0; r < rounds; r++ {
		for d := uint32(0); d < ws; d++ {
			samples = append(samples, timeOp(w, func() *runtime.LCORef {
				return w.Proc(0).Call(lay.BlockAt(d), echo, nil)
			}))
		}
	}
	var h1, m1 uint64
	if sp.Caps.NICTranslation {
		h1, m1, _, _ = w.Fabric().NIC(0).Table.Stats()
	} else {
		h1, m1, _, _, _ = w.Locality(0).Cache().Stats()
	}
	if dh, dm := h1-h0, m1-m0; dh+dm > 0 {
		hitRate = float64(dh) / float64(dh+dm)
	}
	return hitRate, meanMicros(samples)
}

// f4Migration measures the end-to-end cost of migrating one block as its
// size grows, per mode, plus the latency penalty suffered by an operation
// issued mid-migration.
func f4Migration(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 4: block migration cost vs size",
		"bsize_B", "sw_migrate_us", "nm_migrate_us", "sw_midflight_put_us", "nm_midflight_put_us")
	sizes := []uint32{256, 4096, 65536, 512 * 1024}
	if o.Quick {
		sizes = []uint32{256, 65536}
	}
	var migrating []runtime.SpaceSpec
	for _, sp := range spaces {
		if sp.Caps.Migration {
			migrating = append(migrating, sp)
		}
	}
	for _, bsize := range sizes {
		mig := make([]float64, len(migrating))
		mid := make([]float64, len(migrating))
		for mi, sp := range migrating {
			w := newWorld(sp, 4)
			w.Start()
			lay, err := w.AllocLocal(1, bsize, 2)
			if err != nil {
				panic(err)
			}
			mig[mi] = timeOp(w, func() *runtime.LCORef {
				return w.Proc(0).Migrate(lay.BlockAt(0), 2)
			}).Micros()
			// Mid-flight: start a migration of the second block, run
			// until the owner has pinned it, then put against it from
			// another rank — the put queues behind the move.
			b1 := lay.BlockAt(1)
			m := w.Proc(0).Migrate(b1, 3)
			w.Engine().RunUntil(func() bool {
				return w.Locality(1).Moving(b1.Block())
			})
			mid[mi] = timeOp(w, func() *runtime.LCORef {
				return w.Proc(2).Put(b1, make([]byte, 8))
			}).Micros()
			w.MustWait(m)
			w.Stop()
		}
		tb.AddRow(bsize, mig[0], mig[1], mid[0], mid[1])
	}
	return tb
}

// f9Churn runs a random-update stream while a background process migrates
// blocks at increasing rates. Software-managed AGAS pays stale-cache
// repair on the data path; network-managed AGAS absorbs churn in NIC
// state.
func f9Churn(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 9: update throughput (Kops/s) vs migration churn",
		"migrations", "sw_update_Kops", "sw_invalidate_Kops", "nm_Kops")
	churns := []int{0, 8, 32, 128}
	if o.Quick {
		churns = []int{0, 16}
	}
	updates := 400
	if o.Quick {
		updates = 100
	}
	for _, nmig := range churns {
		sw := churnRun(o, runtime.SpaceFor(runtime.AGASSW), agas.CorrectionUpdate, nmig, updates)
		swInv := churnRun(o, runtime.SpaceFor(runtime.AGASSW), agas.CorrectionInvalidate, nmig, updates)
		nm := churnRun(o, runtime.SpaceFor(runtime.AGASNM), agas.CorrectionUpdate, nmig, updates)
		tb.AddRow(nmig, sw, swInv, nm)
	}
	return tb
}

// churnRun interleaves nmig migrations with the GUPS stream and returns
// Kops/s of simulated update throughput.
func churnRun(o Options, sp runtime.SpaceSpec, corr agas.CorrectionPolicy, nmig, perRank int) float64 {
	const ranks = 4
	w := newWorld(sp, ranks, func(c *runtime.Config) { c.SWCorrection = corr })
	g := workloads.NewGUPS(w, "gups")
	w.Start()
	defer w.Stop()
	const nblocks = 32
	if err := g.Setup(512, nblocks, workloads.KeysUniform, o.Seed); err != nil {
		panic(err)
	}
	lay := g.Layout()
	// Background churn: migrations issued up front; they interleave with
	// the update stream in simulated time.
	rng := rand.New(rand.NewSource(o.Seed + 1))
	var migs []*runtime.LCORef
	for i := 0; i < nmig; i++ {
		d := uint32(rng.Intn(nblocks))
		migs = append(migs, w.Proc(rng.Intn(ranks)).Migrate(lay.BlockAt(d), rng.Intn(ranks)))
	}
	start := w.Now()
	n, err := g.Run(perRank, 8)
	if err != nil {
		panic(err)
	}
	for _, m := range migs {
		w.MustWait(m)
	}
	elapsed := w.Now() - start
	return float64(n) / (float64(elapsed) / 1e9) / 1e3
}

// a1Forwarding compares the paper's in-network forwarding against
// NACK-and-resend for the first post-migration access.
func a1Forwarding(o Options) *stats.Table {
	tb := stats.NewTable("Ablation 1: stale-access repair (first access after migration)",
		"policy", "first_access_us", "steady_us", "nic_nacks")
	for _, pol := range []struct {
		name string
		p    netsim.Policy
	}{
		{"forward+push", netsim.Policy{ForwardInNetwork: true, PushUpdates: true}},
		{"forward-only", netsim.Policy{ForwardInNetwork: true, PushUpdates: false}},
		{"nack", netsim.Policy{ForwardInNetwork: false, PushUpdates: false}},
	} {
		w := newWorld(runtime.SpaceFor(runtime.AGASNM), 4, func(c *runtime.Config) {
			c.Policy = pol.p
			c.PolicySet = true
		})
		echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(nil) })
		w.Start()
		lay, err := w.AllocLocal(1, 256, 1)
		if err != nil {
			panic(err)
		}
		g := lay.BlockAt(0)
		w.MustWait(w.Proc(1).Migrate(g, 2))
		first := timeOp(w, func() *runtime.LCORef { return w.Proc(0).Call(g, echo, nil) })
		steady := timeOp(w, func() *runtime.LCORef { return w.Proc(0).Call(g, echo, nil) })
		tb.AddRow(pol.name, first.Micros(), steady.Micros(), w.Locality(0).Stats.NICNacks.Load())
		w.Stop()
	}
	return tb
}

// a2UpdatePolicy compares lazy (on-forward) against eager (broadcast)
// NIC-table update propagation: first-access latency from a third party
// vs control-message volume.
func a2UpdatePolicy(o Options) *stats.Table {
	tb := stats.NewTable("Ablation 2: NIC table update propagation",
		"policy", "first_access_us", "ctrl_msgs")
	for _, pol := range []struct {
		name string
		u    nmagas.UpdatePolicy
	}{
		{"on-forward", nmagas.UpdateOnForward},
		{"broadcast", nmagas.UpdateBroadcast},
	} {
		w := newWorld(runtime.SpaceFor(runtime.AGASNM), 8, func(c *runtime.Config) { c.NMUpdate = pol.u })
		echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(nil) })
		w.Start()
		lay, err := w.AllocLocal(1, 256, 1)
		if err != nil {
			panic(err)
		}
		g := lay.BlockAt(0)
		before := w.Fabric().TotalStats().TableUpdatesRx
		w.MustWait(w.Proc(1).Migrate(g, 2))
		w.Drain() // let eager broadcasts land before measuring
		first := timeOp(w, func() *runtime.LCORef { return w.Proc(5).Call(g, echo, nil) })
		ctrl := w.Fabric().TotalStats().TableUpdatesRx - before
		tb.AddRow(pol.name, first.Micros(), ctrl)
		w.Stop()
	}
	return tb
}
