package exp

import (
	"nmvgas/internal/collective"
	"nmvgas/internal/gas"
	"nmvgas/internal/loadbal"
	"nmvgas/internal/netsim"
	"nmvgas/internal/stats"
	"nmvgas/internal/workloads"
)

func init() {
	register("F5", "Fig. 5: GUPS random-update throughput vs localities", f5GUPS)
	register("F6", "Fig. 6: pointer-chase latency, scattered vs consolidated", f6Chase)
	register("F7", "Fig. 7: BFS traversal rate, static vs rebalanced", f7BFS)
	register("F8", "Fig. 8: stencil under node imbalance, static vs adaptive", f8Stencil)
	register("F10", "Fig. 10: skewed histogram, before/after heat-driven placement", f10Histogram)
}

// f5GUPS sweeps locality counts: the per-update translation overhead
// separates the modes, and the gap persists with scale.
func f5GUPS(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 5: GUPS (Kups/s) vs localities",
		"ranks", "pgas_Kups", "agas_sw_Kups", "agas_nm_Kups")
	rankSweep := []int{2, 4, 8, 16, 32}
	perRank := 300
	if o.Quick {
		rankSweep = []int{2, 8}
		perRank = 80
	}
	for _, ranks := range rankSweep {
		row := make([]float64, len(spaces))
		for mi, sp := range spaces {
			w := newWorld(sp, ranks)
			g := workloads.NewGUPS(w, "gups")
			w.Start()
			if err := g.Setup(1024, uint32(4*ranks), workloads.KeysUniform, o.Seed); err != nil {
				panic(err)
			}
			start := w.Now()
			n, err := g.Run(perRank, 8)
			if err != nil {
				panic(err)
			}
			elapsed := w.Now() - start
			row[mi] = float64(n) / (float64(elapsed) / 1e9) / 1e3
			w.Stop()
		}
		tb.AddRow(ranks, row[0], row[1], row[2])
	}
	return tb
}

// f6Chase measures per-hop cost of a scattered linked ring, then
// consolidates it with migration (AGAS modes only) and re-measures.
func f6Chase(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 6: pointer-chase per-hop latency (µs)",
		"mode", "scattered_us_per_hop", "consolidated_us_per_hop", "speedup")
	const ranks = 8
	nodes, hops := uint32(64), uint64(256)
	if o.Quick {
		nodes, hops = 32, 96
	}
	for _, sp := range o.sweep() {
		w := newWorld(sp, ranks)
		c := workloads.NewChase(w, "chase")
		w.Start()
		if err := c.Setup(nodes, o.Seed); err != nil {
			panic(err)
		}
		measure := func() float64 {
			start := w.Now()
			if _, err := c.Run(0, hops); err != nil {
				panic(err)
			}
			return (w.Now() - start).Micros() / float64(hops)
		}
		scattered := measure()
		consolidated := scattered
		if sp.Caps.Migration {
			if err := loadbal.Consolidate(w, 0, c.Layout(), 0); err != nil {
				panic(err)
			}
			consolidated = measure()
		}
		tb.AddRow(sp.String(), scattered, consolidated, scattered/consolidated)
		w.Stop()
	}
	return tb
}

// f7BFS starts from a pathological placement (every distance block on
// rank 0), measures BFS, rebalances by observed heat, and measures two
// more traversals: the *cold* one pays each mode's stale-translation
// repair for the mass migration (SW: home host forwarding storm; NM:
// in-network forwards), the *warm* one shows the steady state.
func f7BFS(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 7: BFS traversal rate (KTEPS), blocks start on rank 0",
		"mode", "static_KTEPS", "rebal_cold_KTEPS", "rebal_warm_KTEPS", "moved_blocks")
	const ranks = 8
	n, deg := uint32(2000), 8
	if o.Quick {
		n, deg = 400, 4
	}
	for _, sp := range o.sweep() {
		w := newWorld(sp, ranks, withHeat)
		ops := collective.New(w)
		b := workloads.NewBFS(w, ops, "bfs")
		w.Start()
		g := workloads.GenGraph(n, deg, o.Seed)
		if err := b.Setup(g, 32, gas.DistLocal); err != nil {
			panic(err)
		}
		teps := func() float64 {
			start := w.Now()
			edges, _, err := b.Run(0)
			if err != nil {
				panic(err)
			}
			return float64(edges) / (float64(w.Now()-start) / 1e9) / 1e3
		}
		static := teps()
		cold, warm := static, static
		moved := 0
		if sp.Caps.Migration {
			var err error
			moved, err = loadbal.Rebalance(w, 0, b.Layout())
			if err != nil {
				panic(err)
			}
			cold = teps()
			warm = teps()
		}
		tb.AddRow(sp.String(), static, cold, warm, moved)
		w.Stop()
	}
	return tb
}

// f8Stencil injects node heterogeneity (one slow rank) and compares the
// static blocked partition against adaptive repartitioning by migration.
func f8Stencil(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 8: stencil time per step (µs), one 8x-slow rank",
		"mode", "static_us_per_step", "adaptive_us_per_step", "speedup")
	const ranks = 8
	steps := 6
	perBlock, nblocks := uint32(128), uint32(32)
	cellCost := 200 * netsim.Nanosecond
	if o.Quick {
		steps, perBlock, nblocks = 3, 64, 16
	}
	slow := make([]float64, ranks)
	for i := range slow {
		slow[i] = 1
	}
	slow[0] = 8
	for _, sp := range o.sweep() {
		run := func(adapt bool) float64 {
			w := newWorld(sp, ranks)
			s := workloads.NewStencil(w, "st")
			w.Start()
			defer w.Stop()
			if err := s.Setup(perBlock, nblocks, slow, cellCost); err != nil {
				panic(err)
			}
			if adapt {
				if err := s.AdaptPartition(0); err != nil {
					panic(err)
				}
			}
			start := w.Now()
			if err := s.Run(steps); err != nil {
				panic(err)
			}
			return (w.Now() - start).Micros() / float64(steps)
		}
		static := run(false)
		adaptive := static
		if sp.Caps.Migration {
			adaptive = run(true)
		}
		tb.AddRow(sp.String(), static, adaptive, static/adaptive)
	}
	return tb
}

// f10Histogram drives a Zipf-skewed increment stream, then moves the hot
// bins to the ranks that hammer them.
func f10Histogram(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 10: skewed histogram throughput (Kops/s)",
		"mode", "static_Kops", "placed_Kops", "moved_blocks")
	const ranks = 8
	perRank := 300
	if o.Quick {
		perRank = 80
	}
	for _, sp := range o.sweep() {
		w := newWorld(sp, ranks, withHeat)
		h := workloads.NewHistogram(w, "hist")
		w.Start()
		if err := h.Setup(64, 32, 1.4, o.Seed); err != nil {
			panic(err)
		}
		rate := func() float64 {
			start := w.Now()
			n, err := h.Run(perRank, 8)
			if err != nil {
				panic(err)
			}
			return float64(n) / (float64(w.Now()-start) / 1e9) / 1e3
		}
		static := rate()
		placed := static
		moved := 0
		if sp.Caps.Migration {
			var err error
			moved, err = loadbal.Rebalance(w, 0, h.Layout())
			if err != nil {
				panic(err)
			}
			placed = rate()
		}
		tb.AddRow(sp.String(), static, placed, moved)
		w.Stop()
	}
	return tb
}
