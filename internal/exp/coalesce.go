package exp

import (
	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
	"nmvgas/internal/workloads"
)

func init() {
	register("F13", "Fig. 13: parcel coalescing — throughput vs latency trade", f13Coalesce)
}

// f13Coalesce sweeps the coalescing window for a parcel-dominated
// workload (GUPS) under the network-managed mode: larger batches amortize
// per-message injection and NIC occupancy (throughput up) but delay lone
// parcels and detour post-migration traffic through the batch target
// (latency up). This is the trade the group's runtime papers discuss.
func f13Coalesce(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 13: coalescing window sweep (agas-nm, 8 ranks)",
		"max_parcels", "gups_Kups", "wire_msgs", "lone_parcel_rtt_us", "batch_reroutes")
	const ranks = 8
	perRank := 300
	if o.Quick {
		perRank = 80
	}
	for _, window := range []int{1, 4, 16, 64} {
		w := newWorld(runtime.SpaceFor(runtime.AGASNM), ranks, func(c *runtime.Config) {
			if window > 1 {
				c.Coalesce = runtime.CoalesceConfig{MaxParcels: window, MaxDelay: 2 * netsim.Microsecond}
			}
		})
		g := workloads.NewGUPS(w, "gups")
		echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(nil) })
		w.Start()
		if err := g.Setup(1024, uint32(4*ranks), workloads.KeysUniform, o.Seed); err != nil {
			panic(err)
		}
		start := w.Now()
		n, err := g.Run(perRank, 16)
		if err != nil {
			panic(err)
		}
		elapsed := w.Now() - start
		kups := float64(n) / (float64(elapsed) / 1e9) / 1e3
		msgs := w.Fabric().TotalStats().Sent

		// A lone request-reply with nothing to batch against: pays the
		// full MaxDelay twice when coalescing is on.
		lay, err := w.AllocLocal(1, 256, 1)
		if err != nil {
			panic(err)
		}
		w.MustWait(w.Proc(0).Call(lay.BlockAt(0), echo, nil))
		rtt := timeOp(w, func() *runtime.LCORef {
			return w.Proc(0).Call(lay.BlockAt(0), echo, nil)
		})
		// Under agas-nm the NIC scatters arriving batches, so records that
		// chased a migrated block never detour through the batch target's
		// host: the re-route counter stays zero where the software-managed
		// variant pays one per stale record.
		tb.AddRow(window, kups, msgs, rtt.Micros(), w.Stats().BatchReroutes)
		w.Stop()
	}
	return tb
}
