package exp

import (
	"nmvgas/internal/collective"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
)

func init() {
	register("T3", "Table 3: scaling of put latency and barrier time", t3Scaling)
}

// t3Scaling sweeps the world size: remote put latency should stay flat
// (crossbar fabric) while tree-barrier time grows logarithmically; the
// translation overhead gap between modes must persist at every scale.
func t3Scaling(o Options) *stats.Table {
	tb := stats.NewTable("Table 3: scaling, 2–64 localities",
		"ranks", "pgas_put_us", "sw_put_us", "nm_put_us", "nm_barrier_us")
	sweep := []int{2, 4, 8, 16, 32, 64}
	if o.Quick {
		sweep = []int{2, 8, 32}
	}
	for _, ranks := range sweep {
		put := make([]float64, len(spaces))
		var barrier float64
		for mi, sp := range spaces {
			w := newWorld(sp, ranks)
			var ops *collective.Ops
			if sp.Caps.NICTranslation {
				ops = collective.New(w)
			}
			w.Start()
			lay, err := w.AllocCyclic(0, 4096, uint32(ranks))
			if err != nil {
				panic(err)
			}
			g := lay.BlockAt(uint32(ranks - 1))
			buf := make([]byte, 64)
			w.MustWait(w.Proc(0).Put(g, buf)) // warm
			put[mi] = timeOp(w, func() *runtime.LCORef {
				return w.Proc(0).Put(g, buf)
			}).Micros()
			if ops != nil {
				barrier = timeOp(w, func() *runtime.LCORef {
					return ops.Barrier(0)
				}).Micros()
			}
			w.Stop()
		}
		tb.AddRow(ranks, put[0], put[1], put[2], barrier)
	}
	return tb
}
