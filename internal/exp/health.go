package exp

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
	"nmvgas/internal/trace"
)

func init() {
	register("F20", "Fig. 20: runtime health — injected anomalies, watchdog trip latency, flight-recorder capture", f20Health)
}

// HealthPoint is one measured F20 scenario: an injected anomaly, the
// watchdog expected to catch it, and how fast (on the pulse clock) it
// did — plus whether the flight recorder's trip bundle retained the
// anomaly window.
type HealthPoint struct {
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"`
	// Watchdog is the monitor the scenario targets.
	Watchdog string `json:"watchdog"`
	// OnsetPulse is the first pulse at which the anomaly was observable
	// at all (first retransmit, first pinned block, first hot epoch).
	OnsetPulse uint64 `json:"onset_pulse"`
	// TripPulse is the pulse at which the watchdog escalated to critical
	// (for the rebalance scenario: the last pulse the heat watchdog still
	// saw the hotspot — the policy's remediation point).
	TripPulse uint64 `json:"trip_pulse"`
	// LatencyPulses is TripPulse minus the first pulse the condition
	// could have tripped (dwell thresholds are subtracted out); -1 means
	// the watchdog never reached critical.
	LatencyPulses int64 `json:"latency_pulses"`
	// BundleEvents is the trace-window size of the trip bundle.
	BundleEvents int `json:"bundle_events"`
	// AnomalyInWindow reports that the bundle's retained trace window
	// contains the anomaly's own protocol events.
	AnomalyInWindow bool `json:"anomaly_in_window"`
	// Recovered reports the world returned to ok after the anomaly was
	// lifted (release, stream drained, or policy convergence).
	Recovered bool   `json:"recovered"`
	Detail    string `json:"detail,omitempty"`
}

// migSpace returns the last built-in space that supports migration (the
// network-managed AGAS space — F20's anomalies exercise the migration
// and reliable-delivery protocols, so a static space has nothing to
// trip).
func migSpace() runtime.SpaceSpec {
	var pick runtime.SpaceSpec
	found := false
	for _, sp := range spaces {
		if sp.Caps.Migration {
			pick, found = sp, true
		}
	}
	if !found {
		panic("exp: no migrating address space registered")
	}
	return pick
}

// healthStorm injects a retransmission storm: a seeded 30%-drop fault
// plan under a put stream makes the reliable layer resend in bursts once
// the 200µs RTO expires. The retransmit-storm watchdog (thresholds
// lowered to 8/32 resends per 50µs pulse) must reach critical within two
// pulses of the first resend, and the armed flight recorder's trip
// bundle must retain retransmit events in its trace window.
func healthStorm(o Options) (HealthPoint, *trace.Bundle) {
	const (
		ranks  = 4
		window = 64
	)
	period := 50 * netsim.Microsecond
	n := 600
	if o.Quick {
		n = 300
	}
	sp := migSpace()
	w := newWorld(sp, ranks, func(cfg *runtime.Config) {
		cfg.Seed = o.Seed
		cfg.Faults = netsim.FaultPlan{Drop: 0.3}
		cfg.Pulse = runtime.PulseConfig{
			Enabled: true,
			Period:  period,
			Watchdogs: runtime.WatchdogConfig{
				RetransWarn: 8, RetransCritical: 32,
			},
		}
	})
	f := trace.NewFlight(w, trace.FlightConfig{Capacity: 4096, MaxBundles: 16})
	f.Arm()
	var onsetPulse, tripPulse, lastRetrans uint64
	w.OnWatchdogTrip(func(ev runtime.WatchdogEvent) {
		if ev.Status.Name == runtime.WatchRetransStorm &&
			ev.Status.Level == runtime.WatchCritical && tripPulse == 0 {
			tripPulse = ev.Pulse
		}
	})
	// Independent onset tracker: the storm condition holds at the first
	// pulse whose resend delta crosses the critical rate. The watchdog's
	// trip must land within two pulses of this.
	w.OnPulse("f20.storm-onset", func(pi runtime.PulseInfo) {
		cum := w.Stats().Delivery.Retransmits
		delta := cum - lastRetrans
		lastRetrans = cum
		if onsetPulse == 0 && delta >= 32 {
			onsetPulse = pi.Seq
		}
	})
	w.Start()
	lay, err := w.AllocCyclic(0, 512, ranks*4)
	if err != nil {
		panic(err)
	}
	// All ranks stream concurrently so the drop plan's resend bursts
	// stack into a genuine storm rather than a trickle.
	gates := make([]*runtime.LCORef, ranks)
	for r := 0; r < ranks; r++ {
		rr := r
		gate := w.NewAndGate(rr, 1)
		gates[rr] = gate
		loc := w.Locality(rr)
		buf := make([]byte, 256)
		issued, completed := 0, 0
		var issue func()
		issue = func() {
			seq := issued
			issued++
			loc.PutAsync(lay.BlockAt(uint32((seq+rr+1)%(ranks*4))), buf, func() {
				completed++
				if issued < n {
					issue()
				} else if completed == n {
					loc.SendParcel(&parcel.Parcel{Action: runtime.ALCOSet, Target: gate.G})
				}
			})
		}
		w.Proc(rr).Run(func() {
			for i := 0; i < window && i < n; i++ {
				issue()
			}
		})
	}
	for _, gate := range gates {
		w.MustWait(gate)
	}
	recovered := w.AwaitHealth(runtime.WatchOK, time.Second)
	ws := w.Stats()

	pt := HealthPoint{
		Scenario:   "retransmit-storm",
		Mode:       sp.String(),
		Watchdog:   runtime.WatchRetransStorm,
		OnsetPulse: onsetPulse,
		TripPulse:  tripPulse,
		Recovered:  recovered,
		Detail: fmt.Sprintf("%d retransmits over %d pulses",
			ws.Delivery.Retransmits, w.PulseCount()),
	}
	pt.LatencyPulses = -1
	if tripPulse > 0 && onsetPulse > 0 {
		pt.LatencyPulses = int64(tripPulse) - int64(onsetPulse)
	}
	// Prefer the critical storm trip; a decaying storm re-trips at warn,
	// and those later bundles would otherwise shadow it.
	var bundle *trace.Bundle
	for _, b := range f.Bundles() {
		if b.Trigger != "watchdog:"+runtime.WatchRetransStorm {
			continue
		}
		if bundle == nil || b.Level >= bundle.Level {
			bundle = b
		}
	}
	if bundle != nil {
		pt.BundleEvents = bundle.TraceEvents
		pt.AnomalyInWindow = bytes.Contains(bundle.Trace, []byte("retransmit"))
	}
	w.Stop()
	return pt, bundle
}

// healthStall injects a migration stall: InjectMigrationStall parks the
// data-install leg of every migration, so the block stays pinned at its
// old owner while arrivals queue behind the pin. The migration-stall
// watchdog (dwell thresholds lowered to 2/4 pulses) must reach critical
// within two pulses of the dwell expiring; releasing the stall must let
// the migration commit and health return to ok.
func healthStall(o Options) (HealthPoint, *trace.Bundle) {
	const ranks = 4
	period := 50 * netsim.Microsecond
	const stallCritical = 4
	sp := migSpace()
	w := newWorld(sp, ranks, func(cfg *runtime.Config) {
		cfg.Seed = o.Seed
		cfg.Pulse = runtime.PulseConfig{
			Enabled: true,
			Period:  period,
			Watchdogs: runtime.WatchdogConfig{
				StallWarnPulses: 2, StallCriticalPulses: stallCritical,
			},
		}
	})
	f := trace.NewFlight(w, trace.FlightConfig{Capacity: 2048})
	f.Arm()
	var pinPulse, tripPulse uint64
	w.OnWatchdogTrip(func(ev runtime.WatchdogEvent) {
		if ev.Status.Name == runtime.WatchMigrationStall &&
			ev.Status.Level == runtime.WatchCritical && tripPulse == 0 {
			tripPulse = ev.Pulse
		}
	})
	w.OnPulse("f20.stall-onset", func(pi runtime.PulseInfo) {
		if pinPulse != 0 {
			return
		}
		for _, st := range w.Health().Watchdogs {
			if st.Name == runtime.WatchMigrationStall && st.Rank >= 0 {
				pinPulse = pi.Seq
			}
		}
	})
	w.Start()
	lay, err := w.AllocCyclic(0, 512, ranks)
	if err != nil {
		panic(err)
	}
	g := lay.BlockAt(1)
	w.Proc(0).PutWait(g, bytes.Repeat([]byte{0xEE}, 64))

	release := w.InjectMigrationStall()
	fut := w.Proc(0).Migrate(g, 3)
	w.AwaitHealth(runtime.WatchCritical, 2*time.Second)
	release()
	ok := runtime.MigrateStatus(w.MustWait(fut)) == runtime.MigrateOK
	recovered := ok && w.AwaitHealth(runtime.WatchOK, time.Second)

	pt := HealthPoint{
		Scenario:   "migration-stall",
		Mode:       sp.String(),
		Watchdog:   runtime.WatchMigrationStall,
		OnsetPulse: pinPulse,
		TripPulse:  tripPulse,
		Recovered:  recovered,
		Detail: fmt.Sprintf("block pinned %d pulses, released, committed=%v",
			tripPulse-pinPulse, ok),
	}
	pt.LatencyPulses = -1
	if tripPulse > 0 && pinPulse > 0 {
		// The dwell threshold is latency the operator asked for; trip
		// latency is anything beyond it.
		pt.LatencyPulses = int64(tripPulse) - int64(pinPulse) - stallCritical
	}
	bundle := f.Latest()
	if bundle != nil {
		pt.BundleEvents = bundle.TraceEvents
		pt.AnomalyInWindow = bytes.Contains(bundle.Trace, []byte("migrate-start"))
	}
	w.Stop()
	return pt, bundle
}

// healthRebalance reruns the F19 colocated-hotspot workload with the
// policy's epochs driven by the in-runtime pulse (Policy.AttachPulse)
// instead of the driver loop. The heat-imbalance watchdog registers the
// hotspot; the pulse-driven policy is the remediation, so the point
// records when the watchdog stopped seeing imbalance and the throughput
// win over the static baseline.
func healthRebalance(o Options) HealthPoint {
	perRank, preEpochs, postEpochs := 480, 5, 5
	if o.Quick {
		perRank, preEpochs, postEpochs = 220, 4, 4
	}
	sp := migSpace()
	off, _ := rebalanceCell(o, sp, perRank, preEpochs, postEpochs, 8, 1, 16, false, false)
	on, extra := rebalanceCell(o, sp, perRank, preEpochs, postEpochs, 8, 1, 16, true, true)

	pt := HealthPoint{
		Scenario:   "hotspot-rebalance",
		Mode:       sp.String(),
		Watchdog:   runtime.WatchHeatImbalance,
		OnsetPulse: extra.heatOnset,
		TripPulse:  extra.heatLastHot,
		Recovered:  on.Imbalance <= 1.5 && extra.heatLastHot < extra.pulses,
		Detail: fmt.Sprintf("post-shift %.1f → %.1f ops/ms, %d moves over %d pulses",
			off.PostOpsPerMs, on.PostOpsPerMs, on.Moves, extra.pulses),
	}
	pt.LatencyPulses = -1
	if extra.heatOnset > 0 {
		pt.LatencyPulses = int64(extra.heatLastHot) - int64(extra.heatOnset)
	}
	return pt
}

// HealthBench runs every F20 scenario. When o.FlightOut is set, the
// retained trip bundle of the first scenario that produced one is
// written there as indented JSON (the CI health-smoke artifact).
func HealthBench(o Options) []HealthPoint {
	storm, stormBundle := healthStorm(o)
	stall, stallBundle := healthStall(o)
	pts := []HealthPoint{storm, stall, healthRebalance(o)}
	if o.FlightOut != "" {
		bundle := stormBundle
		if bundle == nil {
			bundle = stallBundle
		}
		if bundle != nil {
			fh, err := os.Create(o.FlightOut)
			if err != nil {
				panic(fmt.Sprintf("exp: flight bundle out: %v", err))
			}
			defer fh.Close()
			if err := trace.WriteBundle(fh, bundle); err != nil {
				panic(fmt.Sprintf("exp: flight bundle write: %v", err))
			}
		}
	}
	return pts
}

// f20Health renders the health sweep. latency is on the pulse clock:
// pulses from "the watchdog could have tripped" to "it did" for the
// anomaly rows, and the hotspot's visible duration for the rebalance
// row (its remediation comes from the pulse-driven policy, not an
// operator).
func f20Health(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 20: runtime health — anomaly → watchdog trip → flight bundle",
		"scenario", "watchdog", "onset_pulse", "trip_pulse", "latency",
		"bundle_events", "in_window", "recovered", "detail")
	for _, pt := range HealthBench(o) {
		tb.AddRow(pt.Scenario, pt.Watchdog, pt.OnsetPulse, pt.TripPulse,
			pt.LatencyPulses, pt.BundleEvents, pt.AnomalyInWindow, pt.Recovered, pt.Detail)
	}
	return tb
}
