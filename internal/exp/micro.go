package exp

import (
	"fmt"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
)

func init() {
	register("T1", "Table 1: one-sided put latency (µs) vs size", t1PutLatency)
	register("T2", "Table 2: one-sided get latency (µs) vs size", t2GetLatency)
	register("F1", "Fig. 1: put throughput (MB/s) vs size", f1PutThroughput)
	register("F2", "Fig. 2: parcel round-trip latency (µs) vs payload", f2ParcelRTT)
	register("T4", "Table 4: per-parcel overhead breakdown (ns, 8B payload)", t4Breakdown)
}

const microRanks = 8

// oneSidedLatency sweeps sizes × modes for put or get.
func oneSidedLatency(o Options, title string, get bool) *stats.Table {
	tb := stats.NewTable(title, "size_B", "pgas_us", "agas_sw_us", "agas_nm_us", "nm_vs_pgas")
	reps := 20
	if o.Quick {
		reps = 5
	}
	for _, size := range sizesFor(o) {
		row := make([]float64, len(spaces))
		for mi, sp := range spaces {
			w := newWorld(sp, microRanks)
			w.Start()
			lay, err := w.AllocCyclic(0, 1<<17, microRanks)
			if err != nil {
				panic(err)
			}
			g := lay.BlockAt(1) // remote from rank 0
			buf := make([]byte, size)
			// Warm: first touch primes caches and tables in every mode.
			w.MustWait(w.Proc(0).Put(g, buf))
			var samples []netsim.VTime
			for i := 0; i < reps; i++ {
				if get {
					samples = append(samples, timeOp(w, func() *runtime.LCORef {
						return w.Proc(0).Get(g, uint32(size))
					}))
				} else {
					samples = append(samples, timeOp(w, func() *runtime.LCORef {
						return w.Proc(0).Put(g, buf)
					}))
				}
			}
			row[mi] = medianMicros(samples)
			w.Stop()
		}
		tb.AddRow(size, row[0], row[1], row[2], fmt.Sprintf("%.3fx", row[2]/row[0]))
	}
	return tb
}

func t1PutLatency(o Options) *stats.Table {
	return oneSidedLatency(o, "Table 1: one-sided put latency (µs)", false)
}

func t2GetLatency(o Options) *stats.Table {
	return oneSidedLatency(o, "Table 2: one-sided get latency (µs)", true)
}

func f1PutThroughput(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 1: put throughput (MB/s) vs size",
		"size_B", "pgas_MBs", "agas_sw_MBs", "agas_nm_MBs")
	n, window := 400, 16
	if o.Quick {
		n = 60
	}
	for _, size := range sizesFor(o) {
		row := make([]float64, len(spaces))
		for mi, sp := range spaces {
			w := newWorld(sp, 2)
			w.Start()
			lay, err := w.AllocLocal(1, 1<<18, 4)
			if err != nil {
				panic(err)
			}
			elapsed := putStream(w, 0, n, window, size, func(seq int) gas.GVA {
				return lay.BlockAt(uint32(seq % 4))
			})
			mb := float64(n) * float64(size) / 1e6
			row[mi] = mb / (float64(elapsed) / 1e9)
			w.Stop()
		}
		tb.AddRow(size, row[0], row[1], row[2])
	}
	return tb
}

func f2ParcelRTT(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 2: parcel round-trip latency (µs) vs payload",
		"payload_B", "pgas_us", "agas_sw_us", "agas_nm_us")
	reps := 20
	if o.Quick {
		reps = 5
	}
	for _, size := range sizesFor(o) {
		row := make([]float64, len(spaces))
		for mi, sp := range spaces {
			w := newWorld(sp, 2)
			echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(c.P.Payload) })
			w.Start()
			lay, err := w.AllocLocal(1, 1<<17, 1)
			if err != nil {
				panic(err)
			}
			payload := make([]byte, size)
			w.MustWait(w.Proc(0).Call(lay.BlockAt(0), echo, payload)) // warm
			var samples []netsim.VTime
			for i := 0; i < reps; i++ {
				samples = append(samples, timeOp(w, func() *runtime.LCORef {
					return w.Proc(0).Call(lay.BlockAt(0), echo, payload)
				}))
			}
			row[mi] = medianMicros(samples)
			w.Stop()
		}
		tb.AddRow(size, row[0], row[1], row[2])
	}
	return tb
}

// t4Breakdown decomposes a small remote parcel's cost per mode: model
// components plus the measured end-to-end one-way time.
func t4Breakdown(o Options) *stats.Table {
	tb := stats.NewTable("Table 4: per-parcel cost breakdown (ns, 8B payload, one-way)",
		"mode", "translate", "inject", "wire", "deliver", "measured_total")
	model := netsim.DefaultModel()
	wire := int64(model.TxTime(8+70) + model.Latency) // payload + parcel/wire header
	deliver := int64(model.ORecv + model.HandlerDispatch)
	inject := int64(model.OSend)
	for _, sp := range o.sweep() {
		var translate int64
		switch {
		case sp.Caps.NICTranslation:
			translate = int64(model.NICLookup)
		case sp.Caps.HostTranslation:
			translate = int64(model.SWLookup)
		}
		w := newWorld(sp, 2)
		mark := w.Register("mark", func(c *runtime.Ctx) { c.Continue(nil) })
		w.Start()
		lay, err := w.AllocLocal(1, 4096, 1)
		if err != nil {
			panic(err)
		}
		// One-way: measure arrival by when the remote action runs; the
		// sink continuation adds a return trip, so use half of a
		// warm RTT as the measured one-way figure.
		w.MustWait(w.Proc(0).Call(lay.BlockAt(0), mark, make([]byte, 8)))
		rtt := timeOp(w, func() *runtime.LCORef {
			return w.Proc(0).Call(lay.BlockAt(0), mark, make([]byte, 8))
		})
		w.Stop()
		tb.AddRow(sp.String(), translate, inject, wire, deliver, int64(rtt)/2)
	}
	return tb
}
