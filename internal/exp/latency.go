package exp

import (
	"math/rand"

	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
)

func init() {
	register("F15", "Fig. 15: latency breakdown (ns percentiles) under migration churn", f15Latency)
}

// f15Latency runs the same update stream under background migration in
// every mode with Config.Metrics on and reports the runtime's latency
// histograms: parcel send→exec and put/get completion percentiles, plus
// the migration total. PGAS never migrates, so its tail is the clean
// baseline; software AGAS pays host-side forwarding and cache repair in
// its p99; network-managed AGAS repairs in the NIC and should track the
// PGAS tail (agas-nm p99 ≈ pgas p99 ≪ agas-sw p99).
func f15Latency(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 15: latency breakdown under migration churn (ns)",
		"mode", "ops", "exec_p50", "exec_p95", "exec_p99",
		"put_p99", "get_p99", "mig_total_p50")
	ops, nmig := 600, 128
	if o.Quick {
		ops, nmig = 150, 32
	}
	for _, sp := range o.sweep() {
		lat := latencyChurnRun(o, sp, ops, nmig)
		tb.AddRow(sp.Caps.Name, lat.ParcelExec.Count,
			lat.ParcelExec.P50Ns, lat.ParcelExec.P95Ns, lat.ParcelExec.P99Ns,
			lat.PutDone.P99Ns, lat.GetDone.P99Ns, lat.MigTotal.P50Ns)
	}
	return tb
}

// latencyChurnRun drives `ops` remote handler invocations plus a put/get
// mix from rank 0 over blocks spread across the other ranks, with nmig
// background migrations interleaved when the mode supports them, and
// returns the world's latency histograms.
func latencyChurnRun(o Options, sp runtime.SpaceSpec, ops, nmig int) runtime.WorldLatencies {
	const ranks = 4
	const nblocks = 64
	w := newWorld(sp, ranks, func(c *runtime.Config) { c.Metrics = true })
	bump := w.Register("bump", func(c *runtime.Ctx) {
		c.Continue(parcel.PutU64(nil, 1))
	})
	w.Start()
	defer w.Stop()
	lay, err := w.AllocCyclic(0, 512, nblocks)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	// Scatter blocks first, so the measured stream below runs against
	// stale translations: software AGAS repairs them with host forwards
	// on the data path, the NIC-managed space absorbs them in-network,
	// and PGAS (no migration) is the clean baseline.
	if sp.Caps.Migration {
		for i := 0; i < nmig; i++ {
			d := uint32(rng.Intn(nblocks))
			w.MustWait(w.Proc(rng.Intn(ranks)).Migrate(lay.BlockAt(d), rng.Intn(ranks)))
		}
	}
	buf := make([]byte, 64)
	for i := 0; i < ops; i++ {
		g := lay.BlockAt(uint32(rng.Intn(nblocks)))
		switch i % 4 {
		case 0:
			w.MustWait(w.Proc(0).Put(g, buf))
		case 1:
			w.MustWait(w.Proc(0).Get(g, 64))
		default:
			w.MustWait(w.Proc(0).Call(g, bump, nil))
		}
	}
	return w.Stats().Latencies
}
