package exp

import (
	"bytes"
	"time"

	"nmvgas/internal/gas"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
)

func init() {
	register("C2", "Recovery chaos: whole-node kill mid-workload, survivor convergence, rejoin", c2Recover)
}

// c2Recover kills one locality in the middle of a replicated put
// workload and checks that the surviving membership converges to
// exactly the state a never-faulted run reaches: identical op counters,
// identical final memory image, zero black-holed messages (everything
// tracked was delivered-and-acked, NACKed, or abandoned — nothing
// silently pending), and the killed rank re-admitted through Join
// serving reads again. The recovery cost (suspicion probes, re-homed
// blocks, fencing drops) is reported alongside.
func c2Recover(o Options) *stats.Table {
	tb := stats.NewTable("Recovery chaos: kill+rejoin vs never-faulted baseline (4 ranks, 8x64B, replicas=2)",
		"mode", "engine", "golden", "deaths", "joins", "suspicions", "rehomed",
		"retrans", "down_drops", "dead_nacks", "unacked")
	engines := []runtime.EngineKind{runtime.EngineDES, runtime.EngineGo}
	if o.Quick {
		engines = engines[:1]
	}
	for _, sp := range o.sweep() {
		for _, eng := range engines {
			base := c2Run(sp, eng, o, false)
			res := c2Run(sp, eng, o, true)
			ms := res.membership
			golden := "no"
			if res.counters == base.counters && res.dataOK &&
				bytes.Equal(res.image, base.image) &&
				res.unacked == 0 && ms.Deaths == 1 && ms.Joins == 1 {
				golden = "yes"
			}
			tb.AddRow(sp.String(), eng.String(), golden, ms.Deaths, ms.Joins,
				ms.Suspicions, ms.Rehomed, res.delivery.Retransmits,
				ms.DownDrops, ms.DeadNacks, res.unacked)
		}
	}
	return tb
}

// c2Counters is the application-visible counter subset the convergence
// check compares between the faulted run and its baseline (transport-
// and repair-path counters differ by design).
type c2Counters struct {
	puts, gets, putBytes, getBytes int64
}

type c2Result struct {
	counters   c2Counters
	image      []byte
	dataOK     bool
	unacked    int
	delivery   runtime.DeliveryStats
	membership runtime.MembershipStats
}

// c2Run drives one world through the recovery workload. Every block is
// replicated onto two holders, every rank owns a 16-byte region of
// every block, and the victim (by default rank 1 — master and home of a
// quarter of the blocks) is killed between the first and second
// survivor write waves, so the remaining writes push through suspicion,
// death confirmation, and replica promotion. With kill=false the
// identical op sequence runs on an unperturbed world — the convergence
// baseline.
//
// The kill is phase-locked, not wall-clock-scheduled: a kill=/restart=
// schedule in the fault plan (vgasbench -kill / NMVGAS_FAULTS) selects
// the victim, but its times are ignored — a kill landing while the
// victim drives its own (then unfinishable) op would hang the run, and
// the golden comparison needs the identical op sequence in both worlds.
// Message-level chaos in the plan (drop/dup/reorder) applies to both.
func c2Run(sp runtime.SpaceSpec, eng runtime.EngineKind, o Options, kill bool) c2Result {
	const (
		ranks, nblocks = 4, 8
		bsize          = 64
	)
	victim := 1
	plan := o.Faults
	for r := range plan.KillAt {
		if r >= 1 && r < ranks && (victim == 1 || r < victim) {
			victim = r
		}
	}
	plan.KillAt, plan.RestartAt = nil, nil
	w := newWorld(sp, ranks, func(c *runtime.Config) {
		c.Engine = eng
		c.Seed = o.Seed
		c.Faults = plan
		c.Reliability.Force = true
		// Recovery needs the in-flight op to survive ~5 backoff
		// doublings plus two probe rounds before its redirect lands.
		c.Reliability.MaxAttempts = 64
	})
	w.Start()
	defer w.Stop()
	lay, err := w.AllocCyclic(0, bsize, nblocks)
	if err != nil {
		panic(err)
	}
	if err := w.ReplicateLive(lay, 2); err != nil {
		panic(err)
	}
	region := func(d uint32, r int) gas.GVA {
		g := lay.BlockAt(d)
		return gas.New(g.Home(), g.Block(), uint32(r)*16)
	}
	pat := func(tag byte, r int) []byte { return bytes.Repeat([]byte{tag + byte(r)}, 16) }

	// Phase A: every rank (victim included) writes its region of every
	// block.
	for r := 0; r < ranks; r++ {
		for d := uint32(0); d < nblocks; d++ {
			w.MustWait(w.Proc(r).Put(region(d, r), pat(0xA0, r)))
		}
	}
	// Phase B, first wave: rank 0 overwrites its regions...
	for d := uint32(0); d < nblocks; d++ {
		w.MustWait(w.Proc(0).Put(region(d, 0), pat(0xB0, 0)))
	}
	// ...then the victim crashes mid-workload...
	if kill {
		w.Kill(victim)
	}
	// ...and the remaining survivor writes push through recovery: puts
	// aimed at the victim's blocks stall in retransmission until death
	// is declared and a surviving replica holder is promoted.
	for r := 1; r < ranks; r++ {
		if r == victim {
			continue
		}
		for d := uint32(0); d < nblocks; d++ {
			w.MustWait(w.Proc(r).Put(region(d, r), pat(0xB0, r)))
		}
	}
	if kill {
		if !w.AwaitMember(victim, runtime.MemberDead, 30e9) {
			panic("recover: victim never declared dead")
		}
		// The killed rank rejoins at runtime and must serve reads below.
		if err := w.Join(victim); err != nil {
			panic(err)
		}
		if !w.AwaitMember(victim, runtime.MemberAlive, 30e9) {
			panic("recover: victim never rejoined")
		}
	}

	// Audit: every rank — including the reborn victim — reads every
	// block in full; the image must hold phase-B survivor regions and
	// the victim's untouched phase-A region.
	dataOK := true
	var image []byte
	var want []byte
	for r := 0; r < ranks; r++ {
		if r == victim {
			want = append(want, pat(0xA0, r)...)
		} else {
			want = append(want, pat(0xB0, r)...)
		}
	}
	for d := uint32(0); d < nblocks; d++ {
		for r := 0; r < ranks; r++ {
			got := w.MustWait(w.Proc(r).Get(lay.BlockAt(d), bsize))
			if !bytes.Equal(got, want) {
				dataOK = false
			}
			if r == 0 {
				image = append(image, got...)
			}
		}
	}

	// Let the acknowledgement and retransmission tails drain before the
	// zero-black-hole audit: coherence fan-out aimed at the victim
	// while it was down sits in the senders' unacked windows until a
	// post-rejoin retransmission lands, and the audit reads' own final
	// acks are still in flight when MustWait returns. Both must be
	// empty, not merely shrinking, for the count to mean anything.
	if eng == runtime.EngineDES {
		w.Drain()
	} else {
		deadline := time.Now().Add(15 * time.Second)
		for w.UnackedMessages() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	s := w.Stats()
	return c2Result{
		counters: c2Counters{
			puts: s.PutOps, gets: s.GetOps,
			putBytes: s.PutBytes, getBytes: s.GetBytes,
		},
		image:      image,
		dataOK:     dataOK,
		unacked:    w.UnackedMessages(),
		delivery:   s.Delivery,
		membership: s.Membership,
	}
}
