package exp

import (
	"bytes"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
)

func init() {
	register("C1", "Chaos: golden equivalence and recovery cost under fault injection", c1Chaos)
}

// c1Chaos sweeps loss rate × address space on a faulty fabric and checks
// that the application-visible outcome — counter totals and final memory
// contents — is identical to each mode's perfect-fabric baseline. The
// degradation (retransmits, suppressed duplicates, ack traffic) is
// reported alongside, so the table reads as "the fabric misbehaved this
// much, and the application could not tell".
func c1Chaos(o Options) *stats.Table {
	tb := stats.NewTable("Chaos: golden equivalence under faults (4 ranks, 8x128B, waves+puts+migrations)",
		"mode", "plan", "golden", "tracked", "retrans", "dups_suppr", "acks", "abandoned", "dropped", "duplicated")
	losses := []float64{0.01, 0.05, 0.10}
	if o.Quick {
		losses = []float64{0.05}
	}
	plans := []netsim.FaultPlan{{}} // index 0: perfect-fabric baseline
	for _, p := range losses {
		plans = append(plans, netsim.FaultPlan{Drop: p, Duplicate: 0.02, Reorder: true})
	}
	if o.Faults.Enabled() {
		plans = append(plans, o.Faults)
	}
	for _, sp := range o.sweep() {
		var base c1Counters
		for i, plan := range plans {
			res := c1Run(sp, plan, o.Seed)
			if i == 0 {
				base = res.counters
			}
			golden := "no"
			if res.counters == base && res.dataOK {
				golden = "yes"
			}
			d := res.delivery
			tb.AddRow(sp.String(), plan.String(), golden, d.Tracked, d.Retransmits,
				d.DupsSuppressed, d.AcksSent, d.Abandoned, d.Faults.Dropped, d.Faults.Duplicated)
		}
	}
	return tb
}

// c1Counters is the application-visible counter subset the equivalence
// check compares (repair-path counters vary with the fault schedule by
// design and are excluded).
type c1Counters struct {
	sent, run, local               int64
	puts, gets, putBytes, getBytes int64
	migrations                     int64
}

type c1Result struct {
	counters c1Counters
	dataOK   bool
	delivery runtime.DeliveryStats
}

// c1Run drives one world through increment waves (counters at offset 0),
// one-sided traffic at offset 64, and — in migrating modes — a migration
// wave followed by more increments, then audits the final memory image.
func c1Run(sp runtime.SpaceSpec, plan netsim.FaultPlan, seed int64) c1Result {
	const ranks, nblocks = 4, 8
	w := newWorld(sp, ranks, func(c *runtime.Config) {
		c.Seed = seed
		c.Faults = plan
	})
	incr := w.Register("cincr", func(c *runtime.Ctx) {
		data := c.Local(c.P.Target)
		v := parcel.U64(data, 0)
		copy(data, parcel.PutU64(nil, v+1))
		c.Continue(nil)
	})
	w.Start()
	defer w.Stop()
	lay, err := w.AllocCyclic(0, 128, nblocks)
	if err != nil {
		panic(err)
	}
	at64 := func(d uint32) gas.GVA {
		g := lay.BlockAt(d)
		return gas.New(g.Home(), g.Block(), 64)
	}

	// Phase 1: every rank increments every block once.
	for r := 0; r < ranks; r++ {
		for d := uint32(0); d < nblocks; d++ {
			w.MustWait(w.Proc(r).Call(lay.BlockAt(d), incr, nil))
		}
	}
	// Phase 2: one-sided writes clear of the counters (offset 64).
	for r := 0; r < ranks; r++ {
		pat := bytes.Repeat([]byte{byte(0xA0 + r)}, 16)
		w.MustWait(w.Proc(r).Put(at64(uint32(r+1)), pat))
	}
	// Phase 3 (migrating modes): rotate the first half of the blocks one
	// rank right, then a second increment wave chases the moved blocks.
	if sp.Caps.Migration {
		for d := uint32(0); d < nblocks/2; d++ {
			st := w.MustWait(w.Proc(0).Migrate(lay.BlockAt(d), (int(d)+1)%ranks))
			if runtime.MigrateStatus(st) != runtime.MigrateOK {
				panic("chaos: migration refused")
			}
		}
		for r := 0; r < ranks; r++ {
			for d := uint32(0); d < nblocks/2; d++ {
				w.MustWait(w.Proc(r).Call(lay.BlockAt(d), incr, nil))
			}
		}
	}

	// Audit: counters and put payloads must hold the exact expected image
	// regardless of what the fabric did in between.
	dataOK := true
	for d := uint32(0); d < nblocks; d++ {
		want := uint64(ranks)
		if sp.Caps.Migration && d < nblocks/2 {
			want = 2 * ranks
		}
		v := w.MustWait(w.Proc(int(d)%ranks).Get(lay.BlockAt(d), 8))
		if parcel.U64(v, 0) != want {
			dataOK = false
		}
	}
	for r := 0; r < ranks; r++ {
		v := w.MustWait(w.Proc(r).Get(at64(uint32(r+1)), 16))
		if !bytes.Equal(v, bytes.Repeat([]byte{byte(0xA0 + r)}, 16)) {
			dataOK = false
		}
	}

	s := w.Stats()
	return c1Result{
		counters: c1Counters{
			sent: s.ParcelsSent, run: s.ParcelsRun, local: s.LocalRuns,
			puts: s.PutOps, gets: s.GetOps, putBytes: s.PutBytes, getBytes: s.GetBytes,
			migrations: s.Migrations,
		},
		dataOK:   dataOK,
		delivery: s.Delivery,
	}
}
