package exp

import (
	"strconv"
	"strings"
	"testing"

	"nmvgas/internal/stats"
)

func quick() Options { return Options{Quick: true, Seed: 42} }

// cell parses a table cell as float.
func cell(t *testing.T, tb interface{ Rows() [][]string }, row, col int) float64 {
	t.Helper()
	s := tb.Rows()[row][col]
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell [%d][%d] = %q not numeric: %v", row, col, s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "T5", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16", "F17", "F18", "F19", "F20", "A1", "A2", "C1", "C2"}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Fatalf("registry has %d experiments, want >= %d", len(IDs()), len(want))
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find accepted unknown id")
	}
}

func TestT1LatencyShape(t *testing.T) {
	tb := mustRun(t, "T1")
	last := tb.NumRows() - 1
	// NM within 20% of PGAS at the smallest size; SW strictly slower
	// than NM there.
	pg, sw, nm := cell(t, tb, 0, 1), cell(t, tb, 0, 2), cell(t, tb, 0, 3)
	if nm < pg {
		t.Fatalf("NM %v beat PGAS %v", nm, pg)
	}
	if nm > 1.2*pg {
		t.Fatalf("NM %v more than 20%% over PGAS %v", nm, pg)
	}
	if sw <= nm {
		t.Fatalf("SW %v not slower than NM %v at 8B", sw, nm)
	}
	// Large transfers converge: SW/NM ratio shrinks with size.
	swL, nmL := cell(t, tb, last, 2), cell(t, tb, last, 3)
	if (sw/nm)/(swL/nmL) < 1.0 {
		t.Fatalf("SW overhead did not shrink with size: small ratio %v, large ratio %v", sw/nm, swL/nmL)
	}
	// Latency grows with size.
	if cell(t, tb, last, 1) <= pg {
		t.Fatal("latency did not grow with size")
	}
}

func TestT2GetShape(t *testing.T) {
	tb := mustRun(t, "T2")
	pg, sw, nm := cell(t, tb, 0, 1), cell(t, tb, 0, 2), cell(t, tb, 0, 3)
	if !(pg <= nm && nm < sw) {
		t.Fatalf("get ordering broken: pgas=%v nm=%v sw=%v", pg, nm, sw)
	}
}

func TestF1ThroughputShape(t *testing.T) {
	tb := mustRun(t, "F1")
	last := tb.NumRows() - 1
	// Throughput rises with size and converges across modes at large
	// sizes (wire-limited).
	if cell(t, tb, last, 1) <= cell(t, tb, 0, 1) {
		t.Fatal("throughput did not rise with size")
	}
	pgL, swL := cell(t, tb, last, 1), cell(t, tb, last, 2)
	if swL < 0.8*pgL {
		t.Fatalf("SW large-message throughput %v too far under PGAS %v", swL, pgL)
	}
}

func TestF2RTTShape(t *testing.T) {
	tb := mustRun(t, "F2")
	pg, sw, nm := cell(t, tb, 0, 1), cell(t, tb, 0, 2), cell(t, tb, 0, 3)
	if !(pg <= nm && nm < sw) {
		t.Fatalf("rtt ordering broken: pgas=%v nm=%v sw=%v", pg, nm, sw)
	}
}

func TestF3CapacityCliff(t *testing.T) {
	tb := mustRun(t, "F3")
	// First row: working set fits (hit rate high). Last row: working set
	// 2x+ the table (hit rate collapses). SW unbounded cache stays hot.
	first, last := 0, tb.NumRows()-1
	if hr := cell(t, tb, first, 1); hr < 0.9 {
		t.Fatalf("NM hit rate %v with fitting working set", hr)
	}
	if hr := cell(t, tb, last, 1); hr > 0.5 {
		t.Fatalf("NM hit rate %v beyond capacity — no cliff", hr)
	}
	if hr := cell(t, tb, last, 3); hr < 0.9 {
		t.Fatalf("SW unbounded cache hit rate %v", hr)
	}
	// Latency rises across the cliff.
	if cell(t, tb, last, 2) <= cell(t, tb, first, 2) {
		t.Fatal("NM latency did not rise past the capacity cliff")
	}
}

func TestF4MigrationShape(t *testing.T) {
	tb := mustRun(t, "F4")
	last := tb.NumRows() - 1
	// Migration cost grows with block size.
	if cell(t, tb, last, 1) <= cell(t, tb, 0, 1) {
		t.Fatal("SW migration cost flat in size")
	}
	if cell(t, tb, last, 2) <= cell(t, tb, 0, 2) {
		t.Fatal("NM migration cost flat in size")
	}
}

func TestF5GUPSShape(t *testing.T) {
	tb := mustRun(t, "F5")
	for r := 0; r < tb.NumRows(); r++ {
		pg, sw, nm := cell(t, tb, r, 1), cell(t, tb, r, 2), cell(t, tb, r, 3)
		if sw >= nm {
			t.Fatalf("row %d: SW GUPS %v not slower than NM %v", r, sw, nm)
		}
		if nm > 1.35*pg {
			t.Fatalf("row %d: NM %v too far over PGAS %v", r, nm, pg)
		}
	}
}

func TestF6ChaseShape(t *testing.T) {
	tb := mustRun(t, "F6")
	// Rows: pgas, agas-sw, agas-nm. PGAS cannot improve; AGAS modes must
	// speed up by consolidation.
	if sp := cell(t, tb, 0, 3); sp != 1 {
		t.Fatalf("PGAS chase speedup %v, want 1 (cannot migrate)", sp)
	}
	for r := 1; r <= 2; r++ {
		if sp := cell(t, tb, r, 3); sp < 2 {
			t.Fatalf("row %d consolidation speedup %v < 2", r, sp)
		}
	}
}

func TestF8StencilShape(t *testing.T) {
	tb := mustRun(t, "F8")
	if sp := cell(t, tb, 0, 3); sp != 1 {
		t.Fatalf("PGAS stencil speedup %v", sp)
	}
	for r := 1; r <= 2; r++ {
		if sp := cell(t, tb, r, 3); sp <= 1.5 {
			t.Fatalf("row %d adaptive speedup %v <= 1.5", r, sp)
		}
	}
}

func TestF9ChurnShape(t *testing.T) {
	tb := mustRun(t, "F9")
	last := tb.NumRows() - 1
	// Under churn, NM throughput must exceed both SW policies.
	sw, swInv, nm := cell(t, tb, last, 1), cell(t, tb, last, 2), cell(t, tb, last, 3)
	if nm <= sw || nm <= swInv {
		t.Fatalf("NM %v not ahead under churn (sw=%v swInv=%v)", nm, sw, swInv)
	}
}

func TestT3ScalingShape(t *testing.T) {
	tb := mustRun(t, "T3")
	// Put latency roughly flat across scales; barrier grows.
	first, last := 0, tb.NumRows()-1
	if p0, pl := cell(t, tb, first, 3), cell(t, tb, last, 3); pl > 1.5*p0 {
		t.Fatalf("NM put latency not flat: %v → %v", p0, pl)
	}
	if cell(t, tb, last, 4) <= cell(t, tb, first, 4) {
		t.Fatal("barrier time did not grow with ranks")
	}
}

func TestT4BreakdownSums(t *testing.T) {
	tb := mustRun(t, "T4")
	for r := 0; r < tb.NumRows(); r++ {
		sum := cell(t, tb, r, 1) + cell(t, tb, r, 2) + cell(t, tb, r, 3) + cell(t, tb, r, 4)
		measured := cell(t, tb, r, 5)
		// The component model must explain the measured one-way time to
		// within 25% (scheduling residue accounts for the rest).
		if measured < 0.75*sum || measured > 1.25*sum {
			t.Fatalf("row %d: components %v vs measured %v", r, sum, measured)
		}
	}
}

func TestA1ForwardingShape(t *testing.T) {
	tb := mustRun(t, "A1")
	// forward+push first access beats nack first access.
	fw, nack := cell(t, tb, 0, 1), cell(t, tb, 2, 1)
	if fw >= nack {
		t.Fatalf("forwarding first access %v not faster than NACK %v", fw, nack)
	}
	if n := cell(t, tb, 2, 3); n == 0 {
		t.Fatal("NACK policy recorded no NACKs")
	}
}

func TestA2UpdatePolicyShape(t *testing.T) {
	tb := mustRun(t, "A2")
	lazyFirst, lazyCtrl := cell(t, tb, 0, 1), cell(t, tb, 0, 2)
	eagerFirst, eagerCtrl := cell(t, tb, 1, 1), cell(t, tb, 1, 2)
	if eagerFirst >= lazyFirst {
		t.Fatalf("eager first access %v not faster than lazy %v", eagerFirst, lazyFirst)
	}
	if eagerCtrl <= lazyCtrl {
		t.Fatalf("eager control traffic %v not higher than lazy %v", eagerCtrl, lazyCtrl)
	}
}

func TestF7BFSRebalanceShape(t *testing.T) {
	tb := mustRun(t, "F7")
	// Rows: pgas, agas-sw, agas-nm. Columns: static, cold, warm, moved.
	for r := 1; r <= 2; r++ {
		static, warm := cell(t, tb, r, 1), cell(t, tb, r, 3)
		if warm <= static {
			t.Fatalf("row %d: warm rebalanced %v not faster than pathological static %v", r, warm, static)
		}
		if moved := cell(t, tb, r, 4); moved == 0 {
			t.Fatalf("row %d: nothing migrated", r)
		}
	}
	// NM absorbs the mass migration in the network: its cold run is
	// within a few percent of warm. SW pays a visible host repair storm.
	nmCold, nmWarm := cell(t, tb, 2, 2), cell(t, tb, 2, 3)
	if nmCold < 0.95*nmWarm {
		t.Fatalf("NM cold %v far below warm %v", nmCold, nmWarm)
	}
	swCold, swWarm := cell(t, tb, 1, 2), cell(t, tb, 1, 3)
	if swCold >= swWarm {
		t.Fatalf("SW cold %v not slower than warm %v (no repair storm visible)", swCold, swWarm)
	}
	if nmWarm <= swWarm {
		t.Fatalf("NM warm %v not ahead of SW warm %v", nmWarm, swWarm)
	}
}

func TestF10HistogramShape(t *testing.T) {
	tb := mustRun(t, "F10")
	for r := 1; r <= 2; r++ {
		static, after := cell(t, tb, r, 1), cell(t, tb, r, 2)
		if after < 0.9*static {
			t.Fatalf("row %d: placement regressed %v → %v", r, static, after)
		}
	}
}

func TestF11SSSPShape(t *testing.T) {
	tb := mustRun(t, "F11")
	// Balanced placement beats serialized for every mode (SSSP is
	// parallel); on the balanced run nm ≈ pgas < sw.
	for r := 0; r < tb.NumRows(); r++ {
		if cell(t, tb, r, 1) >= cell(t, tb, r, 2) {
			t.Fatalf("row %d: cyclic not faster than serialized", r)
		}
	}
	pg, sw, nm := cell(t, tb, 0, 1), cell(t, tb, 1, 1), cell(t, tb, 2, 1)
	if sw <= nm {
		t.Fatalf("SW SSSP %v not slower than NM %v", sw, nm)
	}
	if nm > 1.15*pg {
		t.Fatalf("NM SSSP %v too far over PGAS %v", nm, pg)
	}
	// All modes reach the same vertex count.
	for r := 1; r < tb.NumRows(); r++ {
		if cell(t, tb, r, 3) != cell(t, tb, 0, 3) {
			t.Fatal("reached counts differ across modes")
		}
	}
}

func TestF12TopologyShape(t *testing.T) {
	tb := mustRun(t, "F12")
	// Inter-pod put ordering survives oversubscription: pgas <= nm < sw.
	pg, sw, nm := cell(t, tb, 0, 1), cell(t, tb, 0, 2), cell(t, tb, 0, 3)
	if !(pg <= nm && nm < sw) {
		t.Fatalf("interpod put ordering broken: pgas=%v sw=%v nm=%v", pg, sw, nm)
	}
	// Post-migration steady state: nm <= sw on the two-tier fabric too.
	if swRTT, nmRTT := cell(t, tb, 1, 2), cell(t, tb, 1, 3); nmRTT > swRTT {
		t.Fatalf("post-migration NM %v behind SW %v under oversubscription", nmRTT, swRTT)
	}
}

func TestT5AllToAllShape(t *testing.T) {
	tb := mustRun(t, "T5")
	last := tb.NumRows() - 1
	// Aggregate bandwidth rises with chunk size; SW trails at small
	// chunks and converges at large ones.
	if cell(t, tb, last, 1) <= cell(t, tb, 0, 1) {
		t.Fatal("all-to-all bandwidth flat in size")
	}
	if sw, nm := cell(t, tb, 0, 2), cell(t, tb, 0, 3); sw >= nm {
		t.Fatalf("small-chunk SW %v not behind NM %v", sw, nm)
	}
	if sw, nm := cell(t, tb, last, 2), cell(t, tb, last, 3); sw < 0.9*nm {
		t.Fatalf("large-chunk SW %v did not converge to NM %v", sw, nm)
	}
}

func TestF13CoalesceShape(t *testing.T) {
	tb := mustRun(t, "F13")
	last := tb.NumRows() - 1
	// Batching cuts wire messages and raises lone-parcel latency.
	if cell(t, tb, last, 2) >= cell(t, tb, 0, 2) {
		t.Fatal("coalescing did not reduce wire messages")
	}
	if cell(t, tb, last, 3) <= cell(t, tb, 0, 3) {
		t.Fatal("coalescing did not penalize lone parcels")
	}
	// Throughput must not collapse.
	if cell(t, tb, last, 1) < 0.8*cell(t, tb, 0, 1) {
		t.Fatal("coalescing destroyed throughput")
	}
}

func TestF14ReplicationShape(t *testing.T) {
	tb := mustRun(t, "F14")
	for r := 0; r < tb.NumRows(); r++ {
		if sp := cell(t, tb, r, 3); sp < 5 {
			t.Fatalf("row %d: replication speedup %v < 5", r, sp)
		}
	}
	// Replicated reads are translation-free: all modes converge.
	a, b, c := cell(t, tb, 0, 2), cell(t, tb, 1, 2), cell(t, tb, 2, 2)
	if a != b || b != c {
		t.Fatalf("replicated read costs differ across modes: %v %v %v", a, b, c)
	}
}

func TestF16ReplicatedReadsShape(t *testing.T) {
	tb := mustRun(t, "F16")
	// Quick: 3 modes × replica counts {0, 3} = 6 rows; even rows are the
	// unreplicated baselines.
	if tb.NumRows() != 6 {
		t.Fatalf("rows = %d, want 6", tb.NumRows())
	}
	for r := 0; r < 6; r += 2 {
		base, repl := cell(t, tb, r, 2), cell(t, tb, r+1, 2)
		if repl < 1.5*base {
			t.Fatalf("row %d: replicated throughput %v not ahead of baseline %v", r+1, repl, base)
		}
		if cell(t, tb, r+1, 6) == 0 {
			t.Fatalf("row %d: no invalidations — coherence never exercised", r+1)
		}
	}
	// The measured (write-free) phase never detours through a host: every
	// read resolves at a fresh replica or the master.
	for r := 0; r < 6; r++ {
		if d := cell(t, tb, r, 3); d != 0 {
			t.Fatalf("row %d: %v host detours in the measured read phase", r, d)
		}
	}
	// Warm phase: software AGAS pays host-side stale-window corrections
	// that the network-managed mode absorbs in the NIC.
	if sw, nm := cell(t, tb, 3, 4), cell(t, tb, 5, 4); nm >= sw {
		t.Fatalf("warm detours: agas-nm %v not under agas-sw %v", nm, sw)
	}
}

func TestF15LatencyShape(t *testing.T) {
	tb := mustRun(t, "F15")
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d, want one per mode", tb.NumRows())
	}
	// Rows follow the canonical sweep order: pgas, agas-sw, agas-nm.
	// Percentiles are monotone within each row.
	for r := 0; r < tb.NumRows(); r++ {
		p50, p95, p99 := cell(t, tb, r, 2), cell(t, tb, r, 3), cell(t, tb, r, 4)
		if !(p50 <= p95 && p95 <= p99) {
			t.Fatalf("row %d: percentiles not monotone: %v %v %v", r, p50, p95, p99)
		}
		if cell(t, tb, r, 1) == 0 {
			t.Fatalf("row %d: no parcel executions recorded", r)
		}
	}
	// PGAS never migrates; the AGAS modes must record migration time.
	if cell(t, tb, 0, 7) != 0 {
		t.Fatal("pgas recorded a migration")
	}
	if cell(t, tb, 1, 7) == 0 || cell(t, tb, 2, 7) == 0 {
		t.Fatal("agas rows missing migration latency")
	}
	// The tail story: post-migration repair in host software costs more
	// than in-NIC repair, and the clean PGAS baseline has the best tail.
	pg, sw, nm := cell(t, tb, 0, 4), cell(t, tb, 1, 4), cell(t, tb, 2, 4)
	if !(pg < nm && nm < sw) {
		t.Fatalf("exec p99 ordering broken: pgas=%v agas-sw=%v agas-nm=%v", pg, sw, nm)
	}
	if swPut, nmPut := cell(t, tb, 1, 5), cell(t, tb, 2, 5); swPut <= nmPut {
		t.Fatalf("put p99: agas-sw (%v) should exceed agas-nm (%v)", swPut, nmPut)
	}
}

func TestC1ChaosShape(t *testing.T) {
	tb := mustRun(t, "C1")
	// Quick: 3 modes × (baseline + one lossy plan) = 6 rows, every one
	// golden — faults must never leak into application-visible results.
	if got := tb.NumRows(); got != 6 {
		t.Fatalf("row count %d, want 6", got)
	}
	for r := 0; r < tb.NumRows(); r++ {
		if g := tb.Rows()[r][2]; g != "yes" {
			t.Fatalf("row %d (%s, %s) not golden", r, tb.Rows()[r][0], tb.Rows()[r][1])
		}
	}
	// The lossy rows (odd index per mode pair) really exercised the fault
	// path: DES replays the same schedule, so at 5% drop over this
	// workload drops and retransmissions are guaranteed.
	for r := 1; r < tb.NumRows(); r += 2 {
		if dropped := cell(t, tb, r, 8); dropped == 0 {
			t.Fatalf("row %d: lossy plan dropped nothing", r)
		}
		if retrans := cell(t, tb, r, 4); retrans == 0 {
			t.Fatalf("row %d: drops occurred but nothing retransmitted", r)
		}
	}
	// Baseline rows: perfect fabric, zero degradation.
	for r := 0; r < tb.NumRows(); r += 2 {
		if cell(t, tb, r, 4) != 0 || cell(t, tb, r, 7) != 0 {
			t.Fatalf("row %d: baseline shows retransmits/abandons", r)
		}
	}
}

func TestC2RecoveryShape(t *testing.T) {
	tb := mustRun(t, "C2")
	// Quick: 3 modes × DES only. Every row must be golden — a
	// whole-node crash, recovery, and rejoin must leave the surviving
	// membership exactly where a never-faulted run lands.
	if got := tb.NumRows(); got != 3 {
		t.Fatalf("row count %d, want 3", got)
	}
	for r := 0; r < tb.NumRows(); r++ {
		row := tb.Rows()[r]
		if row[2] != "yes" {
			t.Fatalf("row %d (%s/%s) not golden: %v", r, row[0], row[1], row)
		}
		if cell(t, tb, r, 3) != 1 || cell(t, tb, r, 4) != 1 {
			t.Fatalf("row %d: deaths/joins %s/%s, want 1/1", r, row[3], row[4])
		}
		// The kill really bit: suspicion probes ran, blocks re-homed,
		// traffic was fenced at the dead link, and nothing black-holed.
		if cell(t, tb, r, 5) == 0 || cell(t, tb, r, 6) == 0 {
			t.Fatalf("row %d: no suspicion or no re-homed blocks: %v", r, row)
		}
		if cell(t, tb, r, 8) == 0 {
			t.Fatalf("row %d: kill produced no down-link drops: %v", r, row)
		}
		if cell(t, tb, r, 10) != 0 {
			t.Fatalf("row %d: %s messages black-holed", r, row[10])
		}
	}
}

func TestF17ParScalingShape(t *testing.T) {
	tb := mustRun(t, "F17")
	// Within each rank-count group, the golden parcel counter must be
	// identical across every shard row (classic included) — that is the
	// determinism gate the CI scaling smoke replays at 256 localities.
	golden := map[float64]float64{}
	for r := 0; r < tb.NumRows(); r++ {
		ranks := cell(t, tb, r, 0)
		g := cell(t, tb, r, 3)
		if g <= 0 {
			t.Fatalf("row %d: no parcels ran", r)
		}
		if want, ok := golden[ranks]; ok && g != want {
			t.Fatalf("ranks=%v shards=%v: golden %v != %v — shard count leaked into behavior",
				ranks, cell(t, tb, r, 1), g, want)
		}
		golden[ranks] = g
		if ev := cell(t, tb, r, 2); ev < g {
			t.Fatalf("row %d: %v events for %v parcels", r, ev, g)
		}
	}
}

func TestF18DistanceCrossoverShape(t *testing.T) {
	tb := mustRun(t, "F18")
	if tb.NumRows() != 3 {
		t.Fatalf("want 3 distance tiers, got %d", tb.NumRows())
	}
	prevPGAS := 0.0
	for r := 0; r < tb.NumRows(); r++ {
		pgas, sw, nm := cell(t, tb, r, 2), cell(t, tb, r, 3), cell(t, tb, r, 4)
		// Direct cost grows with hop distance.
		if pgas <= prevPGAS {
			t.Fatalf("row %d: direct put cost %v not increasing with distance", r, pgas)
		}
		prevPGAS = pgas
		// Stale repair always costs more than a direct put, and the
		// host-forward detour (sw) must cost more than the in-network
		// forward (nm) at every distance — the crossover the network-
		// managed design exists to win.
		if sw <= pgas || nm <= pgas {
			t.Fatalf("row %d: stale costs (sw %v, nm %v) not above direct %v", r, sw, nm, pgas)
		}
		if nm >= sw {
			t.Fatalf("row %d: in-network forward %v not cheaper than host forward %v", r, nm, sw)
		}
	}
}

func TestF19RebalanceShape(t *testing.T) {
	tb := mustRun(t, "F19")
	// Rows: (agas-sw, agas-nm) × (policy off, policy on). Columns:
	// mode, policy, pre_ops_ms, post_ops_ms, imbalance, moves, repl,
	// detours.
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", tb.NumRows())
	}
	for _, r := range []int{0, 2} {
		if m := cell(t, tb, r, 5); m != 0 {
			t.Fatalf("row %d: policy-off baseline migrated %v blocks", r, m)
		}
	}
	for _, r := range []int{1, 3} {
		if m := cell(t, tb, r, 5); m == 0 {
			t.Fatalf("row %d: policy made no moves", r)
		}
		if n := cell(t, tb, r, 6); n == 0 {
			t.Fatalf("row %d: policy never replicated the shared region", r)
		}
	}
	// The acceptance gate: under network-managed AGAS the policy's
	// post-shift steady state sustains at least 2x the static placement
	// (it re-converged after the regime change), and its serving load is
	// balanced to max/mean <= 1.3.
	offPost, onPost := cell(t, tb, 2, 3), cell(t, tb, 3, 3)
	if onPost < 2*offPost {
		t.Fatalf("agas-nm post-shift: policy %v not 2x static %v", onPost, offPost)
	}
	if offPre, onPre := cell(t, tb, 2, 2), cell(t, tb, 3, 2); onPre < 2*offPre {
		t.Fatalf("agas-nm pre-shift: policy %v not 2x static %v", onPre, offPre)
	}
	if imb := cell(t, tb, 3, 4); imb > 1.3 {
		t.Fatalf("agas-nm converged imbalance %v > 1.3", imb)
	}
	// The same migration churn that software AGAS repairs host-side
	// (stale caches after every policy move) is absorbed in-network by
	// the NIC-managed space.
	swDet, nmDet := cell(t, tb, 1, 7), cell(t, tb, 3, 7)
	if swDet == 0 {
		t.Fatal("agas-sw policy run shows no host repair detours")
	}
	if nmDet >= swDet {
		t.Fatalf("agas-nm detours %v not under agas-sw %v", nmDet, swDet)
	}
}

func mustRun(t *testing.T, id string) *stats.Table {
	t.Helper()
	e, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tb := e.Run(quick())
	if tb.NumRows() == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tb
}

func TestF20HealthShape(t *testing.T) {
	tb := mustRun(t, "F20")
	// Rows: retransmit-storm, migration-stall, hotspot-rebalance.
	// Columns: scenario, watchdog, onset_pulse, trip_pulse, latency,
	// bundle_events, in_window, recovered, detail.
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", tb.NumRows())
	}
	rows := tb.Rows()
	for r, want := range []string{"retransmit-storm", "migration-stall", "hotspot-rebalance"} {
		if rows[r][0] != want {
			t.Fatalf("row %d scenario %q, want %q", r, rows[r][0], want)
		}
	}
	// The acceptance gate: each injected anomaly trips its matching
	// watchdog within <=2 pulse periods of the condition first holding,
	// the flight bundle's trace window contains the anomaly, and the
	// world recovers to ok after remediation.
	for _, r := range []int{0, 1} {
		if lat := cell(t, tb, r, 4); lat < 0 || lat > 2 {
			t.Fatalf("row %d: trip latency %v pulses, want [0,2]", r, lat)
		}
		if n := cell(t, tb, r, 5); n == 0 {
			t.Fatalf("row %d: flight bundle captured no events", r)
		}
		if rows[r][6] != "true" {
			t.Fatalf("row %d: anomaly events missing from the bundle window", r)
		}
	}
	for r := 0; r < 3; r++ {
		if rows[r][7] != "true" {
			t.Fatalf("row %d (%s): world did not recover", r, rows[r][0])
		}
	}
	// The rebalance row is the pulse-driven F19 scenario: the policy
	// must have acted (moves show up in the detail) with the hotspot
	// cleared before the run ended.
	if rows[2][1] != "heat-imbalance" {
		t.Fatalf("rebalance row watchdog %q", rows[2][1])
	}
}
