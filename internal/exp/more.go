package exp

import (
	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
	"nmvgas/internal/workloads"
)

func init() {
	register("F11", "Fig. 11: chaotic-relaxation SSSP across modes", f11SSSP)
	register("F12", "Fig. 12: key results under an oversubscribed two-tier fabric", f12Topology)
	register("T5", "Table 5: all-to-all exchange, aggregate bandwidth", t5AllToAll)
}

// f11SSSP runs the asynchronous single-source shortest-path workload —
// unordered, termination-detected, migration-tolerant — across modes and
// placements. SSSP is parcel-dominated (every relax is a small message),
// so it amplifies per-message translation overhead.
func f11SSSP(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 11: SSSP time (ms), balanced vs serialized placement",
		"mode", "cyclic_ms", "serialized_ms", "reached")
	const ranks = 8
	n, deg := uint32(1500), 6
	if o.Quick {
		n, deg = 300, 4
	}
	for _, sp := range o.sweep() {
		run := func(dist gas.Dist) (float64, int) {
			w := newWorld(sp, ranks)
			s := workloads.NewSSSP(w, "sssp")
			w.Start()
			defer w.Stop()
			g := workloads.GenGraph(n, deg, o.Seed)
			if err := s.Setup(g, 32, dist); err != nil {
				panic(err)
			}
			start := w.Now()
			reached, err := s.Run(0)
			if err != nil {
				panic(err)
			}
			return (w.Now() - start).Micros() / 1e3, reached
		}
		cyc, reached := run(gas.DistCyclic)
		ser, _ := run(gas.DistLocal)
		tb.AddRow(sp.String(), cyc, ser, reached)
	}
	return tb
}

// f12Topology re-checks the two headline orderings — put latency and
// post-migration steady state — on an oversubscribed two-tier fabric
// where in-network forwarding crosses the spine. The paper's conclusion
// must not be a crossbar artifact.
func f12Topology(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 12: two-tier fabric (pods of 4, 2x oversubscribed), inter-pod ops",
		"metric", "pgas_us", "agas_sw_us", "agas_nm_us")
	topo := netsim.NewTwoTier(4, 2.0)
	mk := func(sp runtime.SpaceSpec) *runtime.World {
		return newWorld(sp, 8, func(c *runtime.Config) { c.Topology = topo })
	}
	// Inter-pod put latency (rank 0 → block homed on rank 7).
	var put [3]float64
	for mi, sp := range spaces {
		w := mk(sp)
		w.Start()
		lay, err := w.AllocCyclic(0, 4096, 8)
		if err != nil {
			panic(err)
		}
		g := lay.BlockAt(7)
		buf := make([]byte, 64)
		w.MustWait(w.Proc(0).Put(g, buf))
		put[mi] = timeOp(w, func() *runtime.LCORef { return w.Proc(0).Put(g, buf) }).Micros()
		w.Stop()
	}
	tb.AddRow("interpod_put", put[0], put[1], put[2])

	// Post-migration steady state: block homed in pod 0 migrated within
	// pod 1; sender in pod 0.
	var steady [3]float64
	for mi, sp := range spaces {
		w := mk(sp)
		echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(nil) })
		w.Start()
		lay, err := w.AllocLocal(1, 256, 1)
		if err != nil {
			panic(err)
		}
		g := lay.BlockAt(0)
		if sp.Caps.Migration {
			w.MustWait(w.Proc(0).Migrate(g, 6))
		}
		w.MustWait(w.Proc(2).Call(g, echo, nil)) // corrective round
		steady[mi] = timeOp(w, func() *runtime.LCORef {
			return w.Proc(2).Call(g, echo, nil)
		}).Micros()
		w.Stop()
	}
	tb.AddRow("postmigration_rtt", steady[0], steady[1], steady[2])
	return tb
}

// t5AllToAll measures a full personalized exchange: every rank puts one
// chunk into every other rank's block simultaneously — the incast-heavy
// pattern that stresses rx-link modeling and per-message overheads.
func t5AllToAll(o Options) *stats.Table {
	tb := stats.NewTable("Table 5: all-to-all exchange, aggregate bandwidth (MB/s)",
		"chunk_B", "pgas_MBs", "agas_sw_MBs", "agas_nm_MBs")
	const ranks = 8
	sizes := []int{512, 4096, 32768}
	if o.Quick {
		sizes = []int{512, 8192}
	}
	for _, size := range sizes {
		row := make([]float64, len(spaces))
		for mi, sp := range spaces {
			w := newWorld(sp, ranks)
			w.Start()
			// One block per (src,dst) pair, homed at dst.
			lay, err := w.AllocCyclic(0, uint32(size), ranks*ranks)
			if err != nil {
				panic(err)
			}
			gate := w.NewAndGate(0, ranks*(ranks-1))
			buf := make([]byte, size)
			start := w.Now()
			for src := 0; src < ranks; src++ {
				src := src
				w.Proc(src).Run(func() {
					loc := w.Locality(src)
					for dst := 0; dst < ranks; dst++ {
						if dst == src {
							continue
						}
						// Block index chosen so HomeOf == dst under the
						// cyclic layout.
						d := uint32(src*ranks + dst)
						for lay.HomeOf(d%uint32(ranks*ranks)) != dst {
							d++
						}
						loc.PutAsync(lay.BlockAt(d%uint32(ranks*ranks)), buf, func() {
							loc.SendParcel(&parcel.Parcel{Action: runtime.ALCOSet, Target: gate.G})
						})
					}
				})
			}
			w.MustWait(gate)
			elapsed := w.Now() - start
			totalMB := float64(ranks*(ranks-1)) * float64(size) / 1e6
			row[mi] = totalMB / (float64(elapsed) / 1e9)
			w.Stop()
		}
		tb.AddRow(size, row[0], row[1], row[2])
	}
	return tb
}
