// Package exp is the experiment harness: one driver per table and figure
// of the reconstructed evaluation (see DESIGN.md §4 for the index and
// EXPERIMENTS.md for expected-vs-measured). Every experiment runs on the
// deterministic discrete-event engine, so its numbers are exactly
// reproducible and immune to Go GC jitter.
package exp

import (
	"fmt"
	"io"
	"sort"

	"nmvgas/internal/agas"
	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
)

// Options tune experiment scale.
type Options struct {
	// Quick shrinks sweeps for CI and unit tests.
	Quick bool
	// Seed feeds the deterministic workload generators.
	Seed int64
	// Spaces restricts which address spaces row-per-mode experiments
	// sweep (nil = all built-ins). Experiments whose table columns are
	// fixed per mode always sweep every built-in space.
	Spaces []runtime.SpaceSpec
	// Faults, when enabled, is appended to the chaos experiment's fault
	// sweep as an extra operator-chosen plan (vgasbench maps -loss/-dup/
	// -reorder here).
	Faults netsim.FaultPlan
	// Replicas, when > 0, replaces the replication experiment's default
	// replica-count sweep with {0, Replicas} (vgasbench maps -replicas
	// here).
	Replicas int
	// Coherence selects the replica coherence policy the replication
	// experiment runs under (vgasbench maps -coherence here).
	Coherence agas.Coherence
	// Localities replaces the scaling experiment's world-size sweep
	// (vgasbench maps -localities here). Nil = the experiment's default
	// sweep.
	Localities []int
	// ShardSweep replaces the scaling experiment's shard-count sweep
	// (vgasbench maps -shards here). Nil = default sweep; an explicit 0
	// selects the classic single-heap engine.
	ShardSweep []int
	// Topology is a netsim.ParseTopology spec the scaling experiment
	// builds its fabric from at each world size (vgasbench maps
	// -topology here). Empty = the experiment's default fat-tree.
	Topology string
	// TenantBlocks overrides the rebalancing experiment's blocks-per-
	// tenant (vgasbench maps -tenants here). 0 = the default (8).
	TenantBlocks int
	// Shifts is how many hotspot shifts the rebalancing experiment
	// applies, each followed by a full convergence window (vgasbench
	// maps -shift here). 0 = the default (1).
	Shifts int
	// MoveBudget overrides the rebalancing policy's per-epoch migration
	// budget (vgasbench maps -rebalance here). 0 = the default (16).
	MoveBudget int
	// FlightOut, when set, is a file path the health experiment writes
	// its flight-recorder trip bundle to (vgasbench maps -flight-out
	// here; CI uploads it as the health-smoke artifact).
	FlightOut string
}

// sweep returns the address spaces a row-per-mode experiment iterates.
func (o Options) sweep() []runtime.SpaceSpec {
	if len(o.Spaces) > 0 {
		return o.Spaces
	}
	return spaces
}

// DefaultOptions returns full-scale settings with a fixed seed.
func DefaultOptions() Options { return Options{Seed: 42} }

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) *stats.Table
}

// Registry lists every experiment in paper order. Filled by init
// functions across this package's files.
var Registry []Experiment

func register(id, title string, run func(Options) *stats.Table) {
	Registry = append(Registry, Experiment{ID: id, Title: title, Run: run})
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in registration order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}

// RunAll executes every experiment and writes the tables to w.
func RunAll(o Options, out io.Writer) error {
	for _, e := range Registry {
		t := e.Run(o)
		if err := t.Fprint(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// spaces is the sweep order used in every table (the runtime's canonical
// address-space order).
var spaces = runtime.Spaces()

// newWorld builds a DES world running sp's address space.
func newWorld(sp runtime.SpaceSpec, ranks int, mutate ...func(*runtime.Config)) *runtime.World {
	cfg := runtime.Config{Ranks: ranks, Engine: runtime.EngineDES}
	for _, m := range mutate {
		m(&cfg)
	}
	w, err := runtime.NewWorldFor(sp, cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: world construction: %v", err))
	}
	return w
}

// withHeat turns on sampled access-heat tracking (unsampled, so small
// experiment worlds see exact counts) for runs that feed loadbal.
func withHeat(cfg *runtime.Config) {
	cfg.Heat = runtime.HeatConfig{Enabled: true}
}

// timeOp measures the simulated duration of one driver-visible operation.
func timeOp(w *runtime.World, op func() *runtime.LCORef) netsim.VTime {
	start := w.Now()
	w.MustWait(op())
	return w.Now() - start
}

// meanMicros averages a sample set in microseconds.
func meanMicros(samples []netsim.VTime) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum netsim.VTime
	for _, s := range samples {
		sum += s
	}
	return (sum / netsim.VTime(len(samples))).Micros()
}

// medianMicros returns the median in microseconds.
func medianMicros(samples []netsim.VTime) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]netsim.VTime(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2].Micros()
}

// sizesFor returns the message-size sweep.
func sizesFor(o Options) []int {
	if o.Quick {
		return []int{8, 512, 8192}
	}
	return []int{8, 64, 512, 4096, 16384, 65536}
}

// putStream issues n one-sided writes from rank `from`, keeping `window`
// outstanding, targets chosen by targetOf(seq). It returns the simulated
// makespan.
func putStream(w *runtime.World, from, n, window, size int, targetOf func(seq int) gas.GVA) netsim.VTime {
	gate := w.NewAndGate(from, 1)
	loc := w.Locality(from)
	buf := make([]byte, size)
	issued, completed := 0, 0
	var issue func()
	issue = func() {
		seq := issued
		issued++
		loc.PutAsync(targetOf(seq), buf, func() {
			completed++
			if issued < n {
				issue()
			} else if completed == n {
				loc.SendParcel(&parcel.Parcel{Action: runtime.ALCOSet, Target: gate.G})
			}
		})
	}
	start := w.Now()
	w.Proc(from).Run(func() {
		prime := window
		if prime > n {
			prime = n
		}
		for i := 0; i < prime; i++ {
			issue()
		}
	})
	w.MustWait(gate)
	return w.Now() - start
}
