package exp

import (
	"math/rand"

	"nmvgas/internal/stats"
)

func init() {
	register("F14", "Fig. 14: read-mostly data — remote gets vs read-only replication", f14Replication)
}

// f14Replication measures a read-dominated access pattern (random gets
// over a lookup-table layout) before and after freezing + replicating the
// table. Replication turns every get into a local copy, so the win is the
// full wire round-trip — and it is mode-independent, because reads of
// frozen data never touch translation at all.
func f14Replication(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 14: random 64B gets over a lookup table (µs/op)",
		"mode", "remote_us", "replicated_us", "speedup")
	const ranks = 8
	reads := 200
	if o.Quick {
		reads = 60
	}
	for _, sp := range o.sweep() {
		w := newWorld(sp, ranks)
		w.Start()
		lay, err := w.AllocCyclic(0, 4096, 16)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(o.Seed))
		measure := func() float64 {
			start := w.Now()
			for i := 0; i < reads; i++ {
				d := uint32(rng.Intn(16))
				off := uint32(rng.Intn(4096 - 64))
				w.MustWait(w.Proc(rng.Intn(ranks)).Get(lay.BlockAt(d).WithOffset(off), 64))
			}
			return (w.Now() - start).Micros() / float64(reads)
		}
		remote := measure()
		if err := w.Replicate(lay); err != nil {
			panic(err)
		}
		replicated := measure()
		tb.AddRow(sp.String(), remote, replicated, remote/replicated)
		w.Stop()
	}
	return tb
}
