package exp

import (
	"math/rand"

	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
	"nmvgas/internal/workloads"
)

func init() {
	register("F14", "Fig. 14: read-mostly data — remote gets vs coherent replication", f14Replication)
	register("F16", "Fig. 16: coherent replication — read throughput vs replica count", f16ReplicatedReads)
}

// f14Replication measures a read-dominated access pattern (random gets
// over a lookup-table layout) before and after installing a live replica
// set on every rank. Replication turns every get into a local copy, so
// the win is the full wire round-trip — and since no writes occur during
// the measurement, no coherence traffic dilutes it in any mode.
func f14Replication(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 14: random 64B gets over a lookup table (µs/op)",
		"mode", "remote_us", "replicated_us", "speedup")
	const ranks = 8
	reads := 200
	if o.Quick {
		reads = 60
	}
	for _, sp := range o.sweep() {
		w := newWorld(sp, ranks)
		w.Start()
		lay, err := w.AllocCyclic(0, 4096, 16)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(o.Seed))
		measure := func() float64 {
			start := w.Now()
			for i := 0; i < reads; i++ {
				d := uint32(rng.Intn(16))
				off := uint32(rng.Intn(4096 - 64))
				w.MustWait(w.Proc(rng.Intn(ranks)).Get(lay.BlockAt(d).WithOffset(off), 64))
			}
			return (w.Now() - start).Micros() / float64(reads)
		}
		remote := measure()
		if err := w.Replicate(lay); err != nil {
			panic(err)
		}
		replicated := measure()
		tb.AddRow(sp.String(), remote, replicated, remote/replicated)
		w.Stop()
	}
	return tb
}

// f16ReplicatedReads drives the read-heavy Zipfian workload over a live
// replica set, sweeping the replica count per block. Each cell runs two
// phases over the same table: a warm phase with writes mixed into the
// skewed stream (this is where write-invalidate coherence churns — and
// where software AGAS pays host-side corrections for every read landing
// in an invalidation's stale window), then, after the coherence traffic
// drains, a timed pure-read phase. Reads are large enough (2 KiB of a
// 4 KiB block) that the hot block's serving NIC link — not the issuing
// hosts — is the unreplicated bottleneck, which is precisely the
// resource a replica set multiplies.
//
// The claims under test: network-managed AGAS serves replica hits
// entirely in-network — the measured phase completes with zero host
// re-route detours — and its read throughput scales with the replica
// count, while software AGAS shows the invalidation-storm corrections in
// the warm-phase detour column.
func f16ReplicatedReads(o Options) *stats.Table {
	tb := stats.NewTable("Fig. 16: Zipfian 2KiB reads over replicated blocks (measured phase is write-free)",
		"mode", "replicas", "reads_per_ms", "read_detours", "warm_detours", "stale_reads", "invals", "fills")
	const ranks = 8
	perRank, warmPerRank, window := 400, 120, 8
	sweepN := []int{0, 1, 3, 7}
	if o.Quick {
		perRank, warmPerRank = 100, 36
		sweepN = []int{0, 3}
	}
	if o.Replicas > 0 {
		sweepN = []int{0, o.Replicas}
	}
	for _, sp := range o.sweep() {
		for _, n := range sweepN {
			w := newWorld(sp, ranks, func(c *runtime.Config) { c.Coherence = o.Coherence })
			rh := workloads.NewReadHot(w)
			w.Start()
			if err := rh.Setup(4096, 16, 2048, 2.2, 6, o.Seed); err != nil {
				panic(err)
			}
			if n > 0 {
				if err := w.ReplicateLive(rh.Layout(), n); err != nil {
					panic(err)
				}
			}
			if _, err := rh.Run(warmPerRank, window); err != nil {
				panic(err)
			}
			w.Drain() // let in-flight invalidations and refills land
			warm := w.Stats()
			rh.SetWriteEvery(0)
			start := w.Now()
			if _, err := rh.Run(perRank, window); err != nil {
				panic(err)
			}
			elapsed := w.Now() - start
			s := w.Stats()
			readsPerMs := float64(rh.Reads()) / (elapsed.Micros() / 1000)
			detours := func(s runtime.WorldStats) int64 { return s.HostForwards + s.HostNacks }
			tb.AddRow(sp.String(), n, readsPerMs,
				detours(s)-detours(warm), detours(warm),
				s.ReplicaStaleReads, s.ReplicaInvals, s.ReplicaFills)
			w.Stop()
		}
	}
	return tb
}
