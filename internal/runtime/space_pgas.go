package runtime

import (
	"nmvgas/internal/agas"
	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/pgas"
)

// pgasSpace is the static-translation baseline: ownership is a pure
// function of the address (wrapping pgas.Resolver), so there is no
// translation state to maintain, nothing can be stale, and blocks never
// move.

var pgasCaps = Caps{Name: "pgas", Replication: true}

func pgasBuilder() spaceBuilder {
	return spaceBuilder{
		caps:      pgasCaps,
		initWorld: func(*World) {},
		newLocal: func(l *Locality) AddressSpace {
			return &pgasSpace{
				l:      l,
				res:    pgas.NewResolver(l.w.cfg.Ranks),
				dir:    agas.NewDirectory(),
				routes: agas.NewReplicaRoutes(),
			}
		},
	}
}

type pgasSpace struct {
	l   *Locality
	res *pgas.Resolver
	// dir holds no ownership entries (ownership is static) — it exists
	// purely as the owner-side replica directory.
	dir *agas.Directory
	// routes is the static read-routing table filled at ReplicateLive
	// time: consistent with pgas philosophy, it never changes between
	// install and drop.
	routes *agas.ReplicaRoutes
}

func (s *pgasSpace) Caps() Caps { return pgasCaps }

func (s *pgasSpace) InstallInitial(gas.BlockID) {}

func (s *pgasSpace) Translate(g gas.GVA) int {
	o, err := s.res.Owner(g)
	if err != nil {
		s.l.w.fail("rank %d (pgas): translate %v: %v", s.l.rank, g, err)
	}
	// Static translation has no directory to re-resolve through, so the
	// membership overlay is the only escape from a dead owner: promoted
	// replicas of blocks whose home died are reached through it (armed
	// worlds only; one atomic load otherwise).
	return s.l.w.mem.redirect(g.Block(), o, g.Home())
}

func (s *pgasSpace) OwnerHint(b gas.BlockID, home int) int { return home }

func (s *pgasSpace) OnStaleDelivery(m *netsim.Message, p *parcel.Parcel) {
	// Static addressing cannot be stale: a non-resident delivery means
	// the target was never allocated (or already freed). Under the
	// reliability layer a duplicated message can outlive a free — drop
	// it with an ack instead of dying.
	if s.l.relStaleDrop(m) {
		return
	}
	if p != nil {
		s.l.w.fail("rank %d (pgas): parcel %v for non-resident block %d", s.l.rank, p, m.Target.Block())
	}
	s.l.w.fail("rank %d (pgas): one-sided op on non-resident block %d", s.l.rank, m.Target.Block())
}

func (s *pgasSpace) LearnOwner(gas.BlockID, int) {}

// The migration hooks are unreachable: migrateReq refuses before
// pinning because Caps().Migration is false. Reaching one is a protocol
// bug, reported with the package's canonical error.
func (s *pgasSpace) BeginMigrate(b gas.BlockID)         { s.noMigration(b) }
func (s *pgasSpace) InstallMigrated(b gas.BlockID)      { s.noMigration(b) }
func (s *pgasSpace) CommitMigrate(b gas.BlockID, _ int) { s.noMigration(b) }
func (s *pgasSpace) FinishMigrate(b gas.BlockID, _ int) { s.noMigration(b) }
func (s *pgasSpace) AbortMigrate(b gas.BlockID)         { s.noMigration(b) }

func (s *pgasSpace) noMigration(b gas.BlockID) {
	s.l.w.fail("rank %d: migration hook for block %d: %v", s.l.rank, b, pgas.ErrNoMigration)
}

func (s *pgasSpace) HomeOwner(gas.BlockID) int { return s.l.rank }

func (s *pgasSpace) OnFree(b gas.BlockID, _ int) {
	s.dir.DropReplicas(b)
	s.routes.Drop(b)
}

func (s *pgasSpace) InstallReplicas(b gas.BlockID, master int, holders []int) {
	r := s.l.rank
	if r == master {
		return
	}
	for _, h := range holders {
		if h == r {
			return
		}
	}
	s.routes.Set(b, s.l.w.readTarget(r, master, holders))
}

func (s *pgasSpace) DropReplicas(b gas.BlockID) { s.routes.Drop(b) }

func (s *pgasSpace) ReadRoute(b gas.BlockID) (int, bool) {
	// Static table fill: no per-read charge, mirroring pgas's zero-cost
	// address arithmetic.
	return s.routes.Get(b)
}

func (s *pgasSpace) Directory() *agas.Directory   { return s.dir }
func (s *pgasSpace) Cache() *agas.SWCache         { return nil }
func (s *pgasSpace) Tombstones() *agas.Tombstones { return nil }
