package runtime

import (
	"testing"
)

// TestDisabledLatencyHooksAllocateNothing pins the Config.Metrics=false
// contract: every latency hook is a single nil check, adding zero
// allocations to the hot paths it instruments.
func TestDisabledLatencyHooksAllocateNothing(t *testing.T) {
	w, err := NewWorld(Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if w.lat != nil {
		t.Fatal("latency state allocated without Config.Metrics")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		w.latStart(7)
		w.latParcelExec(7)
		w.latOpDone(7, true)
		w.latNackRepair(7)
		w.latMigMark(3, migPin)
		w.latMigMark(3, migDone)
	})
	if allocs != 0 {
		t.Fatalf("disabled latency hooks allocate %v per run, want 0", allocs)
	}
}

// TestLatencyHistogramsRecord exercises the enabled path end to end on
// the DES engine: parcel exec, put/get completion, and the four
// migration phases must all record.
func TestLatencyHistogramsRecord(t *testing.T) {
	w, err := NewWorld(Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	w.MustWait(w.Proc(0).Call(g, echo, nil))
	w.MustWait(w.Proc(0).Put(g, []byte{1, 2}))
	w.MustWait(w.Proc(0).Get(g, 2))
	w.MustWait(w.Proc(0).Migrate(g, 2))
	w.MustWait(w.Proc(0).Call(g, echo, nil))

	lat := w.Latencies()
	if !lat.Enabled {
		t.Fatal("latencies not enabled")
	}
	checks := []struct {
		name string
		l    LatencySummary
	}{
		{"parcel_exec", lat.ParcelExec},
		{"put", lat.PutDone},
		{"get", lat.GetDone},
		{"mig_transfer", lat.MigTransfer},
		{"mig_update", lat.MigUpdate},
		{"mig_drain", lat.MigDrain},
		{"mig_total", lat.MigTotal},
	}
	for _, c := range checks {
		if c.l.Count == 0 {
			t.Errorf("%s histogram empty", c.name)
		}
		if c.l.Count > 0 && (c.l.P50Ns > c.l.P99Ns || c.l.P99Ns > c.l.MaxNs) {
			t.Errorf("%s percentiles inconsistent: %+v", c.name, c.l)
		}
	}
	// Simulated durations must be positive: the DES clock advanced
	// between send and exec.
	if lat.ParcelExec.P50Ns <= 0 {
		t.Fatalf("parcel exec p50 = %d, want > 0", lat.ParcelExec.P50Ns)
	}
	// The migration phases nest inside the total.
	if lat.MigTotal.MaxNs < lat.MigTransfer.MaxNs {
		t.Fatalf("mig total (%d) < transfer (%d)", lat.MigTotal.MaxNs, lat.MigTransfer.MaxNs)
	}

	// StatsTable surfaces the percentile rows.
	tb := w.StatsTable()
	var found bool
	for _, row := range tb.Rows() {
		if row[0] == "lat.parcel_exec.p99_ns" {
			found = true
		}
	}
	if !found {
		t.Fatal("StatsTable missing latency rows")
	}
}
