package runtime

import (
	"sync"
	"sync/atomic"

	"nmvgas/internal/agas"
	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/stats"
)

// Runtime-level message kinds carried in netsim.Message.Kind.
const (
	kParcel uint8 = iota + 1
	kPutReq
	kPutAck
	kGetReq
	kGetRep
	// kHostNack is the software-managed repair path: the host at a stale
	// destination bounces a one-sided op back with owner advice.
	kHostNack
	// kOwnerUpd is the software-managed correction pushed to a source
	// whose parcel was host-forwarded.
	kOwnerUpd
	// kBatch is a coalesced bundle of parcels addressed to a locality.
	kBatch
	// kRelAck is a reliable-delivery acknowledgement (see reliable.go).
	kRelAck
	// kPutVec / kGetVec are vectored one-sided ops: one request carries
	// many fragments of one block (see vec.go) and costs one ack/reply.
	kPutVec
	kGetVec
	// kPutAckVec acknowledges many puts at once: its payload is a list of
	// completed OpIDs, accumulated per source and flushed when the owner's
	// mailbox drains (goroutine engine, unreliable worlds only).
	kPutAckVec
	// Coherence protocol for live read replicas (see replicate.go). All
	// four are rank-addressed (null Target, Block set) except kReplFill,
	// which chases the master through ordinary ownership routing.
	//
	// kReplInval marks a holder's replica stale after a master write
	// (write-invalidate policy).
	kReplInval
	// kReplUpdate pushes the master's post-write block snapshot to a
	// holder (write-update policy).
	kReplUpdate
	// kReplFill asks the master for a fresh snapshot of a stale replica.
	kReplFill
	// kReplFillRep answers a kReplFill with the snapshot.
	kReplFillRep
	// kMemberPing / kMemberPong are the failure-suspicion probe and its
	// answer: rank-addressed control traffic outside the reliability
	// layer (their silence is the death signal; retransmitting them
	// would blur it).
	kMemberPing
	kMemberPong
)

// LocStats are per-locality runtime counters (distinct from the fabric's
// NIC counters).
type LocStats struct {
	ParcelsSent  stats.Counter
	ParcelsRun   stats.Counter
	LocalRuns    stats.Counter // parcels short-circuited without the network
	HostForwards stats.Counter // software-managed host forwarding
	HostNacks    stats.Counter // one-sided faults repaired in software
	NICNacks     stats.Counter // NACKs received from the fabric (ablation)
	Queued       stats.Counter // messages parked behind a moving block
	SWLookups    stats.Counter
	PutOps       stats.Counter
	GetOps       stats.Counter
	PutBytes     stats.Counter
	GetBytes     stats.Counter
	Migrations   stats.Counter // completed with this locality as old owner
	LoopNacks    stats.Counter // hop-budget NACKs processed as original sender

	// BatchReroutes counts batched parcels that arrived at a host which no
	// longer owned their block and had to be re-routed in software. Under
	// in-NIC batch scatter this is the exceptional path (hop-cap
	// exhaustion, a residency race); the software-managed baseline pays it
	// for every record behind a migration.
	BatchReroutes stats.Counter
	// ScatterSplits / ScatterForwards mirror the NIC counters on the
	// goroutine engine, where chanNet plays the NIC role.
	ScatterSplits   stats.Counter
	ScatterForwards stats.Counter

	// Coherent-replication counters (see replicate.go). ReplicaReads are
	// reads served from a local replica copy; ReplicaStaleReads found the
	// copy stale and chased the master instead; ReplicaInvals /
	// ReplicaUpdates / ReplicaFills count coherence messages applied at
	// this locality as a holder.
	ReplicaReads      stats.Counter
	ReplicaStaleReads stats.Counter
	ReplicaInvals     stats.Counter
	ReplicaUpdates    stats.Counter
	ReplicaFills      stats.Counter
}

type moveState struct {
	dst    int
	queued []*netsim.Message
}

// opState is stored by value in the ops map: a put's completion is the
// overwhelmingly common case, and keeping the state inline avoids one
// heap allocation per one-sided op.
type opState struct {
	done  func(data []byte) // get completion (may retain data)
	pdone func()            // put completion
}

// Locality is one simulated compute node: a block store, the mode's
// address-translation state, an executor standing in for its host CPU,
// and the protocol handlers.
type Locality struct {
	w    *World
	rank int

	store *gas.Store
	exec  Executor
	// eng is this rank's DES engine face (the shard engine under the
	// parallel engine, the world engine otherwise; nil under EngineGo).
	// Rank-local timers (reliability retransmits, coalescer flushes) are
	// scheduled here so they live on the rank's own timeline.
	eng *netsim.Engine

	// space is the mode's address-translation strategy (see space.go);
	// all per-mode protocol behaviour lives behind it.
	space AddressSpace

	mu     sync.Mutex
	moving map[gas.BlockID]*moveState
	// active counts user actions currently executing against each block;
	// migration defers until the block is quiescent so a snapshot can
	// never race an in-flight handler.
	active map[gas.BlockID]int
	ops    map[uint64]opState
	// replicas is this locality's holder-side coherence state, one entry
	// per replica block resident here (nil until the first install; see
	// replicate.go).
	replicas map[gas.BlockID]*replHolder

	// ackPend accumulates put-ack OpIDs per requester rank between mailbox
	// drains (goroutine engine, unreliable worlds; see flushAcks). Only
	// touched from the locality actor goroutine, so it needs no lock.
	ackPend map[int][]uint64
	ackSrcs []int // ranks with pending acks, in arrival order

	// coal batches outgoing parcels when coalescing is configured.
	coal *coalescer

	// rel is the reliable-delivery send state (nil when the world has no
	// faults configured; see reliable.go).
	rel *relLoc

	parcelSeq atomic.Uint64
	// opIDSeq feeds newOpID; the rank lives in the id's high bits, so the
	// per-locality counter yields world-unique ids without coordination.
	opIDSeq atomic.Uint64
	Stats   LocStats
}

// newOpID mints a world-unique causal span id: rank+1 in the top 16 bits
// (Ranks is capped at 1<<12, and +1 keeps id 0 reserved for "no op"), a
// per-locality counter below. Parcels and one-sided operations share the
// namespace — an id names one logical operation across every hop,
// forward, NACK repair, and retransmit.
func (l *Locality) newOpID() uint64 {
	return uint64(l.rank+1)<<48 | l.opIDSeq.Add(1)
}

func newLocality(w *World, rank int, bld spaceBuilder) *Locality {
	l := &Locality{
		w:      w,
		rank:   rank,
		store:  gas.NewStore(),
		moving: make(map[gas.BlockID]*moveState),
		active: make(map[gas.BlockID]int),
		ops:    make(map[uint64]opState),
	}
	l.space = bld.newLocal(l)
	if w.cfg.Coalesce.enabled() {
		l.coal = newCoalescer(l, w.cfg.Coalesce)
	}
	if w.relw != nil {
		l.rel = &relLoc{tx: make(map[int32]*relTxChan)}
	}
	return l
}

// Rank returns this locality's rank.
func (l *Locality) Rank() int { return l.rank }

// World returns the owning world.
func (l *Locality) World() *World { return l.w }

// Store exposes the block store (driver-side verification and workload
// setup).
func (l *Locality) Store() *gas.Store { return l.store }

// Space exposes the locality's address-space strategy.
func (l *Locality) Space() AddressSpace { return l.space }

// Cache exposes the software translation cache (nil where the strategy
// has none).
func (l *Locality) Cache() *agas.SWCache { return l.space.Cache() }

// Directory exposes the home directory (nil where the strategy has
// none).
func (l *Locality) Directory() *agas.Directory { return l.space.Directory() }

// Tombstones exposes the host forwarding tombstones (nil where the
// strategy has none).
func (l *Locality) Tombstones() *agas.Tombstones { return l.space.Tombstones() }

// Moving reports whether block b is pinned by an in-flight migration at
// this locality (drivers use it to time mid-migration experiments).
func (l *Locality) Moving(b gas.BlockID) bool { return l.isMoving(b) }

func (l *Locality) isMoving(b gas.BlockID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.moving[b]
	return ok
}

// queueIfMoving parks m behind an in-flight migration of b; reports
// whether it did.
func (l *Locality) queueIfMoving(b gas.BlockID, m *netsim.Message) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.moving[b]
	if !ok {
		return false
	}
	st.queued = append(st.queued, m)
	l.Stats.Queued.Inc()
	l.traceOp(TraceQueued, b, uint64(m.Kind), m.OpID)
	return true
}

// residentForNIC is the NIC's residency oracle: a block is "resident" for
// routing purposes only when present as the *master* copy and not
// mid-migration — migrating blocks drain through the host's queueing
// path, and read-only replicas are invisible to ownership routing.
func (l *Locality) residentForNIC(b gas.BlockID) bool {
	if l.isMoving(b) {
		return false
	}
	blk, ok := l.store.Get(b)
	return ok && !blk.Replica
}

// resident reports master presence-and-not-moving (host-side fast paths).
func (l *Locality) resident(b gas.BlockID) bool { return l.residentForNIC(b) }

// ---------------------------------------------------------------------
// Send side

// SendParcel routes p from this locality. It must be called from this
// locality's execution context (an action body or a Proc task).
func (l *Locality) SendParcel(p *parcel.Parcel) {
	p.Src = l.rank
	p.Seq = l.parcelSeq.Add(1)
	p.OpID = l.newOpID()
	l.Stats.ParcelsSent.Inc()
	l.traceOp(TraceSend, p.Target.Block(), uint64(p.Action), p.OpID)
	l.w.latStart(p.OpID)
	enc := parcel.Encode(p)
	m := netsim.NewMessage()
	m.Kind = kParcel
	m.Src = l.rank
	m.Target = p.Target
	m.Payload = enc
	m.Wire = len(enc)
	m.OpID = p.OpID
	m.MigCtl = p.Action >= aMigrateReq && p.Action <= aMigrateDone
	l.routeMsg(m)
}

// recycle returns a consumed message to the pool — goroutine engine
// only. The DES fabric legitimately retains delivered messages inside
// deferred table-update events, so recycling there would corrupt live
// state; on DES consumed messages are left to the garbage collector.
// Callers must hold sole ownership of m (see netsim.NewMessage).
func (l *Locality) recycle(m *netsim.Message) {
	if l.w.eng == nil {
		m.Release()
	}
}

// routeMsg performs source-side translation for m via the address-space
// strategy and either delivers locally or injects into the network. It
// is also the re-send path after corrections, NACKs, and migration
// flushes.
func (l *Locality) routeMsg(m *netsim.Message) {
	m.Hops = 0
	b := m.Target.Block()
	m.Block = b
	if m.Kind == kGetReq || m.Kind == kGetVec {
		// Reads of replicated blocks may be steered to a replica holder;
		// everything else strictly follows ownership.
		m.Read = true
	}

	// Local fast path: the data is here and stable.
	if l.resident(b) {
		l.deliverLocal(m)
		return
	}
	if m.Read && l.w.replCount.Load() != 0 {
		if fresh, holder := l.replicaFresh(b); holder {
			if fresh {
				// Replica fast path: a fresh local copy serves the read
				// without the network.
				l.deliverLocal(m)
				return
			}
			// Stale local copy: the read chases the master while the
			// refill is in flight.
			l.Stats.ReplicaStaleReads.Inc()
		} else if t, ok := l.space.ReadRoute(b); ok && t != l.rank {
			// Host-routed replica read (sw/pgas): the cached route picks
			// the nearby holder. The NM space routes reads in the NIC and
			// returns false here.
			l.inject(m, t)
			return
		}
	}
	if l.queueIfMoving(b, m) {
		return
	}

	if l.coal != nil && m.Kind == kParcel && m.RelSeq == 0 {
		// Already-tracked parcels (NACK resends) must keep their message
		// identity — folding one into a batch would strand its
		// retransmission state.
		// The strategy's zero-cost owner guess picks the batching
		// destination; wrong guesses are re-routed at the batch target.
		if dst := l.space.OwnerHint(b, m.Target.Home()); dst != l.rank {
			// The coalescer keeps only the encoded bytes; the envelope is
			// consumed here.
			payload := m.Payload
			l.recycle(m)
			l.coal.add(dst, payload)
			return
		}
	}

	l.inject(m, l.space.Translate(m.Target))
}

// inject charges host injection overhead and hands m to the network. The
// injection is scheduled at the host-busy horizon so that send-side
// software costs (translation, OSend) delay the wire departure — that
// serialization is exactly the overhead the paper's design removes.
func (l *Locality) inject(m *netsim.Message, dst int) {
	m.Dst = dst
	l.relTrack(m)
	l.exec.Charge(l.w.cfg.Model.OSend)
	if l.w.eng == nil {
		// The goroutine transport is thread-safe and there is no host-busy
		// horizon to respect: send inline instead of paying a mailbox round
		// trip and a capturing closure per message.
		l.w.net.send(l.rank, m)
		return
	}
	l.exec.Exec(0, func() { l.w.net.send(l.rank, m) })
}

// nicInject sends from NIC context (DMA completions), enrolling the
// message in reliable delivery so a lost completion is retransmitted by
// the owner rather than regenerated by a deduplicated request.
func (l *Locality) nicInject(m *netsim.Message) {
	l.relTrack(m)
	l.w.net.nicSend(l.rank, m)
}

// deliverLocal executes m on this locality without touching the network.
// On the goroutine engine it uses the typed mailbox lane straight to the
// host handler (no closure); on DES it charges handler dispatch.
func (l *Locality) deliverLocal(m *netsim.Message) {
	l.Stats.LocalRuns.Inc()
	if ex, ok := l.exec.(*goExec); ok {
		ex.execLocal(m)
		return
	}
	l.exec.Exec(l.w.cfg.Model.HandlerDispatch, func() { l.onHostMsg(m) })
}

// ---------------------------------------------------------------------
// Receive side (host)

// onHostMsg handles everything the NIC delivers up to the host, plus
// local deliveries. It runs on the locality executor.
func (l *Locality) onHostMsg(m *netsim.Message) {
	if m.Ctl == netsim.CtlNack || m.Ctl == netsim.CtlNackLoop {
		// The NACK envelope is consumed here; the nacked original's
		// ownership moves to the resend path (or the GC — a duplicated
		// NACK's clones share one original, so it is never pooled).
		l.onNICNack(m)
		l.recycle(m)
		return
	}
	switch m.Kind {
	case kParcel:
		p, err := parcel.Decode(m.Payload)
		if err != nil {
			l.w.fail("rank %d: undecodable parcel: %v", l.rank, err)
		}
		l.execParcel(p, m)
	case kPutReq:
		l.hostPut(m)
	case kGetReq:
		l.hostGet(m)
	case kPutVec:
		l.hostPutVec(m)
	case kGetVec:
		l.hostGetVec(m)
	case kPutAck:
		if l.relAccept(m) {
			l.completeOp(m.OpID, nil)
		}
		l.recycle(m)
	case kPutAckVec:
		l.onPutAckVec(m)
	case kGetRep:
		if l.relAccept(m) {
			// completeOp may retain the payload slice (unless it is pooled,
			// in which case the completion copies out by contract); Release
			// only drops the envelope's pointer, never the backing array.
			l.completeOp(m.OpID, m.Payload)
		}
		l.releasePayload(m)
		l.recycle(m)
	case kHostNack:
		if l.relAccept(m) {
			l.onHostNack(m)
		}
		l.recycle(m)
	case kOwnerUpd:
		if l.relAccept(m) {
			l.space.LearnOwner(m.Block, m.Owner)
		}
		l.recycle(m)
	case kBatch:
		if l.relAccept(m) {
			l.onBatch(m)
		}
		l.recycle(m)
	case kRelAck:
		l.relOnAck(m)
		l.recycle(m)
	case kReplInval:
		l.onReplInval(m)
	case kReplUpdate:
		l.onReplUpdate(m)
	case kReplFill:
		l.onReplFill(m)
	case kReplFillRep:
		l.onReplFillRep(m)
	case kMemberPing:
		pong := netsim.NewMessage()
		pong.Kind = kMemberPong
		pong.Src = l.rank
		pong.Dst = m.Src
		pong.Wire = 32
		l.w.net.nicSend(l.rank, pong)
		l.recycle(m)
	case kMemberPong:
		l.w.mem.pongFrom(m.Src)
		l.recycle(m)
	default:
		l.w.fail("rank %d: unknown message kind %d", l.rank, m.Kind)
	}
}

// execParcel dispatches a decoded parcel at its (supposed) owner. The
// moving/residency checks run at *execution* time — the parcel may sit in
// an executor queue while a migration starts — and user actions hold an
// active-count on their block so migration snapshots never race handlers.
func (l *Locality) execParcel(p *parcel.Parcel, m *netsim.Message) {
	act, err := l.w.reg.Lookup(p.Action)
	if err != nil {
		l.w.fail("rank %d: %v", l.rank, err)
	}
	if p.Action < firstUserAction {
		// Control actions never touch user block data; they re-check
		// state themselves where needed.
		if l.queueIfMoving(p.Target.Block(), m) {
			return
		}
		if blk, ok := l.store.Get(p.Target.Block()); !ok || blk.Replica {
			// Not here — or only a read replica is: parcels execute
			// exactly once, at the master.
			l.space.OnStaleDelivery(m, p)
			return
		}
		if !l.relAccept(m) {
			// A duplicated control parcel (LCO set, migration step) must
			// not run twice: gates would double-count and the migration
			// protocol would replay.
			l.recycle(m)
			return
		}
		l.Stats.ParcelsRun.Inc()
		l.traceOp(TraceExec, p.Target.Block(), uint64(p.Action), p.OpID)
		l.w.latParcelExec(p.OpID)
		act(&Ctx{l: l, P: p})
		l.recycle(m)
		return
	}
	if ex, ok := l.exec.(*goExec); ok && ex.pool == nil {
		// No worker pool: the body runs on this (actor) goroutine anyway,
		// so skip the Offload closure and the mailbox round trip.
		l.runUserParcel(act, p, m)
		return
	}
	l.exec.Offload(func() { l.runUserParcel(act, p, m) })
}

// runUserParcel is the user-action half of execParcel: dup suppression,
// migration queueing, the per-block active-count, and dispatch. It runs
// on a worker when the engine has a pool, else on the locality actor.
func (l *Locality) runUserParcel(act Action, p *parcel.Parcel, m *netsim.Message) {
	b := p.Target.Block()
	if l.relDupPeek(m) {
		// A copy that already ran here must not even transiently take
		// an active-count (that could defer a racing migration).
		l.recycle(m)
		return
	}
	l.mu.Lock()
	if st, moving := l.moving[b]; moving {
		st.queued = append(st.queued, m)
		l.Stats.Queued.Inc()
		l.mu.Unlock()
		return
	}
	l.active[b]++
	l.mu.Unlock()

	defer func() {
		l.mu.Lock()
		if l.active[b]--; l.active[b] == 0 {
			delete(l.active, b)
		}
		l.mu.Unlock()
	}()
	if blk, ok := l.store.Get(b); !ok || blk.Replica {
		// Only the master copy runs user actions; a replica here means
		// the sender's routing was stale.
		l.space.OnStaleDelivery(m, p)
		return
	}
	if !l.relAccept(m) {
		l.recycle(m)
		return
	}
	l.Stats.ParcelsRun.Inc()
	l.w.noteAccess(l.rank, m.Src, b, false)
	l.traceOp(TraceExec, b, uint64(p.Action), p.OpID)
	l.w.latParcelExec(p.OpID)
	act(&Ctx{l: l, P: p})
	l.recycle(m)
}

// routeToExplicit re-sends m to a known destination, charging injection.
func (l *Locality) routeToExplicit(m *netsim.Message, dst int) {
	m.Hops = 0
	l.inject(m, dst)
}

// onNICNack handles the fabric's NACKs at the original sender: CtlNack
// (the no-in-network-forwarding ablation) repairs the NIC table and
// resends; CtlNackLoop (hop budget exhausted) additionally counts
// bounces and abandons the message once the routing state has proven
// itself broken, instead of chasing it forever.
func (l *Locality) onNICNack(m *netsim.Message) {
	orig := m.Nacked
	if orig == nil {
		l.w.fail("rank %d: NACK without original message", l.rank)
	}
	if m.Ctl == netsim.CtlNackLoop {
		l.Stats.LoopNacks.Inc()
		l.traceOp(TraceLoopNack, m.Block, uint64(int64(m.Owner)), orig.OpID)
		orig.Bounces++
		if orig.Bounces > relBounceCap {
			l.relAbandon(orig)
			return
		}
	} else {
		l.Stats.NICNacks.Inc()
		l.traceOp(TraceNICNack, m.Block, uint64(int64(m.Owner)), orig.OpID)
	}
	l.w.latNackRepair(orig.OpID)
	if m.Owner >= 0 {
		l.exec.Charge(l.w.cfg.Model.NICUpdate)
		l.w.net.updateTable(l.rank, m.Block, m.Owner)
	}
	// Resend a copy: a duplicated NACK can deliver twice, and both
	// resends must not alias one Message crossing the fabric twice. The
	// copy is pooled; orig stays off the pool because duplicated NACK
	// clones share it.
	cp := netsim.NewMessage()
	*cp = *orig
	l.routeMsg(cp)
}

// onHostNack handles the software-managed repair of a bounced one-sided
// operation.
func (l *Locality) onHostNack(m *netsim.Message) {
	l.Stats.HostNacks.Inc()
	if m.Nacked == nil {
		l.w.fail("rank %d: host NACK without original message", l.rank)
	}
	l.traceOp(TraceHostNack, m.Block, uint64(int64(m.Owner)), m.Nacked.OpID)
	l.w.latNackRepair(m.Nacked.OpID)
	if m.Owner >= 0 {
		l.space.LearnOwner(m.Block, m.Owner)
	}
	l.routeMsg(m.Nacked)
}

// ---------------------------------------------------------------------
// One-sided operations

// PutAsync writes data at dst and runs done on this locality when the
// write is remotely complete. Must be called from this locality's
// execution context.
func (l *Locality) PutAsync(dst gas.GVA, data []byte, done func()) {
	l.Stats.PutOps.Inc()
	l.Stats.PutBytes.Add(int64(len(data)))
	id := l.newPutOp(done)
	m := netsim.NewMessage()
	if l.payloadPoolable() {
		buf, pooled := getWireBuf(len(data))
		m.Payload = append(buf, data...)
		m.PayloadPooled = pooled
	} else {
		m.Payload = append([]byte(nil), data...)
	}
	m.Kind = kPutReq
	m.Src = l.rank
	m.Target = dst
	m.DMA = true
	m.Wire = 32 + len(data)
	m.OpID = id
	l.routeMsg(m)
}

// GetAsync reads n bytes at src and runs done with the data. Must be
// called from this locality's execution context. done may retain the
// data.
func (l *Locality) GetAsync(src gas.GVA, n uint32, done func(data []byte)) {
	l.getAsync(src, n, false, done)
}

// getAsync is GetAsync plus the pooled-reply option: with pooledOK the
// request is marked PayloadPooled, granting the responder permission to
// answer from a pooled wire buffer — which requires done to copy the
// data out before returning (the reply handler releases the buffer).
func (l *Locality) getAsync(src gas.GVA, n uint32, pooledOK bool, done func(data []byte)) {
	l.Stats.GetOps.Inc()
	l.Stats.GetBytes.Add(int64(n))
	id := l.newGetOp(done)
	m := netsim.NewMessage()
	m.Kind = kGetReq
	m.Src = l.rank
	m.Target = src
	m.DMA = true
	m.Wire = 32
	m.N = n
	m.OpID = id
	m.PayloadPooled = pooledOK && l.payloadPoolable()
	l.routeMsg(m)
}

func (l *Locality) newPutOp(pdone func()) uint64 {
	id := l.newOpID()
	l.w.latStart(id)
	l.mu.Lock()
	l.ops[id] = opState{pdone: pdone}
	l.mu.Unlock()
	return id
}

func (l *Locality) newGetOp(done func([]byte)) uint64 {
	id := l.newOpID()
	l.w.latStart(id)
	l.mu.Lock()
	l.ops[id] = opState{done: done}
	l.mu.Unlock()
	return id
}

func (l *Locality) completeOp(id uint64, data []byte) {
	l.mu.Lock()
	st, ok := l.ops[id]
	delete(l.ops, id)
	l.mu.Unlock()
	if !ok {
		if l.relLateCompletion() {
			return
		}
		l.w.fail("rank %d: completion for unknown op %d", l.rank, id)
	}
	l.w.latOpDone(id, st.pdone != nil)
	if st.done != nil {
		st.done(data)
	}
	if st.pdone != nil {
		st.pdone()
	}
}

// onDMA services one-sided traffic at the NIC: no host executor
// involvement. Residency was checked by the caller.
func (l *Locality) onDMA(m *netsim.Message) {
	b := m.Target.Block()
	blk, ok := l.store.Get(b)
	if !ok {
		l.w.fail("rank %d: DMA against missing block %d", l.rank, b)
	}
	if blk.Kind != gas.KindData {
		l.w.fail("rank %d: DMA against non-data block %d", l.rank, b)
	}
	if blk.Replica {
		// The NIC steered a read here because a replica lives on this
		// locality. Re-check freshness at transfer time (an invalidation
		// can land between the routing decision and the DMA): a stale
		// copy re-forwards the read to the master from NIC context — no
		// host detour, the re-route stays in the network.
		switch m.Kind {
		case kGetReq, kGetVec:
			if fresh, _ := l.replicaFresh(b); !fresh {
				l.Stats.ReplicaStaleReads.Inc()
				m.Hops++
				m.Dst = l.replicaMaster(b, m.Target.Home())
				l.w.net.nicSend(l.rank, m)
				return
			}
			l.Stats.ReplicaReads.Inc()
		default:
			l.w.fail("rank %d: DMA write to replica of block %d", l.rank, b)
		}
	}
	l.w.noteAccess(l.rank, m.Src, b, m.Kind == kGetReq || m.Kind == kGetVec)
	if !l.relAccept(m) {
		// Duplicate one-sided request: the first copy applied the effect
		// and its (retransmitted-until-acked) reply completes the op.
		l.recycle(m)
		return
	}
	switch m.Kind {
	case kPutReq:
		if err := l.store.WriteAt(b, m.Target.Offset(), m.Payload); err != nil {
			l.w.fail("rank %d: %v", l.rank, err)
		}
		l.releasePayload(m)
		l.replFanOut(b, true)
		l.putAck(m.Src, m.OpID, true)
	case kPutVec:
		l.applyPutVec(b, m)
		l.releasePayload(m)
		l.replFanOut(b, true)
		l.putAck(m.Src, m.OpID, true)
	case kGetReq:
		var data []byte
		pooled := false
		if m.PayloadPooled {
			buf, p := getWireBuf(int(m.N))
			data, pooled = buf[:m.N], p
		} else {
			data = make([]byte, m.N)
		}
		if err := l.store.ReadAt(b, m.Target.Offset(), data); err != nil {
			l.w.fail("rank %d: %v", l.rank, err)
		}
		rep := netsim.NewMessage()
		rep.Kind = kGetRep
		rep.Src = l.rank
		rep.Dst = m.Src
		rep.Wire = 32 + len(data)
		rep.Payload = data
		rep.PayloadPooled = pooled
		rep.OpID = m.OpID
		l.nicInject(rep)
	case kGetVec:
		data, pooled := l.buildGetVecReply(b, m)
		rep := netsim.NewMessage()
		rep.Kind = kGetRep
		rep.Src = l.rank
		rep.Dst = m.Src
		rep.Wire = 32 + len(data)
		rep.Payload = data
		rep.PayloadPooled = pooled
		rep.OpID = m.OpID
		l.releasePayload(m)
		l.nicInject(rep)
	default:
		l.w.fail("rank %d: DMA with kind %d", l.rank, m.Kind)
	}
	l.recycle(m)
}

// hostPut is the host-side put path: local fast path, migration queueing,
// and the software-managed fault repair.
func (l *Locality) hostPut(m *netsim.Message) {
	b := m.Target.Block()
	if l.queueIfMoving(b, m) {
		return
	}
	blk, ok := l.store.Get(b)
	if ok {
		if blk.Kind != gas.KindData {
			l.w.fail("rank %d: put to non-data block %d", l.rank, b)
		}
		if blk.Replica {
			// Writes never land on replicas: chase the master.
			l.routeToExplicit(m, l.replicaMaster(b, m.Target.Home()))
			return
		}
		if !l.relAccept(m) {
			l.recycle(m)
			return
		}
		l.w.noteAccess(l.rank, m.Src, b, false)
		l.exec.Charge(l.w.cfg.Model.CopyTime(len(m.Payload)))
		if err := l.store.WriteAt(b, m.Target.Offset(), m.Payload); err != nil {
			l.w.fail("rank %d: %v", l.rank, err)
		}
		opID, src := m.OpID, m.Src
		l.releasePayload(m)
		l.recycle(m)
		l.replFanOut(b, false)
		if src == l.rank {
			l.completeOp(opID, nil)
			return
		}
		l.putAck(src, opID, false)
		return
	}
	l.space.OnStaleDelivery(m, nil)
}

// hostGet mirrors hostPut for reads.
func (l *Locality) hostGet(m *netsim.Message) {
	b := m.Target.Block()
	if l.queueIfMoving(b, m) {
		return
	}
	blk, ok := l.store.Get(b)
	if ok {
		if blk.Kind != gas.KindData {
			l.w.fail("rank %d: get from non-data block %d", l.rank, b)
		}
		if blk.Replica {
			if fresh, _ := l.replicaFresh(b); !fresh {
				// Stale copy: the host re-routes the read to the master —
				// this correction is exactly the software cost the
				// NIC-routed design avoids (it re-checks freshness below
				// the host, see onDMA).
				l.Stats.ReplicaStaleReads.Inc()
				l.Stats.HostForwards.Inc()
				l.traceOp(TraceHostForward, b, uint64(l.replicaMaster(b, m.Target.Home())), m.OpID)
				l.routeToExplicit(m, l.replicaMaster(b, m.Target.Home()))
				return
			}
			l.Stats.ReplicaReads.Inc()
		}
		if !l.relAccept(m) {
			l.recycle(m)
			return
		}
		l.w.noteAccess(l.rank, m.Src, b, true)
		var data []byte
		pooled := false
		if m.PayloadPooled {
			buf, p := getWireBuf(int(m.N))
			data, pooled = buf[:m.N], p
		} else {
			data = make([]byte, m.N)
		}
		l.exec.Charge(l.w.cfg.Model.CopyTime(len(data)))
		if err := l.store.ReadAt(b, m.Target.Offset(), data); err != nil {
			l.w.fail("rank %d: %v", l.rank, err)
		}
		if m.Src == l.rank {
			opID := m.OpID
			l.recycle(m)
			// The completion copies out synchronously when pooled (that is
			// the pooled-reply contract), so the buffer goes straight back.
			l.completeOp(opID, data)
			if pooled {
				putWireBuf(data)
			}
			return
		}
		rep := netsim.NewMessage()
		rep.Kind = kGetRep
		rep.Src = l.rank
		rep.Dst = m.Src
		rep.Wire = 32 + len(data)
		rep.Payload = data
		rep.PayloadPooled = pooled
		rep.OpID = m.OpID
		l.recycle(m)
		l.inject(rep, rep.Dst)
		return
	}
	l.space.OnStaleDelivery(m, nil)
}
