package runtime

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

// The sharded-engine equivalence suite: the windowed parallel DES engine
// must be bit-for-bit indistinguishable across shard counts. shards=1 is
// the reference execution (one shard, same windowed scheduler, no
// parallelism), and every N > 1 must reproduce its golden counters,
// delivery report, and memory image exactly — the invariant ordering key
// makes the merge order independent of how ranks are partitioned.

func withShards(n int) func(*Config) {
	return func(c *Config) { c.Shards = n }
}

var shardCounts = []int{2, 4}

// TestShardedGoldenEquivalence runs the protocol-workout workload on the
// windowed engine at several shard counts and requires byte-identical
// golden counters across all of them, per mode.
func TestShardedGoldenEquivalence(t *testing.T) {
	for _, mode := range allModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			ref, _ := runEquivWorkload(t, mode, EngineDES, withShards(1))
			// The windowed engine changes event interleaving relative to the
			// classic engine, but this workload serializes every operation, so
			// even the classic goldens must hold.
			if ref != equivGolden[mode] {
				t.Errorf("shards=1 drifted from the classic goldens\n got: %v\nwant: %v", ref, equivGolden[mode])
			}
			for _, n := range shardCounts {
				got, _ := runEquivWorkload(t, mode, EngineDES, withShards(n))
				if got != ref {
					t.Errorf("shards=%d diverged from shards=1\n got: %v\nwant: %v", n, got, ref)
				}
			}
		})
	}
}

// TestShardedChaosEquivalence repeats the comparison on a faulty fabric:
// with seeded drops, duplicates, and reordering active, shard count
// still must not leak into anything observable — not even the repair
// traffic, since the per-NIC fault streams are forked from the plan seed
// independently of sharding.
func TestShardedChaosEquivalence(t *testing.T) {
	plan := chaosPlan(t)
	for _, mode := range allModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			ref, rw := runEquivWorkload(t, mode, EngineDES, withFaults(plan), withShards(1))
			refDel := fmt.Sprintf("%+v", rw.DeliveryStats())
			if rw.DeliveryStats().Faults.Dropped == 0 {
				t.Error("fault plan active but nothing dropped at shards=1")
			}
			for _, n := range shardCounts {
				got, gw := runEquivWorkload(t, mode, EngineDES, withFaults(plan), withShards(n))
				if got != ref {
					t.Errorf("shards=%d counters diverged under faults\n got: %v\nwant: %v", n, got, ref)
				}
				if gotDel := fmt.Sprintf("%+v", gw.DeliveryStats()); gotDel != refDel {
					t.Errorf("shards=%d delivery report diverged under faults\n got: %s\nwant: %s", n, gotDel, refDel)
				}
			}
		})
	}
}

// shardImage runs a migration-heavy workload and captures a full image:
// the protocol-state dump plus every block's bytes read back. Everything
// in it must be shard-count invariant.
func shardImage(t *testing.T, mode Mode, shards int) string {
	t.Helper()
	const ranks, nblocks = 6, 12
	w := testWorld(t, Config{Ranks: ranks, Mode: mode, Engine: EngineDES, Shards: shards})
	bump := w.Register("bump", func(c *Ctx) {
		data := c.Local(c.P.Target)
		v := parcel.U64(data, 0)
		copy(data, parcel.PutU64(nil, v+3))
		c.Continue(nil)
	})
	w.Start()
	lay, err := w.AllocCyclic(0, 64, nblocks)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		for d := uint32(0); d < nblocks; d++ {
			w.MustWait(w.Proc(r).Call(lay.BlockAt(d), bump, nil))
			if (int(d)+r)%3 == 0 {
				w.MustWait(w.Proc(r).Put(lay.BlockAt(d), []byte{byte(r), byte(d), 7, 7}))
			}
		}
	}
	if mode != PGAS {
		for d := uint32(0); d < nblocks; d += 2 {
			w.MustWait(w.Proc(int(d)%ranks).Migrate(lay.BlockAt(d), (int(d)+3)%ranks))
		}
		for r := 0; r < ranks; r++ {
			for d := uint32(0); d < nblocks; d++ {
				w.MustWait(w.Proc(r).Call(lay.BlockAt(d), bump, nil))
			}
		}
	}
	var img bytes.Buffer
	for d := uint32(0); d < nblocks; d++ {
		fmt.Fprintf(&img, "block %d: %x\n", d, w.MustWait(w.Proc(0).Get(lay.BlockAt(d), 16)))
	}
	if err := w.DumpState(&img); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&img, "stats: %v\n", func() equivCounters {
		s := w.Stats()
		return equivCounters{
			ParcelsSent: s.ParcelsSent, ParcelsRun: s.ParcelsRun, LocalRuns: s.LocalRuns,
			HostForwards: s.HostForwards, HostNacks: s.HostNacks, NICNacks: s.NICNacks,
			Queued: s.Queued, SWLookups: s.SWLookups,
			PutOps: s.PutOps, GetOps: s.GetOps, PutBytes: s.PutBytes, GetBytes: s.GetBytes,
			Migrations: s.Migrations,
		}
	}())
	w.Stop()
	return img.String()
}

// TestShardedMemoryImageEquivalence: block contents, residency layout,
// engine clock, and counters — the whole observable image — must be
// byte-identical across shard counts.
func TestShardedMemoryImageEquivalence(t *testing.T) {
	for _, mode := range allModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			ref := shardImage(t, mode, 1)
			for _, n := range shardCounts {
				if got := shardImage(t, mode, n); got != ref {
					t.Errorf("shards=%d image diverged from shards=1\n got:\n%s\nwant:\n%s", n, got, ref)
				}
			}
		})
	}
}

// shardKillRun drives the C2-style scheduled kill/restart pipeline on a
// sharded world and reports everything observable: membership stats,
// values read around the death window, and the final state dump.
func shardKillRun(t *testing.T, shards int) string {
	t.Helper()
	w := testWorld(t, Config{
		Ranks: 4, Mode: AGASNM, Engine: EngineDES, Shards: shards,
		Reliability: relStress,
		Faults: netsim.FaultPlan{
			KillAt:    map[int]netsim.VTime{1: 50_000},
			RestartAt: map[int]netsim.VTime{1: 60_000_000},
		},
	})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	var log bytes.Buffer
	w.MustWait(w.Proc(0).Put(g, []byte{1}))
	if err := w.ReplicateLive(lay, 2); err != nil {
		t.Fatal(err)
	}
	w.Engine().RunUntil(func() bool { return w.Now() >= 50_000 })
	w.MustWait(w.Proc(0).Put(g, []byte{2}))
	if !w.AwaitMember(1, MemberDead, 20*time.Second) {
		t.Fatalf("shards=%d: scheduled kill never confirmed: %+v", shards, w.MembershipStats())
	}
	fmt.Fprintf(&log, "after-death read: %v at %v\n", w.MustWait(w.Proc(2).Get(g, 1)), w.Now())
	if !w.AwaitMember(1, MemberAlive, 20*time.Second) {
		t.Fatalf("shards=%d: scheduled restart never rejoined: %+v", shards, w.MembershipStats())
	}
	fmt.Fprintf(&log, "reborn read: %v at %v\n", w.MustWait(w.Proc(1).Get(g, 1)), w.Now())
	ms := w.MembershipStats()
	fmt.Fprintf(&log, "membership: %+v\n", ms)
	if ms.Deaths != 1 || ms.Joins != 1 {
		t.Fatalf("shards=%d: deaths=%d joins=%d, want 1/1", shards, ms.Deaths, ms.Joins)
	}
	if err := w.DumpState(&log); err != nil {
		t.Fatal(err)
	}
	w.Stop()
	return log.String()
}

// TestShardedKillRestartEquivalence: the crash-recovery pipeline — kill,
// suspicion, death, replica promotion, rebirth — runs through barrier
// tasks under sharding and must replay identically at every shard count,
// down to the virtual times at which the probe reads land.
func TestShardedKillRestartEquivalence(t *testing.T) {
	ref := shardKillRun(t, 1)
	for _, n := range shardCounts {
		if got := shardKillRun(t, n); got != ref {
			t.Errorf("shards=%d kill/restart run diverged from shards=1\n got:\n%s\nwant:\n%s", n, got, ref)
		}
	}
}

// TestShardsConfigValidation pins Config.Shards normalization: negative
// rejected, larger-than-ranks clamped, EngineGo unaffected.
func TestShardsConfigValidation(t *testing.T) {
	if _, err := NewWorld(Config{Ranks: 2, Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
	w, err := NewWorld(Config{Ranks: 2, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if w.Config().Shards != 2 {
		t.Errorf("Shards not clamped to ranks: %d", w.Config().Shards)
	}
	if par := w.Engine().Par(); par == nil || par.Shards() != 2 {
		t.Error("sharded world did not get a sharded engine")
	}
	w.Stop()
}
