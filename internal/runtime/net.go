package runtime

import (
	"sync"
	"time"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/nmagas"
)

// network abstracts how a locality's messages reach other localities, so
// the protocol code is identical on the DES fabric and the goroutine
// transport.
type network interface {
	// send injects m from rank from's host (injection overheads already
	// charged by the caller).
	send(from int, m *netsim.Message)
	// nicSend injects from NIC context (DMA completions) with no host
	// involvement.
	nicSend(from int, m *netsim.Message)
	// installRoute records authoritative owner knowledge at rank's NIC.
	installRoute(rank int, b gas.BlockID, owner int)
	// updateTable updates rank's NIC translation cache.
	updateTable(rank int, b gas.BlockID, owner int)
	// clearResident removes NIC state claiming b lives elsewhere, at the
	// locality where b just became resident.
	clearResident(rank int, b gas.BlockID)
	// route returns rank's NIC's *authoritative* knowledge for b (home
	// mirror entry or tombstone; never the evictable table). The host
	// uses it to rescue messages that were delivered just before a
	// migration completed.
	route(rank int, b gas.BlockID) (int, bool)
	// commitAtHome installs the post-migration authoritative route at
	// b's home, honoring the configured update-propagation policy.
	commitAtHome(home int, b gas.BlockID, owner int)
	// installReadRoute steers rank's read traffic for b to the replica
	// at target (replication install).
	installReadRoute(rank int, b gas.BlockID, target int)
	// dropReadRoute removes rank's read steering for b.
	dropReadRoute(rank int, b gas.BlockID)
	// dropAll removes all translation state for b everywhere (free).
	dropAll(b gas.BlockID)
	// tableLen reports rank's evictable NIC-table size (metrics).
	tableLen(rank int) int
}

// desNet adapts the simulated fabric.
type desNet struct {
	w *World
}

func (n *desNet) send(from int, m *netsim.Message)    { n.w.fab.NIC(from).Send(m) }
func (n *desNet) nicSend(from int, m *netsim.Message) { n.w.fab.NIC(from).Send(m) }

func (n *desNet) installRoute(rank int, b gas.BlockID, owner int) {
	n.w.fab.NIC(rank).InstallRoute(b, owner)
}

func (n *desNet) updateTable(rank int, b gas.BlockID, owner int) {
	n.w.fab.NIC(rank).Table.Update(b, owner)
}

func (n *desNet) clearResident(rank int, b gas.BlockID) {
	if n.w.mirror != nil {
		n.w.mirror.ClearResident(rank, b)
	}
}

func (n *desNet) route(rank int, b gas.BlockID) (int, bool) {
	return n.w.fab.NIC(rank).Route(b)
}

func (n *desNet) commitAtHome(home int, b gas.BlockID, owner int) {
	if n.w.mirror != nil {
		n.w.mirror.CommitAtHome(home, b, owner)
	}
}

func (n *desNet) installReadRoute(rank int, b gas.BlockID, target int) {
	n.w.fab.NIC(rank).InstallReadRoute(b, target)
}

func (n *desNet) dropReadRoute(rank int, b gas.BlockID) {
	n.w.fab.NIC(rank).DropReadRoute(b)
}

func (n *desNet) dropAll(b gas.BlockID) {
	if n.w.mirror != nil {
		n.w.mirror.Drop(b)
	}
}

func (n *desNet) tableLen(rank int) int {
	if t := n.w.fab.NIC(rank).Table; t != nil {
		return t.Len()
	}
	return 0
}

// chanNet is the goroutine-engine transport: messages hop between
// locality actors directly, and the per-rank nicState tables play the
// role of the NIC translation state, guarded by locks instead of the
// event loop.
type chanNet struct {
	w     *World
	nics  []*goNICState
	execs []*goExec // per-rank actors, for typed (closure-free) delivery
}

// nicShards is the shard count for an unbounded translation table. A
// bounded table (NICTableCap > 0) collapses to one shard so the LRU
// capacity stays a single global budget, exactly as on the DES NIC.
const nicShards = 8

// goNICState shards the per-rank translation state by block so
// concurrent senders resolving different blocks stop serializing on one
// mutex. Each shard is an RWMutex: translation lookups on an unbounded
// table are pure reads (Peek) and proceed in parallel; only route
// installs, table updates, and bounded-LRU lookups (which must touch
// recency) take the write lock.
type goNICState struct {
	shards  []nicShard
	mask    uint64
	bounded bool // capacity-limited table: lookups must maintain LRU order
}

type nicShard struct {
	mu     sync.RWMutex
	table  *netsim.TransTable
	routes map[gas.BlockID]int
	// readRoutes steers read traffic for replicated blocks to a nearby
	// holder (the goroutine-engine mirror of netsim.NIC.readRoutes).
	readRoutes map[gas.BlockID]int
}

func newGoNICState(tableCap int) *goNICState {
	n := nicShards
	if tableCap > 0 {
		n = 1
	}
	st := &goNICState{
		shards:  make([]nicShard, n),
		mask:    uint64(n - 1),
		bounded: tableCap > 0,
	}
	for i := range st.shards {
		st.shards[i].table = netsim.NewTransTable(tableCap)
		st.shards[i].routes = make(map[gas.BlockID]int)
		st.shards[i].readRoutes = make(map[gas.BlockID]int)
	}
	return st
}

func (n *goNICState) shard(b gas.BlockID) *nicShard {
	return &n.shards[uint64(b)&n.mask]
}

func (n *goNICState) lookup(b gas.BlockID) (int, bool) {
	s := n.shard(b)
	if n.bounded {
		// Lookup maintains LRU recency, so it needs the write lock.
		s.mu.Lock()
		defer s.mu.Unlock()
		if o, ok := s.table.Lookup(b); ok {
			return o, true
		}
		o, ok := s.routes[b]
		return o, ok
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if o, ok := s.table.Peek(b); ok {
		return o, true
	}
	o, ok := s.routes[b]
	return o, ok
}

func (n *goNICState) readRoute(b gas.BlockID) (int, bool) {
	s := n.shard(b)
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.readRoutes[b]
	return o, ok
}

func (n *goNICState) route(b gas.BlockID) (int, bool) {
	s := n.shard(b)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if o, ok := s.routes[b]; ok {
		return o, true
	}
	return s.table.Peek(b)
}

func (n *goNICState) updateTable(b gas.BlockID, owner int) {
	s := n.shard(b)
	s.mu.Lock()
	s.table.Update(b, owner)
	s.mu.Unlock()
}

// maybeLoseEntry applies the soft-error fault model to the shard the
// arriving block hashes to.
func (n *goNICState) maybeLoseEntry(b gas.BlockID, fi *netsim.FaultInjector) {
	s := n.shard(b)
	s.mu.Lock()
	fi.MaybeLoseEntry(s.table)
	s.mu.Unlock()
}

// peekTable reads the evictable table without touching recency (tests).
func (n *goNICState) peekTable(b gas.BlockID) (int, bool) {
	s := n.shard(b)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.table.Peek(b)
}

// bumpEpoch raises every shard's trusted membership epoch, fencing
// cached entries installed under older ones (the goroutine-engine
// mirror of Fabric.BumpEpoch).
func (n *goNICState) bumpEpoch(epoch uint64) {
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.Lock()
		s.table.BumpEpoch(epoch)
		s.mu.Unlock()
	}
}

// reset wipes every shard's translation state (Join: the reborn NIC
// starts empty).
func (n *goNICState) reset() {
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.Lock()
		s.table.Reset()
		s.routes = make(map[gas.BlockID]int)
		s.readRoutes = make(map[gas.BlockID]int)
		s.mu.Unlock()
	}
}

// tableLen sums evictable entries across shards (tests).
func (n *goNICState) tableLen() int {
	total := 0
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.RLock()
		total += s.table.Len()
		s.mu.RUnlock()
	}
	return total
}

func newChanNet(w *World) *chanNet {
	n := &chanNet{w: w}
	for r := 0; r < w.cfg.Ranks; r++ {
		n.nics = append(n.nics, newGoNICState(w.cfg.NICTableCap))
	}
	for _, l := range w.locs {
		l := l
		ex := l.exec.(*goExec)
		ex.onMsg = func(m *netsim.Message) { n.arrive(l, m) }
		ex.onLocal = l.onHostMsg
		if l.coalesceAcks() {
			ex.onDrain = l.flushAcks
		}
		n.execs = append(n.execs, ex)
	}
	return n
}

func (c *chanNet) send(from int, m *netsim.Message) {
	if m.Dst == netsim.ByGVA {
		if !c.w.caps.NICTranslation {
			c.w.fail("chanNet: ByGVA send under address space %q", c.w.caps.Name)
		}
		if m.Read && c.w.replCount.Load() != 0 {
			// Replicated blocks steer reads to a nearby holder.
			if t, ok := c.nics[from].readRoute(m.Block); ok {
				m.Dst = t
			}
		}
		if m.Dst == netsim.ByGVA {
			if o, ok := c.nics[from].lookup(m.Block); ok {
				m.Dst = o
			} else {
				m.Dst = m.Target.Home()
			}
		}
	}
	if m.Dst < 0 || m.Dst >= len(c.nics) {
		c.w.fail("chanNet: send to bad rank %d", m.Dst)
	}
	if mem := c.w.mem; mem.active() {
		// Whole-node liveness fencing, mirroring netsim.NIC.transmit.
		if mem.Down(from) {
			// Outbound fence: a crashed locality transmits nothing.
			mem.downDrops.Add(1)
			return
		}
		if m.Dst != from && mem.Down(m.Dst) {
			if owner, ok := mem.Rehome(m.Block); ok && !mem.Down(owner) && m.Ctl == netsim.CtlNone {
				// The block already recovered onto a survivor: redirect in
				// flight instead of bouncing to the sender.
				m.Dst = owner
			} else if hint, dead := mem.DeadHint(m.Dst); dead && m.Ctl == netsim.CtlNone && !m.Target.IsNull() {
				// Declared dead: NACK back with a hint — the live home
				// (whose directory re-resolves authoritatively) when it is
				// not the corpse, else the surrogate.
				if h := m.Target.Home(); h != m.Dst && !mem.Down(h) {
					hint = h
				}
				mem.deadNacks.Add(1)
				nk := netsim.NewMessage()
				nk.Ctl = netsim.CtlNackLoop
				nk.Src = from
				nk.Dst = m.Src
				nk.Block = m.Block
				nk.Owner = hint
				nk.Wire = 32
				nk.Nacked = m
				c.deliver(nk, 0)
				return
			} else {
				// Down but not yet declared (or rank-addressed control
				// traffic with nowhere to bounce): silent loss is the
				// suspicion signal.
				mem.downDrops.Add(1)
				return
			}
		}
	}
	if fi := c.w.faults; fi != nil {
		act := fi.Decide(m)
		if act.Drop {
			return
		}
		if act.Duplicate {
			// Clone: both copies cross independent receive paths that
			// mutate hop counts and tables. Each copy is independently
			// owned and independently recycled.
			cp := netsim.NewMessage()
			*cp = *m
			c.deliver(cp, act.DupDelay)
		}
		c.deliver(m, act.Delay)
		return
	}
	c.deliver(m, 0)
}

// deliver hands m to the destination actor's typed mailbox — no
// capturing closure on the zero-delay fast path. Fault-injected delays
// are simulated nanoseconds; goWall converts them to wall clock through
// the Config.GoTimeScale knob (the goroutine transport has no simulated
// clock; a scaled wall-clock hold is enough to reorder the message past
// later traffic).
func (c *chanNet) deliver(m *netsim.Message, delay netsim.VTime) {
	ex := c.execs[m.Dst]
	if delay > 0 {
		time.AfterFunc(c.w.goWall(delay), func() { ex.execMsg(m) })
		return
	}
	ex.execMsg(m)
}

func (c *chanNet) nicSend(from int, m *netsim.Message) { c.send(from, m) }

// arrive mirrors netsim.NIC.receive for the goroutine engine: it runs on
// the destination actor and applies the same routing decisions.
func (c *chanNet) arrive(l *Locality, m *netsim.Message) {
	st := c.nics[l.rank]
	if mem := c.w.mem; mem.active() && mem.Down(l.rank) {
		// Inbound fence: a crashed locality receives nothing. The message
		// is left to the collector (single-owner recycling must not race
		// a concurrent duplicate).
		mem.downDrops.Add(1)
		return
	}
	switch m.Ctl {
	case netsim.CtlTableUpdate:
		if mem := c.w.mem; mem.active() && m.Epoch < mem.Epoch() {
			// A control push from before the last membership change: the
			// table no longer trusts that epoch.
			mem.staleEpochDrops.Add(1)
			m.Release()
			return
		}
		st.updateTable(m.Block, m.Owner)
		m.Release() // consumed by the NIC; never reaches the host
		return
	case netsim.CtlNack, netsim.CtlNackLoop:
		l.onHostMsg(m)
		return
	}
	if fi := c.w.faults; fi != nil && c.w.caps.NICTranslation {
		// Soft-error model, mirroring netsim.NIC.receive: arrivals may
		// scribble over one evictable translation entry.
		st.maybeLoseEntry(m.Block, fi)
	}
	if m.Scatter && m.RelSeq == 0 && c.w.caps.NICTranslation {
		c.scatterBatch(l, st, m)
		return
	}
	if m.Target.IsNull() {
		l.onHostMsg(m)
		return
	}
	resident := l.residentForNIC(m.Block)
	if !resident && m.Read && l.residentForRead(m.Block) {
		// A fresh read replica lives here: serve the read in place.
		resident = true
	}
	if resident {
		if m.DMA {
			l.onDMA(m)
			return
		}
		l.onHostMsg(m)
		return
	}
	if !c.w.caps.NICTranslation {
		// Dumb NIC: the host sorts it out (queueing, forwarding,
		// faulting).
		l.onHostMsg(m)
		return
	}
	c.misroute(l, st, m)
}

// scatterBatch is the goroutine-engine NIC scatter engine, mirroring
// netsim.NIC.scatterBatch: a coalesced batch carrying per-parcel GVA
// sub-headers is split against this rank's translation state. Records
// whose blocks are resident reach the host in one up-call; the rest are
// regrouped by owner and forwarded in-network, never touching the host.
// A batch whose records are all resident is delivered unsplit — the
// common case costs no copy at all.
func (c *chanNet) scatterBatch(l *Locality, st *goNICState, m *netsim.Message) {
	allResident := true
	for r := netsim.NewScatterReader(m.Payload); ; {
		g, _, ok := r.Next()
		if !ok {
			break
		}
		if !l.residentForNIC(g.Block()) {
			allResident = false
			break
		}
	}
	if allResident {
		l.onHostMsg(m)
		return
	}
	l.Stats.ScatterSplits.Inc()
	hopsLeft := m.Hops < c.w.cfg.Policy.HopCap()
	var local []byte
	var groups map[int][]byte
	for r := netsim.NewScatterReader(m.Payload); ; {
		g, enc, ok := r.Next()
		if !ok {
			break
		}
		b := g.Block()
		if l.residentForNIC(b) {
			local = netsim.AppendScatterRecord(local, enc)
			continue
		}
		owner, known := st.route(b)
		if !known {
			owner = g.Home()
		}
		if owner == l.rank || !hopsLeft {
			// Mid-migration here, or the hop budget is spent: the host's
			// unbundler queues or re-routes this record in software.
			local = netsim.AppendScatterRecord(local, enc)
			continue
		}
		if groups == nil {
			groups = make(map[int][]byte)
		}
		groups[owner] = netsim.AppendScatterRecord(groups[owner], enc)
	}
	for owner, payload := range groups {
		l.Stats.ScatterForwards.Inc()
		fwd := netsim.NewMessage()
		fwd.Kind = m.Kind
		fwd.Src = m.Src
		fwd.Dst = owner
		fwd.Target = m.Target
		fwd.Block = m.Block
		fwd.Scatter = true
		fwd.Payload = payload
		fwd.Wire = 32 + len(payload)
		fwd.Hops = m.Hops + 1
		c.send(l.rank, fwd)
	}
	if local != nil {
		m.Payload = local
		m.Wire = 32 + len(local)
		l.onHostMsg(m)
		return
	}
	// Every record moved on; the arrived envelope is spent.
	m.Release()
}

func (c *chanNet) misroute(l *Locality, st *goNICState, m *netsim.Message) {
	if m.Read {
		if t, ok := st.readRoute(m.Block); ok && t != l.rank && m.Hops < c.w.cfg.Policy.HopCap() {
			// We cannot serve this read but know a replica holder:
			// forward the read there instead of chasing the owner.
			fwd := netsim.NewMessage()
			*fwd = *m
			fwd.Dst = t
			fwd.Hops = m.Hops + 1
			m.Release()
			c.send(l.rank, fwd)
			return
		}
	}
	owner, known := st.route(m.Block)
	if !known {
		if l.rank == m.Target.Home() {
			l.onHostMsg(m)
			return
		}
		owner = m.Target.Home()
	}
	if owner == l.rank {
		// Mid-migration: the host queues.
		l.onHostMsg(m)
		return
	}
	if mem := c.w.mem; mem.active() && mem.Down(owner) {
		// Best knowledge routes to a downed rank: redirect through the
		// recovery overlay, or terminate a confirmed-dead route at this
		// live host's stale-delivery path (mirroring netsim.NIC.misroute).
		if no, ok := mem.Rehome(m.Block); ok && !mem.Down(no) && no != l.rank {
			owner = no
		} else if mem.declaredDead(owner) {
			l.onHostMsg(m)
			return
		}
	}
	pol := c.w.cfg.Policy
	if !pol.ForwardInNetwork {
		nk := netsim.NewMessage()
		nk.Ctl = netsim.CtlNack
		nk.Src = l.rank
		nk.Dst = m.Src
		nk.Block = m.Block
		nk.Owner = owner
		nk.Wire = 32
		nk.Nacked = m // ownership of m transfers to the NACK
		c.send(l.rank, nk)
		return
	}
	m.Hops++
	if m.Hops > pol.HopCap() {
		// Hop budget exhausted: bounded fallback instead of the old hard
		// failure — NACK to the sender with the home as owner hint, which
		// counts bounces and eventually abandons (see onNICNack).
		nk := netsim.NewMessage()
		nk.Ctl = netsim.CtlNackLoop
		nk.Src = l.rank
		nk.Dst = m.Src
		nk.Block = m.Block
		nk.Owner = m.Target.Home()
		nk.Wire = 32
		nk.Nacked = m
		c.send(l.rank, nk)
		return
	}
	if pol.PushUpdates && m.Src != l.rank {
		c.nics[m.Src].updateTable(m.Block, owner)
	}
	l.traceOp(TraceNICForward, m.Block, uint64(int64(owner)), m.OpID)
	// Forward a fresh copy and recycle the arrived one: the forwarded
	// message is the sole owner from here on.
	fwd := netsim.NewMessage()
	*fwd = *m
	fwd.Dst = owner
	m.Release()
	c.send(l.rank, fwd)
}

func (c *chanNet) installRoute(rank int, b gas.BlockID, owner int) {
	s := c.nics[rank].shard(b)
	s.mu.Lock()
	s.routes[b] = owner
	s.mu.Unlock()
}

func (c *chanNet) updateTable(rank int, b gas.BlockID, owner int) {
	c.nics[rank].updateTable(b, owner)
}

func (c *chanNet) clearResident(rank int, b gas.BlockID) {
	s := c.nics[rank].shard(b)
	s.mu.Lock()
	delete(s.routes, b)
	delete(s.readRoutes, b)
	s.table.Invalidate(b)
	s.mu.Unlock()
}

func (c *chanNet) installReadRoute(rank int, b gas.BlockID, target int) {
	s := c.nics[rank].shard(b)
	s.mu.Lock()
	s.readRoutes[b] = target
	s.mu.Unlock()
}

func (c *chanNet) dropReadRoute(rank int, b gas.BlockID) {
	s := c.nics[rank].shard(b)
	s.mu.Lock()
	delete(s.readRoutes, b)
	s.mu.Unlock()
}

func (c *chanNet) route(rank int, b gas.BlockID) (int, bool) {
	s := c.nics[rank].shard(b)
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.routes[b]
	return o, ok
}

func (c *chanNet) commitAtHome(home int, b gas.BlockID, owner int) {
	c.installRoute(home, b, owner)
	if c.w.cfg.NMUpdate == nmagas.UpdateBroadcast {
		for r := range c.nics {
			if r != home {
				c.updateTable(r, b, owner)
			}
		}
	}
}

func (c *chanNet) dropAll(b gas.BlockID) {
	for _, st := range c.nics {
		s := st.shard(b)
		s.mu.Lock()
		delete(s.routes, b)
		delete(s.readRoutes, b)
		s.table.Invalidate(b)
		s.mu.Unlock()
	}
}

func (c *chanNet) tableLen(rank int) int { return c.nics[rank].tableLen() }
