package runtime

import (
	"sync"
	"time"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/nmagas"
)

// network abstracts how a locality's messages reach other localities, so
// the protocol code is identical on the DES fabric and the goroutine
// transport.
type network interface {
	// send injects m from rank from's host (injection overheads already
	// charged by the caller).
	send(from int, m *netsim.Message)
	// nicSend injects from NIC context (DMA completions) with no host
	// involvement.
	nicSend(from int, m *netsim.Message)
	// installRoute records authoritative owner knowledge at rank's NIC.
	installRoute(rank int, b gas.BlockID, owner int)
	// updateTable updates rank's NIC translation cache.
	updateTable(rank int, b gas.BlockID, owner int)
	// clearResident removes NIC state claiming b lives elsewhere, at the
	// locality where b just became resident.
	clearResident(rank int, b gas.BlockID)
	// route returns rank's NIC's *authoritative* knowledge for b (home
	// mirror entry or tombstone; never the evictable table). The host
	// uses it to rescue messages that were delivered just before a
	// migration completed.
	route(rank int, b gas.BlockID) (int, bool)
	// commitAtHome installs the post-migration authoritative route at
	// b's home, honoring the configured update-propagation policy.
	commitAtHome(home int, b gas.BlockID, owner int)
	// dropAll removes all translation state for b everywhere (free).
	dropAll(b gas.BlockID)
}

// desNet adapts the simulated fabric.
type desNet struct {
	w *World
}

func (n *desNet) send(from int, m *netsim.Message)    { n.w.fab.NIC(from).Send(m) }
func (n *desNet) nicSend(from int, m *netsim.Message) { n.w.fab.NIC(from).Send(m) }

func (n *desNet) installRoute(rank int, b gas.BlockID, owner int) {
	n.w.fab.NIC(rank).InstallRoute(b, owner)
}

func (n *desNet) updateTable(rank int, b gas.BlockID, owner int) {
	n.w.fab.NIC(rank).Table.Update(b, owner)
}

func (n *desNet) clearResident(rank int, b gas.BlockID) {
	if n.w.mirror != nil {
		n.w.mirror.ClearResident(rank, b)
	}
}

func (n *desNet) route(rank int, b gas.BlockID) (int, bool) {
	return n.w.fab.NIC(rank).Route(b)
}

func (n *desNet) commitAtHome(home int, b gas.BlockID, owner int) {
	if n.w.mirror != nil {
		n.w.mirror.CommitAtHome(home, b, owner)
	}
}

func (n *desNet) dropAll(b gas.BlockID) {
	if n.w.mirror != nil {
		n.w.mirror.Drop(b)
	}
}

// chanNet is the goroutine-engine transport: messages hop between
// locality actors directly, and the per-rank nicState tables play the
// role of the NIC translation state, guarded by locks instead of the
// event loop.
type chanNet struct {
	w    *World
	nics []*goNICState
}

type goNICState struct {
	mu     sync.Mutex
	table  *netsim.TransTable
	routes map[gas.BlockID]int
}

func newChanNet(w *World) *chanNet {
	n := &chanNet{w: w}
	for r := 0; r < w.cfg.Ranks; r++ {
		n.nics = append(n.nics, &goNICState{
			table:  netsim.NewTransTable(w.cfg.NICTableCap),
			routes: make(map[gas.BlockID]int),
		})
	}
	return n
}

func (n *goNICState) lookup(b gas.BlockID) (int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if o, ok := n.table.Lookup(b); ok {
		return o, true
	}
	o, ok := n.routes[b]
	return o, ok
}

func (n *goNICState) route(b gas.BlockID) (int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if o, ok := n.routes[b]; ok {
		return o, true
	}
	return n.table.Peek(b)
}

func (c *chanNet) send(from int, m *netsim.Message) {
	if m.Dst == netsim.ByGVA {
		if !c.w.caps.NICTranslation {
			c.w.fail("chanNet: ByGVA send under address space %q", c.w.caps.Name)
		}
		if o, ok := c.nics[from].lookup(m.Block); ok {
			m.Dst = o
		} else {
			m.Dst = m.Target.Home()
		}
	}
	if m.Dst < 0 || m.Dst >= len(c.nics) {
		c.w.fail("chanNet: send to bad rank %d", m.Dst)
	}
	if fi := c.w.faults; fi != nil {
		act := fi.Decide(m)
		if act.Drop {
			return
		}
		if act.Duplicate {
			// Clone: both copies cross independent receive paths that
			// mutate hop counts and tables.
			cp := *m
			c.deliver(&cp, act.DupDelay)
		}
		c.deliver(m, act.Delay)
		return
	}
	c.deliver(m, 0)
}

// deliver hands m to the destination actor, optionally after a real-time
// delay (the goroutine transport has no simulated clock; a wall-clock
// hold is enough to reorder the message past later traffic).
func (c *chanNet) deliver(m *netsim.Message, delay netsim.VTime) {
	dst := c.w.locs[m.Dst]
	if delay > 0 {
		time.AfterFunc(time.Duration(delay), func() {
			dst.exec.Exec(0, func() { c.arrive(dst, m) })
		})
		return
	}
	dst.exec.Exec(0, func() { c.arrive(dst, m) })
}

func (c *chanNet) nicSend(from int, m *netsim.Message) { c.send(from, m) }

// arrive mirrors netsim.NIC.receive for the goroutine engine: it runs on
// the destination actor and applies the same routing decisions.
func (c *chanNet) arrive(l *Locality, m *netsim.Message) {
	st := c.nics[l.rank]
	switch m.Ctl {
	case netsim.CtlTableUpdate:
		st.mu.Lock()
		st.table.Update(m.Block, m.Owner)
		st.mu.Unlock()
		return
	case netsim.CtlNack, netsim.CtlNackLoop:
		l.onHostMsg(m)
		return
	}
	if fi := c.w.faults; fi != nil && c.w.caps.NICTranslation {
		// Soft-error model, mirroring netsim.NIC.receive: arrivals may
		// scribble over one evictable translation entry.
		st.mu.Lock()
		fi.MaybeLoseEntry(st.table)
		st.mu.Unlock()
	}
	if m.Target.IsNull() {
		l.onHostMsg(m)
		return
	}
	resident := l.residentForNIC(m.Block)
	if resident {
		if m.DMA {
			l.onDMA(m)
			return
		}
		l.onHostMsg(m)
		return
	}
	if !c.w.caps.NICTranslation {
		// Dumb NIC: the host sorts it out (queueing, forwarding,
		// faulting).
		l.onHostMsg(m)
		return
	}
	c.misroute(l, st, m)
}

func (c *chanNet) misroute(l *Locality, st *goNICState, m *netsim.Message) {
	owner, known := st.route(m.Block)
	if !known {
		if l.rank == m.Target.Home() {
			l.onHostMsg(m)
			return
		}
		owner = m.Target.Home()
	}
	if owner == l.rank {
		// Mid-migration: the host queues.
		l.onHostMsg(m)
		return
	}
	pol := c.w.cfg.Policy
	if !pol.ForwardInNetwork {
		nk := &netsim.Message{
			Ctl:    netsim.CtlNack,
			Src:    l.rank,
			Dst:    m.Src,
			Block:  m.Block,
			Owner:  owner,
			Wire:   32,
			Nacked: m,
		}
		c.send(l.rank, nk)
		return
	}
	m.Hops++
	if m.Hops > pol.HopCap() {
		// Hop budget exhausted: bounded fallback instead of the old hard
		// failure — NACK to the sender with the home as owner hint, which
		// counts bounces and eventually abandons (see onNICNack).
		nk := &netsim.Message{
			Ctl:    netsim.CtlNackLoop,
			Src:    l.rank,
			Dst:    m.Src,
			Block:  m.Block,
			Owner:  m.Target.Home(),
			Wire:   32,
			Nacked: m,
		}
		c.send(l.rank, nk)
		return
	}
	if pol.PushUpdates && m.Src != l.rank {
		src := c.nics[m.Src]
		src.mu.Lock()
		src.table.Update(m.Block, owner)
		src.mu.Unlock()
	}
	fwd := *m
	fwd.Dst = owner
	c.send(l.rank, &fwd)
}

func (c *chanNet) installRoute(rank int, b gas.BlockID, owner int) {
	st := c.nics[rank]
	st.mu.Lock()
	st.routes[b] = owner
	st.mu.Unlock()
}

func (c *chanNet) updateTable(rank int, b gas.BlockID, owner int) {
	st := c.nics[rank]
	st.mu.Lock()
	st.table.Update(b, owner)
	st.mu.Unlock()
}

func (c *chanNet) clearResident(rank int, b gas.BlockID) {
	st := c.nics[rank]
	st.mu.Lock()
	delete(st.routes, b)
	st.table.Invalidate(b)
	st.mu.Unlock()
}

func (c *chanNet) route(rank int, b gas.BlockID) (int, bool) {
	st := c.nics[rank]
	st.mu.Lock()
	defer st.mu.Unlock()
	o, ok := st.routes[b]
	return o, ok
}

func (c *chanNet) commitAtHome(home int, b gas.BlockID, owner int) {
	c.installRoute(home, b, owner)
	if c.w.cfg.NMUpdate == nmagas.UpdateBroadcast {
		for r := range c.nics {
			if r != home {
				c.updateTable(r, b, owner)
			}
		}
	}
}

func (c *chanNet) dropAll(b gas.BlockID) {
	for _, st := range c.nics {
		st.mu.Lock()
		delete(st.routes, b)
		st.table.Invalidate(b)
		st.mu.Unlock()
	}
}
