package runtime

import (
	"testing"

	"nmvgas/internal/agas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

// These tests pin down the behavioural differences between the three
// address-space designs — the properties the paper's evaluation turns on.

func TestNMStaleTrafficForwardsInNetworkThenGoesDirect(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1) // home 1
	w.MustWait(w.Proc(0).Migrate(g, 3))

	forwardsBefore := w.Fabric().TotalStats().Forwards
	w.MustWait(w.Proc(2).Call(g, echo, nil))
	afterFirst := w.Fabric().TotalStats().Forwards
	if afterFirst <= forwardsBefore {
		t.Fatal("first post-migration send did not forward in-network")
	}
	// The forwarding NIC pushed an update; the second send goes direct.
	w.MustWait(w.Proc(2).Call(g, echo, nil))
	if w.Fabric().TotalStats().Forwards != afterFirst {
		t.Fatal("second send still bounced (pushed update was lost)")
	}
	// And crucially: no host at the old owner or home was involved in
	// forwarding.
	if w.Locality(1).Stats.HostForwards.Load() != 0 {
		t.Fatal("home host forwarded in NM mode")
	}
}

func TestNMNoPushUpdatesKeepsForwarding(t *testing.T) {
	w := testWorld(t, Config{
		Ranks: 4, Mode: AGASNM, Engine: EngineDES,
		Policy: netsim.Policy{ForwardInNetwork: true, PushUpdates: false}, PolicySet: true,
	})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	w.MustWait(w.Proc(0).Migrate(g, 3))
	base := w.Fabric().TotalStats().Forwards
	for i := 0; i < 3; i++ {
		w.MustWait(w.Proc(2).Call(g, echo, nil))
	}
	if got := w.Fabric().TotalStats().Forwards - base; got < 3 {
		t.Fatalf("forwards = %d, want >= 3 without pushed updates", got)
	}
}

func TestNMNackAblation(t *testing.T) {
	w := testWorld(t, Config{
		Ranks: 4, Mode: AGASNM, Engine: EngineDES,
		Policy: netsim.Policy{ForwardInNetwork: false, PushUpdates: false}, PolicySet: true,
	})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	w.MustWait(w.Proc(0).Migrate(g, 3))
	w.MustWait(w.Proc(2).Call(g, echo, nil))
	if w.Fabric().TotalStats().Nacks == 0 {
		t.Fatal("no NACKs under the NACK policy")
	}
	if w.Locality(2).Stats.NICNacks.Load() == 0 {
		t.Fatal("source host never processed a NACK")
	}
	// The host repaired its NIC table; the next send completes without
	// another NACK.
	base := w.Fabric().TotalStats().Nacks
	w.MustWait(w.Proc(2).Call(g, echo, nil))
	if w.Fabric().TotalStats().Nacks != base {
		t.Fatal("second send NACKed again despite table repair")
	}
}

func TestSWStaleParcelHostForwardsAndTeachesSource(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASSW, Engine: EngineDES})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	w.MustWait(w.Proc(0).Migrate(g, 3))

	// Rank 2 has no cache entry: the parcel goes to home 1, whose HOST
	// forwards and pushes an owner update back.
	w.MustWait(w.Proc(2).Call(g, echo, nil))
	if w.Locality(1).Stats.HostForwards.Load() == 0 {
		t.Fatal("home host did not forward")
	}
	if o, ok := w.Locality(2).Cache().Lookup(g.Block()); !ok || o != 3 {
		t.Fatalf("source cache not taught: %d,%v", o, ok)
	}
	base := w.Locality(1).Stats.HostForwards.Load()
	w.MustWait(w.Proc(2).Call(g, echo, nil))
	if w.Locality(1).Stats.HostForwards.Load() != base {
		t.Fatal("second send still host-forwarded")
	}
}

func TestSWStaleOneSidedOpHostNacks(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASSW, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	w.MustWait(w.Proc(0).Migrate(g, 3))
	w.MustWait(w.Proc(2).Put(g, []byte{7}))
	if w.Locality(1).Stats.HostNacks.Load() == 0 {
		t.Fatal("stale one-sided op did not take the host NACK path")
	}
	got := w.MustWait(w.Proc(2).Get(g, 1))
	if got[0] != 7 {
		t.Fatal("data wrong after repaired put")
	}
	// Repaired cache: the next op goes direct.
	base := w.Locality(1).Stats.HostNacks.Load()
	w.MustWait(w.Proc(2).Put(g, []byte{8}))
	if w.Locality(1).Stats.HostNacks.Load() != base {
		t.Fatal("second op NACKed again")
	}
}

func TestSWInvalidatePolicyRelearnsViaHome(t *testing.T) {
	w := testWorld(t, Config{
		Ranks: 4, Mode: AGASSW, Engine: EngineDES,
		SWCorrection: agas.CorrectionInvalidate,
	})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	// Teach rank 2 the pre-migration location, then move the block.
	w.MustWait(w.Proc(2).Call(g, echo, nil))
	w.MustWait(w.Proc(0).Migrate(g, 3))
	w.MustWait(w.Proc(2).Call(g, echo, nil))
	// Under invalidate, the correction dropped the entry instead of
	// updating it.
	if _, ok := w.Locality(2).Cache().Lookup(g.Block()); ok {
		t.Fatal("invalidate policy kept an entry")
	}
	// Still correct, just slower: the next call goes via home again.
	w.MustWait(w.Proc(2).Call(g, echo, nil))
}

func TestLatencyOrderingAcrossModes(t *testing.T) {
	// The headline property: a remote put on untouched (never-migrated)
	// data costs PGAS ≈ NM < SW, because SW pays software translation on
	// the critical path.
	lat := func(mode Mode) netsim.VTime {
		w := testWorld(t, Config{Ranks: 2, Mode: mode, Engine: EngineDES})
		w.Start()
		lay, err := w.AllocCyclic(0, 4096, 2)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(1)
		// Warm once (first touches prime caches).
		w.MustWait(w.Proc(0).Put(g, make([]byte, 8)))
		start := w.Now()
		w.MustWait(w.Proc(0).Put(g, make([]byte, 8)))
		return w.Now() - start
	}
	pg, nm, sw := lat(PGAS), lat(AGASNM), lat(AGASSW)
	if nm < pg {
		t.Fatalf("NM (%v) beat PGAS (%v): model broken", nm, pg)
	}
	if float64(nm) > 1.2*float64(pg) {
		t.Fatalf("NM (%v) more than 20%% over PGAS (%v)", nm, pg)
	}
	if sw <= nm {
		t.Fatalf("SW (%v) not slower than NM (%v)", sw, nm)
	}
}

func TestPostMigrationLatencySteadyState(t *testing.T) {
	// After migration and one corrective round, NM and SW steady-state
	// ops both go direct; NM must not be slower than SW.
	lat := func(mode Mode) netsim.VTime {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: EngineDES})
		w.Start()
		lay, err := w.AllocCyclic(0, 4096, 4)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(1)
		w.MustWait(w.Proc(0).Migrate(g, 3))
		w.MustWait(w.Proc(2).Put(g, make([]byte, 8))) // corrective round
		start := w.Now()
		w.MustWait(w.Proc(2).Put(g, make([]byte, 8)))
		return w.Now() - start
	}
	nm, sw := lat(AGASNM), lat(AGASSW)
	if sw < nm {
		t.Fatalf("steady-state SW (%v) beat NM (%v)", sw, nm)
	}
}

func TestNICTableCapacityEvicts(t *testing.T) {
	// The source must be neither home nor owner so its NIC *table* (not
	// its authoritative routes) carries the translations.
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES, NICTableCap: 4})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocLocal(1, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Migrate every block away from home 1 so sends from rank 0 bounce
	// once and the forwarding NIC pushes entries into rank 0's table.
	for d := uint32(0); d < 16; d++ {
		w.MustWait(w.Proc(1).Migrate(lay.BlockAt(d), 2))
	}
	for d := uint32(0); d < 16; d++ {
		w.MustWait(w.Proc(0).Call(lay.BlockAt(d), echo, nil))
	}
	nic := w.Fabric().NIC(0)
	if nic.Table.Len() > 4 {
		t.Fatalf("NIC table grew to %d", nic.Table.Len())
	}
	_, _, ev, _ := nic.Table.Stats()
	if ev == 0 {
		t.Fatal("bounded NIC table never evicted")
	}
}

func TestBuiltinActionIDsStable(t *testing.T) {
	// The wire protocol depends on these; moving them breaks mixed-run
	// reproducibility.
	if ALCOSet != 1 || ANop != 2 {
		t.Fatalf("builtin ids moved: lco.set=%d nop=%d", ALCOSet, ANop)
	}
	if aMigrateReq != 3 || aMigrateDone != 6 || aAllocBlocks != 7 || aFreeBlock != 8 || firstUserAction != 9 {
		t.Fatal("builtin action ids moved")
	}
	var _ parcel.ActionID = ALCOSet
}
