package runtime

import (
	"fmt"
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
)

// withFaults returns a Config mutator installing plan (and a fixed
// workload seed so fault draws replay exactly).
func withFaults(plan netsim.FaultPlan) func(*Config) {
	return func(c *Config) {
		c.Seed = 7
		c.Faults = plan
	}
}

func TestFaultSeedInheritsConfigSeed(t *testing.T) {
	w := testWorld(t, Config{
		Ranks: 2, Mode: PGAS, Engine: EngineDES, Seed: 9,
		Faults: netsim.FaultPlan{Drop: 0.01},
	})
	if got := w.Config().Faults.Seed; got != 9 {
		t.Fatalf("fault seed %d, want inherited 9", got)
	}
	// An explicit fault seed wins over the workload seed.
	w2 := testWorld(t, Config{
		Ranks: 2, Mode: PGAS, Engine: EngineDES, Seed: 9,
		Faults: netsim.FaultPlan{Seed: 3, Drop: 0.01},
	})
	if got := w2.Config().Faults.Seed; got != 3 {
		t.Fatalf("fault seed %d, want explicit 3", got)
	}
}

func TestDropRateValidation(t *testing.T) {
	if _, err := NewWorld(Config{Ranks: 2, Faults: netsim.FaultPlan{Drop: 1}}); err == nil {
		t.Fatal("certain drop accepted: no workload could ever complete")
	}
	if _, err := NewWorld(Config{Ranks: 2, Faults: netsim.FaultPlan{Drop: -0.1}}); err == nil {
		t.Fatal("negative drop accepted")
	}
}

func TestSameSeedIdenticalDeliveryStats(t *testing.T) {
	// Satellite: determinism. Two DES runs with the same workload seed and
	// the same fault plan must report byte-identical delivery stats —
	// drops, duplicates, retransmissions, acks, everything.
	plan := netsim.FaultPlan{Drop: 0.05, Duplicate: 0.02, Reorder: true}
	run := func() string {
		_, w := runEquivWorkload(t, AGASNM, EngineDES, withFaults(plan))
		return fmt.Sprintf("%+v", w.DeliveryStats())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different delivery stats:\n run1: %s\n run2: %s", a, b)
	}
	// And the report is non-trivial: the fabric actually misbehaved.
	_, w := runEquivWorkload(t, AGASNM, EngineDES, withFaults(plan))
	d := w.DeliveryStats()
	if d.Faults.Dropped == 0 || d.Tracked == 0 {
		t.Fatalf("fault plan injected nothing: %+v", d)
	}
}

func TestForceWithoutFaultsZeroRetransmits(t *testing.T) {
	// Acceptance: on a perfect fabric the reliability layer is pure
	// bookkeeping — everything tracked, nothing retransmitted, nothing
	// duplicated, nothing abandoned — and the golden counters still hold.
	for _, eng := range allEngines {
		got, w := runEquivWorkload(t, AGASNM, eng, func(c *Config) {
			c.Reliability.Force = true
		})
		if got != equivGolden[AGASNM] {
			t.Errorf("%v: forced reliability perturbed golden counters\n got: %v\nwant: %v",
				eng, got, equivGolden[AGASNM])
		}
		d := w.DeliveryStats()
		if d.Tracked == 0 {
			t.Errorf("%v: reliability forced on but nothing tracked", eng)
		}
		if d.Retransmits != 0 || d.DupsSuppressed != 0 || d.Abandoned != 0 || d.StaleDrops != 0 {
			t.Errorf("%v: fault-free run shows degradation: %+v", eng, d)
		}
	}
}

func TestReliabilityOffByDefault(t *testing.T) {
	_, w := runEquivWorkload(t, AGASNM, EngineDES)
	if w.relw != nil || w.Locality(0).rel != nil {
		t.Fatal("reliability layer active without faults or Force")
	}
	d := w.DeliveryStats()
	if d.Tracked != 0 || d.AcksSent != 0 {
		t.Fatalf("inactive layer reported activity: %+v", d)
	}
}

func TestForwardingLoopDegradesToAbandon(t *testing.T) {
	// Poisoned routing state: two NICs point a never-allocated block at
	// each other. The send must terminate — hop budget, loop NACK,
	// bounce cap, abandon — instead of panicking or looping forever.
	w := testWorld(t, Config{
		Ranks: 3, Mode: AGASNM, Engine: EngineDES,
		Reliability: ReliabilityConfig{Force: true, MaxAttempts: 2},
	})
	nop := w.Register("noop", func(c *Ctx) {})
	w.Start()
	w.net.installRoute(1, 999, 2)
	w.net.installRoute(2, 999, 1)
	w.Proc(0).Invoke(gas.New(1, 999, 0), nop, nil)
	w.Drain()

	d := w.DeliveryStats()
	if d.HopCapNacks == 0 {
		t.Fatal("hop budget never tripped")
	}
	if d.Abandoned == 0 {
		t.Fatal("poisoned route was never abandoned")
	}
	if w.Stats().LoopNacks != int64(d.HopCapNacks) {
		t.Fatalf("LoopNacks %d != HopCapNacks %d", w.Stats().LoopNacks, d.HopCapNacks)
	}
}

func TestHopCapConfigurable(t *testing.T) {
	if got := (netsim.Policy{}).HopCap(); got != netsim.DefaultMaxHops {
		t.Fatalf("zero policy hop cap %d, want %d", got, netsim.DefaultMaxHops)
	}
	if got := (netsim.Policy{MaxHops: 4}).HopCap(); got != 4 {
		t.Fatalf("explicit hop cap %d, want 4", got)
	}
	if got := netsim.DefaultPolicy().MaxHops; got != netsim.DefaultMaxHops {
		t.Fatalf("default policy MaxHops %d", got)
	}
}
