package runtime

import (
	"math/rand"
	"testing"

	"nmvgas/internal/gas"
)

// TestDisabledHeatHooksAllocateNothing pins the Config.Heat zero-overhead
// contract, mirroring the latency-hook pin: with heat off, the data-path
// hook is a single nil check and allocates nothing.
func TestDisabledHeatHooksAllocateNothing(t *testing.T) {
	w, err := NewWorld(Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if w.heat != nil {
		t.Fatal("heat state allocated without Config.Heat.Enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		w.noteAccess(0, 1, 7, true)
		w.noteAccess(1, 0, 9, false)
	})
	if allocs != 0 {
		t.Fatalf("disabled heat hooks allocate %v per run, want 0", allocs)
	}
	if w.HeatEnabled() || w.HeatSampled() != 0 || w.HeatLoads() != nil {
		t.Fatal("disabled heat state leaked observations")
	}
}

// TestEnabledHeatHookAllocatesNothingSteadyState: once the per-rank
// sketch map has reached capacity population, the enabled hook itself is
// alloc-free (atomic adds plus a bounded-map sketch update).
func TestEnabledHeatHookAllocatesNothingSteadyState(t *testing.T) {
	w, err := NewWorld(Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES,
		Heat: HeatConfig{Enabled: true, TopK: 8}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	// Warm the sketch to capacity so map growth is behind us.
	for i := 0; i < 64; i++ {
		w.noteAccess(0, 1, gas.BlockID(i), false)
	}
	i := uint32(0)
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		w.noteAccess(0, 1, gas.BlockID(i%16), false)
	})
	if allocs != 0 {
		t.Fatalf("enabled heat hook allocates %v per run at steady state, want 0", allocs)
	}
}

// TestHeatSamplingAccuracy drives a known Zipf stream through a sampled
// tracker and checks the estimates: the per-rank load scaled by the
// sampling rate must land near the true stream length, and the hottest
// keys' scaled sketch counts must sit within a loose relative bound of
// their true frequencies (power-of-two sampling is unbiased; the bound
// absorbs sampling variance plus the space-saving overestimate).
func TestHeatSamplingAccuracy(t *testing.T) {
	const shift = 3 // sample 1 in 8
	w, err := NewWorld(Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES,
		Heat: HeatConfig{Enabled: true, SampleShift: shift, TopK: 64}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)

	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.3, 1, 63)
	const n = 200000
	truth := map[gas.BlockID]uint64{}
	for i := 0; i < n; i++ {
		b := gas.BlockID(zipf.Uint64())
		truth[b]++
		w.noteAccess(0, 1, b, true)
	}

	loads := w.HeatLoads()
	est := loads[0] << shift
	if est < n*85/100 || est > n*115/100 {
		t.Fatalf("scaled load estimate %d for %d true accesses (>15%% off)", est, n)
	}
	if w.HeatSampled() != loads[0] {
		t.Fatalf("cumulative sampled %d != rank load %d", w.HeatSampled(), loads[0])
	}

	top := w.HeatTop(5)
	if len(top) != 5 {
		t.Fatalf("HeatTop(5) returned %d entries", len(top))
	}
	for i, s := range top {
		if !s.Read || s.Src != 1 {
			t.Fatalf("sample %d decoded wrong: %+v", i, s)
		}
		tr := truth[s.Block]
		if tr == 0 {
			t.Fatalf("hot block %d never truly accessed", s.Block)
		}
		scaled := s.Count << shift
		// The head of a 1.3-Zipf over 64 keys holds thousands of hits;
		// 1-in-8 sampling keeps relative error small there.
		if scaled < tr*70/100 || scaled > tr*130/100 {
			t.Fatalf("block %d: scaled estimate %d vs true %d (>30%% off)", s.Block, scaled, tr)
		}
	}
	// The single hottest key must be ranked first.
	var hottest gas.BlockID
	var max uint64
	for b, c := range truth {
		if c > max {
			hottest, max = b, c
		}
	}
	if top[0].Block != hottest {
		t.Fatalf("HeatTop[0]=%d, true hottest %d", top[0].Block, hottest)
	}
}

// TestHeatEndToEnd drives real traffic (parcels, puts, gets, replica
// reads) and checks that heat shows up attributed to the right blocks,
// sources, and access kinds — then that HeatEpoch resets the window.
func TestHeatEndToEnd(t *testing.T) {
	w, err := NewWorld(Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES,
		Heat: HeatConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1) // homed at rank 1
	for i := 0; i < 10; i++ {
		w.MustWait(w.Proc(2).Put(g, []byte{1}))
		w.MustWait(w.Proc(3).Get(g, 1))
		w.MustWait(w.Proc(0).Call(g, echo, nil))
	}
	if w.HeatSampled() == 0 {
		t.Fatal("no heat sampled from live traffic")
	}
	loads := w.HeatLoads()
	if loads[1] == 0 {
		t.Fatalf("serving rank 1 recorded no load: %v", loads)
	}
	var reads, writes uint64
	for _, s := range w.HeatSamples() {
		if s.Block != g.Block() {
			continue
		}
		switch {
		case s.Read && s.Src == 3:
			reads += s.Count
		case !s.Read && (s.Src == 2 || s.Src == 0):
			writes += s.Count
		}
	}
	if reads < 10 {
		t.Fatalf("rank 3's reads undercounted: %d", reads)
	}
	if writes < 20 {
		t.Fatalf("write/exec heat undercounted: %d", writes)
	}

	epochLoads, samples := w.HeatEpoch()
	if epochLoads[1] == 0 || len(samples) == 0 {
		t.Fatal("epoch snapshot empty")
	}
	if l := w.HeatLoads(); l[1] != 0 {
		t.Fatalf("HeatEpoch did not reset loads: %v", l)
	}
	if s := w.HeatSamples(); len(s) != 0 {
		t.Fatalf("HeatEpoch did not reset sketches: %d entries left", len(s))
	}
	if w.HeatSampled() == 0 {
		t.Fatal("cumulative sample count must survive epoch reset")
	}
}
