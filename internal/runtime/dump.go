package runtime

import (
	"fmt"
	"io"
	"sort"
)

// DumpState writes a human-readable snapshot of the world's protocol
// state: per-locality block residency, in-flight migrations with their
// queue depths, and outstanding one-sided operations. It is the first
// thing to reach for when a Wait deadlocks.
func (w *World) DumpState(out io.Writer) error {
	for _, l := range w.locs {
		l.mu.Lock()
		movingCount := len(l.moving)
		type mv struct {
			b      uint32
			dst    int
			queued int
		}
		var moves []mv
		for b, st := range l.moving {
			moves = append(moves, mv{uint32(b), st.dst, len(st.queued)})
		}
		opsOutstanding := len(l.ops)
		l.mu.Unlock()
		sort.Slice(moves, func(i, j int) bool { return moves[i].b < moves[j].b })

		if _, err := fmt.Fprintf(out, "locality %d: blocks=%d moving=%d ops_outstanding=%d\n",
			l.rank, l.store.Len(), movingCount, opsOutstanding); err != nil {
			return err
		}
		for _, m := range moves {
			if _, err := fmt.Fprintf(out, "  moving block %d -> rank %d (%d queued)\n",
				m.b, m.dst, m.queued); err != nil {
				return err
			}
		}
		if dir := l.space.Directory(); dir != nil && dir.Len() > 0 {
			if _, err := fmt.Fprintf(out, "  directory: %d away-from-home entries\n", dir.Len()); err != nil {
				return err
			}
		}
		if tombs := l.space.Tombstones(); tombs != nil && tombs.Len() > 0 {
			if _, err := fmt.Fprintf(out, "  tombstones: %d\n", tombs.Len()); err != nil {
				return err
			}
		}
	}
	if w.eng != nil {
		if _, err := fmt.Fprintf(out, "engine: now=%v pending_events=%d processed=%d\n",
			w.eng.Now(), w.eng.Pending(), w.eng.Processed()); err != nil {
			return err
		}
	}
	return nil
}
