package runtime

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
)

// The equivalence fuzzer: a randomly generated program of puts, gets,
// action calls, and migrations must leave the global memory in exactly
// the same state no matter which address-space mode or execution engine
// runs it. This is the strongest statement of "translation never changes
// semantics" the repository makes.

type fuzzOp struct {
	kind    int // 0 = put, 1 = incr-call, 2 = migrate, 3 = get-check
	from    int
	block   uint32
	off     uint32
	payload []byte
	dest    int
}

const (
	fuzzRanks   = 4
	fuzzBlocks  = 12
	fuzzBSize   = 128
	fuzzOpCount = 160
)

func genProgram(seed int64, withMigrations bool) []fuzzOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []fuzzOp
	for i := 0; i < fuzzOpCount; i++ {
		op := fuzzOp{
			from:  rng.Intn(fuzzRanks),
			block: uint32(rng.Intn(fuzzBlocks)),
		}
		switch k := rng.Intn(10); {
		case k < 4: // put
			op.kind = 0
			n := 1 + rng.Intn(32)
			op.off = uint32(rng.Intn(fuzzBSize - 32))
			op.payload = make([]byte, n)
			rng.Read(op.payload)
		case k < 7: // incr action on word 0
			op.kind = 1
		case k < 9 && withMigrations: // migrate
			op.kind = 2
			op.dest = rng.Intn(fuzzRanks)
		default: // get (value checked against a shadow model)
			op.kind = 3
			op.off = uint32(rng.Intn(fuzzBSize - 8))
		}
		ops = append(ops, op)
	}
	return ops
}

// runProgram executes ops sequentially (each op waited) and returns the
// final content of every block plus a transcript of get results.
func runProgram(t *testing.T, mode Mode, eng EngineKind, ops []fuzzOp) (state []byte, gets []byte) {
	t.Helper()
	w := testWorld(t, Config{Ranks: fuzzRanks, Mode: mode, Engine: eng})
	incr := w.Register("incr", func(c *Ctx) {
		data := c.Local(c.P.Target)
		v := parcel.U64(data, 0)
		copy(data, parcel.PutU64(nil, v+1))
		c.Continue(nil)
	})
	w.Start()
	lay, err := w.AllocCyclic(0, fuzzBSize, fuzzBlocks)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		g := lay.BlockAt(op.block)
		switch op.kind {
		case 0:
			w.MustWait(w.Proc(op.from).Put(g.WithOffset(op.off), op.payload))
		case 1:
			w.MustWait(w.Proc(op.from).Call(g, incr, nil))
		case 2:
			st := w.MustWait(w.Proc(op.from).Migrate(g, op.dest))
			if MigrateStatus(st) != MigrateOK {
				t.Fatalf("op %d: migrate status %d", i, MigrateStatus(st))
			}
		case 3:
			v := w.MustWait(w.Proc(op.from).Get(g.WithOffset(op.off), 8))
			gets = append(gets, v...)
		}
	}
	// Collect final block contents in block order, wherever resident.
	for d := uint32(0); d < fuzzBlocks; d++ {
		b := lay.Base.Block() + gas.BlockID(d)
		found := false
		for r := 0; r < fuzzRanks; r++ {
			if blk, ok := w.Locality(r).Store().Get(b); ok {
				state = append(state, blk.Data...)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("block %d lost", d)
		}
	}
	return state, gets
}

func TestCrossModeEquivalenceFuzz(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ops := genProgram(seed, true)
			type result struct {
				label string
				state []byte
				gets  []byte
			}
			var results []result
			for _, mode := range []Mode{AGASSW, AGASNM} {
				for _, eng := range allEngines {
					st, gs := runProgram(t, mode, eng, ops)
					results = append(results, result{mode.String() + "/" + eng.String(), st, gs})
				}
			}
			for _, r := range results[1:] {
				if !bytes.Equal(r.state, results[0].state) {
					t.Fatalf("final memory differs: %s vs %s", r.label, results[0].label)
				}
				if !bytes.Equal(r.gets, results[0].gets) {
					t.Fatalf("get transcript differs: %s vs %s", r.label, results[0].label)
				}
			}
		})
	}
}

func TestPGASMatchesAGASWithoutMigrations(t *testing.T) {
	ops := genProgram(99, false)
	var base []byte
	for _, mode := range allModes {
		st, _ := runProgram(t, mode, EngineDES, ops)
		if base == nil {
			base = st
			continue
		}
		if !bytes.Equal(st, base) {
			t.Fatalf("%s diverged from pgas on a migration-free program", mode)
		}
	}
}

func TestCommutativeRaceTotalsAcrossModesAndEngines(t *testing.T) {
	// Concurrent phase: increments race migrations with no ordering; the
	// only invariant is the total count (increments commute).
	for _, mode := range agasModes {
		for _, eng := range allEngines {
			w := testWorld(t, Config{Ranks: fuzzRanks, Mode: mode, Engine: eng})
			incr := w.Register("incr", func(c *Ctx) {
				data := c.Local(c.P.Target)
				v := parcel.U64(data, 0)
				copy(data, parcel.PutU64(nil, v+1))
				c.Continue(nil)
			})
			w.Start()
			lay, err := w.AllocCyclic(0, fuzzBSize, 4)
			if err != nil {
				t.Fatal(err)
			}
			const perBlock = 30
			gate := w.NewAndGate(0, perBlock*4)
			rng := rand.New(rand.NewSource(3))
			var migs []*LCORef
			for i := 0; i < 6; i++ {
				migs = append(migs, w.Proc(rng.Intn(fuzzRanks)).Migrate(
					lay.BlockAt(uint32(rng.Intn(4))), rng.Intn(fuzzRanks)))
			}
			for i := 0; i < perBlock*4; i++ {
				r := i % fuzzRanks
				b := uint32(i % 4)
				w.Proc(r).Run(func() {
					w.Locality(r).SendParcel(&parcel.Parcel{
						Action: incr, Target: lay.BlockAt(b),
						CAction: ALCOSet, CTarget: gate.G,
					})
				})
			}
			w.MustWait(gate)
			for _, m := range migs {
				w.MustWait(m)
			}
			var total uint64
			for d := uint32(0); d < 4; d++ {
				v := w.MustWait(w.Proc(0).Get(lay.BlockAt(d), 8))
				total += parcel.U64(v, 0)
			}
			if total != perBlock*4 {
				t.Fatalf("%s/%s: total %d, want %d", mode, eng, total, perBlock*4)
			}
		}
	}
}
