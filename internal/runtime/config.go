// Package runtime is the message-driven runtime that ties the substrates
// together: localities executing registered actions on parcel arrival,
// LCO-based continuations, one-sided memory operations, global allocation,
// and live block migration — over three address-space modes (static PGAS,
// software-managed AGAS, network-managed AGAS) and two execution engines
// (deterministic discrete-event simulation, and real goroutines).
package runtime

import (
	"fmt"

	"nmvgas/internal/agas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/nmagas"
)

// Mode selects how global addresses are translated to owners.
type Mode uint8

const (
	// PGAS is static arithmetic translation; blocks cannot migrate.
	PGAS Mode = iota
	// AGASSW is software-managed AGAS: host-side caches, host forwarding,
	// host repair of stale one-sided operations.
	AGASSW
	// AGASNM is the paper's network-managed AGAS: NIC-resident
	// translation, in-network forwarding, NIC table updates.
	AGASNM
)

func (m Mode) String() string {
	switch m {
	case PGAS:
		return "pgas"
	case AGASSW:
		return "agas-sw"
	case AGASNM:
		return "agas-nm"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// EngineKind selects the execution engine.
type EngineKind uint8

const (
	// EngineDES runs the whole world on one deterministic discrete-event
	// loop with simulated time; the experiment harness uses it because
	// Go's garbage collector cannot perturb simulated latencies.
	EngineDES EngineKind = iota
	// EngineGo runs one actor goroutine per locality (plus optional
	// worker pools) with real concurrency and no simulated costs.
	EngineGo
)

func (e EngineKind) String() string {
	if e == EngineGo {
		return "go"
	}
	return "des"
}

// ParseMode parses a mode name as produced by Mode.String, including the
// numeric "mode(N)" fallback form, so the two round-trip.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{PGAS, AGASSW, AGASNM} {
		if s == m.String() {
			return m, nil
		}
	}
	var d uint8
	if n, err := fmt.Sscanf(s, "mode(%d)", &d); n == 1 && err == nil {
		return Mode(d), nil
	}
	return 0, fmt.Errorf("runtime: unknown mode %q (want pgas, agas-sw, or agas-nm)", s)
}

// ParseEngine parses an engine name as produced by EngineKind.String.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "des":
		return EngineDES, nil
	case "go":
		return EngineGo, nil
	}
	return 0, fmt.Errorf("runtime: unknown engine %q (want des or go)", s)
}

// Config configures a world.
type Config struct {
	// Ranks is the number of localities (>= 1).
	Ranks int
	// Mode selects the address-space design under test.
	Mode Mode
	// Engine selects DES or goroutine execution.
	Engine EngineKind
	// Model holds the DES cost model; zero value means DefaultModel.
	Model netsim.Model
	// Policy configures NIC behaviour in AGASNM mode; zero value means
	// DefaultPolicy (forward in network, push updates).
	Policy netsim.Policy
	// PolicySet marks Policy as intentionally set (so the zero Policy can
	// be requested by ablations).
	PolicySet bool
	// NICTableCap bounds the NIC translation table in AGASNM mode
	// (0 = unbounded).
	NICTableCap int
	// SWCacheCap bounds the software translation cache in AGASSW mode
	// (0 = unbounded).
	SWCacheCap int
	// SWCorrection selects the software cache's staleness policy.
	SWCorrection agas.CorrectionPolicy
	// NMUpdate selects how migrations propagate to NIC tables.
	NMUpdate nmagas.UpdatePolicy
	// Topology selects the simulated fabric topology (nil = crossbar).
	// Only meaningful under EngineDES.
	Topology netsim.Topology
	// Shards partitions ranks into parallel event shards under EngineDES.
	// 0 keeps the classic single-threaded engine; N >= 1 runs the
	// conservative-lookahead windowed engine with N shard workers
	// (clamped to Ranks). Same seed and workload produce bit-identical
	// results for every N >= 1 — shards only change wall-clock time.
	// Shards=1 is the windowed engine run sequentially, the reference the
	// equivalence suite pins N > 1 against. EngineGo ignores it.
	Shards int
	// Coalesce batches small parcels per destination when
	// Coalesce.MaxParcels > 1 (see CoalesceConfig).
	Coalesce CoalesceConfig
	// Workers adds per-locality worker goroutines in EngineGo mode; 0
	// runs actions inline on the locality actor.
	Workers int
	// GoTimeScale is the EngineGo clock ratio: wall-clock nanoseconds per
	// simulated nanosecond (0 = default 10). The goroutine engine has no
	// simulated clock, but fault-injected delays and reliability
	// retransmit timers are specified in simulated netsim.VTime; this one
	// knob converts them to real durations instead of a silent 1:1 cast.
	// EngineDES ignores it.
	GoTimeScale int
	// Seed feeds deterministic components (scheduler victim selection,
	// fault injection).
	Seed int64
	// Faults injects seeded delivery faults into the transport (both
	// engines); the zero plan is a perfect network. A zero Faults.Seed
	// inherits Seed, so one knob replays a whole faulty run.
	Faults netsim.FaultPlan
	// Reliability tunes the end-to-end reliable-delivery layer, which
	// activates automatically when Faults is nonzero (or Force is set).
	Reliability ReliabilityConfig
	// RequireMigration declares that the program will migrate blocks;
	// NewWorld rejects the config when the selected address space cannot.
	RequireMigration bool
	// Metrics enables runtime latency histograms (parcel send→exec,
	// one-sided completion, NACK repair, migration phases, coalescer
	// flush delay), surfaced by World.Latencies. Off by default; the
	// disabled path costs a single nil check and zero allocations.
	Metrics bool
	// Heat enables sampled per-block access-heat tracking for the load
	// balancer (see internal/loadbal). Like Metrics, the disabled path
	// costs a single nil check and zero allocations; the enabled path is
	// power-of-two sampled into per-rank fixed-size sketches, never an
	// unbounded map.
	Heat HeatConfig
	// Pulse enables the runtime pulse: a periodic in-runtime control tick
	// that drives watchdog evaluation and registered control loops (see
	// PulseConfig). Like Metrics and Heat, the disabled path is a nil
	// pointer and costs a single nil check.
	Pulse PulseConfig
	// Coherence selects how writes to a replicated block keep its replica
	// set coherent (see World.ReplicateLive): write-invalidate (default),
	// write-update, or RW leases.
	Coherence agas.Coherence
	// LeaseNs is the replica lease length on the latency clock under the
	// RWLease coherence policy (0 = default 100µs). Other policies renew
	// leases on every fill, so the value only bounds staleness under
	// RWLease.
	LeaseNs int64
}

// normalized fills defaults and validates.
func (c Config) normalized() (Config, error) {
	if c.Ranks < 1 {
		return c, fmt.Errorf("runtime: config needs at least 1 rank, got %d", c.Ranks)
	}
	if c.Ranks > 1<<12 {
		return c, fmt.Errorf("runtime: %d ranks exceeds the GVA home field", c.Ranks)
	}
	if c.Mode > AGASNM {
		return c, fmt.Errorf("runtime: unknown mode %d", c.Mode)
	}
	if c.Model == (netsim.Model{}) {
		c.Model = netsim.DefaultModel()
	}
	if !c.PolicySet && c.Policy == (netsim.Policy{}) {
		c.Policy = netsim.DefaultPolicy()
	}
	if c.Faults.Seed == 0 {
		c.Faults.Seed = c.Seed
	}
	if c.GoTimeScale <= 0 {
		c.GoTimeScale = 10
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("runtime: negative shard count %d", c.Shards)
	}
	if c.Shards > c.Ranks {
		c.Shards = c.Ranks
	}
	if c.Faults.Drop < 0 || c.Faults.Drop >= 1 {
		return c, fmt.Errorf("runtime: fault drop probability %v outside [0,1)", c.Faults.Drop)
	}
	c.Reliability = c.Reliability.withDefaults()
	c.Heat = c.Heat.withDefaults()
	if c.Heat.SampleShift > 20 {
		return c, fmt.Errorf("runtime: heat sample shift %d too coarse (max 20)", c.Heat.SampleShift)
	}
	c.Pulse = c.Pulse.withDefaults()
	if c.Coherence > agas.RWLease {
		return c, fmt.Errorf("runtime: unknown coherence policy %d", c.Coherence)
	}
	if c.LeaseNs <= 0 {
		c.LeaseNs = 100_000
	}
	return c, nil
}

// validate checks the config against the selected address space's
// capabilities (normalized has already run).
func (c Config) validate(caps Caps) error {
	if c.RequireMigration && !caps.Migration {
		return fmt.Errorf("runtime: config requires migration, but address space %q is static (blocks cannot move); pick a migrating mode such as agas-sw or agas-nm", caps.Name)
	}
	return nil
}
