package runtime

import (
	"sync"

	"nmvgas/internal/netsim"
	"nmvgas/internal/sched"
)

// Executor serializes work attributed to one locality's host CPU.
type Executor interface {
	// Exec schedules fn after charging cost to the host timeline. On the
	// DES engine the host is modelled as a single core: tasks start when
	// the core is free and the core stays busy for cost. On the
	// goroutine engine cost is ignored and fn runs on the locality
	// actor.
	Exec(cost netsim.VTime, fn func())
	// Charge extends the host-busy window from inside a running task
	// (simulated compute time). No-op on the goroutine engine.
	Charge(extra netsim.VTime)
	// Offload runs fn on a worker when the engine has a worker pool,
	// else behaves like Exec(0, fn). Used for user action bodies.
	Offload(fn func())
}

// desExec models one host core on the discrete-event engine.
type desExec struct {
	eng  *netsim.Engine
	busy netsim.VTime
}

func (e *desExec) Exec(cost netsim.VTime, fn func()) {
	start := e.eng.Now()
	if e.busy > start {
		start = e.busy
	}
	run := start + cost
	e.busy = run
	e.eng.At(run, fn)
}

func (e *desExec) Charge(extra netsim.VTime) {
	if extra < 0 {
		return
	}
	now := e.eng.Now()
	if e.busy < now {
		e.busy = now
	}
	e.busy += extra
}

func (e *desExec) Offload(fn func()) { e.Exec(0, fn) }

// goExec is one locality actor: an unbounded mailbox drained by a single
// goroutine, optionally paired with a worker pool for user action bodies.
type goExec struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func()
	stopped bool
	wg      sync.WaitGroup
	pool    *sched.Pool // nil when Workers == 0
}

func newGoExec(pool *sched.Pool) *goExec {
	e := &goExec{pool: pool}
	e.cond = sync.NewCond(&e.mu)
	return e
}

func (e *goExec) start() {
	e.wg.Add(1)
	go e.loop()
}

func (e *goExec) loop() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.stopped {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.stopped {
			e.mu.Unlock()
			return
		}
		fn := e.queue[0]
		copy(e.queue, e.queue[1:])
		e.queue[len(e.queue)-1] = nil
		e.queue = e.queue[:len(e.queue)-1]
		e.mu.Unlock()
		fn()
	}
}

// stop drains queued work and stops the actor.
func (e *goExec) stop() {
	e.mu.Lock()
	e.stopped = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *goExec) Exec(_ netsim.VTime, fn func()) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.queue = append(e.queue, fn)
	e.cond.Signal()
	e.mu.Unlock()
}

func (e *goExec) Charge(netsim.VTime) {}

func (e *goExec) Offload(fn func()) {
	if e.pool != nil {
		e.pool.Submit(fn)
		return
	}
	e.Exec(0, fn)
}
