package runtime

import (
	"sync"

	"nmvgas/internal/netsim"
	"nmvgas/internal/sched"
)

// Executor serializes work attributed to one locality's host CPU.
type Executor interface {
	// Exec schedules fn after charging cost to the host timeline. On the
	// DES engine the host is modelled as a single core: tasks start when
	// the core is free and the core stays busy for cost. On the
	// goroutine engine cost is ignored and fn runs on the locality
	// actor.
	Exec(cost netsim.VTime, fn func())
	// Charge extends the host-busy window from inside a running task
	// (simulated compute time). No-op on the goroutine engine.
	Charge(extra netsim.VTime)
	// Offload runs fn on a worker when the engine has a worker pool,
	// else behaves like Exec(0, fn). Used for user action bodies.
	Offload(fn func())
}

// desExec models one host core on the discrete-event engine. eng is the
// rank's engine face (its shard engine under the parallel engine), so
// host tasks land on the rank's own timeline and the busy horizon is
// only ever touched from that rank's event context.
type desExec struct {
	eng  *netsim.Engine
	rank int
	busy netsim.VTime
}

func (e *desExec) Exec(cost netsim.VTime, fn func()) {
	start := e.eng.Now()
	if e.busy > start {
		start = e.busy
	}
	run := start + cost
	e.busy = run
	e.eng.AtRank(e.rank, run, fn)
}

func (e *desExec) Charge(extra netsim.VTime) {
	if extra < 0 {
		return
	}
	now := e.eng.Now()
	if e.busy < now {
		e.busy = now
	}
	e.busy += extra
}

func (e *desExec) Offload(fn func()) { e.Exec(0, fn) }

// task is one mailbox entry on the goroutine engine. The common case is a
// typed message (m != nil) delivered by the transport or a local send —
// no capturing closure, no per-message allocation. fn covers everything
// else (timers, control actions, test hooks).
type task struct {
	fn    func()
	m     *netsim.Message
	local bool // m came from this locality (bypass the NIC receive path)
}

// execBatch bounds how many tasks the actor loop claims per lock
// acquisition: large enough to amortize the lock, small enough to keep
// stop() latency and memory bounded.
const execBatch = 128

// goExec is one locality actor: an unbounded mailbox drained by a single
// goroutine, optionally paired with a worker pool for user action bodies.
// The mailbox is a growable power-of-two ring buffer; the drain loop
// claims up to execBatch tasks under one lock acquisition, so enqueue and
// dequeue are both O(1) and a deep backlog no longer costs a slice shift
// per message.
type goExec struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ring    []task // len(ring) is a power of two
	head    int    // index of the oldest queued task
	n       int    // number of queued tasks
	stopped bool
	wg      sync.WaitGroup
	pool    *sched.Pool // nil when Workers == 0

	// onMsg and onLocal are the typed delivery handlers, wired by
	// newChanNet / NewWorld before the actor starts: onMsg is the NIC
	// receive path (chanNet.arrive), onLocal the loopback host path
	// (onHostMsg).
	onMsg   func(*netsim.Message)
	onLocal func(*netsim.Message)

	// onDrain, when set, runs after every claimed batch of tasks — before
	// the loop can block on an empty mailbox — so per-drain accumulations
	// (coalesced put acks) always flush promptly.
	onDrain func()
}

func newGoExec(pool *sched.Pool) *goExec {
	e := &goExec{pool: pool, ring: make([]task, 64)}
	e.cond = sync.NewCond(&e.mu)
	return e
}

func (e *goExec) start() {
	e.wg.Add(1)
	go e.loop()
}

// depth reports the current mailbox backlog (metrics sampling).
func (e *goExec) depth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// push appends t to the ring, growing it when full. Caller holds e.mu.
func (e *goExec) push(t task) {
	if e.n == len(e.ring) {
		bigger := make([]task, len(e.ring)*2)
		p := copy(bigger, e.ring[e.head:])
		copy(bigger[p:], e.ring[:e.head])
		e.ring = bigger
		e.head = 0
	}
	e.ring[(e.head+e.n)&(len(e.ring)-1)] = t
	e.n++
	e.cond.Signal()
}

func (e *goExec) loop() {
	defer e.wg.Done()
	var batch [execBatch]task
	for {
		e.mu.Lock()
		for e.n == 0 && !e.stopped {
			e.cond.Wait()
		}
		if e.n == 0 && e.stopped {
			e.mu.Unlock()
			return
		}
		k := e.n
		if k > execBatch {
			k = execBatch
		}
		mask := len(e.ring) - 1
		for i := 0; i < k; i++ {
			j := (e.head + i) & mask
			batch[i] = e.ring[j]
			e.ring[j] = task{}
		}
		e.head = (e.head + k) & mask
		e.n -= k
		e.mu.Unlock()
		for i := 0; i < k; i++ {
			t := &batch[i]
			switch {
			case t.m != nil && t.local:
				e.onLocal(t.m)
			case t.m != nil:
				e.onMsg(t.m)
			default:
				t.fn()
			}
			*t = task{}
		}
		if e.onDrain != nil {
			e.onDrain()
		}
	}
}

// stop drains queued work and stops the actor.
func (e *goExec) stop() {
	e.mu.Lock()
	e.stopped = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *goExec) Exec(_ netsim.VTime, fn func()) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.push(task{fn: fn})
	e.mu.Unlock()
}

// execMsg enqueues a transport-delivered message for the NIC receive path
// without allocating a closure. Messages enqueued after stop are dropped,
// matching Exec's stopped semantics.
func (e *goExec) execMsg(m *netsim.Message) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.push(task{m: m})
	e.mu.Unlock()
}

// execLocal enqueues a locally-originated message straight for the host
// handler, bypassing the NIC receive path.
func (e *goExec) execLocal(m *netsim.Message) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.push(task{m: m, local: true})
	e.mu.Unlock()
}

func (e *goExec) Charge(netsim.VTime) {}

func (e *goExec) Offload(fn func()) {
	if e.pool != nil {
		e.pool.Submit(fn)
		return
	}
	e.Exec(0, fn)
}
