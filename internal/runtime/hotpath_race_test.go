package runtime

import (
	"sync"
	"sync/atomic"
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

// Race coverage for the hot-path concurrency surface: the sharded
// goNICState is read by many sender goroutines while migrations rewrite
// it, and goExec's ring buffer is stopped while producers still push.
// These tests exist to fail under -race (the CI test job runs the whole
// package with -race); without it they are cheap smoke tests.

// TestGoNICStateConcurrentChurn hammers translation lookups and route
// reads from many goroutines while migration churn rewrites routes and
// tables underneath them, with a worker pool so user actions also run
// off-actor.
func TestGoNICStateConcurrentChurn(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineGo, Workers: 2})
	bump := w.Register("bump", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocLocal(1, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A separate block set absorbs the raw table/route writes: scribbling
	// bogus owners for blocks that carry live traffic would (correctly)
	// trip the misrouting invariants.
	scratch, err := w.AllocLocal(2, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	cn := w.net.(*chanNet)

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Readers: raw translation lookups and authoritative route reads
	// across every rank's NIC state.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				st := cn.nics[(g+i)%4]
				b := lay.BlockAt(uint32(i % 8)).Block()
				st.lookup(b)
				st.route(b)
				st.peekTable(b)
				st.lookup(scratch.BlockAt(uint32(i % 8)).Block())
				st.tableLen()
			}
		}(g)
	}
	// Writers: direct table/route churn, as PushUpdates and commits do.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				b := scratch.BlockAt(uint32(i % 8)).Block()
				w.net.updateTable((g+i)%4, b, i%4)
				w.net.installRoute((g+i+1)%4, b, i%4)
				if i%7 == 0 {
					w.net.clearResident(i%4, b)
				}
			}
		}(g)
	}
	// Traffic + migration churn on the actors themselves.
	for round := 0; round < 6; round++ {
		for d := uint32(0); d < 8; d++ {
			g := lay.BlockAt(d)
			w.MustWait(w.Proc(int(d)%4).Call(g, bump, nil))
			if d%2 == 0 {
				w.MustWait(w.Proc(0).Migrate(g, (round+int(d))%4))
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestGoExecStopWhileExec races stop() against concurrent producers on
// every enqueue lane (Exec, execMsg, execLocal). Work enqueued before
// stop must drain; work enqueued after must be dropped silently — and
// nothing may deadlock or race.
func TestGoExecStopWhileExec(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := newGoExec(nil)
		var ran atomic.Int64
		e.onMsg = func(m *netsim.Message) { ran.Add(1) }
		e.onLocal = func(m *netsim.Message) { ran.Add(1) }
		e.start()

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 500; i++ {
					switch i % 3 {
					case 0:
						e.Exec(0, func() { ran.Add(1) })
					case 1:
						e.execMsg(&netsim.Message{Kind: kParcel, Block: gas.BlockID(g)})
					default:
						e.execLocal(&netsim.Message{Kind: kParcel, Block: gas.BlockID(g)})
					}
				}
			}(g)
		}
		close(start)
		e.stop() // races the producers by design
		wg.Wait()
		after := ran.Load()
		// Enqueues after stop must be dropped: nothing may sneak in once
		// stop returned and the loop exited.
		e.Exec(0, func() { t.Error("Exec after stop ran") })
		e.execMsg(&netsim.Message{Kind: kParcel})
		e.execLocal(&netsim.Message{Kind: kParcel})
		if got := ran.Load(); got != after {
			t.Fatalf("round %d: work ran after stop (%d -> %d)", round, after, got)
		}
	}
}

// TestCoalescerConcurrentFlush races the coalescer's three writers: the
// actor adding parcels, delayed-flush timer goroutines, and driver
// goroutines hammering FlushAll — all contending on the per-destination
// buffer locks while batches inject inline from whichever goroutine wins.
func TestCoalescerConcurrentFlush(t *testing.T) {
	cfg := coalCfg(4)
	cfg.Engine = EngineGo
	cfg.Coalesce.MaxDelay = netsim.Microsecond
	w := testWorld(t, cfg)
	incr := w.Register("incr", func(c *Ctx) {
		d := c.Local(c.P.Target)
		d[0]++
		c.Continue(nil)
	})
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				w.Locality(0).FlushAll()
			}
		}()
	}
	const rounds, perRound = 20, 32
	for r := 0; r < rounds; r++ {
		gate := w.NewAndGate(0, perRound)
		w.Proc(0).Run(func() {
			for i := 0; i < perRound; i++ {
				w.Locality(0).SendParcel(&parcel.Parcel{
					Action: incr, Target: lay.BlockAt(uint32(i % 8)),
					CAction: ALCOSet, CTarget: gate.G,
				})
			}
		})
		w.Locality(0).FlushAll()
		w.MustWait(gate)
	}
	stop.Store(true)
	wg.Wait()
	var total int
	for i := uint32(0); i < 8; i++ {
		got := w.MustWait(w.Proc(0).Get(lay.BlockAt(i), 1))
		total += int(got[0])
	}
	if total != rounds*perRound {
		t.Fatalf("ran %d increments, want %d", total, rounds*perRound)
	}
}

// TestBatchScatterRacesMigration streams coalesced batches at blocks
// that migrate continuously: chanNet's scatter split reads routing state
// while migration commits rewrite it. Every parcel must still execute
// exactly once (re-routes are legal under the race; loss is not).
func TestBatchScatterRacesMigration(t *testing.T) {
	cfg := coalCfg(4)
	cfg.Engine = EngineGo
	cfg.Ranks = 4
	w := testWorld(t, cfg)
	var ran atomic.Int64
	bump := w.Register("bump", func(c *Ctx) {
		ran.Add(1)
		c.Continue(nil)
	})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	const rounds, perRound = 12, 24
	for r := 0; r < rounds; r++ {
		gate := w.NewAndGate(0, perRound)
		w.Proc(0).Run(func() {
			for i := 0; i < perRound; i++ {
				w.Locality(0).SendParcel(&parcel.Parcel{
					Action: bump, Target: lay.BlockAt(uint32(i % 4)),
					CAction: ALCOSet, CTarget: gate.G,
				})
			}
		})
		// Migrations race the in-flight batches of the same round.
		for b := uint32(0); b < 4; b++ {
			w.MustWait(w.Proc(2).Migrate(lay.BlockAt(b), (r+int(b))%4))
		}
		w.Locality(0).FlushAll()
		w.MustWait(gate)
	}
	if got := ran.Load(); got != rounds*perRound {
		t.Fatalf("ran %d parcels, want %d", got, rounds*perRound)
	}
}

// TestPipelinedPutsRaceActor pipelines puts from several driver
// goroutines at once — the inline PutAsync issue path races itself and
// the destination actor's DMA/ack machinery, including coalesced ack
// vectors.
func TestPipelinedPutsRaceActor(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: AGASNM, Engine: EngineGo})
	w.Start()
	lay, err := w.AllocLocal(1, 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	const writers, puts = 4, 200
	var done sync.WaitGroup
	var acked atomic.Int64
	for g := 0; g < writers; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			p := w.Proc(0)
			dst := lay.BlockAt(uint32(g))
			buf := []byte{byte(g)}
			var local sync.WaitGroup
			for i := 0; i < puts; i++ {
				local.Add(1)
				p.PutAsync(dst, buf, func() {
					acked.Add(1)
					local.Done()
				})
			}
			local.Wait()
		}(g)
	}
	done.Wait()
	if got := acked.Load(); got != writers*puts {
		t.Fatalf("%d acks, want %d", got, writers*puts)
	}
}

// TestGoExecRingGrowth forces the ring through several doublings with a
// wrapped head and checks strict FIFO order survives.
func TestGoExecRingGrowth(t *testing.T) {
	e := newGoExec(nil)
	var mu sync.Mutex
	var got []int
	// Fill without a consumer so the ring must grow (initial capacity 64),
	// then start and drain.
	const n = 1000
	for i := 0; i < n; i++ {
		i := i
		e.Exec(0, func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		})
	}
	e.start()
	e.stop()
	if len(got) != n {
		t.Fatalf("drained %d of %d tasks", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: got %d", i, v)
		}
	}
}
