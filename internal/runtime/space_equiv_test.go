package runtime

import (
	"fmt"
	"testing"

	"nmvgas/internal/parcel"
)

// TestAddressSpaceEquivalence pins the per-mode protocol behavior across
// the address-space strategy refactor: a fixed, fully serialized workload
// must produce exactly the golden runtime counters in every mode, on both
// engines. The goldens were captured from the pre-refactor mode-switch
// implementation, so any drift in translation, forwarding, repair, or
// migration behavior shows up as a counter diff.

// equivCounters is the engine-independent slice of WorldStats the test
// compares (fabric counters are DES-only and excluded).
type equivCounters struct {
	ParcelsSent  int64
	ParcelsRun   int64
	LocalRuns    int64
	HostForwards int64
	HostNacks    int64
	NICNacks     int64
	Queued       int64
	SWLookups    int64
	PutOps       int64
	GetOps       int64
	PutBytes     int64
	GetBytes     int64
	Migrations   int64
}

func (c equivCounters) String() string {
	return fmt.Sprintf("{ParcelsSent: %d, ParcelsRun: %d, LocalRuns: %d, HostForwards: %d, HostNacks: %d, NICNacks: %d, Queued: %d, SWLookups: %d, PutOps: %d, GetOps: %d, PutBytes: %d, GetBytes: %d, Migrations: %d}",
		c.ParcelsSent, c.ParcelsRun, c.LocalRuns, c.HostForwards, c.HostNacks,
		c.NICNacks, c.Queued, c.SWLookups, c.PutOps, c.GetOps, c.PutBytes,
		c.GetBytes, c.Migrations)
}

// equivGolden holds the expected counters per mode, identical across
// engines because the workload serializes every operation and every
// stale-translation repair sits on a waited op's critical path. Captured
// from the pre-refactor mode-switch implementation at PR 1.
var equivGolden = map[Mode]equivCounters{
	PGAS: {ParcelsSent: 66, ParcelsRun: 66, LocalRuns: 18,
		PutOps: 4, GetOps: 4, PutBytes: 64, GetBytes: 32},
	AGASSW: {ParcelsSent: 121, ParcelsRun: 121, LocalRuns: 33,
		HostForwards: 8, HostNacks: 2, SWLookups: 100,
		PutOps: 6, GetOps: 5, PutBytes: 80, GetBytes: 40, Migrations: 5},
	AGASNM: {ParcelsSent: 121, ParcelsRun: 121, LocalRuns: 33,
		PutOps: 6, GetOps: 5, PutBytes: 80, GetBytes: 40, Migrations: 5},
}

// runEquivWorkload drives a deterministic protocol workout: fan-out
// parcels (local and remote), one-sided puts and gets, and — in the
// migrating modes — a migration wave followed by stale-translation
// traffic that exercises each mode's repair path. Every operation is
// waited, so the counter totals are exact, not racy.
func runEquivWorkload(t *testing.T, mode Mode, eng EngineKind, mutate ...func(*Config)) (equivCounters, *World) {
	t.Helper()
	const ranks = 4
	const nblocks = 8
	cfg := Config{Ranks: ranks, Mode: mode, Engine: eng}
	for _, fn := range mutate {
		fn(&cfg)
	}
	w := testWorld(t, cfg)
	incr := w.Register("incr", func(c *Ctx) {
		data := c.Local(c.P.Target)
		v := parcel.U64(data, 0)
		copy(data, parcel.PutU64(nil, v+1))
		c.Continue(nil)
	})
	w.Start()
	lay, err := w.AllocCyclic(0, 128, nblocks)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: every rank touches every block with an action.
	for r := 0; r < ranks; r++ {
		for d := uint32(0); d < nblocks; d++ {
			w.MustWait(w.Proc(r).Call(lay.BlockAt(d), incr, nil))
		}
	}
	// Phase 2: one-sided traffic, local and remote targets.
	for r := 0; r < ranks; r++ {
		w.MustWait(w.Proc(r).Put(lay.BlockAt(uint32(r+1)%nblocks), make([]byte, 16)))
		v := w.MustWait(w.Proc(r).Get(lay.BlockAt(uint32(r+3)%nblocks), 8))
		if len(v) != 8 {
			t.Fatalf("get returned %d bytes", len(v))
		}
	}
	// Phase 3 (migrating modes): move the first four blocks one rank to
	// the right, then hit each exactly once per rank with a parcel so
	// every send is a first touch of stale translation state — the counts
	// are then independent of when fire-and-forget corrections land,
	// which keeps the goldens engine-independent. Finally, bounce a
	// one-sided op off a freshly migrated block to exercise the stale
	// one-sided repair path on the op's own critical path.
	if mode != PGAS {
		for d := uint32(0); d < 4; d++ {
			st := w.MustWait(w.Proc(0).Migrate(lay.BlockAt(d), (int(d)+1)%ranks))
			if MigrateStatus(st) != MigrateOK {
				t.Fatalf("migrate block %d: status %d", d, MigrateStatus(st))
			}
		}
		for r := 0; r < ranks; r++ {
			for d := uint32(0); d < 4; d++ {
				w.MustWait(w.Proc(r).Call(lay.BlockAt(d), incr, nil))
			}
		}
		st := w.MustWait(w.Proc(1).Migrate(lay.BlockAt(5), 3))
		if MigrateStatus(st) != MigrateOK {
			t.Fatalf("migrate block 5: status %d", MigrateStatus(st))
		}
		// Stale put: repaired by host NACK (sw) or in-network forward
		// (nm); the repair completes before the future fires, so the
		// follow-up get and put go direct off the corrected state.
		w.MustWait(w.Proc(0).Put(lay.BlockAt(5), make([]byte, 8)))
		w.MustWait(w.Proc(0).Get(lay.BlockAt(5), 8))
		w.MustWait(w.Proc(0).Put(lay.BlockAt(5), make([]byte, 8)))
	} else {
		// Static addressing refuses migration with a status, not a hang.
		st := w.MustWait(w.Proc(0).Migrate(lay.BlockAt(0), 1))
		if MigrateStatus(st) != MigratePinned {
			t.Fatalf("pgas migrate: status %d, want MigratePinned", MigrateStatus(st))
		}
	}
	if err := w.Free(lay); err != nil {
		t.Fatal(err)
	}
	w.Stop()

	s := w.Stats()
	return equivCounters{
		ParcelsSent:  s.ParcelsSent,
		ParcelsRun:   s.ParcelsRun,
		LocalRuns:    s.LocalRuns,
		HostForwards: s.HostForwards,
		HostNacks:    s.HostNacks,
		NICNacks:     s.NICNacks,
		Queued:       s.Queued,
		SWLookups:    s.SWLookups,
		PutOps:       s.PutOps,
		GetOps:       s.GetOps,
		PutBytes:     s.PutBytes,
		GetBytes:     s.GetBytes,
		Migrations:   s.Migrations,
	}, w
}

// replEquivCounters extends the golden slice with the replica coherence
// counters that are deterministic for the serialized replicated workload
// (reads happen only on settled replica state, so the stale-read count
// is pinned at zero rather than racy).
type replEquivCounters struct {
	equivCounters
	ReplicaReads      int64
	ReplicaStaleReads int64
	ReplicaInvals     int64
	ReplicaFills      int64
}

func (c replEquivCounters) String() string {
	return fmt.Sprintf("%v + {ReplicaReads: %d, ReplicaStaleReads: %d, ReplicaInvals: %d, ReplicaFills: %d}",
		c.equivCounters, c.ReplicaReads, c.ReplicaStaleReads, c.ReplicaInvals, c.ReplicaFills)
}

// replGolden pins the replicated workload per mode, identical across
// engines (the goroutine transport models the same crossbar the DES
// fabric simulates, so read-target choice agrees).
var replGolden = map[Mode]replEquivCounters{
	PGAS: {equivCounters: equivCounters{LocalRuns: 25,
		PutOps: 9, GetOps: 33, PutBytes: 72, GetBytes: 264},
		ReplicaReads: 22, ReplicaInvals: 8, ReplicaFills: 8},
	AGASSW: {equivCounters: equivCounters{ParcelsSent: 5, ParcelsRun: 5, LocalRuns: 40,
		HostNacks: 4, SWLookups: 36,
		PutOps: 10, GetOps: 49, PutBytes: 80, GetBytes: 392, Migrations: 1},
		ReplicaReads: 33, ReplicaInvals: 10, ReplicaFills: 10},
	AGASNM: {equivCounters: equivCounters{ParcelsSent: 5, ParcelsRun: 5, LocalRuns: 40,
		PutOps: 10, GetOps: 49, PutBytes: 80, GetBytes: 392, Migrations: 1},
		ReplicaReads: 33, ReplicaInvals: 10, ReplicaFills: 10},
}

// settleRepl drains in-flight coherence traffic: DES empties the event
// queue, the goroutine engine polls the aggregate counters up to pred.
func settleRepl(t *testing.T, w *World, pred func(WorldStats) bool) {
	t.Helper()
	settleCoherence(t, w, pred)
}

// runReplEquivWorkload is the replicated analogue of runEquivWorkload: a
// fixed serialized workload over a live replica set — reads before and
// after coherent writes, a master migration that re-homes the set, and a
// final unreplicate — with every read's value checked, so the goldens
// pin both the counters and the data the application observed.
func runReplEquivWorkload(t *testing.T, mode Mode, eng EngineKind, mutate ...func(*Config)) (replEquivCounters, *World) {
	t.Helper()
	const ranks = 4
	const nblocks = 4
	cfg := Config{Ranks: ranks, Mode: mode, Engine: eng}
	for _, fn := range mutate {
		fn(&cfg)
	}
	w := testWorld(t, cfg)
	w.Start()
	lay, err := w.AllocCyclic(0, 64, nblocks)
	if err != nil {
		t.Fatal(err)
	}
	stamp := func(d uint32, v byte) []byte {
		buf := make([]byte, 8)
		for i := range buf {
			buf[i] = v + byte(d)
		}
		return buf
	}
	readAll := func(phase string, want func(d uint32) byte) {
		for r := 0; r < ranks; r++ {
			for d := uint32(0); d < nblocks; d++ {
				got := w.MustWait(w.Proc(r).Get(lay.BlockAt(d), 8))
				if got[0] != want(d) || got[7] != want(d) {
					t.Fatalf("%s: rank %d read %v from block %d, want %d", phase, r, got, d, want(d))
				}
			}
		}
	}

	// Seed, then go live with 2 replicas per block.
	for d := uint32(0); d < nblocks; d++ {
		w.MustWait(w.Proc(0).Put(lay.BlockAt(d), stamp(d, 10)))
	}
	if err := w.ReplicateLive(lay, 2); err != nil {
		t.Fatal(err)
	}
	// Phase A: every rank reads every block off the settled replica set.
	readAll("A", func(d uint32) byte { return 10 + byte(d) })
	// Phase B: one coherent write per block, settle, re-read everywhere.
	for d := uint32(0); d < nblocks; d++ {
		w.MustWait(w.Proc((int(d)+1)%ranks).Put(lay.BlockAt(d), stamp(d, 50)))
	}
	settleRepl(t, w, func(s WorldStats) bool {
		return s.ReplicaInvals >= 8 && s.ReplicaFills >= 8
	})
	readAll("B", func(d uint32) byte { return 50 + byte(d) })
	// Phase C (migrating modes): move block 0's master — the replica set
	// re-homes — then write at the new master and re-read everywhere.
	if mode != PGAS {
		if st := w.MustWait(w.Proc(0).Migrate(lay.BlockAt(0), 3)); MigrateStatus(st) != MigrateOK {
			t.Fatalf("migrate: status %d", MigrateStatus(st))
		}
		w.MustWait(w.Proc(1).Put(lay.BlockAt(0), stamp(0, 90)))
		settleRepl(t, w, func(s WorldStats) bool {
			return s.ReplicaInvals >= 10 && s.ReplicaFills >= 10
		})
		readAll("C", func(d uint32) byte {
			if d == 0 {
				return 90
			}
			return 50 + byte(d)
		})
	}
	// Unreplicate: plain ownership again, one write-read to prove it.
	if err := w.Unreplicate(lay); err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(2).Put(lay.BlockAt(1), stamp(1, 120)))
	if got := w.MustWait(w.Proc(3).Get(lay.BlockAt(1), 8)); got[0] != 121 {
		t.Fatalf("post-unreplicate read %v", got)
	}
	if err := w.Free(lay); err != nil {
		t.Fatal(err)
	}
	w.Stop()

	s := w.Stats()
	return replEquivCounters{
		equivCounters: equivCounters{
			ParcelsSent:  s.ParcelsSent,
			ParcelsRun:   s.ParcelsRun,
			LocalRuns:    s.LocalRuns,
			HostForwards: s.HostForwards,
			HostNacks:    s.HostNacks,
			NICNacks:     s.NICNacks,
			Queued:       s.Queued,
			SWLookups:    s.SWLookups,
			PutOps:       s.PutOps,
			GetOps:       s.GetOps,
			PutBytes:     s.PutBytes,
			GetBytes:     s.GetBytes,
			Migrations:   s.Migrations,
		},
		ReplicaReads:      s.ReplicaReads,
		ReplicaStaleReads: s.ReplicaStaleReads,
		ReplicaInvals:     s.ReplicaInvals,
		ReplicaFills:      s.ReplicaFills,
	}, w
}

// TestReplicatedEquivalence is TestAddressSpaceEquivalence's replicated
// sibling: the same golden-counter discipline applied to a layout with a
// live replica set, across all modes and both engines.
func TestReplicatedEquivalence(t *testing.T) {
	for _, mode := range allModes {
		for _, eng := range allEngines {
			mode, eng := mode, eng
			t.Run(mode.String()+"/"+eng.String(), func(t *testing.T) {
				got, _ := runReplEquivWorkload(t, mode, eng)
				want, ok := replGolden[mode]
				if !ok {
					t.Logf("GOLDEN %v: %+v", mode, got)
					t.Skip("no golden recorded for mode")
				}
				if got != want {
					t.Errorf("replicated counters diverged\n got: %+v\nwant: %+v", got, want)
				}
			})
		}
	}
}

func TestAddressSpaceEquivalence(t *testing.T) {
	for _, mode := range allModes {
		for _, eng := range allEngines {
			mode, eng := mode, eng
			t.Run(mode.String()+"/"+eng.String(), func(t *testing.T) {
				got, _ := runEquivWorkload(t, mode, eng)
				want, ok := equivGolden[mode]
				if !ok {
					t.Logf("GOLDEN %v: %v", mode, got)
					t.Skip("no golden recorded for mode")
				}
				if got != want {
					t.Errorf("counters diverged from pre-refactor golden\n got: %v\nwant: %v", got, want)
				}
			})
		}
	}
}
