package runtime

import (
	"bytes"
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

// Tests for the PR4 bulk data path: in-NIC batch scatter for coalesced
// parcels, the coalescer's generation guard, and the vectored one-sided
// operations.

// TestScatterRecordCodecOffset pins the contract the whole scatter path
// rests on: the routing GVA a NIC reads out of a batch record at a fixed
// byte offset is exactly the parcel codec's Target field. If the parcel
// wire layout moves, this fails before any routing test gets confusing.
func TestScatterRecordCodecOffset(t *testing.T) {
	p := &parcel.Parcel{Action: 7, Src: 2, Seq: 99,
		Target: gas.New(3, 41, 17), Payload: []byte("abc")}
	enc := parcel.Encode(p)
	if g := netsim.ScatterGVA(enc); g != p.Target {
		t.Fatalf("ScatterGVA read %v from encoded parcel, want %v", g, p.Target)
	}
	var buf []byte
	buf = netsim.AppendScatterRecord(buf, enc)
	buf = netsim.AppendScatterRecord(buf, enc)
	r := netsim.NewScatterReader(buf)
	for i := 0; i < 2; i++ {
		g, rec, ok := r.Next()
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		if g != p.Target {
			t.Fatalf("record %d routed to %v, want %v", i, g, p.Target)
		}
		if !bytes.Equal(rec, enc) {
			t.Fatalf("record %d bytes mangled", i)
		}
	}
	if _, _, ok := r.Next(); ok {
		t.Fatal("reader produced a third record")
	}
}

// TestBatchScatterEliminatesHostReroutes is the PR4 acceptance scenario:
// parcels coalesced toward a block's stale home. Under agas-nm the home
// NIC splits the batch and forwards the movers in-network — the host
// never re-routes a record (BatchReroutes == 0, ScatterForwards > 0).
// Under agas-sw the same workload unbundles at the host and pays one
// software re-route per record, which is what the counter was showing
// before the NIC scatter existed.
func TestBatchScatterEliminatesHostReroutes(t *testing.T) {
	run := func(t *testing.T, mode Mode, eng EngineKind) WorldStats {
		cfg := coalCfg(8)
		cfg.Mode = mode
		cfg.Engine = eng
		w := testWorld(t, cfg)
		incr := w.Register("incr", func(c *Ctx) {
			d := c.Local(c.P.Target)
			d[0]++
			c.Continue(nil)
		})
		w.Start()
		lay, err := w.AllocLocal(1, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)
		w.MustWait(w.Proc(0).Migrate(g, 3))
		const n = 16
		gate := w.NewAndGate(0, n)
		w.Proc(2).Run(func() {
			for i := 0; i < n; i++ {
				w.Locality(2).SendParcel(&parcel.Parcel{
					Action: incr, Target: g,
					CAction: ALCOSet, CTarget: gate.G,
				})
			}
		})
		w.MustWait(gate)
		if got := w.MustWait(w.Proc(0).Get(g, 1)); got[0] != n {
			t.Fatalf("%s/%s: counter %d, want %d", mode, eng, got[0], n)
		}
		return w.Stats()
	}
	for _, eng := range allEngines {
		t.Run("agas-nm/"+eng.String(), func(t *testing.T) {
			s := run(t, AGASNM, eng)
			if s.BatchReroutes != 0 {
				t.Errorf("host re-routed %d batched records; NIC scatter should handle all", s.BatchReroutes)
			}
			if s.ScatterForwards == 0 {
				t.Error("no in-NIC scatter forwards recorded; batch never split in-network")
			}
		})
	}
	t.Run("agas-sw/control", func(t *testing.T) {
		s := run(t, AGASSW, EngineDES)
		if s.BatchReroutes == 0 {
			t.Error("software-managed control shows zero host re-routes; counter is dead")
		}
		if s.ScatterForwards != 0 {
			t.Errorf("agas-sw recorded %d scatter forwards; NIC splitting must be agas-nm only", s.ScatterForwards)
		}
	})
}

// TestBatchScatterAllResident checks the other side of the NIC gate: a
// batch whose records are all resident at the target is delivered to the
// host unsplit (no forwards, no re-routes, no splits).
func TestBatchScatterAllResident(t *testing.T) {
	for _, eng := range allEngines {
		t.Run(eng.String(), func(t *testing.T) {
			cfg := coalCfg(8)
			cfg.Engine = eng
			w := testWorld(t, cfg)
			incr := w.Register("incr", func(c *Ctx) {
				d := c.Local(c.P.Target)
				d[0]++
				c.Continue(nil)
			})
			w.Start()
			lay, err := w.AllocLocal(1, 64, 1)
			if err != nil {
				t.Fatal(err)
			}
			g := lay.BlockAt(0)
			const n = 24
			gate := w.NewAndGate(0, n)
			w.Proc(2).Run(func() {
				for i := 0; i < n; i++ {
					w.Locality(2).SendParcel(&parcel.Parcel{
						Action: incr, Target: g,
						CAction: ALCOSet, CTarget: gate.G,
					})
				}
			})
			w.MustWait(gate)
			s := w.Stats()
			if s.ScatterSplits != 0 || s.ScatterForwards != 0 || s.BatchReroutes != 0 {
				t.Fatalf("resident batch took the slow path: splits=%d forwards=%d reroutes=%d",
					s.ScatterSplits, s.ScatterForwards, s.BatchReroutes)
			}
			if got := w.MustWait(w.Proc(0).Get(g, 1)); got[0] != n {
				t.Fatalf("counter %d, want %d", got[0], n)
			}
		})
	}
}

// TestCoalesceGenerationGuard regresses the stale-timer bug: a delayed
// flush armed by one buffer generation must not drain a later
// generation's lone parcel early. Timeline (DES, MaxDelay 20µs):
// parcel A at ~0 arms a gen-0 timer for ~20µs; a burst at 5µs flushes
// the buffer by threshold (gen 1); lone parcel D at 6µs arms a gen-1
// timer for ~26µs. The stale gen-0 timer firing at 20µs must be a no-op,
// so D completes no earlier than 26µs.
func TestCoalesceGenerationGuard(t *testing.T) {
	cfg := coalCfg(3)
	cfg.Coalesce.MaxDelay = 20 * netsim.Microsecond
	w := testWorld(t, cfg)
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	send := func(ct *LCORef) {
		w.Locality(0).SendParcel(&parcel.Parcel{
			Action: echo, Target: g, CAction: ALCOSet, CTarget: ct.G,
		})
	}
	burst := w.NewAndGate(0, 3)
	lone := w.NewFuture(0)
	w.Proc(0).Run(func() { send(burst) }) // A: arms gen-0 timer
	w.Engine().After(5*netsim.Microsecond, func() {
		send(burst) // B
		send(burst) // C: count hits MaxParcels, threshold flush, gen 0 -> 1
	})
	w.Engine().After(6*netsim.Microsecond, func() {
		send(lone) // D: lone in gen 1, arms its own timer for ~26µs
	})
	w.MustWait(burst)
	w.MustWait(lone)
	if now := w.Now(); now < 26*netsim.Microsecond {
		t.Fatalf("lone parcel completed at %v: the stale gen-0 timer flushed it early", now)
	}
}

// TestPutGetVecSemantics drives the vectored one-sided path on every
// mode × engine: scattered writes land at their offsets, gathers return
// the fragments concatenated, and untouched bytes stay zero.
func TestPutGetVecSemantics(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 2, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocLocal(1, 1024, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)
		segs := []PutSeg{
			{Off: 0, Data: []byte("head")},
			{Off: 512, Data: []byte("middle")},
			{Off: 1020, Data: []byte("tail")},
		}
		w.Proc(0).PutVecWait(g, segs)
		got := make([]byte, 10)
		w.Proc(0).GetVecWaitInto(g, []GetSeg{
			{Off: 512, N: 6}, {Off: 1020, N: 4},
		}, got)
		if string(got) != "middletail" {
			t.Fatalf("gather read %q, want %q", got, "middletail")
		}
		// Whole-block read: fragments landed at their offsets, gaps zero.
		full := w.Proc(1).GetWait(g, 1024)
		if string(full[:4]) != "head" || string(full[512:518]) != "middle" || string(full[1020:]) != "tail" {
			t.Fatal("vectored put fragments misplaced")
		}
		for _, i := range []int{4, 100, 511, 518, 1019} {
			if full[i] != 0 {
				t.Fatalf("byte %d dirtied: %d", i, full[i])
			}
		}
	})
}

// TestVecOpsFollowMigration sends vectored ops at a block's stale home:
// the one-sided re-route machinery (NIC forwarding under agas-nm, host
// nack/chase under agas-sw) must deliver them to the migrated master.
func TestVecOpsFollowMigration(t *testing.T) {
	for _, mode := range agasModes {
		for _, eng := range allEngines {
			t.Run(mode.String()+"/"+eng.String(), func(t *testing.T) {
				w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
				w.Start()
				lay, err := w.AllocLocal(1, 256, 1)
				if err != nil {
					t.Fatal(err)
				}
				g := lay.BlockAt(0)
				w.MustWait(w.Proc(0).Migrate(g, 3))
				w.Proc(2).PutVecWait(g, []PutSeg{
					{Off: 8, Data: []byte("after")},
					{Off: 200, Data: []byte("move")},
				})
				got := make([]byte, 9)
				w.Proc(2).GetVecWaitInto(g, []GetSeg{
					{Off: 8, N: 5}, {Off: 200, N: 4},
				}, got)
				if string(got) != "aftermove" {
					t.Fatalf("read %q through migrated block, want %q", got, "aftermove")
				}
			})
		}
	}
}

// TestPipelinedPutAckCoalescing floods one owner with pipelined puts
// from the driver on the goroutine engine: completions ride coalesced
// ack vectors and every single one must fire.
func TestPipelinedPutAckCoalescing(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: AGASNM, Engine: EngineGo})
	w.Start()
	lay, err := w.AllocLocal(1, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	p := w.Proc(0)
	const n = 500
	done := make(chan struct{}, n)
	buf := []byte("payload!")
	for i := 0; i < n; i++ {
		p.PutAsync(g, buf, func() { done <- struct{}{} })
	}
	for i := 0; i < n; i++ {
		<-done
	}
	if got := p.GetWait(g, 8); string(got) != "payload!" {
		t.Fatalf("data after %d pipelined puts: %q", n, got)
	}
}
