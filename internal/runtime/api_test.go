package runtime

import (
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

func TestCallWhenFiresAfterDependency(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 2, Mode: mode, Engine: eng})
		echo := w.Register("echo", func(c *Ctx) { c.Continue(c.P.Payload) })
		w.Start()
		lay, err := w.AllocCyclic(0, 64, 2)
		if err != nil {
			t.Fatal(err)
		}
		dep := w.NewFuture(0)
		fut := w.Proc(0).CallWhen(dep, lay.BlockAt(1), echo, []byte{5})
		if fut.Ready() {
			t.Fatal("dependent call ran before the dependency fired")
		}
		// Fire the dependency via a parcel (any locality can).
		w.Proc(1).Invoke(dep.G, ALCOSet, nil)
		v := w.MustWait(fut)
		if len(v) != 1 || v[0] != 5 {
			t.Fatalf("dependent call result %v", v)
		}
	})
}

func TestCtxCallWhenChains(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES})
	final := w.NewFuture(0)
	var lay gas.Layout
	var step2 parcel.ActionID
	step1 := w.Register("step1", func(c *Ctx) {
		dep := c.World().NewFuture(c.Rank())
		// Chain: when dep fires, run step2 at block 1.
		c.CallWhen(dep, lay.BlockAt(1), step2, []byte{1})
		c.ContinueTo(dep.G, nil) // fire the dependency ourselves
	})
	step2 = w.Register("step2", func(c *Ctx) {
		c.ContinueTo(final.G, []byte{99})
	})
	w.Start()
	var err error
	lay, err = w.AllocCyclic(0, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	w.Proc(0).Invoke(lay.BlockAt(0), step1, nil)
	v := w.MustWait(final)
	if len(v) != 1 || v[0] != 99 {
		t.Fatalf("chain result %v", v)
	}
}

func TestMigrateMany(t *testing.T) {
	agasMatrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocLocal(0, 128, 6)
		if err != nil {
			t.Fatal(err)
		}
		blocks := make([]gas.GVA, 6)
		dests := make([]int, 6)
		for d := range blocks {
			blocks[d] = lay.BlockAt(uint32(d))
			dests[d] = 1 + d%3
		}
		gate, futs := w.Proc(0).MigrateMany(blocks, dests)
		w.MustWait(gate)
		for i, f := range futs {
			if st := MigrateStatus(f.Value()); st != MigrateOK {
				t.Fatalf("move %d status %d", i, st)
			}
		}
		for d := range blocks {
			if _, ok := w.Locality(dests[d]).Store().Get(blocks[d].Block()); !ok {
				t.Fatalf("block %d not at rank %d", d, dests[d])
			}
		}
	})
}

func TestTwoTierTopologyThroughRuntime(t *testing.T) {
	lat := func(dst int) netsim.VTime {
		w := testWorld(t, Config{
			Ranks: 8, Mode: AGASNM, Engine: EngineDES,
			Topology: netsim.NewTwoTier(4, 2.0),
		})
		w.Start()
		lay, err := w.AllocCyclic(0, 4096, 8)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(uint32(dst))
		buf := make([]byte, 8)
		w.MustWait(w.Proc(0).Put(g, buf))
		start := w.Now()
		w.MustWait(w.Proc(0).Put(g, buf))
		return w.Now() - start
	}
	intra, inter := lat(1), lat(7)
	if inter <= intra {
		t.Fatalf("inter-pod put (%v) not slower than intra-pod (%v)", inter, intra)
	}
}

func TestCtxAccessors(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES})
	probe := w.Register("probe", func(c *Ctx) {
		if c.Ranks() != 2 || c.World() != w {
			c.l.w.fail("ctx accessors broken")
		}
		if c.Now() < 0 {
			c.l.w.fail("ctx Now broken")
		}
		c.Charge(100) // must not blow up
		// Local on a foreign block must be nil.
		if c.Local(gas.New(1, 99999, 0)) != nil {
			c.l.w.fail("Local returned data for absent block")
		}
		c.Continue(nil)
	})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Call(lay.BlockAt(0), probe, nil))
}

func TestContinueWithoutContinuationIsNoop(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: PGAS, Engine: EngineDES})
	fire := w.Register("fire", func(c *Ctx) {
		c.Continue([]byte{1}) // parcel has no continuation; must not send
	})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Proc(0).Invoke(lay.BlockAt(0), fire, nil)
	w.Drain()
	// Nothing to assert beyond "no panic / no stray parcel error".
}
