package runtime

import (
	"nmvgas/internal/agas"
	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/nmagas"
	"nmvgas/internal/parcel"
)

// nmSpace is the paper's network-managed AGAS: the host injects with
// netsim.ByGVA and the NIC translates, forwards in-network, and repairs
// its own tables. The host keeps only the authoritative home directory;
// every change to it is mirrored into NIC state at the migration
// protocol points (BeginMigrate/CommitMigrate/FinishMigrate).

var nmCaps = Caps{Name: "agas-nm", Migration: true, NICTranslation: true, Replication: true}

func nmBuilder() spaceBuilder {
	return spaceBuilder{
		caps: nmCaps,
		initWorld: func(w *World) {
			// The DES fabric gets a mirror pushing directory changes
			// into simulated NIC state; the goroutine engine mirrors
			// through chanNet's per-rank tables instead.
			if w.fab != nil {
				w.mirror = nmagas.NewMirror(w.fab, w.cfg.NMUpdate)
			}
		},
		newLocal: func(l *Locality) AddressSpace {
			return &nmSpace{l: l, dir: agas.NewDirectory()}
		},
	}
}

type nmSpace struct {
	l *Locality
	// dir is authoritative for blocks homed at this locality.
	dir *agas.Directory
}

func (s *nmSpace) Caps() Caps { return nmCaps }

func (s *nmSpace) InstallInitial(gas.BlockID) {}

// Translate delegates to the NIC; software only injects.
func (s *nmSpace) Translate(gas.GVA) int { return netsim.ByGVA }

func (s *nmSpace) OwnerHint(b gas.BlockID, home int) int {
	if s.l.rank == home {
		return s.dir.Resolve(b, home)
	}
	return home
}

func (s *nmSpace) OnStaleDelivery(m *netsim.Message, p *parcel.Parcel) {
	// The NIC normally repairs this below the host; reaching here means
	// the message was host-delivered in the window between a NIC
	// routing decision and a migration completing. The NIC's
	// authoritative state (tombstone or home mirror) or the home
	// directory knows where the block went — rescue by re-routing.
	l := s.l
	b := m.Target.Block()
	if owner, ok := s.rescueTarget(b, m.Target.Home()); ok {
		fwd := *m
		l.routeToExplicit(&fwd, owner)
		return
	}
	if l.relStaleDrop(m) {
		return
	}
	if p != nil {
		l.w.fail("rank %d (nm): parcel %v for non-resident block %d", l.rank, p, b)
	}
	l.w.fail("rank %d (nm): one-sided fault on block %d", l.rank, b)
}

// rescueTarget finds where to redirect host-delivered traffic for a
// block that left this locality mid-delivery: the NIC's authoritative
// route first, then the home directory.
func (s *nmSpace) rescueTarget(b gas.BlockID, home int) (int, bool) {
	l := s.l
	if owner, ok := l.w.net.route(l.rank, b); ok && owner != l.rank {
		return owner, true
	}
	if l.rank == home {
		if owner, ok := s.dir.Owner(b); ok && owner != l.rank {
			return owner, true
		}
	}
	return 0, false
}

// LearnOwner is a no-op: owner corrections flow through NIC state
// (CtlTableUpdate pushes and NACK repair), not host software.
func (s *nmSpace) LearnOwner(gas.BlockID, int) {}

func (s *nmSpace) BeginMigrate(b gas.BlockID) {
	// Route-to-self steers misrouted traffic to this host while the
	// block is pinned, so it queues rather than bouncing.
	l := s.l
	l.exec.Charge(l.w.cfg.Model.NICUpdate)
	l.w.net.installRoute(l.rank, b, l.rank)
}

func (s *nmSpace) InstallMigrated(b gas.BlockID) {
	l := s.l
	l.exec.Charge(l.w.cfg.Model.NICUpdate)
	l.w.net.clearResident(l.rank, b)
}

func (s *nmSpace) CommitMigrate(b gas.BlockID, newOwner int) {
	l := s.l
	s.dir.Set(b, newOwner, l.rank)
	l.exec.Charge(l.w.cfg.Model.NICUpdate)
	l.w.net.commitAtHome(l.rank, b, newOwner)
}

func (s *nmSpace) FinishMigrate(b gas.BlockID, newOwner int) {
	l := s.l
	l.exec.Charge(l.w.cfg.Model.NICUpdate)
	l.w.net.installRoute(l.rank, b, newOwner)
}

func (s *nmSpace) AbortMigrate(b gas.BlockID) {
	// Undo BeginMigrate's route-to-self so traffic resolves normally
	// again.
	l := s.l
	l.exec.Charge(l.w.cfg.Model.NICUpdate)
	l.w.net.clearResident(l.rank, b)
}

func (s *nmSpace) HomeOwner(b gas.BlockID) int {
	return s.dir.Resolve(b, s.l.rank)
}

func (s *nmSpace) OnFree(b gas.BlockID, home int) {
	s.dir.DropReplicas(b)
	if s.l.rank == home {
		s.dir.Drop(b)
	}
}

func (s *nmSpace) InstallReplicas(b gas.BlockID, master int, holders []int) {
	// The replica set lives in the network: non-holder ranks get a NIC
	// read route to a nearby replica, so reads of hot blocks resolve in
	// the fabric with zero host detours. Holders and the master serve
	// reads from local memory.
	l := s.l
	r := l.rank
	if r == master {
		return
	}
	for _, h := range holders {
		if h == r {
			return
		}
	}
	l.w.net.installReadRoute(r, b, l.w.readTarget(r, master, holders))
}

func (s *nmSpace) DropReplicas(b gas.BlockID) {
	s.l.w.net.dropReadRoute(s.l.rank, b)
}

// ReadRoute is a no-op: read steering happens in the NIC, not in host
// software.
func (s *nmSpace) ReadRoute(gas.BlockID) (int, bool) { return 0, false }

func (s *nmSpace) Directory() *agas.Directory   { return s.dir }
func (s *nmSpace) Cache() *agas.SWCache         { return nil }
func (s *nmSpace) Tombstones() *agas.Tombstones { return nil }
