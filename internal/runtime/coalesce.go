package runtime

import (
	"sync"
	"time"

	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

// Parcel coalescing: small active messages bound for the same locality
// are bundled into one wire message, amortizing per-message injection and
// NIC occupancy at the price of added latency and — under AGAS — a
// detour, because a batch is addressed to a *locality*, so parcels whose
// block migrated away from the batch target pay a re-route on arrival.
// This is the classic message-driven-runtime trade (cf. the coalescing
// discussions in this group's SSSP papers), exposed as a config knob and
// measured by experiment F13.

// CoalesceConfig enables batching when MaxParcels > 1.
type CoalesceConfig struct {
	// MaxParcels flushes a destination's buffer at this many parcels.
	MaxParcels int
	// MaxBytes flushes earlier if the accumulated payload exceeds this
	// (0 = 64 KiB default).
	MaxBytes int
	// MaxDelay bounds how long a lone parcel may wait for companions
	// (simulated time; under the goroutine engine it is scaled to wall
	// clock through Config.GoTimeScale; 0 = 2 µs default).
	MaxDelay netsim.VTime
}

func (c CoalesceConfig) enabled() bool { return c.MaxParcels > 1 }

func (c CoalesceConfig) maxBytes() int {
	if c.MaxBytes > 0 {
		return c.MaxBytes
	}
	return 64 << 10
}

func (c CoalesceConfig) maxDelay() netsim.VTime {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 2 * netsim.Microsecond
}

// coalescer buffers encoded parcels per destination rank.
type coalescer struct {
	l   *Locality
	cfg CoalesceConfig

	mu   sync.Mutex
	bufs map[int]*coalBuf
}

type coalBuf struct {
	encs    [][]byte
	bytes   int
	pending bool // a delayed flush is scheduled
}

func newCoalescer(l *Locality, cfg CoalesceConfig) *coalescer {
	return &coalescer{l: l, cfg: cfg, bufs: make(map[int]*coalBuf)}
}

// add buffers one encoded parcel for dst, flushing on thresholds and
// arming the delay flush on first use.
func (c *coalescer) add(dst int, enc []byte) {
	c.mu.Lock()
	b := c.bufs[dst]
	if b == nil {
		b = &coalBuf{}
		c.bufs[dst] = b
	}
	b.encs = append(b.encs, enc)
	b.bytes += len(enc)
	full := len(b.encs) >= c.cfg.MaxParcels || b.bytes >= c.cfg.maxBytes()
	arm := !full && !b.pending
	if arm {
		b.pending = true
	}
	c.mu.Unlock()

	if full {
		c.flush(dst)
		return
	}
	if arm {
		if c.l.w.eng != nil {
			c.l.w.eng.After(c.cfg.maxDelay(), func() { c.flush(dst) })
		} else {
			time.AfterFunc(c.l.w.goWall(c.cfg.maxDelay()), func() { c.flush(dst) })
		}
	}
}

// flush sends dst's buffer as one batch message.
func (c *coalescer) flush(dst int) {
	c.mu.Lock()
	b := c.bufs[dst]
	if b == nil || len(b.encs) == 0 {
		if b != nil {
			b.pending = false
		}
		c.mu.Unlock()
		return
	}
	encs := b.encs
	bytes := b.bytes
	c.bufs[dst] = &coalBuf{}
	c.mu.Unlock()

	payload := make([]byte, 0, bytes+4*len(encs))
	for _, e := range encs {
		payload = parcel.PutU32(payload, uint32(len(e)))
		payload = append(payload, e...)
	}
	m := netsim.NewMessage()
	m.Kind = kBatch
	m.Src = c.l.rank
	m.Target = c.l.w.LocalityGVA(dst)
	m.Payload = payload
	m.Wire = len(payload)
	// A batch targets the locality block, which is always resident, so
	// routing is plain rank addressing in every mode.
	c.l.exec.Exec(0, func() { c.l.inject(m, dst) })
}

// FlushAll forces out every pending buffer (drivers call this before
// quiescing a measurement).
func (l *Locality) FlushAll() {
	if l.coal == nil {
		return
	}
	l.coal.mu.Lock()
	dsts := make([]int, 0, len(l.coal.bufs))
	for d := range l.coal.bufs {
		dsts = append(dsts, d)
	}
	l.coal.mu.Unlock()
	for _, d := range dsts {
		l.coal.flush(d)
	}
}

// onBatch unbundles at the receiving host: resident targets execute
// directly; others re-route (the added hop coalescing risks under
// migration).
func (l *Locality) onBatch(m *netsim.Message) {
	payload := m.Payload
	for off := 0; off+4 <= len(payload); {
		n := int(parcel.U32(payload, off))
		off += 4
		enc := payload[off : off+n]
		off += n
		p, err := parcel.Decode(enc)
		if err != nil {
			l.w.fail("rank %d: undecodable batched parcel: %v", l.rank, err)
		}
		// Sub-messages alias the batch payload's backing array; recycling
		// the batch envelope only drops its pointer, so the aliases stay
		// valid.
		sub := netsim.NewMessage()
		sub.Kind = kParcel
		sub.Src = p.Src
		sub.Target = p.Target
		sub.Payload = enc
		sub.Wire = len(enc)
		sub.Block = p.Target.Block()
		if l.resident(p.Target.Block()) {
			l.exec.Charge(l.w.cfg.Model.HandlerDispatch)
			l.execParcel(p, sub)
			continue
		}
		// Not here (migrated, or mid-move): give it back to the routing
		// machinery.
		if l.queueIfMoving(p.Target.Block(), sub) {
			continue
		}
		l.routeMsg(sub)
	}
}
