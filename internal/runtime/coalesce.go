package runtime

import (
	"sync"
	"time"

	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

// Parcel coalescing: small active messages bound for the same locality
// are bundled into one wire message, amortizing per-message injection and
// NIC occupancy at the price of added latency. Each buffered parcel keeps
// a GVA sub-header in the batch payload (netsim.AppendScatterRecord), so
// under the network-managed space the batch is routed ByGVA and *split by
// the NIC* on arrival: resident records reach the host in one up-call,
// movers are forwarded in-network — the host re-route detour the
// software-managed baseline pays (and Stats.BatchReroutes counts) never
// happens. This is the trade experiment F13 measures.
//
// The buffers are sharded per destination rank, each behind its own
// mutex, and the flush delay adapts: an EWMA of the inter-add gap per
// destination collapses the delay to zero once the observed load is too
// sparse for companions to be worth waiting for.

// CoalesceConfig enables batching when MaxParcels > 1.
type CoalesceConfig struct {
	// MaxParcels flushes a destination's buffer at this many parcels.
	MaxParcels int
	// MaxBytes flushes earlier if the accumulated payload exceeds this
	// (0 = 64 KiB default).
	MaxBytes int
	// MaxDelay bounds how long a lone parcel may wait for companions
	// (simulated time; under the goroutine engine it is scaled to wall
	// clock through Config.GoTimeScale; 0 = 2 µs default). It is also
	// the adaptive cutoff: once the EWMA inter-add gap for a destination
	// reaches MaxDelay, buffered parcels flush immediately instead of
	// waiting for companions that statistics say are not coming.
	MaxDelay netsim.VTime
}

func (c CoalesceConfig) enabled() bool { return c.MaxParcels > 1 }

func (c CoalesceConfig) maxBytes() int {
	if c.MaxBytes > 0 {
		return c.MaxBytes
	}
	return 64 << 10
}

func (c CoalesceConfig) maxDelay() netsim.VTime {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 2 * netsim.Microsecond
}

// coalescer buffers encoded parcels per destination rank.
type coalescer struct {
	l        *Locality
	cfg      CoalesceConfig
	maxBytes int
	maxDelay netsim.VTime
	// scatter marks batches for in-NIC splitting (network-managed
	// space); other spaces unbundle host-side.
	scatter bool
	// epoch anchors the goroutine engine's gap clock.
	epoch time.Time
	bufs  []coalBuf // one per destination rank, independently locked
}

// coalBuf is one destination's buffer. The payload is assembled
// incrementally — add appends the scatter record straight into recs, so
// a flush hands the finished batch payload off without a gather copy.
type coalBuf struct {
	mu    sync.Mutex
	recs  []byte
	count int
	// gen increments on every flush; a delayed flush armed against one
	// generation is a no-op for any later one. This is what keeps a
	// timer armed by the first add of a since-flushed buffer from
	// draining its successor's lone parcels early.
	gen     uint64
	pending bool // a delayed flush is armed for the current generation
	// firstAdd is the latency clock at the generation's first add
	// (Config.Metrics only): the flush-delay histogram records how long
	// the oldest buffered parcel waited.
	firstAdd int64

	// Adaptive-delay state: an EWMA of the gap between consecutive adds
	// (simulated time). haveGap distinguishes "no estimate yet" — a cold
	// buffer always waits the full configured delay.
	lastAdd netsim.VTime
	ewmaGap netsim.VTime
	haveGap bool
}

func newCoalescer(l *Locality, cfg CoalesceConfig) *coalescer {
	return &coalescer{
		l:        l,
		cfg:      cfg,
		maxBytes: cfg.maxBytes(),
		maxDelay: cfg.maxDelay(),
		scatter:  l.w.caps.NICTranslation,
		epoch:    time.Now(),
		bufs:     make([]coalBuf, l.w.cfg.Ranks),
	}
}

// now returns the coalescer's gap clock: simulated time on DES, wall
// clock scaled back to simulated nanoseconds on the goroutine engine.
func (c *coalescer) now() netsim.VTime {
	if c.l.eng != nil {
		return c.l.eng.Now()
	}
	return netsim.VTime(time.Since(c.epoch).Nanoseconds() / int64(c.l.w.cfg.GoTimeScale))
}

// gapClamp bounds a single observed gap's contribution to the EWMA, so
// one long idle period does not instantly flip a hot destination into
// the no-wait regime.
func (c *coalescer) gapClamp() netsim.VTime { return 2 * c.maxDelay }

// add buffers one encoded parcel for dst, flushing on thresholds, on a
// collapsed adaptive delay, or via the armed delay timer.
func (c *coalescer) add(dst int, enc []byte) {
	b := &c.bufs[dst]
	now := c.now()
	b.mu.Lock()
	// The flush-now decision uses the estimate as of *previous* adds: a
	// single long gap must not bypass the delay by itself (the lone
	// parcel after a burst still waits, preserving the latency trade the
	// experiments measure), but sustained sparse traffic converges the
	// EWMA past MaxDelay and stops paying the pointless wait.
	collapse := b.haveGap && b.ewmaGap >= c.maxDelay
	if b.count > 0 || b.haveGap || b.lastAdd != 0 {
		gap := now - b.lastAdd
		if gap < 0 {
			gap = 0
		}
		if max := c.gapClamp(); gap > max {
			gap = max
		}
		if !b.haveGap {
			b.ewmaGap = gap
			b.haveGap = true
		} else {
			b.ewmaGap += (gap - b.ewmaGap) / 8
		}
	}
	b.lastAdd = now
	b.recs = netsim.AppendScatterRecord(b.recs, enc)
	b.count++
	if b.count == 1 && c.l.w.lat != nil {
		b.firstAdd = c.l.w.latNow()
	}
	full := b.count >= c.cfg.MaxParcels || len(b.recs) >= c.maxBytes
	if full || collapse {
		payload := b.take(c)
		b.mu.Unlock()
		c.send(dst, payload)
		return
	}
	if !b.pending {
		b.pending = true
		gen := b.gen
		b.mu.Unlock()
		c.armFlush(dst, gen)
		return
	}
	b.mu.Unlock()
}

// take detaches the assembled payload and advances the generation,
// recording the oldest parcel's wait into the flush-delay histogram.
// Caller holds b.mu.
func (b *coalBuf) take(c *coalescer) []byte {
	if w := c.l.w; w.lat != nil {
		w.lat.coalesceFlush.Record(w.latNow() - b.firstAdd)
	}
	payload := b.recs
	b.recs = nil
	b.count = 0
	b.gen++
	b.pending = false
	return payload
}

// armFlush schedules the delayed flush for the given buffer generation.
func (c *coalescer) armFlush(dst int, gen uint64) {
	if l := c.l; l.eng != nil {
		// The flush drains this locality's own buffer and injects from its
		// NIC: rank-local work, armed on the rank's own timeline.
		l.eng.AfterRank(l.rank, c.maxDelay, func() { c.flushGen(dst, gen) })
		return
	}
	time.AfterFunc(c.l.w.goWall(c.maxDelay), func() { c.flushGen(dst, gen) })
}

// flushGen is the delayed flush: it fires only if the buffer still holds
// the generation that armed it.
func (c *coalescer) flushGen(dst int, gen uint64) {
	b := &c.bufs[dst]
	b.mu.Lock()
	if b.gen != gen || b.count == 0 {
		if b.gen == gen {
			b.pending = false
		}
		b.mu.Unlock()
		return
	}
	payload := b.take(c)
	b.mu.Unlock()
	c.send(dst, payload)
}

// flush forces dst's buffer out regardless of generation.
func (c *coalescer) flush(dst int) {
	b := &c.bufs[dst]
	b.mu.Lock()
	if b.count == 0 {
		b.mu.Unlock()
		return
	}
	payload := b.take(c)
	b.mu.Unlock()
	c.send(dst, payload)
}

// send injects the finished batch. Under the network-managed space the
// batch is addressed ByGVA and marked Scatter, so NICs split it against
// their own tables; elsewhere it is rank-addressed and unbundled by the
// destination host. On the goroutine engine the injection happens inline
// on the calling goroutine — the transport is thread-safe, and it makes
// FlushAll synchronous (when FlushAll returns, the batches are in the
// destination mailboxes).
func (c *coalescer) send(dst int, payload []byte) {
	m := netsim.NewMessage()
	m.Kind = kBatch
	m.Src = c.l.rank
	m.Target = c.l.w.LocalityGVA(dst)
	m.Payload = payload
	m.Wire = len(payload)
	if c.scatter {
		m.Scatter = true
		if c.l.w.eng == nil {
			c.l.inject(m, netsim.ByGVA)
			return
		}
		c.l.exec.Exec(0, func() { c.l.inject(m, netsim.ByGVA) })
		return
	}
	// A batch targets the locality block, which is always resident, so
	// routing is plain rank addressing without NIC translation.
	if c.l.w.eng == nil {
		c.l.inject(m, dst)
		return
	}
	c.l.exec.Exec(0, func() { c.l.inject(m, dst) })
}

// FlushAll forces out every pending buffer (drivers call this before
// quiescing a measurement). On the goroutine engine it is synchronous:
// the flush injections have reached the transport when it returns.
func (l *Locality) FlushAll() {
	if l.coal == nil {
		return
	}
	for d := range l.coal.bufs {
		l.coal.flush(d)
	}
}

// onBatch unbundles at the receiving host: resident targets execute
// directly; others re-route. Under NIC scatter the re-route leg is the
// exception (hop-budget exhaustion, a residency race with a migration
// commit) — Stats.BatchReroutes counts it, and the scatter acceptance
// test pins it to zero for a plain migrating workload.
func (l *Locality) onBatch(m *netsim.Message) {
	for r := netsim.NewScatterReader(m.Payload); ; {
		_, enc, ok := r.Next()
		if !ok {
			break
		}
		p, err := parcel.Decode(enc)
		if err != nil {
			l.w.fail("rank %d: undecodable batched parcel: %v", l.rank, err)
		}
		// Sub-messages alias the batch payload's backing array; recycling
		// the batch envelope only drops its pointer, so the aliases stay
		// valid.
		sub := netsim.NewMessage()
		sub.Kind = kParcel
		sub.Src = p.Src
		sub.Target = p.Target
		sub.Payload = enc
		sub.Wire = len(enc)
		sub.Block = p.Target.Block()
		sub.OpID = p.OpID
		if l.resident(p.Target.Block()) {
			l.exec.Charge(l.w.cfg.Model.HandlerDispatch)
			l.execParcel(p, sub)
			continue
		}
		// Not here (migrated, or mid-move): give it back to the routing
		// machinery.
		if l.queueIfMoving(p.Target.Block(), sub) {
			continue
		}
		l.Stats.BatchReroutes.Inc()
		l.routeMsg(sub)
	}
}
