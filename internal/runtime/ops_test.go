package runtime

import (
	"bytes"
	"testing"

	"nmvgas/internal/lco"
	"nmvgas/internal/parcel"
)

func TestPutGetRoundTrip(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocCyclic(0, 1024, 8)
		if err != nil {
			t.Fatal(err)
		}
		// Remote put then get, through every block (hits every rank).
		for d := uint32(0); d < 8; d++ {
			g := lay.BlockAt(d).WithOffset(16)
			data := bytes.Repeat([]byte{byte(d + 1)}, 64)
			w.MustWait(w.Proc(3).Put(g, data))
			got := w.MustWait(w.Proc(1).Get(g, 64))
			if !bytes.Equal(got, data) {
				t.Fatalf("block %d: got %v", d, got[:4])
			}
		}
	})
}

func TestPutGetLocalFastPath(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 2, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocLocal(0, 256, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)
		w.MustWait(w.Proc(0).Put(g, []byte{9, 8, 7}))
		got := w.MustWait(w.Proc(0).Get(g, 3))
		if !bytes.Equal(got, []byte{9, 8, 7}) {
			t.Fatalf("local round trip got %v", got)
		}
		if w.Locality(0).Stats.LocalRuns.Load() == 0 {
			t.Fatal("local ops did not take the local fast path")
		}
	})
}

func TestParcelCallWithContinuation(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 3, Mode: mode, Engine: eng})
		double := w.Register("double", func(c *Ctx) {
			v := parcel.U64(c.P.Payload, 0)
			c.Continue(parcel.PutU64(nil, v*2))
		})
		w.Start()
		lay, err := w.AllocCyclic(0, 64, 3)
		if err != nil {
			t.Fatal(err)
		}
		for d := uint32(0); d < 3; d++ {
			v := w.MustWait(w.Proc(2).Call(lay.BlockAt(d), double, parcel.PutU64(nil, uint64(d+10))))
			if got := parcel.U64(v, 0); got != uint64(d+10)*2 {
				t.Fatalf("call returned %d", got)
			}
		}
	})
}

func TestActionRunsAtOwner(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		where := w.Register("where", func(c *Ctx) {
			if c.Local(c.P.Target) == nil {
				c.l.w.fail("action ran where target is not resident")
			}
			c.Continue(parcel.PutU64(nil, uint64(c.Rank())))
		})
		w.Start()
		lay, err := w.AllocCyclic(1, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		for d := uint32(0); d < 8; d++ {
			v := w.MustWait(w.Proc(0).Call(lay.BlockAt(d), where, nil))
			if got, want := int(parcel.U64(v, 0)), lay.HomeOf(d); got != want {
				t.Fatalf("block %d ran at %d, want %d", d, got, want)
			}
		}
	})
}

func TestActionMutatesBlockInPlace(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 2, Mode: mode, Engine: eng})
		incr := w.Register("incr", func(c *Ctx) {
			data := c.Local(c.P.Target)
			data[0]++
			c.Continue(nil)
		})
		w.Start()
		lay, err := w.AllocCyclic(0, 64, 2)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(1) // lives on rank 1
		for i := 0; i < 5; i++ {
			w.MustWait(w.Proc(0).Call(g, incr, nil))
		}
		got := w.MustWait(w.Proc(0).Get(g, 1))
		if got[0] != 5 {
			t.Fatalf("counter = %d", got[0])
		}
	})
}

func TestLCOSetViaParcel(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 2, Mode: mode, Engine: eng})
		w.Start()
		fut := w.NewFuture(1) // LCO lives on rank 1
		w.Proc(0).Invoke(fut.G, ALCOSet, []byte{42})
		v, err := w.Wait(fut)
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != 1 || v[0] != 42 {
			t.Fatalf("future value %v", v)
		}
	})
}

func TestReduceLCOAcrossRanks(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		const ranks = 4
		w := testWorld(t, Config{Ranks: ranks, Mode: mode, Engine: eng})
		contrib := w.Register("contrib", func(c *Ctx) {
			c.Continue(lco.EncodeI64(int64(c.Rank() + 1)))
		})
		w.Start()
		red := w.NewReduce(0, ranks, lco.SumI64)
		for r := 0; r < ranks; r++ {
			w.Proc(r).l.exec.Exec(0, func() {})
		}
		for r := 0; r < ranks; r++ {
			r := r
			w.Proc(r).run(func() {
				w.locs[r].SendParcel(&parcel.Parcel{
					Action: contrib, Target: w.LocalityGVA(r),
					CAction: ALCOSet, CTarget: red.G,
				})
			})
		}
		v, err := w.Wait(red)
		if err != nil {
			t.Fatal(err)
		}
		if got := lco.DecodeI64(v); got != 1+2+3+4 {
			t.Fatalf("reduce = %d", got)
		}
	})
}

func TestManyConcurrentOps(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng, Workers: 2})
		bump := w.Register("bump", func(c *Ctx) {
			c.Continue(nil)
		})
		w.Start()
		lay, err := w.AllocCyclic(0, 4096, 16)
		if err != nil {
			t.Fatal(err)
		}
		const n = 200
		gate := w.NewAndGate(0, n)
		p := w.Proc(0)
		p.run(func() {
			for i := 0; i < n; i++ {
				w.locs[0].SendParcel(&parcel.Parcel{
					Action: bump, Target: lay.BlockAt(uint32(i % 16)),
					CAction: ALCOSet, CTarget: gate.G,
				})
			}
		})
		if _, err := w.Wait(gate); err != nil {
			t.Fatal(err)
		}
	})
}

func TestGetRejectsOutOfBounds(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: PGAS, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds get did not fail loudly")
		}
	}()
	w.MustWait(w.Proc(0).Get(lay.BlockAt(1).WithOffset(60), 16))
}

func TestPutToLCOBlockFails(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: PGAS, Engine: EngineDES})
	w.Start()
	fut := w.NewFuture(1)
	defer func() {
		if recover() == nil {
			t.Fatal("put to an LCO block did not fail loudly")
		}
	}()
	w.MustWait(w.Proc(0).Put(fut.G, []byte{1}))
}

func TestGVAArithmeticAddressing(t *testing.T) {
	// Writes through Layout.At land where reads through Layout.At find
	// them, across block boundaries.
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocCyclic(0, 32, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []uint64{0, 31, 32, 95, 191} {
		g := lay.At(idx)
		w.MustWait(w.Proc(0).Put(g, []byte{byte(idx)}))
		got := w.MustWait(w.Proc(2).Get(g, 1))
		if got[0] != byte(idx) {
			t.Fatalf("index %d: got %d", idx, got[0])
		}
	}
}
