package runtime

import (
	"bytes"
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
)

// agasModes are the modes that support migration.
var agasModes = []Mode{AGASSW, AGASNM}

func agasMatrix(t *testing.T, fn func(t *testing.T, mode Mode, eng EngineKind)) {
	t.Helper()
	for _, m := range agasModes {
		for _, e := range allEngines {
			m, e := m, e
			t.Run(m.String()+"/"+e.String(), func(t *testing.T) { fn(t, m, e) })
		}
	}
}

func TestMigrateMovesDataAndOwnership(t *testing.T) {
	agasMatrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocCyclic(0, 512, 4)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(1) // home rank 1
		payload := bytes.Repeat([]byte{0xCD}, 100)
		w.MustWait(w.Proc(0).Put(g.WithOffset(8), payload))

		st := w.MustWait(w.Proc(0).Migrate(g, 3))
		if MigrateStatus(st) != MigrateOK {
			t.Fatalf("migrate status %d", MigrateStatus(st))
		}
		b := g.Block()
		if _, ok := w.Locality(1).Store().Get(b); ok {
			t.Fatal("block still resident at old owner")
		}
		blk, ok := w.Locality(3).Store().Get(b)
		if !ok {
			t.Fatal("block not resident at new owner")
		}
		if !bytes.Equal(blk.Data[8:108], payload) {
			t.Fatal("block data lost in migration")
		}
		if owner := w.Locality(1).Directory().Resolve(b, 1); owner != 3 {
			t.Fatalf("home directory says owner %d", owner)
		}
		// Data path still works after migration, from every rank.
		for r := 0; r < 4; r++ {
			got := w.MustWait(w.Proc(r).Get(g.WithOffset(8), 100))
			if !bytes.Equal(got, payload) {
				t.Fatalf("rank %d reads wrong data after migration", r)
			}
		}
	})
}

func TestMigrateToSelfIsNoop(t *testing.T) {
	agasMatrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 2, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocCyclic(0, 64, 2)
		if err != nil {
			t.Fatal(err)
		}
		st := w.MustWait(w.Proc(0).Migrate(lay.BlockAt(1), 1))
		if MigrateStatus(st) != MigrateOK {
			t.Fatalf("status %d", MigrateStatus(st))
		}
		if _, ok := w.Locality(1).Store().Get(lay.BlockAt(1).Block()); !ok {
			t.Fatal("no-op migration lost the block")
		}
	})
}

func TestMigrateRejectsPinnedAndBadTargets(t *testing.T) {
	agasMatrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 2, Mode: mode, Engine: eng})
		w.Start()
		fut := w.NewFuture(1)
		if st := w.MustWait(w.Proc(0).Migrate(fut.G, 0)); MigrateStatus(st) != MigratePinned {
			t.Fatalf("LCO migrate status %d", MigrateStatus(st))
		}
		if st := w.MustWait(w.Proc(0).Migrate(w.LocalityGVA(1), 0)); MigrateStatus(st) != MigratePinned {
			t.Fatalf("infrastructure migrate status %d", MigrateStatus(st))
		}
		lay, err := w.AllocCyclic(0, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		if st := w.MustWait(w.Proc(0).Migrate(lay.BlockAt(0), 9)); MigrateStatus(st) != MigrateBadTarget {
			t.Fatalf("bad-target status %d", MigrateStatus(st))
		}
	})
}

func TestPGASMigrationRefused(t *testing.T) {
	for _, eng := range allEngines {
		w := testWorld(t, Config{Ranks: 2, Mode: PGAS, Engine: eng})
		w.Start()
		lay, err := w.AllocCyclic(0, 64, 2)
		if err != nil {
			t.Fatal(err)
		}
		st := w.MustWait(w.Proc(0).Migrate(lay.BlockAt(1), 0))
		if MigrateStatus(st) != MigratePinned {
			t.Fatalf("pgas migrate status %d", MigrateStatus(st))
		}
	}
}

func TestMigrateChain(t *testing.T) {
	// Repeated migration around the world; every hop must keep data and
	// routing correct (exercises chained tombstones).
	agasMatrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocCyclic(0, 128, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)
		w.MustWait(w.Proc(0).Put(g, []byte{1, 2, 3, 4}))
		route := []int{2, 3, 1, 2, 0, 3}
		for _, to := range route {
			if st := w.MustWait(w.Proc(0).Migrate(g, to)); MigrateStatus(st) != MigrateOK {
				t.Fatalf("hop to %d failed", to)
			}
			got := w.MustWait(w.Proc((to+1)%4).Get(g, 4))
			if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
				t.Fatalf("data wrong after hop to %d", to)
			}
		}
		if _, ok := w.Locality(3).Store().Get(g.Block()); !ok {
			t.Fatal("final owner missing block")
		}
	})
}

func TestTrafficDuringMigrationIsQueuedNotLost(t *testing.T) {
	agasMatrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 3, Mode: mode, Engine: eng})
		incr := w.Register("incr", func(c *Ctx) {
			data := c.Local(c.P.Target)
			v := parcel.U64(data, 0)
			copy(data, parcel.PutU64(nil, v+1))
			c.Continue(nil)
		})
		w.Start()
		lay, err := w.AllocCyclic(0, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)

		const n = 50
		gate := w.NewAndGate(0, n)
		mig := w.Proc(0).Migrate(g, 2)
		// Issue increments from every rank while the migration is in
		// flight; none may be lost or run against stale data.
		for i := 0; i < n; i++ {
			r := i % 3
			w.Proc(r).run(func() {
				w.locs[r].SendParcel(&parcel.Parcel{
					Action: incr, Target: g,
					CAction: ALCOSet, CTarget: gate.G,
				})
			})
		}
		w.MustWait(mig)
		w.MustWait(gate)
		got := w.MustWait(w.Proc(1).Get(g, 8))
		if v := parcel.U64(got, 0); v != n {
			t.Fatalf("counter = %d, want %d (lost or duplicated updates)", v, n)
		}
		if _, ok := w.Locality(2).Store().Get(g.Block()); !ok {
			t.Fatal("block did not land at rank 2")
		}
	})
}

func TestOneSidedOpsDuringMigration(t *testing.T) {
	agasMatrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 3, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocCyclic(0, 256, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)
		mig := w.Proc(0).Migrate(g, 1)
		var puts []*LCORef
		for i := 0; i < 10; i++ {
			puts = append(puts, w.Proc(2).Put(g.WithOffset(uint32(i)), []byte{byte(i + 1)}))
		}
		w.MustWait(mig)
		for _, p := range puts {
			w.MustWait(p)
		}
		got := w.MustWait(w.Proc(0).Get(g, 10))
		for i := 0; i < 10; i++ {
			if got[i] != byte(i+1) {
				t.Fatalf("byte %d = %d after racing puts", i, got[i])
			}
		}
	})
}

func TestMigrationFromInsideAction(t *testing.T) {
	// An action can trigger migration of another block and continue via
	// LCO — the runtime's own control parcels must compose with user
	// actions.
	agasMatrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 3, Mode: mode, Engine: eng})
		var g gas.GVA
		mover := w.Register("mover", func(c *Ctx) {
			c.Migrate(g, 2, c.P.CTarget)
		})
		w.Start()
		lay, err := w.AllocCyclic(0, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		g = lay.BlockAt(0)
		fut := w.NewFuture(0)
		w.Proc(1).Invoke(w.LocalityGVA(1), mover, nil)
		// The mover's continuation is empty; chain through explicit
		// future instead.
		w.Proc(1).run(func() {
			w.locs[1].MigrateAsync(g, 2, ALCOSet, fut.G)
		})
		if st := w.MustWait(fut); MigrateStatus(st) != MigrateOK {
			t.Fatalf("status %d", MigrateStatus(st))
		}
		if _, ok := w.Locality(2).Store().Get(g.Block()); !ok {
			t.Fatal("block not at rank 2")
		}
	})
}

func TestConcurrentMigrationsOfDifferentBlocks(t *testing.T) {
	agasMatrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocCyclic(0, 128, 8)
		if err != nil {
			t.Fatal(err)
		}
		for d := uint32(0); d < 8; d++ {
			w.MustWait(w.Proc(0).Put(lay.BlockAt(d), []byte{byte(d)}))
		}
		var migs []*LCORef
		for d := uint32(0); d < 8; d++ {
			migs = append(migs, w.Proc(int(d)%4).Migrate(lay.BlockAt(d), int(d+1)%4))
		}
		for _, m := range migs {
			if st := w.MustWait(m); MigrateStatus(st) != MigrateOK {
				t.Fatalf("status %d", MigrateStatus(st))
			}
		}
		for d := uint32(0); d < 8; d++ {
			got := w.MustWait(w.Proc(3).Get(lay.BlockAt(d), 1))
			if got[0] != byte(d) {
				t.Fatalf("block %d data lost", d)
			}
			if _, ok := w.Locality(int(d+1) % 4).Store().Get(lay.BlockAt(d).Block()); !ok {
				t.Fatalf("block %d not at its destination", d)
			}
		}
	})
}

func TestSerializedMigrationsOfSameBlock(t *testing.T) {
	// A second migrate request issued while the first is in flight must
	// queue behind it and then execute at the new owner.
	agasMatrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocCyclic(0, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)
		w.MustWait(w.Proc(0).Put(g, []byte{0xEE}))
		m1 := w.Proc(1).Migrate(g, 2)
		m2 := w.Proc(3).Migrate(g, 3)
		if st := w.MustWait(m1); MigrateStatus(st) != MigrateOK {
			t.Fatalf("first migrate status %d", MigrateStatus(st))
		}
		if st := w.MustWait(m2); MigrateStatus(st) != MigrateOK {
			t.Fatalf("second migrate status %d", MigrateStatus(st))
		}
		// The requests may serialize in either order; the invariants are
		// single residency, a consistent home directory, and intact,
		// reachable data.
		resident := -1
		for r := 0; r < 4; r++ {
			if _, ok := w.Locality(r).Store().Get(g.Block()); ok {
				if resident >= 0 {
					t.Fatalf("block resident at both %d and %d", resident, r)
				}
				resident = r
			}
		}
		if resident != 2 && resident != 3 {
			t.Fatalf("block ended at %d, want 2 or 3", resident)
		}
		if owner := w.Locality(0).Directory().Resolve(g.Block(), 0); owner != resident {
			t.Fatalf("directory says %d but block is at %d", owner, resident)
		}
		got := w.MustWait(w.Proc(1).Get(g, 1))
		if got[0] != 0xEE {
			t.Fatal("data lost across racing migrations")
		}
	})
}
