package runtime

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"nmvgas/internal/parcel"
)

func TestParseModeRoundTrip(t *testing.T) {
	tests := []struct {
		in      string
		want    Mode
		wantErr bool
	}{
		{in: "pgas", want: PGAS},
		{in: "agas-sw", want: AGASSW},
		{in: "agas-nm", want: AGASNM},
		{in: "mode(7)", want: Mode(7)},
		{in: "PGAS", wantErr: true},
		{in: "agas", wantErr: true},
		{in: "", wantErr: true},
		{in: "mode(x)", wantErr: true},
	}
	for _, tc := range tests {
		got, err := ParseMode(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseMode(%q): want error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMode(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Every valid mode's String round-trips, including the numeric
	// fallback form for out-of-range values.
	for m := PGAS; m <= Mode(5); m++ {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("round-trip %v: got %v, %v", m, got, err)
		}
	}
}

func TestParseEngineRoundTrip(t *testing.T) {
	tests := []struct {
		in      string
		want    EngineKind
		wantErr bool
	}{
		{in: "des", want: EngineDES},
		{in: "go", want: EngineGo},
		{in: "DES", wantErr: true},
		{in: "", wantErr: true},
		{in: "goroutine", wantErr: true},
	}
	for _, tc := range tests {
		got, err := ParseEngine(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseEngine(%q): want error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseEngine(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, e := range allEngines {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("round-trip %v: got %v, %v", e, got, err)
		}
	}
}

func TestSpacesEnumeration(t *testing.T) {
	sps := Spaces()
	if len(sps) != len(allModes) {
		t.Fatalf("Spaces() returned %d specs, want %d", len(sps), len(allModes))
	}
	for i, sp := range sps {
		if sp.Mode != allModes[i] {
			t.Errorf("spec %d has mode %v, want %v", i, sp.Mode, allModes[i])
		}
		if sp.String() != sp.Mode.String() {
			t.Errorf("spec %v string %q != mode string %q", sp.Mode, sp.String(), sp.Mode.String())
		}
		if sp.Caps != SpaceFor(sp.Mode).Caps {
			t.Errorf("spec %v caps disagree with SpaceFor", sp.Mode)
		}
	}
	// Capability sanity: exactly the PGAS baseline is static, exactly the
	// network-managed space has NIC translation.
	for _, sp := range sps {
		wantMig := sp.Mode != PGAS
		if sp.Caps.Migration != wantMig {
			t.Errorf("%v: Migration=%v, want %v", sp.Mode, sp.Caps.Migration, wantMig)
		}
		if got := sp.Caps.NICTranslation; got != (sp.Mode == AGASNM) {
			t.Errorf("%v: NICTranslation=%v", sp.Mode, got)
		}
	}
}

func TestConfigRequireMigration(t *testing.T) {
	_, err := NewWorld(Config{Ranks: 2, RequireMigration: true})
	if err == nil {
		t.Fatal("static space accepted a config that requires migration")
	}
	if !strings.Contains(err.Error(), "migration") {
		t.Fatalf("rejection does not mention migration: %v", err)
	}
	for _, sp := range Spaces() {
		if !sp.Caps.Migration {
			continue
		}
		w, err := NewWorldFor(sp, Config{Ranks: 2, RequireMigration: true})
		if err != nil {
			t.Fatalf("%v: migrating space rejected RequireMigration: %v", sp, err)
		}
		if !w.Caps().Migration {
			t.Fatalf("%v: world caps lost Migration", sp)
		}
		w.Stop()
	}
}

// TestAbortMigrateClearsRoute exercises the one strategy hook the normal
// protocol never reaches: undoing BeginMigrate's route-to-self.
func TestAbortMigrateClearsRoute(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(c.P.Payload) })
	w.Start()
	lay, err := w.AllocLocal(0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := lay.BlockAt(0).Block()

	sp := w.Locality(0).Space()
	sp.BeginMigrate(b)
	if o, ok := w.Fabric().NIC(0).Route(b); !ok || o != 0 {
		t.Fatalf("BeginMigrate did not install route-to-self: (%d, %v)", o, ok)
	}
	sp.AbortMigrate(b)
	if _, ok := w.Fabric().NIC(0).Route(b); ok {
		t.Fatal("AbortMigrate left the route-to-self installed")
	}
	// The block never moved; traffic must still resolve normally.
	v := w.MustWait(w.Proc(1).Call(lay.BlockAt(0), echo, []byte{42}))
	if len(v) != 1 || v[0] != 42 {
		t.Fatalf("post-abort call broken: %v", v)
	}
}

// TestGoEngineMigrationChurnRace hammers the goroutine engine with
// concurrent waited calls and migrations across every migrating address
// space. Run under -race it checks the strategy layer introduced no
// unsynchronized state; the final counters check it lost no work.
func TestGoEngineMigrationChurnRace(t *testing.T) {
	if testing.Short() {
		t.Skip("migration churn stress skipped in -short")
	}
	for _, sp := range Spaces() {
		if !sp.Caps.Migration {
			continue
		}
		sp := sp
		t.Run(sp.String(), func(t *testing.T) {
			const (
				ranks   = 4
				nblocks = 16
				calls   = 150
				migs    = 40
			)
			// Workers stays 0 so action bodies run inline on the locality
			// actor: block data access is serialized per locality.
			w, err := NewWorldFor(sp, Config{Ranks: ranks, Engine: EngineGo})
			if err != nil {
				t.Fatal(err)
			}
			defer w.Stop()
			incr := w.Register("incr", func(c *Ctx) {
				d := c.Local(c.P.Target)
				v := parcel.U64(d, 0)
				copy(d, parcel.PutU64(nil, v+1))
				c.Continue(nil)
			})
			w.Start()
			lay, err := w.AllocCyclic(0, 64, nblocks)
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000 + r)))
					for i := 0; i < calls; i++ {
						d := uint32(rng.Intn(nblocks))
						w.MustWait(w.Proc(r).Call(lay.BlockAt(d), incr, nil))
						if i%10 == 9 {
							w.MustWait(w.Proc(r).Get(lay.BlockAt(d), 8))
						}
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(99))
				for i := 0; i < migs; i++ {
					d := uint32(rng.Intn(nblocks))
					w.MustWait(w.Proc(0).Migrate(lay.BlockAt(d), rng.Intn(ranks)))
				}
			}()
			wg.Wait()

			var total uint64
			for d := uint32(0); d < nblocks; d++ {
				v := w.MustWait(w.Proc(0).Get(lay.BlockAt(d), 8))
				total += parcel.U64(v, 0)
			}
			if want := uint64(ranks * calls); total != want {
				t.Fatalf("lost updates under churn: counted %d, want %d", total, want)
			}
		})
	}
}
