package runtime

import (
	"testing"

	"nmvgas/internal/netsim"
)

// The goroutine engine reimplements the NIC's routing decisions in
// chanNet; these tests pin the policy behaviours there, mirroring the DES
// assertions in modes_test.go.

func goNMWorld(t *testing.T, pol netsim.Policy) *World {
	t.Helper()
	return testWorld(t, Config{
		Ranks: 4, Mode: AGASNM, Engine: EngineGo,
		Policy: pol, PolicySet: true,
	})
}

func TestChanNetForwardAndPushUpdates(t *testing.T) {
	w := goNMWorld(t, netsim.Policy{ForwardInNetwork: true, PushUpdates: true})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	w.MustWait(w.Proc(0).Migrate(g, 3))
	// First send from a third party must arrive (via in-network forward)
	// and teach the source table; the second goes direct.
	w.MustWait(w.Proc(2).Call(g, echo, nil))
	cn := w.net.(*chanNet)
	if o, ok := cn.nics[2].peekTable(g.Block()); !ok || o != 3 {
		t.Fatalf("source table not taught: %d,%v", o, ok)
	}
	w.MustWait(w.Proc(2).Call(g, echo, nil))
}

func TestChanNetNackPolicy(t *testing.T) {
	w := goNMWorld(t, netsim.Policy{ForwardInNetwork: false, PushUpdates: false})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	w.MustWait(w.Proc(0).Migrate(g, 3))
	w.MustWait(w.Proc(2).Call(g, echo, nil))
	if w.Locality(2).Stats.NICNacks.Load() == 0 {
		t.Fatal("no NACK processed under the NACK policy (go engine)")
	}
	// Table repaired by the NACK: next call completes without another.
	base := w.Locality(2).Stats.NICNacks.Load()
	w.MustWait(w.Proc(2).Call(g, echo, nil))
	if w.Locality(2).Stats.NICNacks.Load() != base {
		t.Fatal("second call NACKed again after repair")
	}
}

func TestChanNetNoPushKeepsBouncing(t *testing.T) {
	w := goNMWorld(t, netsim.Policy{ForwardInNetwork: true, PushUpdates: false})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	w.MustWait(w.Proc(0).Migrate(g, 3))
	for i := 0; i < 3; i++ {
		w.MustWait(w.Proc(2).Call(g, echo, nil))
	}
	cn := w.net.(*chanNet)
	if _, ok := cn.nics[2].peekTable(g.Block()); ok {
		t.Fatal("source table updated despite PushUpdates=false")
	}
}

func TestChanNetBoundedTableCapacity(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineGo, NICTableCap: 2})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocLocal(1, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for d := uint32(0); d < 8; d++ {
		w.MustWait(w.Proc(1).Migrate(lay.BlockAt(d), 2))
	}
	for d := uint32(0); d < 8; d++ {
		w.MustWait(w.Proc(0).Call(lay.BlockAt(d), echo, nil))
	}
	cn := w.net.(*chanNet)
	if n := cn.nics[0].tableLen(); n > 2 {
		t.Fatalf("go-engine NIC table grew to %d (cap 2)", n)
	}
}

func TestChanNetRejectsByGVAOutsideNM(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: AGASSW, Engine: EngineGo})
	w.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("ByGVA send in SW mode did not fail loudly")
		}
	}()
	w.net.send(0, &netsim.Message{Kind: kParcel, Src: 0, Dst: netsim.ByGVA})
}
