package runtime

import (
	"sync"
	"time"

	"nmvgas/internal/gas"
	"nmvgas/internal/stats"
)

// Runtime latency histograms (Config.Metrics). Every hook below is a
// method on *World guarded by a single `w.lat == nil` check, so the
// disabled path costs one predictable branch and zero allocations — the
// claim the LatencyOverhead benchmarks pin down.
//
// Units follow the engine's trace clock: simulated nanoseconds under
// EngineDES, monotonic wall nanoseconds under EngineGo (see
// TraceEvent.Time). In-flight operation starts are keyed by OpID in a
// sharded map so the goroutine engine's concurrent send/complete paths
// do not serialize on one lock.

const latShardCount = 16

type latShard struct {
	mu    sync.Mutex
	start map[uint64]int64
}

// migration phase marks, in protocol order.
const (
	migPin     = iota // block pinned at the old owner (migrate.req)
	migInstall        // block installed at the destination (migrate.data)
	migCommit         // directory flipped at the home (migrate.commit)
	migDone           // old owner unpinned and drained (migrate.done)
)

// migMarks holds the latency clock at each completed phase of one
// in-flight migration.
type migMarks struct {
	pin, install, commit int64
}

type latencyState struct {
	shards [latShardCount]latShard

	parcelExec    stats.Histogram // send → final exec
	putDone       stats.Histogram // put issue → remote-completion callback
	getDone       stats.Histogram // get issue → data callback
	nackRepair    stats.Histogram // send → NACK processed back at the sender
	coalesceFlush stats.Histogram // buffer first-add → flush

	// Migration phase durations, keyed off the protocol chain's marks:
	// transfer = pin→install, update = install→commit (the directory/NIC
	// table flip), drain = commit→done (unpin + queue flush), total =
	// pin→done.
	migTransfer stats.Histogram
	migUpdate   stats.Histogram
	migDrain    stats.Histogram
	migTotal    stats.Histogram

	// Replica coherence paths: write → invalidation applied at a holder,
	// write → update snapshot installed at a holder, and stale mark →
	// refill installed (the window in which a holder's reads chase the
	// master).
	replInval  stats.Histogram
	replUpdate stats.Histogram
	replFill   stats.Histogram

	migMu sync.Mutex
	mig   map[gas.BlockID]*migMarks
}

// replica coherence span kinds for latReplDone.
const (
	latReplInval = iota
	latReplUpdate
	latReplFill
)

func newLatencyState() *latencyState {
	s := &latencyState{mig: make(map[gas.BlockID]*migMarks)}
	for i := range s.shards {
		s.shards[i].start = make(map[uint64]int64)
	}
	return s
}

func (s *latencyState) shard(id uint64) *latShard {
	// The sequence lives in the low bits; the rank in the high bits.
	// Mixing both spreads concurrent ranks across shards.
	return &s.shards[(id^id>>48)%latShardCount]
}

// latNow returns the latency clock: simulated time under EngineDES, wall
// nanoseconds since World creation under EngineGo.
func (w *World) latNow() int64 {
	if w.eng != nil {
		return int64(w.eng.Now())
	}
	return int64(time.Since(w.epoch))
}

// latStart marks an operation (parcel or one-sided op) as in flight.
func (w *World) latStart(id uint64) {
	if w.lat == nil {
		return
	}
	now := w.latNow()
	sh := w.lat.shard(id)
	sh.mu.Lock()
	sh.start[id] = now
	sh.mu.Unlock()
}

// latTake removes and returns an operation's start mark.
func (s *latencyState) take(id uint64, now int64) (int64, bool) {
	sh := s.shard(id)
	sh.mu.Lock()
	t0, ok := sh.start[id]
	delete(sh.start, id)
	sh.mu.Unlock()
	return now - t0, ok
}

// latParcelExec closes a parcel's span: final execution at the owner.
func (w *World) latParcelExec(id uint64) {
	if w.lat == nil || id == 0 {
		return
	}
	if d, ok := w.lat.take(id, w.latNow()); ok {
		w.lat.parcelExec.Record(d)
	}
}

// latOpDone closes a one-sided operation's span at its completion
// callback.
func (w *World) latOpDone(id uint64, put bool) {
	if w.lat == nil {
		return
	}
	if d, ok := w.lat.take(id, w.latNow()); ok {
		if put {
			w.lat.putDone.Record(d)
		} else {
			w.lat.getDone.Record(d)
		}
	}
}

// latNackRepair samples the wasted round trip of a NACKed operation:
// time from the original send to the NACK being processed back at the
// sender. The start mark stays in place — the operation is still in
// flight and its eventual exec/completion closes the span.
func (w *World) latNackRepair(id uint64) {
	if w.lat == nil || id == 0 {
		return
	}
	now := w.latNow()
	sh := w.lat.shard(id)
	sh.mu.Lock()
	t0, ok := sh.start[id]
	sh.mu.Unlock()
	if ok {
		w.lat.nackRepair.Record(now - t0)
	}
}

// latReplDone closes a replica coherence span (opened with latStart at
// the fan-out or fill send) into the histogram selected by which.
func (w *World) latReplDone(id uint64, which int) {
	if w.lat == nil || id == 0 {
		return
	}
	if d, ok := w.lat.take(id, w.latNow()); ok {
		switch which {
		case latReplInval:
			w.lat.replInval.Record(d)
		case latReplUpdate:
			w.lat.replUpdate.Record(d)
		case latReplFill:
			w.lat.replFill.Record(d)
		}
	}
}

// latMigMark records one phase of a migration's protocol chain. The
// chain crosses ranks (owner → destination → home → old owner), so the
// marks live world-level; a block migrates at most once at a time (the
// pin guarantees it), so a plain map keyed by block suffices.
func (w *World) latMigMark(b gas.BlockID, phase int) {
	if w.lat == nil {
		return
	}
	now := w.latNow()
	s := w.lat
	s.migMu.Lock()
	defer s.migMu.Unlock()
	switch phase {
	case migPin:
		s.mig[b] = &migMarks{pin: now}
	case migInstall:
		if m := s.mig[b]; m != nil {
			m.install = now
			s.migTransfer.Record(now - m.pin)
		}
	case migCommit:
		if m := s.mig[b]; m != nil {
			m.commit = now
			s.migUpdate.Record(now - m.install)
		}
	case migDone:
		if m := s.mig[b]; m != nil {
			delete(s.mig, b)
			s.migDrain.Record(now - m.commit)
			s.migTotal.Record(now - m.pin)
		}
	}
}

// ---------------------------------------------------------------------
// Reporting

// LatencySummary condenses one histogram for reports.
type LatencySummary struct {
	Count  int64
	MeanNs float64
	P50Ns  int64
	P95Ns  int64
	P99Ns  int64
	MaxNs  int64
}

func summarize(h *stats.Histogram) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanNs: h.Mean(),
		P50Ns:  h.P50(),
		P95Ns:  h.P95(),
		P99Ns:  h.P99(),
		MaxNs:  h.Max(),
	}
}

// WorldLatencies is the latency report surfaced through WorldStats.
// All values are nanoseconds on the engine's latency clock (simulated
// under EngineDES, wall under EngineGo); everything is zero unless
// Config.Metrics was set.
type WorldLatencies struct {
	Enabled bool

	ParcelExec    LatencySummary // parcel send → final exec
	PutDone       LatencySummary // put issue → completion callback
	GetDone       LatencySummary // get issue → data callback
	NackRepair    LatencySummary // send → NACK back at the sender
	CoalesceFlush LatencySummary // coalescer buffer wait

	MigTransfer LatencySummary // pin → install at destination
	MigUpdate   LatencySummary // install → directory/table flip
	MigDrain    LatencySummary // flip → old owner drained
	MigTotal    LatencySummary // pin → done

	ReplInval  LatencySummary // write → invalidation applied at holder
	ReplUpdate LatencySummary // write → update snapshot installed
	ReplFill   LatencySummary // stale mark → refill installed
}

// Latencies returns the world's latency report (zero unless
// Config.Metrics).
func (w *World) Latencies() WorldLatencies {
	if w.lat == nil {
		return WorldLatencies{}
	}
	s := w.lat
	return WorldLatencies{
		Enabled:       true,
		ParcelExec:    summarize(&s.parcelExec),
		PutDone:       summarize(&s.putDone),
		GetDone:       summarize(&s.getDone),
		NackRepair:    summarize(&s.nackRepair),
		CoalesceFlush: summarize(&s.coalesceFlush),
		MigTransfer:   summarize(&s.migTransfer),
		MigUpdate:     summarize(&s.migUpdate),
		MigDrain:      summarize(&s.migDrain),
		MigTotal:      summarize(&s.migTotal),
		ReplInval:     summarize(&s.replInval),
		ReplUpdate:    summarize(&s.replUpdate),
		ReplFill:      summarize(&s.replFill),
	}
}

// QueueDepth returns rank r's pending host-executor backlog (mailbox
// length on the goroutine engine; 0 under DES, whose global event queue
// has no per-rank decomposition — use QueueDepths for the DES view).
// The metrics sampler polls it.
func (w *World) QueueDepth(r int) int {
	if ex, ok := w.locs[r].exec.(*goExec); ok {
		return ex.depth()
	}
	return 0
}

// queueDepthsInto fills counts (one slot per rank) with each rank's
// pending backlog: mailbox depth on the goroutine engine, rank-
// attributed pending events on DES. The queue-depth watchdog calls it
// every pulse; it is an on-demand tap with no hot-path bookkeeping.
func (w *World) queueDepthsInto(counts []int) {
	if w.eng != nil {
		w.eng.PendingByRank(counts)
		return
	}
	for r := range counts {
		counts[r] = w.QueueDepth(r)
	}
}

// QueueDepths returns every rank's pending backlog (see queueDepthsInto)
// as a fresh slice.
func (w *World) QueueDepths() []int {
	counts := make([]int, w.Ranks())
	w.queueDepthsInto(counts)
	return counts
}

// NICTableLen returns the NIC-resident translation table size at rank r
// (0 for address spaces without NIC translation).
func (w *World) NICTableLen(r int) int {
	if w.fab != nil {
		if t := w.fab.NIC(r).Table; t != nil {
			return t.Len()
		}
		return 0
	}
	return w.net.tableLen(r)
}
