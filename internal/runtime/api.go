package runtime

import (
	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

// Ctx is the execution context handed to an action. It identifies the
// parcel being executed and provides the non-blocking operations an
// action may perform: sending parcels, one-sided memory ops, touching
// resident block data, migration, and continuation delivery.
type Ctx struct {
	l *Locality
	P *parcel.Parcel
}

// Rank returns the executing locality's rank.
func (c *Ctx) Rank() int { return c.l.rank }

// Ranks returns the world size.
func (c *Ctx) Ranks() int { return c.l.w.cfg.Ranks }

// World returns the owning world.
func (c *Ctx) World() *World { return c.l.w }

// Now returns the simulated time (0 on the goroutine engine).
func (c *Ctx) Now() netsim.VTime { return c.l.w.Now() }

// Charge accounts d of simulated compute time to this locality's host
// CPU. No-op on the goroutine engine, where compute costs are real.
func (c *Ctx) Charge(d netsim.VTime) { c.l.exec.Charge(d) }

// Local returns the data of a block resident on this locality, or nil if
// the block is absent, mid-migration, or not a data block. The slice
// aliases block storage: actions mutate it to update the block.
func (c *Ctx) Local(g gas.GVA) []byte {
	b := g.Block()
	if c.l.isMoving(b) {
		return nil
	}
	blk, ok := c.l.store.Get(b)
	if !ok || blk.Kind != gas.KindData {
		return nil
	}
	return blk.Data[g.Offset():]
}

// Send routes a fully formed parcel.
func (c *Ctx) Send(p *parcel.Parcel) { c.l.SendParcel(p) }

// Call sends an action invocation with no continuation.
func (c *Ctx) Call(target gas.GVA, action parcel.ActionID, payload []byte) {
	c.l.SendParcel(&parcel.Parcel{Action: action, Target: target, Payload: payload})
}

// CallCC sends an action invocation whose result is delivered to cont
// (usually an LCO address) via contAction.
func (c *Ctx) CallCC(target gas.GVA, action parcel.ActionID, payload []byte, contAction parcel.ActionID, cont gas.GVA) {
	c.l.SendParcel(&parcel.Parcel{
		Action: action, Target: target, Payload: payload,
		CAction: contAction, CTarget: cont,
	})
}

// Continue delivers data to the executing parcel's continuation, if any.
// A parcel without a continuation *address* has nowhere to deliver to —
// the result is dropped — even if a continuation action is set.
func (c *Ctx) Continue(data []byte) {
	if c.P.CTarget.IsNull() {
		return
	}
	act := c.P.CAction
	if act == parcel.NilAction {
		act = ALCOSet
	}
	c.l.SendParcel(&parcel.Parcel{Action: act, Target: c.P.CTarget, Payload: data})
}

// ContinueTo delivers data to an explicit LCO address with lco.set.
func (c *Ctx) ContinueTo(target gas.GVA, data []byte) {
	c.l.SendParcel(&parcel.Parcel{Action: ALCOSet, Target: target, Payload: data})
}

// Put issues a one-sided write; done (optional) runs on this locality at
// remote completion.
func (c *Ctx) Put(dst gas.GVA, data []byte, done func()) { c.l.PutAsync(dst, data, done) }

// Get issues a one-sided read; done runs on this locality with the data.
func (c *Ctx) Get(src gas.GVA, n uint32, done func(data []byte)) { c.l.GetAsync(src, n, done) }

// Migrate moves a block; status is delivered to cont (an LCO address).
func (c *Ctx) Migrate(g gas.GVA, to int, cont gas.GVA) {
	c.l.MigrateAsync(g, to, ALCOSet, cont)
}

// CallWhen sends the action invocation once dep fires; the dep's value is
// ignored and payload is sent as given. The subscription lives on this
// locality, so the send happens in this locality's context regardless of
// where the LCO fires from.
func (c *Ctx) CallWhen(dep *LCORef, target gas.GVA, action parcel.ActionID, payload []byte) {
	l := c.l
	dep.OnFire(func([]byte) {
		l.exec.Exec(0, func() {
			l.SendParcel(&parcel.Parcel{Action: action, Target: target, Payload: payload})
		})
	})
}

// Proc is the driver-side handle for issuing operations "from" a
// locality. Each method schedules its work onto the locality's executor,
// so driver code composes correctly with both engines.
type Proc struct {
	l *Locality
}

// Proc returns the driver handle for rank.
func (w *World) Proc(rank int) *Proc { return &Proc{l: w.locs[rank]} }

// Rank returns the handle's rank.
func (p *Proc) Rank() int { return p.l.rank }

// run schedules fn on the locality executor.
func (p *Proc) run(fn func()) { p.l.exec.Exec(0, fn) }

// Run schedules fn to execute in this locality's context. Drivers use it
// to issue batches of operations with correct engine semantics.
func (p *Proc) Run(fn func()) { p.run(fn) }

// Call invokes action at target and returns a future that fires with the
// action's continuation value.
func (p *Proc) Call(target gas.GVA, action parcel.ActionID, payload []byte) *LCORef {
	fut := p.l.w.NewFuture(p.l.rank)
	p.run(func() {
		p.l.SendParcel(&parcel.Parcel{
			Action: action, Target: target, Payload: payload,
			CAction: ALCOSet, CTarget: fut.G,
		})
	})
	return fut
}

// Invoke sends an action with no result.
func (p *Proc) Invoke(target gas.GVA, action parcel.ActionID, payload []byte) {
	p.run(func() {
		p.l.SendParcel(&parcel.Parcel{Action: action, Target: target, Payload: payload})
	})
}

// Put writes data at dst, returning a future that fires (with nil) at
// remote completion.
func (p *Proc) Put(dst gas.GVA, data []byte) *LCORef {
	fut := p.l.w.NewFuture(p.l.rank)
	buf := append([]byte(nil), data...)
	p.run(func() {
		p.l.PutAsync(dst, buf, func() {
			if err := fut.obj.Set(nil); err != nil {
				p.l.w.fail("put completion: %v", err)
			}
		})
	})
	return fut
}

// Get reads n bytes at src, returning a future that fires with the data.
func (p *Proc) Get(src gas.GVA, n uint32) *LCORef {
	fut := p.l.w.NewFuture(p.l.rank)
	p.run(func() {
		p.l.GetAsync(src, n, func(data []byte) {
			if err := fut.obj.Set(data); err != nil {
				p.l.w.fail("get completion: %v", err)
			}
		})
	})
	return fut
}

// PutAsync issues a one-sided write "from" this locality without a
// future. On the goroutine engine the issue happens inline on the
// calling goroutine — everything the put path touches is thread-safe
// there — so drivers can pipeline puts with no mailbox round trip per
// op; done (optional) runs on the locality at remote completion. On the
// DES engine the issue is scheduled like every other driver operation.
func (p *Proc) PutAsync(dst gas.GVA, data []byte, done func()) {
	if p.l.w.eng == nil {
		p.l.PutAsync(dst, data, done)
		return
	}
	buf := append([]byte(nil), data...)
	p.run(func() { p.l.PutAsync(dst, buf, done) })
}

// PutWait writes data at dst and blocks the driver until the remote
// completion (advancing simulated time under the DES engine).
func (p *Proc) PutWait(dst gas.GVA, data []byte) {
	w := p.l.w
	if w.eng == nil {
		done := make(chan struct{})
		p.l.PutAsync(dst, data, func() { close(done) })
		<-done
		return
	}
	var fired bool
	buf := append([]byte(nil), data...)
	p.run(func() { p.l.PutAsync(dst, buf, func() { fired = true }) })
	if !w.eng.RunUntil(func() bool { return fired }) {
		w.fail("PutWait: event queue drained before completion")
	}
}

// GetWaitInto reads len(buf) bytes at src into buf, blocking until the
// reply. On the goroutine engine the reply rides a pooled wire buffer:
// the copy-out below is the only allocation-free consumer the pool
// contract needs.
func (p *Proc) GetWaitInto(src gas.GVA, buf []byte) {
	w := p.l.w
	n := uint32(len(buf))
	if w.eng == nil {
		done := make(chan struct{})
		p.l.getAsync(src, n, true, func(data []byte) {
			copy(buf, data)
			close(done)
		})
		<-done
		return
	}
	var fired bool
	p.run(func() {
		p.l.GetAsync(src, n, func(data []byte) {
			copy(buf, data)
			fired = true
		})
	})
	if !w.eng.RunUntil(func() bool { return fired }) {
		w.fail("GetWaitInto: event queue drained before completion")
	}
}

// GetWait reads n bytes at src and blocks until the data arrives.
func (p *Proc) GetWait(src gas.GVA, n uint32) []byte {
	out := make([]byte, n)
	p.GetWaitInto(src, out)
	return out
}

// PutVecWait writes all segs into the block at dst as one request with
// one ack and blocks until the completion. segs must not be mutated
// until it returns.
func (p *Proc) PutVecWait(dst gas.GVA, segs []PutSeg) {
	w := p.l.w
	if w.eng == nil {
		done := make(chan struct{})
		p.l.PutVecAsync(dst, segs, func() { close(done) })
		<-done
		return
	}
	var fired bool
	p.run(func() { p.l.PutVecAsync(dst, segs, func() { fired = true }) })
	if !w.eng.RunUntil(func() bool { return fired }) {
		w.fail("PutVecWait: event queue drained before completion")
	}
}

// GetVecWaitInto gathers all segs from the block at src into buf (the
// fragments concatenated in order; len(buf) must equal the sum of seg
// lengths) and blocks until the reply.
func (p *Proc) GetVecWaitInto(src gas.GVA, segs []GetSeg, buf []byte) {
	w := p.l.w
	if w.eng == nil {
		done := make(chan struct{})
		p.l.getVecAsync(src, segs, true, func(data []byte) {
			copy(buf, data)
			close(done)
		})
		<-done
		return
	}
	var fired bool
	p.run(func() {
		p.l.GetVecAsync(src, segs, func(data []byte) {
			copy(buf, data)
			fired = true
		})
	})
	if !w.eng.RunUntil(func() bool { return fired }) {
		w.fail("GetVecWaitInto: event queue drained before completion")
	}
}

// Migrate moves the block at g to rank to, returning a future that fires
// with the status record.
func (p *Proc) Migrate(g gas.GVA, to int) *LCORef {
	fut := p.l.w.NewFuture(p.l.rank)
	p.run(func() {
		p.l.MigrateAsync(g, to, ALCOSet, fut.G)
	})
	return fut
}

// MigrateStatus decodes a Migrate future's value.
func MigrateStatus(v []byte) int64 {
	if len(v) < 8 {
		return -1
	}
	return parcel.I64(v, 0)
}

// MigrateMany issues one migration per (block, destination) pair and
// returns a gate that fires when all have committed. Failures surface as
// non-OK statuses in the per-move futures, which are also returned.
func (p *Proc) MigrateMany(blocks []gas.GVA, to []int) (*LCORef, []*LCORef) {
	if len(blocks) != len(to) {
		p.l.w.fail("MigrateMany: %d blocks vs %d destinations", len(blocks), len(to))
	}
	gate := p.l.w.NewAndGate(p.l.rank, len(blocks))
	futs := make([]*LCORef, len(blocks))
	for i := range blocks {
		futs[i] = p.l.w.NewFuture(p.l.rank)
		futs[i].OnFire(func([]byte) {
			p.run(func() {
				p.l.SendParcel(&parcel.Parcel{Action: ALCOSet, Target: gate.G})
			})
		})
		g, dst := blocks[i], to[i]
		fut := futs[i]
		p.run(func() {
			p.l.MigrateAsync(g, dst, ALCOSet, fut.G)
		})
	}
	return gate, futs
}

// CallWhen is the driver-side dependent call: it sends the invocation
// from this locality once dep fires and returns a future for the result.
func (p *Proc) CallWhen(dep *LCORef, target gas.GVA, action parcel.ActionID, payload []byte) *LCORef {
	fut := p.l.w.NewFuture(p.l.rank)
	dep.OnFire(func([]byte) {
		p.run(func() {
			p.l.SendParcel(&parcel.Parcel{
				Action: action, Target: target, Payload: payload,
				CAction: ALCOSet, CTarget: fut.G,
			})
		})
	})
	return fut
}
