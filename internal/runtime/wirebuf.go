package runtime

import (
	"sync"

	"nmvgas/internal/netsim"
)

// Pooled wire buffers for one-sided payloads. A put's payload and a
// small get's reply live exactly from encode to the terminal consumer
// (the owner's store write, the requester's copy-out), so they can be
// recycled instead of allocated per op — that is most of the difference
// between the put path's old alloc profile and the parcel pump's.
//
// Pooling is only legal when nothing else can alias the buffer after the
// terminal consumer: the reliability layer keeps pristine copies sharing
// Payload, and the goroutine fault injector clones messages wholesale,
// so worlds with either stay on plain heap buffers (payloadPoolable).
// The DES engine never recycles messages and its fabric retains
// payloads inside deferred events, so it is excluded too.

// wireBufCap bounds pooled buffer capacity; larger payloads go to the
// heap (rare on the fast path, and pooling huge buffers pins memory).
const wireBufCap = 4096

var wireBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, wireBufCap); return &b },
}

// getWireBuf returns a zero-length pooled buffer with at least n
// capacity, or a fresh heap buffer when n exceeds the pooled size.
func getWireBuf(n int) ([]byte, bool) {
	if n > wireBufCap {
		return make([]byte, 0, n), false
	}
	return (*wireBufPool.Get().(*[]byte))[:0], true
}

// putWireBuf returns a pooled buffer. Callers pass exactly the buffers
// getWireBuf marked pooled (tracked via Message.PayloadPooled).
func putWireBuf(b []byte) {
	b = b[:0]
	wireBufPool.Put(&b)
}

// payloadPoolable reports whether this world may carry pooled payloads:
// goroutine engine, no reliability layer, no fault injector (see the
// package comment above).
func (l *Locality) payloadPoolable() bool {
	return l.w.eng == nil && l.w.relw == nil && l.w.faults == nil
}

// releasePayload reclaims m's payload after its terminal use (the
// consumer keeps no alias past this call).
func (l *Locality) releasePayload(m *netsim.Message) {
	if m.PayloadPooled {
		putWireBuf(m.Payload)
		m.Payload = nil
		m.PayloadPooled = false
	}
}
