package runtime

import (
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
)

func TestAllocAsyncCreatesBlocksEverywhere(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		v := w.MustWait(w.Proc(1).AllocAsync(256, 8, gas.DistCyclic))
		lay := DecodeLayout(v)
		if lay.NBlocks != 8 || lay.BSize != 256 || lay.Ranks != 4 || lay.Dist != gas.DistCyclic {
			t.Fatalf("layout %+v", lay)
		}
		if lay.Base.Home() != 1 {
			t.Fatalf("layout origin %d, want 1", lay.Base.Home())
		}
		for d := uint32(0); d < 8; d++ {
			home := lay.HomeOf(d)
			if _, ok := w.Locality(home).Store().Get(lay.Base.Block() + gas.BlockID(d)); !ok {
				t.Fatalf("block %d missing at home %d", d, home)
			}
		}
		// And it is immediately usable.
		w.MustWait(w.Proc(0).Put(lay.BlockAt(3), []byte{42}))
		got := w.MustWait(w.Proc(2).Get(lay.BlockAt(3), 1))
		if got[0] != 42 {
			t.Fatal("async-allocated block not usable")
		}
	})
}

func TestAllocAsyncFromAction(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES})
	allocer := w.Register("allocer", func(c *Ctx) {
		fut := c.World().Proc(c.Rank()).AllocAsync(64, 3, gas.DistCyclic)
		cont := c.P.CTarget
		fut.OnFire(func(v []byte) {
			c.World().Proc(c.Rank()).Invoke(cont, ALCOSet, v)
		})
	})
	w.Start()
	done := w.NewFuture(0)
	w.Proc(0).Run(func() {
		w.Locality(0).SendParcel(&parcel.Parcel{
			Action: allocer, Target: w.LocalityGVA(1),
			CAction: ALCOSet, CTarget: done.G,
		})
	})
	lay := DecodeLayout(w.MustWait(done))
	if lay.NBlocks != 3 || lay.Base.Home() != 1 {
		t.Fatalf("action-driven alloc layout %+v", lay)
	}
}

func TestFreeAsyncRemovesMigratedBlocks(t *testing.T) {
	agasMatrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		lay := DecodeLayout(w.MustWait(w.Proc(0).AllocAsync(128, 4, gas.DistCyclic)))
		// Move two blocks before freeing: the free parcels must chase
		// ownership.
		w.MustWait(w.Proc(0).Migrate(lay.BlockAt(1), 3))
		w.MustWait(w.Proc(0).Migrate(lay.BlockAt(2), 0))
		w.MustWait(w.Proc(0).FreeAsync(lay))
		for d := uint32(0); d < 4; d++ {
			b := lay.Base.Block() + gas.BlockID(d)
			for r := 0; r < 4; r++ {
				if _, ok := w.Locality(r).Store().Get(b); ok {
					t.Fatalf("block %d still resident at %d after free", d, r)
				}
			}
		}
		// Home directory must be clean.
		for d := uint32(0); d < 4; d++ {
			home := lay.HomeOf(d)
			if _, ok := w.Locality(home).Directory().Owner(lay.Base.Block() + gas.BlockID(d)); ok {
				t.Fatalf("directory entry survived free (block %d)", d)
			}
		}
	})
}

func TestLayoutCodecRoundTrip(t *testing.T) {
	l := gas.Layout{Base: gas.New(3, 77, 0), BSize: 4096, NBlocks: 12, Ranks: 8, Dist: gas.DistBlocked}
	got := DecodeLayout(EncodeLayout(l))
	if got != l {
		t.Fatalf("round trip %+v != %+v", got, l)
	}
}
