package runtime

import (
	"sort"
	"sync"
	"time"

	"nmvgas/internal/netsim"
)

// End-to-end reliable delivery. The fabric may drop, duplicate, delay, or
// reorder messages (see netsim.FaultPlan); this layer restores
// exactly-once application semantics on top:
//
//   - every tracked message carries a per-(sender, channel) sequence
//     number assigned at injection;
//   - the receiver records delivered sequence numbers and suppresses
//     duplicates at the point of application (not at wire arrival, so a
//     message queued behind a migration is not falsely marked done);
//   - each delivery is acknowledged with a cumulative horizon, and the
//     sender retransmits unacked messages on a per-channel timer with
//     exponential backoff, abandoning after MaxAttempts;
//   - migration-protocol parcels ride the same machinery, so a lost
//     commit or done message is retransmitted instead of stranding the
//     block.
//
// The layer is only active when the world has faults configured (or
// Reliability.Force is set): a fault-free world pays zero overhead and
// performs zero retransmissions.
//
// Receiver state is held at world scope rather than per locality. A
// production system would migrate per-block delivery records along with
// the block; modeling the dedup store as logically shared gives the same
// exactly-once guarantee without simulating that transfer, and keeps a
// late duplicate that trails a completed migration from re-executing at
// the new owner (see DESIGN.md §8).

// relAckWire approximates an ack descriptor on the wire.
const relAckWire = 24

// relBounceCap bounds how many hop-budget NACKs a single message may
// suffer before its sender abandons it (the routing state is broken;
// retrying forever would livelock).
const relBounceCap = 3

// ReliabilityConfig tunes the reliable-delivery layer.
type ReliabilityConfig struct {
	// Force enables the layer even with a zero FaultPlan (tests use this
	// to measure the no-fault overhead).
	Force bool
	// RTO is the initial per-channel retransmission timeout
	// (0 = 200µs, far above any simulated round trip).
	RTO netsim.VTime
	// MaxRTO caps the exponential backoff (0 = 16×RTO).
	MaxRTO netsim.VTime
	// MaxAttempts bounds total transmissions of one message before the
	// sender abandons it (0 = 12).
	MaxAttempts int
}

func (r ReliabilityConfig) withDefaults() ReliabilityConfig {
	if r.RTO <= 0 {
		r.RTO = 200_000 // 200µs
	}
	if r.MaxRTO <= 0 {
		r.MaxRTO = 16 * r.RTO
	}
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 12
	}
	return r
}

// DeliveryStats reports what the reliability layer did: the degradation
// a lossy fabric caused, and that it stayed invisible to the
// application.
type DeliveryStats struct {
	// Tracked counts messages that entered reliable delivery.
	Tracked uint64
	// Retransmits counts timer-driven resends (MigRetransmits of them
	// were migration-protocol parcels — each one a migration the layer
	// recovered from a lost protocol step).
	Retransmits    uint64
	MigRetransmits uint64
	// Abandoned counts messages given up on after MaxAttempts or
	// relBounceCap hop-budget bounces.
	Abandoned uint64
	// AcksSent / AcksReceived count ack traffic (acks themselves are
	// unreliable; a lost ack is repaired by the next retransmission).
	AcksSent     uint64
	AcksReceived uint64
	// DupsSuppressed counts deliveries rejected as already applied;
	// FlushSuppressed counts the subset caught while flushing a
	// migration queue.
	DupsSuppressed  uint64
	FlushSuppressed uint64
	// StaleDrops counts messages dropped (and acked) because their block
	// no longer exists anywhere — deliveries that would panic on a
	// lossless fabric.
	StaleDrops uint64
	// LateCompletions counts completions for already-completed ops.
	LateCompletions uint64
	// HopCapNacks counts hop-budget NACKs processed by senders; MaxHops
	// is the largest forward-hop count any applied message survived.
	HopCapNacks uint64
	MaxHops     int
	// Faults snapshots the injector's counters (what the fabric did).
	Faults netsim.FaultStats
}

// relKey identifies one sender stream: originating rank + channel.
type relKey struct {
	src int
	ch  int32
}

// relRxState is the receive-side dedup record for one stream: every
// sequence number <= cum has been applied, plus the out-of-order set
// above it.
type relRxState struct {
	cum   uint64
	above map[uint64]struct{}
}

func (rx *relRxState) seen(seq uint64) bool {
	if seq <= rx.cum {
		return true
	}
	_, ok := rx.above[seq]
	return ok
}

func (rx *relRxState) record(seq uint64) {
	rx.above[seq] = struct{}{}
	for {
		if _, ok := rx.above[rx.cum+1]; !ok {
			return
		}
		delete(rx.above, rx.cum+1)
		rx.cum++
	}
}

// relWorld is the world-scoped half of the layer: the receive-side dedup
// store and the counters.
type relWorld struct {
	mu    sync.Mutex
	rx    map[relKey]*relRxState
	stats DeliveryStats
}

func newRelWorld() *relWorld {
	return &relWorld{rx: make(map[relKey]*relRxState)}
}

func (rw *relWorld) stream(k relKey) *relRxState {
	rx := rw.rx[k]
	if rx == nil {
		rx = &relRxState{above: make(map[uint64]struct{})}
		rw.rx[k] = rx
	}
	return rx
}

// relPending is one unacked message held for retransmission. m is a
// pristine copy taken before the transport mutated routing fields;
// deadline is the clock reading after which the message is considered
// lost (a channel timer firing earlier leaves it alone — without the
// deadline, a message injected just before the timer fires would be
// spuriously retransmitted).
type relPending struct {
	m        *netsim.Message
	attempts int
	deadline netsim.VTime
}

// relTxChan is the send side of one channel.
type relTxChan struct {
	nextSeq uint64
	unacked map[uint64]*relPending
	rto     netsim.VTime
	armed   bool
}

// relLoc is the per-locality send state.
type relLoc struct {
	mu sync.Mutex
	tx map[int32]*relTxChan
}

// rel returns the locality's send state, nil when the layer is off.
func (l *Locality) relOn() bool { return l.rel != nil }

// relChanOf picks the channel key for m: the resolved destination rank,
// or the target's home when the NIC resolves the destination (ByGVA) —
// the stream key only has to be stable per message, not per path.
func relChanOf(m *netsim.Message) int32 {
	if m.Dst == netsim.ByGVA {
		return int32(m.Target.Home())
	}
	return int32(m.Dst)
}

// relTrack enrolls m in reliable delivery at injection time. Control
// messages, acks, and already-tracked messages (resends) pass through.
func (l *Locality) relTrack(m *netsim.Message) {
	if l.rel == nil || m.RelSeq != 0 || m.Ctl != netsim.CtlNone || m.Kind == kRelAck ||
		m.Kind == kMemberPing || m.Kind == kMemberPong {
		return
	}
	ch := relChanOf(m)
	l.rel.mu.Lock()
	tc := l.rel.tx[ch]
	if tc == nil {
		tc = &relTxChan{unacked: make(map[uint64]*relPending), rto: l.w.relCfg.RTO}
		l.rel.tx[ch] = tc
	}
	tc.nextSeq++
	m.RelChan = ch
	m.RelSeq = tc.nextSeq
	cp := *m
	tc.unacked[m.RelSeq] = &relPending{m: &cp, attempts: 1, deadline: l.relNow() + tc.rto}
	arm := !tc.armed
	tc.armed = true
	rto := tc.rto
	l.rel.mu.Unlock()

	rw := l.w.relw
	rw.mu.Lock()
	rw.stats.Tracked++
	rw.mu.Unlock()
	if arm {
		l.relArm(ch, rto)
	}
}

// relNow reads the clock retransmission deadlines live on: simulated
// time under DES, wall time divided by Config.GoTimeScale under the
// goroutine engine (so timeouts specified in simulated ns run scaled-up
// on the wall clock and real scheduling jitter does not masquerade as
// loss).
func (l *Locality) relNow() netsim.VTime {
	if l.eng != nil {
		return l.eng.Now()
	}
	return netsim.VTime(time.Now().UnixNano() / int64(l.w.cfg.GoTimeScale))
}

// relArm schedules the retransmission timer for channel ch.
func (l *Locality) relArm(ch int32, d netsim.VTime) {
	if l.eng != nil {
		// The retransmission timer is rank-local work: it reads and
		// mutates only this locality's send state, so it runs on the
		// rank's own timeline (its shard under the parallel engine).
		l.eng.AfterRank(l.rank, d, func() { l.relTimer(ch) })
		return
	}
	time.AfterFunc(l.w.goWall(d), func() {
		l.exec.Exec(0, func() { l.relTimer(ch) })
	})
}

// relTimer fires for channel ch: retransmit everything unacked (oldest
// first, in sequence order for determinism), back off, re-arm while work
// remains.
func (l *Locality) relTimer(ch int32) {
	if l.rel == nil {
		return
	}
	l.rel.mu.Lock()
	tc := l.rel.tx[ch]
	if tc == nil {
		l.rel.mu.Unlock()
		return
	}
	if len(tc.unacked) == 0 {
		tc.armed = false
		tc.rto = l.w.relCfg.RTO
		l.rel.mu.Unlock()
		return
	}
	seqs := make([]uint64, 0, len(tc.unacked))
	for s := range tc.unacked {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	now := l.relNow()
	var resend []*netsim.Message
	var resent []*relPending
	var mig, abandoned uint64
	var nextDue netsim.VTime
	for _, s := range seqs {
		p := tc.unacked[s]
		if p.deadline > now {
			// Still within its grace period; the channel timer just fired
			// early for this message.
			if nextDue == 0 || p.deadline < nextDue {
				nextDue = p.deadline
			}
			continue
		}
		if p.attempts >= l.w.relCfg.MaxAttempts {
			delete(tc.unacked, s)
			abandoned++
			continue
		}
		p.attempts++
		resent = append(resent, p)
		// The clone travels and is recycled by whoever consumes it; the
		// pristine copy p.m stays here for the next retransmission.
		cp := netsim.NewMessage()
		*cp = *p.m
		cp.Hops = 0
		resend = append(resend, cp)
		if cp.MigCtl {
			mig++
		}
	}
	if len(resend) > 0 {
		// Back off only on evidence of loss.
		tc.rto *= 2
		if tc.rto > l.w.relCfg.MaxRTO {
			tc.rto = l.w.relCfg.MaxRTO
		}
		for _, p := range resent {
			p.deadline = now + tc.rto
		}
	}
	// A channel pinned at its backoff ceiling with work still unacked
	// means something is silently eating traffic — the whole-node
	// failure signature. Raise membership suspicion (outside the lock,
	// below); the sweep is armed-gated and single-flight, so healthy
	// worlds and already-probing ones pay nothing.
	ceiling := len(resend) > 0 && tc.rto >= l.w.relCfg.MaxRTO
	next := tc.rto
	if len(resend) == 0 && nextDue > now {
		next = nextDue - now
	}
	again := len(tc.unacked) > 0
	tc.armed = again
	if !again {
		tc.rto = l.w.relCfg.RTO
	}
	l.rel.mu.Unlock()

	rw := l.w.relw
	rw.mu.Lock()
	rw.stats.Retransmits += uint64(len(resend))
	rw.stats.MigRetransmits += mig
	rw.stats.Abandoned += abandoned
	rw.mu.Unlock()

	if ceiling {
		// The sweep inspects and arms world-level membership state, which
		// a shard worker must not touch mid-window.
		l.w.deferGlobal(l, func() { l.w.mem.suspectSweep(l) })
	}
	for _, m := range resend {
		l.trace(TraceRetransmit, m.Block, m.RelSeq)
		// The pristine copy still carries its original destination
		// (possibly ByGVA); both transports re-resolve it, so a
		// retransmission chases the block's current owner.
		l.exec.Charge(l.w.cfg.Model.OSend)
		l.w.net.send(l.rank, m)
	}
	if again {
		l.relArm(ch, next)
	}
}

// relAccept is the exactly-once gate at a message's point of
// application. It reports whether m should be applied (always true when
// the layer is off or m is untracked) and acknowledges the delivery
// either way, so a duplicate re-acks in case the first ack was lost.
func (l *Locality) relAccept(m *netsim.Message) bool {
	if l.rel == nil || m.RelSeq == 0 {
		return true
	}
	rw := l.w.relw
	rw.mu.Lock()
	rx := rw.stream(relKey{src: m.Src, ch: m.RelChan})
	dup := rx.seen(m.RelSeq)
	if dup {
		rw.stats.DupsSuppressed++
	} else {
		rx.record(m.RelSeq)
		if m.Hops > rw.stats.MaxHops {
			rw.stats.MaxHops = m.Hops
		}
	}
	cum := rx.cum
	rw.stats.AcksSent++
	rw.mu.Unlock()
	l.relSendAck(m, cum)
	if dup {
		l.trace(TraceDupSuppressed, m.Block, m.RelSeq)
	}
	return !dup
}

// relDupPeek reports whether m is already applied, without recording
// anything — used before taking an active-count so a late duplicate
// cannot even transiently pin its block. It re-acks known duplicates.
func (l *Locality) relDupPeek(m *netsim.Message) bool {
	if l.rel == nil || m.RelSeq == 0 {
		return false
	}
	rw := l.w.relw
	rw.mu.Lock()
	rx := rw.rx[relKey{src: m.Src, ch: m.RelChan}]
	dup := rx != nil && rx.seen(m.RelSeq)
	var cum uint64
	if dup {
		rw.stats.DupsSuppressed++
		rw.stats.AcksSent++
		cum = rx.cum
	}
	rw.mu.Unlock()
	if dup {
		l.relSendAck(m, cum)
		l.trace(TraceDupSuppressed, m.Block, m.RelSeq)
	}
	return dup
}

// relFlushOK reports whether a message queued behind a migration should
// still be flushed to the new owner; a copy that was already applied here
// before the block moved must not travel (it would be suppressed at the
// destination anyway — this keeps it off the wire).
func (l *Locality) relFlushOK(m *netsim.Message) bool {
	if l.rel == nil || m.RelSeq == 0 {
		return true
	}
	rw := l.w.relw
	rw.mu.Lock()
	rx := rw.rx[relKey{src: m.Src, ch: m.RelChan}]
	seen := rx != nil && rx.seen(m.RelSeq)
	if seen {
		rw.stats.FlushSuppressed++
	}
	rw.mu.Unlock()
	return !seen
}

// relSendAck acknowledges m's stream up to cum. Self-deliveries
// short-circuit.
func (l *Locality) relSendAck(m *netsim.Message, cum uint64) {
	ack := netsim.NewMessage()
	ack.Kind = kRelAck
	ack.Src = l.rank
	ack.Dst = m.Src
	ack.Wire = relAckWire
	ack.RelChan = m.RelChan
	ack.RelSeq = m.RelSeq
	ack.RelCum = cum
	if m.Src == l.rank {
		l.w.locs[l.rank].relOnAck(ack)
		l.recycle(ack)
		return
	}
	l.w.net.nicSend(l.rank, ack)
}

// relOnAck clears acked messages at the sender: the named sequence plus
// everything at or below the cumulative horizon.
func (l *Locality) relOnAck(m *netsim.Message) {
	if l.rel == nil {
		return
	}
	l.rel.mu.Lock()
	if tc := l.rel.tx[m.RelChan]; tc != nil {
		delete(tc.unacked, m.RelSeq)
		for s := range tc.unacked {
			if s <= m.RelCum {
				delete(tc.unacked, s)
			}
		}
		if len(tc.unacked) == 0 {
			tc.rto = l.w.relCfg.RTO
		}
	}
	l.rel.mu.Unlock()
	rw := l.w.relw
	rw.mu.Lock()
	rw.stats.AcksReceived++
	rw.mu.Unlock()
}

// relAbandon gives up on a message after repeated hop-budget NACKs.
func (l *Locality) relAbandon(m *netsim.Message) {
	if l.rel != nil && m.RelSeq != 0 {
		l.rel.mu.Lock()
		if tc := l.rel.tx[m.RelChan]; tc != nil {
			delete(tc.unacked, m.RelSeq)
		}
		l.rel.mu.Unlock()
	}
	if rw := l.w.relw; rw != nil {
		rw.mu.Lock()
		rw.stats.Abandoned++
		rw.mu.Unlock()
	}
}

// relStaleDrop is the graceful-degradation path for deliveries whose
// block no longer exists anywhere (freed, or state destroyed by faults):
// with reliability on, the message is recorded, acknowledged (it will
// never become deliverable — retrying is pointless) and dropped, counted
// in StaleDrops. With the layer off it reports false and the caller
// keeps the original panic, because on a lossless fabric this is a true
// invariant violation.
func (l *Locality) relStaleDrop(m *netsim.Message) bool {
	if l.rel == nil {
		return false
	}
	l.relAccept(m)
	rw := l.w.relw
	rw.mu.Lock()
	rw.stats.StaleDrops++
	rw.mu.Unlock()
	return true
}

// relLateCompletion absorbs a completion for an op that already
// completed (possible only on a faulty fabric, where a completion can be
// duplicated around the dedup horizon); reports whether it was absorbed.
func (l *Locality) relLateCompletion() bool {
	if l.rel == nil {
		return false
	}
	rw := l.w.relw
	rw.mu.Lock()
	rw.stats.LateCompletions++
	rw.mu.Unlock()
	return true
}

// UnackedMessages counts messages still held for retransmission across
// every locality's send channels. Once a workload has drained, a
// nonzero count means traffic was black-holed — neither delivered and
// acknowledged, nor NACKed back, nor explicitly abandoned — which the
// recovery experiments assert never happens, even across a crash.
func (w *World) UnackedMessages() int {
	n := 0
	for _, l := range w.locs {
		if l.rel == nil {
			continue
		}
		l.rel.mu.Lock()
		for _, tc := range l.rel.tx {
			n += len(tc.unacked)
		}
		l.rel.mu.Unlock()
	}
	return n
}

// reliable reports whether the world runs the reliability layer.
func (c Config) reliable() bool {
	return c.Reliability.Force || c.Faults.Enabled()
}

// DeliveryStats returns the reliability layer's report: zero when the
// layer is off (apart from hop-budget NACK counts, which are maintained
// unconditionally).
func (w *World) DeliveryStats() DeliveryStats {
	var d DeliveryStats
	if w.relw != nil {
		w.relw.mu.Lock()
		d = w.relw.stats
		w.relw.mu.Unlock()
	}
	for _, l := range w.locs {
		d.HopCapNacks += uint64(l.Stats.LoopNacks.Load())
	}
	if w.fab != nil {
		d.Faults = w.fab.FaultSnapshot()
	} else {
		d.Faults = w.faults.Snapshot()
	}
	return d
}
