package runtime

import (
	"testing"

	"nmvgas/internal/netsim"
)

func TestDESExecSerializesHost(t *testing.T) {
	eng := netsim.NewEngine()
	ex := &desExec{eng: eng}
	var at []netsim.VTime
	ex.Exec(100, func() { at = append(at, eng.Now()) })
	ex.Exec(50, func() { at = append(at, eng.Now()) })
	eng.Run()
	if len(at) != 2 || at[0] != 100 || at[1] != 150 {
		t.Fatalf("execution times %v, want [100 150]", at)
	}
}

func TestDESExecChargeExtendsBusy(t *testing.T) {
	eng := netsim.NewEngine()
	ex := &desExec{eng: eng}
	var second netsim.VTime
	ex.Exec(10, func() {
		ex.Charge(500) // simulated compute inside the task
		ex.Exec(0, func() { second = eng.Now() })
	})
	eng.Run()
	if second != 510 {
		t.Fatalf("post-charge task ran at %v, want 510", second)
	}
	// Negative charges are ignored.
	ex.Charge(-100)
}

func TestDESExecIdleHostRunsAtNow(t *testing.T) {
	eng := netsim.NewEngine()
	ex := &desExec{eng: eng}
	ex.Exec(10, func() {})
	eng.Run()                // now = 10, busy = 10
	eng.After(1000, func() { // fires at 1010
		ex.Exec(5, func() {
			if eng.Now() != 1015 {
				t.Errorf("task after idle ran at %v, want 1015", eng.Now())
			}
		})
	})
	eng.Run()
}

func TestGoExecFIFOAndStop(t *testing.T) {
	ex := newGoExec(nil)
	ex.start()
	var order []int
	done := make(chan struct{})
	for i := 0; i < 10; i++ {
		i := i
		ex.Exec(0, func() {
			order = append(order, i)
			if i == 9 {
				close(done)
			}
		})
	}
	<-done
	ex.stop()
	for i, v := range order {
		if v != i {
			t.Fatalf("actor ran out of order: %v", order)
		}
	}
	// Exec after stop is a silent no-op.
	ex.Exec(0, func() { t.Error("ran after stop") })
}

func TestGoExecStopDrains(t *testing.T) {
	ex := newGoExec(nil)
	ex.start()
	n := 0
	for i := 0; i < 100; i++ {
		ex.Exec(0, func() { n++ })
	}
	ex.stop()
	if n != 100 {
		t.Fatalf("stop dropped tasks: ran %d", n)
	}
}

func TestWorldStatsAggregation(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(1), []byte{1, 2, 3}))
	w.MustWait(w.Proc(0).Get(lay.BlockAt(1), 3))
	w.MustWait(w.Proc(0).Call(lay.BlockAt(2), echo, nil))
	w.MustWait(w.Proc(0).Migrate(lay.BlockAt(1), 2))

	s := w.Stats()
	if s.PutOps != 1 || s.GetOps != 1 {
		t.Fatalf("one-sided counters %+v", s)
	}
	if s.PutBytes != 3 || s.GetBytes != 3 {
		t.Fatalf("byte counters %+v", s)
	}
	if s.Migrations != 1 {
		t.Fatalf("migrations %d", s.Migrations)
	}
	if s.ParcelsSent == 0 || s.NetSent == 0 || s.NetBytes == 0 {
		t.Fatalf("traffic counters empty: %+v", s)
	}
	if s.DMADeliveries == 0 {
		t.Fatal("DMA counter empty after remote put/get")
	}
	tb := w.StatsTable()
	if tb.NumRows() < 15 {
		t.Fatalf("stats table has %d rows", tb.NumRows())
	}
}
