package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nmvgas/internal/agas"
	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
)

// Elastic membership. Every world carries a per-world, epoch-versioned
// membership table: one state per locality, a monotonically increasing
// epoch bumped on every membership change, and a recovery overlay that
// re-homes blocks whose routes died with their owner. Two paths change
// membership:
//
//   - planned departure — World.Retire drains a locality's blocks
//     through the ordinary migration machinery, publishes its directory
//     knowledge into the overlay, and removes it;
//   - crash recovery — a fault plan (or World.Kill) cuts a locality's
//     links; the reliability layer's retransmission backoff hitting its
//     ceiling raises suspicion, ping/pong probes on the control path
//     confirm death, and the dead rank's directory-tracked blocks and
//     replica sets are re-homed onto the survivors.
//
// Every membership change bumps the epoch, which fences all NIC-cached
// translation entries installed under older epochs (netsim.TransTable),
// so a stale route can never deliver traffic to a corpse: it either
// redirects through the recovery overlay, NACKs back to the sender with
// a fresh hint, or terminates cleanly at a live host's stale-delivery
// path. World.Join re-admits a dead rank at runtime with a catch-up
// sync that rebuilds its authoritative directory from the overlay.
//
// The machinery is armed only when the world actually uses it (a fault
// plan with kill/restart entries, or an explicit Kill/Retire/Join):
// unperturbed worlds pay a single atomic load on the paths that consult
// membership, and their golden counters are unchanged.

// MemberState is one locality's lifecycle state in the membership table.
type MemberState uint8

const (
	// MemberAlive is the steady state: the locality serves traffic.
	MemberAlive MemberState = iota
	// MemberSuspect marks a locality whose traffic is silently
	// disappearing; probes are in flight to confirm or refute.
	MemberSuspect
	// MemberDraining marks a planned departure mid-drain (Retire).
	MemberDraining
	// MemberDead is a confirmed departure: links fenced, blocks
	// re-homed, routes epoch-fenced.
	MemberDead
	// MemberJoining marks a dead locality mid-readmission (Join).
	MemberJoining
)

func (s MemberState) String() string {
	switch s {
	case MemberAlive:
		return "alive"
	case MemberSuspect:
		return "suspect"
	case MemberDraining:
		return "draining"
	case MemberDead:
		return "dead"
	case MemberJoining:
		return "joining"
	}
	return fmt.Sprintf("member(%d)", uint8(s))
}

// probeRounds is how many ping rounds a suspect survives unanswered
// before being declared dead; probePings is the per-round ping count
// (redundancy against the fault plan dropping the probe itself).
const (
	probeRounds = 2
	probePings  = 2
)

// rehomeEntry is one recovery-overlay record: where a block whose route
// died with its owner now lives, and which (dead) rank was its home.
type rehomeEntry struct {
	owner, home int
}

// probeState tracks one in-flight liveness probe (global single-flight
// per target).
type probeState struct {
	rounds int
	pong   bool
}

// membership is the world's membership table. It implements
// netsim.Liveness, so the DES fabric consults it directly; the
// goroutine transport (chanNet) reads it inline.
type membership struct {
	w *World

	// epoch is the membership version; every change bumps it and fences
	// NIC translation state installed under older epochs.
	epoch atomic.Uint64
	// armed gates the whole machinery: false until the world kills,
	// retires, or joins a locality (or schedules it via the fault plan).
	armed atomic.Bool
	// down is per-rank link state, the ground truth at the transport
	// boundary: traffic to or from a down rank is swallowed whether or
	// not anyone has noticed yet. Read on every transmit when armed.
	down []atomic.Bool

	mu        sync.Mutex
	state     []MemberState
	surrogate []int // per dead rank: live rank that terminates stale traffic
	probing   map[int]*probeState
	// rehome is the recovery overlay: blocks whose owner or home died
	// and that were re-homed onto survivors (promoted replicas, and
	// directory entries harvested from a dead home).
	rehome map[gas.BlockID]rehomeEntry
	// lost records blocks that died with their owner (no replica to
	// promote); traffic for them terminates at the stale-drop path.
	lost map[gas.BlockID]struct{}

	// pending counts outstanding recovery steps scheduled on locality
	// actors; RecoveryQuiet reports it drained.
	pending atomic.Int64

	deaths, joins, retires atomic.Uint64
	suspicions             atomic.Uint64
	rehomed, lostCount     atomic.Uint64

	// Transport fault counters for the goroutine engine (the DES fabric
	// counts the same events on its NICs).
	downDrops, deadNacks, staleEpochDrops atomic.Uint64
}

func newMembership(w *World) *membership {
	n := w.cfg.Ranks
	return &membership{
		w:         w,
		down:      make([]atomic.Bool, n),
		state:     make([]MemberState, n),
		surrogate: make([]int, n),
		probing:   make(map[int]*probeState),
		rehome:    make(map[gas.BlockID]rehomeEntry),
		lost:      make(map[gas.BlockID]struct{}),
	}
}

// active reports whether the membership machinery has ever been armed —
// the one-atomic-load gate unperturbed hot paths pay.
func (mem *membership) active() bool { return mem.armed.Load() }

// ---------------------------------------------------------------------
// netsim.Liveness

// Down reports whether rank's link is down (crashed, possibly not yet
// declared dead).
func (mem *membership) Down(rank int) bool { return mem.down[rank].Load() }

// DeadHint reports whether rank has been declared dead, and the
// surrogate rank stale traffic should be bounced toward.
func (mem *membership) DeadHint(rank int) (int, bool) {
	mem.mu.Lock()
	defer mem.mu.Unlock()
	if mem.state[rank] != MemberDead {
		return 0, false
	}
	return mem.surrogate[rank], true
}

// Epoch returns the current membership epoch.
func (mem *membership) Epoch() uint64 { return mem.epoch.Load() }

// Rehome returns the post-recovery owner of a block whose route died
// with its owner: a promoted replica master, or the surviving owner of
// a block whose home died.
func (mem *membership) Rehome(b gas.BlockID) (int, bool) {
	mem.mu.Lock()
	defer mem.mu.Unlock()
	e, ok := mem.rehome[b]
	if !ok {
		return 0, false
	}
	return e.owner, true
}

// ---------------------------------------------------------------------
// Host-translation gate

// redirect steers host-side translation around dead ranks: the recovery
// overlay wins, then the block's home (whose directory re-resolves
// authoritatively), then the dead rank's surrogate — whose
// stale-delivery path terminates traffic for genuinely lost blocks
// cleanly instead of chasing a corpse. Unarmed worlds pay one atomic
// load.
func (mem *membership) redirect(b gas.BlockID, owner, home int) int {
	if !mem.active() {
		return owner
	}
	mem.mu.Lock()
	defer mem.mu.Unlock()
	if e, ok := mem.rehome[b]; ok && !mem.down[e.owner].Load() {
		return e.owner
	}
	if mem.state[owner] != MemberDead {
		return owner
	}
	if home != owner && !mem.down[home].Load() {
		return home
	}
	return mem.surrogate[owner]
}

// isLost reports whether b died with its owner.
func (mem *membership) isLost(b gas.BlockID) bool {
	if !mem.active() {
		return false
	}
	mem.mu.Lock()
	defer mem.mu.Unlock()
	_, ok := mem.lost[b]
	return ok
}

// declaredDead reports the table's belief about rank.
func (mem *membership) declaredDead(rank int) bool {
	mem.mu.Lock()
	defer mem.mu.Unlock()
	return mem.state[rank] == MemberDead
}

// ---------------------------------------------------------------------
// Failure suspicion: backoff ceiling → probe → declare

// probeTimeout is the per-round pong deadline.
func (mem *membership) probeTimeout() netsim.VTime { return 2 * mem.w.relCfg.MaxRTO }

// suspectSweep fires when one of l's reliability channels hits its
// retransmission backoff ceiling: something is silently eating traffic,
// and the channel key alone cannot name the culprit (under NIC routing
// the channel is the block's home, not the crashed owner). Probe every
// currently-alive peer; probes are single-flight per target, so
// repeated ceilings cost nothing while a probe is out.
func (mem *membership) suspectSweep(l *Locality) {
	if !mem.active() || mem.down[l.rank].Load() {
		// A corpse's suspicions don't count: a crashed rank's own
		// timers see universal silence.
		return
	}
	for r := 0; r < mem.w.cfg.Ranks; r++ {
		if r != l.rank {
			mem.beginProbe(l, r)
		}
	}
}

func (mem *membership) beginProbe(l *Locality, target int) {
	mem.mu.Lock()
	if mem.state[target] != MemberAlive || mem.probing[target] != nil {
		mem.mu.Unlock()
		return
	}
	mem.probing[target] = &probeState{}
	mem.state[target] = MemberSuspect
	mem.mu.Unlock()
	mem.suspicions.Add(1)
	mem.w.traceMember(l.rank, TraceMemberSuspect, uint64(target))
	mem.sendPings(l, target)
	mem.armProbeCheck(l, target)
}

// sendPings fires the probe round: rank-addressed control pings outside
// the reliability layer (their silence is the signal; retransmitting
// them would blur it).
func (mem *membership) sendPings(l *Locality, target int) {
	for i := 0; i < probePings; i++ {
		m := netsim.NewMessage()
		m.Kind = kMemberPing
		m.Src = l.rank
		m.Dst = target
		m.Wire = 32
		l.w.net.nicSend(l.rank, m)
	}
}

func (mem *membership) armProbeCheck(l *Locality, target int) {
	d := mem.probeTimeout()
	if mem.w.eng != nil {
		mem.w.eng.After(d, func() { mem.probeCheck(l, target) })
		return
	}
	time.AfterFunc(mem.w.goWall(d), func() { mem.probeCheck(l, target) })
}

// probeCheck runs at the pong deadline: a pong clears the suspicion, an
// unanswered final round declares death. A target whose link came back
// up mid-probe (a restart racing the probe) gets a fresh round instead
// of a wrongful declaration.
func (mem *membership) probeCheck(l *Locality, target int) {
	mem.mu.Lock()
	pr := mem.probing[target]
	if pr == nil {
		mem.mu.Unlock()
		return
	}
	if pr.pong {
		delete(mem.probing, target)
		if mem.state[target] == MemberSuspect {
			mem.state[target] = MemberAlive
		}
		mem.mu.Unlock()
		mem.w.traceMember(l.rank, TraceMemberAlive, uint64(target))
		return
	}
	pr.rounds++
	if pr.rounds < probeRounds || !mem.down[target].Load() {
		pr.pong = false
		mem.mu.Unlock()
		mem.sendPings(l, target)
		mem.armProbeCheck(l, target)
		return
	}
	delete(mem.probing, target)
	mem.mu.Unlock()
	mem.declareDead(target)
}

// pongFrom records a probe answer.
func (mem *membership) pongFrom(rank int) {
	mem.mu.Lock()
	if pr := mem.probing[rank]; pr != nil {
		pr.pong = true
	}
	mem.mu.Unlock()
}

// ---------------------------------------------------------------------
// Death and recovery

// nextLiveLocked picks the surrogate for a dead rank: the next rank
// (cyclically) the table still believes in. Callers hold mem.mu.
func (mem *membership) nextLiveLocked(d int) int {
	n := mem.w.cfg.Ranks
	for i := 1; i < n; i++ {
		r := (d + i) % n
		if mem.state[r] != MemberDead && !mem.down[r].Load() {
			return r
		}
	}
	return d
}

// declareDead confirms a locality's death: fence its link, bump the
// epoch (fencing every NIC-cached route installed under older epochs),
// and re-home its blocks onto the survivors.
func (mem *membership) declareDead(d int) {
	mem.mu.Lock()
	if mem.state[d] == MemberDead {
		mem.mu.Unlock()
		return
	}
	mem.state[d] = MemberDead
	mem.surrogate[d] = mem.nextLiveLocked(d)
	mem.mu.Unlock()
	mem.down[d].Store(true)
	mem.deaths.Add(1)
	mem.w.bumpEpoch(mem.epoch.Add(1))
	mem.w.traceMember(d, TraceMemberDead, uint64(d))
	mem.recoverDead(d)
}

// addRehome records one recovery-overlay route.
func (mem *membership) addRehome(b gas.BlockID, owner, home int) {
	mem.mu.Lock()
	mem.rehome[b] = rehomeEntry{owner: owner, home: home}
	mem.mu.Unlock()
}

func (mem *membership) donePending() { mem.pending.Add(-1) }

// recoverDead re-homes everything the dead locality was responsible
// for. The harvest runs on the dead rank's own actor: its links are cut
// but the actor still drains, so the snapshot serializes against any
// handler that was mid-flight at the moment of death (and the DES
// engine orders it deterministically). Per-rank store mutations are
// then scheduled on the owning actors; mem.pending counts the
// outstanding steps.
func (mem *membership) recoverDead(d int) {
	w := mem.w
	dl := w.locs[d]
	mem.pending.Add(1)
	// Under the sharded engine the whole harvest runs at a barrier
	// (w.onActor), because it reads the corpse's store and directory and
	// fans mutations out across surviving ranks — all of which is global
	// work no single shard may do mid-window.
	w.onActor(dl, func() {
		defer mem.donePending()

		// Harvest the corpse: resident master blocks, and the directory
		// knowledge homed here (the directory is logically replicated
		// metadata — it survives the data loss).
		var masters []*gas.Block
		dl.store.Range(func(b *gas.Block) bool {
			if b.Kind == gas.KindData && !b.Replica && !b.Pinned {
				masters = append(masters, b)
			}
			return true
		})
		sort.Slice(masters, func(i, j int) bool { return masters[i].ID < masters[j].ID })
		var owners map[gas.BlockID]int
		var repls map[gas.BlockID]agas.ReplicaSet
		if dir := dl.space.Directory(); dir != nil {
			owners = dir.Entries()
			repls = dir.ReplicaEntries()
		}

		// Blocks homed here but owned by survivors: their data is safe;
		// record the overlay route so home-directed traffic redirects.
		for _, b := range sortedBlockIDs(owners) {
			mem.addRehome(b, owners[b], d)
		}

		// Master copies resident here: promote through the replica set
		// when one exists, declare lost otherwise.
		for _, blk := range masters {
			if rs, ok := repls[blk.ID]; ok && rs.Master == d {
				mem.promote(d, blk, rs)
			} else {
				mem.loseBlock(blk)
			}
		}

		// Replica sets mastered by survivors shed the dead holder.
		mem.shedHolder(d)
	})
}

// sortedBlockIDs returns m's keys in ascending order, for deterministic
// recovery under the DES engine.
func sortedBlockIDs[V any](m map[gas.BlockID]V) []gas.BlockID {
	ids := make([]gas.BlockID, 0, len(m))
	for b := range m {
		ids = append(ids, b)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// promote turns one of blk's surviving replica holders into its new
// master. The corpse's final image seeds the promotion — standing in
// for the holder's copy plus the write-ahead state a production system
// would replay; a holder whose copy is fresh has identical bytes.
func (mem *membership) promote(d int, blk *gas.Block, rs agas.ReplicaSet) {
	w := mem.w
	nm := -1
	var kept []int
	for _, h := range rs.Holders {
		if h == d || mem.down[h].Load() {
			continue
		}
		if nm < 0 {
			nm = h
		} else {
			kept = append(kept, h)
		}
	}
	if nm < 0 {
		// Every holder died with the master.
		mem.loseBlock(blk)
		return
	}
	b, home, bsize := blk.ID, blk.Home, blk.BSize
	data := append([]byte(nil), blk.Data...)
	hl := w.locs[nm]
	mem.pending.Add(1)
	w.onActor(hl, func() {
		defer mem.donePending()
		if old, ok := hl.store.Get(b); ok && old.Replica {
			hl.store.Remove(b)
		}
		hl.dropReplicaState(b)
		nb := &gas.Block{ID: b, Kind: gas.KindData, BSize: bsize, Data: data, Home: home}
		if err := hl.store.Insert(nb); err != nil {
			w.fail("rank %d: promote replica of block %d: %v", hl.rank, b, err)
		}
		if w.caps.Migration {
			// The strategy's destination-side install hook (static spaces
			// have none: residency alone makes the promotion visible).
			hl.space.InstallMigrated(b)
		}
		w.rehomeReplicas(b, nm, kept)
		mem.rehomed.Add(1)
		w.traceMember(nm, TraceRehome, uint64(b))
		if home != d && !mem.down[home].Load() && w.caps.Migration {
			// The home is alive: flip its directory authoritatively,
			// exactly as a migration commit would.
			mem.pending.Add(1)
			w.onActor(w.locs[home], func() {
				defer mem.donePending()
				w.locs[home].space.CommitMigrate(b, nm)
			})
		} else {
			mem.addRehome(b, nm, home)
		}
	})
}

// loseBlock records a block that died with its owner and sweeps its
// translation state, so residual traffic falls through to the home or
// surrogate and terminates at the (acked) stale-drop path instead of
// chasing a corpse or retrying forever.
func (mem *membership) loseBlock(blk *gas.Block) {
	mem.mu.Lock()
	mem.lost[blk.ID] = struct{}{}
	mem.mu.Unlock()
	mem.lostCount.Add(1)
	mem.w.dropTranslation(blk.ID, blk.Home)
}

// shedHolder removes rank d from every replica set mastered by a
// survivor, reinstalling the surviving read geometry (a set whose only
// holder died dissolves).
func (mem *membership) shedHolder(d int) {
	w := mem.w
	for r, loc := range w.locs {
		if r == d || mem.down[r].Load() {
			continue
		}
		dir := loc.space.Directory()
		if dir == nil {
			continue
		}
		repls := dir.ReplicaEntries()
		for _, b := range sortedBlockIDs(repls) {
			rs := repls[b]
			kept := rs.Holders[:0]
			shed := false
			for _, h := range rs.Holders {
				if h == d {
					shed = true
					continue
				}
				kept = append(kept, h)
			}
			if shed {
				w.rehomeReplicas(b, rs.Master, kept)
			}
		}
	}
}

// ---------------------------------------------------------------------
// World API: Kill / Restart / Retire / Join

// Kill cuts rank's links immediately, as a crash would: in-flight and
// future traffic to or from it is swallowed, suspicion builds on the
// survivors through retransmission silence, and death is confirmed by
// unanswered probes. Kill requires the reliability layer (a kill
// without retransmission machinery silently black-holes traffic);
// configure Faults (a fault plan with kill entries enables it
// automatically) or Reliability.Force.
func (w *World) Kill(rank int) {
	if !w.cfg.reliable() {
		panic("runtime: Kill requires the reliability layer (set Config.Faults or Reliability.Force)")
	}
	w.mem.armed.Store(true)
	w.mem.down[rank].Store(true)
}

// Restart brings rank's link back up. A rank restarted before the
// survivors declared it dead resumes transparently (a transient
// partition: its state is intact and retransmissions drain the
// backlog); one declared dead rejoins through the full Join path.
func (w *World) Restart(rank int) {
	if w.mem.declaredDead(rank) {
		w.Join(rank)
		return
	}
	w.mem.down[rank].Store(false)
}

// MemberState returns rank's membership state.
func (w *World) MemberState(rank int) MemberState {
	w.mem.mu.Lock()
	defer w.mem.mu.Unlock()
	return w.mem.state[rank]
}

// MembershipEpoch returns the current membership epoch.
func (w *World) MembershipEpoch() uint64 { return w.mem.epoch.Load() }

// RecoveryQuiet reports whether no crash-recovery work is in flight.
func (w *World) RecoveryQuiet() bool { return w.mem.pending.Load() == 0 }

// AwaitMember blocks until rank reaches the wanted state with recovery
// quiescent. Under EngineDES it advances simulated time; under EngineGo
// it polls up to timeout. Reports whether the condition held.
func (w *World) AwaitMember(rank int, want MemberState, timeout time.Duration) bool {
	cond := func() bool { return w.MemberState(rank) == want && w.RecoveryQuiet() }
	if w.eng != nil {
		if cond() {
			return true
		}
		// Stride-checked drain: the predicate takes the membership lock,
		// and state transitions are thousands of events apart, so probing
		// it per event is pure overhead. The ≤63-event overshoot is
		// harmless — nothing here measures the stopping time.
		w.pulseResume()
		w.eng.RunUntilStride(cond, 64)
		return cond()
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(200 * time.Microsecond)
	}
	return cond()
}

// Retire removes rank from the world gracefully: its replica holdings
// dissolve, every data block it owns migrates to the survivors through
// the ordinary migration machinery, its directory knowledge becomes the
// recovery overlay, and only then does its link drop and the epoch
// fence cached routes through it. Requires a migrating address space.
func (w *World) Retire(rank int) error {
	if !w.caps.Migration {
		return fmt.Errorf("runtime: Retire needs a migrating address space; %q is static", w.caps.Name)
	}
	mem := w.mem
	mem.mu.Lock()
	if mem.state[rank] != MemberAlive {
		st := mem.state[rank]
		mem.mu.Unlock()
		return fmt.Errorf("runtime: Retire(%d): member is %v, not alive", rank, st)
	}
	var live []int
	for r := 0; r < w.cfg.Ranks; r++ {
		if r != rank && mem.state[r] == MemberAlive && !mem.down[r].Load() {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		mem.mu.Unlock()
		return fmt.Errorf("runtime: Retire(%d): no surviving locality to drain to", rank)
	}
	mem.state[rank] = MemberDraining
	mem.mu.Unlock()
	mem.armed.Store(true)
	w.traceMember(rank, TraceMemberRetire, uint64(rank))

	// Holder copies on the retiring rank dissolve from their sets (the
	// masters keep serving); sets mastered here travel with the
	// migrations below.
	mem.shedHolder(rank)

	// Drain: migrate every owned data block out, round-robin over the
	// survivors.
	type drainBlk struct {
		id   gas.BlockID
		home int
	}
	var drain []drainBlk
	w.locs[rank].store.Range(func(b *gas.Block) bool {
		if b.Kind == gas.KindData && !b.Pinned && !b.Replica {
			drain = append(drain, drainBlk{id: b.ID, home: b.Home})
		}
		return true
	})
	sort.Slice(drain, func(i, j int) bool { return drain[i].id < drain[j].id })
	p := w.Proc(rank)
	var refs []*LCORef
	for i, db := range drain {
		refs = append(refs, p.Migrate(gas.New(db.home, db.id, 0), live[i%len(live)]))
	}
	for i, ref := range refs {
		v, err := w.Wait(ref)
		if err != nil {
			return fmt.Errorf("runtime: Retire(%d): draining block %d: %w", rank, drain[i].id, err)
		}
		if st := migStatus(v); st != MigrateOK {
			return fmt.Errorf("runtime: Retire(%d): draining block %d: migration status %d", rank, drain[i].id, st)
		}
	}

	// The rank leaves: its directory knowledge (blocks homed here, now
	// owned by survivors) becomes the recovery overlay, the link drops,
	// and the epoch fences every cached route through it.
	if dir := w.locs[rank].space.Directory(); dir != nil {
		owners := dir.Entries()
		for _, b := range sortedBlockIDs(owners) {
			mem.addRehome(b, owners[b], rank)
		}
	}
	mem.mu.Lock()
	mem.state[rank] = MemberDead
	mem.surrogate[rank] = mem.nextLiveLocked(rank)
	mem.mu.Unlock()
	mem.down[rank].Store(true)
	mem.retires.Add(1)
	w.bumpEpoch(mem.epoch.Add(1))
	w.traceMember(rank, TraceMemberDead, uint64(rank))
	return nil
}

// Join re-admits a dead rank at runtime. The reborn locality starts
// from a wiped image (its previous incarnation's state died with it):
// store, coherence state, reliability streams, and NIC tables are
// reset, then a catch-up sync rebuilds its authoritative directory from
// the recovery overlay and relearns the replica read geometry. The
// epoch bumps once the rank is serving again. Use AwaitMember (or
// Drain under DES) to observe completion.
func (w *World) Join(rank int) error {
	mem := w.mem
	mem.mu.Lock()
	if mem.state[rank] != MemberDead {
		st := mem.state[rank]
		mem.mu.Unlock()
		return fmt.Errorf("runtime: Join(%d): member is %v, not dead", rank, st)
	}
	mem.state[rank] = MemberJoining
	mem.mu.Unlock()
	mem.armed.Store(true)
	l := w.locs[rank]
	mem.pending.Add(1)
	// Rebirth wipes cross-cutting state (world receive streams, NIC
	// tables, the recovery overlay), so under sharding it runs at a
	// barrier like the rest of the membership transitions.
	w.onActor(l, func() {
		defer mem.donePending()
		mem.rebirth(l)
	})
	return nil
}

// rebirth runs on the joining rank's actor: wipe, reset, catch up.
func (mem *membership) rebirth(l *Locality) {
	w := mem.w
	rank := l.rank

	// Wipe the previous incarnation's address-space image and rebuild
	// the zeroed infrastructure block.
	var ids []gas.BlockID
	l.store.Range(func(b *gas.Block) bool { ids = append(ids, b.ID); return true })
	for _, id := range ids {
		l.store.Remove(id)
	}
	infra := &gas.Block{
		ID: w.locBase + gas.BlockID(rank), Kind: gas.KindData,
		BSize: 64, Data: make([]byte, 64), Home: rank, Pinned: true,
	}
	if err := l.store.Insert(infra); err != nil {
		w.fail("rank %d: rebirth infra block: %v", rank, err)
	}
	if dir := l.space.Directory(); dir != nil {
		dir.Clear()
	}
	if c := l.space.Cache(); c != nil {
		c.Clear()
	}
	if t := l.space.Tombstones(); t != nil {
		t.Clear()
	}
	l.mu.Lock()
	l.moving = make(map[gas.BlockID]*moveState)
	l.active = make(map[gas.BlockID]int)
	l.ops = make(map[uint64]opState)
	l.replicas = nil
	l.mu.Unlock()

	// Reliability rebirth: the new incarnation restarts every send
	// stream at sequence 1, so the old incarnation's send state and the
	// world's receive records for it must go — otherwise the reborn
	// sender's first messages are suppressed as duplicate history.
	if l.rel != nil {
		l.rel.mu.Lock()
		l.rel.tx = make(map[int32]*relTxChan)
		l.rel.mu.Unlock()
	}
	if rw := w.relw; rw != nil {
		rw.mu.Lock()
		for k := range rw.rx {
			if k.src == rank {
				delete(rw.rx, k)
			}
		}
		rw.mu.Unlock()
	}

	// NIC rebirth: empty translation state.
	w.resetNICState(rank)

	// Catch-up sync, part 1: reclaim directory authority for blocks
	// homed here that survived on other ranks (the recovery overlay
	// drains back into the reborn authoritative directory). Static
	// address spaces cannot express away-from-home ownership, so their
	// overlay entries stay live instead.
	if w.caps.Migration {
		mem.mu.Lock()
		reclaimed := make(map[gas.BlockID]int)
		for b, e := range mem.rehome {
			if e.home == rank {
				reclaimed[b] = e.owner
				delete(mem.rehome, b)
			}
		}
		mem.mu.Unlock()
		for _, b := range sortedBlockIDs(reclaimed) {
			l.space.CommitMigrate(b, reclaimed[b])
		}
	}

	// Catch-up sync, part 2: relearn the replica read geometry from the
	// surviving masters.
	for r, loc := range w.locs {
		if r == rank || mem.down[r].Load() {
			continue
		}
		dir := loc.space.Directory()
		if dir == nil {
			continue
		}
		repls := dir.ReplicaEntries()
		for _, b := range sortedBlockIDs(repls) {
			rs := repls[b]
			l.space.InstallReplicas(b, rs.Master, rs.Holders)
		}
	}

	// Back among the living: open the link, bump the epoch, flip state.
	mem.down[rank].Store(false)
	w.bumpEpoch(mem.epoch.Add(1))
	mem.mu.Lock()
	mem.state[rank] = MemberAlive
	mem.mu.Unlock()
	mem.joins.Add(1)
	w.traceMember(rank, TraceMemberJoin, uint64(rank))
}

// ---------------------------------------------------------------------
// World wiring helpers

// bumpEpoch fences every NIC translation table at the new membership
// epoch, on whichever transport the world runs.
func (w *World) bumpEpoch(epoch uint64) {
	if w.fab != nil {
		w.fab.BumpEpoch(epoch)
		return
	}
	if cn, ok := w.net.(*chanNet); ok {
		for _, st := range cn.nics {
			st.bumpEpoch(epoch)
		}
	}
}

// resetNICState wipes rank's NIC translation state (Join).
func (w *World) resetNICState(rank int) {
	if w.fab != nil {
		w.fab.NIC(rank).ResetState()
		return
	}
	if cn, ok := w.net.(*chanNet); ok {
		cn.nics[rank].reset()
	}
}

// scheduleFaultMembership arms the membership machinery and schedules
// the fault plan's whole-node kills and restarts on the engine clock.
func (w *World) scheduleFaultMembership() {
	kills, restarts := w.cfg.Faults.KillAt, w.cfg.Faults.RestartAt
	if len(kills) == 0 && len(restarts) == 0 {
		return
	}
	w.mem.armed.Store(true)
	at := func(t netsim.VTime, fn func()) {
		if w.eng != nil {
			w.eng.At(t, fn)
			return
		}
		time.AfterFunc(w.goWall(t), fn)
	}
	for _, r := range sortedRankKeys(kills) {
		r := r
		at(kills[r], func() { w.Kill(r) })
	}
	for _, r := range sortedRankKeys(restarts) {
		r := r
		at(restarts[r], func() { w.Restart(r) })
	}
}

func sortedRankKeys(m map[int]netsim.VTime) []int {
	ranks := make([]int, 0, len(m))
	for r := range m {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// migStatus decodes a migration continuation record.
func migStatus(v []byte) int64 {
	if len(v) < 8 {
		return -1
	}
	var s int64
	for i := 7; i >= 0; i-- {
		s = s<<8 | int64(v[i])
	}
	return s
}

// MembershipStats is the membership layer's report.
type MembershipStats struct {
	// Epoch is the current membership epoch (0 = never changed).
	Epoch uint64
	// Deaths / Joins / Retires count confirmed membership changes;
	// Suspicions counts probes raised (including false alarms).
	Deaths, Joins, Retires, Suspicions uint64
	// Rehomed counts blocks recovered onto survivors (promotions and
	// harvested directory entries are both re-homes; this counts
	// promotions). Lost counts blocks that died unreplicated.
	Rehomed, Lost uint64
	// DownDrops / DeadNacks / StaleEpochDrops count transport-level
	// fencing on the goroutine engine (the DES fabric reports the same
	// events in its NIC counters).
	DownDrops, DeadNacks, StaleEpochDrops uint64
}

// MembershipStats returns the membership layer's counters. The
// transport fencing counts merge both sources: the chanNet atomics
// (goroutine engine) and the fabric's per-NIC counters (DES engine), so
// callers see one number per event class regardless of transport.
func (w *World) MembershipStats() MembershipStats {
	m := w.mem
	s := MembershipStats{
		Epoch:           m.epoch.Load(),
		Deaths:          m.deaths.Load(),
		Joins:           m.joins.Load(),
		Retires:         m.retires.Load(),
		Suspicions:      m.suspicions.Load(),
		Rehomed:         m.rehomed.Load(),
		Lost:            m.lostCount.Load(),
		DownDrops:       m.downDrops.Load(),
		DeadNacks:       m.deadNacks.Load(),
		StaleEpochDrops: m.staleEpochDrops.Load(),
	}
	if w.fab != nil {
		t := w.fab.TotalStats()
		s.DownDrops += t.DownDrops
		s.DeadNacks += t.DeadNacks
		s.StaleEpochDrops += t.StaleEpochDrops
	}
	return s
}

// NICFaultStats returns one rank's transport-fencing counters (messages
// dropped at a down link, dead-rank NACKs synthesized, and stale-epoch
// table updates discarded). Per-rank attribution exists only where the
// NIC model runs — the DES fabric; under the goroutine engine the
// counts are world-level (see MembershipStats) and this reports zeros.
func (w *World) NICFaultStats(rank int) (downDrops, deadNacks, staleEpochDrops uint64) {
	if w.fab == nil {
		return 0, 0, 0
	}
	st := w.fab.NIC(rank).Stats
	return st.DownDrops, st.DeadNacks, st.StaleEpochDrops
}
