package runtime

import (
	"bytes"
	"testing"
	"time"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
)

// relStress is a reliability config generous enough that recovery
// always outruns abandonment: suspicion needs ~5 backoff doublings plus
// two probe rounds before the dead rank's blocks re-home, and the
// in-flight op must still have retransmission attempts left when the
// redirect finally lands.
var relStress = ReliabilityConfig{Force: true, MaxAttempts: 64}

// TestKillPromotesReplicaAndServes drives the full crash pipeline in
// every mode and on both engines: a replicated block's master is
// killed mid-workload, retransmission silence raises suspicion,
// unanswered probes confirm death, a surviving replica holder is
// promoted to master, and the in-flight write lands on the promoted
// copy — which then serves reads for the whole surviving membership.
func TestKillPromotesReplicaAndServes(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng, Reliability: relStress})
		w.Start()
		lay, err := w.AllocLocal(1, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)
		w.MustWait(w.Proc(0).Put(g, []byte{1, 1}))
		if err := w.ReplicateLive(lay, 2); err != nil {
			t.Fatal(err)
		}

		// Rank 1 (the master and home) crashes; the write below finds
		// only silence until the survivors declare it dead and promote
		// a replica.
		w.Kill(1)
		ref := w.Proc(0).Put(g, []byte{2, 2})
		got := w.MustWait(ref)
		_ = got
		if !w.AwaitMember(1, MemberDead, 20*time.Second) {
			t.Fatalf("rank 1 never declared dead: state=%v stats=%+v", w.MemberState(1), w.MembershipStats())
		}

		for _, r := range []int{0, 2, 3} {
			got := w.MustWait(w.Proc(r).Get(g, 2))
			if !bytes.Equal(got, []byte{2, 2}) {
				t.Fatalf("rank %d read %v from promoted master", r, got)
			}
		}
		ms := w.MembershipStats()
		if ms.Deaths != 1 {
			t.Fatalf("deaths = %d, want 1 (stats %+v)", ms.Deaths, ms)
		}
		if ms.Suspicions == 0 {
			t.Fatal("death declared without suspicion")
		}
		if ms.Rehomed == 0 {
			t.Fatal("no block was re-homed despite a live replica")
		}
		if ms.Epoch == 0 {
			t.Fatal("membership epoch never bumped")
		}
	})
}

// TestUnreplicatedBlockIsLostCleanly kills the owner of a block with no
// replica: the block is lost, and traffic for it terminates through the
// acked stale-drop path (or bounded NACK abandonment) instead of
// black-holing or crashing the world.
func TestUnreplicatedBlockIsLostCleanly(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng, Reliability: relStress})
		w.Start()
		lay, err := w.AllocLocal(1, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)
		w.MustWait(w.Proc(0).Put(g, []byte{7}))

		w.Kill(1)
		// This put can never be applied — the only copy died. It must
		// still terminate: the reliability layer keeps retransmitting
		// until the surrogate's stale-delivery path acks-and-drops it.
		w.Proc(0).PutAsync(g, []byte{8}, nil)
		if !w.AwaitMember(1, MemberDead, 20*time.Second) {
			t.Fatalf("rank 1 never declared dead: %+v", w.MembershipStats())
		}
		if w.Config().Engine == EngineDES {
			w.Drain()
		} else {
			// Let the dead-nack/stale-drop round trips land.
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				ds := w.DeliveryStats()
				if ds.StaleDrops > 0 || ds.Abandoned > 0 {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		ms := w.MembershipStats()
		if ms.Lost == 0 {
			t.Fatalf("block not recorded lost: %+v", ms)
		}
		ds := w.DeliveryStats()
		if ds.StaleDrops == 0 && ds.Abandoned == 0 {
			t.Fatalf("orphaned put neither stale-dropped nor abandoned: %+v", ds)
		}
	})
}

// TestRetireDrainsAndServes retires a rank gracefully: its blocks
// migrate to survivors, reads and writes keep working through the
// recovery overlay, and the static mode refuses with a clear error.
func TestRetireDrainsAndServes(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocLocal(1, 64, 2)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)
		w.MustWait(w.Proc(0).Put(g, []byte{3, 3}))

		err = w.Retire(1)
		if mode == PGAS {
			if err == nil {
				t.Fatal("Retire must refuse on a static address space")
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if st := w.MemberState(1); st != MemberDead {
			t.Fatalf("retired rank state = %v", st)
		}
		// The drained block serves reads and writes from every survivor.
		for _, r := range []int{0, 2, 3} {
			got := w.MustWait(w.Proc(r).Get(g, 2))
			if !bytes.Equal(got, []byte{3, 3}) {
				t.Fatalf("rank %d read %v after retire", r, got)
			}
		}
		w.MustWait(w.Proc(2).Put(g, []byte{4, 4}))
		if got := w.MustWait(w.Proc(3).Get(g, 2)); !bytes.Equal(got, []byte{4, 4}) {
			t.Fatalf("post-retire write read back %v", got)
		}
		ms := w.MembershipStats()
		if ms.Retires != 1 || ms.Epoch == 0 {
			t.Fatalf("retires=%d epoch=%d", ms.Retires, ms.Epoch)
		}
		// Retiring a dead rank must refuse.
		if err := w.Retire(1); err == nil {
			t.Fatal("double Retire accepted")
		}
	})
}

// TestJoinReadmitsAndServes kills a rank, recovers, then re-admits it:
// the reborn locality starts from a wiped image, catches up from the
// recovery overlay, and serves reads again.
func TestJoinReadmitsAndServes(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng, Reliability: relStress})
		w.Start()
		lay, err := w.AllocLocal(1, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)
		w.MustWait(w.Proc(0).Put(g, []byte{5, 5}))
		if err := w.ReplicateLive(lay, 2); err != nil {
			t.Fatal(err)
		}

		w.Kill(1)
		w.MustWait(w.Proc(0).Put(g, []byte{6, 6}))
		if !w.AwaitMember(1, MemberDead, 20*time.Second) {
			t.Fatalf("rank 1 never declared dead: %+v", w.MembershipStats())
		}

		// Join while the world keeps running; the rank must come back
		// alive and serve reads of the value written after its death.
		if err := w.Join(1); err != nil {
			t.Fatal(err)
		}
		if !w.AwaitMember(1, MemberAlive, 20*time.Second) {
			t.Fatalf("rank 1 never rejoined: state=%v", w.MemberState(1))
		}
		got := w.MustWait(w.Proc(1).Get(g, 2))
		if !bytes.Equal(got, []byte{6, 6}) {
			t.Fatalf("reborn rank read %v", got)
		}
		ms := w.MembershipStats()
		if ms.Joins != 1 || ms.Deaths != 1 {
			t.Fatalf("joins=%d deaths=%d", ms.Joins, ms.Deaths)
		}
		// Joining a live rank must refuse.
		if err := w.Join(1); err == nil {
			t.Fatal("Join of a live rank accepted")
		}
	})
}

// TestRestartBeforeDeathResumesTransparently kills and restarts a rank
// faster than the probe machinery can confirm death: the partition is
// transient, retransmissions drain the backlog, and membership records
// no death.
func TestRestartBeforeDeathResumesTransparently(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES, Reliability: relStress})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)

	w.Kill(1)
	ref := w.Proc(0).Put(g, []byte{9})
	// Bring the link back after two retransmission deadlines — well
	// before the two-round probe sequence can complete.
	w.Engine().After(3*w.Config().Reliability.RTO, func() { w.Restart(1) })
	w.MustWait(ref)
	w.Drain()
	if got := w.MustWait(w.Proc(0).Get(g, 1)); !bytes.Equal(got, []byte{9}) {
		t.Fatalf("read %v after transient partition", got)
	}
	if ms := w.MembershipStats(); ms.Deaths != 0 {
		t.Fatalf("transient partition recorded a death: %+v", ms)
	}
}

// TestFaultPlanSchedulesKillAndRestart drives the same pipeline from a
// declarative fault plan instead of explicit calls: the schedule arms
// membership at Start and the C2-style kill fires on the engine clock.
func TestFaultPlanSchedulesKillAndRestart(t *testing.T) {
	w := testWorld(t, Config{
		Ranks: 4, Mode: AGASNM, Engine: EngineDES,
		Reliability: relStress,
		Faults: netsim.FaultPlan{
			KillAt: map[int]netsim.VTime{1: 50_000},
			// The restart must land after death is confirmed (~20ms:
			// five backoff doublings to the ceiling plus two probe
			// rounds) or the partition is transient and no Join runs.
			RestartAt: map[int]netsim.VTime{1: 60_000_000},
		},
	})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	w.MustWait(w.Proc(0).Put(g, []byte{1}))
	if err := w.ReplicateLive(lay, 2); err != nil {
		t.Fatal(err)
	}
	// Advance past the scheduled kill, then drive a put through the
	// dead window: it lands only after death and promotion.
	w.Engine().RunUntil(func() bool { return w.Now() >= 50_000 })
	w.MustWait(w.Proc(0).Put(g, []byte{2}))
	if !w.AwaitMember(1, MemberDead, 20*time.Second) {
		t.Fatalf("scheduled kill never confirmed: %+v", w.MembershipStats())
	}
	if got := w.MustWait(w.Proc(2).Get(g, 1)); !bytes.Equal(got, []byte{2}) {
		t.Fatalf("read %v after scheduled kill", got)
	}
	// The scheduled restart arrives after death was declared, so it
	// takes the full Join path and the rank comes back serving.
	if !w.AwaitMember(1, MemberAlive, 20*time.Second) {
		t.Fatalf("scheduled restart never rejoined: state=%v %+v", w.MemberState(1), w.MembershipStats())
	}
	if got := w.MustWait(w.Proc(1).Get(g, 1)); !bytes.Equal(got, []byte{2}) {
		t.Fatalf("reborn rank read %v", got)
	}
	if ms := w.MembershipStats(); ms.Deaths != 1 || ms.Joins != 1 {
		t.Fatalf("deaths=%d joins=%d, want 1/1", ms.Deaths, ms.Joins)
	}
}

// TestBackoffCeilingBoundary pins the satellite-3 boundary: under
// sustained silence the channel RTO doubles to exactly MaxRTO and never
// beyond, and membership suspicion is raised only once the ceiling is
// reached — not on the first loss.
func TestBackoffCeilingBoundary(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: PGAS, Engine: EngineDES, Reliability: relStress})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Kill(1)
	w.Proc(0).PutAsync(lay.BlockAt(0), []byte{1}, nil)

	maxRTO := w.Config().Reliability.MaxRTO
	l := w.Locality(0)
	var maxSeen netsim.VTime
	var rtoAtFirstSuspicion netsim.VTime = -1
	sample := func() bool {
		l.rel.mu.Lock()
		for _, tc := range l.rel.tx {
			if tc.rto > maxSeen {
				maxSeen = tc.rto
			}
			if rtoAtFirstSuspicion < 0 && w.MembershipStats().Suspicions > 0 {
				rtoAtFirstSuspicion = tc.rto
			}
		}
		l.rel.mu.Unlock()
		return w.MemberState(1) == MemberDead
	}
	w.Engine().RunUntil(sample)
	w.Drain()

	if maxSeen != maxRTO {
		t.Fatalf("backoff peaked at %d, want exactly MaxRTO %d", maxSeen, maxRTO)
	}
	if rtoAtFirstSuspicion != maxRTO {
		t.Fatalf("suspicion raised at rto %d, want only at the ceiling %d", rtoAtFirstSuspicion, maxRTO)
	}
	if w.MemberState(1) != MemberDead {
		t.Fatal("sustained ceiling never confirmed death")
	}
}

// TestRelRxWindowEviction pins the receive-dedup window's fold
// boundary: out-of-order sequence numbers are held in the above-window
// set only until the gap below them fills, at which point they are
// evicted into the cumulative horizon in one sweep — the set must not
// retain folded entries, and dedup must keep recognising them through
// the horizon afterwards.
func TestRelRxWindowEviction(t *testing.T) {
	rx := &relRxState{above: make(map[uint64]struct{})}
	// Sequences 2..10 arrive ahead of 1: all parked above the horizon.
	for seq := uint64(2); seq <= 10; seq++ {
		rx.record(seq)
	}
	if rx.cum != 0 || len(rx.above) != 9 {
		t.Fatalf("pre-fold: cum=%d above=%d, want 0/9", rx.cum, len(rx.above))
	}
	if !rx.seen(5) || rx.seen(1) || rx.seen(11) {
		t.Fatal("window membership wrong before fold")
	}
	// The gap fills: the whole run folds into cum and evicts from above.
	rx.record(1)
	if rx.cum != 10 {
		t.Fatalf("post-fold horizon = %d, want 10", rx.cum)
	}
	if len(rx.above) != 0 {
		t.Fatalf("fold left %d entries in the out-of-order set", len(rx.above))
	}
	// Dedup still recognises folded history through the horizon alone.
	for seq := uint64(1); seq <= 10; seq++ {
		if !rx.seen(seq) {
			t.Fatalf("seq %d forgotten after fold", seq)
		}
	}
	// A fresh out-of-order arrival parks again; the horizon is unmoved.
	rx.record(12)
	if rx.cum != 10 || len(rx.above) != 1 || rx.seen(11) {
		t.Fatalf("post-park: cum=%d above=%d", rx.cum, len(rx.above))
	}
}

// TestRebirthResetsDedupStreams pins the Join half of the dedup
// boundary: a reborn rank restarts its send streams at sequence 1, so
// the world's receive records for the old incarnation must be evicted
// or every message from the new one would be suppressed as history.
func TestRebirthResetsDedupStreams(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASSW, Engine: EngineDES, Reliability: relStress})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	w.MustWait(w.Proc(0).Put(g, []byte{1}))
	if err := w.ReplicateLive(lay, 2); err != nil {
		t.Fatal(err)
	}
	// Traffic FROM rank 1 seeds receive records keyed by src=1.
	w.MustWait(w.Proc(1).Put(g, []byte{2}))
	w.Kill(1)
	w.MustWait(w.Proc(0).Put(g, []byte{3}))
	if !w.AwaitMember(1, MemberDead, 20*time.Second) {
		t.Fatalf("rank 1 never declared dead: %+v", w.MembershipStats())
	}
	if err := w.Join(1); err != nil {
		t.Fatal(err)
	}
	if !w.AwaitMember(1, MemberAlive, 20*time.Second) {
		t.Fatal("rank 1 never rejoined")
	}
	w.relw.mu.Lock()
	for k := range w.relw.rx {
		if k.src == 1 {
			w.relw.mu.Unlock()
			t.Fatalf("stale dedup stream for the dead incarnation survived rebirth: %+v", k)
		}
	}
	w.relw.mu.Unlock()
	// The reborn sender's stream restarts at seq 1 and is not
	// suppressed as duplicate history.
	w.MustWait(w.Proc(1).Put(g, []byte{4}))
	if got := w.MustWait(w.Proc(2).Get(g, 1)); !bytes.Equal(got, []byte{4}) {
		t.Fatalf("reborn sender's write suppressed: read %v", got)
	}
}

// TestStopAbortsInFlightMigrations is the satellite-2 regression: Stop
// on the goroutine engine must coexist with in-flight migrations —
// drain what it can, abort what it cannot, and leave every block
// resident exactly once. Run under -race this also pins the locking
// between Stop's drain loop and the migration hot path.
func TestStopAbortsInFlightMigrations(t *testing.T) {
	for _, mode := range []Mode{AGASSW, AGASNM} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: EngineGo})
			w.Start()
			lay, err := w.AllocLocal(0, 128, 16)
			if err != nil {
				t.Fatal(err)
			}
			p := w.Proc(0)
			for i := uint32(0); i < 16; i++ {
				p.Migrate(lay.BlockAt(i), int(i%3)+1)
			}
			// Stop immediately: some migrations are mid-flight.
			w.Stop()
			for r := 0; r < 4; r++ {
				l := w.Locality(r)
				l.mu.Lock()
				n := len(l.moving)
				l.mu.Unlock()
				if n != 0 {
					t.Fatalf("rank %d still has %d blocks mid-move after Stop", r, n)
				}
			}
			for i := uint32(0); i < 16; i++ {
				b := lay.Base.Block() + gas.BlockID(i)
				copies := 0
				for r := 0; r < 4; r++ {
					if blk, ok := w.Locality(r).Store().Get(b); ok && !blk.Replica {
						copies++
					}
				}
				if copies != 1 {
					t.Fatalf("block %d resident %d times after Stop", b, copies)
				}
			}
		})
	}
}
