package runtime

import (
	"encoding/binary"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
)

// Vectored one-sided operations: one request carries many fragments of a
// single block and costs one completion, so a scatter write (or gather
// read) pays the per-message overheads once instead of per fragment. The
// request payload is assembled straight into a (pooled, when the world
// allows it) wire buffer — fragments are copied exactly once, at encode.
//
// Wire formats:
//
//	kPutVec payload: [u32 off][u32 len][len bytes] repeated
//	kGetVec payload: [u32 off][u32 len] repeated; the kGetRep reply is
//	the fragments concatenated in request order
//
// Offsets are relative to the request's target GVA.

// PutSeg is one fragment of a vectored put.
type PutSeg struct {
	Off  uint32
	Data []byte
}

// GetSeg is one fragment of a vectored get.
type GetSeg struct {
	Off, N uint32
}

const putSegHdr = 8
const getSegRec = 8

// PutVecAsync writes all segs into the block at dst with one request and
// one ack; done runs on this locality at remote completion. All offsets
// must fall inside dst's block.
func (l *Locality) PutVecAsync(dst gas.GVA, segs []PutSeg, done func()) {
	total := 0
	for i := range segs {
		total += len(segs[i].Data)
	}
	l.Stats.PutOps.Inc()
	l.Stats.PutBytes.Add(int64(total))
	id := l.newPutOp(done)
	need := len(segs)*putSegHdr + total
	var buf []byte
	pooled := false
	if l.payloadPoolable() {
		buf, pooled = getWireBuf(need)
	} else {
		buf = make([]byte, 0, need)
	}
	for i := range segs {
		s := &segs[i]
		buf = binary.LittleEndian.AppendUint32(buf, s.Off)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Data)))
		buf = append(buf, s.Data...)
	}
	m := netsim.NewMessage()
	m.Kind = kPutVec
	m.Src = l.rank
	m.Target = dst
	m.DMA = true
	m.Payload = buf
	m.PayloadPooled = pooled
	m.Wire = 32 + len(buf)
	m.OpID = id
	l.routeMsg(m)
}

// GetVecAsync reads all segs from the block at src with one request and
// one reply; done runs with the fragments concatenated in order. done
// may retain the data.
func (l *Locality) GetVecAsync(src gas.GVA, segs []GetSeg, done func(data []byte)) {
	l.getVecAsync(src, segs, false, done)
}

// getVecAsync is GetVecAsync plus the pooled-reply option: with pooledOK
// the request (and so the reply) may ride pooled wire buffers, which
// requires done to copy the data out before returning.
func (l *Locality) getVecAsync(src gas.GVA, segs []GetSeg, pooledOK bool, done func(data []byte)) {
	total := uint32(0)
	for i := range segs {
		total += segs[i].N
	}
	l.Stats.GetOps.Inc()
	l.Stats.GetBytes.Add(int64(total))
	id := l.newGetOp(done)
	need := len(segs) * getSegRec
	var buf []byte
	pooled := false
	if pooledOK && l.payloadPoolable() {
		buf, pooled = getWireBuf(need)
	} else {
		buf = make([]byte, 0, need)
	}
	for i := range segs {
		buf = binary.LittleEndian.AppendUint32(buf, segs[i].Off)
		buf = binary.LittleEndian.AppendUint32(buf, segs[i].N)
	}
	m := netsim.NewMessage()
	m.Kind = kGetVec
	m.Src = l.rank
	m.Target = src
	m.DMA = true
	m.Payload = buf
	m.PayloadPooled = pooled
	m.Wire = 32 + len(buf)
	m.N = total
	m.OpID = id
	l.routeMsg(m)
}

// applyPutVec writes a kPutVec payload's fragments into block b.
func (l *Locality) applyPutVec(b gas.BlockID, m *netsim.Message) {
	base := m.Target.Offset()
	p := m.Payload
	for off := 0; off+putSegHdr <= len(p); {
		o := binary.LittleEndian.Uint32(p[off:])
		n := int(binary.LittleEndian.Uint32(p[off+4:]))
		off += putSegHdr
		if n < 0 || off+n > len(p) {
			l.w.fail("rank %d: truncated put-vec fragment for block %d", l.rank, b)
		}
		if err := l.store.WriteAt(b, base+o, p[off:off+n]); err != nil {
			l.w.fail("rank %d: %v", l.rank, err)
		}
		off += n
	}
}

// buildGetVecReply gathers a kGetVec request's fragments out of block b
// into one reply buffer, pooled when the request allows it.
func (l *Locality) buildGetVecReply(b gas.BlockID, m *netsim.Message) (data []byte, pooled bool) {
	total := 0
	p := m.Payload
	for off := 0; off+getSegRec <= len(p); off += getSegRec {
		total += int(binary.LittleEndian.Uint32(p[off+4:]))
	}
	if m.PayloadPooled {
		data, pooled = getWireBuf(total)
	} else {
		data = make([]byte, 0, total)
	}
	base := m.Target.Offset()
	for off := 0; off+getSegRec <= len(p); off += getSegRec {
		o := binary.LittleEndian.Uint32(p[off:])
		n := int(binary.LittleEndian.Uint32(p[off+4:]))
		cur := len(data)
		data = data[:cur+n]
		if err := l.store.ReadAt(b, base+o, data[cur:]); err != nil {
			l.w.fail("rank %d: %v", l.rank, err)
		}
	}
	return data, pooled
}

// hostPutVec is the host-side kPutVec path (local fast path, dumb-NIC
// modes, migration queueing and stale repair), mirroring hostPut.
func (l *Locality) hostPutVec(m *netsim.Message) {
	b := m.Target.Block()
	if l.queueIfMoving(b, m) {
		return
	}
	blk, ok := l.store.Get(b)
	if !ok {
		l.space.OnStaleDelivery(m, nil)
		return
	}
	if blk.Kind != gas.KindData {
		l.w.fail("rank %d: put to non-data block %d", l.rank, b)
	}
	if blk.Replica {
		// Writes never land on replicas: chase the master.
		l.routeToExplicit(m, l.replicaMaster(b, m.Target.Home()))
		return
	}
	if !l.relAccept(m) {
		l.recycle(m)
		return
	}
	l.w.noteAccess(l.rank, m.Src, b, false)
	l.exec.Charge(l.w.cfg.Model.CopyTime(len(m.Payload)))
	l.applyPutVec(b, m)
	opID, src := m.OpID, m.Src
	l.releasePayload(m)
	l.recycle(m)
	l.replFanOut(b, false)
	if src == l.rank {
		l.completeOp(opID, nil)
		return
	}
	l.putAck(src, opID, false)
}

// hostGetVec is the host-side kGetVec path, mirroring hostGet.
func (l *Locality) hostGetVec(m *netsim.Message) {
	b := m.Target.Block()
	if l.queueIfMoving(b, m) {
		return
	}
	blk, ok := l.store.Get(b)
	if !ok {
		l.space.OnStaleDelivery(m, nil)
		return
	}
	if blk.Kind != gas.KindData {
		l.w.fail("rank %d: get from non-data block %d", l.rank, b)
	}
	if blk.Replica {
		if fresh, _ := l.replicaFresh(b); !fresh {
			l.Stats.ReplicaStaleReads.Inc()
			l.Stats.HostForwards.Inc()
			l.traceOp(TraceHostForward, b, uint64(l.replicaMaster(b, m.Target.Home())), m.OpID)
			l.routeToExplicit(m, l.replicaMaster(b, m.Target.Home()))
			return
		}
		l.Stats.ReplicaReads.Inc()
	}
	if !l.relAccept(m) {
		l.recycle(m)
		return
	}
	l.w.noteAccess(l.rank, m.Src, b, true)
	l.exec.Charge(l.w.cfg.Model.CopyTime(int(m.N)))
	data, pooled := l.buildGetVecReply(b, m)
	opID, src := m.OpID, m.Src
	l.releasePayload(m)
	l.recycle(m)
	if src == l.rank {
		// The completion copies out synchronously (the pooled-reply
		// contract), so the buffer can go straight back.
		l.completeOp(opID, data)
		if pooled {
			putWireBuf(data)
		}
		return
	}
	rep := netsim.NewMessage()
	rep.Kind = kGetRep
	rep.Src = l.rank
	rep.Dst = src
	rep.Wire = 32 + len(data)
	rep.Payload = data
	rep.PayloadPooled = pooled
	rep.OpID = opID
	l.inject(rep, rep.Dst)
}

// coalesceAcks reports whether put acks ride the per-drain vector
// (flushAcks). The gate matches payloadPoolable: the goroutine engine
// with neither reliability nor fault injection — a dropped or tracked
// ack-vector would need per-op retransmit state the vector cannot carry.
func (l *Locality) coalesceAcks() bool { return l.payloadPoolable() }

// putAck delivers a put completion to src. When coalescing, the OpID
// joins src's pending vector, flushed at mailbox drain; otherwise one
// kPutAck goes out immediately — from NIC context when fromNIC is set
// (the DMA path), else charged as a host injection.
func (l *Locality) putAck(src int, opID uint64, fromNIC bool) {
	if l.coalesceAcks() {
		ids, ok := l.ackPend[src]
		if !ok {
			if l.ackPend == nil {
				l.ackPend = make(map[int][]uint64)
			}
			l.ackSrcs = append(l.ackSrcs, src)
		}
		l.ackPend[src] = append(ids, opID)
		return
	}
	ack := netsim.NewMessage()
	ack.Kind = kPutAck
	ack.Src = l.rank
	ack.Dst = src
	ack.Wire = 32
	ack.OpID = opID
	if fromNIC {
		l.nicInject(ack)
		return
	}
	l.inject(ack, src)
}

// flushAcks emits the coalesced put acks accumulated during the current
// mailbox drain: one message per requester, carrying every completed
// OpID. Runs on the locality actor (goExec.onDrain), so it touches
// ackPend without locks and always runs before the actor can block on an
// empty mailbox — no completion is ever stranded in the pending state.
func (l *Locality) flushAcks() {
	if len(l.ackSrcs) == 0 {
		return
	}
	for _, src := range l.ackSrcs {
		ids := l.ackPend[src]
		delete(l.ackPend, src)
		if len(ids) == 1 {
			ack := netsim.NewMessage()
			ack.Kind = kPutAck
			ack.Src = l.rank
			ack.Dst = src
			ack.Wire = 32
			ack.OpID = ids[0]
			l.nicInject(ack)
			continue
		}
		buf, pooled := getWireBuf(8 * len(ids))
		for _, id := range ids {
			buf = binary.LittleEndian.AppendUint64(buf, id)
		}
		ack := netsim.NewMessage()
		ack.Kind = kPutAckVec
		ack.Src = l.rank
		ack.Dst = src
		ack.Payload = buf
		ack.PayloadPooled = pooled
		ack.Wire = 32 + len(buf)
		l.nicInject(ack)
	}
	l.ackSrcs = l.ackSrcs[:0]
}

// onPutAckVec completes every op named in a kPutAckVec payload.
func (l *Locality) onPutAckVec(m *netsim.Message) {
	p := m.Payload
	for off := 0; off+8 <= len(p); off += 8 {
		l.completeOp(binary.LittleEndian.Uint64(p[off:]), nil)
	}
	l.releasePayload(m)
	l.recycle(m)
}
