package runtime

import (
	"time"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

// Migration status codes delivered to the initiator's continuation as an
// 8-byte little-endian record.
const (
	// MigrateOK reports a completed migration (or a no-op move to the
	// current owner).
	MigrateOK int64 = iota
	// MigratePinned reports a refusal: LCOs and infrastructure blocks do
	// not move.
	MigratePinned
	// MigrateBadTarget reports a destination rank outside the world.
	MigrateBadTarget
)

// The migration protocol, from the initiator's point of view:
//
//	initiator --aMigrateReq--> owner        (routed like any parcel)
//	owner: pin block (queue arrivals), snapshot
//	owner --aMigrateData--> destination     (block bytes on the wire)
//	destination: install block
//	destination --aMigrateCommit--> home    (directory flip)
//	home: directory.Set; NM: NIC route install (+ policy broadcast)
//	home --aMigrateDone--> old owner
//	old owner: drop block, leave tombstone (host or NIC), flush queue,
//	           fire the initiator's continuation
//
// The block's GVA never changes; only ownership state does. Traffic that
// races any phase either queues at the pinned owner or chases tombstones,
// so no message is ever lost or executed at a non-owner.

// migPayload is the control record threaded through the protocol chain.
type migPayload struct {
	g        gas.GVA // block base address (carries home)
	bsize    uint32
	to       int
	oldOwner int
	cAction  parcel.ActionID
	cTarget  gas.GVA
	// replicated carries the block's replica set when it has one: the
	// set is taken out of the old master's directory at pin time and
	// re-homed at the destination, so coherence ownership moves with the
	// block (holders only on aMigrateReq → aMigrateData).
	replicated bool
	holders    []int
	data       []byte // block contents, only on aMigrateData
}

func encodeMig(p migPayload) []byte {
	nh := uint32(0)
	if p.replicated {
		// 0 means "no replica set"; n+1 means a set with n holders, so an
		// empty-but-present set survives the round trip.
		nh = uint32(len(p.holders)) + 1
	}
	buf := make([]byte, 0, 36+4*len(p.holders)+len(p.data))
	buf = parcel.PutU64(buf, uint64(p.g))
	buf = parcel.PutU32(buf, p.bsize)
	buf = parcel.PutU32(buf, uint32(p.to))
	buf = parcel.PutU32(buf, uint32(p.oldOwner))
	buf = parcel.PutU32(buf, uint32(p.cAction))
	buf = parcel.PutU64(buf, uint64(p.cTarget))
	buf = parcel.PutU32(buf, nh)
	if p.replicated {
		for _, h := range p.holders {
			buf = parcel.PutU32(buf, uint32(h))
		}
	}
	return append(buf, p.data...)
}

func decodeMig(b []byte) migPayload {
	p := migPayload{
		g:        gas.GVA(parcel.U64(b, 0)),
		bsize:    parcel.U32(b, 8),
		to:       int(parcel.U32(b, 12)),
		oldOwner: int(parcel.U32(b, 16)),
		cAction:  parcel.ActionID(parcel.U32(b, 20)),
		cTarget:  gas.GVA(parcel.U64(b, 24)),
	}
	off := 36
	if nh := parcel.U32(b, 32); nh > 0 {
		p.replicated = true
		p.holders = make([]int, nh-1)
		for i := range p.holders {
			p.holders[i] = int(parcel.U32(b, off))
			off += 4
		}
	}
	p.data = b[off:]
	return p
}

// MigrateAsync moves the block addressed by g to rank to. When the
// migration commits, a parcel running contAction (usually ALCOSet) at
// cont fires with a status record. Must be called from this locality's
// execution context. Under PGAS the request fails immediately at the
// owner (the home) with MigratePinned semantics — PGAS blocks never move
// — reported through the same continuation.
func (l *Locality) MigrateAsync(g gas.GVA, to int, contAction parcel.ActionID, cont gas.GVA) {
	l.SendParcel(&parcel.Parcel{
		Action:  aMigrateReq,
		Target:  g.Base(),
		Payload: encodeMig(migPayload{g: g.Base(), to: to}),
		CAction: contAction,
		CTarget: cont,
	})
}

func (w *World) registerBuiltins() {
	// Order fixes the builtin IDs declared in registry.go.
	w.reg.Register("lco.set", func(c *Ctx) {
		blk, ok := c.l.store.Get(c.P.Target.Block())
		if !ok || blk.Kind != gas.KindLCO {
			c.l.w.fail("rank %d: lco.set on non-LCO target %v", c.l.rank, c.P.Target)
		}
		if err := blk.Ctl.(interface{ Set([]byte) error }).Set(c.P.Payload); err != nil {
			c.l.w.fail("rank %d: lco.set on %v: %v", c.l.rank, c.P.Target, err)
		}
	})
	w.reg.Register("nop", func(c *Ctx) { c.Continue(nil) })
	w.reg.Register("migrate.req", migrateReq)
	w.reg.Register("migrate.data", migrateData)
	w.reg.Register("migrate.commit", migrateCommit)
	w.reg.Register("migrate.done", migrateDone)
	w.reg.Register("alloc.blocks", allocBlocks)
	w.reg.Register("free.block", freeBlock)
}

// migrateReq runs at the block's current owner.
func migrateReq(c *Ctx) {
	l := c.l
	mp := decodeMig(c.P.Payload)
	b := mp.g.Block()

	status := func(s int64) { c.Continue(parcel.PutI64(nil, s)) }

	if mp.to < 0 || mp.to >= l.w.cfg.Ranks {
		status(MigrateBadTarget)
		return
	}
	blk, ok := l.store.Get(b)
	if !ok {
		// execParcel guarantees residency; reaching here is a protocol
		// bug.
		l.w.fail("rank %d: migrate.req for non-resident block %d", l.rank, b)
	}
	if blk.Kind != gas.KindData || blk.Pinned {
		status(MigratePinned)
		return
	}
	if !l.space.Caps().Migration {
		// Static address spaces cannot move blocks; refuse before pinning.
		status(MigratePinned)
		return
	}
	if mp.to == l.rank {
		status(MigrateOK)
		return
	}

	// Pin: from here until migrateDone, arrivals for b queue at this
	// host (the NIC residency oracle reports false, and under AGASNM the
	// route-to-self entry steers misrouted traffic to this host). If a
	// user action is mid-execution against the block, defer — the
	// snapshot must observe a quiescent block.
	l.mu.Lock()
	if l.active[b] > 0 {
		l.mu.Unlock()
		retry := *c.P
		l.exec.Exec(l.w.cfg.Model.HandlerDispatch, func() {
			migrateReq(&Ctx{l: l, P: &retry})
		})
		return
	}
	l.moving[b] = &moveState{dst: mp.to}
	l.mu.Unlock()
	l.trace(TraceMigrateStart, b, uint64(mp.to))
	l.w.latMigMark(b, migPin)
	l.space.BeginMigrate(b)

	// A replicated block's coherence ownership travels with it: take the
	// set out of this (old) master's directory and ship it alongside the
	// data so the destination can re-home it. The block is pinned, so no
	// write can fan out against the half-moved set.
	var replicated bool
	var holders []int
	if dir := l.space.Directory(); dir != nil {
		if rs, ok := dir.TakeReplicas(b); ok {
			replicated, holders = true, rs.Holders
		}
	}

	snapshot := append([]byte(nil), blk.Data...)
	l.exec.Charge(l.w.cfg.Model.CopyTime(len(snapshot)))
	l.SendParcel(&parcel.Parcel{
		Action: aMigrateData,
		Target: l.w.LocalityGVA(mp.to),
		Payload: encodeMig(migPayload{
			g: mp.g, bsize: blk.BSize, to: mp.to, oldOwner: l.rank,
			cAction: c.P.CAction, cTarget: c.P.CTarget,
			replicated: replicated, holders: holders, data: snapshot,
		}),
	})
}

// migrateData runs at the destination locality.
// stallRetryDelay spaces the re-executions of a data install parked by
// InjectMigrationStall: long enough that a stalled run is not dominated
// by retry events, short enough that release is picked up within a
// fraction of a pulse period.
const stallRetryDelay = 5 * netsim.Microsecond

func migrateData(c *Ctx) {
	l := c.l
	if l.w.migStall.Load() {
		// Anomaly injection (see World.InjectMigrationStall): park the
		// install and retry later. The block stays pinned at its old
		// owner with arrivals queuing behind the pin — the real stall
		// pathology, produced through the real protocol path.
		retry := *c.P
		fn := func() { migrateData(&Ctx{l: l, P: &retry}) }
		if l.w.eng != nil {
			l.exec.Exec(stallRetryDelay, fn)
		} else {
			time.AfterFunc(l.w.goWall(stallRetryDelay), func() { l.exec.Exec(0, fn) })
		}
		return
	}
	mp := decodeMig(c.P.Payload)
	b := mp.g.Block()

	if mp.replicated {
		// This destination may itself hold a replica; it is becoming the
		// master, so its copy leaves the holder set before the
		// authoritative block installs over it.
		kept := mp.holders[:0]
		for _, h := range mp.holders {
			if h == l.rank {
				if blk, ok := l.store.Get(b); ok && blk.Replica {
					l.store.Remove(b)
				}
				l.dropReplicaState(b)
				continue
			}
			kept = append(kept, h)
		}
		mp.holders = kept
	}

	nb := &gas.Block{ID: b, Kind: gas.KindData, BSize: mp.bsize, Data: append([]byte(nil), mp.data...), Home: mp.g.Home()}
	l.exec.Charge(l.w.cfg.Model.CopyTime(len(mp.data)))
	if err := l.store.Insert(nb); err != nil {
		l.w.fail("rank %d: migrate install: %v", l.rank, err)
	}
	l.space.InstallMigrated(b)
	l.w.latMigMark(b, migInstall)
	mp.data = nil
	if mp.replicated {
		l.w.rehomeReplicas(b, l.rank, mp.holders)
	}
	l.SendParcel(&parcel.Parcel{
		Action:  aMigrateCommit,
		Target:  l.w.LocalityGVA(mp.g.Home()),
		Payload: encodeMig(migPayload{g: mp.g, to: l.rank, oldOwner: mp.oldOwner, cAction: mp.cAction, cTarget: mp.cTarget}),
	})
}

// migrateCommit runs at the block's home: the directory flip.
func migrateCommit(c *Ctx) {
	l := c.l
	mp := decodeMig(c.P.Payload)
	b := mp.g.Block()

	l.space.CommitMigrate(b, mp.to)
	l.w.latMigMark(b, migCommit)
	l.SendParcel(&parcel.Parcel{
		Action:  aMigrateDone,
		Target:  l.w.LocalityGVA(mp.oldOwner),
		Payload: encodeMig(migPayload{g: mp.g, to: mp.to, oldOwner: mp.oldOwner, cAction: mp.cAction, cTarget: mp.cTarget}),
	})
}

// migrateDone runs at the old owner: unpin, tombstone, flush, notify.
func migrateDone(c *Ctx) {
	l := c.l
	mp := decodeMig(c.P.Payload)
	b := mp.g.Block()

	if _, ok := l.store.Remove(b); !ok {
		l.w.fail("rank %d: migrate.done without resident block %d", l.rank, b)
	}
	l.space.FinishMigrate(b, mp.to)

	l.mu.Lock()
	st := l.moving[b]
	delete(l.moving, b)
	l.mu.Unlock()
	if st == nil {
		l.w.fail("rank %d: migrate.done for block %d that was not moving", l.rank, b)
	}
	l.Stats.Migrations.Inc()
	l.trace(TraceMigrateDone, b, uint64(mp.to))
	l.w.latMigMark(b, migDone)
	for _, qm := range st.queued {
		// A duplicate that was queued while its original executed here
		// must not chase the block to the new owner.
		if !l.relFlushOK(qm) {
			continue
		}
		l.routeMsg(qm)
	}
	if !mp.cTarget.IsNull() {
		act := mp.cAction
		if act == parcel.NilAction {
			act = ALCOSet
		}
		l.SendParcel(&parcel.Parcel{
			Action:  act,
			Target:  mp.cTarget,
			Payload: parcel.PutI64(nil, MigrateOK),
		})
	}
}
