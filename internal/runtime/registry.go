package runtime

import (
	"fmt"

	"nmvgas/internal/parcel"
)

// Action is the handler type executed when a parcel arrives at the
// locality owning its target. Actions must not block: they communicate
// results through ctx.Continue and LCO continuations, which is what lets
// identical protocol code run on the discrete-event and goroutine engines.
type Action func(c *Ctx)

// Builtin action identifiers. User registration starts after these; the
// runtime registers them in a fixed order so IDs are stable.
const (
	aNil parcel.ActionID = iota // parcel.NilAction
	// ALCOSet delivers a payload into the LCO block it targets.
	ALCOSet
	// ANop does nothing; barriers and wiring tests use it.
	ANop
	aMigrateReq
	aMigrateData
	aMigrateCommit
	aMigrateDone
	aAllocBlocks
	aFreeBlock
	firstUserAction
)

// Registry maps action identifiers to handlers. Registration must finish
// before traffic flows and, in a distributed deployment, must happen in
// identical order everywhere; in this in-process reproduction one registry
// is shared by all localities, which enforces that by construction.
type Registry struct {
	actions []Action
	names   []string
	byName  map[string]parcel.ActionID
	sealed  bool
}

func newRegistry() *Registry {
	r := &Registry{byName: make(map[string]parcel.ActionID)}
	// Slot 0 is the nil action.
	r.actions = append(r.actions, nil)
	r.names = append(r.names, "<nil>")
	return r
}

// Register adds an action under a unique name and returns its ID. It
// panics on duplicate names or post-seal registration: both are build
// bugs, not runtime conditions.
func (r *Registry) Register(name string, a Action) parcel.ActionID {
	if r.sealed {
		panic(fmt.Sprintf("runtime: Register(%q) after world start", name))
	}
	if a == nil {
		panic(fmt.Sprintf("runtime: Register(%q) with nil action", name))
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("runtime: duplicate action name %q", name))
	}
	id := parcel.ActionID(len(r.actions))
	r.actions = append(r.actions, a)
	r.names = append(r.names, name)
	r.byName[name] = id
	return id
}

// Lookup returns the handler for id.
func (r *Registry) Lookup(id parcel.ActionID) (Action, error) {
	if int(id) >= len(r.actions) || r.actions[id] == nil {
		return nil, fmt.Errorf("runtime: unknown action id %d", id)
	}
	return r.actions[id], nil
}

// Name returns the registered name of id, for diagnostics.
func (r *Registry) Name(id parcel.ActionID) string {
	if int(id) < len(r.names) {
		return r.names[id]
	}
	return fmt.Sprintf("action(%d)", id)
}

func (r *Registry) seal() { r.sealed = true }
