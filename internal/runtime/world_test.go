package runtime

import (
	"strings"
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
)

// testWorld builds and starts a world, arranging teardown.
func testWorld(t *testing.T, cfg Config) *World {
	t.Helper()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

// allModes × allEngines drives mode/engine matrix tests.
var allModes = []Mode{PGAS, AGASSW, AGASNM}
var allEngines = []EngineKind{EngineDES, EngineGo}

func matrix(t *testing.T, fn func(t *testing.T, mode Mode, eng EngineKind)) {
	t.Helper()
	for _, m := range allModes {
		for _, e := range allEngines {
			m, e := m, e
			t.Run(m.String()+"/"+e.String(), func(t *testing.T) { fn(t, m, e) })
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewWorld(Config{Ranks: 0}); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewWorld(Config{Ranks: 1 << 13}); err == nil {
		t.Error("oversized world accepted")
	}
	if _, err := NewWorld(Config{Ranks: 2, Mode: Mode(9)}); err == nil {
		t.Error("bad mode accepted")
	}
	w, err := NewWorld(Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Config().Model.Latency == 0 {
		t.Error("model defaulting did not happen")
	}
	if !w.Config().Policy.ForwardInNetwork {
		t.Error("policy defaulting did not happen")
	}
}

func TestModeStrings(t *testing.T) {
	if PGAS.String() != "pgas" || AGASSW.String() != "agas-sw" || AGASNM.String() != "agas-nm" {
		t.Error("mode strings")
	}
	if !strings.HasPrefix(Mode(7).String(), "mode(") {
		t.Error("unknown mode string")
	}
	if EngineDES.String() != "des" || EngineGo.String() != "go" {
		t.Error("engine strings")
	}
}

func TestRegistryRules(t *testing.T) {
	w := testWorld(t, Config{Ranks: 1})
	id := w.Register("x", func(*Ctx) {})
	if id < firstUserAction {
		t.Fatalf("user action got builtin id %d", id)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { w.Register("x", func(*Ctx) {}) })
	mustPanic("nil action", func() { w.Register("y", nil) })
	w.Start()
	mustPanic("post-start", func() { w.Register("z", func(*Ctx) {}) })
	mustPanic("double start", w.Start)
}

func TestAllocCreatesBlocksAtHomes(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM})
	l, err := w.AllocCyclic(1, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	for d := uint32(0); d < 8; d++ {
		home := l.HomeOf(d)
		if _, ok := w.Locality(home).Store().Get(l.Base.Block() + gas.BlockID(d)); !ok {
			t.Fatalf("block %d missing at home %d", d, home)
		}
	}
	// Distinct allocations get disjoint blocks.
	l2, err := w.AllocLocal(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Base.Block() < l.Base.Block()+8 {
		t.Fatal("allocations overlap")
	}
	if err := w.Free(l); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Locality(l.HomeOf(0)).Store().Get(l.Base.Block()); ok {
		t.Fatal("block survived Free")
	}
	if err := w.Free(l); err == nil {
		t.Fatal("double Free accepted")
	}
}

func TestAllocValidation(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2})
	if _, err := w.AllocCyclic(5, 64, 1); err == nil {
		t.Error("bad origin accepted")
	}
	if _, err := w.AllocCyclic(0, 64, 0); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := w.AllocCyclic(0, 0, 1); err == nil {
		t.Error("zero bsize accepted")
	}
	if _, err := w.AllocCyclic(0, gas.MaxBlockSize+1, 1); err == nil {
		t.Error("oversized bsize accepted")
	}
}

func TestWaitDeadlockDetection(t *testing.T) {
	w := testWorld(t, Config{Ranks: 1, Engine: EngineDES})
	w.Start()
	fut := w.NewFuture(0)
	if _, err := w.Wait(fut); err == nil {
		t.Fatal("Wait on an unset future with an empty queue must fail")
	}
}

func TestLocalityGVAIsResident(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3})
	for r := 0; r < 3; r++ {
		g := w.LocalityGVA(r)
		if g.Home() != r {
			t.Fatalf("locality GVA home = %d", g.Home())
		}
		blk, ok := w.Locality(r).Store().Get(g.Block())
		if !ok || !blk.Pinned {
			t.Fatalf("locality block missing or unpinned at %d", r)
		}
	}
}

func TestDESDeterminism(t *testing.T) {
	run := func() int64 {
		w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES})
		echo := w.Register("echo", func(c *Ctx) { c.Continue(c.P.Payload) })
		w.Start()
		lay, err := w.AllocCyclic(0, 256, 8)
		if err != nil {
			t.Fatal(err)
		}
		var last *LCORef
		for i := 0; i < 20; i++ {
			last = w.Proc(i%4).Call(lay.BlockAt(uint32(i%8)), echo, parcel.PutU64(nil, uint64(i)))
		}
		w.MustWait(last)
		w.Drain()
		return int64(w.Now())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("DES runs diverged: %d vs %d simulated ns", a, b)
	}
	if a == 0 {
		t.Fatal("no simulated time elapsed")
	}
}
