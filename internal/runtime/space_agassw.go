package runtime

import (
	"nmvgas/internal/agas"
	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

// swSpace is software-managed AGAS: every send pays a host-side lookup
// (home directory when sending from home, else a bounded translation
// cache), stale deliveries are repaired by host forwarding with
// correction messages back to the source, and old owners keep host
// tombstones so traffic chases migrated blocks.

var swCaps = Caps{Name: "agas-sw", Migration: true, HostTranslation: true, Replication: true}

func swBuilder() spaceBuilder {
	return spaceBuilder{
		caps:      swCaps,
		initWorld: func(*World) {},
		newLocal: func(l *Locality) AddressSpace {
			return &swSpace{
				l:      l,
				dir:    agas.NewDirectory(),
				cache:  agas.NewSWCache(l.w.cfg.SWCacheCap, l.w.cfg.SWCorrection),
				tombs:  agas.NewTombstones(),
				routes: agas.NewReplicaRoutes(),
			}
		},
	}
}

type swSpace struct {
	l *Locality
	// dir is authoritative for blocks homed at this locality, and is
	// the owner-side replica directory for blocks mastered here.
	dir   *agas.Directory
	cache *agas.SWCache
	tombs *agas.Tombstones
	// routes is the host-cached replica read-routing table: pushed to
	// every locality at install time, probed (at SWLookup cost) on each
	// read of a replicated block.
	routes *agas.ReplicaRoutes
}

func (s *swSpace) Caps() Caps { return swCaps }

func (s *swSpace) InstallInitial(gas.BlockID) {}

func (s *swSpace) Translate(g gas.GVA) int {
	// Software translation on the host's dime.
	l := s.l
	l.exec.Charge(l.w.cfg.Model.SWLookup)
	l.Stats.SWLookups.Inc()
	b := g.Block()
	dst := g.Home()
	if l.rank == dst {
		// We are home: the directory is local and authoritative.
		dst = s.dir.Resolve(b, l.rank)
		if dst == l.rank {
			if l.w.mem.isLost(b) {
				// The block died with its owner: deliver to self, where
				// the stale-delivery path terminates the message with an
				// acked drop instead of a protocol failure.
				return dst
			}
			// Directory says it is here but it is not resident: the
			// block was never allocated.
			l.w.fail("rank %d: send to unallocated block %d", l.rank, b)
		}
	} else if o, ok := s.cache.Lookup(b); ok && o != l.rank {
		dst = o
	}
	// Steer around dead ranks (armed worlds only): overlay route, then
	// the live home's authoritative directory, then the surrogate.
	return l.w.mem.redirect(b, dst, g.Home())
}

func (s *swSpace) OwnerHint(b gas.BlockID, home int) int {
	if s.l.rank == home {
		return s.dir.Resolve(b, home)
	}
	if o, ok := s.cache.Lookup(b); ok {
		return o
	}
	return home
}

func (s *swSpace) OnStaleDelivery(m *netsim.Message, p *parcel.Parcel) {
	l := s.l
	b := m.Target.Block()
	if p != nil {
		// Host-level forwarding: the old owner (tombstone) or the home
		// (directory) redirects, then teaches the source.
		owner, ok := s.forwardTarget(b, p.Target.Home())
		if !ok {
			if l.relStaleDrop(m) {
				return
			}
			l.w.fail("rank %d: parcel %v for unallocated block %d", l.rank, p, b)
		}
		l.Stats.HostForwards.Inc()
		l.traceOp(TraceHostForward, b, uint64(owner), p.OpID)
		l.exec.Charge(l.w.cfg.Model.OSend)
		fwd := *m
		fwd.Dst = owner
		fwd.Hops = m.Hops + 1
		l.w.net.send(l.rank, &fwd)
		if p.Src != l.rank {
			l.inject(&netsim.Message{
				Kind:   kOwnerUpd,
				Src:    l.rank,
				Target: p.Target,
				Owner:  owner,
				Wire:   32,
			}, p.Src)
		}
		return
	}
	owner, ok := s.forwardTarget(b, m.Target.Home())
	if !ok && m.Read && l.rank != m.Target.Home() {
		// A read steered to a replica holder that has since dropped its
		// copy (unreplicate racing in-flight reads): the home directory
		// still resolves the master, chase through it.
		owner, ok = m.Target.Home(), true
	}
	if !ok {
		if l.relStaleDrop(m) {
			return
		}
		l.w.fail("rank %d: one-sided op on unallocated block %d", l.rank, b)
	}
	if m.Src == l.rank {
		// Our own op raced a migration: re-route directly.
		s.cache.Correct(b, owner)
		l.routeMsg(m)
		return
	}
	l.Stats.HostNacks.Inc()
	l.inject(&netsim.Message{
		Kind:   kHostNack,
		Src:    l.rank,
		Target: m.Target,
		Block:  b,
		Owner:  owner,
		Wire:   32,
		Nacked: m,
	}, m.Src)
}

// forwardTarget finds where to redirect traffic for a non-resident
// block: at the home the directory is authoritative (a tombstone here
// may be stale after the block moved on); elsewhere only the tombstone
// knows.
func (s *swSpace) forwardTarget(b gas.BlockID, home int) (int, bool) {
	if s.l.rank == home {
		if o, ok := s.dir.Owner(b); ok && o != s.l.rank {
			return o, true
		}
	}
	if o, ok := s.tombs.Get(b); ok {
		return o, true
	}
	return 0, false
}

func (s *swSpace) LearnOwner(b gas.BlockID, owner int) {
	s.cache.Correct(b, owner)
}

func (s *swSpace) BeginMigrate(gas.BlockID)    {}
func (s *swSpace) InstallMigrated(gas.BlockID) {}

func (s *swSpace) CommitMigrate(b gas.BlockID, newOwner int) {
	s.dir.Set(b, newOwner, s.l.rank)
}

func (s *swSpace) FinishMigrate(b gas.BlockID, newOwner int) {
	s.tombs.Put(b, newOwner)
	s.cache.Learn(b, newOwner)
}

func (s *swSpace) AbortMigrate(gas.BlockID) {}

func (s *swSpace) HomeOwner(b gas.BlockID) int {
	return s.dir.Resolve(b, s.l.rank)
}

func (s *swSpace) OnFree(b gas.BlockID, home int) {
	// Tombstones would only mislead future traffic for a reused
	// address; the home also forgets its directory entry.
	s.tombs.Drop(b)
	s.dir.DropReplicas(b)
	s.routes.Drop(b)
	if s.l.rank == home {
		s.dir.Drop(b)
	}
}

func (s *swSpace) InstallReplicas(b gas.BlockID, master int, holders []int) {
	r := s.l.rank
	if r == master {
		return
	}
	for _, h := range holders {
		if h == r {
			return
		}
	}
	s.routes.Set(b, s.l.w.readTarget(r, master, holders))
}

func (s *swSpace) DropReplicas(b gas.BlockID) { s.routes.Drop(b) }

func (s *swSpace) ReadRoute(b gas.BlockID) (int, bool) {
	t, ok := s.routes.Get(b)
	if !ok {
		return 0, false
	}
	// Host-software replica routing: the probe costs a software lookup,
	// the same dime every sw translation pays.
	s.l.exec.Charge(s.l.w.cfg.Model.SWLookup)
	s.l.Stats.SWLookups.Inc()
	return t, true
}

func (s *swSpace) Directory() *agas.Directory   { return s.dir }
func (s *swSpace) Cache() *agas.SWCache         { return s.cache }
func (s *swSpace) Tombstones() *agas.Tombstones { return s.tombs }
