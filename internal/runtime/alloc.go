package runtime

import (
	"fmt"

	"nmvgas/internal/gas"
)

// Global allocation. Block-number reservation goes through the shared
// sequence and block creation writes directly into the owning stores:
// this is a documented setup-phase shortcut (see gas.Sequence) — the
// paper's evaluation concerns the data path (translation, forwarding,
// migration), not allocation throughput. Allocation is safe to call
// before Start and concurrently with running traffic (stores lock), but
// the returned layout must be communicated to actions by the caller.

// AllocCyclic distributes nblocks blocks of bsize bytes round-robin over
// all localities, starting at origin.
func (w *World) AllocCyclic(origin int, bsize, nblocks uint32) (gas.Layout, error) {
	return w.alloc(origin, bsize, nblocks, gas.DistCyclic)
}

// AllocBlocked distributes contiguous runs of blocks per locality.
func (w *World) AllocBlocked(origin int, bsize, nblocks uint32) (gas.Layout, error) {
	return w.alloc(origin, bsize, nblocks, gas.DistBlocked)
}

// AllocLocal places every block on origin.
func (w *World) AllocLocal(origin int, bsize, nblocks uint32) (gas.Layout, error) {
	return w.alloc(origin, bsize, nblocks, gas.DistLocal)
}

func (w *World) alloc(origin int, bsize, nblocks uint32, dist gas.Dist) (gas.Layout, error) {
	if origin < 0 || origin >= w.cfg.Ranks {
		return gas.Layout{}, fmt.Errorf("runtime: alloc origin %d out of range", origin)
	}
	if nblocks == 0 {
		return gas.Layout{}, fmt.Errorf("runtime: alloc of zero blocks")
	}
	if bsize == 0 || bsize > gas.MaxBlockSize {
		return gas.Layout{}, fmt.Errorf("runtime: block size %d out of range", bsize)
	}
	base, err := w.seq.Reserve(nblocks)
	if err != nil {
		return gas.Layout{}, err
	}
	l := gas.Layout{
		Base:    gas.New(origin, base, 0),
		BSize:   bsize,
		NBlocks: nblocks,
		Ranks:   w.cfg.Ranks,
		Dist:    dist,
	}
	for d := uint32(0); d < nblocks; d++ {
		home := l.HomeOf(d)
		blk, err := w.locs[home].store.Create(base+gas.BlockID(d), bsize)
		if err != nil {
			return gas.Layout{}, err
		}
		blk.Home = home
		w.locs[home].space.InstallInitial(base + gas.BlockID(d))
	}
	return l, nil
}

// Free releases an allocation: block data is removed from the current
// owners and every translation structure forgets the blocks. Free is a
// setup-phase operation with the same shortcut status as alloc; freeing
// blocks with traffic still in flight is a caller bug.
func (w *World) Free(l gas.Layout) error {
	for d := uint32(0); d < l.NBlocks; d++ {
		b := l.Base.Block() + gas.BlockID(d)
		home := l.HomeOf(d)
		owner := w.locs[home].space.HomeOwner(b)
		if dir := w.locs[owner].space.Directory(); dir != nil {
			if _, ok := dir.TakeReplicas(b); ok {
				w.replCount.Add(-1)
			}
		}
		if _, ok := w.locs[owner].store.Remove(b); !ok {
			return fmt.Errorf("runtime: free of non-resident block %d (owner %d)", b, owner)
		}
		// Sweep any replicas and their holder-side coherence state.
		for _, loc := range w.locs {
			if blk, ok := loc.store.Get(b); ok && blk.Replica {
				loc.store.Remove(b)
			}
			loc.dropReplicaState(b)
		}
		w.dropTranslation(b, home)
	}
	return nil
}
