package runtime

import (
	"fmt"
	"sync"
	"time"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
)

// WatchLevel is a watchdog's thresholded state.
type WatchLevel uint8

const (
	// WatchOK means the monitored invariant holds comfortably.
	WatchOK WatchLevel = iota
	// WatchWarn means the warn threshold is crossed.
	WatchWarn
	// WatchCritical means the critical threshold is crossed.
	WatchCritical
)

func (l WatchLevel) String() string {
	switch l {
	case WatchOK:
		return "ok"
	case WatchWarn:
		return "warn"
	case WatchCritical:
		return "critical"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// MarshalText makes WatchLevel render as its name in JSON bundles and
// /healthz responses.
func (l WatchLevel) MarshalText() ([]byte, error) { return []byte(l.String()), nil }

// UnmarshalText accepts the names MarshalText emits, so health reports
// and flight bundles round-trip through JSON.
func (l *WatchLevel) UnmarshalText(b []byte) error {
	switch string(b) {
	case "ok":
		*l = WatchOK
	case "warn":
		*l = WatchWarn
	case "critical":
		*l = WatchCritical
	default:
		return fmt.Errorf("runtime: unknown watch level %q", b)
	}
	return nil
}

// WatchdogConfig tunes the invariant monitors evaluated on each pulse.
// Every threshold has a default chosen so a healthy world under the
// in-repo workloads never trips; experiments that inject anomalies
// lower them to measure trip latency.
type WatchdogConfig struct {
	// Disable turns the monitors off while keeping the pulse (for
	// pulse-only control loops). They run by default.
	Disable bool

	// QueueWarn / QueueCritical are per-rank backlog watermarks: pending
	// events attributed to a rank (DES) or mailbox depth (EngineGo).
	// Defaults 1024 / 8192.
	QueueWarn, QueueCritical int

	// RetransWarn / RetransCritical are retransmission-storm rates:
	// timer-driven resends per pulse across the world. Defaults 64 / 512.
	RetransWarn, RetransCritical uint64

	// UnackedWarn / UnackedCritical are black-hole watermarks on
	// World.UnackedMessages, and UnackedPulses is how many consecutive
	// pulses the count must stay above a watermark before the level is
	// reported — transient in-flight bursts are normal; a *sustained*
	// backlog means acks stopped flowing. Defaults 256 / 2048 over 3
	// pulses.
	UnackedWarn, UnackedCritical int
	UnackedPulses                int

	// SuspectPulses is the suspicion dwell: a rank continuously Suspect
	// for this many pulses reports warn (suspicion should resolve to
	// alive or dead quickly). A Dead rank reports critical until it
	// rejoins. Default 4.
	SuspectPulses int

	// HeatWarn / HeatCritical are load-imbalance ratios (max over mean
	// per-rank heat), evaluated only once HeatMinSamples accesses were
	// sampled this epoch and only when Config.Heat is on. Defaults 4 / 8
	// over 64 samples.
	HeatWarn, HeatCritical float64
	HeatMinSamples         uint64

	// StallWarnPulses / StallCriticalPulses bound how long a block may
	// stay pinned mid-migration: a pin older than N pulses means the
	// move's data or commit leg is stuck while arrivals queue behind it.
	// Defaults 3 / 8.
	StallWarnPulses, StallCriticalPulses int
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Disable {
		return WatchdogConfig{Disable: true}
	}
	if c.QueueWarn <= 0 {
		c.QueueWarn = 1024
	}
	if c.QueueCritical <= 0 {
		c.QueueCritical = 8192
	}
	if c.RetransWarn == 0 {
		c.RetransWarn = 64
	}
	if c.RetransCritical == 0 {
		c.RetransCritical = 512
	}
	if c.UnackedWarn <= 0 {
		c.UnackedWarn = 256
	}
	if c.UnackedCritical <= 0 {
		c.UnackedCritical = 2048
	}
	if c.UnackedPulses <= 0 {
		c.UnackedPulses = 3
	}
	if c.SuspectPulses <= 0 {
		c.SuspectPulses = 4
	}
	if c.HeatWarn <= 0 {
		c.HeatWarn = 4
	}
	if c.HeatCritical <= 0 {
		c.HeatCritical = 8
	}
	if c.HeatMinSamples == 0 {
		c.HeatMinSamples = 64
	}
	if c.StallWarnPulses <= 0 {
		c.StallWarnPulses = 3
	}
	if c.StallCriticalPulses <= 0 {
		c.StallCriticalPulses = 8
	}
	return c
}

// Watchdog names, in evaluation (and report) order.
const (
	WatchQueueDepth     = "queue-depth"
	WatchRetransStorm   = "retransmit-storm"
	WatchUnackedBacklog = "unacked-backlog"
	WatchMemberDwell    = "member-dwell"
	WatchHeatImbalance  = "heat-imbalance"
	WatchMigrationStall = "migration-stall"
)

// WatchdogNames returns the fixed catalog of built-in monitors in
// report order (metrics publishers key series off it).
func WatchdogNames() []string {
	return []string{
		WatchQueueDepth, WatchRetransStorm, WatchUnackedBacklog,
		WatchMemberDwell, WatchHeatImbalance, WatchMigrationStall,
	}
}

// WatchdogStatus is one monitor's state as of the last pulse.
type WatchdogStatus struct {
	Name  string     `json:"name"`
	Level WatchLevel `json:"level"`
	// Value is the measured quantity the thresholds apply to (depth,
	// rate, ratio, or age in pulses, per the catalog in DESIGN.md §15).
	Value float64 `json:"value"`
	// Warn and Critical echo the configured thresholds.
	Warn     float64 `json:"warn"`
	Critical float64 `json:"critical"`
	// Rank is the offending rank where one exists, else -1.
	Rank int `json:"rank"`
	// Detail is a human-readable one-liner ("" when ok).
	Detail string `json:"detail,omitempty"`
	// SincePulse is the pulse at which the current level was entered.
	SincePulse uint64 `json:"since_pulse"`
}

// HealthReport is the world's aggregated watchdog state.
type HealthReport struct {
	// Enabled is false when the pulse or the watchdogs are off; the rest
	// of the report is then zero.
	Enabled bool `json:"enabled"`
	// Pulse is the tick the report reflects.
	Pulse uint64 `json:"pulse"`
	// Time is that tick's PulseInfo.Now.
	Time netsim.VTime `json:"time_ns"`
	// Level is the worst watchdog level.
	Level WatchLevel `json:"level"`
	// Watchdogs lists every monitor in catalog order.
	Watchdogs []WatchdogStatus `json:"watchdogs,omitempty"`
}

// WatchdogEvent is delivered to OnWatchdogTrip callbacks when a monitor
// escalates (its level strictly increases).
type WatchdogEvent struct {
	Status WatchdogStatus
	Pulse  uint64
	Now    netsim.VTime
}

type stallKey struct {
	rank  int
	block gas.BlockID
}

// watchdogState holds the monitors' cross-pulse memory. The mutex makes
// Health and HTTP reads safe against EngineGo ticker evaluation; under
// DES everything runs on the driver goroutine and the lock is
// uncontended.
type watchdogState struct {
	cfg WatchdogConfig

	mu     sync.Mutex
	status []WatchdogStatus
	pulse  uint64
	now    netsim.VTime
	worst  WatchLevel
	trips  []func(WatchdogEvent)

	lastRetrans  uint64 // cumulative count at the previous pulse
	unackedRun   int    // consecutive pulses above UnackedWarn
	unackedCrit  int    // consecutive pulses above UnackedCritical
	suspectSince map[int]uint64
	stallSince   map[stallKey]uint64
	depths       []int // scratch, sized to ranks on first use
}

func newWatchdogState(cfg WatchdogConfig) *watchdogState {
	names := WatchdogNames()
	st := make([]WatchdogStatus, len(names))
	for i, n := range names {
		st[i] = WatchdogStatus{Name: n, Rank: -1}
	}
	return &watchdogState{
		cfg:          cfg,
		status:       st,
		suspectSince: make(map[int]uint64),
		stallSince:   make(map[stallKey]uint64),
	}
}

// evaluate runs every monitor against the world's current counters. It
// reads only — no monitor mutates protocol state — so a world with
// watchdogs on behaves identically to one without, minus the pulse
// events themselves.
func (wd *watchdogState) evaluate(w *World, info PulseInfo) {
	wd.mu.Lock()
	wd.pulse = info.Seq
	wd.now = info.Now

	next := [6]WatchdogStatus{
		wd.evalQueueDepth(w),
		wd.evalRetransStorm(w),
		wd.evalUnacked(w),
		wd.evalMemberDwell(w, info.Seq),
		wd.evalHeatImbalance(w),
		wd.evalMigrationStall(w, info.Seq),
	}

	var events []WatchdogEvent
	wd.worst = WatchOK
	for i := range wd.status {
		prev := &wd.status[i]
		n := next[i]
		n.Name = prev.Name
		n.SincePulse = prev.SincePulse
		if n.Level != prev.Level {
			n.SincePulse = info.Seq
			if n.Level > prev.Level && len(wd.trips) > 0 {
				events = append(events, WatchdogEvent{Status: n, Pulse: info.Seq, Now: info.Now})
			}
		}
		*prev = n
		if n.Level > wd.worst {
			wd.worst = n.Level
		}
	}
	trips := wd.trips
	wd.mu.Unlock()

	// Fire trip callbacks outside the lock: they typically snapshot the
	// world (flight-recorder capture), which re-enters Health.
	for _, ev := range events {
		for _, fn := range trips {
			fn(ev)
		}
	}
}

// level applies thresholds to a measured value.
func level(v, warn, crit float64) WatchLevel {
	switch {
	case v >= crit:
		return WatchCritical
	case v >= warn:
		return WatchWarn
	}
	return WatchOK
}

func (wd *watchdogState) evalQueueDepth(w *World) WatchdogStatus {
	if wd.depths == nil {
		wd.depths = make([]int, w.Ranks())
	}
	w.queueDepthsInto(wd.depths)
	maxd, rank := 0, -1
	for r, d := range wd.depths {
		if d > maxd {
			maxd, rank = d, r
		}
	}
	s := WatchdogStatus{
		Value: float64(maxd), Warn: float64(wd.cfg.QueueWarn),
		Critical: float64(wd.cfg.QueueCritical), Rank: rank,
		Level: level(float64(maxd), float64(wd.cfg.QueueWarn), float64(wd.cfg.QueueCritical)),
	}
	if s.Level > WatchOK {
		s.Detail = fmt.Sprintf("rank %d backlog %d events", rank, maxd)
	}
	return s
}

func (wd *watchdogState) evalRetransStorm(w *World) WatchdogStatus {
	cum := w.retransmitCount()
	delta := cum - wd.lastRetrans
	wd.lastRetrans = cum
	s := WatchdogStatus{
		Value: float64(delta), Warn: float64(wd.cfg.RetransWarn),
		Critical: float64(wd.cfg.RetransCritical), Rank: -1,
		Level: level(float64(delta), float64(wd.cfg.RetransWarn), float64(wd.cfg.RetransCritical)),
	}
	if s.Level > WatchOK {
		s.Detail = fmt.Sprintf("%d retransmits this pulse (%d total)", delta, cum)
	}
	return s
}

func (wd *watchdogState) evalUnacked(w *World) WatchdogStatus {
	n := w.UnackedMessages()
	if n >= wd.cfg.UnackedWarn {
		wd.unackedRun++
	} else {
		wd.unackedRun = 0
	}
	if n >= wd.cfg.UnackedCritical {
		wd.unackedCrit++
	} else {
		wd.unackedCrit = 0
	}
	lvl := WatchOK
	switch {
	case wd.unackedCrit >= wd.cfg.UnackedPulses:
		lvl = WatchCritical
	case wd.unackedRun >= wd.cfg.UnackedPulses:
		lvl = WatchWarn
	}
	s := WatchdogStatus{
		Value: float64(n), Warn: float64(wd.cfg.UnackedWarn),
		Critical: float64(wd.cfg.UnackedCritical), Rank: -1, Level: lvl,
	}
	if lvl > WatchOK {
		s.Detail = fmt.Sprintf("%d unacked messages for %d+ pulses", n, wd.cfg.UnackedPulses)
	}
	return s
}

func (wd *watchdogState) evalMemberDwell(w *World, pulse uint64) WatchdogStatus {
	s := WatchdogStatus{
		Warn: float64(wd.cfg.SuspectPulses), Critical: float64(wd.cfg.SuspectPulses),
		Rank: -1,
	}
	deadRank, dwell, dwellRank := -1, uint64(0), -1
	for r := 0; r < w.Ranks(); r++ {
		switch w.MemberState(r) {
		case MemberSuspect:
			since, ok := wd.suspectSince[r]
			if !ok {
				since = pulse
				wd.suspectSince[r] = pulse
			}
			if age := pulse - since; age >= dwell {
				dwell, dwellRank = age, r
			}
		case MemberDead:
			if deadRank < 0 {
				deadRank = r
			}
			delete(wd.suspectSince, r)
		default:
			delete(wd.suspectSince, r)
		}
	}
	switch {
	case deadRank >= 0:
		s.Level = WatchCritical
		s.Rank = deadRank
		s.Value = float64(deadRank)
		s.Detail = fmt.Sprintf("rank %d dead (epoch %d)", deadRank, w.MembershipEpoch())
	case dwellRank >= 0:
		s.Value = float64(dwell)
		s.Rank = dwellRank
		if dwell >= uint64(wd.cfg.SuspectPulses) {
			s.Level = WatchWarn
			s.Detail = fmt.Sprintf("rank %d suspect for %d pulses", dwellRank, dwell)
		}
	}
	return s
}

func (wd *watchdogState) evalHeatImbalance(w *World) WatchdogStatus {
	s := WatchdogStatus{Warn: wd.cfg.HeatWarn, Critical: wd.cfg.HeatCritical, Rank: -1, Value: 1}
	if !w.HeatEnabled() || w.HeatSampled() < wd.cfg.HeatMinSamples {
		return s
	}
	loads := w.HeatLoads()
	var total, maxLoad uint64
	rank := -1
	for r, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad, rank = l, r
		}
	}
	if total == 0 {
		return s
	}
	mean := float64(total) / float64(len(loads))
	ratio := float64(maxLoad) / mean
	s.Value = ratio
	s.Rank = rank
	s.Level = level(ratio, wd.cfg.HeatWarn, wd.cfg.HeatCritical)
	if s.Level > WatchOK {
		s.Detail = fmt.Sprintf("rank %d carries %.1f× mean heat", rank, ratio)
	}
	return s
}

func (wd *watchdogState) evalMigrationStall(w *World, pulse uint64) WatchdogStatus {
	s := WatchdogStatus{
		Warn: float64(wd.cfg.StallWarnPulses), Critical: float64(wd.cfg.StallCriticalPulses),
		Rank: -1,
	}
	var seen map[stallKey]uint64
	oldest, oldestKey := uint64(0), stallKey{rank: -1}
	for _, l := range w.locs {
		l.mu.Lock()
		for b := range l.moving {
			k := stallKey{rank: l.rank, block: b}
			since, ok := wd.stallSince[k]
			if !ok {
				since = pulse
			}
			if seen == nil {
				seen = make(map[stallKey]uint64)
			}
			seen[k] = since
			age := pulse - since
			// Deterministic tie-break: oldest pin, then lowest rank,
			// then lowest block (map iteration order must not leak).
			if age > oldest || (age == oldest && (oldestKey.rank < 0 ||
				k.rank < oldestKey.rank ||
				(k.rank == oldestKey.rank && k.block < oldestKey.block))) {
				oldest, oldestKey = age, k
			}
		}
		l.mu.Unlock()
	}
	if seen == nil {
		wd.stallSince = map[stallKey]uint64{}
		return s
	}
	wd.stallSince = seen
	s.Value = float64(oldest)
	s.Rank = oldestKey.rank
	s.Level = level(float64(oldest), float64(wd.cfg.StallWarnPulses), float64(wd.cfg.StallCriticalPulses))
	if s.Level > WatchOK {
		s.Detail = fmt.Sprintf("block %d pinned at rank %d for %d pulses", oldestKey.block, oldestKey.rank, oldest)
	}
	return s
}

// retransmitCount returns the cumulative timer-driven resend count
// (cheaper than DeliveryStats: no fabric snapshot).
func (w *World) retransmitCount() uint64 {
	if w.relw == nil {
		return 0
	}
	w.relw.mu.Lock()
	defer w.relw.mu.Unlock()
	return w.relw.stats.Retransmits
}

// Health returns the watchdogs' state as of the last pulse. With the
// pulse or watchdogs off it returns Enabled=false.
func (w *World) Health() HealthReport {
	if w.pulse == nil || w.pulse.wd == nil {
		return HealthReport{}
	}
	wd := w.pulse.wd
	wd.mu.Lock()
	defer wd.mu.Unlock()
	return HealthReport{
		Enabled:   true,
		Pulse:     wd.pulse,
		Time:      wd.now,
		Level:     wd.worst,
		Watchdogs: append([]WatchdogStatus(nil), wd.status...),
	}
}

// OnWatchdogTrip registers fn to run whenever a watchdog escalates.
// Callbacks run in tick context (see OnPulse) after the evaluation
// lock is released, so they may call Health. With watchdogs off the
// registration is a no-op: nothing will ever trip.
func (w *World) OnWatchdogTrip(fn func(WatchdogEvent)) {
	if w.pulse == nil || w.pulse.wd == nil {
		return
	}
	wd := w.pulse.wd
	wd.mu.Lock()
	wd.trips = append(wd.trips, fn)
	wd.mu.Unlock()
}

// AwaitHealth advances the world until the worst watchdog level reaches
// want (or, for WatchOK, returns to it). Under EngineDES it drives the
// engine (and keeps the pulse armed); under EngineGo it polls until
// timeout. It returns whether the condition held when it stopped.
func (w *World) AwaitHealth(want WatchLevel, timeout time.Duration) bool {
	cond := func() bool {
		h := w.Health()
		if want == WatchOK {
			return h.Level == WatchOK
		}
		return h.Level >= want
	}
	if w.eng != nil {
		if cond() {
			return true
		}
		w.pulseResume()
		w.eng.RunUntilStride(cond, 64)
		return cond()
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(200 * time.Microsecond)
	}
	return cond()
}

// InjectMigrationStall arms an anomaly hook for tests, experiments, and
// the demo's health tour: every migration's data-install step defers
// and re-queues itself while armed, leaving the block pinned at its old
// owner with arrivals queuing behind the pin — the exact pathology the
// migration-stall watchdog exists to catch. The returned release
// restores normal processing; pending installs then complete. The
// un-armed check is one atomic load on the (non-hot) migration path.
func (w *World) InjectMigrationStall() (release func()) {
	w.migStall.Store(true)
	return func() { w.migStall.Store(false) }
}
