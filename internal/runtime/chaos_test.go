package runtime

import (
	"os"
	"testing"

	"nmvgas/internal/netsim"
)

// The chaos suite re-runs the golden-counter equivalence workload on a
// faulty fabric. The acceptance bar: with drops, duplicates, and
// reordering injected, every mode on both engines still produces exactly
// the application-visible golden counters — loss shows up only in
// DeliveryStats (retransmits, suppressed duplicates), never in what the
// application observed.
//
// The plan is overridable via NMVGAS_FAULTS (ParseFaultPlan syntax), so
// CI can sweep harsher schedules without a rebuild.

// chaosPlan returns the fault plan under test.
func chaosPlan(t *testing.T) netsim.FaultPlan {
	t.Helper()
	spec := os.Getenv("NMVGAS_FAULTS")
	if spec == "" {
		spec = "drop=0.05,dup=0.02,reorder=1"
	}
	plan, err := netsim.ParseFaultPlan(spec)
	if err != nil {
		t.Fatalf("NMVGAS_FAULTS: %v", err)
	}
	return plan
}

// chaosCounters is the fault-insensitive subset of the golden counters:
// what the application did. Repair-path counters (forwards, NACKs,
// queue parks, lookups) legitimately vary with the fault schedule —
// retransmitted messages retrace repair paths — and are judged by the
// delivery report instead.
type chaosCounters struct {
	ParcelsSent int64
	ParcelsRun  int64
	LocalRuns   int64
	PutOps      int64
	GetOps      int64
	PutBytes    int64
	GetBytes    int64
	Migrations  int64
}

func chaosSubset(c equivCounters) chaosCounters {
	return chaosCounters{
		ParcelsSent: c.ParcelsSent,
		ParcelsRun:  c.ParcelsRun,
		LocalRuns:   c.LocalRuns,
		PutOps:      c.PutOps,
		GetOps:      c.GetOps,
		PutBytes:    c.PutBytes,
		GetBytes:    c.GetBytes,
		Migrations:  c.Migrations,
	}
}

func TestChaosGoldenEquivalence(t *testing.T) {
	plan := chaosPlan(t)
	for _, mode := range allModes {
		for _, eng := range allEngines {
			mode, eng := mode, eng
			t.Run(mode.String()+"/"+eng.String(), func(t *testing.T) {
				got, w := runEquivWorkload(t, mode, eng, withFaults(plan))
				want := chaosSubset(equivGolden[mode])
				if g := chaosSubset(got); g != want {
					t.Errorf("application-visible counters drifted under faults\n got: %+v\nwant: %+v\ndelivery: %+v",
						g, want, w.DeliveryStats())
				}
				d := w.DeliveryStats()
				if d.Tracked == 0 {
					t.Error("fault plan active but nothing tracked")
				}
				if eng == EngineDES && plan.Drop > 0 {
					// DES replays the same fault schedule every run: at 5%
					// drop over this workload, losses — and therefore
					// retransmissions — are guaranteed, not probabilistic.
					if d.Faults.Dropped == 0 {
						t.Error("drop probability configured but nothing dropped")
					}
					if d.Retransmits == 0 {
						t.Error("messages were dropped but none retransmitted")
					}
				}
			})
		}
	}
}

// chaosReplCounters is the fault-insensitive subset of the replicated
// goldens. Coherence applications (invalidations, refills) sit behind the
// dedup gate, so they are exact under duplication and loss; read-serving
// counters tick per delivery (before dedup) and are judged by the value
// checks inside the workload instead.
type chaosReplCounters struct {
	chaosCounters
	ReplicaInvals int64
	ReplicaFills  int64
}

func chaosReplSubset(c replEquivCounters) chaosReplCounters {
	return chaosReplCounters{
		chaosCounters: chaosSubset(c.equivCounters),
		ReplicaInvals: c.ReplicaInvals,
		ReplicaFills:  c.ReplicaFills,
	}
}

func TestChaosReplicatedEquivalence(t *testing.T) {
	// The replicated workload under injected drops, duplicates, and
	// reordering: every read still observes the coherent value (checked
	// inside the workload) and the application-visible counters — now
	// including exactly-once invalidation and refill application — match
	// the fault-free goldens.
	plan := chaosPlan(t)
	for _, mode := range allModes {
		for _, eng := range allEngines {
			mode, eng := mode, eng
			t.Run(mode.String()+"/"+eng.String(), func(t *testing.T) {
				got, w := runReplEquivWorkload(t, mode, eng, withFaults(plan))
				want := chaosReplSubset(replGolden[mode])
				if g := chaosReplSubset(got); g != want {
					t.Errorf("replicated counters drifted under faults\n got: %+v\nwant: %+v\ndelivery: %+v",
						g, want, w.DeliveryStats())
				}
				if d := w.DeliveryStats(); d.Tracked == 0 {
					t.Error("fault plan active but nothing tracked")
				}
			})
		}
	}
}

func TestChaosTargetedCtlUpdateLoss(t *testing.T) {
	// The tentpole's targeted injection: lose exactly the Nth
	// CtlTableUpdate the fabric carries. Pushed table updates are pure
	// optimization — losing one may reroute later traffic through the
	// home but must not change what the application observes.
	for _, nth := range []int{1, 3} {
		plan := netsim.FaultPlan{DropNthCtl: map[uint8]int{netsim.CtlTableUpdate: nth}}
		got, w := runEquivWorkload(t, AGASNM, EngineDES, withFaults(plan))
		want := chaosSubset(equivGolden[AGASNM])
		if g := chaosSubset(got); g != want {
			t.Errorf("nth=%d: counters drifted\n got: %+v\nwant: %+v", nth, g, want)
		}
		if d := w.DeliveryStats(); d.Faults.TargetedDrops != 1 {
			t.Errorf("nth=%d: targeted drops %d, want 1", nth, d.Faults.TargetedDrops)
		}
	}
}

func TestChaosTableLoss(t *testing.T) {
	// Forced translation-entry loss: NIC tables keep forgetting entries;
	// traffic degrades to home-routed and forwarded, the application
	// result stands.
	plan := netsim.FaultPlan{TableLoss: 0.2}
	got, w := runEquivWorkload(t, AGASNM, EngineDES, withFaults(plan))
	want := chaosSubset(equivGolden[AGASNM])
	if g := chaosSubset(got); g != want {
		t.Errorf("counters drifted under table loss\n got: %+v\nwant: %+v", g, want)
	}
	if d := w.DeliveryStats(); d.Faults.TableEntriesLost == 0 {
		t.Error("20% table loss lost nothing")
	}
}
