package runtime

import (
	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
)

// Asynchronous, in-runtime allocation: unlike the driver-side Alloc*
// shortcuts, this path creates backing blocks through parcels executed at
// each home locality, so actions can allocate global memory mid-program
// and the allocation traffic is visible to the simulated fabric. Block
// numbers still come from the shared sequence (see gas.Sequence for why
// that shortcut is retained).

// allocBlock payload: bsize u32, count u32, ids... u32 each.
func encodeAllocBlocks(bsize uint32, ids []gas.BlockID) []byte {
	buf := parcel.PutU32(nil, bsize)
	buf = parcel.PutU32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = parcel.PutU32(buf, uint32(id))
	}
	return buf
}

func allocBlocks(c *Ctx) {
	p := c.P.Payload
	bsize := parcel.U32(p, 0)
	n := int(parcel.U32(p, 4))
	for i := 0; i < n; i++ {
		id := gas.BlockID(parcel.U32(p, 8+4*i))
		blk, err := c.l.store.Create(id, bsize)
		if err != nil {
			c.l.w.fail("rank %d: alloc: %v", c.l.rank, err)
		}
		blk.Home = c.l.rank
		c.l.space.InstallInitial(id)
	}
	c.Continue(nil)
}

// EncodeLayout serializes a layout for transport through an LCO.
func EncodeLayout(l gas.Layout) []byte {
	buf := parcel.PutU64(nil, uint64(l.Base))
	buf = parcel.PutU32(buf, l.BSize)
	buf = parcel.PutU32(buf, l.NBlocks)
	buf = parcel.PutU32(buf, uint32(l.Ranks))
	return append(buf, byte(l.Dist))
}

// DecodeLayout parses an EncodeLayout record.
func DecodeLayout(b []byte) gas.Layout {
	return gas.Layout{
		Base:    gas.GVA(parcel.U64(b, 0)),
		BSize:   parcel.U32(b, 8),
		NBlocks: parcel.U32(b, 12),
		Ranks:   int(parcel.U32(b, 16)),
		Dist:    gas.Dist(b[20]),
	}
}

// AllocAsync allocates nblocks blocks of bsize bytes with the given
// distribution, creating the backing storage via parcels to each home.
// The returned future fires with an EncodeLayout record once every home
// has installed its blocks. Callable from driver code and (via
// Ctx.World().Proc(...)) from actions.
func (p *Proc) AllocAsync(bsize, nblocks uint32, dist gas.Dist) *LCORef {
	w := p.l.w
	fut := w.NewFuture(p.l.rank)
	base, err := w.seq.Reserve(nblocks)
	if err != nil {
		w.fail("AllocAsync: %v", err)
	}
	lay := gas.Layout{
		Base:    gas.New(p.l.rank, base, 0),
		BSize:   bsize,
		NBlocks: nblocks,
		Ranks:   w.cfg.Ranks,
		Dist:    dist,
	}
	perHome := make(map[int][]gas.BlockID)
	for d := uint32(0); d < nblocks; d++ {
		home := lay.HomeOf(d)
		perHome[home] = append(perHome[home], base+gas.BlockID(d))
	}
	gate := w.NewAndGate(p.l.rank, len(perHome))
	encoded := EncodeLayout(lay)
	gate.OnFire(func([]byte) {
		p.run(func() {
			p.l.SendParcel(&parcel.Parcel{Action: ALCOSet, Target: fut.G, Payload: encoded})
		})
	})
	p.run(func() {
		for home, ids := range perHome {
			p.l.SendParcel(&parcel.Parcel{
				Action:  aAllocBlocks,
				Target:  w.LocalityGVA(home),
				Payload: encodeAllocBlocks(bsize, ids),
				CAction: ALCOSet,
				CTarget: gate.G,
			})
		}
	})
	return fut
}

// FreeAsync releases an allocation through parcels to the blocks' current
// owners; the returned gate fires when every block is gone. Translation
// state is swept as each owner confirms.
func (p *Proc) FreeAsync(lay gas.Layout) *LCORef {
	w := p.l.w
	gate := w.NewAndGate(p.l.rank, int(lay.NBlocks))
	p.run(func() {
		for d := uint32(0); d < lay.NBlocks; d++ {
			p.l.SendParcel(&parcel.Parcel{
				Action:  aFreeBlock,
				Target:  lay.BlockAt(d),
				CAction: ALCOSet,
				CTarget: gate.G,
			})
		}
	})
	return gate
}

// freeBlock executes at a block's current owner: it removes the block and
// sweeps all translation state for it (per-locality strategy state plus
// network-held routes and tombstones).
func freeBlock(c *Ctx) {
	l := c.l
	b := c.P.Target.Block()
	blk, ok := l.store.Get(b)
	if !ok {
		l.w.fail("rank %d: free of non-resident block %d", l.rank, b)
	}
	if blk.Pinned || blk.Kind != gas.KindData {
		l.w.fail("rank %d: free of pinned/non-data block %d", l.rank, b)
	}
	l.store.Remove(b)
	l.w.dropTranslation(b, c.P.Target.Home())
	c.Continue(nil)
}
