package runtime

import (
	"testing"

	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

func coalCfg(maxParcels int) Config {
	return Config{
		Ranks: 4, Mode: AGASNM, Engine: EngineDES,
		Coalesce: CoalesceConfig{MaxParcels: maxParcels},
	}
}

func TestCoalescingReducesMessagesAndTime(t *testing.T) {
	run := func(maxParcels int) (msgs uint64, bytes uint64, elapsed netsim.VTime) {
		cfg := coalCfg(maxParcels)
		w := testWorld(t, cfg)
		bump := w.Register("bump", func(c *Ctx) { c.Continue(nil) })
		w.Start()
		lay, err := w.AllocLocal(1, 256, 4)
		if err != nil {
			t.Fatal(err)
		}
		const n = 64
		gate := w.NewAndGate(0, n)
		start := w.Now()
		w.Proc(0).Run(func() {
			for i := 0; i < n; i++ {
				w.Locality(0).SendParcel(&parcel.Parcel{
					Action: bump, Target: lay.BlockAt(uint32(i % 4)),
					CAction: ALCOSet, CTarget: gate.G,
				})
			}
		})
		w.MustWait(gate)
		st := w.Fabric().TotalStats()
		return st.Sent, st.BytesTx, w.Now() - start
	}
	plainMsgs, plainBytes, plainTime := run(1)
	coalMsgs, coalBytes, coalTime := run(16)
	if coalMsgs >= plainMsgs/4 {
		t.Fatalf("coalescing barely reduced messages: %d vs %d", coalMsgs, plainMsgs)
	}
	// Framing adds a few bytes per parcel; the win is per-message costs,
	// so bytes may rise slightly but never substantially.
	if float64(coalBytes) > 1.15*float64(plainBytes) {
		t.Fatalf("coalescing blew up bytes: %d vs %d", coalBytes, plainBytes)
	}
	if coalTime >= plainTime {
		t.Fatalf("coalescing did not reduce makespan: %v vs %v", coalTime, plainTime)
	}
}

func TestCoalescingSemanticsIntact(t *testing.T) {
	// Same program with and without coalescing must produce identical
	// memory.
	run := func(maxParcels int) byte {
		cfg := coalCfg(maxParcels)
		w := testWorld(t, cfg)
		incr := w.Register("incr", func(c *Ctx) {
			d := c.Local(c.P.Target)
			d[0]++
			c.Continue(nil)
		})
		w.Start()
		lay, err := w.AllocLocal(2, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		const n = 50
		gate := w.NewAndGate(0, n)
		w.Proc(0).Run(func() {
			for i := 0; i < n; i++ {
				w.Locality(0).SendParcel(&parcel.Parcel{
					Action: incr, Target: lay.BlockAt(0),
					CAction: ALCOSet, CTarget: gate.G,
				})
			}
		})
		w.MustWait(gate)
		return w.MustWait(w.Proc(1).Get(lay.BlockAt(0), 1))[0]
	}
	if a, b := run(1), run(8); a != b || a != 50 {
		t.Fatalf("coalescing changed semantics: %d vs %d", a, b)
	}
}

func TestCoalescedBatchReroutesAfterMigration(t *testing.T) {
	// Parcels batched toward the home must chase a migrated block from
	// the batch target.
	for _, mode := range agasModes {
		cfg := coalCfg(8)
		cfg.Mode = mode
		w := testWorld(t, cfg)
		incr := w.Register("incr", func(c *Ctx) {
			d := c.Local(c.P.Target)
			d[0]++
			c.Continue(nil)
		})
		w.Start()
		lay, err := w.AllocLocal(1, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := lay.BlockAt(0)
		w.MustWait(w.Proc(0).Migrate(g, 3))
		const n = 16
		gate := w.NewAndGate(0, n)
		w.Proc(2).Run(func() {
			for i := 0; i < n; i++ {
				w.Locality(2).SendParcel(&parcel.Parcel{
					Action: incr, Target: g,
					CAction: ALCOSet, CTarget: gate.G,
				})
			}
		})
		w.MustWait(gate)
		got := w.MustWait(w.Proc(0).Get(g, 1))
		if got[0] != n {
			t.Fatalf("%s: counter %d, want %d", mode, got[0], n)
		}
	}
}

func TestCoalesceDelayFlushesLoneParcel(t *testing.T) {
	cfg := coalCfg(1000) // threshold unreachable; only the delay flushes
	cfg.Coalesce.MaxDelay = 3 * netsim.Microsecond
	w := testWorld(t, cfg)
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	fut := w.Proc(0).Call(lay.BlockAt(0), echo, nil)
	v, err := w.Wait(fut)
	if err != nil {
		t.Fatalf("lone parcel never flushed: %v", err)
	}
	_ = v
	if now := w.Now(); now < 3*netsim.Microsecond {
		t.Fatalf("flush happened before the delay: %v", now)
	}
}

func TestCoalesceFlushAll(t *testing.T) {
	cfg := coalCfg(1000)
	cfg.Coalesce.MaxDelay = netsim.Second // effectively never
	w := testWorld(t, cfg)
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	fut := w.Proc(0).Call(lay.BlockAt(0), echo, nil)
	// Flush the request out of rank 0...
	w.Proc(0).Run(func() { w.Locality(0).FlushAll() })
	ok := w.Engine().RunUntil(func() bool {
		return w.Locality(1).Stats.ParcelsRun.Load() > 0
	})
	if !ok || w.Now() >= netsim.Second {
		t.Fatalf("FlushAll did not release the request (now %v)", w.Now())
	}
	// ...then the buffered reply out of rank 1.
	w.Proc(1).Run(func() { w.Locality(1).FlushAll() })
	if _, err := w.Wait(fut); err != nil {
		t.Fatalf("reply never arrived: %v", err)
	}
	if w.Now() >= netsim.Second {
		t.Fatal("waited for the delay despite FlushAll")
	}
}

func TestCoalesceMixedDestinations(t *testing.T) {
	cfg := coalCfg(4)
	w := testWorld(t, cfg)
	echo := w.Register("echo", func(c *Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 8) // blocks across all ranks
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	gate := w.NewAndGate(0, n)
	w.Proc(0).Run(func() {
		for i := 0; i < n; i++ {
			w.Locality(0).SendParcel(&parcel.Parcel{
				Action: echo, Target: lay.BlockAt(uint32(i % 8)),
				CAction: ALCOSet, CTarget: gate.G,
			})
		}
	})
	w.MustWait(gate)
}

func TestCoalesceGoEngine(t *testing.T) {
	cfg := coalCfg(4)
	cfg.Engine = EngineGo
	w := testWorld(t, cfg)
	incr := w.Register("incr", func(c *Ctx) {
		d := c.Local(c.P.Target)
		d[0]++
		c.Continue(nil)
	})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	gate := w.NewAndGate(0, n)
	w.Proc(0).Run(func() {
		for i := 0; i < n; i++ {
			w.Locality(0).SendParcel(&parcel.Parcel{
				Action: incr, Target: lay.BlockAt(0),
				CAction: ALCOSet, CTarget: gate.G,
			})
		}
	})
	w.MustWait(gate)
	got := w.MustWait(w.Proc(2).Get(lay.BlockAt(0), 1))
	if got[0] != n {
		t.Fatalf("counter %d, want %d", got[0], n)
	}
}
