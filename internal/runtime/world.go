package runtime

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"nmvgas/internal/gas"
	"nmvgas/internal/lco"
	"nmvgas/internal/netsim"
	"nmvgas/internal/nmagas"
	"nmvgas/internal/parcel"
	"nmvgas/internal/sched"
)

// World is one running system: cfg.Ranks localities, their address-space
// state, and the execution engine that connects them.
type World struct {
	cfg  Config
	caps Caps
	reg  *Registry
	seq  *gas.Sequence

	locs []*Locality
	net  network

	// DES engine state (nil under EngineGo).
	eng    *netsim.Engine
	fab    *netsim.Fabric
	mirror *nmagas.Mirror

	// Goroutine engine state (nil under EngineDES).
	pool *sched.Pool
	// faults is the goroutine transport's injector (the DES fabric owns
	// its own); nil without faults.
	faults *netsim.FaultInjector

	// Reliable-delivery state (nil unless cfg.reliable()).
	relw   *relWorld
	relCfg ReliabilityConfig

	// mem is the elastic-membership table (always present; unarmed until
	// the world kills, retires, or joins a locality).
	mem *membership

	// locBase is the first of the per-locality infrastructure blocks;
	// locality r's block is locBase + r.
	locBase gas.BlockID

	// tracer, when set before Start, observes protocol steps (see
	// trace.go).
	tracer func(TraceEvent)

	// epoch anchors wall-clock trace timestamps and latency samples under
	// EngineGo, where there is no simulated clock.
	epoch time.Time

	// lat holds the latency histograms; nil unless cfg.Metrics (the
	// disabled hot path pays one nil check, nothing else).
	lat *latencyState

	// heat holds the sampled access-heat tracker feeding the load
	// balancer; nil unless cfg.Heat.Enabled (the disabled hot path pays
	// one nil check, nothing else — see heat.go).
	heat *heatState

	// replCount is the number of blocks with live replica sets. Every
	// read-side coherence hook gates on it, so unreplicated worlds pay
	// one atomic load and nothing else.
	replCount atomic.Int64

	// pulse drives the periodic control tick and its watchdogs; nil
	// unless cfg.Pulse.Enabled (the disabled hooks pay one nil check —
	// see pulse.go).
	pulse *pulseState

	// migStall, when set via InjectMigrationStall, parks every
	// migration's data-install step so the stall watchdog has a real
	// anomaly to catch.
	migStall atomic.Bool

	started bool
	stopped bool
}

// NewWorld builds a world from cfg. Call Register for user actions, then
// Start, before sending traffic.
func NewWorld(cfg Config) (*World, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	bld, err := spaceBuilderFor(cfg.Mode)
	if err != nil {
		return nil, err
	}
	if err := cfg.validate(bld.caps); err != nil {
		return nil, err
	}
	w := &World{cfg: cfg, caps: bld.caps, reg: newRegistry(), seq: gas.NewSequence(), epoch: time.Now()}
	w.registerBuiltins()
	if cfg.Metrics {
		w.lat = newLatencyState()
	}
	if cfg.Heat.Enabled {
		w.heat = newHeatState(cfg.Heat, cfg.Ranks)
	}
	if cfg.Pulse.Enabled {
		w.pulse = newPulseState(w, cfg.Pulse)
	}
	w.relCfg = cfg.Reliability
	if cfg.reliable() {
		w.relw = newRelWorld()
	}
	w.mem = newMembership(w)

	for r := 0; r < cfg.Ranks; r++ {
		w.locs = append(w.locs, newLocality(w, r, bld))
	}

	switch cfg.Engine {
	case EngineDES:
		if cfg.Shards > 0 {
			// Conservative lookahead: no cross-rank event can land sooner
			// than the cheapest wire path, one minimum-hop traversal at the
			// model's link latency. See netsim.ParEngine.
			la := cfg.Model.Latency * netsim.VTime(netsim.MinHops(cfg.Topology))
			w.eng = netsim.NewParEngine(cfg.Ranks, cfg.Shards, la)
			if cfg.reliable() {
				// The reliable layer's exactly-once store is keyed per
				// (source, channel) stream, and one stream is legitimately
				// touched by different receiving ranks inside one window
				// (host forwards, post-migration re-resolution, cumulative
				// acks) — state the rank partition cannot isolate. Windows
				// then run serially in merged global event order, which is
				// bit-identical to shards=1; fault-free runs, where the
				// layer is off and nothing crosses the partition, keep the
				// parallel drain.
				w.eng.Par().SetSerial(true)
			}
		} else {
			w.eng = netsim.NewEngine()
		}
		w.fab = netsim.NewFabric(w.eng, netsim.FabricConfig{
			Ranks:       cfg.Ranks,
			Model:       cfg.Model,
			GVARouting:  bld.caps.NICTranslation,
			Policy:      cfg.Policy,
			NICTableCap: cfg.NICTableCap,
			Topology:    cfg.Topology,
			Faults:      cfg.Faults,
		})
		w.net = &desNet{w: w}
		for r, l := range w.locs {
			l.eng = w.eng.RankEngine(r)
			l.exec = &desExec{eng: l.eng, rank: r}
			nic := w.fab.NIC(r)
			loc := l
			nic.Resident = loc.residentForNIC
			nic.ResidentRead = loc.residentForRead
			nic.HostDeliver = func(m *netsim.Message) {
				loc.exec.Exec(cfg.Model.ORecv+cfg.Model.HandlerDispatch, func() { loc.onHostMsg(m) })
			}
			nic.DMADeliver = loc.onDMA
			nic.OnForward = func(m *netsim.Message, owner int) {
				loc.traceOp(TraceNICForward, m.Block, uint64(int64(owner)), m.OpID)
			}
		}
	case EngineGo:
		w.faults = netsim.NewFaultInjector(cfg.Faults)
		if cfg.Workers > 0 {
			w.pool = sched.NewPool(cfg.Ranks*cfg.Workers, cfg.Seed)
		}
		for _, l := range w.locs {
			l.exec = newGoExec(w.pool)
		}
		w.net = newChanNet(w)
	default:
		return nil, fmt.Errorf("runtime: unknown engine %d", cfg.Engine)
	}
	// World-level strategy wiring (e.g. the NM directory→NIC mirror) runs
	// once the engine substrate exists.
	bld.initWorld(w)

	// Per-locality infrastructure blocks: parcels that address "the
	// locality" (collectives wiring, migration control) target these.
	base, err := w.seq.Reserve(uint32(cfg.Ranks))
	if err != nil {
		return nil, err
	}
	w.locBase = base
	for r, l := range w.locs {
		b := &gas.Block{ID: base + gas.BlockID(r), Kind: gas.KindData, BSize: 64, Data: make([]byte, 64), Home: r, Pinned: true}
		if err := l.store.Insert(b); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Config returns the world's (normalized) configuration.
func (w *World) Config() Config { return w.cfg }

// Caps returns the capability descriptor of the world's address space.
func (w *World) Caps() Caps { return w.caps }

// dropTranslation forgets every locality's and the network's translation
// state for a freed block.
func (w *World) dropTranslation(b gas.BlockID, home int) {
	for _, loc := range w.locs {
		loc.space.OnFree(b, home)
	}
	w.net.dropAll(b)
}

// Ranks returns the number of localities.
func (w *World) Ranks() int { return w.cfg.Ranks }

// Register adds a user action; see Registry.Register.
func (w *World) Register(name string, a Action) parcel.ActionID {
	return w.reg.Register(name, a)
}

// Start seals the action registry and, under EngineGo, launches the
// locality actors and worker pool.
func (w *World) Start() {
	if w.started {
		panic("runtime: double Start")
	}
	w.started = true
	w.reg.seal()
	if w.fab != nil {
		w.fab.SetLiveness(w.mem)
	}
	if w.cfg.Engine == EngineGo {
		if w.pool != nil {
			w.pool.Start()
		}
		for _, l := range w.locs {
			l.exec.(*goExec).start()
		}
	}
	w.scheduleFaultMembership()
	if w.pulse != nil {
		w.pulse.start()
	}
}

// StopDrainTimeout bounds how long Stop waits for in-flight migrations
// to finish on the goroutine engine before abandoning them.
var StopDrainTimeout = 2 * time.Second

// Stop shuts the world down. Under EngineGo it first waits (briefly,
// bounded by StopDrainTimeout) for in-flight migrations to complete —
// tearing the actors down around a half-moved block would strand its
// queued traffic — then drains and stops the actors and pool, and
// deterministically aborts anything still mid-move so the final state
// is consistent for post-mortem inspection. Under EngineDES it is a
// no-op beyond marking the world stopped.
func (w *World) Stop() {
	if w.stopped {
		return
	}
	w.stopped = true
	if w.pulse != nil {
		w.pulse.stopGo()
	}
	if w.eng != nil {
		if par := w.eng.Par(); par != nil {
			par.Shutdown()
		}
	}
	if w.cfg.Engine == EngineGo {
		w.awaitMigrationDrain(StopDrainTimeout)
		for _, l := range w.locs {
			l.exec.(*goExec).stop()
		}
		if w.pool != nil {
			w.pool.Stop()
		}
		w.abortStrandedMigrations()
	}
}

// awaitMigrationDrain polls until no locality has a block mid-move, or
// the deadline passes. Only migrations that have already pinned count;
// a migrate.req still queued behind the stop simply never pins.
func (w *World) awaitMigrationDrain(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		moving := 0
		for _, l := range w.locs {
			l.mu.Lock()
			moving += len(l.moving)
			l.mu.Unlock()
		}
		if moving == 0 || time.Now().After(deadline) {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// abortStrandedMigrations runs after the actors have stopped: any block
// still pinned mid-move is unpinned in place (the move is abandoned;
// the block stays at its old owner) and its queued arrivals are
// discarded, so the stopped world's image is consistent.
func (w *World) abortStrandedMigrations() {
	for _, l := range w.locs {
		l.mu.Lock()
		var stranded []gas.BlockID
		for b := range l.moving {
			stranded = append(stranded, b)
		}
		for _, b := range stranded {
			delete(l.moving, b)
		}
		l.mu.Unlock()
		for _, b := range stranded {
			l.space.AbortMigrate(b)
			l.trace(TraceMigrateAbort, b, 0)
		}
	}
}

// Drain runs the DES engine until no events remain. It panics under
// EngineGo, where there is no global event queue to drain.
func (w *World) Drain() {
	w.mustDES("Drain")
	w.pulseResume()
	w.eng.Run()
}

// Now returns the simulated time under EngineDES and 0 under EngineGo.
func (w *World) Now() netsim.VTime {
	if w.eng != nil {
		return w.eng.Now()
	}
	return 0
}

// goWall converts a simulated duration to a wall-clock duration under
// EngineGo, through the Config.GoTimeScale knob.
func (w *World) goWall(d netsim.VTime) time.Duration {
	return time.Duration(int64(d) * int64(w.cfg.GoTimeScale))
}

// Engine exposes the DES engine for harness-level scheduling (workload
// drivers inject load at simulated times). It panics under EngineGo.
func (w *World) Engine() *netsim.Engine {
	w.mustDES("Engine")
	return w.eng
}

// Fabric exposes the simulated fabric for stats collection. It is nil
// under EngineGo.
func (w *World) Fabric() *netsim.Fabric { return w.fab }

// Locality returns rank r's locality.
func (w *World) Locality(r int) *Locality { return w.locs[r] }

// LocalityGVA returns the address of rank r's infrastructure block — the
// target for parcels addressed "to the locality".
func (w *World) LocalityGVA(r int) gas.GVA {
	return gas.New(r, w.locBase+gas.BlockID(r), 0)
}

func (w *World) mustDES(op string) {
	if w.eng == nil {
		panic(fmt.Sprintf("runtime: %s requires the DES engine", op))
	}
}

// onActor schedules fn as rank-l host work from global (driver or
// barrier) context. On the classic DES engine it is an ordinary executor
// task; under sharding it runs as a barrier task instead, because the
// recovery and membership work routed through here freely reaches across
// ranks — inside a parallel window that would race. Under EngineGo it is
// a plain actor task.
func (w *World) onActor(l *Locality, fn func()) {
	if w.eng != nil && w.eng.Sharded() {
		w.eng.After(0, fn)
		return
	}
	l.exec.Exec(0, fn)
}

// deferGlobal runs fn in a context allowed to touch any rank's state:
// immediately when called from a serial engine (classic DES, EngineGo's
// own locking applies), at the next merge barrier under sharding. l is
// the calling locality.
func (w *World) deferGlobal(l *Locality, fn func()) {
	if l.eng != nil {
		l.eng.AtBarrier(fn)
		return
	}
	fn()
}

// fail reports a broken protocol invariant. The runtime treats these as
// programming errors and fails loudly so tests and experiments cannot
// silently produce wrong results.
func (w *World) fail(format string, args ...any) {
	panic("runtime: invariant violated: " + fmt.Sprintf(format, args...))
}

// ErrDeadlock is returned by Wait when the event queue drains (DES) or a
// timeout expires (goroutine engine) before the LCO fires.
var ErrDeadlock = errors.New("runtime: wait would never complete")

// WaitTimeout bounds Wait on the goroutine engine.
var WaitTimeout = 30 * time.Second

// Wait blocks the driver until ref fires and returns its value. Under
// EngineDES it advances simulated time; under EngineGo it blocks the
// calling goroutine.
func (w *World) Wait(ref *LCORef) ([]byte, error) {
	if w.eng != nil {
		w.pulseResume()
		if ok := w.eng.RunUntil(ref.obj.Ready); !ok {
			return nil, fmt.Errorf("%w: event queue drained with LCO %v unset", ErrDeadlock, ref.G)
		}
		return ref.obj.Value(), nil
	}
	done := make(chan struct{})
	ref.obj.OnFire(func([]byte) { close(done) })
	select {
	case <-done:
		return ref.obj.Value(), nil
	case <-time.After(WaitTimeout):
		return nil, fmt.Errorf("%w: timeout after %v waiting on %v", ErrDeadlock, WaitTimeout, ref.G)
	}
}

// MustWait is Wait for drivers that treat failure as fatal.
func (w *World) MustWait(ref *LCORef) []byte {
	v, err := w.Wait(ref)
	if err != nil {
		panic(err)
	}
	return v
}

// LCORef names an LCO in the global address space together with the
// driver-side handle to its object.
type LCORef struct {
	G   gas.GVA
	obj lco.LCO
}

// Ready reports whether the LCO has fired.
func (r *LCORef) Ready() bool { return r.obj.Ready() }

// Value returns the fired value (meaningful once Ready).
func (r *LCORef) Value() []byte { return r.obj.Value() }

// OnFire registers a continuation on the underlying object.
func (r *LCORef) OnFire(t lco.Trigger) { r.obj.OnFire(t) }

// newLCO installs obj as an addressable LCO block at rank.
func (w *World) newLCO(rank int, obj lco.LCO) *LCORef {
	id, err := w.seq.Reserve(1)
	if err != nil {
		w.fail("LCO allocation: %v", err)
	}
	b := &gas.Block{ID: id, Kind: gas.KindLCO, Home: rank, Pinned: true, Ctl: obj}
	if err := w.locs[rank].store.Insert(b); err != nil {
		w.fail("LCO install: %v", err)
	}
	return &LCORef{G: gas.New(rank, id, 0), obj: obj}
}

// NewFuture creates a single-assignment LCO at rank.
func (w *World) NewFuture(rank int) *LCORef { return w.newLCO(rank, lco.NewFuture()) }

// NewAndGate creates an n-input gate LCO at rank.
func (w *World) NewAndGate(rank, n int) *LCORef { return w.newLCO(rank, lco.NewAndGate(n)) }

// NewReduce creates an n-input reduction LCO at rank.
func (w *World) NewReduce(rank, n int, c lco.Combiner) *LCORef {
	return w.newLCO(rank, lco.NewReduce(n, c))
}

// FreeLCO removes an LCO block.
func (w *World) FreeLCO(ref *LCORef) {
	w.locs[ref.G.Home()].store.Remove(ref.G.Block())
}
