package runtime

import (
	"strings"
	"testing"
)

func TestDumpStateShowsMigrationInFlight(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(1, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	mig := w.Proc(0).Migrate(g, 2)
	w.Engine().RunUntil(func() bool { return w.Locality(1).Moving(g.Block()) })
	// Park a put behind the move so the queue depth is visible.
	put := w.Proc(2).Put(g, []byte{1})
	w.Engine().RunUntil(func() bool { return w.Locality(1).Stats.Queued.Load() > 0 })

	var sb strings.Builder
	if err := w.DumpState(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"locality 0:", "locality 1:", "moving block", "-> rank 2", "queued)", "engine: now="} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	w.MustWait(mig)
	w.MustWait(put)

	sb.Reset()
	if err := w.DumpState(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "moving block") {
		t.Fatal("dump still shows a migration after completion")
	}
}

func TestDumpStateQuiescentWorld(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: AGASSW, Engine: EngineGo})
	w.Start()
	var sb strings.Builder
	if err := w.DumpState(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "locality 1: blocks=1 moving=0 ops_outstanding=0") {
		t.Fatalf("unexpected quiescent dump:\n%s", sb.String())
	}
}
