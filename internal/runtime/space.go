package runtime

import (
	"fmt"

	"nmvgas/internal/agas"
	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
)

// The address-space strategy layer. Everything the three translation
// designs (static PGAS, software-managed AGAS, network-managed AGAS) do
// differently on the protocol paths lives behind the AddressSpace
// interface: send-side translation, stale-delivery repair, the
// per-phase migration hooks, and free-time cleanup. The shared protocol
// code in locality.go / migrate.go / alloc*.go never inspects
// Config.Mode — it calls the strategy. spaceBuilderFor below is the one
// place a Mode is mapped to an implementation; adding a fourth mode
// means writing one new implementation file and one new case there (see
// DESIGN.md §3).

// Caps describes what an address space can do. The runtime uses it for
// capability gating (e.g. refusing migration under static addressing)
// and for wiring the engines (NICTranslation turns on fabric GVA
// routing); experiment drivers use it instead of switching on Mode.
type Caps struct {
	// Name is the canonical short name ("pgas", "agas-sw", "agas-nm").
	Name string
	// Migration reports whether blocks can move after allocation.
	Migration bool
	// NICTranslation reports that the NIC resolves GVAs (sends are
	// injected with netsim.ByGVA and the fabric routes by ownership).
	NICTranslation bool
	// HostTranslation reports that host software resolves GVAs (caches,
	// host forwarding, host repair of stale one-sided operations).
	HostTranslation bool
	// Replication reports that layouts can be replicated live
	// (ReplicateLive): the space implements the replica install/route/
	// drop hooks and the coherence protocol keeps holders fresh.
	Replication bool
}

// AddressSpace is the per-locality translation strategy. One instance
// exists per Locality; methods run on that locality's execution context
// unless noted otherwise. Implementations charge their own simulated
// costs (SWLookup, NICUpdate, OSend for host forwards) so the shared
// protocol code stays cost-model-agnostic.
type AddressSpace interface {
	// Caps returns the capability descriptor (same value for every
	// locality of a world).
	Caps() Caps

	// InstallInitial records a block just created at this locality
	// (its home). The three built-in spaces derive initial ownership
	// from the address arithmetic and need no state; the hook exists so
	// a fourth mode (e.g. hash-distributed directories) can seed per-
	// block state at allocation time. Called from setup-phase code.
	InstallInitial(b gas.BlockID)

	// Translate resolves the send-side destination for traffic to g:
	// a rank, or netsim.ByGVA to delegate translation to the NIC.
	Translate(g gas.GVA) int

	// OwnerHint is Translate's zero-cost sibling for coalescing: the
	// best cheap owner guess for b, with no simulated charge and no
	// failure mode (wrong guesses are repaired at the batch target).
	OwnerHint(b gas.BlockID, home int) int

	// OnStaleDelivery repairs m, delivered to this locality although
	// the block is not resident here (it migrated away, or the sender's
	// translation was stale). p is the decoded parcel for two-sided
	// traffic and nil for one-sided operations. The implementation
	// must forward, bounce, or fail loudly.
	OnStaleDelivery(m *netsim.Message, p *parcel.Parcel)

	// LearnOwner records host-software owner advice for b (correction
	// messages, NACK advice). NIC-table repair is not routed through
	// here — it stays on the NIC path (see Locality.onNICNack).
	LearnOwner(b gas.BlockID, owner int)

	// BeginMigrate runs at the current owner when a migration of b is
	// pinned, before the snapshot leaves.
	BeginMigrate(b gas.BlockID)
	// InstallMigrated runs at the destination after the block's bytes
	// are installed.
	InstallMigrated(b gas.BlockID)
	// CommitMigrate runs at the block's home: flip the authoritative
	// directory to newOwner and propagate per the mode's policy.
	CommitMigrate(b gas.BlockID, newOwner int)
	// FinishMigrate runs at the old owner once the home has committed:
	// leave whatever forwarding state the mode needs for stale traffic.
	FinishMigrate(b gas.BlockID, newOwner int)
	// AbortMigrate undoes BeginMigrate at the owner without moving the
	// block. The current protocol never aborts (migrations that cannot
	// proceed are refused before pinning), but the hook keeps the
	// interface total for strategies and tests that need it.
	AbortMigrate(b gas.BlockID)

	// HomeOwner returns the current owner of b as known at its home.
	// Must be called on the home locality's space (setup-phase paths:
	// Free, Replicate).
	HomeOwner(b gas.BlockID) int
	// OnFree forgets all translation state for b held at this locality
	// (home is b's home rank). Network-held state is swept separately.
	OnFree(b gas.BlockID, home int)

	// InstallReplicas tells this locality that block b now has a
	// replica set (master plus holder ranks). Each space decides what
	// its rank needs: the network-managed space installs a NIC read
	// route on non-holder ranks, the host-translated spaces install a
	// host-side replica route, holders and the master need nothing.
	// Called on every locality at ReplicateLive time (setup-phase).
	InstallReplicas(b gas.BlockID, master int, holders []int)
	// DropReplicas removes whatever InstallReplicas set up for b at
	// this locality (Unreplicate, Free).
	DropReplicas(b gas.BlockID)
	// ReadRoute resolves a read of b in host software: the rank whose
	// replica should serve it, charged per the mode's translation
	// story. ok is false when reads should follow ordinary ownership
	// routing (unreplicated block, or the mode routes reads in the NIC).
	ReadRoute(b gas.BlockID) (target int, ok bool)

	// Directory, Cache, and Tombstones expose the underlying agas
	// structures where the strategy has them, and nil where it does
	// not. Drivers and the load balancer use these read-mostly. Every
	// space with Replication keeps a Directory: it is the owner-side
	// replica directory even when ownership itself is static.
	Directory() *agas.Directory
	Cache() *agas.SWCache
	Tombstones() *agas.Tombstones
}

// spaceBuilder bundles what a World needs to instantiate one address
// space: its capability descriptor, a world-level hook (run once, after
// the engine substrate exists), and the per-locality factory.
type spaceBuilder struct {
	caps      Caps
	initWorld func(*World)
	newLocal  func(*Locality) AddressSpace
}

// spaceBuilderFor is the single Mode-dispatch point in the runtime. All
// other protocol code consults the AddressSpace it produces.
func spaceBuilderFor(m Mode) (spaceBuilder, error) {
	switch m {
	case PGAS:
		return pgasBuilder(), nil
	case AGASSW:
		return swBuilder(), nil
	case AGASNM:
		return nmBuilder(), nil
	}
	return spaceBuilder{}, fmt.Errorf("runtime: no address space for mode %v", m)
}

// SpaceSpec pairs a Mode with its address space's capability
// descriptor, so callers can enumerate and select translation
// strategies — and gate on what each can do — without switching on the
// Mode enum.
type SpaceSpec struct {
	Mode Mode
	Caps Caps
}

func (s SpaceSpec) String() string { return s.Caps.Name }

// SpaceFor returns the spec for m. It panics on an unknown mode (specs
// exist exactly for the modes NewWorld accepts).
func SpaceFor(m Mode) SpaceSpec {
	bld, err := spaceBuilderFor(m)
	if err != nil {
		panic(err)
	}
	return SpaceSpec{Mode: m, Caps: bld.caps}
}

// Spaces returns every built-in address space in canonical sweep order
// (the column/row order used by the experiment tables).
func Spaces() []SpaceSpec {
	out := make([]SpaceSpec, 0, int(AGASNM)+1)
	for m := PGAS; m <= AGASNM; m++ {
		out = append(out, SpaceFor(m))
	}
	return out
}

// NewWorldFor builds a world running spec's address space; cfg.Mode is
// overridden by the spec.
func NewWorldFor(spec SpaceSpec, cfg Config) (*World, error) {
	cfg.Mode = spec.Mode
	return NewWorld(cfg)
}
