package runtime

import "nmvgas/internal/stats"

// WorldStats aggregates runtime counters across all localities plus the
// fabric's NIC counters (DES engine only; zero under EngineGo).
type WorldStats struct {
	ParcelsSent   int64
	ParcelsRun    int64
	LocalRuns     int64
	HostForwards  int64
	HostNacks     int64
	NICNacks      int64
	Queued        int64
	SWLookups     int64
	PutOps        int64
	GetOps        int64
	PutBytes      int64
	GetBytes      int64
	Migrations    int64
	LoopNacks     int64
	NetSent       uint64
	NetBytes      uint64
	NetForwards   uint64
	NetNacks      uint64
	NICTableUpds  uint64
	DMADeliveries uint64

	// Replica coherence counters (zero without ReplicateLive). Reads
	// served from fresh replicas vs. reads that arrived at a stale
	// replica and chased the master; invalidations and update snapshots
	// applied at holders; refills installed.
	ReplicaReads      int64
	ReplicaStaleReads int64
	ReplicaInvals     int64
	ReplicaUpdates    int64
	ReplicaFills      int64

	// Software translation-cache counters (AGASSW only): the full set
	// from agas.SWCache.Stats — hits, misses, capacity evictions,
	// in-place owner updates, and staleness corrections.
	SWCacheHits        uint64
	SWCacheMisses      uint64
	SWCacheEvictions   uint64
	SWCacheUpdates     uint64
	SWCacheCorrections uint64

	// BatchReroutes counts coalesced-batch records that reached a host
	// which no longer owned their block and were re-routed in software —
	// zero under in-NIC batch scatter for a plain migrating workload.
	BatchReroutes int64
	// ScatterSplits / ScatterForwards count in-NIC batch splitting (NIC
	// counters on the DES fabric, locality counters on the goroutine
	// engine where chanNet plays the NIC).
	ScatterSplits   uint64
	ScatterForwards uint64

	// Delivery is the reliable-delivery and fault-injection report (all
	// zero when neither faults nor Reliability.Force are configured).
	Delivery DeliveryStats

	// Membership is the elastic-membership report (all zero until the
	// world kills, retires, or joins a locality).
	Membership MembershipStats

	// Latencies is the runtime latency report (zero unless
	// Config.Metrics; see WorldLatencies).
	Latencies WorldLatencies

	// Heat reports the sampled access-heat tracker (zero unless
	// Config.Heat.Enabled): whether it is on, and the cumulative sampled
	// access count across epochs.
	HeatEnabled bool
	HeatSampled uint64

	// Unacked is the instantaneous count of messages held by the
	// reliable layer awaiting acknowledgement (the black-hole audit
	// quantity; 0 when the layer is off).
	Unacked int

	// Pulses counts runtime pulse ticks fired so far (0 when
	// Config.Pulse is off). It is observability metadata: a pulse-on
	// world matches a pulse-off world on every other counter.
	Pulses uint64
}

// Stats sums the per-locality counters and, on the DES engine, the fabric
// counters.
func (w *World) Stats() WorldStats {
	var s WorldStats
	for _, l := range w.locs {
		s.ParcelsSent += l.Stats.ParcelsSent.Load()
		s.ParcelsRun += l.Stats.ParcelsRun.Load()
		s.LocalRuns += l.Stats.LocalRuns.Load()
		s.HostForwards += l.Stats.HostForwards.Load()
		s.HostNacks += l.Stats.HostNacks.Load()
		s.NICNacks += l.Stats.NICNacks.Load()
		s.Queued += l.Stats.Queued.Load()
		s.SWLookups += l.Stats.SWLookups.Load()
		s.PutOps += l.Stats.PutOps.Load()
		s.GetOps += l.Stats.GetOps.Load()
		s.PutBytes += l.Stats.PutBytes.Load()
		s.GetBytes += l.Stats.GetBytes.Load()
		s.Migrations += l.Stats.Migrations.Load()
		s.LoopNacks += l.Stats.LoopNacks.Load()
		s.BatchReroutes += l.Stats.BatchReroutes.Load()
		s.ScatterSplits += uint64(l.Stats.ScatterSplits.Load())
		s.ScatterForwards += uint64(l.Stats.ScatterForwards.Load())
		s.ReplicaReads += l.Stats.ReplicaReads.Load()
		s.ReplicaStaleReads += l.Stats.ReplicaStaleReads.Load()
		s.ReplicaInvals += l.Stats.ReplicaInvals.Load()
		s.ReplicaUpdates += l.Stats.ReplicaUpdates.Load()
		s.ReplicaFills += l.Stats.ReplicaFills.Load()
		if c := l.space.Cache(); c != nil {
			h, m, ev, up, corr := c.Stats()
			s.SWCacheHits += h
			s.SWCacheMisses += m
			s.SWCacheEvictions += ev
			s.SWCacheUpdates += up
			s.SWCacheCorrections += corr
		}
	}
	s.Delivery = w.DeliveryStats()
	s.Membership = w.MembershipStats()
	s.Latencies = w.Latencies()
	s.HeatEnabled = w.HeatEnabled()
	s.HeatSampled = w.HeatSampled()
	s.Unacked = w.UnackedMessages()
	s.Pulses = w.PulseCount()
	if w.fab != nil {
		n := w.fab.TotalStats()
		s.NetSent = n.Sent
		s.NetBytes = n.BytesTx
		s.NetForwards = n.Forwards
		s.NetNacks = n.Nacks
		s.NICTableUpds = n.TableUpdatesRx
		s.DMADeliveries = n.DMADelivered
		s.ScatterSplits += n.ScatterSplits
		s.ScatterForwards += n.ScatterForwards
	}
	return s
}

// StatsTable renders the aggregate counters for human consumption (used
// by the demo binary and experiment reports).
func (w *World) StatsTable() *stats.Table {
	s := w.Stats()
	tb := stats.NewTable("world counters ("+w.cfg.Mode.String()+"/"+w.cfg.Engine.String()+")",
		"counter", "value")
	add := func(name string, v any) { tb.AddRow(name, v) }
	add("parcels.sent", s.ParcelsSent)
	add("parcels.run", s.ParcelsRun)
	add("parcels.local_fastpath", s.LocalRuns)
	add("host.forwards", s.HostForwards)
	add("host.nacks", s.HostNacks)
	add("nic.nacks_processed", s.NICNacks)
	add("migration.queued_msgs", s.Queued)
	add("sw.lookups", s.SWLookups)
	add("onesided.puts", s.PutOps)
	add("onesided.gets", s.GetOps)
	add("onesided.put_bytes", s.PutBytes)
	add("onesided.get_bytes", s.GetBytes)
	add("migrations.completed", s.Migrations)
	add("net.messages", s.NetSent)
	add("net.bytes", s.NetBytes)
	add("net.inflight_forwards", s.NetForwards)
	add("net.nacks", s.NetNacks)
	add("net.table_updates", s.NICTableUpds)
	add("net.dma_deliveries", s.DMADeliveries)
	add("net.scatter_splits", s.ScatterSplits)
	add("net.scatter_forwards", s.ScatterForwards)
	add("coalesce.batch_reroutes", s.BatchReroutes)
	add("replica.reads", s.ReplicaReads)
	add("replica.stale_reads", s.ReplicaStaleReads)
	add("replica.invalidations", s.ReplicaInvals)
	add("replica.updates", s.ReplicaUpdates)
	add("replica.fills", s.ReplicaFills)
	add("swcache.hits", s.SWCacheHits)
	add("swcache.misses", s.SWCacheMisses)
	add("swcache.evictions", s.SWCacheEvictions)
	add("swcache.updates", s.SWCacheUpdates)
	add("swcache.corrections", s.SWCacheCorrections)
	d := s.Delivery
	add("rel.tracked", d.Tracked)
	add("rel.retransmits", d.Retransmits)
	add("rel.dups_suppressed", d.DupsSuppressed)
	add("rel.abandoned", d.Abandoned)
	add("rel.loop_nacks", d.HopCapNacks)
	add("rel.unacked", s.Unacked)
	add("faults.dropped", d.Faults.Dropped)
	add("faults.duplicated", d.Faults.Duplicated)
	add("faults.delayed", d.Faults.Delayed)
	add("faults.targeted_drops", d.Faults.TargetedDrops)
	add("faults.table_lost", d.Faults.TableEntriesLost)
	if ms := s.Membership; ms.Epoch > 0 || ms.Suspicions > 0 {
		add("member.epoch", ms.Epoch)
		add("member.deaths", ms.Deaths)
		add("member.joins", ms.Joins)
		add("member.retires", ms.Retires)
		add("member.suspicions", ms.Suspicions)
		add("member.rehomed_blocks", ms.Rehomed)
		add("member.lost_blocks", ms.Lost)
		add("member.down_drops", ms.DownDrops)
		add("member.dead_nacks", ms.DeadNacks)
		add("member.stale_epoch_drops", ms.StaleEpochDrops)
	}
	if s.HeatEnabled {
		add("heat.sampled", s.HeatSampled)
	}
	if h := w.Health(); h.Enabled {
		add("pulse.ticks", s.Pulses)
		add("health.level", h.Level.String())
		for _, st := range h.Watchdogs {
			if st.Level > WatchOK {
				add("health."+st.Name, st.Level.String()+" ("+st.Detail+")")
			}
		}
	} else if s.Pulses > 0 {
		add("pulse.ticks", s.Pulses)
	}
	if lat := s.Latencies; lat.Enabled {
		lrow := func(name string, l LatencySummary) {
			if l.Count == 0 {
				return
			}
			tb.AddRow(name+".p50_ns", l.P50Ns)
			tb.AddRow(name+".p95_ns", l.P95Ns)
			tb.AddRow(name+".p99_ns", l.P99Ns)
		}
		lrow("lat.parcel_exec", lat.ParcelExec)
		lrow("lat.put", lat.PutDone)
		lrow("lat.get", lat.GetDone)
		lrow("lat.nack_repair", lat.NackRepair)
		lrow("lat.coalesce_flush", lat.CoalesceFlush)
		lrow("lat.mig_transfer", lat.MigTransfer)
		lrow("lat.mig_update", lat.MigUpdate)
		lrow("lat.mig_drain", lat.MigDrain)
		lrow("lat.mig_total", lat.MigTotal)
		lrow("lat.repl_inval", lat.ReplInval)
		lrow("lat.repl_update", lat.ReplUpdate)
		lrow("lat.repl_fill", lat.ReplFill)
	}
	return tb
}
