package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nmvgas/internal/netsim"
)

// PulseConfig enables the runtime pulse: a periodic control tick inside
// the runtime that is the single cadence source for periodic work
// (watchdog evaluation, load-balancing epochs, any OnPulse client).
//
// Under EngineDES the pulse is an engine-scheduled metronome event at
// simulated times k·Period, so pulse-driven behaviour is exactly as
// deterministic as the rest of the simulation. Under EngineGo it is a
// ticker goroutine at Period scaled through Config.GoTimeScale.
//
// The disabled path is a nil pointer on World: no events are scheduled,
// no goroutine starts, and every hook is a single nil check — a world
// with Pulse off is byte-identical, counter for counter, to one built
// before the pulse existed.
type PulseConfig struct {
	// Enabled turns the pulse on. The zero value keeps every pulse and
	// watchdog path out of the runtime entirely.
	Enabled bool
	// Period is the tick interval on the simulated clock (EngineDES) or,
	// scaled by GoTimeScale, the wall clock (EngineGo). 0 = 100µs.
	Period netsim.VTime
	// Watchdogs configures the invariant monitors evaluated on each tick
	// (see WatchdogConfig). They run by default when the pulse is on.
	Watchdogs WatchdogConfig
}

// withDefaults normalizes: a disabled config collapses to the zero value
// so config comparisons stay meaningful, an enabled one fills defaults.
func (c PulseConfig) withDefaults() PulseConfig {
	if !c.Enabled {
		return PulseConfig{}
	}
	if c.Period <= 0 {
		c.Period = 100 * netsim.Microsecond
	}
	c.Watchdogs = c.Watchdogs.withDefaults()
	return c
}

// PulseInfo is handed to every pulse client on each tick.
type PulseInfo struct {
	// Seq is the 1-based tick count.
	Seq uint64
	// Now is the tick time: simulated under EngineDES, wall-clock
	// nanoseconds since world creation under EngineGo.
	Now netsim.VTime
}

type pulseClient struct {
	name string
	fn   func(PulseInfo)
}

// pulseState drives the metronome. On the DES engine the tick is a
// driver-scheduled event; to keep Drain/Run terminating, the tick parks
// itself when it is the only thing left in the queue and is re-armed by
// the driver entry points (Wait, Drain, AwaitMember, AwaitHealth). At
// most one trailing tick runs after the last real event, so an idle
// world costs nothing. On the goroutine engine a ticker goroutine fires
// until Stop.
type pulseState struct {
	w      *World
	period netsim.VTime
	seq    atomic.Uint64

	// armed is DES-only state: a metronome event is in the queue. All
	// touches happen on the single driver/engine goroutine.
	armed bool

	// stop ends the EngineGo ticker goroutine.
	stop chan struct{}

	mu      sync.Mutex
	clients []pulseClient

	wd *watchdogState
}

func newPulseState(w *World, cfg PulseConfig) *pulseState {
	ps := &pulseState{w: w, period: cfg.Period}
	if !cfg.Watchdogs.Disable {
		ps.wd = newWatchdogState(cfg.Watchdogs)
	}
	return ps
}

// start arms the metronome; called from World.Start.
func (ps *pulseState) start() {
	if ps.w.eng != nil {
		ps.desArm()
		return
	}
	ps.stop = make(chan struct{})
	go ps.goLoop(ps.w.goWall(ps.period), ps.stop)
}

// stopGo ends the EngineGo ticker; called from World.Stop. DES needs no
// teardown — an unfired tick event is inert once the driver stops
// running the engine.
func (ps *pulseState) stopGo() {
	if ps.stop != nil {
		close(ps.stop)
		ps.stop = nil
	}
}

func (ps *pulseState) goLoop(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// Both channels can be ready at once and select picks at
			// random; re-check stop so at most one fire trails Stop.
			select {
			case <-stop:
				return
			default:
			}
			ps.fire()
		}
	}
}

// desArm schedules the next tick at the next multiple of the period.
// Aligning fire times to k·Period (rather than now+Period) makes the
// tick schedule a pure function of simulated time: when and how often
// the driver calls Wait/Drain cannot shift it.
func (ps *pulseState) desArm() {
	now := ps.w.eng.Now()
	next := (now/ps.period + 1) * ps.period
	ps.armed = true
	ps.w.eng.At(next, ps.desTick)
}

// desTick is the metronome event. Under sharding it is a barrier task
// (World.eng is the driver façade), so clients may legally read and
// schedule across every rank, exactly like driver code between windows.
func (ps *pulseState) desTick() {
	ps.fire()
	if ps.w.eng.Pending() == 0 {
		// Nothing left but us: park so Run/RunUntil terminate. The next
		// driver entry point re-arms.
		ps.armed = false
		return
	}
	ps.desArm()
}

// pulseResume re-arms a parked DES metronome. Every driver entry point
// that advances the engine calls it; a nil pulse (Config.Pulse off)
// costs exactly this nil check.
func (w *World) pulseResume() {
	if w.pulse == nil || w.eng == nil || w.pulse.armed {
		return
	}
	w.pulse.desArm()
}

// fire runs one tick: watchdogs first (so clients can read fresh health
// state), then the registered clients in registration order.
func (ps *pulseState) fire() {
	seq := ps.seq.Add(1)
	info := PulseInfo{Seq: seq, Now: ps.w.traceNow()}
	if ps.wd != nil {
		ps.wd.evaluate(ps.w, info)
	}
	ps.mu.Lock()
	var clients []pulseClient
	if len(ps.clients) > 0 {
		clients = append(clients, ps.clients...)
	}
	ps.mu.Unlock()
	for _, c := range clients {
		c.fn(info)
	}
}

// PulseEnabled reports whether the runtime pulse is configured on.
func (w *World) PulseEnabled() bool { return w.pulse != nil }

// PulseCount returns the number of pulse ticks fired so far (0 when the
// pulse is off).
func (w *World) PulseCount() uint64 {
	if w.pulse == nil {
		return 0
	}
	return w.pulse.seq.Load()
}

// PulsePeriod returns the configured tick interval (0 when off).
func (w *World) PulsePeriod() netsim.VTime {
	if w.pulse == nil {
		return 0
	}
	return w.pulse.period
}

// OnPulse registers fn as a pulse client invoked on every tick, after
// watchdog evaluation, in registration order. name labels the client in
// panics and docs. Clients run in tick context: under EngineDES that is
// driver/barrier context (safe to read any rank's state and to issue
// non-blocking runtime calls such as SendParcel, Migrate, ReplicateLive);
// they must not call World.Wait, which re-enters the engine. Under
// EngineGo clients run on the ticker goroutine, concurrent with actors.
//
// It panics when the pulse is off: a silent no-op would make a
// mis-configured control loop look healthy.
func (w *World) OnPulse(name string, fn func(PulseInfo)) {
	if w.pulse == nil {
		panic(fmt.Sprintf("runtime: OnPulse(%q) needs Config.Pulse.Enabled", name))
	}
	ps := w.pulse
	ps.mu.Lock()
	ps.clients = append(ps.clients, pulseClient{name: name, fn: fn})
	ps.mu.Unlock()
}
