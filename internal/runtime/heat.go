package runtime

// Sampled access-heat tracking for the load balancer. This replaces the
// old SetAccessHook callback (a global-mutex map update on every
// data-path access) with the same shape as Config.Metrics: a nil pointer
// when off — the hot path pays exactly one nil check and zero
// allocations — and, when on, power-of-two sampling into per-rank state
// so the common case is one atomic increment. Sampled accesses land in a
// fixed-size space-saving sketch per rank (stats.TopK), never an
// unbounded map: block population can be millions, but the policy engine
// only ever needs the heavy hitters, and the sketch guarantees every
// block hotter than N/K is tracked.
//
// Keys carry (block, source rank, read/write) packed in one uint64, so
// the sketch answers not just "which blocks are hot" but "who is heating
// them and how" — exactly what the migrate-vs-replicate decision needs.

import (
	"sort"
	"sync"
	"sync/atomic"

	"nmvgas/internal/gas"
	"nmvgas/internal/stats"
)

// HeatConfig configures sampled access-heat tracking (Config.Heat).
type HeatConfig struct {
	// Enabled turns the tracker on. Off, the data path pays one nil
	// check and allocates nothing.
	Enabled bool
	// SampleShift samples 1 of every 2^SampleShift accesses per serving
	// rank (0 = count every access). Sampled counts are not rescaled:
	// multiply by 1<<SampleShift for an absolute estimate; the policy
	// engine only needs relative heat.
	SampleShift int
	// TopK is the per-rank sketch capacity (default 128). Memory is
	// fixed at Ranks × TopK entries regardless of block population.
	TopK int
}

// withDefaults fills defaults; a disabled config normalizes to zero.
func (c HeatConfig) withDefaults() HeatConfig {
	if !c.Enabled {
		return HeatConfig{}
	}
	if c.TopK <= 0 {
		c.TopK = 128
	}
	if c.SampleShift < 0 {
		c.SampleShift = 0
	}
	return c
}

// heatKey packs (src, read, block) into one sketch key: block in bits
// 0..31 (BlockID is uint32), the read flag at bit 32, and the source rank
// (≤ 4095, the GVA home-field width) in bits 33..44.
func heatKey(src int, b gas.BlockID, read bool) uint64 {
	k := uint64(src)<<33 | uint64(b)
	if read {
		k |= 1 << 32
	}
	return k
}

// HeatSample is one decoded sketch entry: sampled accesses to Block
// issued by rank Src. Count overestimates the true sampled frequency by
// at most Err (space-saving bounds); Count-Err is a guaranteed floor.
type HeatSample struct {
	Block gas.BlockID
	Src   int
	Read  bool
	Count uint64
	Err   uint64
}

func decodeHeatItem(it stats.TopKItem) HeatSample {
	return HeatSample{
		Block: gas.BlockID(it.Key & 0xFFFFFFFF),
		Src:   int(it.Key >> 33),
		Read:  it.Key&(1<<32) != 0,
		Count: it.Count,
		Err:   it.Err,
	}
}

// heatRank is one serving rank's tracker. Under EngineGo different ranks
// record concurrently, so the counters are padded apart; the sketch is
// only touched on the sampled slow path, behind its own lock.
type heatRank struct {
	n    atomic.Uint64 // accesses observed (drives the sampling decision)
	load atomic.Uint64 // sampled accesses served this epoch
	_    [48]byte      // keep neighbouring ranks off this cache line
	mu   sync.Mutex
	topk *stats.TopK
}

// heatState is the world's heat tracker; nil unless Config.Heat.Enabled.
type heatState struct {
	mask  uint64 // 2^SampleShift - 1; 0 samples everything
	shift int
	kcap  int           // per-rank sketch capacity
	total atomic.Uint64 // cumulative sampled accesses across epochs
	ranks []heatRank
}

func newHeatState(cfg HeatConfig, ranks int) *heatState {
	h := &heatState{
		mask:  uint64(1)<<cfg.SampleShift - 1,
		shift: cfg.SampleShift,
		kcap:  cfg.TopK,
		ranks: make([]heatRank, ranks),
	}
	for i := range h.ranks {
		h.ranks[i].topk = stats.NewTopK(cfg.TopK)
	}
	return h
}

// note records one data-path access served by `rank` on behalf of `src`.
func (h *heatState) note(rank, src int, b gas.BlockID, read bool) {
	r := &h.ranks[rank]
	if r.n.Add(1)&h.mask != 0 {
		return
	}
	r.load.Add(1)
	h.total.Add(1)
	key := heatKey(src, b, read)
	r.mu.Lock()
	r.topk.Offer(key, 1)
	r.mu.Unlock()
}

// noteAccess is the data-path hook: parcel execution, one-sided put/get
// (host and DMA paths), and replica-hit reads all land here. rank is the
// serving locality, src the issuing locality, read distinguishes
// get-shaped from put/exec-shaped traffic.
func (w *World) noteAccess(rank, src int, b gas.BlockID, read bool) {
	if w.heat != nil {
		w.heat.note(rank, src, b, read)
	}
}

// HeatEnabled reports whether the world tracks access heat.
func (w *World) HeatEnabled() bool { return w.heat != nil }

// HeatSampled returns the cumulative number of sampled accesses since
// Start (across epoch resets). Zero when heat tracking is off.
func (w *World) HeatSampled() uint64 {
	if w.heat == nil {
		return 0
	}
	return w.heat.total.Load()
}

// HeatLoads returns the sampled accesses served per rank in the current
// epoch (nil when heat tracking is off). loadbal.Imbalance summarizes it.
func (w *World) HeatLoads() []uint64 {
	if w.heat == nil {
		return nil
	}
	out := make([]uint64, len(w.heat.ranks))
	for i := range w.heat.ranks {
		out[i] = w.heat.ranks[i].load.Load()
	}
	return out
}

// HeatSamples returns every tracked sketch entry from every rank without
// resetting. Entries for the same (block, src, read) can appear once per
// serving rank (a block that migrated mid-epoch was served by two);
// consumers aggregate by summing.
func (w *World) HeatSamples() []HeatSample {
	if w.heat == nil {
		return nil
	}
	var out []HeatSample
	for i := range w.heat.ranks {
		r := &w.heat.ranks[i]
		r.mu.Lock()
		items := r.topk.Items()
		r.mu.Unlock()
		for _, it := range items {
			out = append(out, decodeHeatItem(it))
		}
	}
	return out
}

// HeatEpoch snapshots the current epoch — per-rank sampled loads and all
// sketch entries — and resets both for the next one. This is the policy
// engine's per-epoch read.
func (w *World) HeatEpoch() (loads []uint64, samples []HeatSample) {
	if w.heat == nil {
		return nil, nil
	}
	loads = make([]uint64, len(w.heat.ranks))
	for i := range w.heat.ranks {
		r := &w.heat.ranks[i]
		loads[i] = r.load.Swap(0)
		r.mu.Lock()
		items := r.topk.Items()
		r.topk.Reset()
		r.mu.Unlock()
		for _, it := range items {
			samples = append(samples, decodeHeatItem(it))
		}
	}
	return loads, samples
}

// HeatTop merges every rank's sketch and returns the hottest entries,
// highest sampled count first, at most k of them (k <= 0 returns all
// merged entries). Read-only; the per-rank sketches keep accumulating.
func (w *World) HeatTop(k int) []HeatSample {
	if w.heat == nil {
		return nil
	}
	// Merging into a sketch wide enough for every rank's entries keeps
	// the merge lossless (no evictions), so per-entry error bounds carry
	// through intact.
	merged := stats.NewTopK(len(w.heat.ranks) * w.heat.kcap)
	for i := range w.heat.ranks {
		r := &w.heat.ranks[i]
		r.mu.Lock()
		merged.Merge(r.topk)
		r.mu.Unlock()
	}
	out := make([]HeatSample, 0, merged.Len())
	for _, it := range merged.Items() {
		out = append(out, decodeHeatItem(it))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Block < out[j].Block
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
