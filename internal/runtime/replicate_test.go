package runtime

import (
	"bytes"
	"testing"
)

func TestReplicateServesLocalReads(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocLocal(1, 256, 2)
		if err != nil {
			t.Fatal(err)
		}
		data := []byte{1, 2, 3, 4}
		w.MustWait(w.Proc(0).Put(lay.BlockAt(0), data))
		if err := w.Replicate(lay); err != nil {
			t.Fatal(err)
		}
		// Every rank reads the same bytes, from its local copy.
		for r := 0; r < 4; r++ {
			got := w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 4))
			if !bytes.Equal(got, data) {
				t.Fatalf("rank %d read %v", r, got)
			}
		}
	})
}

func TestReplicatedReadsSkipTheNetwork(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(1, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(0), []byte{9}))
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	before := w.Fabric().TotalStats().Sent
	for r := 0; r < 4; r++ {
		w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 1))
	}
	if got := w.Fabric().TotalStats().Sent; got != before {
		t.Fatalf("replicated gets used the network: %d messages", got-before)
	}
	// Replicated reads are also much faster than remote reads.
	start := w.Now()
	w.MustWait(w.Proc(3).Get(lay.BlockAt(0), 1))
	local := w.Now() - start
	lay2, err := w.AllocLocal(1, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(3).Get(lay2.BlockAt(0), 1)) // warm
	start = w.Now()
	w.MustWait(w.Proc(3).Get(lay2.BlockAt(0), 1))
	remote := w.Now() - start
	if local*2 >= remote {
		t.Fatalf("replica read (%v) not much faster than remote (%v)", local, remote)
	}
}

func TestFrozenBlocksRejectWritesAndMigration(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	if st := w.MustWait(w.Proc(1).Migrate(lay.BlockAt(0), 2)); MigrateStatus(st) != MigratePinned {
		t.Fatalf("frozen block migrated: status %d", MigrateStatus(st))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("put to frozen block did not fail loudly")
		}
	}()
	w.MustWait(w.Proc(1).Put(lay.BlockAt(0), []byte{1}))
}

func TestParcelsStillRunOnceAtMaster(t *testing.T) {
	// Replicas must be invisible to ownership routing: an action on a
	// replicated block executes exactly once, at the master.
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES})
	runs := 0
	where := -1
	probe := w.Register("probe", func(c *Ctx) {
		runs++
		where = c.Rank()
		c.Continue(nil)
	})
	w.Start()
	lay, err := w.AllocLocal(2, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Call(lay.BlockAt(0), probe, nil))
	if runs != 1 || where != 2 {
		t.Fatalf("action ran %d times, at rank %d (want once at master 2)", runs, where)
	}
}

func TestReplicateAfterMigrationUsesCurrentOwner(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(0), []byte{7}))
	w.MustWait(w.Proc(0).Migrate(lay.BlockAt(0), 3))
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		got := w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 1))
		if got[0] != 7 {
			t.Fatalf("rank %d read %d after replicate-of-migrated", r, got[0])
		}
	}
}

func TestDereplicateRestoresWritability(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	if err := w.Dereplicate(lay); err != nil {
		t.Fatal(err)
	}
	// Replicas gone everywhere except the master.
	for r := 0; r < 3; r++ {
		blk, ok := w.Locality(r).Store().Get(lay.BlockAt(0).Block())
		if r == 1 {
			if !ok || blk.Frozen {
				t.Fatal("master missing or still frozen")
			}
			continue
		}
		if ok {
			t.Fatalf("replica survived at rank %d", r)
		}
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(0), []byte{5}))
	got := w.MustWait(w.Proc(2).Get(lay.BlockAt(0), 1))
	if got[0] != 5 {
		t.Fatal("write after dereplicate lost")
	}
	// And migration works again.
	if st := w.MustWait(w.Proc(0).Migrate(lay.BlockAt(0), 2)); MigrateStatus(st) != MigrateOK {
		t.Fatalf("post-dereplicate migrate status %d", MigrateStatus(st))
	}
}

func TestFreeSweepsReplicas(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	if err := w.Free(lay); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for d := uint32(0); d < 2; d++ {
			if _, ok := w.Locality(r).Store().Get(lay.Base.Block() + 0); ok {
				t.Fatalf("block copy survived free at rank %d (d=%d)", r, d)
			}
		}
	}
}
