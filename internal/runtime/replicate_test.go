package runtime

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"nmvgas/internal/agas"
	"nmvgas/internal/gas"
)

// settleCoherence waits for in-flight coherence traffic (invalidations,
// updates, refills) to land: writes acknowledge before their fan-out
// applies, so tests that assert post-write replica state must settle
// first. On DES the event queue drains; on the goroutine engine we poll
// the aggregate counters until pred holds.
func settleCoherence(t *testing.T, w *World, pred func(WorldStats) bool) {
	t.Helper()
	if w.Config().Engine == EngineDES {
		w.Drain()
		return
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pred(w.Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("coherence traffic never settled: %+v", w.Stats())
}

func TestReplicateServesLocalReads(t *testing.T) {
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocLocal(1, 256, 2)
		if err != nil {
			t.Fatal(err)
		}
		data := []byte{1, 2, 3, 4}
		w.MustWait(w.Proc(0).Put(lay.BlockAt(0), data))
		if err := w.Replicate(lay); err != nil {
			t.Fatal(err)
		}
		// Every rank reads the same bytes, from its local copy.
		for r := 0; r < 4; r++ {
			got := w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 4))
			if !bytes.Equal(got, data) {
				t.Fatalf("rank %d read %v", r, got)
			}
		}
	})
}

func TestReplicatedReadsSkipTheNetwork(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(1, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(0), []byte{9}))
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	before := w.Fabric().TotalStats().Sent
	for r := 0; r < 4; r++ {
		w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 1))
	}
	if got := w.Fabric().TotalStats().Sent; got != before {
		t.Fatalf("replicated gets used the network: %d messages", got-before)
	}
	// Replicated reads are also much faster than remote reads.
	start := w.Now()
	w.MustWait(w.Proc(3).Get(lay.BlockAt(0), 1))
	local := w.Now() - start
	lay2, err := w.AllocLocal(1, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(3).Get(lay2.BlockAt(0), 1)) // warm
	start = w.Now()
	w.MustWait(w.Proc(3).Get(lay2.BlockAt(0), 1))
	remote := w.Now() - start
	if local*2 >= remote {
		t.Fatalf("replica read (%v) not much faster than remote (%v)", local, remote)
	}
}

func TestWritesKeepReplicasCoherent(t *testing.T) {
	// The tentpole's core semantics: a replicated layout stays writable,
	// and once the invalidate/refill round settles every rank reads the
	// new value — from its replica, not the master.
	matrix(t, func(t *testing.T, mode Mode, eng EngineKind) {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: eng})
		w.Start()
		lay, err := w.AllocLocal(1, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		w.MustWait(w.Proc(1).Put(lay.BlockAt(0), []byte{1, 1}))
		if err := w.ReplicateLive(lay, 3); err != nil {
			t.Fatal(err)
		}
		w.MustWait(w.Proc(0).Put(lay.BlockAt(0), []byte{2, 2}))
		// 3 holders: each takes an invalidation and refills.
		settleCoherence(t, w, func(s WorldStats) bool {
			return s.ReplicaInvals >= 3 && s.ReplicaFills >= 3
		})
		for r := 0; r < 4; r++ {
			got := w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 2))
			if !bytes.Equal(got, []byte{2, 2}) {
				t.Fatalf("rank %d read %v after coherent write", r, got)
			}
		}
		s := w.Stats()
		if s.ReplicaInvals != 3 || s.ReplicaFills != 3 {
			t.Fatalf("invals=%d fills=%d, want 3/3", s.ReplicaInvals, s.ReplicaFills)
		}
		if s.ReplicaReads == 0 {
			t.Fatal("no reads served from replicas")
		}
	})
}

func TestWriteUpdatePushesSnapshots(t *testing.T) {
	// Under write-update, holders receive the post-write block image and
	// never go stale: no refill round, no stale-window reads.
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES,
		Coherence: agas.WriteUpdate})
	w.Start()
	lay, err := w.AllocLocal(0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ReplicateLive(lay, 3); err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(2).Put(lay.BlockAt(0), []byte{7, 7, 7}))
	w.Drain()
	for r := 0; r < 4; r++ {
		got := w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 3))
		if !bytes.Equal(got, []byte{7, 7, 7}) {
			t.Fatalf("rank %d read %v", r, got)
		}
	}
	s := w.Stats()
	if s.ReplicaUpdates != 3 {
		t.Fatalf("updates=%d, want 3", s.ReplicaUpdates)
	}
	if s.ReplicaInvals != 0 || s.ReplicaFills != 0 {
		t.Fatalf("invalidate traffic under write-update: invals=%d fills=%d",
			s.ReplicaInvals, s.ReplicaFills)
	}
	if s.ReplicaStaleReads != 0 {
		t.Fatalf("stale reads under write-update: %d", s.ReplicaStaleReads)
	}
}

func TestRWLeaseExpiresWithoutWriterTraffic(t *testing.T) {
	// Under RW leases the writer stays silent; a 1ns lease means every
	// holder read finds its lease expired, chases the master (reading the
	// correct value), and re-leases via the refill.
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES,
		Coherence: agas.RWLease, LeaseNs: 1})
	w.Start()
	lay, err := w.AllocLocal(0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ReplicateLive(lay, 2); err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(1).Put(lay.BlockAt(0), []byte{5}))
	if s := w.Stats(); s.ReplicaInvals != 0 || s.ReplicaUpdates != 0 {
		t.Fatalf("writer emitted coherence traffic under leases: %+v", s)
	}
	// Reads from holders see the expired lease and fetch the real value.
	for r := 1; r < 3; r++ {
		got := w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 1))
		if got[0] != 5 {
			t.Fatalf("rank %d read %d through expired lease", r, got[0])
		}
	}
	if s := w.Stats(); s.ReplicaStaleReads == 0 {
		t.Fatal("1ns leases never expired")
	}
}

func TestMigrationRehomesReplicaSet(t *testing.T) {
	// Migrating a replicated block moves coherence ownership with it: the
	// destination's directory takes over the replica set, holders learn
	// the new master, and writes there keep the set coherent.
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := lay.BlockAt(0).Block()
	w.MustWait(w.Proc(0).Put(lay.BlockAt(0), []byte{1}))
	if err := w.ReplicateLive(lay, 2); err != nil { // master 0, holders 1,2
		t.Fatal(err)
	}
	if st := w.MustWait(w.Proc(0).Migrate(lay.BlockAt(0), 3)); MigrateStatus(st) != MigrateOK {
		t.Fatalf("migrate status %d", MigrateStatus(st))
	}
	rs, ok := w.Locality(3).space.Directory().Replicas(b)
	if !ok || rs.Master != 3 || len(rs.Holders) != 2 {
		t.Fatalf("replica set not re-homed at destination: %+v ok=%v", rs, ok)
	}
	if _, ok := w.Locality(0).space.Directory().Replicas(b); ok {
		t.Fatal("old master still owns the replica set")
	}
	// Writes at the new master keep the holders coherent.
	w.MustWait(w.Proc(1).Put(lay.BlockAt(0), []byte{9}))
	w.Drain()
	for r := 0; r < 4; r++ {
		got := w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 1))
		if got[0] != 9 {
			t.Fatalf("rank %d read %d after post-migration write", r, got[0])
		}
	}
	// Migrating onto a holder absorbs that holder's copy into the master.
	if st := w.MustWait(w.Proc(2).Migrate(lay.BlockAt(0), 2)); MigrateStatus(st) != MigrateOK {
		t.Fatalf("migrate-to-holder status %d", MigrateStatus(st))
	}
	rs, ok = w.Locality(2).space.Directory().Replicas(b)
	if !ok || rs.Master != 2 || len(rs.Holders) != 1 || rs.Holders[0] != 1 {
		t.Fatalf("holder absorption wrong: %+v ok=%v", rs, ok)
	}
	w.MustWait(w.Proc(3).Put(lay.BlockAt(0), []byte{4}))
	w.Drain()
	for r := 0; r < 4; r++ {
		got := w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 1))
		if got[0] != 4 {
			t.Fatalf("rank %d read %d after holder-absorbing migration", r, got[0])
		}
	}
}

func TestParcelsStillRunOnceAtMaster(t *testing.T) {
	// Replicas must be invisible to ownership routing: an action on a
	// replicated block executes exactly once, at the master.
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES})
	runs := 0
	where := -1
	probe := w.Register("probe", func(c *Ctx) {
		runs++
		where = c.Rank()
		c.Continue(nil)
	})
	w.Start()
	lay, err := w.AllocLocal(2, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Call(lay.BlockAt(0), probe, nil))
	if runs != 1 || where != 2 {
		t.Fatalf("action ran %d times, at rank %d (want once at master 2)", runs, where)
	}
}

func TestReplicateAfterMigrationUsesCurrentOwner(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(0), []byte{7}))
	w.MustWait(w.Proc(0).Migrate(lay.BlockAt(0), 3))
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		got := w.MustWait(w.Proc(r).Get(lay.BlockAt(0), 1))
		if got[0] != 7 {
			t.Fatalf("rank %d read %d after replicate-of-migrated", r, got[0])
		}
	}
}

func TestUnreplicateRestoresPlainOwnership(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	if err := w.Unreplicate(lay); err != nil {
		t.Fatal(err)
	}
	if n := w.ReplicatedBlocks(); n != 0 {
		t.Fatalf("%d blocks still replicated", n)
	}
	// Replicas gone everywhere except the master.
	for r := 0; r < 3; r++ {
		_, ok := w.Locality(r).Store().Get(lay.BlockAt(0).Block())
		if r == 1 {
			if !ok {
				t.Fatal("master block missing after unreplicate")
			}
			continue
		}
		if ok {
			t.Fatalf("replica survived at rank %d", r)
		}
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(0), []byte{5}))
	got := w.MustWait(w.Proc(2).Get(lay.BlockAt(0), 1))
	if got[0] != 5 {
		t.Fatal("write after unreplicate lost")
	}
	// Migration keeps working.
	if st := w.MustWait(w.Proc(0).Migrate(lay.BlockAt(0), 2)); MigrateStatus(st) != MigrateOK {
		t.Fatalf("post-unreplicate migrate status %d", MigrateStatus(st))
	}
	// Unreplicate is idempotent on a layout with no sets left.
	if err := w.Unreplicate(lay); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateLiveAllOrNothing(t *testing.T) {
	// Satellite: a failing install must leave the world untouched — no
	// block of the layout may keep a half-installed replica set.
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-replicate only the second block, then ask for the whole layout:
	// validation fails on block 1, and block 0 must not gain replicas.
	sub := gas.Layout{Base: lay.BlockAt(1), BSize: lay.BSize, NBlocks: 1, Ranks: lay.Ranks, Dist: gas.DistLocal}
	if err := w.ReplicateLive(sub, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.ReplicateLive(lay, 2); err == nil {
		t.Fatal("replicating an already-replicated block succeeded")
	}
	if n := w.ReplicatedBlocks(); n != 1 {
		t.Fatalf("replicated block count %d after failed install, want 1", n)
	}
	b0 := lay.BlockAt(0).Block()
	for r := 0; r < 4; r++ {
		if blk, ok := w.Locality(r).Store().Get(b0); ok && blk.Replica {
			t.Fatalf("failed install leaked a replica of block 0 at rank %d", r)
		}
	}
	if _, ok := w.Locality(0).space.Directory().Replicas(b0); ok {
		t.Fatal("failed install leaked a directory entry for block 0")
	}

	// Range and capability validation.
	if err := w.ReplicateLive(lay, 4); err == nil {
		t.Fatal("replica count beyond ranks-1 accepted")
	}
	if err := w.ReplicateLive(lay, -1); err == nil {
		t.Fatal("negative replica count accepted")
	}
	if err := w.ReplicateLive(lay, 0); err != nil {
		t.Fatalf("zero replicas should be a no-op, got %v", err)
	}
}

func TestFreeSweepsReplicas(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replicate(lay); err != nil {
		t.Fatal(err)
	}
	if err := w.Free(lay); err != nil {
		t.Fatal(err)
	}
	if n := w.ReplicatedBlocks(); n != 0 {
		t.Fatalf("%d blocks still counted replicated after free", n)
	}
	for r := 0; r < 3; r++ {
		for d := uint32(0); d < 2; d++ {
			if _, ok := w.Locality(r).Store().Get(lay.Base.Block() + gas.BlockID(d)); ok {
				t.Fatalf("block copy survived free at rank %d (d=%d)", r, d)
			}
		}
	}
}

func TestConcurrentReadsRaceInvalidations(t *testing.T) {
	// Satellite: -race coverage of readers racing the write/invalidate/
	// refill machinery on the goroutine engine. Writers stamp the whole
	// block with one value; every read must observe some complete stamp
	// (the store serializes whole-block writes), never torn bytes.
	for _, mode := range []Mode{AGASSW, AGASNM} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			const bsize = 64
			w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: EngineGo})
			w.Start()
			lay, err := w.AllocLocal(0, bsize, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.ReplicateLive(lay, 3); err != nil {
				t.Fatal(err)
			}
			g := lay.BlockAt(0)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				stamp := make([]byte, bsize)
				for i := 1; i <= 40; i++ {
					for j := range stamp {
						stamp[j] = byte(i)
					}
					w.MustWait(w.Proc(i%4).Put(g, stamp))
				}
			}()
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < 60; i++ {
						got := w.MustWait(w.Proc(r).Get(g, bsize))
						for j := 1; j < len(got); j++ {
							if got[j] != got[0] {
								t.Errorf("rank %d: torn read: byte %d is %d, byte 0 is %d",
									r, j, got[j], got[0])
								return
							}
						}
					}
				}(r)
			}
			wg.Wait()
		})
	}
}
