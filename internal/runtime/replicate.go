package runtime

import (
	"fmt"

	"nmvgas/internal/gas"
)

// Read-only replication: a layout can be frozen and copied to every
// locality, after which reads (one-sided gets, Local, and the read-side
// fast path) are satisfied from the local replica while writes and
// migration are rejected. This implements the "cache read-mostly data at
// every locality" extension the AGAS literature leaves as future work;
// because the data is frozen there is no coherence protocol to pay for.
//
// Replicas are invisible to ownership routing: the NIC residency oracle
// and host routing still resolve parcels and writes to the single master,
// so executing an action on a replicated block still happens exactly once,
// at the owner.

// Replicate freezes every block of lay and installs read-only replicas on
// all localities. Like allocation it is a setup-phase operation (the
// copies are installed directly; a production system would broadcast
// them): call it after the data is initialized and before read traffic.
func (w *World) Replicate(lay gas.Layout) error {
	for d := uint32(0); d < lay.NBlocks; d++ {
		b := lay.Base.Block() + gas.BlockID(d)
		home := lay.HomeOf(d)
		owner := w.locs[home].space.HomeOwner(b)
		master, ok := w.locs[owner].store.Get(b)
		if !ok {
			return fmt.Errorf("runtime: replicate of non-resident block %d", b)
		}
		if master.Kind != gas.KindData {
			return fmt.Errorf("runtime: replicate of non-data block %d", b)
		}
		if w.locs[owner].isMoving(b) {
			return fmt.Errorf("runtime: replicate of block %d mid-migration", b)
		}
		master.Frozen = true
		master.Pinned = true
		for r, loc := range w.locs {
			if r == owner {
				continue
			}
			replica := &gas.Block{
				ID:      b,
				Kind:    gas.KindData,
				BSize:   master.BSize,
				Data:    append([]byte(nil), master.Data...),
				Pinned:  true,
				Frozen:  true,
				Replica: true,
			}
			if err := loc.store.Insert(replica); err != nil {
				return fmt.Errorf("runtime: replicate: %w", err)
			}
		}
	}
	return nil
}

// Dereplicate removes the replicas and unfreezes the masters (the inverse
// setup-phase operation).
func (w *World) Dereplicate(lay gas.Layout) error {
	for d := uint32(0); d < lay.NBlocks; d++ {
		b := lay.Base.Block() + gas.BlockID(d)
		for _, loc := range w.locs {
			blk, ok := loc.store.Get(b)
			if !ok {
				continue
			}
			if blk.Replica {
				loc.store.Remove(b)
				continue
			}
			blk.Frozen = false
			blk.Pinned = false
		}
	}
	return nil
}

// replicaData returns the local replica's bytes for a read, if one
// exists here (master or replica — both are valid read sources when
// frozen).
func (l *Locality) replicaData(b gas.BlockID) (*gas.Block, bool) {
	blk, ok := l.store.Get(b)
	if !ok || blk.Kind != gas.KindData || !blk.Frozen {
		return nil, false
	}
	return blk, true
}
