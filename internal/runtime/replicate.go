package runtime

import (
	"fmt"

	"nmvgas/internal/agas"
	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
)

// Coherent read replication. A layout can be replicated live: each block
// keeps its single writable master (the owner ownership routing resolves
// to) and gains a set of read replicas on holder localities. The master's
// address space tracks the replica set in its owner-side directory
// (agas.Directory.SetReplicas); every other locality learns where its
// reads should go (NIC read routes under agas-nm, host replica routes
// under agas-sw/pgas). Writes, parcels, and migration keep working:
//
//   - writes always resolve to the master and fan out coherence traffic
//     per Config.Coherence — invalidations (kReplInval), full-block
//     updates (kReplUpdate), or nothing (RW leases, where replicas
//     self-expire);
//   - a stale holder refills single-flight through kReplFill /
//     kReplFillRep, chasing the master through ordinary ownership
//     routing, and meanwhile forwards reads to the master;
//   - migration moves the master and re-homes the replica set: the set
//     travels in the migration payload, the destination's directory
//     becomes its owner-side record, and every locality's read route is
//     reinstalled against the new master.
//
// Replicas stay invisible to ownership routing: the NIC residency oracle
// and the host fast paths treat them as non-resident, so executing an
// action or applying a write still happens exactly once, at the master.
// Only traffic marked Read (kGetReq/kGetVec) is ever steered to them.

// replHolder is the holder-side coherence state for one replica resident
// on a locality, guarded by the locality's mu.
type replHolder struct {
	// master is the block's current owner (updated when the master
	// migrates); home is the block's home rank, the routing anchor a
	// refill chases the master through.
	master, home int
	// stale marks the copy invalid (an invalidation arrived, or the
	// lease expired); reads chase the master until the refill lands.
	stale bool
	// filling makes refills single-flight: set when a kReplFill is in
	// the air, cleared when its reply installs.
	filling bool
	// expiry is the lease horizon on the latency clock (RW-lease policy
	// only): past it the copy flips stale and refills.
	expiry int64
}

// readTarget picks which member of a replica set should serve rank r's
// reads: the nearest by fabric distance, with ties spread across ranks so
// uniform-distance topologies (crossbar) still scale read throughput with
// replica count instead of electing one hot holder.
func (w *World) readTarget(r, master int, holders []int) int {
	cands := make([]int, 0, len(holders)+1)
	cands = append(cands, holders...)
	cands = append(cands, master)
	dist := func(a, b int) int {
		if a == b {
			return 0
		}
		if w.fab != nil {
			return w.fab.Topo.Hops(a, b)
		}
		// The goroutine transport is a crossbar: direct channels, every
		// peer equidistant. Matching the DES crossbar keeps target choice
		// (and so the golden counters) engine-independent.
		return 1
	}
	best := dist(r, cands[0])
	for _, c := range cands[1:] {
		if d := dist(r, c); d < best {
			best = d
		}
	}
	ties := cands[:0]
	for _, c := range cands {
		if dist(r, c) == best {
			ties = append(ties, c)
		}
	}
	return ties[r%len(ties)]
}

// replicaFresh reports whether this locality holds a fresh replica of b
// (fresh, holder) and lazily maintains the holder state: an expired lease
// flips the copy stale, and a stale copy kicks a single-flight refill.
// Safe from any context (NIC oracle, actor, DES engine).
func (l *Locality) replicaFresh(b gas.BlockID) (bool, bool) {
	l.mu.Lock()
	st := l.replicas[b]
	if st == nil {
		l.mu.Unlock()
		return false, false
	}
	if !st.stale && l.w.cfg.Coherence == agas.RWLease && l.w.latNow() > st.expiry {
		st.stale = true
	}
	stale := st.stale
	fill := stale && !st.filling
	if fill {
		st.filling = true
	}
	home := st.home
	l.mu.Unlock()
	if fill {
		l.sendReplFill(b, home)
	}
	return !stale, true
}

// residentForRead is the NIC's replica oracle: a read may be served here,
// below the host, when a fresh replica is resident. The replCount gate
// keeps the unreplicated hot path at one atomic load.
func (l *Locality) residentForRead(b gas.BlockID) bool {
	if l.w.replCount.Load() == 0 {
		return false
	}
	fresh, _ := l.replicaFresh(b)
	return fresh
}

// replicaMaster returns the holder state's master rank, or fallback when
// this locality holds no state for b (a read racing an unreplicate).
func (l *Locality) replicaMaster(b gas.BlockID, fallback int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st := l.replicas[b]; st != nil {
		return st.master
	}
	return fallback
}

// replMarkStale flips b's local replica stale and kicks the single-flight
// refill (invalidation arrival).
func (l *Locality) replMarkStale(b gas.BlockID) bool {
	l.mu.Lock()
	st := l.replicas[b]
	if st == nil {
		l.mu.Unlock()
		return false
	}
	st.stale = true
	fill := !st.filling
	if fill {
		st.filling = true
	}
	home := st.home
	l.mu.Unlock()
	if fill {
		l.sendReplFill(b, home)
	}
	return true
}

// sendReplFill asks the master for a fresh snapshot of b. The request
// carries a real Target and rides ordinary ownership routing, so it
// queues behind migrations and chases tombstones like any other message
// — the holder does not need to know where the master currently lives.
func (l *Locality) sendReplFill(b gas.BlockID, home int) {
	m := netsim.NewMessage()
	m.Kind = kReplFill
	m.Src = l.rank
	m.Target = gas.New(home, b, 0)
	m.Wire = 32
	m.OpID = l.newOpID()
	l.w.latStart(m.OpID)
	l.routeMsg(m)
}

// replFanOut runs at the master after a write applied to b: per the
// coherence policy it pushes invalidations or full-block updates to every
// holder. fromNIC selects NIC-context injection (the DMA write path —
// the fan-out stays in the network) versus host injection (the sw path —
// the host serializes the storm, which is the cost the experiment
// measures). Under RW leases writers stay silent; replicas self-expire.
func (l *Locality) replFanOut(b gas.BlockID, fromNIC bool) {
	if l.w.replCount.Load() == 0 {
		return
	}
	dir := l.space.Directory()
	if dir == nil {
		return
	}
	rs, ok := dir.Replicas(b)
	if !ok || len(rs.Holders) == 0 {
		return
	}
	pol := l.w.cfg.Coherence
	if pol == agas.RWLease {
		return
	}
	var snap []byte
	if pol == agas.WriteUpdate {
		blk, ok := l.store.Get(b)
		if !ok {
			return
		}
		snap = make([]byte, blk.BSize)
		if err := l.store.ReadAt(b, 0, snap); err != nil {
			l.w.fail("rank %d: replica update snapshot: %v", l.rank, err)
		}
	}
	for _, h := range rs.Holders {
		m := netsim.NewMessage()
		m.Src = l.rank
		m.Dst = h
		m.Block = b
		m.OpID = l.newOpID()
		l.w.latStart(m.OpID)
		if pol == agas.WriteUpdate {
			m.Kind = kReplUpdate
			// Each message owns its payload: holders release theirs
			// independently.
			m.Payload = append([]byte(nil), snap...)
			m.Wire = 32 + len(snap)
		} else {
			m.Kind = kReplInval
			m.Wire = 32
		}
		if fromNIC {
			l.nicInject(m)
		} else {
			l.inject(m, h)
		}
	}
}

// ---------------------------------------------------------------------
// Coherence message handlers (onHostMsg dispatch)

// onReplInval marks the local replica stale and starts the refill. A
// hot replicated block is read-mostly by construction, so refreshing
// eagerly (instead of waiting for the next read to fault) keeps the
// replica serving; reads in the stale window chase the master.
func (l *Locality) onReplInval(m *netsim.Message) {
	if !l.relAccept(m) {
		l.recycle(m)
		return
	}
	if l.replMarkStale(m.Block) {
		l.Stats.ReplicaInvals.Inc()
		l.w.latReplDone(m.OpID, latReplInval)
	}
	l.recycle(m)
}

// onReplUpdate installs the master's post-write snapshot in place.
func (l *Locality) onReplUpdate(m *netsim.Message) {
	if !l.relAccept(m) {
		l.releasePayload(m)
		l.recycle(m)
		return
	}
	b := m.Block
	l.mu.Lock()
	st := l.replicas[b]
	l.mu.Unlock()
	if st != nil {
		// A racing unreplicate may have removed the copy; the write is
		// best-effort on purpose.
		if err := l.store.WriteAt(b, 0, m.Payload); err == nil {
			l.mu.Lock()
			st.stale = false
			l.mu.Unlock()
			l.Stats.ReplicaUpdates.Inc()
			l.w.latReplDone(m.OpID, latReplUpdate)
		}
	}
	l.releasePayload(m)
	l.recycle(m)
}

// onReplFill answers at the master with a snapshot. It mirrors the
// one-sided receive contract: queue behind migrations, repair stale
// deliveries through the address-space strategy, and rely on the tracked
// reply (not regeneration) to survive a lost first answer.
func (l *Locality) onReplFill(m *netsim.Message) {
	b := m.Target.Block()
	if l.queueIfMoving(b, m) {
		return
	}
	blk, ok := l.store.Get(b)
	if !ok || blk.Replica {
		l.space.OnStaleDelivery(m, nil)
		return
	}
	if !l.relAccept(m) {
		l.recycle(m)
		return
	}
	snap := make([]byte, blk.BSize)
	if err := l.store.ReadAt(b, 0, snap); err != nil {
		l.w.fail("rank %d: replica fill snapshot: %v", l.rank, err)
	}
	l.exec.Charge(l.w.cfg.Model.CopyTime(len(snap)))
	rep := netsim.NewMessage()
	rep.Kind = kReplFillRep
	rep.Src = l.rank
	rep.Dst = m.Src
	rep.Block = b
	rep.Payload = snap
	rep.Wire = 32 + len(snap)
	rep.OpID = m.OpID
	l.recycle(m)
	l.inject(rep, rep.Dst)
}

// onReplFillRep installs the refill at the holder and re-arms the lease.
func (l *Locality) onReplFillRep(m *netsim.Message) {
	if !l.relAccept(m) {
		l.releasePayload(m)
		l.recycle(m)
		return
	}
	b := m.Block
	l.mu.Lock()
	st := l.replicas[b]
	l.mu.Unlock()
	if st != nil {
		if err := l.store.WriteAt(b, 0, m.Payload); err == nil {
			l.mu.Lock()
			st.stale = false
			st.filling = false
			st.expiry = l.w.latNow() + l.w.cfg.LeaseNs
			l.mu.Unlock()
			l.Stats.ReplicaFills.Inc()
			l.w.latReplDone(m.OpID, latReplFill)
		}
	}
	l.releasePayload(m)
	l.recycle(m)
}

// ---------------------------------------------------------------------
// Driver API (setup-phase, like alloc/Free)

// ReplicateLive installs `replicas` coherent read replicas per block of
// lay, on the ranks following each block's current master. The layout
// stays live: writes keep landing at the masters (fanning out coherence
// traffic per Config.Coherence) and blocks keep migrating (the replica
// set follows the master). The install is all-or-nothing: on any error
// every already-installed set is rolled back and the world is unchanged.
func (w *World) ReplicateLive(lay gas.Layout, replicas int) error {
	if !w.caps.Replication {
		return fmt.Errorf("runtime: address space %q cannot replicate", w.caps.Name)
	}
	if replicas < 0 || replicas > w.cfg.Ranks-1 {
		return fmt.Errorf("runtime: %d replicas out of range [0,%d]", replicas, w.cfg.Ranks-1)
	}
	if replicas == 0 {
		return nil
	}
	type set struct {
		b       gas.BlockID
		master  int
		holders []int
	}
	// Validate everything before touching anything.
	plan := make([]set, 0, lay.NBlocks)
	for d := uint32(0); d < lay.NBlocks; d++ {
		b := lay.Base.Block() + gas.BlockID(d)
		home := lay.HomeOf(d)
		owner := w.locs[home].space.HomeOwner(b)
		blk, ok := w.locs[owner].store.Get(b)
		if !ok {
			return fmt.Errorf("runtime: replicate of non-resident block %d", b)
		}
		if blk.Kind != gas.KindData {
			return fmt.Errorf("runtime: replicate of non-data block %d", b)
		}
		if blk.Replica {
			return fmt.Errorf("runtime: block %d's owner %d holds only a replica", b, owner)
		}
		if w.locs[owner].isMoving(b) {
			return fmt.Errorf("runtime: replicate of block %d mid-migration", b)
		}
		if dir := w.locs[owner].space.Directory(); dir != nil {
			if _, already := dir.Replicas(b); already {
				return fmt.Errorf("runtime: block %d is already replicated", b)
			}
		}
		holders := make([]int, replicas)
		for i := range holders {
			holders[i] = (owner + 1 + i) % w.cfg.Ranks
		}
		plan = append(plan, set{b: b, master: owner, holders: holders})
	}
	for i := range plan {
		if err := w.installReplicaSet(lay, plan[i].b, plan[i].master, plan[i].holders); err != nil {
			for j := i - 1; j >= 0; j-- {
				w.removeReplicaSet(plan[j].b, plan[j].master, plan[j].holders)
			}
			return err
		}
	}
	return nil
}

// installReplicaSet copies the master snapshot to every holder, records
// the set in the master's owner-side directory, and installs the read
// routes world-wide. On error it unwinds its own partial work.
func (w *World) installReplicaSet(lay gas.Layout, b gas.BlockID, master int, holders []int) error {
	ml := w.locs[master]
	blk, ok := ml.store.Get(b)
	if !ok {
		return fmt.Errorf("runtime: replicate of non-resident block %d", b)
	}
	snap := append([]byte(nil), blk.Data...)
	now := w.latNow()
	for i, h := range holders {
		hl := w.locs[h]
		replica := &gas.Block{
			ID:      b,
			Kind:    gas.KindData,
			BSize:   blk.BSize,
			Data:    append([]byte(nil), snap...),
			Home:    lay.HomeOf(uint32(b - lay.Base.Block())),
			Pinned:  true,
			Replica: true,
		}
		if err := hl.store.Insert(replica); err != nil {
			for _, u := range holders[:i] {
				w.locs[u].store.Remove(b)
				w.locs[u].dropReplicaState(b)
			}
			return fmt.Errorf("runtime: replicate: %w", err)
		}
		hl.mu.Lock()
		if hl.replicas == nil {
			hl.replicas = make(map[gas.BlockID]*replHolder)
		}
		hl.replicas[b] = &replHolder{
			master: master,
			home:   lay.HomeOf(uint32(b - lay.Base.Block())),
			expiry: now + w.cfg.LeaseNs,
		}
		hl.mu.Unlock()
	}
	if dir := ml.space.Directory(); dir != nil {
		dir.SetReplicas(b, master, holders)
	}
	for _, loc := range w.locs {
		loc.space.InstallReplicas(b, master, holders)
	}
	w.replCount.Add(1)
	return nil
}

// removeReplicaSet is installReplicaSet's inverse (rollback and
// unreplicate share it).
func (w *World) removeReplicaSet(b gas.BlockID, master int, holders []int) {
	for _, h := range holders {
		hl := w.locs[h]
		if blk, ok := hl.store.Get(b); ok && blk.Replica {
			hl.store.Remove(b)
		}
		hl.dropReplicaState(b)
	}
	if dir := w.locs[master].space.Directory(); dir != nil {
		dir.DropReplicas(b)
	}
	for _, loc := range w.locs {
		loc.space.DropReplicas(b)
	}
	w.replCount.Add(-1)
}

// rehomeReplicas re-anchors b's replica set at its new master after a
// migration: the destination's directory becomes the owner-side record,
// every holder learns where writes now live, and all read routes are
// reinstalled against the new geometry. A set whose holders migrated
// away entirely (the destination was the sole holder) dissolves.
func (w *World) rehomeReplicas(b gas.BlockID, master int, holders []int) {
	if len(holders) == 0 {
		for _, loc := range w.locs {
			loc.space.DropReplicas(b)
		}
		w.replCount.Add(-1)
		return
	}
	if dir := w.locs[master].space.Directory(); dir != nil {
		dir.SetReplicas(b, master, holders)
	}
	for _, h := range holders {
		hl := w.locs[h]
		hl.mu.Lock()
		if st := hl.replicas[b]; st != nil {
			st.master = master
		}
		hl.mu.Unlock()
	}
	for _, loc := range w.locs {
		loc.space.DropReplicas(b)
		loc.space.InstallReplicas(b, master, holders)
	}
}

// dropReplicaState forgets the holder-side coherence record for b.
func (l *Locality) dropReplicaState(b gas.BlockID) {
	l.mu.Lock()
	delete(l.replicas, b)
	l.mu.Unlock()
}

// Unreplicate removes lay's replica sets: holders drop their copies and
// every read route is withdrawn; the masters keep serving. Blocks of lay
// that were never replicated are skipped, so Unreplicate is idempotent.
func (w *World) Unreplicate(lay gas.Layout) error {
	for d := uint32(0); d < lay.NBlocks; d++ {
		b := lay.Base.Block() + gas.BlockID(d)
		home := lay.HomeOf(d)
		owner := w.locs[home].space.HomeOwner(b)
		dir := w.locs[owner].space.Directory()
		if dir == nil {
			continue
		}
		rs, ok := dir.TakeReplicas(b)
		if !ok {
			continue
		}
		for _, h := range rs.Holders {
			hl := w.locs[h]
			if blk, ok := hl.store.Get(b); ok && blk.Replica {
				hl.store.Remove(b)
			}
			hl.dropReplicaState(b)
		}
		for _, loc := range w.locs {
			loc.space.DropReplicas(b)
		}
		w.replCount.Add(-1)
	}
	return nil
}

// Replicate replicates lay on every non-master locality (the maximal
// replica set). Kept as the one-call form of ReplicateLive.
func (w *World) Replicate(lay gas.Layout) error {
	return w.ReplicateLive(lay, w.cfg.Ranks-1)
}

// Dereplicate is Unreplicate's historical name (the read-only
// replication API it replaces).
func (w *World) Dereplicate(lay gas.Layout) error { return w.Unreplicate(lay) }

// ReplicatedBlocks reports how many blocks currently have live replica
// sets installed (driver-side observability).
func (w *World) ReplicatedBlocks() int { return int(w.replCount.Load()) }
