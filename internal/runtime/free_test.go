package runtime

import (
	"testing"

	"nmvgas/internal/gas"
)

func TestFreeChasesMigratedBlocks(t *testing.T) {
	for _, mode := range agasModes {
		w := testWorld(t, Config{Ranks: 4, Mode: mode, Engine: EngineDES})
		w.Start()
		lay, err := w.AllocCyclic(0, 128, 4)
		if err != nil {
			t.Fatal(err)
		}
		w.MustWait(w.Proc(0).Migrate(lay.BlockAt(0), 3))
		w.MustWait(w.Proc(0).Migrate(lay.BlockAt(2), 1))
		if err := w.Free(lay); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		for d := uint32(0); d < 4; d++ {
			b := lay.Base.Block() + gas.BlockID(d)
			for r := 0; r < 4; r++ {
				if _, ok := w.Locality(r).Store().Get(b); ok {
					t.Fatalf("%s: block %d survived free at rank %d", mode, d, r)
				}
			}
			home := lay.HomeOf(d)
			if _, ok := w.Locality(home).Directory().Owner(b); ok {
				t.Fatalf("%s: directory entry for %d survived free", mode, d)
			}
		}
		// The freed block numbers are gone from translation state: a new
		// allocation gets fresh numbers, and using it works.
		lay2, err := w.AllocCyclic(0, 128, 4)
		if err != nil {
			t.Fatal(err)
		}
		w.MustWait(w.Proc(1).Put(lay2.BlockAt(0), []byte{1}))
	}
}

func TestFreeAfterMigrationSweepsTombstones(t *testing.T) {
	w := testWorld(t, Config{Ranks: 3, Mode: AGASSW, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := lay.BlockAt(0).Block()
	w.MustWait(w.Proc(0).Migrate(lay.BlockAt(0), 2))
	if _, ok := w.Locality(0).Tombstones().Get(b); !ok {
		t.Fatal("no tombstone after migration")
	}
	if err := w.Free(lay); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Locality(0).Tombstones().Get(b); ok {
		t.Fatal("tombstone survived free")
	}
}
