package runtime

import (
	"testing"
	"time"

	"nmvgas/internal/netsim"
)

// pulseWorkload drives a small cross-rank put/get mix and returns the
// final stats. Used to compare worlds with and without the pulse.
func pulseWorkload(t *testing.T, w *World) WorldStats {
	t.Helper()
	w.Start()
	lay, err := w.AllocCyclic(0, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := 0; i < 40; i++ {
		g := lay.BlockAt(uint32(i % 8))
		if i%2 == 0 {
			w.MustWait(w.Proc(i%w.Ranks()).Put(g, buf))
		} else {
			w.MustWait(w.Proc(i%w.Ranks()).Get(g, 64))
		}
	}
	if w.Caps().Migration {
		if st := MigrateStatus(w.MustWait(w.Proc(0).Migrate(lay.BlockAt(2), w.Ranks()-1))); st != MigrateOK {
			t.Fatalf("migrate status %d", st)
		}
	}
	w.Drain()
	return w.Stats()
}

func TestDisabledPulseHooksAllocateNothing(t *testing.T) {
	w, err := NewWorld(Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if w.pulse != nil {
		t.Fatal("pulse state allocated without Config.Pulse")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		w.pulseResume()
		if w.PulseCount() != 0 || w.PulseEnabled() || w.PulsePeriod() != 0 {
			t.Fatal("disabled pulse reports activity")
		}
		if h := w.Health(); h.Enabled {
			t.Fatal("disabled pulse reports health")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled pulse hooks allocate %v per run, want 0", allocs)
	}
}

// TestPulseGoldenSafe is the golden-divergence gate: a world with the
// pulse on (watchdogs evaluating every tick, no clients) must report
// counters byte-identical to a world with the pulse off — the tick adds
// engine events but touches no protocol state. Pulses is the single
// legitimate delta and is zeroed before comparing.
func TestPulseGoldenSafe(t *testing.T) {
	for _, mode := range []Mode{PGAS, AGASSW, AGASNM} {
		off := pulseWorkload(t, testWorld(t, Config{Ranks: 4, Mode: mode, Engine: EngineDES}))
		on := pulseWorkload(t, testWorld(t, Config{
			Ranks: 4, Mode: mode, Engine: EngineDES,
			Pulse: PulseConfig{Enabled: true, Period: 20 * netsim.Microsecond},
		}))
		if on.Pulses == 0 {
			t.Fatalf("%v: pulse never fired", mode)
		}
		on.Pulses = 0
		if off != on {
			t.Fatalf("%v: pulse-on stats diverge from pulse-off\noff: %+v\non:  %+v", mode, off, on)
		}
	}
}

// TestPulseDeterministic: two identical DES runs fire the identical
// number of ticks at the identical simulated times.
func TestPulseDeterministic(t *testing.T) {
	run := func() (uint64, netsim.VTime, WorldStats) {
		w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES,
			Pulse: PulseConfig{Enabled: true, Period: 10 * netsim.Microsecond}})
		s := pulseWorkload(t, w)
		return w.PulseCount(), w.Now(), s
	}
	n1, t1, s1 := run()
	n2, t2, s2 := run()
	if n1 != n2 || t1 != t2 || s1 != s2 {
		t.Fatalf("runs diverge: ticks %d vs %d, now %v vs %v", n1, n2, t1, t2)
	}
	if n1 == 0 {
		t.Fatal("pulse never fired")
	}
}

// TestPulseParksWhenIdle: the metronome must not keep the engine alive —
// Drain terminates, and an idle world accrues at most one trailing tick.
func TestPulseParksWhenIdle(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES,
		Pulse: PulseConfig{Enabled: true, Period: 10 * netsim.Microsecond}})
	w.Start()
	w.Drain() // must return: the tick parks once it is alone in the queue
	n := w.PulseCount()
	// Each driver entry re-arms the metronome for at most ONE trailing
	// tick (a fresh watchdog look), then it parks again.
	for i := 0; i < 3; i++ {
		before := w.PulseCount()
		w.Drain()
		if got := w.PulseCount(); got > before+1 {
			t.Fatalf("idle drain %d fired %d ticks, want <= 1", i, got-before)
		}
	}
	// New work resumes the metronome.
	lay, err := w.AllocCyclic(0, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 200)
	for i := 0; i < 50; i++ {
		w.MustWait(w.Proc(0).Put(lay.BlockAt(1), buf))
	}
	w.Drain()
	if got := w.PulseCount(); got <= n {
		t.Fatalf("pulse did not resume with new work (count %d -> %d)", n, got)
	}
}

// TestPulseClients: clients run in registration order with increasing
// 1-based sequence numbers; OnPulse panics when the pulse is off.
func TestPulseClients(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES,
		Pulse: PulseConfig{Enabled: true, Period: 10 * netsim.Microsecond}})
	var order []string
	var seqs []uint64
	w.OnPulse("a", func(pi PulseInfo) { order = append(order, "a"); seqs = append(seqs, pi.Seq) })
	w.OnPulse("b", func(pi PulseInfo) { order = append(order, "b") })
	pulseWorkload(t, w)
	if len(seqs) == 0 {
		t.Fatal("clients never ran")
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, s, i+1)
		}
	}
	for i := 0; i+1 < len(order); i += 2 {
		if order[i] != "a" || order[i+1] != "b" {
			t.Fatalf("client order broke at %d: %v", i, order[i:i+2])
		}
	}

	off := testWorld(t, Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES})
	defer func() {
		if recover() == nil {
			t.Fatal("OnPulse with pulse off did not panic")
		}
	}()
	off.OnPulse("x", func(PulseInfo) {})
}

// TestPulseGoEngine: the goroutine-engine ticker fires on the wall clock
// and stops with the world.
func TestPulseGoEngine(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: AGASNM, Engine: EngineGo,
		// 10µs sim period × GoTimeScale 10 = 100µs wall ticks.
		Pulse: PulseConfig{Enabled: true, Period: 10 * netsim.Microsecond}})
	w.Start()
	deadline := time.Now().Add(5 * time.Second)
	for w.PulseCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.PulseCount() == 0 {
		t.Fatal("goroutine-engine pulse never fired")
	}
	if h := w.Health(); !h.Enabled {
		t.Fatal("watchdogs not evaluating")
	}
	w.Stop()
	n := w.PulseCount()
	time.Sleep(5 * time.Millisecond)
	if got := w.PulseCount(); got > n+1 {
		t.Fatalf("ticker kept firing after Stop (%d -> %d)", n, got)
	}
}

// TestPulseSharded: the metronome runs as a barrier task under the
// parallel engine and the sharded run stays live and healthy.
func TestPulseSharded(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES, Shards: 2,
		Pulse: PulseConfig{Enabled: true, Period: 10 * netsim.Microsecond}})
	pulseWorkload(t, w)
	if w.PulseCount() == 0 {
		t.Fatal("pulse never fired under sharding")
	}
	if h := w.Health(); !h.Enabled || h.Level != WatchOK {
		t.Fatalf("sharded world unhealthy: %+v", h)
	}
}

// TestWatchdogRetransmitStorm: a seeded drop plan under load must trip
// the storm watchdog to critical within two pulses of the resend rate
// first crossing the critical threshold, and health must recover once
// the stream drains.
func TestWatchdogRetransmitStorm(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES,
		Faults: netsim.FaultPlan{Drop: 0.3, Seed: 7},
		Pulse: PulseConfig{Enabled: true, Period: 50 * netsim.Microsecond,
			Watchdogs: WatchdogConfig{RetransWarn: 4, RetransCritical: 16}}})
	var onset, trip uint64
	var lastRetrans uint64
	w.OnWatchdogTrip(func(ev WatchdogEvent) {
		if ev.Status.Name == WatchRetransStorm && ev.Status.Level == WatchCritical && trip == 0 {
			trip = ev.Pulse
		}
	})
	w.OnPulse("onset", func(pi PulseInfo) {
		cum := w.retransmitCount()
		d := cum - lastRetrans
		lastRetrans = cum
		if onset == 0 && d >= 16 {
			onset = pi.Seq
		}
	})
	w.Start()
	lay, err := w.AllocCyclic(0, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	for r := 0; r < 4; r++ {
		r := r
		w.Proc(r).Run(func() {
			var fire func(i int)
			fire = func(i int) {
				if i >= 60 {
					return
				}
				w.Locality(r).PutAsync(lay.BlockAt(uint32((i+r)%8)), buf, func() { fire(i + 1) })
			}
			for k := 0; k < 16; k++ {
				fire(0)
			}
		})
	}
	w.Drain()
	if trip == 0 {
		t.Fatalf("storm watchdog never tripped (%d retransmits)", lastRetrans)
	}
	if onset == 0 || trip > onset+2 {
		t.Fatalf("trip pulse %d, condition onset %d: latency > 2 pulses", trip, onset)
	}
	if !w.AwaitHealth(WatchOK, time.Second) {
		t.Fatalf("health did not recover after drain: %+v", w.Health())
	}
}

// TestInjectMigrationStall: the armed stall hook pins the block, the
// stall watchdog walks warn → critical on the dwell clock, release lets
// the migration commit and health return to ok.
func TestInjectMigrationStall(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES,
		Pulse: PulseConfig{Enabled: true, Period: 20 * netsim.Microsecond,
			Watchdogs: WatchdogConfig{StallWarnPulses: 2, StallCriticalPulses: 4}}})
	var pin, trip uint64
	w.OnWatchdogTrip(func(ev WatchdogEvent) {
		if ev.Status.Name == WatchMigrationStall && ev.Status.Level == WatchCritical && trip == 0 {
			trip = ev.Pulse
		}
	})
	w.OnPulse("pin", func(pi PulseInfo) {
		if pin != 0 {
			return
		}
		for _, st := range w.Health().Watchdogs {
			if st.Name == WatchMigrationStall && st.Rank >= 0 {
				pin = pi.Seq
			}
		}
	})
	w.Start()
	lay, err := w.AllocCyclic(0, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	w.Proc(0).PutWait(g, []byte("payload"))

	release := w.InjectMigrationStall()
	fut := w.Proc(0).Migrate(g, 3)
	if !w.AwaitHealth(WatchCritical, 2*time.Second) {
		t.Fatalf("stall watchdog never went critical: %+v", w.Health())
	}
	release()
	if st := MigrateStatus(w.MustWait(fut)); st != MigrateOK {
		t.Fatalf("migration failed after release: status %d", st)
	}
	if !w.AwaitHealth(WatchOK, time.Second) {
		t.Fatalf("health did not recover after release: %+v", w.Health())
	}
	if pin == 0 || trip == 0 || trip > pin+4+2 {
		t.Fatalf("pin pulse %d, trip pulse %d: dwell latency > 2 pulses past threshold", pin, trip)
	}
	// Data survived the stalled migration.
	if got := w.Proc(2).GetWait(g, 7); string(got) != "payload" {
		t.Fatalf("data lost across stalled migration: %q", got)
	}
}

// TestWatchdogMemberDwell: a dead rank reports critical through the
// member-dwell watchdog, and a rejoin clears it.
func TestWatchdogMemberDwell(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineDES,
		Reliability: relStress,
		Pulse:       PulseConfig{Enabled: true, Period: 20 * netsim.Microsecond}})
	w.Start()
	lay, err := w.AllocLocal(2, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Proc(0).PutWait(lay.BlockAt(0), []byte{1})
	w.Kill(2)
	// Suspicion builds through retransmission silence: traffic at the
	// dead rank is what exposes the crash.
	w.Proc(0).Put(lay.BlockAt(0), []byte{2})
	if !w.AwaitMember(2, MemberDead, 20*time.Second) {
		t.Fatal("rank 2 never declared dead")
	}
	if !w.AwaitHealth(WatchCritical, time.Second) {
		t.Fatalf("member-dwell watchdog not critical: %+v", w.Health())
	}
	found := false
	for _, st := range w.Health().Watchdogs {
		if st.Name == WatchMemberDwell && st.Level == WatchCritical && st.Rank == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("member-dwell did not name rank 2: %+v", w.Health().Watchdogs)
	}
	if err := w.Join(2); err != nil {
		t.Fatal(err)
	}
	if !w.AwaitMember(2, MemberAlive, time.Second) {
		t.Fatal("rank 2 never rejoined")
	}
	if !w.AwaitHealth(WatchOK, time.Second) {
		t.Fatalf("health did not clear after rejoin: %+v", w.Health())
	}
}
