package runtime

import (
	"time"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
)

// TraceKind classifies runtime trace events.
type TraceKind uint8

const (
	// TraceSend is a parcel leaving a locality (Info = action id).
	TraceSend TraceKind = iota
	// TraceExec is a parcel handler running (Info = action id).
	TraceExec
	// TraceHostForward is software-managed host forwarding (Info = new
	// owner).
	TraceHostForward
	// TraceHostNack is a software one-sided repair (Info = advised
	// owner).
	TraceHostNack
	// TraceNICNack is a fabric NACK processed by the host (Info =
	// advised owner).
	TraceNICNack
	// TraceMigrateStart is a block pinned for migration (Info =
	// destination).
	TraceMigrateStart
	// TraceMigrateDone is a migration completing at the old owner (Info
	// = new owner).
	TraceMigrateDone
	// TraceQueued is a message parked behind a moving block.
	TraceQueued
	// TraceLoopNack is a hop-budget NACK processed by the original
	// sender (Info = advised owner).
	TraceLoopNack
	// TraceRetransmit is a reliable-delivery resend (Info = sequence).
	TraceRetransmit
	// TraceDupSuppressed is a delivery rejected as already applied
	// (Info = sequence).
	TraceDupSuppressed
	// TraceNICForward is an in-network redirect: the NIC (DES fabric) or
	// the transport playing the NIC (goroutine engine) rewrote a stale
	// destination from its resident table mid-flight (Info = new owner).
	TraceNICForward
	// TraceMigrateAbort is a mid-flight migration abandoned at shutdown
	// (the block stays at its old owner).
	TraceMigrateAbort
	// TraceMemberSuspect is a liveness probe raised against a silent
	// rank (Rank = prober, Info = suspect).
	TraceMemberSuspect
	// TraceMemberAlive is a suspicion cleared by a pong (Info = the
	// exonerated rank).
	TraceMemberAlive
	// TraceMemberDead is a membership death declaration (Info = the dead
	// rank; planned retirements report here too once drained).
	TraceMemberDead
	// TraceMemberRetire is a planned departure beginning its drain
	// (Info = the draining rank).
	TraceMemberRetire
	// TraceMemberJoin is a dead rank completing readmission (Info = the
	// reborn rank).
	TraceMemberJoin
	// TraceRehome is a block recovered onto a survivor — a replica
	// promotion or a harvested directory route (Block/Info = the block).
	TraceRehome
)

func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceExec:
		return "exec"
	case TraceHostForward:
		return "host-forward"
	case TraceHostNack:
		return "host-nack"
	case TraceNICNack:
		return "nic-nack"
	case TraceMigrateStart:
		return "migrate-start"
	case TraceMigrateDone:
		return "migrate-done"
	case TraceQueued:
		return "queued"
	case TraceLoopNack:
		return "loop-nack"
	case TraceRetransmit:
		return "retransmit"
	case TraceDupSuppressed:
		return "dup-suppressed"
	case TraceNICForward:
		return "nic-forward"
	case TraceMigrateAbort:
		return "migrate-abort"
	case TraceMemberSuspect:
		return "member-suspect"
	case TraceMemberAlive:
		return "member-alive"
	case TraceMemberDead:
		return "member-dead"
	case TraceMemberRetire:
		return "member-retire"
	case TraceMemberJoin:
		return "member-join"
	case TraceRehome:
		return "rehome"
	}
	return "unknown"
}

// Span phases let trace consumers pair events into intervals: a TraceSend
// opens an async span for its OpID, the matching TraceExec closes it, and
// everything between (forwards, NACKs, queueing, retransmits) annotates
// the journey as instants carrying the same OpID.
type Span uint8

const (
	// SpanInstant is a point event inside (or outside) any span.
	SpanInstant Span = iota
	// SpanBegin opens the async span identified by OpID.
	SpanBegin
	// SpanEnd closes the async span identified by OpID.
	SpanEnd
)

// spanOf derives the span phase from the event kind: a send opens the
// operation's span, the exec that finally runs it closes it, and every
// protocol step in between is an instant on the same id.
func spanOf(k TraceKind) Span {
	switch k {
	case TraceSend:
		return SpanBegin
	case TraceExec:
		return SpanEnd
	}
	return SpanInstant
}

// TraceEvent is one observable protocol step.
type TraceEvent struct {
	// Time is simulated time under the DES engine. Under the goroutine
	// engine it is monotonic wall-clock nanoseconds since World creation
	// (events are orderable within a run but the unit differs: simulated
	// ns versus real ns).
	Time  netsim.VTime
	Rank  int
	Kind  TraceKind
	Block gas.BlockID
	Info  uint64
	// OpID links every hop of one logical operation (parcel journey or
	// one-sided op); 0 when the step has no originating operation.
	OpID uint64
	// Span is the phase marker derived from Kind (begin/end/instant).
	Span Span
}

// SetTracer installs fn as the trace sink. Must be called before Start;
// fn must be safe for concurrent use under the goroutine engine. Tracing
// adds no simulated cost — it is an observer, not a participant.
func (w *World) SetTracer(fn func(TraceEvent)) {
	if w.started {
		panic("runtime: SetTracer after Start")
	}
	w.tracer = fn
}

// traceNow returns the event timestamp: simulated time on the DES
// engine, monotonic wall nanoseconds since World creation on the
// goroutine engine (where Now() is always 0).
func (w *World) traceNow() netsim.VTime {
	if w.eng == nil {
		return netsim.VTime(time.Since(w.epoch))
	}
	return w.Now()
}

func (l *Locality) trace(kind TraceKind, block gas.BlockID, info uint64) {
	l.traceOp(kind, block, info, 0)
}

// traceMember emits a membership protocol step attributed to rank.
func (w *World) traceMember(rank int, kind TraceKind, info uint64) {
	if w.tracer == nil {
		return
	}
	w.tracer(TraceEvent{
		Time: w.traceNow(), Rank: rank, Kind: kind, Info: info, Span: SpanInstant,
	})
}

func (l *Locality) traceOp(kind TraceKind, block gas.BlockID, info, opID uint64) {
	if l.w.tracer == nil {
		return
	}
	l.w.tracer(TraceEvent{
		Time: l.w.traceNow(), Rank: l.rank, Kind: kind, Block: block,
		Info: info, OpID: opID, Span: spanOf(kind),
	})
}
