package runtime

import (
	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
)

// TraceKind classifies runtime trace events.
type TraceKind uint8

const (
	// TraceSend is a parcel leaving a locality (Info = action id).
	TraceSend TraceKind = iota
	// TraceExec is a parcel handler running (Info = action id).
	TraceExec
	// TraceHostForward is software-managed host forwarding (Info = new
	// owner).
	TraceHostForward
	// TraceHostNack is a software one-sided repair (Info = advised
	// owner).
	TraceHostNack
	// TraceNICNack is a fabric NACK processed by the host (Info =
	// advised owner).
	TraceNICNack
	// TraceMigrateStart is a block pinned for migration (Info =
	// destination).
	TraceMigrateStart
	// TraceMigrateDone is a migration completing at the old owner (Info
	// = new owner).
	TraceMigrateDone
	// TraceQueued is a message parked behind a moving block.
	TraceQueued
	// TraceLoopNack is a hop-budget NACK processed by the original
	// sender (Info = advised owner).
	TraceLoopNack
	// TraceRetransmit is a reliable-delivery resend (Info = sequence).
	TraceRetransmit
	// TraceDupSuppressed is a delivery rejected as already applied
	// (Info = sequence).
	TraceDupSuppressed
)

func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceExec:
		return "exec"
	case TraceHostForward:
		return "host-forward"
	case TraceHostNack:
		return "host-nack"
	case TraceNICNack:
		return "nic-nack"
	case TraceMigrateStart:
		return "migrate-start"
	case TraceMigrateDone:
		return "migrate-done"
	case TraceQueued:
		return "queued"
	case TraceLoopNack:
		return "loop-nack"
	case TraceRetransmit:
		return "retransmit"
	case TraceDupSuppressed:
		return "dup-suppressed"
	}
	return "unknown"
}

// TraceEvent is one observable protocol step.
type TraceEvent struct {
	Time  netsim.VTime // simulated time (0 on the goroutine engine)
	Rank  int
	Kind  TraceKind
	Block gas.BlockID
	Info  uint64
}

// SetTracer installs fn as the trace sink. Must be called before Start;
// fn must be safe for concurrent use under the goroutine engine. Tracing
// adds no simulated cost — it is an observer, not a participant.
func (w *World) SetTracer(fn func(TraceEvent)) {
	if w.started {
		panic("runtime: SetTracer after Start")
	}
	w.tracer = fn
}

func (l *Locality) trace(kind TraceKind, block gas.BlockID, info uint64) {
	if l.w.tracer == nil {
		return
	}
	l.w.tracer(TraceEvent{Time: l.w.Now(), Rank: l.rank, Kind: kind, Block: block, Info: info})
}
