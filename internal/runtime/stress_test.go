package runtime

import (
	"testing"

	"nmvgas/internal/parcel"
)

// Pathological-configuration stress tests: the protocol must stay correct
// (if slow) under adversarial settings.

func TestSingleRankWorldEverythingLocal(t *testing.T) {
	for _, eng := range allEngines {
		w := testWorld(t, Config{Ranks: 1, Mode: AGASNM, Engine: eng})
		echo := w.Register("echo", func(c *Ctx) { c.Continue(c.P.Payload) })
		w.Start()
		lay, err := w.AllocCyclic(0, 256, 4)
		if err != nil {
			t.Fatal(err)
		}
		w.MustWait(w.Proc(0).Put(lay.BlockAt(2), []byte{1}))
		v := w.MustWait(w.Proc(0).Call(lay.BlockAt(2), echo, []byte{9}))
		if v[0] != 9 {
			t.Fatal("single-rank call broken")
		}
		// Migration to self is the only legal move.
		st := w.MustWait(w.Proc(0).Migrate(lay.BlockAt(2), 0))
		if MigrateStatus(st) != MigrateOK {
			t.Fatalf("status %d", MigrateStatus(st))
		}
		if s := w.Stats(); s.NetSent != 0 && eng == EngineDES {
			t.Fatalf("single-rank world used the network: %d messages", s.NetSent)
		}
	}
}

func TestTinyNICTableThrashStaysCorrect(t *testing.T) {
	// A 1-entry NIC table makes every translation a conflict miss; all
	// traffic to migrated blocks bounces through homes forever. Slow,
	// never wrong.
	w := testWorld(t, Config{Ranks: 3, Mode: AGASNM, Engine: EngineDES, NICTableCap: 1})
	incr := w.Register("incr", func(c *Ctx) {
		d := c.Local(c.P.Target)
		d[0]++
		c.Continue(nil)
	})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for d := uint32(0); d < 8; d++ {
		w.MustWait(w.Proc(1).Migrate(lay.BlockAt(d), 2))
	}
	const rounds = 5
	for r := 0; r < rounds; r++ {
		for d := uint32(0); d < 8; d++ {
			w.MustWait(w.Proc(0).Call(lay.BlockAt(d), incr, nil))
		}
	}
	for d := uint32(0); d < 8; d++ {
		got := w.MustWait(w.Proc(0).Get(lay.BlockAt(d), 1))
		if got[0] != rounds {
			t.Fatalf("block %d counter %d, want %d", d, got[0], rounds)
		}
	}
	if w.Fabric().NIC(0).Table.Len() > 1 {
		t.Fatal("table exceeded capacity 1")
	}
}

func TestLargeWorldSmoke(t *testing.T) {
	// 64 localities: allocation spread, cross-world traffic, a barrier's
	// worth of parcels, and a long-distance migration.
	w := testWorld(t, Config{Ranks: 64, Mode: AGASNM, Engine: EngineDES})
	echo := w.Register("echo", func(c *Ctx) { c.Continue(parcel.PutU64(nil, uint64(c.Rank()))) })
	w.Start()
	lay, err := w.AllocCyclic(0, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []uint32{0, 63, 64, 127} {
		v := w.MustWait(w.Proc(31).Call(lay.BlockAt(d), echo, nil))
		if got := int(parcel.U64(v, 0)); got != lay.HomeOf(d) {
			t.Fatalf("block %d ran at %d, want %d", d, got, lay.HomeOf(d))
		}
	}
	w.MustWait(w.Proc(0).Migrate(lay.BlockAt(5), 63))
	v := w.MustWait(w.Proc(17).Call(lay.BlockAt(5), echo, nil))
	if got := int(parcel.U64(v, 0)); got != 63 {
		t.Fatalf("migrated block ran at %d", got)
	}
}

func TestGoEngineManyWorkersHeavyTraffic(t *testing.T) {
	w := testWorld(t, Config{Ranks: 4, Mode: AGASNM, Engine: EngineGo, Workers: 4})
	spin := w.Register("spin", func(c *Ctx) {
		// A tiny bit of real work so the pool actually interleaves.
		s := 0
		for i := 0; i < 100; i++ {
			s += i
		}
		_ = s
		c.Continue(nil)
	})
	w.Start()
	lay, err := w.AllocCyclic(0, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	gate := w.NewAndGate(0, n)
	for i := 0; i < n; i++ {
		r := i % 4
		d := uint32(i % 16)
		w.Proc(r).Run(func() {
			w.Locality(r).SendParcel(&parcel.Parcel{
				Action: spin, Target: lay.BlockAt(d),
				CAction: ALCOSet, CTarget: gate.G,
			})
		})
	}
	w.MustWait(gate)
}

func TestMaxSizeBlocksMoveIntact(t *testing.T) {
	w := testWorld(t, Config{Ranks: 2, Mode: AGASNM, Engine: EngineDES})
	w.Start()
	lay, err := w.AllocLocal(0, 1<<20, 1) // 1 MiB, the maximum
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	w.MustWait(w.Proc(0).Put(g.WithOffset(1<<20-8), []byte{1, 2, 3, 4, 5, 6, 7, 8}))
	w.MustWait(w.Proc(0).Migrate(g, 1))
	got := w.MustWait(w.Proc(0).Get(g.WithOffset(1<<20-8), 8))
	if got[7] != 8 {
		t.Fatal("tail byte lost in max-size migration")
	}
}
