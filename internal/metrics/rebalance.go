package metrics

import (
	"nmvgas/internal/loadbal"
	"nmvgas/internal/runtime"
)

// PolicyPublisher mirrors a load-balancing policy's controller counters
// into a Registry. Refresh copies the accumulated PolicyStats; Observe
// additionally records one epoch's Report (the imbalance gauge tracks
// the most recent observed epoch).
type PolicyPublisher struct {
	reg      *Registry
	p        *loadbal.Policy
	counters map[string]*Counter
	imb      *Gauge
	samples  *Gauge
}

// PublishPolicy registers p's metric series (labelled like the world's
// series, with mode and engine) in reg and returns the publisher.
func PublishPolicy(reg *Registry, w *runtime.World, p *loadbal.Policy) *PolicyPublisher {
	cfg := w.Config()
	base := []Label{L("mode", cfg.Mode.String()), L("engine", cfg.Engine.String())}
	pp := &PolicyPublisher{reg: reg, p: p, counters: make(map[string]*Counter)}
	counter := func(name, help string) {
		pp.counters[name] = reg.Counter(name, help, base...)
	}
	counter("nmvgas_rebalance_epochs_total", "Control epochs the policy has consumed")
	counter("nmvgas_rebalance_idle_epochs_total", "Epochs skipped below the minimum-sample floor")
	counter("nmvgas_rebalance_samples_total", "Sampled accesses the policy has acted on")
	counter("nmvgas_rebalance_moves_total", "Blocks migrated toward their dominant accessor")
	counter("nmvgas_rebalance_move_failures_total", "Migrations refused or failed")
	counter("nmvgas_rebalance_deferred_total", "Hot blocks deferred by budget or cooldown")
	counter("nmvgas_rebalance_replications_total", "Replica sets installed for read-dominated hot blocks")
	counter("nmvgas_rebalance_teardowns_total", "Replica sets removed after cooling or turning write-heavy")
	pp.imb = reg.Gauge("nmvgas_rebalance_imbalance",
		"Max/mean per-rank sampled load of the last observed epoch", base...)
	pp.samples = reg.Gauge("nmvgas_rebalance_epoch_samples",
		"Sampled accesses in the last observed epoch", base...)
	return pp
}

// Refresh copies the policy's accumulated counters into the registry.
func (pp *PolicyPublisher) Refresh() {
	st := pp.p.Stats()
	set := func(name string, v int64) { pp.counters[name].Set(v) }
	set("nmvgas_rebalance_epochs_total", st.Epochs)
	set("nmvgas_rebalance_idle_epochs_total", st.IdleEpochs)
	set("nmvgas_rebalance_samples_total", int64(st.Samples))
	set("nmvgas_rebalance_moves_total", st.Moves)
	set("nmvgas_rebalance_move_failures_total", st.MoveFailures)
	set("nmvgas_rebalance_deferred_total", st.Deferred)
	set("nmvgas_rebalance_replications_total", st.Replications)
	set("nmvgas_rebalance_teardowns_total", st.Teardowns)
}

// Observe records one epoch's report (call it with each Policy.Step
// result) and refreshes the cumulative counters.
func (pp *PolicyPublisher) Observe(rep loadbal.Report) {
	pp.imb.Set(rep.Imbalance)
	pp.samples.Set(float64(rep.Samples))
	pp.Refresh()
}
