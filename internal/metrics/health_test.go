package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
	"nmvgas/internal/trace"
)

// pulseWorldForTest runs the metrics workload on a pulse-enabled world
// so the health series reflect at least one watchdog evaluation.
func pulseWorldForTest(t *testing.T) *runtime.World {
	t.Helper()
	w, err := runtime.NewWorld(runtime.Config{
		Ranks: 3, Mode: runtime.AGASNM, Engine: runtime.EngineDES, Metrics: true,
		Pulse: runtime.PulseConfig{Enabled: true, Period: 20 * netsim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	w.Start()
	lay, err := w.AllocCyclic(0, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	w.Proc(0).PutWait(g, []byte{1, 2, 3})
	w.MustWait(w.Proc(0).Migrate(g, 2))
	if _, err := w.Wait(w.Proc(0).Get(g, 3)); err != nil {
		t.Fatal(err)
	}
	// Drain fires the trailing metronome tick so the report reflects at
	// least one watchdog evaluation.
	w.Drain()
	return w
}

func TestPublishHealth(t *testing.T) {
	w := pulseWorldForTest(t)
	reg := NewRegistry()
	wp := PublishWorld(reg, w)
	hp := PublishHealth(reg, w)
	wp.Refresh()
	hp.Refresh()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := ValidatePrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("health exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"nmvgas_health_worst_level",
		"nmvgas_health_pulse",
		`nmvgas_health_level{mode="agas-nm",engine="des",watchdog="queue-depth"}`,
		`watchdog="retransmit-storm"`,
		`watchdog="migration-stall"`,
		"nmvgas_unacked_messages",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("health exposition missing %q:\n%s", want, text)
		}
	}
	// The workload drained, so a healthy world must export worst level 0
	// and a nonzero pulse tick.
	h := w.Health()
	if !h.Enabled || h.Level != runtime.WatchOK {
		t.Fatalf("world unhealthy after clean workload: %+v", h)
	}
	if h.Pulse == 0 {
		t.Fatal("watchdogs never evaluated (pulse = 0)")
	}
}

// TestPublishHealthPulseOff pins the stable-schema promise: the series
// exist at level 0 even when Config.Pulse is off.
func TestPublishHealthPulseOff(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{
		Ranks: 2, Mode: runtime.PGAS, Engine: runtime.EngineDES,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	w.Start()
	reg := NewRegistry()
	hp := PublishHealth(reg, w)
	hp.Refresh()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := ValidatePrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("pulse-off exposition invalid: %v", err)
	}
	if !strings.Contains(text, "nmvgas_health_worst_level") {
		t.Fatal("health schema absent with pulse off")
	}
}

func TestHealthzEndpoint(t *testing.T) {
	w := pulseWorldForTest(t)
	reg := NewRegistry()
	hp := PublishHealth(reg, w)

	// report is swapped between cases; the handler holds only the func.
	report := w.Health()
	h := Handler(reg, HandlerOptions{
		Refresh: hp.Refresh,
		Health:  func() runtime.HealthReport { return report },
	})
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/healthz")
	if rec.Code != 200 {
		t.Fatalf("/healthz healthy -> %d", rec.Code)
	}
	var got runtime.HealthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("/healthz body not a health report: %v", err)
	}
	if !got.Enabled || got.Level != runtime.WatchOK {
		t.Fatalf("served report %+v", got)
	}

	// Warn keeps the probe green; critical flips it to 503.
	report.Level = runtime.WatchWarn
	if rec := get("/healthz"); rec.Code != 200 {
		t.Fatalf("/healthz warn -> %d, want 200", rec.Code)
	}
	report.Level = runtime.WatchCritical
	rec = get("/healthz")
	if rec.Code != 503 {
		t.Fatalf("/healthz critical -> %d, want 503", rec.Code)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatal("503 body must still carry the JSON report")
	}

	// No health source attached: the endpoint is a 404, not a lie.
	bare := Handler(NewRegistry(), HandlerOptions{})
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 404 {
		t.Fatalf("/healthz without source -> %d, want 404", rec.Code)
	}
}

func TestFlightEndpoint(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{
		Ranks: 2, Mode: runtime.AGASNM, Engine: runtime.EngineDES,
		Pulse: runtime.PulseConfig{Enabled: true, Period: 20 * netsim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	f := trace.NewFlight(w, trace.FlightConfig{Capacity: 256})
	f.Arm()
	w.Start()
	lay, err := w.AllocCyclic(0, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	w.Proc(0).PutWait(g, []byte{7})
	w.MustWait(w.Proc(0).Migrate(g, 0))

	reg := NewRegistry()
	h := Handler(reg, HandlerOptions{Health: w.Health, Flight: f})
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/debug/flight")
	if rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("/debug/flight -> %d, valid=%v", rec.Code, json.Valid(rec.Body.Bytes()))
	}
	var b trace.Bundle
	if err := json.Unmarshal(rec.Body.Bytes(), &b); err != nil {
		t.Fatalf("bundle did not round-trip: %v", err)
	}
	if b.Trigger != "on-demand" {
		t.Fatalf("trigger %q, want on-demand", b.Trigger)
	}
	if b.TraceEvents == 0 {
		t.Fatal("on-demand bundle captured no trace window")
	}

	if rec := get("/debug/flight?trips=1"); rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("/debug/flight?trips=1 -> %d", rec.Code)
	}

	bare := Handler(NewRegistry(), HandlerOptions{})
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 404 {
		t.Fatalf("/debug/flight without recorder -> %d, want 404", rec.Code)
	}
}
