package metrics

import (
	"nmvgas/internal/runtime"
)

// HealthPublisher mirrors the world's watchdog state into the registry
// as the nmvgas_health_* series:
//
//	nmvgas_health_level{watchdog=...}  per-monitor level (0 ok, 1 warn, 2 critical)
//	nmvgas_health_value{watchdog=...}  the measured quantity the thresholds apply to
//	nmvgas_health_worst_level          worst level across the catalog
//	nmvgas_health_pulse                pulse tick the state reflects
//
// Series exist (at level 0) even when the pulse is off, so dashboards
// and the Prometheus validator see a stable schema.
type HealthPublisher struct {
	reg *Registry
	w   *runtime.World

	level map[string]*Gauge
	value map[string]*Gauge
	worst *Gauge
	pulse *Gauge
}

// PublishHealth registers the health series (labelled like PublishWorld,
// per-watchdog series additionally with watchdog) and returns the
// publisher. Call Refresh before every scrape.
func PublishHealth(reg *Registry, w *runtime.World) *HealthPublisher {
	cfg := w.Config()
	base := []Label{L("mode", cfg.Mode.String()), L("engine", cfg.Engine.String())}
	p := &HealthPublisher{
		reg:   reg,
		w:     w,
		level: make(map[string]*Gauge),
		value: make(map[string]*Gauge),
		worst: reg.Gauge("nmvgas_health_worst_level", "Worst watchdog level (0 ok, 1 warn, 2 critical)", base...),
		pulse: reg.Gauge("nmvgas_health_pulse", "Pulse tick the health state reflects (0 when Config.Pulse is off)", base...),
	}
	for _, name := range runtime.WatchdogNames() {
		lbl := append(append([]Label(nil), base...), L("watchdog", name))
		p.level[name] = reg.Gauge("nmvgas_health_level", "Watchdog level (0 ok, 1 warn, 2 critical)", lbl...)
		p.value[name] = reg.Gauge("nmvgas_health_value", "Watchdog measured value (depth, rate, ratio, or age in pulses per the catalog)", lbl...)
	}
	return p
}

// Refresh copies the current health report into the registry.
func (p *HealthPublisher) Refresh() {
	h := p.w.Health()
	p.worst.Set(float64(h.Level))
	p.pulse.Set(float64(h.Pulse))
	for _, st := range h.Watchdogs {
		if g := p.level[st.Name]; g != nil {
			g.Set(float64(st.Level))
		}
		if g := p.value[st.Name]; g != nil {
			g.Set(st.Value)
		}
	}
}
