// Package metrics is the runtime's export layer: a small dependency-free
// registry of counters, gauges, histograms, and percentile summaries
// with labels (mode/engine/rank), encoders for the Prometheus text
// exposition format and a JSON snapshot, a periodic sampler producing
// throughput/queue-depth/NIC-table time series, and an optional net/http
// endpoint. The registry is write-optimized: series handles are resolved
// once and updated through atomics, so publishing does not contend with
// the runtime's hot paths.
package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
	KindSummary   Kind = "summary"
)

// Label is one name=value dimension on a series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing series.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Set jumps the counter to v (used when mirroring an external cumulative
// count, e.g. a WorldStats snapshot).
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a series that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution (Prometheus histogram
// semantics: cumulative buckets, +Inf implied).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	count  atomic.Int64
	sumMu  sync.Mutex
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMu.Lock()
	h.sum += v
	h.sumMu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Summary publishes externally computed quantiles (the runtime's
// stats.Histogram already knows its percentiles; a Summary mirrors them
// into the export layer without re-binning).
type Summary struct {
	mu    sync.Mutex
	count int64
	sum   float64
	q     map[float64]float64 // quantile (0..1) -> value
}

// Set replaces the summary's state.
func (s *Summary) Set(count int64, sum float64, quantiles map[float64]float64) {
	s.mu.Lock()
	s.count, s.sum = count, sum
	s.q = quantiles
	s.mu.Unlock()
}

type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	s      *Summary
}

type family struct {
	name, help string
	kind       Kind
	bounds     []float64 // histogram families only
	mu         sync.Mutex
	series     []*series
	byKey      map[string]*series
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind Kind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, bounds: bounds, byKey: make(map[string]*series)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

func (f *family) get(labels []Label) *series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labels: append([]Label(nil), labels...)}
	switch f.kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
	case KindSummary:
		s.s = &Summary{}
	}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s
}

// Counter returns (creating on first use) the counter series name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, KindCounter, nil).get(labels).c
}

// Gauge returns (creating on first use) the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.family(name, help, KindGauge, nil).get(labels).g
}

// Histogram returns (creating on first use) the histogram series
// name{labels} with the given bucket upper bounds (ascending; +Inf is
// implicit). Bounds are fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return r.family(name, help, KindHistogram, bs).get(labels).h
}

// Summary returns (creating on first use) the summary series
// name{labels}; quantile values are pushed via Summary.Set.
func (r *Registry) Summary(name, help string, labels ...Label) *Summary {
	return r.family(name, help, KindSummary, nil).get(labels).s
}

// ---------------------------------------------------------------------
// Prometheus text exposition

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `%s=%q`, l.Name, escapeLabel(l.Value))
	}
	b.WriteByte('}')
}

func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus encodes the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		ss := append([]*series(nil), f.series...)
		f.mu.Unlock()
		if len(ss) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch f.kind {
			case KindCounter:
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", s.c.Value())
			case KindGauge:
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %s\n", fmtFloat(s.g.Value()))
			case KindHistogram:
				cum := int64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					b.WriteString(f.name + "_bucket")
					writeLabels(&b, s.labels, L("le", fmtFloat(bound)))
					fmt.Fprintf(&b, " %d\n", cum)
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				b.WriteString(f.name + "_bucket")
				writeLabels(&b, s.labels, L("le", "+Inf"))
				fmt.Fprintf(&b, " %d\n", cum)
				s.h.sumMu.Lock()
				sum := s.h.sum
				s.h.sumMu.Unlock()
				fmt.Fprintf(&b, "%s_sum", f.name)
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %s\n", fmtFloat(sum))
				fmt.Fprintf(&b, "%s_count", f.name)
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", s.h.Count())
			case KindSummary:
				s.s.mu.Lock()
				count, sum := s.s.count, s.s.sum
				qs := make([]float64, 0, len(s.s.q))
				for q := range s.s.q {
					qs = append(qs, q)
				}
				sort.Float64s(qs)
				for _, q := range qs {
					b.WriteString(f.name)
					writeLabels(&b, s.labels, L("quantile", fmtFloat(q)))
					fmt.Fprintf(&b, " %s\n", fmtFloat(s.s.q[q]))
				}
				s.s.mu.Unlock()
				fmt.Fprintf(&b, "%s_sum", f.name)
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %s\n", fmtFloat(sum))
				fmt.Fprintf(&b, "%s_count", f.name)
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ---------------------------------------------------------------------
// JSON snapshot

// SeriesSnapshot is one series in the JSON export.
type SeriesSnapshot struct {
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     *float64           `json:"value,omitempty"`
	Count     *int64             `json:"count,omitempty"`
	Sum       *float64           `json:"sum,omitempty"`
	Buckets   map[string]int64   `json:"buckets,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// FamilySnapshot is one metric family in the JSON export.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Kind   Kind             `json:"kind"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		ss := append([]*series(nil), f.series...)
		f.mu.Unlock()
		fs := FamilySnapshot{Name: f.name, Kind: f.kind, Help: f.help}
		for _, s := range ss {
			snap := SeriesSnapshot{}
			if len(s.labels) > 0 {
				snap.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					snap.Labels[l.Name] = l.Value
				}
			}
			switch f.kind {
			case KindCounter:
				v := float64(s.c.Value())
				snap.Value = &v
			case KindGauge:
				v := s.g.Value()
				snap.Value = &v
			case KindHistogram:
				n := s.h.Count()
				s.h.sumMu.Lock()
				sum := s.h.sum
				s.h.sumMu.Unlock()
				snap.Count, snap.Sum = &n, &sum
				snap.Buckets = make(map[string]int64, len(s.h.bounds)+1)
				cum := int64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					snap.Buckets[fmtFloat(bound)] = cum
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				snap.Buckets["+Inf"] = cum
			case KindSummary:
				s.s.mu.Lock()
				n, sum := s.s.count, s.s.sum
				snap.Quantiles = make(map[string]float64, len(s.s.q))
				for q, v := range s.s.q {
					snap.Quantiles[fmtFloat(q)] = v
				}
				s.s.mu.Unlock()
				snap.Count, snap.Sum = &n, &sum
			}
			fs.Series = append(fs.Series, snap)
		}
		out = append(out, fs)
	}
	return out
}

// WriteJSON encodes the snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"families": r.Snapshot()})
}

// ---------------------------------------------------------------------
// Validation (used by the CI smoke test and golden-schema checks)

// ValidatePrometheus parses a Prometheus text exposition and returns an
// error on the first malformed line. It understands comments, blank
// lines, and `name{labels} value [timestamp]` samples.
func ValidatePrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	samples := 0
	for sc.Scan() {
		n++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line
		// Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(i > 0 && c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i == 0 {
			return fmt.Errorf("metrics: line %d: no metric name: %q", n, line)
		}
		rest = rest[i:]
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return fmt.Errorf("metrics: line %d: unterminated label set: %q", n, line)
			}
			rest = rest[end+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return fmt.Errorf("metrics: line %d: want `value [timestamp]`: %q", n, line)
		}
		if fields[0] != "+Inf" && fields[0] != "-Inf" && fields[0] != "NaN" {
			if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
				return fmt.Errorf("metrics: line %d: bad value %q: %v", n, fields[0], err)
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("metrics: exposition contains no samples")
	}
	return nil
}
