package metrics

import (
	"bytes"
	"strings"
	"testing"

	"nmvgas/internal/loadbal"
	"nmvgas/internal/runtime"
)

func TestPublishPolicy(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{
		Ranks: 4, Mode: runtime.AGASNM, Engine: runtime.EngineDES,
		Heat: runtime.HeatConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	w.Start()
	lay, err := w.AllocCyclic(0, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := loadbal.NewPolicy(w, loadbal.PolicyConfig{Layout: lay})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	pp := PublishPolicy(reg, w, p)
	wp := PublishWorld(reg, w)

	// Rank 1 hammers a block homed at rank 0: one clear migration for
	// the policy to make and for the mirrored counters to show.
	for i := 0; i < 200; i++ {
		w.MustWait(w.Proc(1).Get(lay.BlockAt(0), 64))
	}
	rep, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moves != 1 {
		t.Fatalf("policy moved %d blocks, want 1", rep.Moves)
	}
	pp.Observe(rep)
	wp.Refresh()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := ValidatePrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("publisher output invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`nmvgas_rebalance_epochs_total{mode="agas-nm",engine="des"} 1`,
		`nmvgas_rebalance_moves_total{mode="agas-nm",engine="des"} 1`,
		"nmvgas_rebalance_imbalance",
		"nmvgas_rebalance_epoch_samples",
		"nmvgas_heat_sampled_total",
		"nmvgas_rank_heat_load",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("publisher output missing %q:\n%s", want, text)
		}
	}
	// The world publisher's heat counter mirrors the sampled total.
	if w.HeatSampled() == 0 {
		t.Fatal("heat tracker sampled nothing")
	}
}
