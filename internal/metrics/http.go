package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"nmvgas/internal/runtime"
	"nmvgas/internal/trace"
)

// HandlerOptions wires the optional pieces of the HTTP endpoint.
type HandlerOptions struct {
	// Refresh, when set, runs before every /metrics and /metrics.json
	// scrape (typically WorldPublisher.Refresh plus Sampler.Publish).
	Refresh func()
	// Ring, when set, serves /trace.json as Chrome trace-event JSON.
	Ring *trace.Ring
	// Health, when set, serves /healthz (typically World.Health). The
	// endpoint answers 200 while the worst watchdog level is ok or warn
	// (and when watchdogs are off) and 503 once it is critical, with the
	// full JSON report either way — load-balancer probe semantics.
	Health func() runtime.HealthReport
	// Flight, when set, serves /debug/flight: a freshly captured
	// diagnostic bundle (trace window + metrics + health state), plus
	// the retained watchdog-trip bundles under /debug/flight?trips=1.
	Flight *trace.Flight
}

// Handler serves the observability endpoint:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot of the registry
//	/trace.json    Chrome trace-event JSON (when a ring is attached)
//	/healthz       watchdog health JSON (503 when critical)
//	/debug/flight  on-demand flight-recorder bundle
//	/debug/pprof/  the standard Go profiler endpoints
func Handler(reg *Registry, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	refresh := func() {
		if opts.Refresh != nil {
			opts.Refresh()
		}
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		refresh()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		refresh()
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		if opts.Ring == nil {
			http.Error(w, "no trace ring attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = opts.Ring.DumpChrome(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if opts.Health == nil {
			http.Error(w, "no health source attached", http.StatusNotFound)
			return
		}
		refresh()
		h := opts.Health()
		w.Header().Set("Content-Type", "application/json")
		if h.Enabled && h.Level >= runtime.WatchCritical {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		if opts.Flight == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		refresh()
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("trips") != "" {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(opts.Flight.Bundles())
			return
		}
		_ = trace.WriteBundle(w, opts.Flight.Snapshot("on-demand"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `<html><body><h1>nmvgas observability</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/metrics.json">/metrics.json</a> (JSON snapshot)</li>
<li><a href="/trace.json">/trace.json</a> (Chrome trace export)</li>
<li><a href="/healthz">/healthz</a> (watchdog health, 503 when critical)</li>
<li><a href="/debug/flight">/debug/flight</a> (flight-recorder bundle; <a href="/debug/flight?trips=1">?trips=1</a> for trip history)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
</ul></body></html>`)
	})
	return mux
}
