package metrics

import (
	"fmt"
	"net/http"
	"net/http/pprof"

	"nmvgas/internal/trace"
)

// HandlerOptions wires the optional pieces of the HTTP endpoint.
type HandlerOptions struct {
	// Refresh, when set, runs before every /metrics and /metrics.json
	// scrape (typically WorldPublisher.Refresh plus Sampler.Publish).
	Refresh func()
	// Ring, when set, serves /trace.json as Chrome trace-event JSON.
	Ring *trace.Ring
}

// Handler serves the observability endpoint:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot of the registry
//	/trace.json    Chrome trace-event JSON (when a ring is attached)
//	/debug/pprof/  the standard Go profiler endpoints
func Handler(reg *Registry, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	refresh := func() {
		if opts.Refresh != nil {
			opts.Refresh()
		}
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		refresh()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		refresh()
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		if opts.Ring == nil {
			http.Error(w, "no trace ring attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = opts.Ring.DumpChrome(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `<html><body><h1>nmvgas observability</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/metrics.json">/metrics.json</a> (JSON snapshot)</li>
<li><a href="/trace.json">/trace.json</a> (Chrome trace export)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
</ul></body></html>`)
	})
	return mux
}
