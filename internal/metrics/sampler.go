package metrics

import (
	"sync"
	"time"

	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
	"nmvgas/internal/stats"
)

// Sample is one point in the interval sampler's time series.
type Sample struct {
	// T is the engine's trace clock at the sample (simulated ns under
	// DES, wall ns since World creation under the goroutine engine).
	T int64
	// ParcelsRun is the cumulative handler-execution count.
	ParcelsRun int64
	// Throughput is parcels executed per second of trace-clock time
	// since the previous sample (0 for the first).
	Throughput float64
	// QueueDepth is the summed per-rank host-executor backlog.
	QueueDepth int64
	// NICTableEntries is the summed NIC-resident translation table size.
	NICTableEntries int64
}

// Sampler produces periodic throughput / queue-depth / NIC-table-size
// time series from a running world. Drive it with RunDES (simulated
// time) or StartWall (wall clock), or call Sample directly at moments of
// interest.
type Sampler struct {
	w  *runtime.World
	mu sync.Mutex
	ss []Sample

	epoch time.Time
}

// NewSampler returns a sampler for w.
func NewSampler(w *runtime.World) *Sampler {
	return &Sampler{w: w, epoch: time.Now()}
}

func (s *Sampler) now() int64 {
	if s.w.Config().Engine == runtime.EngineDES {
		return int64(s.w.Now())
	}
	return int64(time.Since(s.epoch))
}

// Sample records one point now.
func (s *Sampler) Sample() Sample {
	var run, depth, table int64
	for r := 0; r < s.w.Ranks(); r++ {
		run += s.w.Locality(r).Stats.ParcelsRun.Load()
		depth += int64(s.w.QueueDepth(r))
		table += int64(s.w.NICTableLen(r))
	}
	p := Sample{T: s.now(), ParcelsRun: run, QueueDepth: depth, NICTableEntries: table}
	s.mu.Lock()
	if n := len(s.ss); n > 0 {
		prev := s.ss[n-1]
		if dt := p.T - prev.T; dt > 0 {
			p.Throughput = float64(p.ParcelsRun-prev.ParcelsRun) * 1e9 / float64(dt)
		}
	}
	s.ss = append(s.ss, p)
	s.mu.Unlock()
	return p
}

// RunDES schedules n samples every `every` of simulated time on the DES
// engine (the first fires one interval from now). The samples land as
// the engine drains; harness code typically calls this right before the
// workload and reads Samples() after.
func (s *Sampler) RunDES(every netsim.VTime, n int) {
	eng := s.w.Engine()
	var tick func(left int)
	tick = func(left int) {
		if left <= 0 {
			return
		}
		eng.After(every, func() {
			s.Sample()
			tick(left - 1)
		})
	}
	tick(n)
}

// StartWall samples every `every` of wall time on the goroutine engine
// until the returned stop function is called.
func (s *Sampler) StartWall(every time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sample()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Samples returns the recorded series.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.ss...)
}

// Table renders the series for harness reports.
func (s *Sampler) Table(title string) *stats.Table {
	tb := stats.NewTable(title, "t_ns", "parcels_run", "throughput_per_s", "queue_depth", "nic_table")
	for _, p := range s.Samples() {
		tb.AddRow(p.T, p.ParcelsRun, int64(p.Throughput), p.QueueDepth, p.NICTableEntries)
	}
	return tb
}

// Publish mirrors the most recent sample into gauges in reg (labelled
// mode/engine), so the HTTP endpoint exposes the sampler's view too.
func (s *Sampler) Publish(reg *Registry) {
	cfg := s.w.Config()
	base := []Label{L("mode", cfg.Mode.String()), L("engine", cfg.Engine.String())}
	ss := s.Samples()
	if len(ss) == 0 {
		return
	}
	last := ss[len(ss)-1]
	reg.Gauge("nmvgas_sampled_throughput_per_s", "Parcels/s between the last two samples", base...).Set(last.Throughput)
	reg.Gauge("nmvgas_sampled_queue_depth", "Summed mailbox backlog at the last sample", base...).Set(float64(last.QueueDepth))
	reg.Gauge("nmvgas_sampled_nic_table_entries", "Summed NIC table size at the last sample", base...).Set(float64(last.NICTableEntries))
}
