package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"nmvgas/internal/runtime"
	"nmvgas/internal/trace"
)

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", L("mode", "pgas"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if again := r.Counter("reqs_total", "requests", L("mode", "pgas")); again != c {
		t.Fatal("same name+labels returned a different series")
	}
	if other := r.Counter("reqs_total", "requests", L("mode", "agas-nm")); other == c {
		t.Fatal("different labels shared a series")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}

	h := r.Histogram("lat", "latency", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d", h.Count())
	}

	s := r.Summary("pct", "percentiles")
	s.Set(3, 60, map[float64]float64{0.5: 10, 0.99: 40})
	_ = s
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestPrometheusExportValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a counter", L("mode", "pgas"), L("engine", "des")).Set(12)
	r.Gauge("b", "a gauge").Set(math.Inf(1))
	r.Histogram("c_ns", "a histogram", []float64{1, 10}, L("rank", "0")).Observe(3)
	r.Summary("d_ns", "a summary", L("path", "put")).Set(2, 8, map[float64]float64{0.5: 4})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`a_total{mode="pgas",engine="des"} 12`,
		"# TYPE a_total counter",
		"b +Inf",
		`c_ns_bucket{rank="0",le="+Inf"} 1`,
		`c_ns_count{rank="0"} 1`,
		`d_ns{path="put",quantile="0.5"} 4`,
		`d_ns_count{path="put"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if err := ValidatePrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, text)
	}
}

func TestValidatePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",                       // no samples
		"123name 4\n",            // name starts with a digit
		"ok{unterminated 4\n",    // unterminated labels
		"name notanumber\n",      // bad value
		"name 1 2 3\n",           // too many fields
		"# only comments here\n", // no samples
	} {
		if err := ValidatePrometheus(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	good := "# HELP x y\nx{a=\"b\"} 1\nnan_metric NaN\n"
	if err := ValidatePrometheus(strings.NewReader(good)); err != nil {
		t.Fatalf("rejected valid exposition: %v", err)
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Set(3)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Families []FamilySnapshot `json:"families"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(doc.Families) != 2 {
		t.Fatalf("families = %d", len(doc.Families))
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range doc.Families {
		byName[f.Name] = f
	}
	if v := byName["hits_total"].Series[0].Value; v == nil || *v != 3 {
		t.Fatalf("counter snapshot = %v", v)
	}
	if b := byName["h"].Series[0].Buckets; b["1"] != 1 || b["+Inf"] != 1 {
		t.Fatalf("histogram buckets = %v", b)
	}
}

// worldForTest runs a small migrating workload with metrics on.
func worldForTest(t *testing.T, engine runtime.EngineKind) *runtime.World {
	t.Helper()
	w, err := runtime.NewWorld(runtime.Config{
		Ranks: 3, Mode: runtime.AGASNM, Engine: engine, Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	w.MustWait(w.Proc(0).Call(g, echo, nil))
	w.MustWait(w.Proc(0).Migrate(g, 2))
	w.MustWait(w.Proc(0).Call(g, echo, nil))
	w.MustWait(w.Proc(0).Put(g, []byte{1, 2, 3}))
	if _, err := w.Wait(w.Proc(0).Get(g, 3)); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPublishWorld(t *testing.T) {
	w := worldForTest(t, runtime.EngineDES)
	reg := NewRegistry()
	pub := PublishWorld(reg, w)
	pub.Refresh()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := ValidatePrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("publisher output invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"nmvgas_parcels_sent_total", "nmvgas_migrations_total",
		`nmvgas_rank_parcels_run{mode="agas-nm"`, `rank="2"`,
		`nmvgas_latency_ns{mode="agas-nm"`, `path="parcel_exec"`, `path="mig_total"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("publisher output missing %q:\n%s", want, text)
		}
	}
	// The workload migrated once; the mirrored counter must agree.
	if !strings.Contains(text, "nmvgas_migrations_total") {
		t.Fatal("no migrations counter")
	}
	s := w.Stats()
	if s.Migrations != 1 {
		t.Fatalf("world ran %d migrations, want 1", s.Migrations)
	}
	if !s.Latencies.Enabled || s.Latencies.ParcelExec.Count == 0 {
		t.Fatalf("latency histograms empty with Metrics on: %+v", s.Latencies)
	}
	if s.Latencies.MigTotal.Count != 1 {
		t.Fatalf("mig_total count = %d, want 1", s.Latencies.MigTotal.Count)
	}
}

func TestSamplerDES(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{
		Ranks: 2, Mode: runtime.PGAS, Engine: runtime.EngineDES,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(w)
	s.RunDES(1000, 3)
	for i := 0; i < 50; i++ {
		w.MustWait(w.Proc(0).Call(lay.BlockAt(1), echo, nil))
	}
	ss := s.Samples()
	if len(ss) != 3 {
		t.Fatalf("samples = %d, want 3", len(ss))
	}
	if ss[1].T <= ss[0].T {
		t.Fatalf("sample times not increasing: %+v", ss)
	}
	if ss[len(ss)-1].ParcelsRun == 0 {
		t.Fatal("sampler saw no executions")
	}
	reg := NewRegistry()
	s.Publish(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nmvgas_sampled_throughput_per_s") {
		t.Fatal("sampler gauges not published")
	}
}

func TestHTTPHandler(t *testing.T) {
	w := worldForTest(t, runtime.EngineDES)
	reg := NewRegistry()
	pub := PublishWorld(reg, w)
	ring := trace.NewRing(64)
	ring.Record(runtime.TraceEvent{Kind: runtime.TraceSend, OpID: 1, Span: runtime.SpanBegin})
	h := Handler(reg, HandlerOptions{Refresh: pub.Refresh, Ring: ring})

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/metrics"); rec.Code != 200 {
		t.Fatalf("/metrics -> %d", rec.Code)
	} else if err := ValidatePrometheus(rec.Body); err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}
	if rec := get("/metrics.json"); rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("/metrics.json -> %d, valid=%v", rec.Code, json.Valid(rec.Body.Bytes()))
	}
	if rec := get("/trace.json"); rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("/trace.json -> %d", rec.Code)
	}
	if rec := get("/"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "/metrics") {
		t.Fatalf("index -> %d", rec.Code)
	}
	if rec := get("/nope"); rec.Code != 404 {
		t.Fatalf("/nope -> %d", rec.Code)
	}
}

func TestMetricsOffDisablesLatencies(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{
		Ranks: 2, Mode: runtime.AGASNM, Engine: runtime.EngineDES,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Call(lay.BlockAt(1), echo, nil))
	if w.Stats().Latencies.Enabled {
		t.Fatal("latencies enabled without Config.Metrics")
	}
	reg := NewRegistry()
	pub := PublishWorld(reg, w)
	pub.Refresh()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "nmvgas_latency_ns") {
		t.Fatal("latency series exported with Metrics off")
	}
}
