package metrics

import (
	"strconv"

	"nmvgas/internal/runtime"
)

// WorldPublisher mirrors a World's counters, per-rank state, and latency
// summaries into a Registry. Series handles are resolved once at
// construction; Refresh copies a consistent snapshot in, so scraping
// never touches runtime hot paths beyond the atomic counter loads the
// runtime already pays for.
type WorldPublisher struct {
	reg *Registry
	w   *runtime.World

	counters map[string]*Counter // world-level cumulative counters
	gauges   map[string]*Gauge   // world-level gauges

	rankSent      []*Gauge
	rankRun       []*Gauge
	rankQueue     []*Gauge
	rankTable     []*Gauge
	rankDownDrops []*Gauge
	rankDeadNacks []*Gauge
	rankHeat      []*Gauge

	lat map[string]*Summary
}

// latPaths orders the latency summary labels stably.
var latPaths = []string{
	"parcel_exec", "put", "get", "nack_repair", "coalesce_flush",
	"mig_transfer", "mig_update", "mig_drain", "mig_total",
	"repl_inval", "repl_update", "repl_fill",
}

// PublishWorld registers w's metric series (labelled with mode and
// engine, per-rank series additionally with rank) in reg and returns the
// publisher. Call Refresh before every scrape or sample.
func PublishWorld(reg *Registry, w *runtime.World) *WorldPublisher {
	cfg := w.Config()
	base := []Label{L("mode", cfg.Mode.String()), L("engine", cfg.Engine.String())}
	p := &WorldPublisher{
		reg:      reg,
		w:        w,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		lat:      make(map[string]*Summary),
	}
	counter := func(name, help string) {
		p.counters[name] = reg.Counter(name, help, base...)
	}
	counter("nmvgas_parcels_sent_total", "Parcels sent by all localities")
	counter("nmvgas_parcels_run_total", "Parcel handlers executed")
	counter("nmvgas_host_forwards_total", "Software host forwards (stale deliveries redirected by the host)")
	counter("nmvgas_host_nacks_total", "One-sided operations repaired in host software")
	counter("nmvgas_nic_nacks_total", "Fabric NACKs processed by hosts")
	counter("nmvgas_queued_msgs_total", "Messages parked behind migrating blocks")
	counter("nmvgas_sw_lookups_total", "Software translation cache lookups")
	counter("nmvgas_put_ops_total", "One-sided put operations issued")
	counter("nmvgas_get_ops_total", "One-sided get operations issued")
	counter("nmvgas_migrations_total", "Completed block migrations")
	counter("nmvgas_retransmits_total", "Reliable-delivery retransmissions")
	counter("nmvgas_net_messages_total", "Fabric messages sent (DES engine)")
	counter("nmvgas_net_forwards_total", "In-network forwards (DES engine)")
	counter("nmvgas_scatter_splits_total", "Coalesced batches split in-NIC")
	counter("nmvgas_batch_reroutes_total", "Batched parcels re-routed in host software")
	counter("nmvgas_replica_reads_total", "Reads served from replica holders")
	counter("nmvgas_replica_stale_reads_total", "Replica reads that found the holder stale")
	counter("nmvgas_replica_invals_total", "Replica invalidations applied at holders")
	counter("nmvgas_replica_updates_total", "Write-update snapshots applied at holders")
	counter("nmvgas_replica_fills_total", "Replica refills installed at holders")
	counter("nmvgas_heat_sampled_total", "Accesses sampled by the heat tracker (0 when Config.Heat is off)")

	// Fault-injector and membership-fencing counters (all zero on an
	// unperturbed world).
	counter("nmvgas_fault_dropped_total", "Messages lost by the fault injector")
	counter("nmvgas_fault_duplicated_total", "Messages duplicated by the fault injector")
	counter("nmvgas_fault_delayed_total", "Messages delayed by the fault injector")
	counter("nmvgas_fault_targeted_drops_total", "Targeted control-class drops injected")
	counter("nmvgas_fault_table_entries_lost_total", "NIC translation entries soft-errored away")
	counter("nmvgas_fault_down_drops_total", "Messages swallowed at a down locality's link")
	counter("nmvgas_fault_dead_nacks_total", "NACKs synthesized for traffic routed at a dead locality")
	counter("nmvgas_fault_stale_epoch_drops_total", "NIC table updates discarded as older than the membership epoch")
	gauge := func(name, help string) {
		p.gauges[name] = reg.Gauge(name, help, base...)
	}
	gauge("nmvgas_unacked_messages", "Messages held by the reliable layer awaiting acknowledgement (black-hole audit; 0 when the layer is off)")
	gauge("nmvgas_member_epoch", "Current membership epoch (0 = membership never changed)")
	gauge("nmvgas_member_deaths", "Localities declared dead")
	gauge("nmvgas_member_joins", "Localities re-admitted via Join")
	gauge("nmvgas_member_retires", "Localities retired gracefully")
	gauge("nmvgas_member_suspicions", "Liveness probes raised (including false alarms)")
	gauge("nmvgas_member_rehomed_blocks", "Blocks re-homed onto survivors after a death")
	gauge("nmvgas_member_lost_blocks", "Blocks lost with their owner (no replica to promote)")

	ranks := w.Ranks()
	for r := 0; r < ranks; r++ {
		lbl := append(append([]Label(nil), base...), L("rank", strconv.Itoa(r)))
		p.rankSent = append(p.rankSent, reg.Gauge("nmvgas_rank_parcels_sent", "Parcels sent by one locality", lbl...))
		p.rankRun = append(p.rankRun, reg.Gauge("nmvgas_rank_parcels_run", "Parcel handlers executed by one locality", lbl...))
		p.rankQueue = append(p.rankQueue, reg.Gauge("nmvgas_rank_queue_depth", "Pending host-executor backlog (goroutine engine mailbox length)", lbl...))
		p.rankTable = append(p.rankTable, reg.Gauge("nmvgas_rank_nic_table_entries", "NIC-resident translation table size", lbl...))
		p.rankDownDrops = append(p.rankDownDrops, reg.Gauge("nmvgas_fault_rank_down_drops", "Messages this NIC swallowed at a down link (DES fabric only)", lbl...))
		p.rankDeadNacks = append(p.rankDeadNacks, reg.Gauge("nmvgas_fault_rank_dead_nacks", "Dead-rank NACKs this NIC synthesized (DES fabric only)", lbl...))
		p.rankHeat = append(p.rankHeat, reg.Gauge("nmvgas_rank_heat_load", "Sampled accesses served by this locality in the current heat epoch", lbl...))
	}

	if cfg.Metrics {
		for _, path := range latPaths {
			lbl := append(append([]Label(nil), base...), L("path", path))
			p.lat[path] = reg.Summary("nmvgas_latency_ns",
				"Runtime latency distributions (ns on the engine's trace clock)", lbl...)
		}
	}
	return p
}

// Refresh copies the world's current state into the registry.
func (p *WorldPublisher) Refresh() {
	s := p.w.Stats()
	set := func(name string, v int64) { p.counters[name].Set(v) }
	set("nmvgas_parcels_sent_total", s.ParcelsSent)
	set("nmvgas_parcels_run_total", s.ParcelsRun)
	set("nmvgas_host_forwards_total", s.HostForwards)
	set("nmvgas_host_nacks_total", s.HostNacks)
	set("nmvgas_nic_nacks_total", s.NICNacks)
	set("nmvgas_queued_msgs_total", s.Queued)
	set("nmvgas_sw_lookups_total", s.SWLookups)
	set("nmvgas_put_ops_total", s.PutOps)
	set("nmvgas_get_ops_total", s.GetOps)
	set("nmvgas_migrations_total", s.Migrations)
	set("nmvgas_retransmits_total", int64(s.Delivery.Retransmits))
	set("nmvgas_net_messages_total", int64(s.NetSent))
	set("nmvgas_net_forwards_total", int64(s.NetForwards))
	set("nmvgas_scatter_splits_total", int64(s.ScatterSplits))
	set("nmvgas_batch_reroutes_total", s.BatchReroutes)
	set("nmvgas_replica_reads_total", s.ReplicaReads)
	set("nmvgas_replica_stale_reads_total", s.ReplicaStaleReads)
	set("nmvgas_replica_invals_total", s.ReplicaInvals)
	set("nmvgas_replica_updates_total", s.ReplicaUpdates)
	set("nmvgas_replica_fills_total", s.ReplicaFills)
	set("nmvgas_heat_sampled_total", int64(s.HeatSampled))

	f := s.Delivery.Faults
	set("nmvgas_fault_dropped_total", int64(f.Dropped))
	set("nmvgas_fault_duplicated_total", int64(f.Duplicated))
	set("nmvgas_fault_delayed_total", int64(f.Delayed))
	set("nmvgas_fault_targeted_drops_total", int64(f.TargetedDrops))
	set("nmvgas_fault_table_entries_lost_total", int64(f.TableEntriesLost))
	ms := s.Membership
	set("nmvgas_fault_down_drops_total", int64(ms.DownDrops))
	set("nmvgas_fault_dead_nacks_total", int64(ms.DeadNacks))
	set("nmvgas_fault_stale_epoch_drops_total", int64(ms.StaleEpochDrops))
	sg := func(name string, v float64) { p.gauges[name].Set(v) }
	sg("nmvgas_unacked_messages", float64(s.Unacked))
	sg("nmvgas_member_epoch", float64(ms.Epoch))
	sg("nmvgas_member_deaths", float64(ms.Deaths))
	sg("nmvgas_member_joins", float64(ms.Joins))
	sg("nmvgas_member_retires", float64(ms.Retires))
	sg("nmvgas_member_suspicions", float64(ms.Suspicions))
	sg("nmvgas_member_rehomed_blocks", float64(ms.Rehomed))
	sg("nmvgas_member_lost_blocks", float64(ms.Lost))

	for r := 0; r < p.w.Ranks(); r++ {
		ls := &p.w.Locality(r).Stats
		p.rankSent[r].Set(float64(ls.ParcelsSent.Load()))
		p.rankRun[r].Set(float64(ls.ParcelsRun.Load()))
		p.rankQueue[r].Set(float64(p.w.QueueDepth(r)))
		p.rankTable[r].Set(float64(p.w.NICTableLen(r)))
		dd, dn, _ := p.w.NICFaultStats(r)
		p.rankDownDrops[r].Set(float64(dd))
		p.rankDeadNacks[r].Set(float64(dn))
	}
	if loads := p.w.HeatLoads(); loads != nil {
		for r, l := range loads {
			p.rankHeat[r].Set(float64(l))
		}
	}

	if len(p.lat) > 0 && s.Latencies.Enabled {
		lat := s.Latencies
		push := func(path string, l runtime.LatencySummary) {
			p.lat[path].Set(l.Count, l.MeanNs*float64(l.Count), map[float64]float64{
				0.5:  float64(l.P50Ns),
				0.95: float64(l.P95Ns),
				0.99: float64(l.P99Ns),
			})
		}
		push("parcel_exec", lat.ParcelExec)
		push("put", lat.PutDone)
		push("get", lat.GetDone)
		push("nack_repair", lat.NackRepair)
		push("coalesce_flush", lat.CoalesceFlush)
		push("mig_transfer", lat.MigTransfer)
		push("mig_update", lat.MigUpdate)
		push("mig_drain", lat.MigDrain)
		push("mig_total", lat.MigTotal)
		push("repl_inval", lat.ReplInval)
		push("repl_update", lat.ReplUpdate)
		push("repl_fill", lat.ReplFill)
	}
}

// Registry returns the registry the publisher writes into.
func (p *WorldPublisher) Registry() *Registry { return p.reg }
