package netsim

import "testing"

func TestDefaultModelSane(t *testing.T) {
	m := DefaultModel()
	if m.Latency <= 0 || m.OSend <= 0 || m.ORecv <= 0 || m.Gap <= 0 {
		t.Fatal("default model has non-positive base costs")
	}
	// The ratios the experiments depend on: NIC translation must be much
	// cheaper than software translation, and both far below wire latency.
	if m.NICLookup >= m.SWLookup {
		t.Fatal("NIC lookup not cheaper than software lookup")
	}
	if m.SWLookup >= m.Latency {
		t.Fatal("software lookup dwarfs wire latency; model miscalibrated")
	}
	if m.GByte <= 0 || m.MemCopyByte <= 0 {
		t.Fatal("per-byte rates must be positive")
	}
	if m.MemCopyByte >= m.GByte {
		t.Fatal("host copy slower than the wire; model miscalibrated")
	}
}

func TestTxTimeScalesWithSize(t *testing.T) {
	m := DefaultModel()
	small, big := m.TxTime(64), m.TxTime(64*1024)
	if big <= small {
		t.Fatal("TxTime not increasing in size")
	}
	if got, want := m.TxTime(0), m.Gap; got != want {
		t.Fatalf("zero-byte TxTime = %v, want Gap %v", got, want)
	}
	// 5 GB/s: 64 KiB serializes in ~13.1 µs plus the gap.
	if big < 13*Microsecond || big > 14*Microsecond {
		t.Fatalf("64KiB TxTime = %v, expected ~13.2µs at 5 GB/s", big)
	}
}

func TestCopyTime(t *testing.T) {
	m := DefaultModel()
	if m.CopyTime(0) != 0 {
		t.Fatal("zero-byte copy must cost nothing")
	}
	if m.CopyTime(1<<20) <= m.CopyTime(1<<10) {
		t.Fatal("CopyTime not increasing")
	}
}
