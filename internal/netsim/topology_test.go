package netsim

import (
	"testing"

	"nmvgas/internal/gas"
)

func TestCrossbarTopology(t *testing.T) {
	var c Crossbar
	if c.Hops(0, 5) != 1 || c.BWFactor(0, 5) != 1 {
		t.Fatal("crossbar must be one full-rate hop")
	}
	if c.Name() != "crossbar" {
		t.Fatal("name")
	}
}

func TestTwoTierTopology(t *testing.T) {
	tt := NewTwoTier(4, 2.0)
	if tt.Hops(0, 3) != 1 || tt.BWFactor(0, 3) != 1 {
		t.Fatal("intra-pod must be local")
	}
	if tt.Hops(0, 4) != 3 || tt.BWFactor(0, 4) != 2 {
		t.Fatal("inter-pod must cross the spine")
	}
	if tt.Name() == "" {
		t.Fatal("name")
	}
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { NewTwoTier(0, 2) })
	mustPanic(func() { NewTwoTier(4, 0.5) })
}

func TestTwoTierLatencyDifference(t *testing.T) {
	deliver := func(dst int) VTime {
		eng := NewEngine()
		fab := NewFabric(eng, FabricConfig{
			Ranks:    8,
			Model:    DefaultModel(),
			Topology: NewTwoTier(4, 2.0),
		})
		var at VTime = -1
		for r := 0; r < 8; r++ {
			nic := fab.NIC(r)
			nic.Resident = func(gas.BlockID) bool { return false }
			nic.HostDeliver = func(*Message) { at = eng.Now() }
		}
		fab.NIC(0).Send(&Message{Dst: dst, Wire: 64})
		eng.Run()
		return at
	}
	intra, inter := deliver(1), deliver(7)
	if inter <= intra {
		t.Fatalf("inter-pod (%v) not slower than intra-pod (%v)", inter, intra)
	}
	model := DefaultModel()
	if inter-intra < 2*model.Latency {
		t.Fatalf("spine crossing added only %v, want >= 2 wire latencies", inter-intra)
	}
}

func TestRxIncastQueuing(t *testing.T) {
	// Two senders hitting one NIC at once: the second delivery must wait
	// for the receive link to drain the first. An isolated message must
	// be unaffected.
	model := DefaultModel()
	run := func(senders int) []VTime {
		eng := NewEngine()
		fab := NewFabric(eng, FabricConfig{Ranks: 4, Model: model})
		var deliveries []VTime
		for r := 0; r < 4; r++ {
			nic := fab.NIC(r)
			nic.Resident = func(gas.BlockID) bool { return false }
			nic.HostDeliver = func(*Message) { deliveries = append(deliveries, eng.Now()) }
		}
		for s := 1; s <= senders; s++ {
			fab.NIC(s).Send(&Message{Dst: 0, Wire: 16384})
		}
		eng.Run()
		return deliveries
	}
	solo := run(1)
	pair := run(2)
	if len(solo) != 1 || len(pair) != 2 {
		t.Fatalf("deliveries: solo=%d pair=%d", len(solo), len(pair))
	}
	if pair[0] != solo[0] {
		t.Fatalf("first of pair (%v) delayed relative to solo (%v)", pair[0], solo[0])
	}
	minGap := VTime(float64(16384) * model.GByte)
	if gap := pair[1] - pair[0]; gap < minGap {
		t.Fatalf("incast gap %v below rx serialization %v", gap, minGap)
	}
}
