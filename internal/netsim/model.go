package netsim

// Model holds the cost parameters of the simulated fabric, in the spirit
// of LogGP extended with the translation costs the paper's design space
// exposes. All times are simulated nanoseconds.
//
// The defaults are calibrated to the 2015/2016-era RDMA clusters this line
// of work evaluated on (FDR InfiniBand-class): ~1.2 µs small-message
// one-way latency, ~5 GB/s per-link bandwidth, sub-100 ns NIC table
// operations, and host software overheads in the few-hundred-nanosecond
// range. Absolute values are not the point — the ratios between host
// software costs, NIC costs, and wire costs are what reproduce the paper's
// qualitative results.
type Model struct {
	// Latency is the wire propagation delay per hop.
	Latency VTime
	// OSend is host software overhead to inject a message (descriptor
	// build + doorbell).
	OSend VTime
	// ORecv is host software overhead to receive a delivered message
	// (completion processing + dispatch into the runtime).
	ORecv VTime
	// Gap is the per-message NIC occupancy independent of size.
	Gap VTime
	// GByte is the per-byte NIC serialization time in ns/byte
	// (1 GB/s == 1.0, 5 GB/s == 0.2).
	GByte float64
	// NICLookup is the cost of one lookup in a NIC-resident translation
	// table (the network-managed path).
	NICLookup VTime
	// NICUpdate is the cost of installing or changing one NIC table entry.
	NICUpdate VTime
	// NICForward is the NIC-side cost of bouncing a message to the
	// block's current owner without host involvement (the message then
	// pays transmission + Latency again for the extra hop).
	NICForward VTime
	// SWLookup is the cost of one software translation-cache probe on the
	// host (hash + locking), paid per operation in software-managed AGAS.
	SWLookup VTime
	// HandlerDispatch is the fixed cost of running a parcel handler on
	// the host (scheduler pop + action table dispatch).
	HandlerDispatch VTime
	// MemCopyByte is host memcpy cost in ns/byte, charged when block data
	// is staged (e.g. migration pack/unpack).
	MemCopyByte float64
}

// DefaultModel returns the calibrated baseline model described above.
func DefaultModel() Model {
	return Model{
		Latency:         900 * Nanosecond,
		OSend:           250 * Nanosecond,
		ORecv:           300 * Nanosecond,
		Gap:             100 * Nanosecond,
		GByte:           0.2, // 5 GB/s
		NICLookup:       60 * Nanosecond,
		NICUpdate:       90 * Nanosecond,
		NICForward:      120 * Nanosecond,
		SWLookup:        350 * Nanosecond,
		HandlerDispatch: 200 * Nanosecond,
		MemCopyByte:     0.05, // 20 GB/s host copy
	}
}

// TxTime returns the NIC occupancy needed to push n bytes onto the wire.
func (m Model) TxTime(n int) VTime {
	return m.Gap + VTime(float64(n)*m.GByte)
}

// CopyTime returns host memcpy time for n bytes.
func (m Model) CopyTime(n int) VTime {
	return VTime(float64(n) * m.MemCopyByte)
}
