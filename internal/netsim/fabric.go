package netsim

import (
	"fmt"

	"nmvgas/internal/gas"
)

// FabricConfig configures a fabric build.
type FabricConfig struct {
	Ranks int
	Model Model
	// GVARouting enables NIC-side translation on every NIC (the
	// network-managed mode).
	GVARouting bool
	// Policy applies to all NICs when GVARouting is on.
	Policy Policy
	// NICTableCap bounds each NIC's translation table (0 = unbounded).
	// The paper's NIC tables are finite; the capacity cliff is part of
	// the evaluation.
	NICTableCap int
	// Topology defaults to Crossbar when nil.
	Topology Topology
	// Faults injects seeded delivery faults into every link; the zero
	// plan is a perfect network.
	Faults FaultPlan
}

// Liveness lets the runtime's membership layer tell the fabric which
// localities are reachable. Down is the ground truth at the fabric
// boundary (the link is dead, whether or not anyone has noticed);
// DeadHint is the runtime's declared belief, which upgrades silent loss
// into a clean NACK-with-hint. Nil means every locality is up forever.
type Liveness interface {
	// Down reports whether rank's link is down (crashed, possibly not
	// yet declared dead). Traffic to or from a down rank is swallowed.
	Down(rank int) bool
	// DeadHint reports whether rank has been declared dead by the
	// membership layer, and the surrogate/home rank to redirect to.
	DeadHint(rank int) (hint int, dead bool)
	// Epoch returns the current membership epoch for stamping control
	// pushes.
	Epoch() uint64
	// Rehome returns the recovered owner of a block whose previous owner
	// died (a promoted replica master or a re-homed directory entry),
	// letting in-flight traffic redirect at the NIC instead of bouncing.
	Rehome(b gas.BlockID) (owner int, ok bool)
}

// Fabric is a full-crossbar network of NICs driven by one discrete-event
// engine: every pair of localities is directly connected, with per-NIC
// transmit occupancy and a uniform per-hop wire latency.
type Fabric struct {
	Eng   *Engine
	Model Model
	Topo  Topology
	NICs  []*NIC
	// Faults is nil on a perfect fabric.
	Faults *FaultInjector
	// Live is nil unless the runtime wires in membership.
	Live Liveness
}

// SetLiveness installs the runtime's membership view on the fabric.
func (f *Fabric) SetLiveness(lv Liveness) { f.Live = lv }

// BumpEpoch raises every NIC translation table's trusted membership
// epoch, fencing all cached entries installed under older epochs.
func (f *Fabric) BumpEpoch(epoch uint64) {
	for _, n := range f.NICs {
		n.Table.BumpEpoch(epoch)
	}
}

// NewFabric builds a fabric with cfg.Ranks NICs on the given engine.
func NewFabric(eng *Engine, cfg FabricConfig) *Fabric {
	if cfg.Ranks <= 0 {
		panic(fmt.Sprintf("netsim: fabric with %d ranks", cfg.Ranks))
	}
	topo := cfg.Topology
	if topo == nil {
		topo = Crossbar{}
	}
	f := &Fabric{
		Eng:    eng,
		Model:  cfg.Model,
		Topo:   topo,
		NICs:   make([]*NIC, cfg.Ranks),
		Faults: NewFaultInjector(cfg.Faults),
	}
	for r := range f.NICs {
		fi := f.Faults
		if eng.Sharded() {
			// Each NIC draws from its own seeded stream so its fault
			// schedule depends only on its own (shard-count-invariant)
			// transmit order, not the global interleaving of all NICs.
			fi = f.Faults.Fork(r)
		}
		f.NICs[r] = &NIC{
			Rank:       r,
			GVARouting: cfg.GVARouting,
			Policy:     cfg.Policy,
			Table:      NewTransTable(cfg.NICTableCap),
			routes:     make(map[gas.BlockID]int),
			readRoutes: make(map[gas.BlockID]int),
			fab:        f,
			eng:        eng.RankEngine(r),
			fi:         fi,
		}
	}
	return f
}

// FaultSnapshot sums injected-fault counters fabric-wide: the shared
// injector's on a classic engine, the per-NIC forks' under sharding.
func (f *Fabric) FaultSnapshot() FaultStats {
	if f.Faults == nil {
		return FaultStats{}
	}
	if !f.Eng.Sharded() {
		return f.Faults.Snapshot()
	}
	var t FaultStats
	for _, n := range f.NICs {
		s := n.fi.Snapshot()
		t.add(s)
	}
	return t
}

// NIC returns the interface of the given rank.
func (f *Fabric) NIC(rank int) *NIC { return f.NICs[rank] }

// Ranks returns the number of localities on the fabric.
func (f *Fabric) Ranks() int { return len(f.NICs) }

// TotalStats sums per-NIC counters across the fabric.
func (f *Fabric) TotalStats() NICStats {
	var t NICStats
	for _, n := range f.NICs {
		t.Sent += n.Stats.Sent
		t.Received += n.Stats.Received
		t.BytesTx += n.Stats.BytesTx
		t.BytesRx += n.Stats.BytesRx
		t.Forwards += n.Stats.Forwards
		t.Nacks += n.Stats.Nacks
		t.TableUpdatesRx += n.Stats.TableUpdatesRx
		t.ScatterSplits += n.Stats.ScatterSplits
		t.ScatterForwards += n.Stats.ScatterForwards
		t.DMADelivered += n.Stats.DMADelivered
		t.HostDelivered += n.Stats.HostDelivered
		t.Dropped += n.Stats.Dropped
		t.Duplicated += n.Stats.Duplicated
		t.Delayed += n.Stats.Delayed
		t.TableLost += n.Stats.TableLost
		t.LoopNacks += n.Stats.LoopNacks
		t.DownDrops += n.Stats.DownDrops
		t.DeadNacks += n.Stats.DeadNacks
		t.StaleEpochDrops += n.Stats.StaleEpochDrops
	}
	return t
}
