package netsim

import (
	"fmt"

	"nmvgas/internal/gas"
)

// FabricConfig configures a fabric build.
type FabricConfig struct {
	Ranks int
	Model Model
	// GVARouting enables NIC-side translation on every NIC (the
	// network-managed mode).
	GVARouting bool
	// Policy applies to all NICs when GVARouting is on.
	Policy Policy
	// NICTableCap bounds each NIC's translation table (0 = unbounded).
	// The paper's NIC tables are finite; the capacity cliff is part of
	// the evaluation.
	NICTableCap int
	// Topology defaults to Crossbar when nil.
	Topology Topology
	// Faults injects seeded delivery faults into every link; the zero
	// plan is a perfect network.
	Faults FaultPlan
}

// Fabric is a full-crossbar network of NICs driven by one discrete-event
// engine: every pair of localities is directly connected, with per-NIC
// transmit occupancy and a uniform per-hop wire latency.
type Fabric struct {
	Eng   *Engine
	Model Model
	Topo  Topology
	NICs  []*NIC
	// Faults is nil on a perfect fabric.
	Faults *FaultInjector
}

// NewFabric builds a fabric with cfg.Ranks NICs on the given engine.
func NewFabric(eng *Engine, cfg FabricConfig) *Fabric {
	if cfg.Ranks <= 0 {
		panic(fmt.Sprintf("netsim: fabric with %d ranks", cfg.Ranks))
	}
	topo := cfg.Topology
	if topo == nil {
		topo = Crossbar{}
	}
	f := &Fabric{
		Eng:    eng,
		Model:  cfg.Model,
		Topo:   topo,
		NICs:   make([]*NIC, cfg.Ranks),
		Faults: NewFaultInjector(cfg.Faults),
	}
	for r := range f.NICs {
		f.NICs[r] = &NIC{
			Rank:       r,
			GVARouting: cfg.GVARouting,
			Policy:     cfg.Policy,
			Table:      NewTransTable(cfg.NICTableCap),
			routes:     make(map[gas.BlockID]int),
			readRoutes: make(map[gas.BlockID]int),
			fab:        f,
		}
	}
	return f
}

// NIC returns the interface of the given rank.
func (f *Fabric) NIC(rank int) *NIC { return f.NICs[rank] }

// Ranks returns the number of localities on the fabric.
func (f *Fabric) Ranks() int { return len(f.NICs) }

// TotalStats sums per-NIC counters across the fabric.
func (f *Fabric) TotalStats() NICStats {
	var t NICStats
	for _, n := range f.NICs {
		t.Sent += n.Stats.Sent
		t.Received += n.Stats.Received
		t.BytesTx += n.Stats.BytesTx
		t.BytesRx += n.Stats.BytesRx
		t.Forwards += n.Stats.Forwards
		t.Nacks += n.Stats.Nacks
		t.TableUpdatesRx += n.Stats.TableUpdatesRx
		t.ScatterSplits += n.Stats.ScatterSplits
		t.ScatterForwards += n.Stats.ScatterForwards
		t.DMADelivered += n.Stats.DMADelivered
		t.HostDelivered += n.Stats.HostDelivered
		t.Dropped += n.Stats.Dropped
		t.Duplicated += n.Stats.Duplicated
		t.Delayed += n.Stats.Delayed
		t.TableLost += n.Stats.TableLost
		t.LoopNacks += n.Stats.LoopNacks
	}
	return t
}
