package netsim

import (
	"testing"
	"testing/quick"

	"nmvgas/internal/gas"
)

func TestTransTableBasic(t *testing.T) {
	tt := NewTransTable(0)
	if _, ok := tt.Lookup(1); ok {
		t.Fatal("empty table hit")
	}
	tt.Update(1, 3)
	if o, ok := tt.Lookup(1); !ok || o != 3 {
		t.Fatalf("Lookup(1) = %d,%v", o, ok)
	}
	tt.Update(1, 5) // overwrite
	if o, _ := tt.Lookup(1); o != 5 {
		t.Fatalf("overwrite failed, got %d", o)
	}
	if tt.Len() != 1 {
		t.Fatalf("Len = %d", tt.Len())
	}
}

func TestTransTableInvalidate(t *testing.T) {
	tt := NewTransTable(0)
	tt.Update(2, 1)
	if !tt.Invalidate(2) {
		t.Fatal("Invalidate of present entry returned false")
	}
	if tt.Invalidate(2) {
		t.Fatal("double Invalidate returned true")
	}
	if _, ok := tt.Lookup(2); ok {
		t.Fatal("entry survived Invalidate")
	}
}

func TestTransTableLRUEviction(t *testing.T) {
	tt := NewTransTable(3)
	tt.Update(1, 0)
	tt.Update(2, 0)
	tt.Update(3, 0)
	tt.Lookup(1) // 1 becomes MRU; LRU order now 2,3,1
	tt.Update(4, 0)
	if _, ok := tt.Peek(2); ok {
		t.Fatal("LRU entry 2 not evicted")
	}
	for _, b := range []gas.BlockID{1, 3, 4} {
		if _, ok := tt.Peek(b); !ok {
			t.Fatalf("entry %d wrongly evicted", b)
		}
	}
	_, _, ev, _ := tt.Stats()
	if ev != 1 {
		t.Fatalf("evictions = %d", ev)
	}
}

func TestTransTableCapacityNeverExceeded(t *testing.T) {
	f := func(ops []uint16, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		tt := NewTransTable(capacity)
		for _, op := range ops {
			tt.Update(gas.BlockID(op%64), int(op%8))
			if tt.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransTablePeekDoesNotPerturb(t *testing.T) {
	tt := NewTransTable(2)
	tt.Update(1, 0)
	tt.Update(2, 0)
	tt.Peek(1) // must NOT refresh 1
	tt.Update(3, 0)
	if _, ok := tt.Peek(1); ok {
		t.Fatal("Peek refreshed LRU position")
	}
	h, m, _, _ := tt.Stats()
	if h != 0 || m != 0 {
		t.Fatalf("Peek counted in stats: hits=%d misses=%d", h, m)
	}
}

func TestTransTableHitRate(t *testing.T) {
	tt := NewTransTable(0)
	if tt.HitRate() != 0 {
		t.Fatal("hit rate of untouched table must be 0")
	}
	tt.Update(1, 0)
	tt.Lookup(1)
	tt.Lookup(2)
	if got := tt.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v", got)
	}
}

func TestTransTableUnboundedGrows(t *testing.T) {
	tt := NewTransTable(0)
	for i := 0; i < 10000; i++ {
		tt.Update(gas.BlockID(i), i%7)
	}
	if tt.Len() != 10000 {
		t.Fatalf("Len = %d", tt.Len())
	}
	_, _, ev, _ := tt.Stats()
	if ev != 0 {
		t.Fatalf("unbounded table evicted %d entries", ev)
	}
}
