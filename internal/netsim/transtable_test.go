package netsim

import (
	"testing"
	"testing/quick"

	"nmvgas/internal/gas"
)

func TestTransTableBasic(t *testing.T) {
	tt := NewTransTable(0)
	if _, ok := tt.Lookup(1); ok {
		t.Fatal("empty table hit")
	}
	tt.Update(1, 3)
	if o, ok := tt.Lookup(1); !ok || o != 3 {
		t.Fatalf("Lookup(1) = %d,%v", o, ok)
	}
	tt.Update(1, 5) // overwrite
	if o, _ := tt.Lookup(1); o != 5 {
		t.Fatalf("overwrite failed, got %d", o)
	}
	if tt.Len() != 1 {
		t.Fatalf("Len = %d", tt.Len())
	}
}

func TestTransTableInvalidate(t *testing.T) {
	tt := NewTransTable(0)
	tt.Update(2, 1)
	if !tt.Invalidate(2) {
		t.Fatal("Invalidate of present entry returned false")
	}
	if tt.Invalidate(2) {
		t.Fatal("double Invalidate returned true")
	}
	if _, ok := tt.Lookup(2); ok {
		t.Fatal("entry survived Invalidate")
	}
}

func TestTransTableLRUEviction(t *testing.T) {
	tt := NewTransTable(3)
	tt.Update(1, 0)
	tt.Update(2, 0)
	tt.Update(3, 0)
	tt.Lookup(1) // 1 becomes MRU; LRU order now 2,3,1
	tt.Update(4, 0)
	if _, ok := tt.Peek(2); ok {
		t.Fatal("LRU entry 2 not evicted")
	}
	for _, b := range []gas.BlockID{1, 3, 4} {
		if _, ok := tt.Peek(b); !ok {
			t.Fatalf("entry %d wrongly evicted", b)
		}
	}
	_, _, ev, _ := tt.Stats()
	if ev != 1 {
		t.Fatalf("evictions = %d", ev)
	}
}

func TestTransTableCapacityNeverExceeded(t *testing.T) {
	f := func(ops []uint16, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		tt := NewTransTable(capacity)
		for _, op := range ops {
			tt.Update(gas.BlockID(op%64), int(op%8))
			if tt.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransTablePeekDoesNotPerturb(t *testing.T) {
	tt := NewTransTable(2)
	tt.Update(1, 0)
	tt.Update(2, 0)
	tt.Peek(1) // must NOT refresh 1
	tt.Update(3, 0)
	if _, ok := tt.Peek(1); ok {
		t.Fatal("Peek refreshed LRU position")
	}
	h, m, _, _ := tt.Stats()
	if h != 0 || m != 0 {
		t.Fatalf("Peek counted in stats: hits=%d misses=%d", h, m)
	}
}

func TestTransTableHitRate(t *testing.T) {
	tt := NewTransTable(0)
	if tt.HitRate() != 0 {
		t.Fatal("hit rate of untouched table must be 0")
	}
	tt.Update(1, 0)
	tt.Lookup(1)
	tt.Lookup(2)
	if got := tt.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v", got)
	}
}

func TestTransTableUnboundedGrows(t *testing.T) {
	tt := NewTransTable(0)
	for i := 0; i < 10000; i++ {
		tt.Update(gas.BlockID(i), i%7)
	}
	if tt.Len() != 10000 {
		t.Fatalf("Len = %d", tt.Len())
	}
	_, _, ev, _ := tt.Stats()
	if ev != 0 {
		t.Fatalf("unbounded table evicted %d entries", ev)
	}
}

func TestTransTableDropIndex(t *testing.T) {
	tt := NewTransTable(0)
	tt.Update(1, 0)
	tt.Update(2, 0)
	tt.Update(3, 0) // LRU order (MRU first): 3, 2, 1
	if b, ok := tt.DropIndex(1); !ok || b != 2 {
		t.Fatalf("DropIndex(1) = %d,%v, want 2,true", b, ok)
	}
	if _, ok := tt.Peek(2); ok {
		t.Fatal("dropped entry still present")
	}
	for _, b := range []gas.BlockID{1, 3} {
		if _, ok := tt.Peek(b); !ok {
			t.Fatalf("innocent entry %d destroyed", b)
		}
	}
	if _, ok := tt.DropIndex(5); ok {
		t.Fatal("out-of-range DropIndex reported a loss")
	}
	if _, ok := tt.DropIndex(-1); ok {
		t.Fatal("negative DropIndex reported a loss")
	}
	// A soft-error loss is not an eviction: the entry did not age out.
	_, _, ev, _ := tt.Stats()
	if ev != 0 {
		t.Fatalf("DropIndex counted %d evictions", ev)
	}
}

func TestEntryLossFallsBackToHome(t *testing.T) {
	// A stale cached translation (block migrated away from rank 2, the
	// correcting update lost) that is then destroyed by a soft error must
	// degrade to routing via the authoritative home — never to acting on
	// the stale entry.
	h := newHarness(t, 3, true, DefaultPolicy(), 0)
	h.resident[1][50] = true // block 50 lives at its home, rank 1
	nic := h.fab.NIC(0)
	nic.Table.Update(50, 2) // stale: points at the old owner

	fi := NewFaultInjector(FaultPlan{Seed: 3, TableLoss: 1})
	if !fi.MaybeLoseEntry(nic.Table) {
		t.Fatal("forced entry loss did not fire")
	}
	if _, ok := nic.Table.Peek(50); ok {
		t.Fatal("stale entry survived forced loss")
	}

	h.fab.NIC(0).Send(&Message{Src: 0, Dst: ByGVA, Target: gas.New(1, 50, 0), Wire: 32})
	h.eng.Run()
	if len(h.hostRx[1]) != 1 {
		t.Fatalf("home got %d deliveries, want 1", len(h.hostRx[1]))
	}
	if got := h.hostRx[1][0].Hops; got != 0 {
		t.Fatalf("delivery took %d hops, want direct-to-home", got)
	}
	if len(h.hostRx[2])+len(h.dmaRx[2]) != 0 {
		t.Fatal("message chased the stale owner despite the entry being gone")
	}
}

func TestEntryLossNeverTouchesAuthoritativeRoutes(t *testing.T) {
	// The soft-error model only scrubs the evictable translation cache;
	// authoritative route entries (home mirror, tombstones) are host-
	// installed state and survive any amount of table loss.
	h := newHarness(t, 2, true, DefaultPolicy(), 4)
	nic := h.fab.NIC(0)
	nic.InstallRoute(7, 1)
	nic.Table.Update(7, 1)
	fi := NewFaultInjector(FaultPlan{Seed: 1, TableLoss: 1})
	for i := 0; i < 4; i++ {
		fi.MaybeLoseEntry(nic.Table)
	}
	if nic.Table.Len() != 0 {
		t.Fatal("table not fully scrubbed")
	}
	if o, ok := nic.Route(7); !ok || o != 1 {
		t.Fatalf("authoritative route lost: %d,%v", o, ok)
	}
}
