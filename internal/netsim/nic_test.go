package netsim

import (
	"testing"

	"nmvgas/internal/gas"
)

func TestForwardingLoopBoundedNack(t *testing.T) {
	// Two NICs with authoritative routes pointing at each other and the
	// block resident nowhere: a broken ownership protocol. Instead of
	// bouncing forever (or panicking), the hop budget expires and the
	// sender gets a loop NACK carrying the home as the owner hint.
	h := newHarness(t, 3, true, Policy{ForwardInNetwork: true}, 0)
	h.fab.NIC(1).InstallRoute(50, 2)
	h.fab.NIC(2).InstallRoute(50, 1)
	h.fab.NIC(0).Send(&Message{Src: 0, Dst: ByGVA, Target: gas.New(1, 50, 0), Wire: 32})
	h.eng.Run()
	if len(h.hostRx[0]) != 1 {
		t.Fatalf("sender host got %d messages, want 1 loop NACK", len(h.hostRx[0]))
	}
	nk := h.hostRx[0][0]
	if nk.Ctl != CtlNackLoop {
		t.Fatalf("Ctl = %v, want CtlNackLoop", nk.Ctl)
	}
	if nk.Owner != 1 {
		t.Fatalf("owner hint %d, want home 1", nk.Owner)
	}
	if nk.Nacked == nil || nk.Nacked.Block != 50 {
		t.Fatalf("NACK does not carry the original message: %+v", nk.Nacked)
	}
	loops := h.fab.NIC(1).Stats.LoopNacks + h.fab.NIC(2).Stats.LoopNacks
	if loops != 1 {
		t.Fatalf("LoopNacks = %d, want 1", loops)
	}
}

func TestMissingHostHandlerPanics(t *testing.T) {
	eng := NewEngine()
	fab := NewFabric(eng, FabricConfig{Ranks: 2, Model: DefaultModel()})
	fab.NIC(1).Resident = func(gas.BlockID) bool { return false }
	// No HostDeliver installed on rank 1.
	fab.NIC(0).Send(&Message{Src: 0, Dst: 1, Wire: 16})
	defer func() {
		if recover() == nil {
			t.Fatal("delivery without a handler did not panic")
		}
	}()
	eng.Run()
}

func TestMissingDMAHandlerPanics(t *testing.T) {
	eng := NewEngine()
	fab := NewFabric(eng, FabricConfig{Ranks: 2, Model: DefaultModel()})
	fab.NIC(1).Resident = func(gas.BlockID) bool { return true }
	fab.NIC(1).HostDeliver = func(*Message) {}
	fab.NIC(0).Send(&Message{Src: 0, Dst: 1, Target: gas.New(1, 9, 0), DMA: true, Wire: 64})
	defer func() {
		if recover() == nil {
			t.Fatal("DMA without a handler did not panic")
		}
	}()
	eng.Run()
}

func TestTransmitToBadRankPanics(t *testing.T) {
	h := newHarness(t, 2, false, Policy{}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("bad destination did not panic")
		}
	}()
	h.fab.NIC(0).Send(&Message{Src: 0, Dst: 7, Wire: 16})
}

func TestCtlUpdatesRespectTableCapacity(t *testing.T) {
	// Pushed table updates land in the bounded table and evict LRU-style
	// like any other entry.
	h := newHarness(t, 2, true, DefaultPolicy(), 2)
	for b := gas.BlockID(1); b <= 5; b++ {
		h.fab.NIC(1).Send(&Message{
			Ctl: CtlTableUpdate, Src: 1, Dst: 0,
			Target: gas.New(0, b, 0), Owner: 1, Wire: 32,
		})
	}
	h.eng.Run()
	nic := h.fab.NIC(0)
	if nic.Table.Len() != 2 {
		t.Fatalf("table len %d, want capacity 2", nic.Table.Len())
	}
	if _, ok := nic.Table.Peek(5); !ok {
		t.Fatal("newest pushed entry missing")
	}
	if nic.Stats.TableUpdatesRx != 5 {
		t.Fatalf("update counter %d", nic.Stats.TableUpdatesRx)
	}
}

func TestRouteAndDrop(t *testing.T) {
	h := newHarness(t, 2, true, DefaultPolicy(), 0)
	nic := h.fab.NIC(0)
	nic.InstallRoute(7, 1)
	if o, ok := nic.Route(7); !ok || o != 1 {
		t.Fatalf("Route = %d,%v", o, ok)
	}
	nic.DropRoute(7)
	if _, ok := nic.Route(7); ok {
		t.Fatal("route survived DropRoute")
	}
}

func TestDefaultWireSizeApplied(t *testing.T) {
	h := newHarness(t, 2, false, Policy{}, 0)
	h.fab.NIC(0).Send(&Message{Src: 0, Dst: 1}) // Wire unset
	h.eng.Run()
	st := h.fab.NIC(0).Stats
	if st.BytesTx != wireHeader {
		t.Fatalf("default wire accounting %d, want %d", st.BytesTx, wireHeader)
	}
}

func TestZeroPolicyWithRoutingStillDelivers(t *testing.T) {
	// GVARouting with the zero policy (no forwarding, no pushes): stale
	// traffic NACKs; direct traffic still flows.
	h := newHarness(t, 2, true, Policy{}, 0)
	h.resident[1][9] = true
	h.fab.NIC(0).Send(&Message{Src: 0, Dst: ByGVA, Target: gas.New(1, 9, 0), Wire: 16})
	h.eng.Run()
	if len(h.hostRx[1]) != 1 {
		t.Fatal("direct delivery broken under zero policy")
	}
}
