package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// Topology maps a (src, dst) pair to a hop count and a bandwidth taper.
// The paper's clusters are fat-tree-ish: most of the evaluation behaves
// like a crossbar, but in-network forwarding costs depend on where the
// forwarding NIC sits, so the harness can swap in a two-tier topology to
// check that the conclusions survive oversubscription.
type Topology interface {
	// Hops returns the number of wire traversals between two ranks
	// (>= 1 for distinct ranks).
	Hops(src, dst int) int
	// BWFactor scales per-byte serialization for the path (1.0 = full
	// link speed; > 1 models oversubscription).
	BWFactor(src, dst int) float64
	Name() string
}

// Crossbar is the default full-bisection topology: one hop everywhere,
// full bandwidth.
type Crossbar struct{}

// Hops returns 1 for every distinct pair.
func (Crossbar) Hops(src, dst int) int { return 1 }

// BWFactor returns 1 (no taper).
func (Crossbar) BWFactor(src, dst int) float64 { return 1 }

// Name returns "crossbar".
func (Crossbar) Name() string { return "crossbar" }

// TwoTier groups ranks into pods of PodSize behind an oversubscribed
// spine: intra-pod traffic is one hop at full bandwidth; inter-pod
// traffic crosses the spine (three hops) at Oversub× serialization.
type TwoTier struct {
	PodSize int
	Oversub float64
}

// NewTwoTier validates and builds a two-tier topology.
func NewTwoTier(podSize int, oversub float64) TwoTier {
	if podSize < 1 {
		panic(fmt.Sprintf("netsim: pod size %d", podSize))
	}
	if oversub < 1 {
		panic(fmt.Sprintf("netsim: oversubscription %v < 1", oversub))
	}
	return TwoTier{PodSize: podSize, Oversub: oversub}
}

func (t TwoTier) pod(r int) int { return r / t.PodSize }

// Hops returns 1 inside a pod, 3 across the spine.
func (t TwoTier) Hops(src, dst int) int {
	if t.pod(src) == t.pod(dst) {
		return 1
	}
	return 3
}

// BWFactor returns 1 inside a pod, Oversub across the spine.
func (t TwoTier) BWFactor(src, dst int) float64 {
	if t.pod(src) == t.pod(dst) {
		return 1
	}
	return t.Oversub
}

// Name returns a descriptive label.
func (t TwoTier) Name() string {
	return fmt.Sprintf("two-tier(pod=%d,oversub=%.1fx)", t.PodSize, t.Oversub)
}

// FatTree is a three-level k-ary-style fat tree: LeafSize ranks share an
// edge switch, PodLeaves edge switches share a pod's aggregation layer,
// and pods meet at the core. Hop counts follow the switch levels a path
// climbs (1 intra-leaf, 3 intra-pod, 5 inter-pod) and bandwidth tapers
// by the per-level oversubscription — the distance structure the paper's
// in-network forwarding argument actually depends on.
type FatTree struct {
	// LeafSize is the number of ranks behind one edge switch (>= 1).
	LeafSize int
	// PodLeaves is the number of edge switches per pod (>= 1).
	PodLeaves int
	// EdgeOversub is the edge→aggregation oversubscription factor (>= 1),
	// paid by any path leaving its leaf.
	EdgeOversub float64
	// CoreOversub is the aggregation→core factor (>= 1), paid on top by
	// paths leaving their pod.
	CoreOversub float64
}

// NewFatTree validates and builds a fat-tree topology.
func NewFatTree(leafSize, podLeaves int, edgeOversub, coreOversub float64) FatTree {
	if leafSize < 1 || podLeaves < 1 {
		panic(fmt.Sprintf("netsim: fat tree leaf=%d podLeaves=%d", leafSize, podLeaves))
	}
	if edgeOversub < 1 || coreOversub < 1 {
		panic(fmt.Sprintf("netsim: fat tree oversubscription %v/%v < 1", edgeOversub, coreOversub))
	}
	return FatTree{LeafSize: leafSize, PodLeaves: podLeaves, EdgeOversub: edgeOversub, CoreOversub: coreOversub}
}

func (t FatTree) leaf(r int) int { return r / t.LeafSize }
func (t FatTree) pod(r int) int  { return r / (t.LeafSize * t.PodLeaves) }

// Hops returns 1 inside a leaf, 3 inside a pod, 5 across the core.
func (t FatTree) Hops(src, dst int) int {
	switch {
	case t.leaf(src) == t.leaf(dst):
		return 1
	case t.pod(src) == t.pod(dst):
		return 3
	}
	return 5
}

// BWFactor tapers by the highest level the path climbs.
func (t FatTree) BWFactor(src, dst int) float64 {
	switch {
	case t.leaf(src) == t.leaf(dst):
		return 1
	case t.pod(src) == t.pod(dst):
		return t.EdgeOversub
	}
	return t.EdgeOversub * t.CoreOversub
}

// Name returns a descriptive label.
func (t FatTree) Name() string {
	return fmt.Sprintf("fat-tree(leaf=%d,pod=%d,edge=%.1fx,core=%.1fx)",
		t.LeafSize, t.PodLeaves, t.EdgeOversub, t.CoreOversub)
}

// Dragonfly groups ranks behind all-to-all-connected routers: intra-group
// traffic is one local hop; inter-group traffic takes local→global→local
// (3 hops) over oversubscribed global links. It is the low-diameter
// counterpoint to the fat tree: distance saturates at one global link, so
// forwarding cost differences show up in bandwidth taper, not hop count.
type Dragonfly struct {
	// GroupSize is the number of ranks per group (>= 1).
	GroupSize int
	// GlobalOversub is the global-link oversubscription factor (>= 1).
	GlobalOversub float64
}

// NewDragonfly validates and builds a dragonfly topology.
func NewDragonfly(groupSize int, globalOversub float64) Dragonfly {
	if groupSize < 1 {
		panic(fmt.Sprintf("netsim: dragonfly group size %d", groupSize))
	}
	if globalOversub < 1 {
		panic(fmt.Sprintf("netsim: dragonfly oversubscription %v < 1", globalOversub))
	}
	return Dragonfly{GroupSize: groupSize, GlobalOversub: globalOversub}
}

func (t Dragonfly) group(r int) int { return r / t.GroupSize }

// Hops returns 1 inside a group, 3 across a global link.
func (t Dragonfly) Hops(src, dst int) int {
	if t.group(src) == t.group(dst) {
		return 1
	}
	return 3
}

// BWFactor returns 1 inside a group, GlobalOversub across groups.
func (t Dragonfly) BWFactor(src, dst int) float64 {
	if t.group(src) == t.group(dst) {
		return 1
	}
	return t.GlobalOversub
}

// Name returns a descriptive label.
func (t Dragonfly) Name() string {
	return fmt.Sprintf("dragonfly(group=%d,global=%.1fx)", t.GroupSize, t.GlobalOversub)
}

// MinHops returns the topology's minimum cross-rank hop count, used to
// derive the conservative-lookahead window (Model.Latency × MinHops is a
// lower bound on any cross-rank delivery delay). All built-in topologies
// bottom out at one hop; a custom topology can raise the bound by
// implementing interface{ MinHops() int }.
func MinHops(t Topology) int {
	if t == nil {
		return 1
	}
	if mh, ok := t.(interface{ MinHops() int }); ok {
		if h := mh.MinHops(); h >= 1 {
			return h
		}
	}
	return 1
}

// ParseTopology parses a compact topology spec for benchmarks and CLIs:
//
//	crossbar
//	two-tier[:pod=P,oversub=F]
//	fat-tree[:leaf=L,pod=P,edge=F,core=F]
//	dragonfly[:group=G,oversub=F]
//
// Omitted parameters default to a balanced shape for the given rank
// count (√ranks-sized leaves/groups, 4× oversubscription). An empty
// spec is the crossbar.
func ParseTopology(spec string, ranks int) (Topology, error) {
	name, params, _ := strings.Cut(strings.TrimSpace(spec), ":")
	kv := map[string]string{}
	if params != "" {
		for _, term := range strings.Split(params, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(term), "=")
			if !ok {
				return nil, fmt.Errorf("netsim: topology parameter %q is not key=value", term)
			}
			kv[k] = v
		}
	}
	geti := func(k string, def int) (int, error) {
		v, ok := kv[k]
		if !ok {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return 0, fmt.Errorf("netsim: topology parameter %s=%q: want a positive integer", k, v)
		}
		return n, nil
	}
	getf := func(k string, def float64) (float64, error) {
		v, ok := kv[k]
		if !ok {
			return def, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 1 {
			return 0, fmt.Errorf("netsim: topology parameter %s=%q: want a factor >= 1", k, v)
		}
		return f, nil
	}
	side := 1
	for side*side < ranks {
		side++
	}
	switch name {
	case "", "crossbar":
		return Crossbar{}, nil
	case "two-tier":
		pod, err := geti("pod", side)
		if err != nil {
			return nil, err
		}
		over, err := getf("oversub", 4)
		if err != nil {
			return nil, err
		}
		return NewTwoTier(pod, over), nil
	case "fat-tree":
		leaf, err := geti("leaf", side)
		if err != nil {
			return nil, err
		}
		pod, err := geti("pod", 2)
		if err != nil {
			return nil, err
		}
		edge, err := getf("edge", 2)
		if err != nil {
			return nil, err
		}
		core, err := getf("core", 2)
		if err != nil {
			return nil, err
		}
		return NewFatTree(leaf, pod, edge, core), nil
	case "dragonfly":
		group, err := geti("group", side)
		if err != nil {
			return nil, err
		}
		over, err := getf("oversub", 4)
		if err != nil {
			return nil, err
		}
		return NewDragonfly(group, over), nil
	}
	return nil, fmt.Errorf("netsim: unknown topology %q (want crossbar, two-tier, fat-tree, or dragonfly)", name)
}
