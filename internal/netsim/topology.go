package netsim

import "fmt"

// Topology maps a (src, dst) pair to a hop count and a bandwidth taper.
// The paper's clusters are fat-tree-ish: most of the evaluation behaves
// like a crossbar, but in-network forwarding costs depend on where the
// forwarding NIC sits, so the harness can swap in a two-tier topology to
// check that the conclusions survive oversubscription.
type Topology interface {
	// Hops returns the number of wire traversals between two ranks
	// (>= 1 for distinct ranks).
	Hops(src, dst int) int
	// BWFactor scales per-byte serialization for the path (1.0 = full
	// link speed; > 1 models oversubscription).
	BWFactor(src, dst int) float64
	Name() string
}

// Crossbar is the default full-bisection topology: one hop everywhere,
// full bandwidth.
type Crossbar struct{}

// Hops returns 1 for every distinct pair.
func (Crossbar) Hops(src, dst int) int { return 1 }

// BWFactor returns 1 (no taper).
func (Crossbar) BWFactor(src, dst int) float64 { return 1 }

// Name returns "crossbar".
func (Crossbar) Name() string { return "crossbar" }

// TwoTier groups ranks into pods of PodSize behind an oversubscribed
// spine: intra-pod traffic is one hop at full bandwidth; inter-pod
// traffic crosses the spine (three hops) at Oversub× serialization.
type TwoTier struct {
	PodSize int
	Oversub float64
}

// NewTwoTier validates and builds a two-tier topology.
func NewTwoTier(podSize int, oversub float64) TwoTier {
	if podSize < 1 {
		panic(fmt.Sprintf("netsim: pod size %d", podSize))
	}
	if oversub < 1 {
		panic(fmt.Sprintf("netsim: oversubscription %v < 1", oversub))
	}
	return TwoTier{PodSize: podSize, Oversub: oversub}
}

func (t TwoTier) pod(r int) int { return r / t.PodSize }

// Hops returns 1 inside a pod, 3 across the spine.
func (t TwoTier) Hops(src, dst int) int {
	if t.pod(src) == t.pod(dst) {
		return 1
	}
	return 3
}

// BWFactor returns 1 inside a pod, Oversub across the spine.
func (t TwoTier) BWFactor(src, dst int) float64 {
	if t.pod(src) == t.pod(dst) {
		return 1
	}
	return t.Oversub
}

// Name returns a descriptive label.
func (t TwoTier) Name() string {
	return fmt.Sprintf("two-tier(pod=%d,oversub=%.1fx)", t.PodSize, t.Oversub)
}
