// Package netsim is the simulated network substrate: a deterministic
// discrete-event engine, a LogGP-style cost model, and a NIC model with an
// on-NIC translation table.
//
// The paper's system ran over RDMA hardware (Photon middleware on
// InfiniBand / uGNI). This package is the documented substitution: it
// reproduces the *architectural* properties that matter for the paper's
// claims — where translation happens (host software vs NIC), how many
// wire hops and host round-trips each policy costs, NIC occupancy, and
// translation-table capacity — on a simulated clock that Go's garbage
// collector cannot perturb.
package netsim

import (
	"fmt"
)

// VTime is simulated time in nanoseconds since the start of the run.
type VTime int64

// Common durations.
const (
	Nanosecond  VTime = 1
	Microsecond VTime = 1000
	Millisecond VTime = 1000 * 1000
	Second      VTime = 1000 * 1000 * 1000
)

func (t VTime) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(t))
}

// Micros returns t in microseconds as a float, for table output.
func (t VTime) Micros() float64 { return float64(t) / float64(Microsecond) }

type event struct {
	at  VTime
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func()
}

// evLess orders events by (at, seq); seq is unique, so the order is a
// strict total order and pop sequence is independent of heap shape.
func evLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is an index-typed 4-ary min-heap over a flat event slice.
// Compared to container/heap it pays no interface-boxing allocation per
// push and half the tree height per sift; popped slots are zeroed and
// reused in place on the next push, so the backing array doubles as the
// event free-list and a steady-state engine allocates nothing per event
// beyond the scheduled closure itself.
type eventQueue []event

func (q *eventQueue) push(ev event) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the closure: the slot becomes free-list space
	h = h[:n]
	*q = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if evLess(h[j], h[m]) {
					m = j
				}
			}
			if !evLess(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return root
}

// Engine is a single-threaded discrete-event simulator. All simulated
// work — NIC activity, host handlers, runtime actions — runs as events on
// one goroutine, which makes every run bit-for-bit deterministic.
type Engine struct {
	q   eventQueue
	now VTime
	seq uint64
	// processed counts executed events, exposed for sanity checks and the
	// engine-overhead ablation.
	processed uint64
}

// NewEngine returns an engine at simulated time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() VTime { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return len(e.q) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past is a protocol bug and panics.
func (e *Engine) At(t VTime, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("netsim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	e.q.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current simulated time.
func (e *Engine) After(d VTime, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Step executes the next event, returning false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.q) == 0 {
		return false
	}
	ev := e.q.pop()
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events until done reports true or the queue drains.
// It returns whether done was satisfied. The predicate is evaluated after
// every event.
func (e *Engine) RunUntil(done func() bool) bool {
	if done() {
		return true
	}
	for e.Step() {
		if done() {
			return true
		}
	}
	return done()
}

// RunFor executes events with timestamps up to and including deadline.
func (e *Engine) RunFor(d VTime) {
	deadline := e.now + d
	for len(e.q) > 0 && e.q[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
