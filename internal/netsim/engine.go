// Package netsim is the simulated network substrate: a deterministic
// discrete-event engine, a LogGP-style cost model, and a NIC model with an
// on-NIC translation table.
//
// The paper's system ran over RDMA hardware (Photon middleware on
// InfiniBand / uGNI). This package is the documented substitution: it
// reproduces the *architectural* properties that matter for the paper's
// claims — where translation happens (host software vs NIC), how many
// wire hops and host round-trips each policy costs, NIC occupancy, and
// translation-table capacity — on a simulated clock that Go's garbage
// collector cannot perturb.
package netsim

import (
	"fmt"
)

// VTime is simulated time in nanoseconds since the start of the run.
type VTime int64

// Common durations.
const (
	Nanosecond  VTime = 1
	Microsecond VTime = 1000
	Millisecond VTime = 1000 * 1000
	Second      VTime = 1000 * 1000 * 1000
)

func (t VTime) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(t))
}

// Micros returns t in microseconds as a float, for table output.
func (t VTime) Micros() float64 { return float64(t) / float64(Microsecond) }

// event is one scheduled closure. tie breaks equal-time events into a
// strict total order; rank names the locality whose state the closure
// touches (-1 for driver/barrier work), which the sharded engine uses to
// route the event to the right shard heap and to stamp events the
// closure schedules in turn.
type event struct {
	at   VTime
	tie  uint64
	rank int32
	fn   func()
}

// evLess orders events by (at, tie); tie is unique, so the order is a
// strict total order and pop sequence is independent of heap shape.
func evLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.tie < b.tie
}

// minQueueCap is the floor below which eventQueue never shrinks its
// backing array: bursts smaller than this are steady-state noise, not
// worth a reallocation to reclaim.
const minQueueCap = 64

// eventQueue is an index-typed 4-ary min-heap over a flat event slice.
// Compared to container/heap it pays no interface-boxing allocation per
// push and half the tree height per sift; popped slots are zeroed and
// reused in place on the next push, so the backing array doubles as the
// event free-list and a steady-state engine allocates nothing per event
// beyond the scheduled closure itself.
type eventQueue []event

func (q *eventQueue) push(ev event) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the closure: the slot becomes free-list space
	h = h[:n]
	if cap(h) > minQueueCap && n < cap(h)/4 {
		// A drained burst would otherwise pin its high-water backing array
		// (and its zeroed closure slots) forever. Halving keeps headroom
		// for the next burst while bounding the waste at 4× live size.
		s := make(eventQueue, n, cap(h)/2)
		copy(s, h)
		h = s
	}
	*q = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if evLess(h[j], h[m]) {
					m = j
				}
			}
			if !evLess(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return root
}

// Engine is a discrete-event simulator. In the classic (default)
// configuration all simulated work — NIC activity, host handlers,
// runtime actions — runs as events on one goroutine, which makes every
// run bit-for-bit deterministic.
//
// An Engine can also be one face of a sharded ParEngine (see par.go):
// either the driver façade the harness holds (Run/RunUntil execute
// conservative-lookahead windows across all shards) or a per-shard
// engine owning one heap that a worker drains. The scheduling API is
// identical in both configurations, so the NIC and runtime layers are
// written once.
type Engine struct {
	q   eventQueue
	now VTime
	seq uint64
	// processed counts executed events, exposed for sanity checks and the
	// engine-overhead ablation.
	processed uint64

	// Sharded-mode wiring (nil/zero on a classic engine). shard is -1 on
	// the driver façade; curRank is the rank of the executing event (-1
	// between events and in driver context) and stamps the invariant
	// ordering key of everything that event schedules.
	par     *ParEngine
	shard   int32
	curRank int32
}

// NewEngine returns a classic single-threaded engine at simulated time
// zero.
func NewEngine() *Engine { return &Engine{shard: -1, curRank: -1} }

// Sharded reports whether this engine is a face of a sharded ParEngine.
func (e *Engine) Sharded() bool { return e.par != nil }

// Par returns the underlying ParEngine (nil on a classic engine).
func (e *Engine) Par() *ParEngine { return e.par }

// RankEngine returns the engine face that schedules rank's events: the
// rank's shard engine under sharding, the engine itself otherwise.
func (e *Engine) RankEngine(rank int) *Engine {
	if e.par == nil {
		return e
	}
	return e.par.shards[e.par.shardOf(rank)]
}

// Now returns the current simulated time: event time on a classic or
// shard engine, the last barrier time on a sharded driver façade.
func (e *Engine) Now() VTime { return e.now }

// Processed returns the number of events executed so far (summed across
// shards on a sharded driver façade).
func (e *Engine) Processed() uint64 {
	if e.par != nil && e.shard < 0 {
		return e.par.processedAll()
	}
	return e.processed
}

// Pending returns the number of scheduled-but-unexecuted events (summed
// across shard heaps, inboxes, and barrier tasks on a driver façade).
func (e *Engine) Pending() int {
	if e.par != nil && e.shard < 0 {
		return e.par.pendingAll()
	}
	return len(e.q)
}

// PendingByRank counts scheduled-but-unexecuted events attributed to
// each rank into counts (one slot per rank); driver and barrier work
// (rank -1) is not attributed. It is an on-demand O(pending) scan over
// the heaps, so the hot scheduling path pays nothing for the tap — the
// watchdog that calls it runs at pulse cadence, not per event.
func (e *Engine) PendingByRank(counts []int) {
	for i := range counts {
		counts[i] = 0
	}
	if e.par != nil && e.shard < 0 {
		e.par.pendingByRank(counts)
		return
	}
	countEvents(e.q, counts)
}

// countEvents attributes a batch of events to their ranks.
func countEvents(evs []event, counts []int) {
	for i := range evs {
		if r := int(evs[i].rank); r >= 0 && r < len(counts) {
			counts[r]++
		}
	}
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past is a protocol bug and panics. On a sharded engine the event is
// attributed to the currently executing rank; use AtRank to schedule
// onto a specific rank (required from driver context, where no rank is
// executing).
func (e *Engine) At(t VTime, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("netsim: scheduling at %v before now %v", t, e.now))
	}
	if e.par == nil {
		e.seq++
		e.q.push(event{at: t, tie: e.seq, rank: -1, fn: fn})
		return
	}
	if e.shard < 0 {
		// Driver façade: the task runs serially at the first barrier whose
		// time reaches t, between windows, where it may touch any rank.
		e.par.barrierPush(e, t, fn)
		return
	}
	e.q.push(event{at: t, tie: e.par.nextTie(e), rank: e.curRank, fn: fn})
}

// After schedules fn to run d after the current simulated time.
func (e *Engine) After(d VTime, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// AtRank schedules fn at absolute time t attributed to rank. On a
// classic engine this is At. On a sharded engine it is the only legal
// way to schedule across ranks: a cross-rank event must land at or
// beyond the current window's end (the conservative-lookahead
// guarantee), and events bound for another shard travel through a
// lock-free inbox merged at the next barrier.
func (e *Engine) AtRank(rank int, t VTime, fn func()) {
	if e.par == nil {
		if t < e.now {
			panic(fmt.Sprintf("netsim: scheduling at %v before now %v", t, e.now))
		}
		// Same scheduling semantics as At, but the event carries its rank
		// so backlog taps (PendingByRank) can attribute it.
		e.seq++
		e.q.push(event{at: t, tie: e.seq, rank: int32(rank), fn: fn})
		return
	}
	e.par.atRank(e, rank, t, fn)
}

// AfterRank schedules fn d after now, attributed to rank (see AtRank).
func (e *Engine) AfterRank(rank int, d VTime, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	e.AtRank(rank, e.now+d, fn)
}

// AtBarrier defers fn to the next merge barrier, where it runs serially
// and may touch any rank's state (membership transitions, epoch bumps,
// recovery). On a classic engine there is no barrier and no concurrency,
// so fn runs immediately.
func (e *Engine) AtBarrier(fn func()) {
	if e.par == nil {
		fn()
		return
	}
	e.par.atBarrier(e, fn)
}

// Step executes the next event, returning false when the queue is empty.
// On a sharded driver façade it advances one whole window instead.
func (e *Engine) Step() bool {
	if e.par != nil && e.shard < 0 {
		return e.par.advance()
	}
	if len(e.q) == 0 {
		return false
	}
	ev := e.q.pop()
	e.now = ev.at
	e.curRank = ev.rank
	e.processed++
	ev.fn()
	e.curRank = -1
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	if e.par != nil && e.shard < 0 {
		e.par.run()
		return
	}
	for e.Step() {
	}
}

// RunUntil executes events until done reports true or the queue drains.
// It returns whether done was satisfied. On a classic engine the
// predicate is evaluated after every event; on a sharded driver façade
// it is evaluated at merge barriers (the only points where the
// predicate's view of the world is well-defined), so completion is
// quantized to the lookahead window.
func (e *Engine) RunUntil(done func() bool) bool {
	if e.par != nil && e.shard < 0 {
		return e.par.runUntil(done)
	}
	if done() {
		return true
	}
	for e.Step() {
		if done() {
			return true
		}
	}
	return done()
}

// RunUntilStride is RunUntil checking done only every stride events, for
// hot drain loops where a closure call per event is measurable (large
// worlds push tens of millions of events per run). A stride below 1 is
// treated as 1; on a sharded driver façade the stride is ignored, since
// the predicate already runs only at barriers.
func (e *Engine) RunUntilStride(done func() bool, stride int) bool {
	if e.par != nil && e.shard < 0 {
		return e.par.runUntil(done)
	}
	if stride < 1 {
		stride = 1
	}
	if done() {
		return true
	}
	for {
		for i := 0; i < stride; i++ {
			if !e.Step() {
				return done()
			}
		}
		if done() {
			return true
		}
	}
}

// RunFor executes events with timestamps up to and including deadline.
func (e *Engine) RunFor(d VTime) {
	deadline := e.now + d
	if e.par != nil && e.shard < 0 {
		e.par.runFor(deadline)
		return
	}
	for len(e.q) > 0 && e.q[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
