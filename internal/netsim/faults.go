package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FaultPlan describes the faults a fabric injects into message delivery.
// The zero value is a perfect network. All probabilities are per-message
// and drawn from one seeded stream, so a given (seed, workload) pair
// replays the identical fault schedule under the DES engine.
type FaultPlan struct {
	// Seed feeds the injector's random stream. A zero seed is replaced by
	// the world's Config.Seed when the runtime wires the plan in.
	Seed int64
	// Drop is the probability a message is lost in flight.
	Drop float64
	// Duplicate is the probability a message is delivered twice; the
	// duplicate trails the original by a random delay up to MaxDelay.
	Duplicate float64
	// DelayProb is the probability a message is held back by a random
	// extra delay up to MaxDelay (which reorders it past later traffic).
	DelayProb float64
	// MaxDelay bounds duplicate and delay offsets (0 = 2µs).
	MaxDelay VTime
	// Reorder is shorthand: when set and DelayProb is zero, DelayProb
	// becomes 0.25 so a quarter of the traffic jitters out of order.
	Reorder bool
	// DropNthCtl drops the Nth message of a given Ctl class (1-based),
	// e.g. {CtlTableUpdate: 3} loses exactly the third table update that
	// enters the fabric. Targeted injections are counted in
	// FaultStats.TargetedDrops, not Dropped.
	DropNthCtl map[uint8]int
	// TableLoss is a per-received-message probability that the receiving
	// NIC forgets one random translation-table entry (soft-error model
	// for the finite NIC table).
	TableLoss float64
	// KillAt schedules whole-locality crashes: rank → virtual time at
	// which the locality's link goes down (fail-stop at the fabric
	// boundary). Unlike the probabilistic faults above, kills are exact
	// scheduled events, so a given plan replays the identical failure
	// under the DES engine.
	KillAt map[int]VTime
	// RestartAt schedules a killed locality's link coming back up. The
	// runtime notices and re-admits the rank through World.Join once its
	// membership layer has finished declaring the death.
	RestartAt map[int]VTime
}

// Enabled reports whether the plan injects any fault at all.
func (p FaultPlan) Enabled() bool {
	return p.Drop > 0 || p.Duplicate > 0 || p.DelayProb > 0 || p.Reorder ||
		p.TableLoss > 0 || len(p.DropNthCtl) > 0 || len(p.KillAt) > 0 ||
		len(p.RestartAt) > 0
}

// ParseFaultPlan parses a compact comma-separated spec such as
// "drop=0.05,dup=0.02,reorder=1,seed=7,delay=0.1,maxdelay=2000,tableloss=0.01,
// dropctl=1:3,kill=2:500000,restart=2:2000000". Unknown keys are errors.
// An empty string is the zero plan.
func ParseFaultPlan(s string) (FaultPlan, error) {
	var p FaultPlan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("netsim: fault plan term %q is not key=value", kv)
		}
		var err error
		switch k {
		case "drop":
			p.Drop, err = strconv.ParseFloat(v, 64)
		case "dup":
			p.Duplicate, err = strconv.ParseFloat(v, 64)
		case "delay":
			p.DelayProb, err = strconv.ParseFloat(v, 64)
		case "tableloss":
			p.TableLoss, err = strconv.ParseFloat(v, 64)
		case "maxdelay":
			var ns int64
			ns, err = strconv.ParseInt(v, 10, 64)
			p.MaxDelay = VTime(ns)
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "reorder":
			p.Reorder = v == "1" || v == "true"
		case "dropctl":
			ctl, nth, ok := strings.Cut(v, ":")
			if !ok {
				return p, fmt.Errorf("netsim: dropctl wants ctl:nth, got %q", v)
			}
			c, err1 := strconv.ParseUint(ctl, 10, 8)
			n, err2 := strconv.Atoi(nth)
			if err1 != nil || err2 != nil {
				return p, fmt.Errorf("netsim: dropctl %q: bad numbers", v)
			}
			if p.DropNthCtl == nil {
				p.DropNthCtl = make(map[uint8]int)
			}
			p.DropNthCtl[uint8(c)] = n
		case "kill", "restart":
			rank, at, ok := strings.Cut(v, ":")
			if !ok {
				return p, fmt.Errorf("netsim: %s wants rank:time, got %q", k, v)
			}
			r, err1 := strconv.Atoi(rank)
			t, err2 := strconv.ParseInt(at, 10, 64)
			if err1 != nil || err2 != nil {
				return p, fmt.Errorf("netsim: %s %q: bad numbers", k, v)
			}
			if k == "kill" {
				if p.KillAt == nil {
					p.KillAt = make(map[int]VTime)
				}
				p.KillAt[r] = VTime(t)
			} else {
				if p.RestartAt == nil {
					p.RestartAt = make(map[int]VTime)
				}
				p.RestartAt[r] = VTime(t)
			}
		default:
			return p, fmt.Errorf("netsim: unknown fault plan key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("netsim: fault plan term %q: %v", kv, err)
		}
	}
	return p, nil
}

// FaultStats counts injected faults.
type FaultStats struct {
	Dropped          uint64
	Duplicated       uint64
	Delayed          uint64
	TargetedDrops    uint64
	TableEntriesLost uint64
}

// FaultAction is the injector's verdict for one message.
type FaultAction struct {
	// Drop loses the message entirely.
	Drop bool
	// Duplicate delivers a second copy trailing by DupDelay.
	Duplicate bool
	DupDelay  VTime
	// Delay postpones the (first) delivery by this much.
	Delay VTime
}

// FaultInjector applies a FaultPlan with one seeded random stream. It is
// shared by every NIC on a fabric (and every chanNet rank), so the mutex
// makes it safe under the goroutine engine; under DES all calls come from
// the single engine goroutine in event order, which makes the fault
// schedule fully deterministic.
type FaultInjector struct {
	mu      sync.Mutex
	plan    FaultPlan
	rng     *rand.Rand
	ctlSeen map[uint8]int
	Stats   FaultStats
}

// defaultMaxDelay bounds duplicate/delay offsets when the plan leaves
// MaxDelay zero. It is kept shorter than a network round-trip so a
// duplicate cannot leapfrog an entire migration handshake.
const defaultMaxDelay = 2000 // 2µs

// NewFaultInjector builds an injector; a nil result means faults are off.
func NewFaultInjector(p FaultPlan) *FaultInjector {
	if !p.Enabled() {
		return nil
	}
	if p.Reorder && p.DelayProb == 0 {
		p.DelayProb = 0.25
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultMaxDelay
	}
	return &FaultInjector{
		plan:    p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		ctlSeen: make(map[uint8]int),
	}
}

// Decide draws the fault verdict for one message about to be transmitted.
func (fi *FaultInjector) Decide(m *Message) FaultAction {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	var a FaultAction
	if m.Ctl != CtlNone && len(fi.plan.DropNthCtl) > 0 {
		fi.ctlSeen[m.Ctl]++
		if nth, ok := fi.plan.DropNthCtl[m.Ctl]; ok && fi.ctlSeen[m.Ctl] == nth {
			fi.Stats.TargetedDrops++
			a.Drop = true
			return a
		}
	}
	if fi.plan.Drop > 0 && fi.rng.Float64() < fi.plan.Drop {
		fi.Stats.Dropped++
		a.Drop = true
		return a
	}
	if fi.plan.Duplicate > 0 && fi.rng.Float64() < fi.plan.Duplicate {
		fi.Stats.Duplicated++
		a.Duplicate = true
		a.DupDelay = 1 + VTime(fi.rng.Int63n(int64(fi.plan.MaxDelay)))
	}
	if fi.plan.DelayProb > 0 && fi.rng.Float64() < fi.plan.DelayProb {
		fi.Stats.Delayed++
		a.Delay = 1 + VTime(fi.rng.Int63n(int64(fi.plan.MaxDelay)))
	}
	return a
}

// MaybeLoseEntry randomly evicts one translation-table entry (the
// soft-error model), reporting whether it did. The caller owns any lock
// protecting t.
func (fi *FaultInjector) MaybeLoseEntry(t *TransTable) bool {
	if t == nil {
		return false
	}
	fi.mu.Lock()
	hit := fi.plan.TableLoss > 0 && fi.rng.Float64() < fi.plan.TableLoss
	var idx int
	if hit {
		if n := t.Len(); n > 0 {
			idx = fi.rng.Intn(n)
		} else {
			hit = false
		}
	}
	if hit {
		fi.Stats.TableEntriesLost++
	}
	fi.mu.Unlock()
	if hit {
		t.DropIndex(idx)
	}
	return hit
}

// Fork derives an independent injector for one rank's NIC: same plan, a
// stream seeded from the base seed and the rank. The sharded engine
// gives every NIC its own fork so each NIC's fault schedule depends only
// on its own transmit sequence — which is shard-count-invariant — rather
// than on the global interleaving of all NICs' draws, which is not.
// Targeted DropNthCtl counting becomes per-NIC under forks (the Nth
// control message *through that NIC*), which chaos plans that pin a
// specific victim already satisfy by addressing a single source rank.
func (fi *FaultInjector) Fork(rank int) *FaultInjector {
	if fi == nil {
		return nil
	}
	fi.mu.Lock()
	p := fi.plan
	fi.mu.Unlock()
	p.Seed += int64(rank+1) * int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)
	return &FaultInjector{
		plan:    p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		ctlSeen: make(map[uint8]int),
	}
}

// add accumulates other into s, for summing per-NIC fork counters.
func (s *FaultStats) add(o FaultStats) {
	s.Dropped += o.Dropped
	s.Duplicated += o.Duplicated
	s.Delayed += o.Delayed
	s.TargetedDrops += o.TargetedDrops
	s.TableEntriesLost += o.TableEntriesLost
}

// Snapshot returns the counters accumulated so far.
func (fi *FaultInjector) Snapshot() FaultStats {
	if fi == nil {
		return FaultStats{}
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.Stats
}

// String renders a plan compactly for table headers and logs.
func (p FaultPlan) String() string {
	if !p.Enabled() {
		return "none"
	}
	var parts []string
	if p.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.Drop))
	}
	if p.Duplicate > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", p.Duplicate))
	}
	if p.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g", p.DelayProb))
	} else if p.Reorder {
		parts = append(parts, "reorder")
	}
	if p.TableLoss > 0 {
		parts = append(parts, fmt.Sprintf("tableloss=%g", p.TableLoss))
	}
	keys := make([]int, 0, len(p.DropNthCtl))
	for c := range p.DropNthCtl {
		keys = append(keys, int(c))
	}
	sort.Ints(keys)
	for _, c := range keys {
		parts = append(parts, fmt.Sprintf("dropctl=%d:%d", c, p.DropNthCtl[uint8(c)]))
	}
	for _, r := range sortedRanks(p.KillAt) {
		parts = append(parts, fmt.Sprintf("kill=%d:%d", r, p.KillAt[r]))
	}
	for _, r := range sortedRanks(p.RestartAt) {
		parts = append(parts, fmt.Sprintf("restart=%d:%d", r, p.RestartAt[r]))
	}
	return strings.Join(parts, ",")
}

func sortedRanks(m map[int]VTime) []int {
	rs := make([]int, 0, len(m))
	for r := range m {
		rs = append(rs, r)
	}
	sort.Ints(rs)
	return rs
}
