package netsim

import "nmvgas/internal/gas"

// ByGVA as a destination asks the source NIC to resolve the destination
// from the message's Target address (the network-managed path). Explicit
// ranks mean the host already resolved the destination in software.
const ByGVA = -1

// Ctl values classify fabric-internal control traffic.
const (
	// CtlNone marks ordinary runtime traffic.
	CtlNone uint8 = iota
	// CtlTableUpdate is consumed by the receiving NIC: it installs a
	// block→owner entry pushed by a forwarding NIC. It never reaches the
	// host.
	CtlTableUpdate
	// CtlNack is delivered to the source host after a message arrived
	// somewhere that could not accept it; the runtime re-resolves and
	// resends. Owner carries the correct owner when the NACKing side
	// knew it, else -1.
	CtlNack
	// CtlNackLoop is a CtlNack raised because a message exhausted its
	// forward-hop budget (Policy.MaxHops). Owner carries the home rank as
	// a fresh routing hint; the source counts bounces and eventually
	// abandons the message instead of chasing a broken route forever.
	CtlNackLoop
)

// Message is one unit of fabric traffic. Payload is opaque to the fabric;
// Wire is the accounted on-the-wire size in bytes (header + payload).
type Message struct {
	Kind uint8 // runtime-defined discriminator, opaque here
	Ctl  uint8 // CtlNone for runtime traffic

	Src int // originating rank
	Dst int // resolved rank, or ByGVA

	// Target is the global address the message operates on. For
	// GVA-routed and DMA messages the fabric inspects its block number;
	// otherwise it is along for the ride.
	Target gas.GVA

	// DMA marks one-sided traffic: on arrival at the owner the NIC
	// performs the transfer itself (no host receive overhead). Parcels
	// are two-sided and always cross the host on delivery.
	DMA bool

	Payload any
	Wire    int

	// Hops counts in-network forwards, for stats and loop detection.
	Hops int

	// Block is the routing key, cached from Target at injection.
	Block gas.BlockID

	// Owner piggybacks owner information on control messages.
	Owner int

	// Nacked carries the original message inside a CtlNack so the source
	// can resend it without reconstructing state.
	Nacked *Message

	// OpID correlates one-sided operations with their completions; the
	// fabric carries it opaquely.
	OpID uint64

	// N is a request length for one-sided reads, carried opaquely.
	N uint32

	// RelChan/RelSeq/RelCum belong to the runtime's reliable-delivery
	// layer and are carried opaquely: the channel key, the per-channel
	// sequence number (0 = untracked), and the cumulative ack horizon on
	// ack messages.
	RelChan int32
	RelSeq  uint64
	RelCum  uint64

	// MigCtl marks migration-protocol parcels so retransmissions of them
	// can be reported separately (a lost commit is the interesting case).
	MigCtl bool

	// Bounces counts hop-budget NACKs this message has already suffered
	// at its sender; past a small cap the sender abandons it.
	Bounces int
}

// wireHeader approximates the fixed per-message header size the codec and
// NIC descriptors contribute.
const wireHeader = 32
