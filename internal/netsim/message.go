package netsim

import (
	"sync"

	"nmvgas/internal/gas"
)

// ByGVA as a destination asks the source NIC to resolve the destination
// from the message's Target address (the network-managed path). Explicit
// ranks mean the host already resolved the destination in software.
const ByGVA = -1

// Ctl values classify fabric-internal control traffic.
const (
	// CtlNone marks ordinary runtime traffic.
	CtlNone uint8 = iota
	// CtlTableUpdate is consumed by the receiving NIC: it installs a
	// block→owner entry pushed by a forwarding NIC. It never reaches the
	// host.
	CtlTableUpdate
	// CtlNack is delivered to the source host after a message arrived
	// somewhere that could not accept it; the runtime re-resolves and
	// resends. Owner carries the correct owner when the NACKing side
	// knew it, else -1.
	CtlNack
	// CtlNackLoop is a CtlNack raised because a message exhausted its
	// forward-hop budget (Policy.MaxHops). Owner carries the home rank as
	// a fresh routing hint; the source counts bounces and eventually
	// abandons the message instead of chasing a broken route forever.
	CtlNackLoop
	// CtlTableBatch is a batched CtlTableUpdate: its payload carries many
	// block→owner entries (see AppendTableEntry), installed by the
	// receiving NIC in one deferred event. The eager-broadcast mirror
	// emits one of these per NIC per migration burst instead of one
	// CtlTableUpdate per block.
	CtlTableBatch
)

// Message is one unit of fabric traffic. Payload is opaque to the fabric;
// Wire is the accounted on-the-wire size in bytes (header + payload).
type Message struct {
	Kind uint8 // runtime-defined discriminator, opaque here
	Ctl  uint8 // CtlNone for runtime traffic

	Src int // originating rank
	Dst int // resolved rank, or ByGVA

	// Target is the global address the message operates on. For
	// GVA-routed and DMA messages the fabric inspects its block number;
	// otherwise it is along for the ride.
	Target gas.GVA

	// DMA marks one-sided traffic: on arrival at the owner the NIC
	// performs the transfer itself (no host receive overhead). Parcels
	// are two-sided and always cross the host on delivery.
	DMA bool

	// Read marks one-sided read traffic (get requests). Reads of a
	// replicated block may be steered to a replica holder instead of
	// the owner (NIC readRoutes under GVA routing, host replica routes
	// otherwise); all other traffic strictly follows ownership.
	Read bool

	// Payload is the opaque application bytes. A typed slice (rather than
	// any) keeps the hot path free of interface-boxing allocations.
	Payload []byte
	Wire    int

	// Hops counts in-network forwards, for stats and loop detection.
	Hops int

	// Block is the routing key, cached from Target at injection.
	Block gas.BlockID

	// Owner piggybacks owner information on control messages.
	Owner int

	// Nacked carries the original message inside a CtlNack so the source
	// can resend it without reconstructing state.
	Nacked *Message

	// OpID correlates one-sided operations with their completions; the
	// fabric carries it opaquely.
	OpID uint64

	// N is a request length for one-sided reads, carried opaquely.
	N uint32

	// RelChan/RelSeq/RelCum belong to the runtime's reliable-delivery
	// layer and are carried opaquely: the channel key, the per-channel
	// sequence number (0 = untracked), and the cumulative ack horizon on
	// ack messages.
	RelChan int32
	RelSeq  uint64
	RelCum  uint64

	// MigCtl marks migration-protocol parcels so retransmissions of them
	// can be reported separately (a lost commit is the interesting case).
	MigCtl bool

	// Bounces counts hop-budget NACKs this message has already suffered
	// at its sender; past a small cap the sender abandons it.
	Bounces int

	// Epoch stamps control pushes (CtlTableUpdate/CtlTableBatch) with the
	// sender's membership epoch. A receiving NIC whose table already
	// trusts a newer epoch ignores the push, so a stale in-flight update
	// cannot resurrect a route to a dead or re-homed locality. Zero on
	// ordinary traffic.
	Epoch uint64

	// Scatter marks a coalesced batch whose payload is a sequence of
	// per-parcel GVA sub-headers (see AppendScatterRecord). A GVA-routing
	// NIC splits such a batch on arrival: it translates every record
	// against its own tables, hands the resident ones to the host in a
	// single up-call, and forwards the movers in-network — no host-side
	// re-route. Only untracked batches scatter (RelSeq == 0): splitting a
	// reliably-tracked message would multiply its sequence number across
	// hosts and break the receive dedup.
	Scatter bool

	// PayloadPooled marks Payload as borrowed from the runtime's wire-
	// buffer pool; the terminal consumer returns it. On requests it also
	// grants the responder permission to answer from a pooled buffer
	// (the requester promises to copy out and release).
	PayloadPooled bool
}

// wireHeader approximates the fixed per-message header size the codec and
// NIC descriptors contribute.
const wireHeader = 32

// msgPool recycles Message structs on the wall-clock (goroutine) engine's
// fast path. The DES engine never recycles: its NIC model legitimately
// retains delivered messages inside deferred table-update events, so
// pooling there would hand a live message to a new sender.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// NewMessage returns a zeroed Message, reusing a pooled one when
// available.
//
// Ownership rules (see DESIGN.md "Fast path & cost of the substrate"):
// a Message has exactly one owner at a time. The sender owns it until it
// hands it to the transport; the transport owns it until it hands it to a
// host handler; the handler that consumes a message terminally — runs its
// action, completes its op, or answers it — is the one that may Release
// it. Paths that retain the message (queueIfMoving parks, CtlNack's
// Nacked back-pointer, stale-delivery re-routes) transfer ownership with
// the pointer and must NOT Release.
func NewMessage() *Message { return msgPool.Get().(*Message) }

// Release zeroes m and returns it to the pool. After Release the caller
// must not touch m. Zeroing drops the Payload/Nacked pointers but does
// not disturb their referents, so slices aliased out of a released
// message's payload stay valid.
func (m *Message) Release() {
	*m = Message{}
	msgPool.Put(m)
}
