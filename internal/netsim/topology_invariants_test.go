package netsim

import (
	"math/rand"
	"strings"
	"testing"
)

// Satellite: topology invariants shared by every Topology implementation.
// Hops must be symmetric, self-distance must be the minimum, and
// bandwidth derating can only slow traffic down (factor ≥ 1).

func topologiesUnderTest() map[string]Topology {
	return map[string]Topology{
		"crossbar":  Crossbar{},
		"two-tier":  NewTwoTier(8, 4),
		"fat-tree":  NewFatTree(4, 4, 2, 2.5),
		"dragonfly": NewDragonfly(16, 4),
	}
}

func TestTopologyHopsSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const ranks = 256
	for name, top := range topologiesUnderTest() {
		for i := 0; i < 2000; i++ {
			a, b := rng.Intn(ranks), rng.Intn(ranks)
			if top.Hops(a, b) != top.Hops(b, a) {
				t.Fatalf("%s: Hops(%d,%d)=%d but Hops(%d,%d)=%d",
					name, a, b, top.Hops(a, b), b, a, top.Hops(b, a))
			}
			if top.BWFactor(a, b) != top.BWFactor(b, a) {
				t.Fatalf("%s: BWFactor asymmetric at (%d,%d)", name, a, b)
			}
		}
	}
}

func TestTopologySelfDistance(t *testing.T) {
	for name, top := range topologiesUnderTest() {
		for _, r := range []int{0, 1, 7, 63, 255} {
			if h := top.Hops(r, r); h != 1 {
				t.Fatalf("%s: Hops(%d,%d) = %d; want 1 (loopback is modeled as one hop)", name, r, r, h)
			}
			if f := top.BWFactor(r, r); f != 1 {
				t.Fatalf("%s: BWFactor(%d,%d) = %v; want 1", name, r, r, f)
			}
		}
	}
}

func TestTopologyBWFactorAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const ranks = 512
	for name, top := range topologiesUnderTest() {
		for i := 0; i < 2000; i++ {
			a, b := rng.Intn(ranks), rng.Intn(ranks)
			if f := top.BWFactor(a, b); f < 1 {
				t.Fatalf("%s: BWFactor(%d,%d) = %v < 1 — derating cannot speed traffic up", name, a, b, f)
			}
		}
	}
}

// TestFatTreeLevelMonotonicity: hop count and bandwidth derating both
// climb as a pair crosses wider structure — intra-leaf < intra-pod <
// inter-pod.
func TestFatTreeLevelMonotonicity(t *testing.T) {
	ft := NewFatTree(4, 4, 2, 2) // leaves of 4, pods of 16
	sameLeaf := [2]int{0, 3}
	samePod := [2]int{0, 5}
	crossPod := [2]int{0, 17}
	hl := ft.Hops(sameLeaf[0], sameLeaf[1])
	hp := ft.Hops(samePod[0], samePod[1])
	hx := ft.Hops(crossPod[0], crossPod[1])
	if !(hl < hp && hp < hx) {
		t.Fatalf("fat-tree hops not monotone across levels: leaf=%d pod=%d cross=%d", hl, hp, hx)
	}
	if hl != 1 || hp != 3 || hx != 5 {
		t.Fatalf("fat-tree hop levels = %d/%d/%d; want 1/3/5", hl, hp, hx)
	}
	bl := ft.BWFactor(sameLeaf[0], sameLeaf[1])
	bp := ft.BWFactor(samePod[0], samePod[1])
	bx := ft.BWFactor(crossPod[0], crossPod[1])
	if !(bl <= bp && bp <= bx) {
		t.Fatalf("fat-tree BW derating not monotone: %v/%v/%v", bl, bp, bx)
	}
	if bl != 1 || bp != 2 || bx != 4 {
		t.Fatalf("fat-tree BW factors = %v/%v/%v; want 1/2/4", bl, bp, bx)
	}
	// Randomized: hop count at any pair matches the level implied by
	// leaf/pod membership, and derating matches the hop level.
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 2000; i++ {
		a, b := rng.Intn(256), rng.Intn(256)
		wantH := 1
		switch {
		case a/16 != b/16:
			wantH = 5
		case a/4 != b/4:
			wantH = 3
		}
		if h := ft.Hops(a, b); h != wantH {
			t.Fatalf("fat-tree Hops(%d,%d) = %d; want %d", a, b, h, wantH)
		}
	}
}

func TestDragonflyLevels(t *testing.T) {
	df := NewDragonfly(16, 4)
	if h := df.Hops(0, 15); h != 1 {
		t.Fatalf("intra-group hops = %d; want 1", h)
	}
	if h := df.Hops(0, 16); h != 3 {
		t.Fatalf("inter-group hops = %d; want 3 (local, global, local)", h)
	}
	if f := df.BWFactor(0, 15); f != 1 {
		t.Fatalf("intra-group BW factor = %v; want 1", f)
	}
	if f := df.BWFactor(0, 16); f != 4 {
		t.Fatalf("inter-group BW factor = %v; want the global oversubscription 4", f)
	}
}

func TestMinHopsDefaults(t *testing.T) {
	if MinHops(nil) != 1 {
		t.Fatal("MinHops(nil) != 1")
	}
	for name, top := range topologiesUnderTest() {
		if MinHops(top) != 1 {
			t.Fatalf("%s: MinHops != 1", name)
		}
	}
}

// customMinHops exercises the optional interface escape hatch.
type customMinHops struct{ Crossbar }

func (customMinHops) MinHops() int { return 3 }

func TestMinHopsCustomInterface(t *testing.T) {
	if h := MinHops(customMinHops{}); h != 3 {
		t.Fatalf("custom MinHops = %d; want 3", h)
	}
}

func TestParseTopology(t *testing.T) {
	cases := []struct {
		spec string
		name string // expected Name() prefix
	}{
		{"", "crossbar"},
		{"crossbar", "crossbar"},
		{"two-tier", "two-tier"},
		{"two-tier:pod=8,oversub=2", "two-tier(pod=8"},
		{"fat-tree", "fat-tree"},
		{"fat-tree:leaf=4,pod=4,edge=2,core=3", "fat-tree(leaf=4,pod=4"},
		{"dragonfly", "dragonfly"},
		{"dragonfly:group=32,oversub=8", "dragonfly(group=32"},
	}
	for _, c := range cases {
		top, err := ParseTopology(c.spec, 64)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", c.spec, err)
		}
		if !strings.HasPrefix(top.Name(), c.name) {
			t.Fatalf("ParseTopology(%q).Name() = %q; want prefix %q", c.spec, top.Name(), c.name)
		}
	}
	for _, bad := range []string{
		"torus",                 // unknown topology
		"two-tier:pod",          // not key=value
		"two-tier:pod=0",        // below minimum
		"two-tier:oversub=0.5",  // factor < 1
		"fat-tree:leaf=x",       // not an integer
		"dragonfly:oversub=abc", // not a float
	} {
		if _, err := ParseTopology(bad, 64); err == nil {
			t.Fatalf("ParseTopology(%q) accepted a bad spec", bad)
		}
	}
	// Defaults scale with the rank count: the balanced shape uses
	// √ranks-sized groups.
	top, err := ParseTopology("dragonfly", 256)
	if err != nil {
		t.Fatal(err)
	}
	df := top.(Dragonfly)
	if df.GroupSize != 16 {
		t.Fatalf("default dragonfly group for 256 ranks = %d; want 16", df.GroupSize)
	}
}
