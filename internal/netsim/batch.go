package netsim

import (
	"encoding/binary"

	"nmvgas/internal/gas"
)

// Batch wire formats shared by the runtime's coalescer and the NIC's
// scatter engine. Two record shapes live here:
//
//   - scatter records, the payload of a coalesced parcel batch:
//     [u32 len][len bytes of encoded parcel] repeated. Each record's
//     routing GVA is the target field at a fixed offset inside the
//     encoded parcel header (the runtime's parcel codec puts it at
//     bytes 4..11) — the NIC extracts it like hardware matching a
//     fixed-offset header field, with no parcel decode and no
//     duplicated sub-header bytes on the wire.
//
//   - table entries, the payload of a CtlTableBatch control message:
//     [u64 block][u32 owner] repeated.

// scatterHdr is the per-record framing overhead of a scatter record.
const scatterHdr = 4

// scatterGVAOff is where the routing GVA sits inside an encoded record,
// mirroring the parcel codec's header layout (asserted by a runtime
// test so the two cannot drift apart silently).
const scatterGVAOff = 4

// ScatterGVA extracts the routing GVA from one encoded record.
func ScatterGVA(enc []byte) gas.GVA {
	return gas.GVA(binary.LittleEndian.Uint64(enc[scatterGVAOff:]))
}

// AppendScatterRecord appends one [len][enc] record to buf.
func AppendScatterRecord(buf []byte, enc []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
	return append(buf, enc...)
}

// ScatterReader iterates the records of a scatter-batch payload.
type ScatterReader struct {
	buf []byte
	off int
}

// NewScatterReader returns a reader over payload.
func NewScatterReader(payload []byte) ScatterReader { return ScatterReader{buf: payload} }

// Next returns the next record's routing GVA and encoded parcel. ok is
// false when the payload is exhausted (or malformed-truncated, which
// the runtime treats as exhaustion and catches at the decode layer). A
// record too short to carry the fixed-offset GVA reports the null GVA;
// the host's parcel decode rejects it loudly.
func (r *ScatterReader) Next() (g gas.GVA, enc []byte, ok bool) {
	if r.off+scatterHdr > len(r.buf) {
		return 0, nil, false
	}
	n := int(binary.LittleEndian.Uint32(r.buf[r.off:]))
	r.off += scatterHdr
	if n < 0 || r.off+n > len(r.buf) {
		return 0, nil, false
	}
	enc = r.buf[r.off : r.off+n]
	r.off += n
	if len(enc) >= scatterGVAOff+8 {
		g = ScatterGVA(enc)
	}
	return g, enc, true
}

// tableEntry is the wire size of one CtlTableBatch entry.
const tableEntry = 12

// AppendTableEntry appends one [block][owner] entry to buf.
func AppendTableEntry(buf []byte, b gas.BlockID, owner int) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b))
	return binary.LittleEndian.AppendUint32(buf, uint32(int32(owner)))
}

// ForEachTableEntry decodes a CtlTableBatch payload.
func ForEachTableEntry(payload []byte, fn func(b gas.BlockID, owner int)) {
	for off := 0; off+tableEntry <= len(payload); off += tableEntry {
		b := gas.BlockID(binary.LittleEndian.Uint64(payload[off:]))
		owner := int(int32(binary.LittleEndian.Uint32(payload[off+8:])))
		fn(b, owner)
	}
}
