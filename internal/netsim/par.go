package netsim

import (
	"fmt"
	"sync"
)

// ParEngine is the conservative-lookahead parallel configuration of the
// discrete-event engine. Ranks are partitioned into contiguous shards,
// each owning one event heap (the same zero-alloc 4-ary heap the classic
// engine uses) and its own clock. Execution proceeds in windows derived
// from the cost model's minimum cross-rank delay L (min link latency ×
// topology-minimum hop count): given the earliest pending event time m,
// every shard drains its events with timestamps in [m, m+L) with no
// synchronization, because any event one rank schedules on another
// cannot land before now+L ≥ m+L — the lookahead guarantee the LogGP
// wire latency provides for free. Cross-shard events travel through
// per-(src,dst) inboxes written only by the source shard's worker and
// merged at the window barrier; work that must see or mutate global
// state (membership transitions, epoch bumps, kills) runs as barrier
// tasks between windows on the single driver goroutine.
//
// Determinism does not come from the barrier alone: equal-time events
// must also pop in an order no worker race can perturb. Every scheduled
// event carries the invariant key (at, srcTag<<48|perRankSeq), where
// perRankSeq is a per-rank counter advanced only by that rank's own
// event stream. Because each rank's stream executes in a fixed order
// regardless of how ranks are grouped into shards, the keys — and
// therefore the total event order and final state — are bit-for-bit
// identical for every shard count, including shards=1. Driver/barrier
// work uses srcTag 1, sorting deterministically before rank traffic.
type ParEngine struct {
	ranks, nshards int
	lookahead      VTime

	driver *Engine   // the façade the harness holds; its heap is the barrier-task queue
	shards []*Engine // one heap + clock per shard

	// perRankSeq is the invariant tie counter; slot r is advanced only by
	// rank r's executing events (one shard) or by the single-threaded
	// driver phase, so it is written race-free without atomics.
	perRankSeq []uint64
	driverSeq  uint64

	// inbox[src*nshards+dst] carries cross-shard events scheduled during
	// a window: written only by shard src's worker, merged by the driver
	// at the barrier.
	inbox [][]event
	// taskStage[s] carries barrier tasks deferred from shard s's worker.
	taskStage [][]event

	// windowEnd is the current window's exclusive bound, published before
	// workers start; running marks the parallel phase (scheduling from an
	// unranked context then is a bug and panics rather than racing).
	windowEnd VTime
	running   bool

	// serial disables worker parallelism: windows execute on the driver
	// goroutine by draining all shard heaps in merged global (at, tie)
	// order — the exact sequence shards=1 executes, so serial runs are
	// bit-identical to shards=1 by construction. Layers above request it
	// (SetSerial) when they hold state the rank partition cannot isolate,
	// e.g. a reliable-delivery dedup store that several receiving ranks
	// legitimately touch within one window. Cross-rank scheduling inside
	// the window is legal in this mode (the merged drain preserves
	// causality), so the lookahead tripwire is off.
	serial bool

	workers  []*parWorker
	launched []int
	once     sync.Once
	closed   bool
}

type parWorker struct {
	eng   *Engine
	start chan VTime
	done  chan struct{}
}

// NewParEngine builds a sharded engine over ranks localities split into
// nshards contiguous shards, with the given lookahead window (derive it
// with Model.Latency × MinHops(topology); it must not exceed the true
// minimum cross-rank delay or the lookahead guarantee is void — AtRank
// panics loudly if a send ever violates it). Returns the driver façade;
// shards=1 is the sequential degenerate case, run on the driver
// goroutine with no worker handoff.
func NewParEngine(ranks, nshards int, lookahead VTime) *Engine {
	if ranks < 1 {
		panic(fmt.Sprintf("netsim: par engine with %d ranks", ranks))
	}
	if nshards < 1 {
		panic(fmt.Sprintf("netsim: par engine with %d shards", nshards))
	}
	if nshards > ranks {
		nshards = ranks
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("netsim: par engine lookahead %v < 1ns", lookahead))
	}
	p := &ParEngine{
		ranks:      ranks,
		nshards:    nshards,
		lookahead:  lookahead,
		perRankSeq: make([]uint64, ranks),
		inbox:      make([][]event, nshards*nshards),
		taskStage:  make([][]event, nshards),
	}
	p.driver = &Engine{par: p, shard: -1, curRank: -1}
	p.shards = make([]*Engine, nshards)
	for s := range p.shards {
		p.shards[s] = &Engine{par: p, shard: int32(s), curRank: -1}
	}
	return p.driver
}

// Driver returns the driver façade.
func (p *ParEngine) Driver() *Engine { return p.driver }

// Shards returns the shard count.
func (p *ParEngine) Shards() int { return p.nshards }

// Lookahead returns the conservative window size.
func (p *ParEngine) Lookahead() VTime { return p.lookahead }

// SetSerial switches window execution to the merged sequential drain
// (see the serial field). Call it before the first Run/Step; it exists
// for runs whose upper layers share state across ranks in ways the
// shard partition cannot make race-free — determinism is preserved (the
// serial order is exactly the shards=1 order), parallel speedup is not.
func (p *ParEngine) SetSerial(on bool) { p.serial = on }

// Serial reports whether windows run in merged sequential order.
func (p *ParEngine) Serial() bool { return p.serial }

// shardOf maps a rank to its contiguous shard.
func (p *ParEngine) shardOf(rank int) int {
	if rank < 0 || rank >= p.ranks {
		panic(fmt.Sprintf("netsim: rank %d outside world of %d", rank, p.ranks))
	}
	return rank * p.nshards / p.ranks
}

// nextTie stamps the invariant ordering key for an event scheduled from
// engine e's current context.
func (p *ParEngine) nextTie(e *Engine) uint64 {
	r := e.curRank
	if r < 0 {
		if p.running {
			panic("netsim: unranked scheduling from a sharded worker context (use AtRank)")
		}
		p.driverSeq++
		return 1<<48 | p.driverSeq
	}
	p.perRankSeq[r]++
	return uint64(r+2)<<48 | p.perRankSeq[r]
}

// barrierPush queues fn as a barrier task at absolute time t (driver
// phase only — worker-phase deferral goes through atBarrier's staging).
func (p *ParEngine) barrierPush(e *Engine, t VTime, fn func()) {
	p.driver.q.push(event{at: t, tie: p.nextTie(e), rank: -1, fn: fn})
}

// atBarrier defers fn to the next barrier from engine e's context.
func (p *ParEngine) atBarrier(e *Engine, fn func()) {
	if !p.running || e.shard < 0 {
		p.barrierPush(e, maxVTime(e.now, p.driver.now), fn)
		return
	}
	ev := event{at: e.now, tie: p.nextTie(e), rank: -1, fn: fn}
	p.taskStage[e.shard] = append(p.taskStage[e.shard], ev)
}

func maxVTime(a, b VTime) VTime {
	if a > b {
		return a
	}
	return b
}

// atRank schedules fn at (rank, t) from engine e's context.
func (p *ParEngine) atRank(e *Engine, rank int, t VTime, fn func()) {
	dst := p.shardOf(rank)
	ev := event{at: t, tie: p.nextTie(e), rank: int32(rank), fn: fn}
	if !p.running {
		// Driver phase: all heaps are quiescent, push directly.
		tq := p.shards[dst]
		if t < tq.now {
			panic(fmt.Sprintf("netsim: scheduling at %v before shard clock %v", t, tq.now))
		}
		tq.q.push(ev)
		return
	}
	if int32(rank) == e.curRank {
		// Self-scheduling stays inside the current window legally.
		if t < e.now {
			panic(fmt.Sprintf("netsim: scheduling at %v before now %v", t, e.now))
		}
		e.q.push(ev)
		return
	}
	if p.serial {
		// Merged sequential drain: one goroutine owns every heap, and the
		// global (at, tie) pop order makes any push at t ≥ the scheduling
		// event's time causally safe, window boundary or not.
		if t < e.now {
			panic(fmt.Sprintf("netsim: scheduling at %v before now %v", t, e.now))
		}
		p.shards[dst].q.push(ev)
		return
	}
	// Cross-rank during a window: the conservative-lookahead contract
	// says it cannot land inside the current window. A violation means
	// the lookahead was derived wrong (some path is cheaper than L) and
	// determinism would silently break — fail loudly instead.
	if t < p.windowEnd {
		panic(fmt.Sprintf(
			"netsim: lookahead violation: rank %d scheduled on rank %d at %v inside window ending %v",
			e.curRank, rank, t, p.windowEnd))
	}
	if dst == int(e.shard) {
		e.q.push(ev)
		return
	}
	p.inbox[int(e.shard)*p.nshards+dst] = append(p.inbox[int(e.shard)*p.nshards+dst], ev)
}

// mergeStaged moves worker-deferred barrier tasks and cross-shard inbox
// events into their destination heaps. Driver phase only.
func (p *ParEngine) mergeStaged() {
	for s := range p.taskStage {
		for _, ev := range p.taskStage[s] {
			p.driver.q.push(ev)
		}
		p.taskStage[s] = p.taskStage[s][:0]
	}
	for i := range p.inbox {
		if len(p.inbox[i]) == 0 {
			continue
		}
		dst := p.shards[i%p.nshards]
		for _, ev := range p.inbox[i] {
			dst.q.push(ev)
		}
		p.inbox[i] = p.inbox[i][:0]
	}
}

// minEventTime returns the earliest pending shard event time.
func (p *ParEngine) minEventTime() (VTime, bool) {
	var m VTime
	ok := false
	for _, s := range p.shards {
		if len(s.q) == 0 {
			continue
		}
		if !ok || s.q[0].at < m {
			m = s.q[0].at
			ok = true
		}
	}
	return m, ok
}

// advance runs barrier tasks due before the next event horizon, then
// executes one window across all shards and merges. Returns false when
// nothing remains.
func (p *ParEngine) advance() bool {
	p.mergeStaged()
	for {
		em, haveEv := p.minEventTime()
		haveTask := len(p.driver.q) > 0
		if !haveEv && !haveTask {
			return false
		}
		if haveTask && (!haveEv || p.driver.q[0].at <= em) {
			ev := p.driver.q.pop()
			p.driver.now = maxVTime(p.driver.now, ev.at)
			p.driver.curRank = -1
			p.driver.processed++
			ev.fn()
			p.mergeStaged()
			continue
		}
		// No barrier work due at or before the horizon: open a window.
		we := em + p.lookahead
		if haveTask && p.driver.q[0].at < we {
			// Never straddle a pending barrier task: it must observe all
			// events before its time and none after.
			we = p.driver.q[0].at
		}
		p.runWindow(we)
		p.mergeStaged()
		for _, s := range p.shards {
			if s.now < we {
				s.now = we
			}
			s.curRank = -1
		}
		if p.driver.now < we {
			p.driver.now = we
		}
		return true
	}
}

// runWindow drains every shard's events in [·, we) — in parallel when
// more than one shard has work.
func (p *ParEngine) runWindow(we VTime) {
	p.windowEnd = we
	active := 0
	last := -1
	for s, e := range p.shards {
		if len(e.q) > 0 && e.q[0].at < we {
			active++
			last = s
		}
	}
	if active == 0 {
		return
	}
	p.running = true
	if p.serial && p.nshards > 1 {
		// Always the merged drain, even with one active shard: a serial
		// window may legally push cross-shard events below we, which only
		// the all-heaps rescan picks up.
		p.drainMerged(we)
		p.running = false
		return
	}
	if active == 1 || p.nshards == 1 {
		drainShard(p.shards[last], we)
		p.running = false
		return
	}
	p.startWorkers()
	p.launched = p.launched[:0]
	for s, e := range p.shards {
		if len(e.q) > 0 && e.q[0].at < we {
			p.workers[s].start <- we
			p.launched = append(p.launched, s)
		}
	}
	for _, s := range p.launched {
		<-p.workers[s].done
	}
	p.running = false
}

// startWorkers lazily spawns one persistent goroutine per shard.
func (p *ParEngine) startWorkers() {
	p.once.Do(func() {
		p.workers = make([]*parWorker, p.nshards)
		for s := range p.workers {
			w := &parWorker{
				eng:   p.shards[s],
				start: make(chan VTime),
				done:  make(chan struct{}),
			}
			p.workers[s] = w
			go w.loop()
		}
	})
}

func (w *parWorker) loop() {
	for we := range w.start {
		drainShard(w.eng, we)
		w.done <- struct{}{}
	}
}

// drainMerged executes every shard's events below we in global (at, tie)
// order on the calling goroutine — the shards=1 sequence, replayed over N
// heaps. Shard count is small, so the linear min scan per pop is cheaper
// than maintaining a heap-of-heaps.
func (p *ParEngine) drainMerged(we VTime) {
	for {
		var best *Engine
		for _, s := range p.shards {
			if len(s.q) == 0 || s.q[0].at >= we {
				continue
			}
			if best == nil || evLess(s.q[0], best.q[0]) {
				best = s
			}
		}
		if best == nil {
			return
		}
		ev := best.q.pop()
		best.now = ev.at
		best.curRank = ev.rank
		best.processed++
		ev.fn()
		best.curRank = -1
	}
}

// drainShard executes e's events with timestamps strictly below we.
func drainShard(e *Engine, we VTime) {
	for len(e.q) > 0 && e.q[0].at < we {
		ev := e.q.pop()
		e.now = ev.at
		e.curRank = ev.rank
		e.processed++
		ev.fn()
	}
	e.curRank = -1
}

// run advances windows until every heap, inbox, and barrier queue drains.
func (p *ParEngine) run() {
	for p.advance() {
	}
}

// runUntil advances windows until done reports true at a barrier, or
// everything drains. Both the sharded sequential case (shards=1) and
// every parallel shard count quantize the check identically, which is
// what makes their completions — and everything scheduled after —
// bit-for-bit comparable.
func (p *ParEngine) runUntil(done func() bool) bool {
	if done() {
		return true
	}
	for p.advance() {
		if done() {
			return true
		}
	}
	return done()
}

// runFor advances windows while work remains at or before deadline, then
// clamps the driver clock forward.
func (p *ParEngine) runFor(deadline VTime) {
	for {
		p.mergeStaged()
		em, haveEv := p.minEventTime()
		haveTask := len(p.driver.q) > 0
		next := VTime(0)
		switch {
		case haveEv && haveTask:
			next = minVTime(em, p.driver.q[0].at)
		case haveEv:
			next = em
		case haveTask:
			next = p.driver.q[0].at
		default:
			break
		}
		if (!haveEv && !haveTask) || next > deadline {
			break
		}
		if !p.advance() {
			break
		}
	}
	if p.driver.now < deadline {
		p.driver.now = deadline
	}
	for _, s := range p.shards {
		if s.now < deadline {
			s.now = deadline
		}
	}
}

func minVTime(a, b VTime) VTime {
	if a < b {
		return a
	}
	return b
}

// processedAll sums executed events across the driver and every shard.
func (p *ParEngine) processedAll() uint64 {
	n := p.driver.processed
	for _, s := range p.shards {
		n += s.processed
	}
	return n
}

// pendingAll sums scheduled-but-unexecuted events everywhere.
func (p *ParEngine) pendingAll() int {
	n := len(p.driver.q)
	for _, s := range p.shards {
		n += len(s.q)
	}
	for i := range p.inbox {
		n += len(p.inbox[i])
	}
	for s := range p.taskStage {
		n += len(p.taskStage[s])
	}
	return n
}

// Shutdown stops the worker goroutines. The engine must be quiescent
// (no window in flight); further parallel windows after Shutdown panic.
func (p *ParEngine) Shutdown() {
	if p.closed || p.workers == nil {
		p.closed = true
		return
	}
	p.closed = true
	for _, w := range p.workers {
		close(w.start)
	}
	p.workers = nil
}

// pendingByRank attributes scheduled-but-unexecuted events across the
// driver heap, shard heaps, inboxes, and staged barrier tasks to their
// ranks (see Engine.PendingByRank). Only legal between windows (driver
// phase), where the workers are parked and every queue is stable.
func (p *ParEngine) pendingByRank(counts []int) {
	countEvents(p.driver.q, counts)
	for _, s := range p.shards {
		countEvents(s.q, counts)
	}
	for i := range p.inbox {
		countEvents(p.inbox[i], counts)
	}
	for s := range p.taskStage {
		countEvents(p.taskStage[s], counts)
	}
}
