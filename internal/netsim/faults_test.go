package netsim

import (
	"fmt"
	"testing"

	"nmvgas/internal/gas"
)

func TestFaultInjectorDeterministic(t *testing.T) {
	// Same plan, same message sequence, same seed: byte-identical fault
	// schedule and counters.
	plan := FaultPlan{Seed: 42, Drop: 0.2, Duplicate: 0.2, DelayProb: 0.2, TableLoss: 0.1}
	run := func() ([]FaultAction, FaultStats) {
		fi := NewFaultInjector(plan)
		var acts []FaultAction
		for i := 0; i < 200; i++ {
			acts = append(acts, fi.Decide(&Message{Src: i % 4, Dst: (i + 1) % 4, Wire: 64}))
		}
		return acts, fi.Snapshot()
	}
	a1, s1 := run()
	a2, s2 := run()
	if fmt.Sprintf("%+v", a1) != fmt.Sprintf("%+v", a2) {
		t.Fatal("same seed produced different fault schedules")
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different stats: %+v vs %+v", s1, s2)
	}
	if s1.Dropped == 0 || s1.Duplicated == 0 || s1.Delayed == 0 {
		t.Fatalf("200 draws at p=0.2 injected nothing: %+v", s1)
	}
	// A different seed must produce a different schedule.
	plan.Seed = 43
	fi := NewFaultInjector(plan)
	var a3 []FaultAction
	for i := 0; i < 200; i++ {
		a3 = append(a3, fi.Decide(&Message{Src: i % 4, Dst: (i + 1) % 4, Wire: 64}))
	}
	if fmt.Sprintf("%+v", a1) == fmt.Sprintf("%+v", a3) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestFaultInjectorTargetedCtlDrop(t *testing.T) {
	fi := NewFaultInjector(FaultPlan{
		Seed:       1,
		DropNthCtl: map[uint8]int{CtlTableUpdate: 3},
	})
	var dropped []int
	for i := 1; i <= 5; i++ {
		a := fi.Decide(&Message{Ctl: CtlTableUpdate, Src: 0, Dst: 1, Wire: 32})
		if a.Drop {
			dropped = append(dropped, i)
		}
	}
	if len(dropped) != 1 || dropped[0] != 3 {
		t.Fatalf("dropped updates %v, want exactly the 3rd", dropped)
	}
	st := fi.Snapshot()
	if st.TargetedDrops != 1 || st.Dropped != 0 {
		t.Fatalf("targeted drop miscounted: %+v", st)
	}
	// Other Ctl classes keep their own count and are untouched.
	if a := fi.Decide(&Message{Ctl: CtlNack, Src: 0, Dst: 1, Wire: 32}); a.Drop {
		t.Fatal("untargeted ctl class dropped")
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("drop=0.05, dup=0.02,reorder=1,seed=7,maxdelay=500,tableloss=0.01,dropctl=1:3")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultPlan{
		Seed: 7, Drop: 0.05, Duplicate: 0.02, Reorder: true,
		MaxDelay: 500, TableLoss: 0.01, DropNthCtl: map[uint8]int{1: 3},
	}
	if fmt.Sprintf("%+v", p) != fmt.Sprintf("%+v", want) {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if p, err := ParseFaultPlan(""); err != nil || p.Enabled() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	for _, bad := range []string{"drop", "bogus=1", "drop=x", "dropctl=1", "dropctl=a:b"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Fatalf("spec %q did not error", bad)
		}
	}
}

func TestDisabledPlanHasNilInjector(t *testing.T) {
	if fi := NewFaultInjector(FaultPlan{Seed: 9}); fi != nil {
		t.Fatal("seed-only plan built an injector")
	}
	if s := (*FaultInjector)(nil).Snapshot(); s != (FaultStats{}) {
		t.Fatalf("nil injector snapshot %+v", s)
	}
}

func TestFabricDropAndDuplicate(t *testing.T) {
	// Certain drop loses everything; certain duplication doubles
	// deliveries. Both show up in the per-NIC counters.
	h := newFaultHarness(t, FaultPlan{Seed: 1, Drop: 1})
	h.fab.NIC(0).Send(&Message{Src: 0, Dst: 1, Wire: 64})
	h.eng.Run()
	if got := len(h.hostRx[1]); got != 0 {
		t.Fatalf("certain drop delivered %d messages", got)
	}
	if h.fab.NIC(0).Stats.Dropped != 1 {
		t.Fatalf("Dropped = %d", h.fab.NIC(0).Stats.Dropped)
	}

	h = newFaultHarness(t, FaultPlan{Seed: 1, Duplicate: 1})
	h.fab.NIC(0).Send(&Message{Src: 0, Dst: 1, Wire: 64})
	h.eng.Run()
	if got := len(h.hostRx[1]); got != 2 {
		t.Fatalf("certain duplication delivered %d messages, want 2", got)
	}
	if h.fab.NIC(0).Stats.Duplicated != 1 {
		t.Fatalf("Duplicated = %d", h.fab.NIC(0).Stats.Duplicated)
	}
}

func newFaultHarness(t *testing.T, plan FaultPlan) *testHarness {
	t.Helper()
	h := &testHarness{eng: NewEngine()}
	h.fab = NewFabric(h.eng, FabricConfig{
		Ranks:  2,
		Model:  DefaultModel(),
		Faults: plan,
	})
	h.resident = make([]map[gas.BlockID]bool, 2)
	h.hostRx = make([][]*Message, 2)
	h.dmaRx = make([][]*Message, 2)
	for r := 0; r < 2; r++ {
		r := r
		h.resident[r] = make(map[gas.BlockID]bool)
		nic := h.fab.NIC(r)
		nic.Resident = func(b gas.BlockID) bool { return h.resident[r][b] }
		nic.HostDeliver = func(m *Message) { h.hostRx[r] = append(h.hostRx[r], m) }
		nic.DMADeliver = func(m *Message) { h.dmaRx[r] = append(h.dmaRx[r], m) }
	}
	return h
}

func TestMaybeLoseEntry(t *testing.T) {
	tt := NewTransTable(8)
	tt.Update(1, 0)
	tt.Update(2, 1)
	tt.Update(3, 2)
	fi := NewFaultInjector(FaultPlan{Seed: 5, TableLoss: 1})
	if !fi.MaybeLoseEntry(tt) {
		t.Fatal("certain table loss did not fire")
	}
	if tt.Len() != 2 {
		t.Fatalf("table len %d after loss, want 2", tt.Len())
	}
	if fi.Snapshot().TableEntriesLost != 1 {
		t.Fatalf("TableEntriesLost = %d", fi.Snapshot().TableEntriesLost)
	}
	// Draining the table: losses stop reporting once empty.
	for tt.Len() > 0 {
		fi.MaybeLoseEntry(tt)
	}
	if fi.MaybeLoseEntry(tt) {
		t.Fatal("loss reported on an empty table")
	}
	if fi.MaybeLoseEntry(nil) {
		t.Fatal("loss reported on a nil table")
	}
}
