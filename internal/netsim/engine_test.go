package netsim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events ran out of order: %v", got)
		}
	}
}

func TestEngineAfterNesting(t *testing.T) {
	e := NewEngine()
	var fired []VTime
	e.At(10, func() {
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 1 || fired[0] != 15 {
		t.Fatalf("nested After fired at %v", fired)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for past scheduling")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative delay")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 1; i <= 10; i++ {
		e.At(VTime(i), func() { n++ })
	}
	ok := e.RunUntil(func() bool { return n >= 4 })
	if !ok || n != 4 {
		t.Fatalf("RunUntil stopped at n=%d ok=%v", n, ok)
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	if ok := e.RunUntil(func() bool { return n >= 100 }); ok {
		t.Fatal("RunUntil claimed success on unreachable predicate")
	}
	if n != 10 {
		t.Fatalf("queue not drained, n=%d", n)
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	var fired []VTime
	for _, at := range []VTime{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunFor(12)
	if len(fired) != 2 {
		t.Fatalf("RunFor(12) fired %v", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %v after RunFor, want 12", e.Now())
	}
	e.RunFor(8)
	if len(fired) != 4 {
		t.Fatalf("second RunFor fired %v", fired)
	}
}

func TestEngineDeterministicUnderRandomInsertion(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var got []int
		for i := 0; i < 200; i++ {
			i := i
			e.At(VTime(rng.Intn(50)), func() { got = append(got, i) })
		}
		e.Run()
		return got
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
	// And timestamps must be non-decreasing.
	e := NewEngine()
	rng := rand.New(rand.NewSource(7))
	var times []VTime
	for i := 0; i < 100; i++ {
		e.At(VTime(rng.Intn(1000)), func() { times = append(times, e.Now()) })
	}
	e.Run()
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		t.Fatal("event times not monotonic")
	}
}

func TestVTimeString(t *testing.T) {
	cases := map[VTime]string{
		5:                "5ns",
		1500:             "1.500µs",
		2 * Millisecond:  "2.000ms",
		3 * Second:       "3.000s",
		42 * Microsecond: "42.000µs",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(v), got, want)
		}
	}
	if m := (1500 * Nanosecond).Micros(); m != 1.5 {
		t.Errorf("Micros = %v", m)
	}
}

// TestPendingByRank pins the backlog tap the queue-depth watchdog uses:
// AtRank events are attributed to their rank, driver work (At, rank -1)
// is not, and executed events leave the counts.
func TestPendingByRank(t *testing.T) {
	e := NewEngine()
	counts := make([]int, 3)
	e.AtRank(0, 10, func() {})
	e.AtRank(1, 10, func() {})
	e.AtRank(1, 20, func() {})
	e.AtRank(2, 30, func() {})
	e.At(5, func() {}) // driver event: unattributed
	e.PendingByRank(counts)
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("initial backlog %v, want [1 2 1]", counts)
	}
	e.RunFor(15)
	e.PendingByRank(counts)
	if counts[0] != 0 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("backlog after t=15 %v, want [0 1 1]", counts)
	}
	e.Run()
	e.PendingByRank(counts)
	for r, c := range counts {
		if c != 0 {
			t.Fatalf("rank %d still shows %d pending after drain", r, c)
		}
	}
}

// TestPendingByRankSharded covers the sharded scan: events spread over
// shard heaps (and staged barrier tasks) attribute the same way, read
// from driver context between windows.
func TestPendingByRankSharded(t *testing.T) {
	const ranks = 4
	la := 900 * Nanosecond
	drv := NewParEngine(ranks, 2, la)
	counts := make([]int, ranks)
	for r := 0; r < ranks; r++ {
		for i := 0; i <= r; i++ {
			drv.AtRank(r, VTime(1000+100*i), func() {})
		}
	}
	drv.PendingByRank(counts)
	for r := 0; r < ranks; r++ {
		if counts[r] != r+1 {
			t.Fatalf("sharded backlog %v, want [1 2 3 4]", counts)
		}
	}
	drv.Run()
	drv.PendingByRank(counts)
	for r, c := range counts {
		if c != 0 {
			t.Fatalf("rank %d shows %d pending after drain", r, c)
		}
	}
}
