package netsim

import (
	"testing"

	"nmvgas/internal/gas"
)

// testFabric builds a fabric where residency and deliveries are driven by
// simple maps, standing in for the runtime.
type testHarness struct {
	eng      *Engine
	fab      *Fabric
	resident []map[gas.BlockID]bool
	hostRx   [][]*Message
	dmaRx    [][]*Message
}

func newHarness(t *testing.T, ranks int, routing bool, policy Policy, tableCap int) *testHarness {
	t.Helper()
	h := &testHarness{eng: NewEngine()}
	h.fab = NewFabric(h.eng, FabricConfig{
		Ranks:       ranks,
		Model:       DefaultModel(),
		GVARouting:  routing,
		Policy:      policy,
		NICTableCap: tableCap,
	})
	h.resident = make([]map[gas.BlockID]bool, ranks)
	h.hostRx = make([][]*Message, ranks)
	h.dmaRx = make([][]*Message, ranks)
	for r := 0; r < ranks; r++ {
		r := r
		h.resident[r] = make(map[gas.BlockID]bool)
		nic := h.fab.NIC(r)
		nic.Resident = func(b gas.BlockID) bool { return h.resident[r][b] }
		nic.HostDeliver = func(m *Message) { h.hostRx[r] = append(h.hostRx[r], m) }
		nic.DMADeliver = func(m *Message) { h.dmaRx[r] = append(h.dmaRx[r], m) }
	}
	return h
}

func TestFabricDirectDelivery(t *testing.T) {
	h := newHarness(t, 2, false, Policy{}, 0)
	m := &Message{Kind: 9, Dst: 1, Wire: 64}
	h.fab.NIC(0).Send(m)
	h.eng.Run()
	if len(h.hostRx[1]) != 1 || h.hostRx[1][0].Kind != 9 {
		t.Fatalf("rank 1 host got %v", h.hostRx[1])
	}
	if h.eng.Now() <= 0 {
		t.Fatal("delivery took no simulated time")
	}
	// One-way time = tx occupancy + latency.
	model := DefaultModel()
	want := model.TxTime(64) + model.Latency
	if h.eng.Now() != want {
		t.Fatalf("delivery at %v, want %v", h.eng.Now(), want)
	}
}

func TestFabricLargerMessagesTakeLonger(t *testing.T) {
	h := newHarness(t, 2, false, Policy{}, 0)
	h.fab.NIC(0).Send(&Message{Dst: 1, Wire: 64})
	h.eng.Run()
	small := h.eng.Now()

	h2 := newHarness(t, 2, false, Policy{}, 0)
	h2.fab.NIC(0).Send(&Message{Dst: 1, Wire: 64 * 1024})
	h2.eng.Run()
	if h2.eng.Now() <= small {
		t.Fatalf("64KiB (%v) not slower than 64B (%v)", h2.eng.Now(), small)
	}
}

func TestFabricTxOccupancySerializes(t *testing.T) {
	// Two back-to-back sends from one NIC must not overlap on the wire:
	// the second arrives at least TxTime later than the first.
	h := newHarness(t, 2, false, Policy{}, 0)
	var arrivals []VTime
	h.fab.NIC(1).HostDeliver = func(m *Message) { arrivals = append(arrivals, h.eng.Now()) }
	h.fab.NIC(0).Send(&Message{Dst: 1, Wire: 4096})
	h.fab.NIC(0).Send(&Message{Dst: 1, Wire: 4096})
	h.eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	model := DefaultModel()
	if gap := arrivals[1] - arrivals[0]; gap < model.TxTime(4096) {
		t.Fatalf("second arrival only %v after first, want >= %v", gap, model.TxTime(4096))
	}
}

func TestFabricGVARoutedToResidentHome(t *testing.T) {
	h := newHarness(t, 4, true, DefaultPolicy(), 0)
	target := gas.New(2, 50, 0)
	h.resident[2][50] = true
	h.fab.NIC(0).Send(&Message{Dst: ByGVA, Target: target, Wire: 64})
	h.eng.Run()
	if len(h.hostRx[2]) != 1 {
		t.Fatalf("home rank got %d messages", len(h.hostRx[2]))
	}
	if h.hostRx[2][0].Hops != 0 {
		t.Fatal("direct home delivery should not count forwards")
	}
}

func TestFabricInNetworkForwardAfterMigration(t *testing.T) {
	h := newHarness(t, 4, true, DefaultPolicy(), 0)
	target := gas.New(2, 50, 0)
	// Block 50 migrated from home 2 to rank 3: home NIC knows, data at 3.
	h.fab.NIC(2).InstallRoute(50, 3)
	h.resident[3][50] = true

	h.fab.NIC(0).Send(&Message{Dst: ByGVA, Target: target, Wire: 64})
	h.eng.Run()
	if len(h.hostRx[3]) != 1 {
		t.Fatalf("new owner got %d messages", len(h.hostRx[3]))
	}
	if h.hostRx[3][0].Hops != 1 {
		t.Fatalf("Hops = %d, want 1", h.hostRx[3][0].Hops)
	}
	if h.fab.NIC(2).Stats.Forwards != 1 {
		t.Fatalf("home NIC forwards = %d", h.fab.NIC(2).Stats.Forwards)
	}
	if len(h.hostRx[2]) != 0 {
		t.Fatal("home host must not be involved in an in-network forward")
	}
	// PushUpdates: source NIC learned the new owner.
	if o, ok := h.fab.NIC(0).Table.Peek(50); !ok || o != 3 {
		t.Fatalf("source NIC table entry = %d,%v, want 3", o, ok)
	}
	// A second send now goes direct (no forward).
	h.fab.NIC(0).Send(&Message{Dst: ByGVA, Target: target, Wire: 64})
	h.eng.Run()
	if h.fab.NIC(2).Stats.Forwards != 1 {
		t.Fatal("second send still bounced through home")
	}
	if len(h.hostRx[3]) != 2 {
		t.Fatalf("new owner got %d messages total", len(h.hostRx[3]))
	}
}

func TestFabricNoPushUpdatesKeepsBouncing(t *testing.T) {
	pol := Policy{ForwardInNetwork: true, PushUpdates: false}
	h := newHarness(t, 4, true, pol, 0)
	target := gas.New(2, 50, 0)
	h.fab.NIC(2).InstallRoute(50, 3)
	h.resident[3][50] = true

	for i := 0; i < 3; i++ {
		h.fab.NIC(0).Send(&Message{Dst: ByGVA, Target: target, Wire: 64})
	}
	h.eng.Run()
	if h.fab.NIC(2).Stats.Forwards != 3 {
		t.Fatalf("forwards = %d, want 3 (no pushed updates)", h.fab.NIC(2).Stats.Forwards)
	}
	if _, ok := h.fab.NIC(0).Table.Peek(50); ok {
		t.Fatal("source table updated despite PushUpdates=false")
	}
}

func TestFabricNackPolicy(t *testing.T) {
	pol := Policy{ForwardInNetwork: false, PushUpdates: false}
	h := newHarness(t, 4, true, pol, 0)
	target := gas.New(2, 50, 0)
	h.fab.NIC(2).InstallRoute(50, 3)
	h.resident[3][50] = true

	orig := &Message{Kind: 7, Dst: ByGVA, Target: target, Wire: 64}
	h.fab.NIC(0).Send(orig)
	h.eng.Run()
	if len(h.hostRx[0]) != 1 {
		t.Fatalf("source host got %d messages", len(h.hostRx[0]))
	}
	nk := h.hostRx[0][0]
	if nk.Ctl != CtlNack || nk.Owner != 3 || nk.Nacked == nil || nk.Nacked.Kind != 7 {
		t.Fatalf("bad NACK %+v", nk)
	}
	if h.fab.NIC(2).Stats.Nacks != 1 {
		t.Fatalf("nacks = %d", h.fab.NIC(2).Stats.Nacks)
	}
}

func TestFabricDMADelivery(t *testing.T) {
	h := newHarness(t, 2, true, DefaultPolicy(), 0)
	target := gas.New(1, 9, 0)
	h.resident[1][9] = true
	h.fab.NIC(0).Send(&Message{Dst: ByGVA, Target: target, DMA: true, Wire: 4096})
	h.eng.Run()
	if len(h.dmaRx[1]) != 1 {
		t.Fatalf("DMA deliveries = %d", len(h.dmaRx[1]))
	}
	if len(h.hostRx[1]) != 0 {
		t.Fatal("DMA must bypass the host")
	}
}

func TestFabricDMAFaultOnDumbNIC(t *testing.T) {
	// Software-managed mode: stale one-sided op reaches a dumb NIC whose
	// block moved away; the host must be interrupted.
	h := newHarness(t, 3, false, Policy{}, 0)
	target := gas.New(1, 9, 0)
	// Not resident on 1 (moved to 2), NIC knows nothing.
	h.fab.NIC(0).Send(&Message{Dst: 1, Target: target, DMA: true, Wire: 256})
	h.eng.Run()
	if len(h.hostRx[1]) != 1 {
		t.Fatalf("host fault deliveries = %d", len(h.hostRx[1]))
	}
	if len(h.dmaRx[1]) != 0 {
		t.Fatal("DMA delivered against a non-resident block")
	}
}

func TestFabricChainedTombstones(t *testing.T) {
	// Block migrated twice: home→3, then 3→1. Source knows nothing; home
	// says 3; 3's tombstone says 1.
	h := newHarness(t, 4, true, DefaultPolicy(), 0)
	target := gas.New(2, 50, 0)
	h.fab.NIC(2).InstallRoute(50, 3)
	h.fab.NIC(3).InstallRoute(50, 1)
	h.resident[1][50] = true
	h.fab.NIC(0).Send(&Message{Dst: ByGVA, Target: target, Wire: 64})
	h.eng.Run()
	if len(h.hostRx[1]) != 1 {
		t.Fatalf("final owner deliveries = %d", len(h.hostRx[1]))
	}
	if h.hostRx[1][0].Hops != 2 {
		t.Fatalf("Hops = %d, want 2", h.hostRx[1][0].Hops)
	}
}

func TestFabricUnknownBlockAtHomeGoesToHost(t *testing.T) {
	h := newHarness(t, 2, true, DefaultPolicy(), 0)
	target := gas.New(1, 99, 0) // never allocated
	h.fab.NIC(0).Send(&Message{Dst: ByGVA, Target: target, Wire: 64})
	h.eng.Run()
	if len(h.hostRx[1]) != 1 {
		t.Fatal("unallocated-block traffic must surface at the home host")
	}
}

func TestFabricRankAddressedNullTarget(t *testing.T) {
	h := newHarness(t, 2, true, DefaultPolicy(), 0)
	h.fab.NIC(0).Send(&Message{Dst: 1, Wire: 16})
	h.eng.Run()
	if len(h.hostRx[1]) != 1 {
		t.Fatal("rank-addressed message lost")
	}
}

func TestFabricByGVAWithoutRoutingPanics(t *testing.T) {
	h := newHarness(t, 2, false, Policy{}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.fab.NIC(0).Send(&Message{Dst: ByGVA, Target: gas.New(1, 1, 0)})
}

func TestFabricTotalStats(t *testing.T) {
	h := newHarness(t, 2, false, Policy{}, 0)
	h.resident[1][1] = true
	h.fab.NIC(0).Send(&Message{Dst: 1, Wire: 100})
	h.fab.NIC(1).Send(&Message{Dst: 0, Wire: 100})
	h.eng.Run()
	st := h.fab.TotalStats()
	if st.Sent != 2 || st.Received != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesTx != 200 || st.BytesRx != 200 {
		t.Fatalf("byte stats %+v", st)
	}
}

func TestFabricNMDeliveryNotSlowerThanTwoHops(t *testing.T) {
	// Sanity on the cost model: a forwarded delivery costs strictly more
	// than a direct one, but less than a software round-trip (request +
	// response + resend = 3 one-way latencies).
	direct := func() VTime {
		h := newHarness(t, 4, true, DefaultPolicy(), 0)
		h.resident[2][50] = true
		h.fab.NIC(0).Send(&Message{Dst: ByGVA, Target: gas.New(2, 50, 0), Wire: 64})
		h.eng.Run()
		return h.eng.Now()
	}()
	forwarded := func() VTime {
		h := newHarness(t, 4, true, DefaultPolicy(), 0)
		h.fab.NIC(2).InstallRoute(50, 3)
		h.resident[3][50] = true
		h.fab.NIC(0).Send(&Message{Dst: ByGVA, Target: gas.New(2, 50, 0), Wire: 64})
		var done VTime
		h.fab.NIC(3).HostDeliver = func(m *Message) { done = h.eng.Now() }
		h.eng.Run()
		return done
	}()
	if forwarded <= direct {
		t.Fatalf("forwarded (%v) not slower than direct (%v)", forwarded, direct)
	}
	if forwarded >= 3*direct {
		t.Fatalf("forwarded (%v) costs like a software round-trip (direct %v)", forwarded, direct)
	}
}
