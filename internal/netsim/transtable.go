package netsim

import (
	"container/list"

	"nmvgas/internal/gas"
)

// TransTable is a block → owner translation table with optional capacity
// bounding and LRU replacement. It models the NIC-resident table of the
// network-managed design (NIC memory is finite, so capacity and its miss
// cliff are first-class concerns) and doubles as the software translation
// cache in the software-managed baseline (where capacity is usually
// unbounded but the probe is more expensive — the cost difference is
// charged by the caller, not here).
type TransTable struct {
	cap   int // 0 means unbounded
	m     map[gas.BlockID]*list.Element
	order *list.List // front = most recently used

	// epoch is the membership epoch the table currently trusts. Entries
	// installed under an older epoch are fenced: Lookup treats them as
	// missing and evicts them lazily, so a membership change (death,
	// retire, join) invalidates every cached translation in O(1) without
	// walking the table — the stale entry NACKs at the authoritative side
	// instead of routing traffic to a corpse.
	epoch uint64

	hits, misses, evictions, updates, fenced uint64
}

type ttEntry struct {
	block gas.BlockID
	owner int
	epoch uint64 // membership epoch at install time
}

// NewTransTable returns a table bounded to capacity entries; capacity 0
// means unbounded.
func NewTransTable(capacity int) *TransTable {
	return &TransTable{
		cap:   capacity,
		m:     make(map[gas.BlockID]*list.Element),
		order: list.New(),
	}
}

// Lookup returns the cached owner of block, recording a hit or miss.
// Entries from a fenced (older) epoch read as misses and are evicted.
func (t *TransTable) Lookup(block gas.BlockID) (owner int, ok bool) {
	el, ok := t.m[block]
	if !ok {
		t.misses++
		return 0, false
	}
	e := el.Value.(*ttEntry)
	if e.epoch < t.epoch {
		t.order.Remove(el)
		delete(t.m, block)
		t.fenced++
		t.misses++
		return 0, false
	}
	t.hits++
	t.order.MoveToFront(el)
	return e.owner, true
}

// Peek is Lookup without touching the LRU order or the hit/miss counters
// (used by invariant checks and tests). Fenced entries read as missing
// but are not evicted.
func (t *TransTable) Peek(block gas.BlockID) (owner int, ok bool) {
	el, ok := t.m[block]
	if !ok {
		return 0, false
	}
	e := el.Value.(*ttEntry)
	if e.epoch < t.epoch {
		return 0, false
	}
	return e.owner, true
}

// Update installs or overwrites the owner of block at the table's current
// epoch, evicting the least recently used entry if the table is full.
func (t *TransTable) Update(block gas.BlockID, owner int) {
	t.updates++
	if el, ok := t.m[block]; ok {
		e := el.Value.(*ttEntry)
		e.owner = owner
		e.epoch = t.epoch
		t.order.MoveToFront(el)
		return
	}
	if t.cap > 0 && t.order.Len() >= t.cap {
		back := t.order.Back()
		t.order.Remove(back)
		delete(t.m, back.Value.(*ttEntry).block)
		t.evictions++
	}
	t.m[block] = t.order.PushFront(&ttEntry{block: block, owner: owner, epoch: t.epoch})
}

// Epoch returns the membership epoch the table currently trusts.
func (t *TransTable) Epoch() uint64 { return t.epoch }

// BumpEpoch raises the table's trusted epoch, fencing every entry
// installed under an older one. Entries are invalidated lazily on Lookup
// rather than walked eagerly. Bumping to an older or equal epoch is a
// no-op, so out-of-order membership notifications cannot unfence.
func (t *TransTable) BumpEpoch(epoch uint64) {
	if epoch > t.epoch {
		t.epoch = epoch
	}
}

// Invalidate removes block's entry if present, reporting whether it was.
func (t *TransTable) Invalidate(block gas.BlockID) bool {
	el, ok := t.m[block]
	if !ok {
		return false
	}
	t.order.Remove(el)
	delete(t.m, block)
	return true
}

// DropIndex removes the i-th entry in LRU order (0 = most recently
// used), reporting which block was lost. It models a soft error erasing
// one arbitrary table entry: the fault injector picks the index. Unlike
// Update's capacity eviction it does not count as an eviction, because
// the entry did not age out — it was destroyed.
func (t *TransTable) DropIndex(i int) (gas.BlockID, bool) {
	if i < 0 || i >= t.order.Len() {
		return 0, false
	}
	el := t.order.Front()
	for ; i > 0; i-- {
		el = el.Next()
	}
	b := el.Value.(*ttEntry).block
	t.order.Remove(el)
	delete(t.m, b)
	return b, true
}

// Reset drops every entry and returns the table to its post-construction
// state (counters and the trusted epoch survive — a reborn NIC still
// lives in the current membership epoch). Used when a dead locality
// rejoins: the new incarnation starts with an empty table.
func (t *TransTable) Reset() {
	t.m = make(map[gas.BlockID]*list.Element)
	t.order = list.New()
}

// Len returns the number of resident entries.
func (t *TransTable) Len() int { return t.order.Len() }

// Cap returns the configured capacity (0 = unbounded).
func (t *TransTable) Cap() int { return t.cap }

// Stats returns cumulative hit/miss/eviction/update counters.
func (t *TransTable) Stats() (hits, misses, evictions, updates uint64) {
	return t.hits, t.misses, t.evictions, t.updates
}

// Fenced returns how many entries were lazily evicted because their
// install epoch predated the table's trusted epoch.
func (t *TransTable) Fenced() uint64 { return t.fenced }

// HitRate returns hits/(hits+misses), or 0 if no lookups happened.
func (t *TransTable) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}
