package netsim

import (
	"fmt"

	"nmvgas/internal/gas"
)

// DefaultMaxHops is the forward-hop budget when Policy.MaxHops is zero.
const DefaultMaxHops = 16

// Policy selects how a GVA-routing NIC reacts to traffic for blocks it
// does not own. The defaults (both true) are the paper's design; the
// alternatives exist for the ablation benchmarks.
type Policy struct {
	// ForwardInNetwork bounces misdelivered traffic straight to the
	// current owner at NIC cost. When false, the NIC NACKs to the source
	// host instead, which must resend (a software round-trip).
	ForwardInNetwork bool
	// PushUpdates makes a forwarding NIC push the correct owner to the
	// source NIC's table so later traffic goes direct.
	PushUpdates bool
	// MaxHops bounds in-network forwarding chains (0 = DefaultMaxHops).
	// A message exceeding the budget is NACKed back to its sender with
	// the home as owner hint instead of chasing a broken route forever.
	MaxHops int
}

// HopCap returns the effective forward-hop budget.
func (p Policy) HopCap() int {
	if p.MaxHops > 0 {
		return p.MaxHops
	}
	return DefaultMaxHops
}

// DefaultPolicy returns the paper's configuration: in-network forwarding
// with pushed table updates.
func DefaultPolicy() Policy {
	return Policy{ForwardInNetwork: true, PushUpdates: true, MaxHops: DefaultMaxHops}
}

// NICStats are cumulative per-NIC counters.
type NICStats struct {
	Sent, Received   uint64
	BytesTx, BytesRx uint64
	Forwards         uint64
	Nacks            uint64
	TableUpdatesRx   uint64
	DMADelivered     uint64
	HostDelivered    uint64

	// ScatterSplits counts batches this NIC split on arrival because at
	// least one record's block was not resident; ScatterForwards counts
	// the per-owner sub-batches it forwarded in-network as a result.
	ScatterSplits   uint64
	ScatterForwards uint64

	// Fault-injection counters (all zero on a healthy fabric). Dropped,
	// Duplicated and Delayed are charged to the transmitting NIC;
	// TableLost and LoopNacks to the receiving one.
	Dropped    uint64
	Duplicated uint64
	Delayed    uint64
	TableLost  uint64
	LoopNacks  uint64

	// Whole-node failure counters. DownDrops counts messages silently
	// swallowed because a link was down (crashed locality, not yet
	// declared dead — the silence is what drives suspicion). DeadNacks
	// counts sends to a membership-declared-dead rank bounced back with
	// a home hint instead of delivered to the corpse. StaleEpochDrops
	// counts control pushes ignored because they carried an older
	// membership epoch than the receiving table trusts.
	DownDrops       uint64
	DeadNacks       uint64
	StaleEpochDrops uint64
}

// NIC models one locality's network interface. When GVARouting is on (the
// network-managed mode), the NIC resolves GVA-addressed traffic from its
// translation table, forwards in-network when a block has moved, and
// absorbs table-update control messages — all without host involvement.
// With GVARouting off it is a plain dumb NIC: hosts must resolve
// destinations in software.
type NIC struct {
	Rank       int
	GVARouting bool
	Policy     Policy

	// Table is the bounded NIC-resident translation cache consulted at
	// injection time. Entries installed by forwarding/commit control
	// traffic land here too.
	Table *TransTable

	// routes holds entries this NIC is authoritative for: the home
	// mirror of the directory plus forwarding tombstones left by
	// migrations away from this locality. Unlike Table it is never
	// evicted, because losing authoritative state would break routing.
	routes map[gas.BlockID]int

	// readRoutes steers read traffic (Message.Read) for replicated
	// blocks to a nearby replica holder instead of the owner. Like
	// routes it is authoritative (installed by the replication
	// protocol, never evicted); unlike routes it only applies to reads
	// — writes and parcels still follow ownership.
	readRoutes map[gas.BlockID]int

	// Resident reports whether the host currently holds a block. Set by
	// the runtime before traffic flows.
	Resident func(gas.BlockID) bool
	// ResidentRead reports whether the host holds a fresh read replica
	// of a block it does not own, letting the NIC DMA-serve reads that
	// readRoutes steered here without any host detour. Nil when the
	// runtime has no replication support.
	ResidentRead func(gas.BlockID) bool
	// HostDeliver hands a message to the host runtime (two-sided
	// delivery, DMA faults, NACKs). The runtime charges its own host
	// receive overheads.
	HostDeliver func(*Message)
	// DMADeliver performs a one-sided transfer against host memory at
	// NIC cost. Only called when the block is resident.
	DMADeliver func(*Message)
	// OnForward, when set, observes in-network redirects (m rewritten to
	// owner) at zero simulated cost — a tracing hook, not a participant.
	OnForward func(m *Message, owner int)

	fab *Fabric
	// eng is the engine face that schedules this rank's events: the
	// fabric engine itself in classic mode, the rank's shard engine under
	// sharding. All NIC state (txFree/rxFree/Table/routes/Stats) is
	// touched only from this rank's event context, which is what makes
	// window-parallel execution race-free.
	eng *Engine
	// fi is this NIC's fault stream: the fabric-shared injector in
	// classic mode, a per-rank fork under sharding.
	fi     *FaultInjector
	txFree VTime
	rxFree VTime
	Stats  NICStats
}

// Engine returns the engine face this NIC schedules on (its rank's shard
// engine under sharding).
func (n *NIC) Engine() *Engine { return n.eng }

// InstallRoute records authoritative owner knowledge (home mirror entry or
// forwarding tombstone) at NIC table-update cost. The runtime calls this
// at migration commit.
func (n *NIC) InstallRoute(block gas.BlockID, owner int) {
	n.routes[block] = owner
}

// DropRoute removes authoritative knowledge for block (used by free).
func (n *NIC) DropRoute(block gas.BlockID) {
	delete(n.routes, block)
	delete(n.readRoutes, block)
}

// ResetState wipes every translation structure on this NIC — the
// evictable table, the authoritative routes, and the read steering.
// Used when a dead locality rejoins the world: the reborn NIC starts
// empty and relearns its state through the catch-up sync and ordinary
// control traffic. Link occupancy horizons and counters survive.
func (n *NIC) ResetState() {
	n.Table.Reset()
	n.routes = make(map[gas.BlockID]int)
	n.readRoutes = make(map[gas.BlockID]int)
}

// InstallReadRoute steers this NIC's read traffic for block to the
// replica at target. The replication runtime calls it at install time.
func (n *NIC) InstallReadRoute(block gas.BlockID, target int) {
	n.readRoutes[block] = target
}

// DropReadRoute removes block's read steering (unreplicate, free, or the
// local rank becoming the owner).
func (n *NIC) DropReadRoute(block gas.BlockID) {
	delete(n.readRoutes, block)
}

// Route returns this NIC's authoritative knowledge for block, if any.
func (n *NIC) Route(block gas.BlockID) (int, bool) {
	o, ok := n.routes[block]
	return o, ok
}

// Send injects a message. The caller has already paid host injection
// overhead and set m.Src (forwarded and re-sent messages keep their
// original source so completions and table updates reach the right
// place); this charges NIC-side costs: source translation (when routing
// by GVA), transmit occupancy, serialization, and wire latency.
func (n *NIC) Send(m *Message) {
	if !m.Target.IsNull() {
		m.Block = m.Target.Block()
	}
	cost := VTime(0)
	if m.Dst == ByGVA {
		if !n.GVARouting {
			panic("netsim: ByGVA send on a NIC without GVA routing")
		}
		cost += n.fab.Model.NICLookup
		if target, ok := n.readRoutes[m.Block]; ok && m.Read {
			// Replicated block: reads go to the nearby replica the
			// protocol picked for this rank, not the owner.
			m.Dst = target
		} else if owner, ok := n.Table.Lookup(m.Block); ok {
			m.Dst = owner
		} else if owner, ok := n.routes[m.Block]; ok {
			m.Dst = owner
		} else {
			// No local knowledge: route to the home locality, whose NIC
			// is authoritative.
			m.Dst = m.Target.Home()
		}
	}
	n.transmit(m, cost)
}

// transmit charges tx occupancy (scaled by the path's bandwidth taper)
// and schedules wire arrival at the destination NIC; the receiving NIC's
// rx link then serializes the bytes before handing the message up, which
// is what makes incast visible.
func (n *NIC) transmit(m *Message, extra VTime) {
	if m.Dst < 0 || m.Dst >= len(n.fab.NICs) {
		panic(fmt.Sprintf("netsim: transmit to bad rank %d", m.Dst))
	}
	if lv := n.fab.Live; lv != nil {
		if lv.Down(n.Rank) {
			// Outbound fence: a crashed locality's NIC transmits nothing.
			n.Stats.DownDrops++
			return
		}
		if m.Dst != n.Rank && lv.Down(m.Dst) {
			if owner, ok := lv.Rehome(m.Block); ok && !lv.Down(owner) && m.Ctl == CtlNone {
				// The block already recovered onto a survivor (promoted
				// replica or re-homed entry): redirect in flight instead of
				// bouncing to the sender.
				m.Dst = owner
			} else if hint, dead := lv.DeadHint(m.Dst); dead && m.Ctl == CtlNone && !m.Target.IsNull() {
				// The destination has been declared dead by membership:
				// NACK back to the sender with a hint (the PR 2 bounce
				// path) instead of delivering to a corpse.
				if h := m.Target.Home(); h != m.Dst && !lv.Down(h) {
					// Prefer the live home as the hint: its directory
					// re-resolves authoritatively, where the surrogate can
					// only terminate traffic for genuinely lost blocks.
					hint = h
				}
				n.Stats.DeadNacks++
				nk := &Message{
					Ctl:    CtlNackLoop,
					Src:    n.Rank,
					Dst:    m.Src,
					Block:  m.Block,
					Owner:  hint,
					Wire:   wireHeader,
					Nacked: m,
				}
				n.transmit(nk, n.fab.Model.NICForward)
				return
			} else {
				// Down but not yet declared (or rank-addressed control
				// traffic with nowhere to bounce): the message silently
				// vanishes, and that silence is exactly what raises
				// suspicion upstream.
				n.Stats.DownDrops++
				return
			}
		}
	}
	eng, model := n.eng, n.fab.Model
	wire := m.Wire
	if wire == 0 {
		wire = wireHeader
	}
	hops := 1
	bw := 1.0
	if m.Dst != n.Rank {
		hops = n.fab.Topo.Hops(n.Rank, m.Dst)
		bw = n.fab.Topo.BWFactor(n.Rank, m.Dst)
	}
	ser := model.Gap + VTime(float64(wire)*model.GByte*bw)
	start := eng.Now() + extra
	if n.txFree > start {
		start = n.txFree
	}
	n.txFree = start + ser
	n.Stats.Sent++
	n.Stats.BytesTx += uint64(wire)
	arrive := n.txFree + model.Latency*VTime(hops)
	if fi := n.fi; fi != nil {
		act := fi.Decide(m)
		if act.Drop {
			n.Stats.Dropped++
			return
		}
		if act.Duplicate {
			n.Stats.Duplicated++
			cp := *m
			n.scheduleArrival(&cp, wire, bw, arrive+act.DupDelay)
		}
		if act.Delay > 0 {
			n.Stats.Delayed++
			arrive += act.Delay
		}
	}
	n.scheduleArrival(m, wire, bw, arrive)
}

// scheduleArrival lands m on the destination NIC at the given time,
// modeling rx-link occupancy: an isolated arrival delivers immediately
// (its serialization was already paid at the sender), but the receive
// link drains at link rate, so concurrent senders to one NIC (incast)
// queue behind each other.
func (n *NIC) scheduleArrival(m *Message, wire int, bw float64, arrive VTime) {
	model := n.fab.Model
	dst := n.fab.NICs[m.Dst]
	// The arrival is the destination rank's event: it runs on dst's shard
	// and touches only dst's state. Under sharding a cross-shard arrival
	// rides the inbox and cannot land inside the current window — the
	// wire latency already paid above is exactly the lookahead bound.
	n.eng.AtRank(m.Dst, arrive, func() {
		deng := dst.eng
		ready := deng.Now()
		if dst.rxFree > ready {
			ready = dst.rxFree
		}
		dst.rxFree = ready + VTime(float64(wire)*model.GByte*bw)
		if ready == deng.Now() {
			dst.receive(m)
			return
		}
		deng.At(ready, func() { dst.receive(m) })
	})
}

// receive handles wire arrival: control consumption, ownership checks,
// in-network forwarding or NACKing, and final delivery.
func (n *NIC) receive(m *Message) {
	model := n.fab.Model
	if lv := n.fab.Live; lv != nil && lv.Down(n.Rank) {
		// In-flight traffic arriving at a crashed locality hits a dead
		// link and vanishes.
		n.Stats.DownDrops++
		return
	}
	n.Stats.Received++
	wire := m.Wire
	if wire == 0 {
		wire = wireHeader
	}
	n.Stats.BytesRx += uint64(wire)

	switch m.Ctl {
	case CtlTableUpdate:
		// Consumed entirely on the NIC. A push stamped with an older
		// membership epoch than the table trusts is dropped: it was in
		// flight across a membership change and could resurrect a route
		// to a dead or re-homed locality.
		n.Stats.TableUpdatesRx++
		ep := m.Epoch
		n.eng.After(model.NICUpdate, func() {
			if ep < n.Table.Epoch() {
				n.Stats.StaleEpochDrops++
				return
			}
			n.Table.Update(m.Block, m.Owner)
		})
		return
	case CtlTableBatch:
		// One control message installs a whole migration burst. The
		// entries land in one deferred event after a single NICUpdate
		// charge: the table write port is the bottleneck once, not per
		// block. Epoch-fenced like CtlTableUpdate.
		n.Stats.TableUpdatesRx++
		ep := m.Epoch
		n.eng.After(model.NICUpdate, func() {
			if ep < n.Table.Epoch() {
				n.Stats.StaleEpochDrops++
				return
			}
			ForEachTableEntry(m.Payload, n.Table.Update)
		})
		return
	case CtlNack, CtlNackLoop:
		// NACKs terminate at the source host.
		n.deliverHost(m)
		return
	}

	if fi := n.fi; fi != nil && n.GVARouting {
		// Soft-error model: receiving traffic may scribble over one
		// translation-table entry. Only the LRU cache is vulnerable;
		// authoritative routes are assumed protected (ECC directory).
		if fi.MaybeLoseEntry(n.Table) {
			n.Stats.TableLost++
		}
	}

	if m.Scatter && m.RelSeq == 0 && n.GVARouting {
		// A coalesced batch with per-parcel GVA sub-headers: split it
		// here, below the host (the paper's point — the detour a batch
		// pays under software-managed AGAS is a host re-route; here the
		// NIC translates each record itself).
		n.scatterBatch(m)
		return
	}

	if m.Target.IsNull() {
		// Pure rank-addressed traffic (bootstrap, collectives wiring).
		n.deliverHost(m)
		return
	}

	resident := n.Resident != nil && n.Resident(m.Block)
	if !resident && m.Read && n.ResidentRead != nil && n.ResidentRead(m.Block) {
		// A fresh read replica lives here: serve the read in place, no
		// ownership and no host re-route involved.
		resident = true
	}
	if resident {
		n.deliver(m)
		return
	}

	// The block is not here. A GVA-routing NIC fixes that in the network;
	// a dumb NIC can only involve the host.
	if n.GVARouting {
		n.misroute(m)
		return
	}
	if m.DMA {
		// One-sided op faulting on a dumb NIC: the target host software
		// must get involved (it owns the tombstone state).
		n.deliverHost(m)
		return
	}
	// Two-sided traffic always reaches the host, which forwards in
	// software.
	n.deliverHost(m)
}

// misroute handles a GVA-routed arrival for a non-resident block.
func (n *NIC) misroute(m *Message) {
	model := n.fab.Model
	if target, ok := n.readRoutes[m.Block]; ok && m.Read && target != n.Rank {
		// We cannot serve this read but know a replica holder: forward
		// the read there in-network instead of chasing the owner.
		m.Hops++
		if m.Hops <= n.Policy.HopCap() {
			n.Stats.Forwards++
			if n.OnForward != nil {
				n.OnForward(m, target)
			}
			fwd := *m
			fwd.Dst = target
			n.transmit(&fwd, model.NICForward)
			return
		}
		m.Hops--
	}
	owner, known := n.routes[m.Block]
	if !known {
		owner, known = n.Table.Peek(m.Block)
	}
	if !known {
		if n.Rank == m.Target.Home() {
			// Home has no knowledge: the block was never allocated or
			// was freed. Hand to the host, which reports the error.
			n.deliverHost(m)
			return
		}
		// Stale delivery somewhere with no knowledge: fall back to home.
		owner = m.Target.Home()
	}
	if owner == n.Rank {
		// Routing says we own it but it is not resident: the migration
		// protocol is mid-flight and the host is queueing for this
		// block. Let the host arbitrate.
		n.deliverHost(m)
		return
	}
	if lv := n.fab.Live; lv != nil && lv.Down(owner) {
		// Our best knowledge routes to a downed rank. Redirect through
		// the recovery overlay when the block was re-homed; otherwise, if
		// the rank is confirmed dead, terminate at this live host's
		// stale-delivery path (a clean, acked drop) rather than chasing a
		// corpse through the bounce machinery.
		if no, ok := lv.Rehome(m.Block); ok && !lv.Down(no) && no != n.Rank {
			owner = no
		} else if _, dead := lv.DeadHint(owner); dead {
			n.deliverHost(m)
			return
		}
	}
	if !n.Policy.ForwardInNetwork {
		n.nack(m, owner)
		return
	}
	m.Hops++
	if m.Hops > n.Policy.HopCap() {
		// Hop budget exhausted: the routing state is inconsistent (stale
		// tombstone chains, lost updates). Bounce to the sender with the
		// home as a fresh hint instead of panicking — a lossy fabric can
		// legitimately produce this.
		n.Stats.LoopNacks++
		nk := &Message{
			Ctl:    CtlNackLoop,
			Src:    n.Rank,
			Dst:    m.Src,
			Block:  m.Block,
			Owner:  m.Target.Home(),
			Wire:   wireHeader,
			Nacked: m,
		}
		n.transmit(nk, model.NICForward)
		return
	}
	n.Stats.Forwards++
	if n.OnForward != nil {
		n.OnForward(m, owner)
	}
	if n.Policy.PushUpdates && m.Src != n.Rank {
		upd := &Message{
			Ctl:   CtlTableUpdate,
			Src:   n.Rank,
			Dst:   m.Src,
			Block: m.Block,
			Owner: owner,
			Wire:  wireHeader,
			Epoch: n.Table.Epoch(),
		}
		n.transmit(upd, model.NICForward)
	}
	fwd := *m
	fwd.Dst = owner
	n.transmit(&fwd, model.NICForward)
}

// scatterBatch splits a GVA-sub-headered batch at the NIC. Records whose
// blocks are resident are delivered to the host as one batch (a single
// up-call); the rest are regrouped by the owner this NIC's tables
// resolve and forwarded in-network as fresh scatter batches, re-checked
// at each hop. Records that exhaust the hop budget fall back into the
// host-delivered group, where the host's re-route machinery (which the
// runtime counts) arbitrates.
func (n *NIC) scatterBatch(m *Message) {
	// Fast path: every record resident → the batch is already where it
	// belongs; hand it up unsplit, zero copies.
	allHere := true
	for r := NewScatterReader(m.Payload); ; {
		g, _, ok := r.Next()
		if !ok {
			break
		}
		if n.Resident == nil || !n.Resident(g.Block()) {
			allHere = false
			break
		}
	}
	if allHere {
		n.deliverHost(m)
		return
	}

	n.Stats.ScatterSplits++
	hopsLeft := m.Hops < n.Policy.HopCap()
	var local []byte
	groups := make(map[int][]byte)
	for r := NewScatterReader(m.Payload); ; {
		g, enc, ok := r.Next()
		if !ok {
			break
		}
		b := g.Block()
		if n.Resident != nil && n.Resident(b) {
			local = AppendScatterRecord(local, enc)
			continue
		}
		owner, known := n.routes[b]
		if !known {
			owner, known = n.Table.Peek(b)
		}
		if !known {
			owner = g.Home()
		}
		if owner == n.Rank || !hopsLeft {
			// Mid-migration here (the host queues), or the record's
			// forwarding chain is out of budget: the host sorts it out.
			local = AppendScatterRecord(local, enc)
			continue
		}
		groups[owner] = AppendScatterRecord(groups[owner], enc)
	}
	for owner, payload := range groups {
		n.Stats.ScatterForwards++
		fwd := &Message{
			Kind:    m.Kind,
			Src:     m.Src,
			Dst:     owner,
			Target:  m.Target,
			Block:   m.Block,
			Scatter: true,
			Payload: payload,
			Wire:    wireHeader + len(payload),
			Hops:    m.Hops + 1,
		}
		n.transmit(fwd, n.fab.Model.NICForward)
	}
	if len(local) > 0 {
		// Reuse the arrived envelope for the single host up-call.
		m.Payload = local
		m.Wire = wireHeader + len(local)
		n.deliverHost(m)
	}
}

// nack bounces a message back to the source host with owner advice.
func (n *NIC) nack(m *Message, owner int) {
	n.Stats.Nacks++
	nk := &Message{
		Ctl:    CtlNack,
		Src:    n.Rank,
		Dst:    m.Src,
		Block:  m.Block,
		Owner:  owner,
		Wire:   wireHeader,
		Nacked: m,
	}
	n.transmit(nk, n.fab.Model.NICForward)
}

// deliver completes a message at its owner: DMA at the NIC or handoff to
// the host.
func (n *NIC) deliver(m *Message) {
	if m.DMA {
		n.Stats.DMADelivered++
		copyCost := n.fab.Model.CopyTime(m.Wire)
		n.eng.After(copyCost, func() {
			if n.DMADeliver == nil {
				panic(fmt.Sprintf("netsim: DMA delivery on rank %d without a DMA handler", n.Rank))
			}
			n.DMADeliver(m)
		})
		return
	}
	n.deliverHost(m)
}

func (n *NIC) deliverHost(m *Message) {
	n.Stats.HostDelivered++
	if n.HostDeliver == nil {
		panic(fmt.Sprintf("netsim: host delivery on rank %d without a handler", n.Rank))
	}
	n.HostDeliver(m)
}
