package netsim

import (
	"fmt"
	"testing"
)

// TestEventQueueShrinksOnDrain pins the pop-side shrink: a drained burst
// must not pin its high-water backing array. Push well past minQueueCap,
// drain below a quarter of capacity, and assert the backing array was
// reallocated smaller.
func TestEventQueueShrinksOnDrain(t *testing.T) {
	var q eventQueue
	const burst = 1024
	for i := 0; i < burst; i++ {
		q.push(event{at: VTime(i), tie: uint64(i)})
	}
	peak := cap(q)
	if peak < burst {
		t.Fatalf("cap %d after %d pushes", peak, burst)
	}
	// Drain until live size is far below the peak. The shrink halves
	// capacity each time len falls under cap/4, so after the drain the
	// capacity must be strictly below the high-water mark.
	for len(q) > burst/16 {
		q.pop()
	}
	if cap(q) >= peak {
		t.Fatalf("queue did not shrink: cap %d (peak %d, len %d)", cap(q), peak, len(q))
	}
	// The floor holds: draining to empty never reallocates below
	// minQueueCap.
	for len(q) > 0 {
		q.pop()
	}
	if cap(q) > 0 && cap(q) < minQueueCap/2 {
		t.Fatalf("shrank below floor: cap %d", cap(q))
	}
	// Heap order survived the reallocations: refill and pop in order.
	for i := burst; i > 0; i-- {
		q.push(event{at: VTime(i), tie: uint64(i)})
	}
	prev := VTime(-1)
	for len(q) > 0 {
		ev := q.pop()
		if ev.at < prev {
			t.Fatalf("heap order broken after shrink: %d after %d", ev.at, prev)
		}
		prev = ev.at
	}
}

// TestRunUntilStride checks the stride-checked drain: the predicate is
// consulted only every stride events, so the engine may overshoot by at
// most stride-1 events, and never stalls short of the goal.
func TestRunUntilStride(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 0; i < 1000; i++ {
		e.At(VTime(i), func() { ran++ })
	}
	const goal, stride = 500, 64
	if ok := e.RunUntilStride(func() bool { return ran >= goal }, stride); !ok {
		t.Fatal("RunUntilStride reported queue exhaustion before the goal")
	}
	if ran < goal || ran >= goal+stride {
		t.Fatalf("ran %d events; want within [%d, %d)", ran, goal, goal+stride)
	}
	// Exhaustion path: predicate never satisfied drains the queue and
	// reports false.
	if ok := e.RunUntilStride(func() bool { return false }, stride); ok {
		t.Fatal("RunUntilStride reported success on an unsatisfiable predicate")
	}
	if ran != 1000 {
		t.Fatalf("exhaustion drain ran %d of 1000", ran)
	}
}

// parTrace runs a deterministic cascading workload on a sharded engine
// and returns each rank's execution trace. Every event appends only to
// its own rank's slice, so the recording itself is race-free under
// window-parallel workers; equivalence across shard counts is then a
// per-rank slice comparison.
func parTrace(ranks, shards int, lookahead VTime, serial bool) [][]string {
	drv := NewParEngine(ranks, shards, lookahead)
	drv.Par().SetSerial(serial)
	defer drv.Par().Shutdown()
	traces := make([][]string, ranks)
	var barrierLog []string // driver/barrier context only: serial by construction

	// Each rank runs a cascade driven by a tiny per-rank LCG: a few
	// self-events at sub-lookahead delays, then a cross-rank send at a
	// delay ≥ lookahead, until the hop budget runs out.
	var hop func(rank int, state uint64, budget int) func()
	hop = func(rank int, state uint64, budget int) func() {
		return func() {
			re := drv.RankEngine(rank)
			traces[rank] = append(traces[rank],
				fmt.Sprintf("%d@%d s=%d b=%d", rank, re.Now(), state, budget))
			if budget == 0 {
				return
			}
			s := state*6364136223846793005 + 1442695040888963407
			// Two rank-local follow-ups inside the lookahead window.
			re.After(VTime(s%97+1), hop(rank, s^1, 0))
			re.After(VTime(s%251+1), hop(rank, s^2, 0))
			// One cross-rank hop, paying at least the wire latency.
			dst := int(s>>32) % ranks
			if dst < 0 {
				dst += ranks
			}
			re.AfterRank(dst, lookahead+VTime(s%503), hop(dst, s^3, budget-1))
			// Occasionally a global action via the barrier.
			if s%5 == 0 {
				at := re.Now()
				re.AtBarrier(func() {
					barrierLog = append(barrierLog, fmt.Sprintf("bar r=%d at=%d s=%d", rank, at, s))
				})
			}
		}
	}
	for r := 0; r < ranks; r++ {
		drv.AtRank(r, VTime(10*r+5), hop(r, uint64(r+1)*0x9E37, 6))
	}
	drv.Run()
	// Fold the barrier log into rank 0's trace so divergence there fails
	// the comparison too.
	traces[0] = append(traces[0], barrierLog...)
	return traces
}

// TestShardedEquivalence is the determinism tentpole at the netsim
// layer: the same seeded workload must produce bit-identical per-rank
// execution traces (times, ranks, cascade states, barrier log) for every
// shard count. shards=1 is the reference.
func TestShardedEquivalence(t *testing.T) {
	const ranks = 12
	la := 900 * Nanosecond
	ref := parTrace(ranks, 1, la, false)
	for _, serial := range []bool{false, true} {
		for _, shards := range []int{2, 3, 4, 8, ranks} {
			got := parTrace(ranks, shards, la, serial)
			for r := range ref {
				if len(got[r]) != len(ref[r]) {
					t.Fatalf("shards=%d serial=%v rank %d: %d events vs %d in reference",
						shards, serial, r, len(got[r]), len(ref[r]))
				}
				for i := range ref[r] {
					if got[r][i] != ref[r][i] {
						t.Fatalf("shards=%d serial=%v rank %d event %d: %q vs reference %q",
							shards, serial, r, i, got[r][i], ref[r][i])
					}
				}
			}
		}
	}
}

// TestSerialModeAllowsSubLookaheadSends pins the serial-mode contract:
// cross-rank scheduling inside the window is legal (the merged drain
// preserves global order), so a custom layer with shared state can keep
// scheduling freely after SetSerial.
func TestSerialModeAllowsSubLookaheadSends(t *testing.T) {
	drv := NewParEngine(2, 2, 900*Nanosecond)
	drv.Par().SetSerial(true)
	defer drv.Par().Shutdown()
	var got []VTime
	drv.AtRank(0, 10, func() {
		// 1ns cross-rank: a lookahead violation in parallel mode, legal
		// here.
		drv.RankEngine(0).AfterRank(1, 1, func() { got = append(got, drv.RankEngine(1).Now()) })
	})
	drv.Run()
	if len(got) != 1 || got[0] != 11 {
		t.Fatalf("serial cross-rank send ran at %v; want [11ns]", got)
	}
}

// TestShardedProcessedAggregates checks Processed/Pending on the driver
// façade sum across shard heaps.
func TestShardedProcessedAggregates(t *testing.T) {
	drv := NewParEngine(4, 2, 900)
	defer drv.Par().Shutdown()
	for r := 0; r < 4; r++ {
		drv.AtRank(r, 10, func() {})
	}
	if p := drv.Pending(); p != 4 {
		t.Fatalf("Pending = %d before run", p)
	}
	drv.Run()
	if p := drv.Processed(); p != 4 {
		t.Fatalf("Processed = %d after run", p)
	}
	if p := drv.Pending(); p != 0 {
		t.Fatalf("Pending = %d after run", p)
	}
}

// TestLookaheadViolationPanics pins the conservative-window tripwire: a
// rank-context event scheduling onto another shard's rank at a time
// inside the current window is a model bug (a cross-rank delivery faster
// than the wire allows) and must panic rather than silently reorder.
func TestLookaheadViolationPanics(t *testing.T) {
	drv := NewParEngine(2, 2, 900*Nanosecond)
	defer drv.Par().Shutdown()
	drv.AtRank(0, 10, func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-rank schedule inside the window did not panic")
			}
		}()
		// 1ns cross-rank: far below the 900ns lookahead.
		drv.RankEngine(0).AfterRank(1, 1, func() {})
	})
	drv.Run()
}

// TestShardedBarrierDefersGlobalWork asserts AtBarrier from a rank
// context runs after the window completes: an event later in the same
// window must execute before the barrier task.
func TestShardedBarrierDefersGlobalWork(t *testing.T) {
	drv := NewParEngine(2, 2, 900*Nanosecond)
	defer drv.Par().Shutdown()
	var order []string
	drv.AtRank(0, 10, func() {
		drv.RankEngine(0).AtBarrier(func() { order = append(order, "barrier") })
	})
	// Same window (10 and 500 both fall in [10, 910)), other rank.
	drv.AtRank(1, 500, func() { order = append(order, "in-window") })
	drv.Run()
	if len(order) != 2 || order[0] != "in-window" || order[1] != "barrier" {
		t.Fatalf("barrier ordering %v; want in-window before barrier", order)
	}
}

// TestShardedRunUntil checks the driver façade's RunUntil quantizes to
// window boundaries but still stops once the predicate holds.
func TestShardedRunUntil(t *testing.T) {
	drv := NewParEngine(4, 2, 900*Nanosecond)
	defer drv.Par().Shutdown()
	fired := 0
	for i := 0; i < 32; i++ {
		r := i % 4
		drv.AtRank(r, VTime(i)*2*Microsecond+5, func() { fired++ })
	}
	if ok := drv.RunUntil(func() bool { return fired >= 10 }); !ok {
		t.Fatal("RunUntil exhausted the queue before the predicate held")
	}
	if fired < 10 {
		t.Fatalf("predicate reported satisfied at fired=%d", fired)
	}
	drv.Run()
	if fired != 32 {
		t.Fatalf("drain after RunUntil fired %d of 32", fired)
	}
}

// TestNewParEngineClamps pins constructor edge cases: shard count clamps
// to ranks, and a non-positive lookahead is a programming error.
func TestNewParEngineClamps(t *testing.T) {
	drv := NewParEngine(3, 16, 900)
	if n := drv.Par().Shards(); n != 3 {
		t.Fatalf("shards clamped to %d; want 3", n)
	}
	drv.Par().Shutdown()
	defer func() {
		if recover() == nil {
			t.Error("NewParEngine accepted lookahead 0")
		}
	}()
	NewParEngine(2, 2, 0)
}
