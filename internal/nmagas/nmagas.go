// Package nmagas implements the paper's primary contribution: keeping the
// active global address space's translation state in the *network* rather
// than in runtime software. The authoritative ownership directory (package
// agas) is still the source of truth, but every change to it is mirrored
// into NIC-resident translation state so that the data path — parcel
// sends, one-sided puts and gets — is resolved and repaired entirely
// below the host:
//
//   - at the source, the NIC translates GVA→owner from its bounded table
//     (falling back to the home encoded in the address);
//   - at a stale destination, the NIC forwards in-network using the route
//     the migration commit installed, with no host involvement;
//   - forwarding NICs push corrected entries back to source NICs so the
//     steady state is one direct hop.
//
// This package owns the mirroring protocol (what the home and the old and
// new owners install at migration commit) and the update-policy knobs the
// ablation benchmarks sweep.
package nmagas

import (
	"sync/atomic"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
)

// UpdatePolicy selects how NIC tables learn about migrations beyond the
// mandatory authoritative installs at the home and old owner.
type UpdatePolicy uint8

const (
	// UpdateOnForward is the paper's design: source NICs learn lazily,
	// from pushes emitted by forwarding NICs (netsim Policy.PushUpdates).
	UpdateOnForward UpdatePolicy = iota
	// UpdateBroadcast eagerly pushes every commit to every NIC. It makes
	// the first post-migration send direct at the price of O(ranks)
	// control messages per migration — the ablation quantifies when that
	// trade is worth it.
	UpdateBroadcast
)

// Mirror applies directory changes to NIC translation state. One Mirror
// serves a whole fabric; its methods are called by the runtime at the
// protocol points of the migration state machine.
//
// Under UpdateBroadcast, commits are not pushed one control message per
// block: commits that land within the same event horizon are accumulated
// per home and flushed as one CtlTableBatch per destination NIC, so a
// migration burst costs O(ranks) control messages, not O(ranks × blocks).
type Mirror struct {
	fab    *netsim.Fabric
	policy UpdatePolicy

	installs   atomic.Uint64
	broadcasts atomic.Uint64
	batches    atomic.Uint64

	// homes[r] accumulates broadcast entries committed at home r until
	// r's armed flush event fires (scheduled at the current instant on
	// r's own engine, so it runs after the committing event finishes but
	// before time advances). One slot per home, touched only from that
	// home's rank context: commits at different homes never share
	// mutable state, and flush order is fixed by the per-home event
	// streams rather than map iteration order — which also makes the
	// eager policy safe under the sharded engine.
	homes []mirrorHome
}

// mirrorHome is one home rank's broadcast accumulation slot.
type mirrorHome struct {
	entries []byte
	n       int
	armed   bool
}

// NewMirror returns a mirror over fab with the given update policy.
func NewMirror(fab *netsim.Fabric, policy UpdatePolicy) *Mirror {
	return &Mirror{fab: fab, policy: policy, homes: make([]mirrorHome, fab.Ranks())}
}

// Policy returns the configured update policy.
func (m *Mirror) Policy() UpdatePolicy { return m.policy }

// CommitAtHome installs the authoritative route for block at its home
// NIC. Called when the home processes a migration commit. The caller is
// responsible for charging netsim NICUpdate cost on the home's timeline.
func (m *Mirror) CommitAtHome(home int, block gas.BlockID, owner int) {
	m.installs.Add(1)
	m.fab.NIC(home).InstallRoute(block, owner)
	if m.policy == UpdateBroadcast {
		m.broadcastUpdate(home, block, owner)
	}
}

// TombstoneAtOldOwner installs the forwarding route at the NIC of the
// locality the block just left, so in-flight and stale traffic bounces
// onward without host involvement.
func (m *Mirror) TombstoneAtOldOwner(old int, block gas.BlockID, owner int) {
	m.installs.Add(1)
	m.fab.NIC(old).InstallRoute(block, owner)
}

// ClearResident removes stale routes at the *new* owner: once the block
// is resident its NIC must not hold a route entry saying it lives
// elsewhere (left over if the block bounced through this locality
// before).
func (m *Mirror) ClearResident(owner int, block gas.BlockID) {
	nic := m.fab.NIC(owner)
	nic.DropRoute(block)
	nic.Table.Invalidate(block)
}

// Drop removes all NIC state for block everywhere (used by free). It is a
// bookkeeping sweep, not a simulated broadcast: free is a setup-phase
// operation in this reproduction.
func (m *Mirror) Drop(block gas.BlockID) {
	for _, nic := range m.fab.NICs {
		nic.DropRoute(block)
		nic.Table.Invalidate(block)
	}
}

// broadcastUpdate queues one commit for eager propagation and arms the
// burst flush. The flush event is scheduled at the current simulated
// instant, so every commit processed in the same event horizon rides the
// same CtlTableBatch; deliveries are simulated traffic, so the eager
// policy's cost stays visible in the results.
func (m *Mirror) broadcastUpdate(home int, block gas.BlockID, owner int) {
	m.broadcasts.Add(1)
	slot := &m.homes[home]
	slot.entries = netsim.AppendTableEntry(slot.entries, block, owner)
	slot.n++
	if !slot.armed {
		slot.armed = true
		eng := m.fab.NIC(home).Engine()
		eng.AfterRank(home, 0, func() { m.flushHome(home) })
	}
}

// flushHome emits one CtlTableBatch per destination covering every
// commit queued at this home since its last flush. It runs as an event
// on the home's own timeline, so the batch rides the home NIC's
// transmit queue exactly where the commits happened.
func (m *Mirror) flushHome(home int) {
	slot := &m.homes[home]
	entries := slot.entries
	slot.entries = nil // ownership moves to the in-flight messages
	slot.n = 0
	slot.armed = false
	if len(entries) == 0 {
		return
	}
	src := m.fab.NIC(home)
	for r := 0; r < m.fab.Ranks(); r++ {
		if r == home {
			continue
		}
		m.batches.Add(1)
		src.Send(&netsim.Message{
			Ctl:     netsim.CtlTableBatch,
			Src:     home,
			Dst:     r,
			Payload: entries,
			Wire:    32 + len(entries),
		})
	}
}

// Stats returns the cumulative install and broadcast counts (broadcasts
// counts committed blocks queued for eager propagation, not wire
// messages — see BatchStats for the flushed control messages).
func (m *Mirror) Stats() (installs, broadcasts uint64) {
	return m.installs.Load(), m.broadcasts.Load()
}

// BatchStats returns how many CtlTableBatch control messages the eager
// policy actually emitted.
func (m *Mirror) BatchStats() (batches uint64) { return m.batches.Load() }
