package nmagas

import (
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
)

func newFab(ranks int) (*netsim.Engine, *netsim.Fabric, [][]gas.BlockID) {
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng, netsim.FabricConfig{
		Ranks:      ranks,
		Model:      netsim.DefaultModel(),
		GVARouting: true,
		Policy:     netsim.DefaultPolicy(),
	})
	resident := make([][]gas.BlockID, ranks)
	for r := 0; r < ranks; r++ {
		r := r
		fab.NIC(r).Resident = func(b gas.BlockID) bool {
			for _, rb := range resident[r] {
				if rb == b {
					return true
				}
			}
			return false
		}
		fab.NIC(r).HostDeliver = func(m *netsim.Message) {}
		fab.NIC(r).DMADeliver = func(m *netsim.Message) {}
	}
	return eng, fab, resident
}

func TestMirrorCommitInstallsHomeRoute(t *testing.T) {
	_, fab, _ := newFab(4)
	m := NewMirror(fab, UpdateOnForward)
	m.CommitAtHome(1, 50, 3)
	if o, ok := fab.NIC(1).Route(50); !ok || o != 3 {
		t.Fatalf("home route = %d,%v", o, ok)
	}
	ins, bc := m.Stats()
	if ins != 1 || bc != 0 {
		t.Fatalf("stats installs=%d broadcasts=%d", ins, bc)
	}
}

func TestMirrorTombstone(t *testing.T) {
	_, fab, _ := newFab(4)
	m := NewMirror(fab, UpdateOnForward)
	m.TombstoneAtOldOwner(2, 50, 3)
	if o, ok := fab.NIC(2).Route(50); !ok || o != 3 {
		t.Fatalf("tombstone route = %d,%v", o, ok)
	}
}

func TestMirrorClearResident(t *testing.T) {
	_, fab, _ := newFab(4)
	m := NewMirror(fab, UpdateOnForward)
	fab.NIC(3).InstallRoute(50, 1)
	fab.NIC(3).Table.Update(50, 1)
	m.ClearResident(3, 50)
	if _, ok := fab.NIC(3).Route(50); ok {
		t.Fatal("route survived ClearResident")
	}
	if _, ok := fab.NIC(3).Table.Peek(50); ok {
		t.Fatal("table entry survived ClearResident")
	}
}

func TestMirrorBroadcastPolicy(t *testing.T) {
	eng, fab, _ := newFab(4)
	m := NewMirror(fab, UpdateBroadcast)
	m.CommitAtHome(1, 50, 3)
	eng.Run()
	for r := 0; r < 4; r++ {
		if r == 1 {
			continue
		}
		if o, ok := fab.NIC(r).Table.Peek(50); !ok || o != 3 {
			t.Fatalf("rank %d table entry = %d,%v after broadcast", r, o, ok)
		}
	}
	_, bc := m.Stats()
	if bc != 1 {
		t.Fatalf("broadcasts = %d", bc)
	}
}

func TestMirrorDropSweepsEverything(t *testing.T) {
	_, fab, _ := newFab(3)
	m := NewMirror(fab, UpdateOnForward)
	for r := 0; r < 3; r++ {
		fab.NIC(r).InstallRoute(50, (r+1)%3)
		fab.NIC(r).Table.Update(50, (r+1)%3)
	}
	m.Drop(50)
	for r := 0; r < 3; r++ {
		if _, ok := fab.NIC(r).Route(50); ok {
			t.Fatalf("rank %d route survived Drop", r)
		}
		if _, ok := fab.NIC(r).Table.Peek(50); ok {
			t.Fatalf("rank %d table entry survived Drop", r)
		}
	}
}

func TestMirrorEndToEndForwardAfterCommit(t *testing.T) {
	// After a simulated migration commit, a send from a third party must
	// reach the new owner via exactly one in-network forward.
	eng, fab, resident := newFab(4)
	m := NewMirror(fab, UpdateOnForward)

	// Block 50, home 1, migrated to 3.
	resident[3] = append(resident[3], 50)
	m.CommitAtHome(1, 50, 3)
	m.ClearResident(3, 50)

	delivered := 0
	fab.NIC(3).HostDeliver = func(msg *netsim.Message) {
		delivered++
		if msg.Hops != 1 {
			t.Errorf("Hops = %d, want 1", msg.Hops)
		}
	}
	fab.NIC(0).Send(&netsim.Message{Dst: netsim.ByGVA, Target: gas.New(1, 50, 0), Wire: 64})
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
}
