package parcel

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"nmvgas/internal/gas"
)

func samples() []*Parcel {
	return []*Parcel{
		{},
		{Action: 1, Target: gas.New(2, 3, 4)},
		{Action: 65535, Target: gas.New(gas.MaxHome, gas.MaxBlock, gas.MaxBlockSize-1),
			Payload: []byte("hello"), CAction: 7, CTarget: gas.New(1, 2, 3), Src: 12, Seq: 1 << 40,
			OpID: uint64(13)<<48 | 7},
		{Action: 9, Payload: bytes.Repeat([]byte{0xAB}, 4096), Src: 3, Seq: 99, OpID: 1},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, p := range samples() {
		enc := Encode(p)
		if len(enc) != p.WireSize() {
			t.Fatalf("encoded %d bytes, WireSize says %d", len(enc), p.WireSize())
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", p, err)
		}
		if got.Action != p.Action || got.Target != p.Target || got.CAction != p.CAction ||
			got.CTarget != p.CTarget || got.Src != p.Src || got.Seq != p.Seq ||
			got.OpID != p.OpID || !bytes.Equal(got.Payload, p.Payload) {
			t.Fatalf("round trip mismatch:\n in %v\nout %v", p, got)
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(action, caction uint16, tgt, ctgt uint64, src uint16, seq, opID uint64, payload []byte) bool {
		p := &Parcel{
			Action: ActionID(action), CAction: ActionID(caction),
			Target: gas.GVA(tgt), CTarget: gas.GVA(ctgt),
			Src: int(src), Seq: seq, OpID: opID, Payload: payload,
		}
		got, err := Decode(Encode(p))
		if err != nil {
			return false
		}
		return got.Action == p.Action && got.Target == p.Target &&
			got.CAction == p.CAction && got.CTarget == p.CTarget &&
			got.Src == p.Src && got.Seq == p.Seq && got.OpID == p.OpID &&
			bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := Encode(&Parcel{Action: 3, Payload: []byte{1, 2, 3}})

	if _, err := Decode(good[:10]); !errors.Is(err, ErrCodec) {
		t.Errorf("short buffer: err = %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0x00
	if _, err := Decode(bad); !errors.Is(err, ErrCodec) {
		t.Errorf("bad magic: err = %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[1] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrCodec) {
		t.Errorf("bad version: err = %v", err)
	}
	if _, err := Decode(append(good, 0xFF)); !errors.Is(err, ErrCodec) {
		t.Errorf("trailing garbage: err = %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[42] = 200 // lie about payload length
	if _, err := Decode(bad); !errors.Is(err, ErrCodec) {
		t.Errorf("bad length: err = %v", err)
	}
}

func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(buf []byte) bool {
		defer func() {
			if recover() != nil {
				t.Error("Decode panicked")
			}
		}()
		_, _ = Decode(buf)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendEncodeReusesBuffer(t *testing.T) {
	p := &Parcel{Action: 1, Payload: []byte{9}}
	buf := make([]byte, 0, 256)
	out := AppendEncode(buf, p)
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendEncode reallocated despite capacity")
	}
}

func TestHasContinuation(t *testing.T) {
	if (&Parcel{}).HasContinuation() {
		t.Fatal("empty parcel claims a continuation")
	}
	if !(&Parcel{CAction: 1}).HasContinuation() {
		t.Fatal("CAction ignored")
	}
	if !(&Parcel{CTarget: gas.New(0, 1, 0)}).HasContinuation() {
		t.Fatal("CTarget ignored")
	}
}

func TestParcelString(t *testing.T) {
	s := (&Parcel{Action: 2, Target: gas.New(1, 2, 3)}).String()
	if !strings.Contains(s, "act=2") {
		t.Fatalf("String = %q", s)
	}
}

func TestArgsHelpers(t *testing.T) {
	b := PutU64(nil, 1<<40)
	b = PutU32(b, 7)
	b = PutI64(b, -9)
	if U64(b, 0) != 1<<40 {
		t.Fatal("U64 round trip")
	}
	if U32(b, 8) != 7 {
		t.Fatal("U32 round trip")
	}
	if I64(b, 12) != -9 {
		t.Fatal("I64 round trip")
	}
}
