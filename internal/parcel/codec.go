package parcel

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nmvgas/internal/gas"
)

// Wire format, little-endian:
//
//	0      magic (1 byte) = 0xA9
//	1      version (1 byte) = 2
//	2..3   action
//	4..11  target GVA
//	12..13 continuation action
//	14..21 continuation GVA
//	22..25 source rank (uint32)
//	26..33 sequence number
//	34..41 op id (world-unique causal span id; survives forwards/resends)
//	42..45 payload length (uint32)
//	46..   payload
//
// The target GVA sits at a fixed offset (4) so in-NIC batch scatter can
// route records without a full decode (netsim.ScatterGVA). Version 2
// added the op id field; v1 encodings are rejected.
const (
	codecMagic   = 0xA9
	codecVersion = 2
	headerSize   = 46
)

// ErrCodec reports a malformed encoded parcel.
var ErrCodec = errors.New("parcel: malformed encoding")

// AppendEncode appends p's wire encoding to dst and returns the extended
// slice; callers reuse buffers on hot paths.
func AppendEncode(dst []byte, p *Parcel) []byte {
	dst = append(dst, codecMagic, codecVersion)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(p.Action))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Target))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(p.CAction))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.CTarget))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Src))
	dst = binary.LittleEndian.AppendUint64(dst, p.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, p.OpID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Payload)))
	return append(dst, p.Payload...)
}

// Encode returns p's wire encoding.
func Encode(p *Parcel) []byte {
	return AppendEncode(make([]byte, 0, p.WireSize()), p)
}

// Decode parses one encoded parcel. The returned parcel's payload aliases
// buf.
func Decode(buf []byte) (*Parcel, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrCodec, len(buf), headerSize)
	}
	if buf[0] != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCodec, buf[0])
	}
	if buf[1] != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCodec, buf[1])
	}
	p := &Parcel{
		Action:  ActionID(binary.LittleEndian.Uint16(buf[2:])),
		Target:  gas.GVA(binary.LittleEndian.Uint64(buf[4:])),
		CAction: ActionID(binary.LittleEndian.Uint16(buf[12:])),
		CTarget: gas.GVA(binary.LittleEndian.Uint64(buf[14:])),
		Src:     int(binary.LittleEndian.Uint32(buf[22:])),
		Seq:     binary.LittleEndian.Uint64(buf[26:]),
		OpID:    binary.LittleEndian.Uint64(buf[34:]),
	}
	n := binary.LittleEndian.Uint32(buf[42:])
	if uint64(headerSize)+uint64(n) != uint64(len(buf)) {
		return nil, fmt.Errorf("%w: payload length %d does not match buffer %d", ErrCodec, n, len(buf))
	}
	if n > 0 {
		p.Payload = buf[headerSize : headerSize+n]
	}
	return p, nil
}
