// Package parcel implements the active messages of the message-driven
// runtime. A parcel carries an action identifier, the global address the
// action runs on, an opaque payload, and an optional continuation: a
// second (action, address) pair that receives the action's result. This is
// the HPX-5 parcel model; continuations are how the runtime composes
// asynchronous work without ever blocking inside a handler.
package parcel

import (
	"fmt"

	"nmvgas/internal/gas"
)

// ActionID names a registered action. IDs are assigned by registration
// order, which the runtime requires to be identical on every locality.
type ActionID uint16

// NilAction is the absent action (no continuation).
const NilAction ActionID = 0

// Parcel is one active message.
type Parcel struct {
	// Action is the handler to run at the target.
	Action ActionID
	// Target is the global address the action is addressed to; the
	// parcel is delivered to the locality that currently owns it.
	Target gas.GVA
	// Payload is the action's argument record.
	Payload []byte

	// CAction/CTarget form the continuation: when the action returns a
	// result, the runtime sends Continue(result) as a new parcel running
	// CAction at CTarget (most often an LCO set).
	CAction ActionID
	CTarget gas.GVA

	// Src is the originating locality, stamped at send time.
	Src int
	// Seq is a per-source sequence number for tracing and tests.
	Seq uint64
	// OpID is the world-unique causal span id, stamped at send time and
	// preserved across NACK repairs, reliability resends, and in-NIC
	// forwards so every hop of one logical operation shares one id.
	OpID uint64
}

// HasContinuation reports whether the parcel carries a continuation.
func (p *Parcel) HasContinuation() bool {
	return p.CAction != NilAction || !p.CTarget.IsNull()
}

// WireSize returns the encoded size in bytes.
func (p *Parcel) WireSize() int { return headerSize + len(p.Payload) }

func (p *Parcel) String() string {
	return fmt.Sprintf("parcel(act=%d tgt=%v len=%d cont=%d@%v src=%d seq=%d)",
		p.Action, p.Target, len(p.Payload), p.CAction, p.CTarget, p.Src, p.Seq)
}
