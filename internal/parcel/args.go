package parcel

import "encoding/binary"

// Argument marshalling helpers. Actions exchange small fixed records;
// these helpers keep payload construction allocation-light and uniform
// across the runtime, the collectives, and the workloads.

// PutU64 appends v to b in little-endian order.
func PutU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// PutU32 appends v to b in little-endian order.
func PutU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// PutI64 appends v to b in little-endian two's-complement order.
func PutI64(b []byte, v int64) []byte { return PutU64(b, uint64(v)) }

// U64 reads the little-endian uint64 at offset off.
func U64(b []byte, off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }

// U32 reads the little-endian uint32 at offset off.
func U32(b []byte, off int) uint32 { return binary.LittleEndian.Uint32(b[off:]) }

// I64 reads the little-endian int64 at offset off.
func I64(b []byte, off int) int64 { return int64(U64(b, off)) }
