// Package sched provides the lightweight-task scheduler used by the
// goroutine execution engine: per-worker deques with work stealing behind
// a parked-worker pool. The discrete-event engine does not use it (the
// whole simulation is one event loop); it exists so the same runtime can
// execute with real concurrency, which is how the examples run and how
// the race detector exercises the protocol code.
package sched

import "sync"

// Task is one unit of scheduled work.
type Task func()

// Deque is a double-ended task queue. The owning worker pushes and pops
// at the bottom (LIFO, for locality); thieves steal from the top (FIFO).
// A mutex implementation is deliberately chosen over a lock-free Chase-Lev
// deque: the tasks here are parcel handlers, far coarser than the lock
// cost, and the mutex keeps the invariants obvious.
type Deque struct {
	mu    sync.Mutex
	items []Task
}

// PushBottom adds t at the owner's end.
func (d *Deque) PushBottom(t Task) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

// PopBottom removes the most recently pushed task.
func (d *Deque) PopBottom() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil, false
	}
	t := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	return t, true
}

// StealTop removes the oldest task, from a thief.
func (d *Deque) StealTop() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil, false
	}
	t := d.items[0]
	copy(d.items, d.items[1:])
	d.items[len(d.items)-1] = nil
	d.items = d.items[:len(d.items)-1]
	return t, true
}

// Len returns the queued task count.
func (d *Deque) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}
