package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// Pool runs tasks on a fixed set of workers. External code submits through
// Submit; tasks running on a worker spawn children onto that worker's own
// deque via the Worker handle, and idle workers steal from random victims
// before parking.
type Pool struct {
	workers []*Worker

	mu      sync.Mutex
	cond    *sync.Cond
	global  []Task
	stopped bool

	wg      sync.WaitGroup
	pending atomic.Int64 // submitted + spawned - completed

	// Stolen counts successful steals, exposed for tests and the
	// scheduler benchmarks.
	Stolen atomic.Uint64
}

// Worker is the handle a running task uses to spawn locally.
type Worker struct {
	pool *Pool
	id   int
	dq   Deque
	rng  *rand.Rand
}

// ID returns the worker's index within its pool.
func (w *Worker) ID() int { return w.id }

// Spawn schedules t on this worker's deque (LIFO), where it is preferred
// by this worker and stealable by idle siblings.
func (w *Worker) Spawn(t Task) {
	w.pool.pending.Add(1)
	w.dq.PushBottom(t)
	w.pool.wake()
}

// NewPool creates a pool of n workers; Start must be called before Submit.
func NewPool(n int, seed int64) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < n; i++ {
		p.workers = append(p.workers, &Worker{
			pool: p,
			id:   i,
			rng:  rand.New(rand.NewSource(seed + int64(i)*7919)),
		})
	}
	return p
}

// Start launches the workers.
func (p *Pool) Start() {
	for _, w := range p.workers {
		p.wg.Add(1)
		go p.run(w)
	}
}

// Stop asks workers to exit once no runnable work remains and waits for
// them. Tasks already queued are executed before shutdown.
func (p *Pool) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Submit schedules t from outside the pool.
func (p *Pool) Submit(t Task) {
	p.pending.Add(1)
	p.mu.Lock()
	p.global = append(p.global, t)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Pending returns the number of incomplete tasks.
func (p *Pool) Pending() int64 { return p.pending.Load() }

// wake nudges parked workers after a local spawn.
func (p *Pool) wake() {
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *Pool) run(w *Worker) {
	defer p.wg.Done()
	for {
		if t, ok := p.next(w); ok {
			t()
			p.pending.Add(-1)
			continue
		}
		// Park until new work or shutdown.
		p.mu.Lock()
		for {
			if len(p.global) > 0 {
				break
			}
			if p.anyStealable(w) {
				break
			}
			if p.stopped {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
		}
		p.mu.Unlock()
	}
}

// anyStealable reports whether a sibling deque has work. Callers hold
// p.mu, but deque lengths use their own locks so this is only a hint —
// which is fine: a false positive costs one extra scan, a false negative
// is cured by the next Broadcast.
func (p *Pool) anyStealable(w *Worker) bool {
	for _, v := range p.workers {
		if v != w && v.dq.Len() > 0 {
			return true
		}
	}
	return w.dq.Len() > 0
}

// next finds runnable work: own deque, then the global queue, then theft.
func (p *Pool) next(w *Worker) (Task, bool) {
	if t, ok := w.dq.PopBottom(); ok {
		return t, true
	}
	p.mu.Lock()
	if len(p.global) > 0 {
		t := p.global[0]
		copy(p.global, p.global[1:])
		p.global[len(p.global)-1] = nil
		p.global = p.global[:len(p.global)-1]
		p.mu.Unlock()
		return t, true
	}
	p.mu.Unlock()
	// Steal from up to len(workers) random victims.
	n := len(p.workers)
	off := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := p.workers[(off+i)%n]
		if v == w {
			continue
		}
		if t, ok := v.dq.StealTop(); ok {
			p.Stolen.Add(1)
			return t, true
		}
	}
	return nil, false
}
