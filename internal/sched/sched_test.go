package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDequeLIFOFIFO(t *testing.T) {
	var d Deque
	for i := 1; i <= 3; i++ {
		i := i
		d.PushBottom(func() { _ = i })
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if _, ok := d.PopBottom(); !ok {
		t.Fatal("PopBottom on non-empty failed")
	}
	if _, ok := d.StealTop(); !ok {
		t.Fatal("StealTop on non-empty failed")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d after pop+steal", d.Len())
	}
	d.PopBottom()
	if _, ok := d.PopBottom(); ok {
		t.Fatal("PopBottom on empty succeeded")
	}
	if _, ok := d.StealTop(); ok {
		t.Fatal("StealTop on empty succeeded")
	}
}

func TestDequeOrder(t *testing.T) {
	var d Deque
	var got []int
	push := func(i int) { d.PushBottom(func() { got = append(got, i) }) }
	for i := 0; i < 4; i++ {
		push(i)
	}
	// Owner pops are LIFO: 3; thief steals are FIFO: 0, then 1.
	tk, _ := d.PopBottom()
	tk()
	tk, _ = d.StealTop()
	tk()
	tk, _ = d.StealTop()
	tk()
	if len(got) != 3 || got[0] != 3 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("order = %v", got)
	}
}

func waitPending(t *testing.T, p *Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool did not drain: %d pending", p.Pending())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolRunsSubmittedTasks(t *testing.T) {
	p := NewPool(4, 1)
	p.Start()
	defer p.Stop()
	var n atomic.Int64
	const tasks = 1000
	for i := 0; i < tasks; i++ {
		p.Submit(func() { n.Add(1) })
	}
	waitPending(t, p)
	if n.Load() != tasks {
		t.Fatalf("ran %d of %d tasks", n.Load(), tasks)
	}
}

func TestPoolSpawnAndSteal(t *testing.T) {
	p := NewPool(4, 2)
	p.Start()
	defer p.Stop()
	var n atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	// One root task fans out 512 children onto a single worker's deque;
	// siblings must steal to finish quickly.
	p.Submit(func() {
		defer wg.Done()
		// The root has no Worker handle through Submit; spawn via a
		// nested structure: find our worker by submitting a chain.
	})
	wg.Wait()
	// Direct deque-level fan-out: spawn from within a worker task.
	done := make(chan struct{})
	p.Submit(func() {
		w := p.workers[0]
		for i := 0; i < 512; i++ {
			w.Spawn(func() {
				if n.Add(1) == 512 {
					close(done)
				}
			})
		}
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("fan-out incomplete: %d", n.Load())
	}
	waitPending(t, p)
}

func TestPoolStopDrainsQueuedWork(t *testing.T) {
	p := NewPool(2, 3)
	p.Start()
	var n atomic.Int64
	for i := 0; i < 200; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Stop()
	if n.Load() != 200 {
		t.Fatalf("Stop lost tasks: ran %d of 200", n.Load())
	}
}

func TestPoolSingleWorker(t *testing.T) {
	p := NewPool(1, 4)
	p.Start()
	defer p.Stop()
	var order []int
	var mu sync.Mutex
	for i := 0; i < 10; i++ {
		i := i
		p.Submit(func() { mu.Lock(); order = append(order, i); mu.Unlock() })
	}
	waitPending(t, p)
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker ran out of submit order: %v", order)
		}
	}
}

func TestPoolMinimumOneWorker(t *testing.T) {
	p := NewPool(0, 5)
	p.Start()
	defer p.Stop()
	ran := make(chan struct{})
	p.Submit(func() { close(ran) })
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("zero-worker pool never ran the task")
	}
}

func TestPoolStressConcurrentSubmitters(t *testing.T) {
	p := NewPool(8, 6)
	p.Start()
	defer p.Stop()
	var n atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Submit(func() { n.Add(1) })
			}
		}()
	}
	wg.Wait()
	waitPending(t, p)
	if n.Load() != 4000 {
		t.Fatalf("ran %d of 4000", n.Load())
	}
}
