package lco

// Combiner folds one contribution into an accumulator and returns the new
// accumulator. acc is nil for the first contribution.
type Combiner func(acc, in []byte) []byte

// Reduce accumulates exactly n contributions through a combiner and fires
// with the final accumulator.
type Reduce struct {
	base
	need    int
	acc     []byte
	combine Combiner
}

// NewReduce returns a reduction over n contributions. n == 0 fires
// immediately with a nil value.
func NewReduce(n int, combine Combiner) *Reduce {
	r := &Reduce{need: n, combine: combine}
	if n == 0 {
		r.fired = true
	}
	return r
}

// Set folds data into the accumulator and fires on the n-th contribution.
func (r *Reduce) Set(data []byte) error {
	r.mu.Lock()
	if r.need == 0 {
		r.mu.Unlock()
		return ErrOverflow
	}
	r.acc = r.combine(r.acc, data)
	r.need--
	if r.need > 0 {
		r.mu.Unlock()
		return nil
	}
	v := r.acc
	ts := r.fire(v)
	r.mu.Unlock()
	runAll(ts, v)
	return nil
}

// Int64 reduction helpers used throughout the collectives and workloads.

// SumI64 combines little-endian int64 contributions by addition.
func SumI64(acc, in []byte) []byte { return foldI64(acc, in, func(a, b int64) int64 { return a + b }) }

// MinI64 combines little-endian int64 contributions by minimum.
func MinI64(acc, in []byte) []byte {
	return foldI64(acc, in, func(a, b int64) int64 {
		if b < a {
			return b
		}
		return a
	})
}

// MaxI64 combines little-endian int64 contributions by maximum.
func MaxI64(acc, in []byte) []byte {
	return foldI64(acc, in, func(a, b int64) int64 {
		if b > a {
			return b
		}
		return a
	})
}

func foldI64(acc, in []byte, f func(a, b int64) int64) []byte {
	v := decodeI64(in)
	if acc == nil {
		out := make([]byte, 8)
		encodeI64(out, v)
		return out
	}
	encodeI64(acc, f(decodeI64(acc), v))
	return acc
}

func decodeI64(b []byte) int64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return int64(v)
}

func encodeI64(b []byte, v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

// EncodeI64 returns v as the 8-byte little-endian record the int64
// combiners consume.
func EncodeI64(v int64) []byte {
	b := make([]byte, 8)
	encodeI64(b, v)
	return b
}

// DecodeI64 parses an 8-byte little-endian record.
func DecodeI64(b []byte) int64 { return decodeI64(b) }
