package lco

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestFutureFiresOnce(t *testing.T) {
	f := NewFuture()
	if f.Ready() {
		t.Fatal("new future ready")
	}
	var got []byte
	f.OnFire(func(d []byte) { got = d })
	if err := f.Set([]byte{42}); err != nil {
		t.Fatal(err)
	}
	if !f.Ready() || got == nil || got[0] != 42 {
		t.Fatalf("ready=%v got=%v", f.Ready(), got)
	}
	if err := f.Set([]byte{1}); !errors.Is(err, ErrAlreadySet) {
		t.Fatalf("double set err = %v", err)
	}
	if f.Value()[0] != 42 {
		t.Fatal("value changed by failed double set")
	}
}

func TestFutureLateTriggerRunsImmediately(t *testing.T) {
	f := NewFuture()
	if err := f.Set([]byte{7}); err != nil {
		t.Fatal(err)
	}
	ran := false
	f.OnFire(func(d []byte) { ran = d[0] == 7 })
	if !ran {
		t.Fatal("late OnFire did not run immediately")
	}
}

func TestFutureMultipleTriggers(t *testing.T) {
	f := NewFuture()
	var n int
	for i := 0; i < 5; i++ {
		f.OnFire(func([]byte) { n++ })
	}
	if err := f.Set(nil); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("ran %d triggers", n)
	}
}

func TestAndGateCounts(t *testing.T) {
	g := NewAndGate(3)
	fired := false
	g.OnFire(func([]byte) { fired = true })
	for i := 0; i < 2; i++ {
		if err := g.Set(nil); err != nil {
			t.Fatal(err)
		}
		if fired {
			t.Fatalf("fired after %d contributions", i+1)
		}
	}
	if g.Remaining() != 1 {
		t.Fatalf("Remaining = %d", g.Remaining())
	}
	if err := g.Set(nil); err != nil {
		t.Fatal(err)
	}
	if !fired || !g.Ready() {
		t.Fatal("gate did not fire on final contribution")
	}
	if err := g.Set(nil); !errors.Is(err, ErrOverflow) {
		t.Fatalf("overflow err = %v", err)
	}
}

func TestAndGateZeroFiresImmediately(t *testing.T) {
	g := NewAndGate(0)
	if !g.Ready() {
		t.Fatal("zero gate not ready")
	}
	ran := false
	g.OnFire(func([]byte) { ran = true })
	if !ran {
		t.Fatal("trigger on fired gate did not run")
	}
}

func TestAndGateConcurrentContributions(t *testing.T) {
	const n = 100
	g := NewAndGate(n)
	var fired atomic.Int32
	g.OnFire(func([]byte) { fired.Add(1) })
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Set(nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if fired.Load() != 1 {
		t.Fatalf("fired %d times", fired.Load())
	}
}

func TestReduceSum(t *testing.T) {
	r := NewReduce(4, SumI64)
	var got int64
	r.OnFire(func(d []byte) { got = DecodeI64(d) })
	for _, v := range []int64{1, -2, 30, 400} {
		if err := r.Set(EncodeI64(v)); err != nil {
			t.Fatal(err)
		}
	}
	if got != 429 {
		t.Fatalf("sum = %d", got)
	}
	if err := r.Set(EncodeI64(1)); !errors.Is(err, ErrOverflow) {
		t.Fatalf("overflow err = %v", err)
	}
}

func TestReduceMinMax(t *testing.T) {
	rmin := NewReduce(3, MinI64)
	rmax := NewReduce(3, MaxI64)
	for _, v := range []int64{5, -7, 3} {
		if err := rmin.Set(EncodeI64(v)); err != nil {
			t.Fatal(err)
		}
		if err := rmax.Set(EncodeI64(v)); err != nil {
			t.Fatal(err)
		}
	}
	if DecodeI64(rmin.Value()) != -7 {
		t.Fatalf("min = %d", DecodeI64(rmin.Value()))
	}
	if DecodeI64(rmax.Value()) != 5 {
		t.Fatalf("max = %d", DecodeI64(rmax.Value()))
	}
}

func TestReduceSumPropertyOrderInvariant(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		r := NewReduce(len(vals), SumI64)
		var want int64
		for _, v := range vals {
			want += v
			if err := r.Set(EncodeI64(v)); err != nil {
				return false
			}
		}
		return DecodeI64(r.Value()) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestI64EncodingRoundTrip(t *testing.T) {
	f := func(v int64) bool { return DecodeI64(EncodeI64(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSemaImmediateAcquire(t *testing.T) {
	s := NewSema(2)
	n := 0
	s.Acquire(func([]byte) { n++ })
	s.Acquire(func([]byte) { n++ })
	if n != 2 || s.Units() != 0 {
		t.Fatalf("n=%d units=%d", n, s.Units())
	}
	s.Acquire(func([]byte) { n++ })
	if n != 2 {
		t.Fatal("third acquire should queue")
	}
	s.Release()
	if n != 3 {
		t.Fatal("release did not run waiter")
	}
	s.Release()
	if s.Units() != 1 {
		t.Fatalf("units=%d after free release", s.Units())
	}
}

func TestSemaFIFO(t *testing.T) {
	s := NewSema(0)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Acquire(func([]byte) { order = append(order, i) })
	}
	for i := 0; i < 3; i++ {
		s.Release()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("waiters ran out of order: %v", order)
		}
	}
}

func TestGenCount(t *testing.T) {
	g := NewGenCount()
	if g.Gen() != 0 {
		t.Fatal("fresh gencount not at 0")
	}
	var hits []uint64
	g.WaitFor(0, func([]byte) { hits = append(hits, 0) }) // immediate
	g.WaitFor(2, func([]byte) { hits = append(hits, 2) })
	g.WaitFor(1, func([]byte) { hits = append(hits, 1) })
	if len(hits) != 1 || hits[0] != 0 {
		t.Fatalf("hits = %v", hits)
	}
	if g.Advance() != 1 {
		t.Fatal("Advance returned wrong generation")
	}
	if len(hits) != 2 || hits[1] != 1 {
		t.Fatalf("hits = %v", hits)
	}
	g.Advance()
	if len(hits) != 3 || hits[2] != 2 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestGenCountConcurrentAdvance(t *testing.T) {
	g := NewGenCount()
	const gens = 50
	var fired atomic.Int32
	for i := 1; i <= gens; i++ {
		g.WaitFor(uint64(i), func([]byte) { fired.Add(1) })
	}
	var wg sync.WaitGroup
	for i := 0; i < gens; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); g.Advance() }()
	}
	wg.Wait()
	if fired.Load() != gens {
		t.Fatalf("fired %d of %d waiters", fired.Load(), gens)
	}
	if g.Gen() != gens {
		t.Fatalf("gen = %d", g.Gen())
	}
}
