package lco

import "sync"

// Sema is a counting semaphore with continuation-style acquisition:
// Acquire registers a trigger that runs as soon as a unit is available.
// It is not an LCO in the fire-once sense — it never becomes permanently
// Ready — but it shares the non-blocking discipline.
type Sema struct {
	mu      sync.Mutex
	units   int
	waiters []Trigger
}

// NewSema returns a semaphore holding n units.
func NewSema(n int) *Sema { return &Sema{units: n} }

// Acquire runs t once a unit is available, consuming it. If a unit is
// free now, t runs before Acquire returns.
func (s *Sema) Acquire(t Trigger) {
	s.mu.Lock()
	if s.units > 0 {
		s.units--
		s.mu.Unlock()
		t(nil)
		return
	}
	s.waiters = append(s.waiters, t)
	s.mu.Unlock()
}

// Release returns one unit, running the oldest waiter if any.
func (s *Sema) Release() {
	s.mu.Lock()
	if len(s.waiters) > 0 {
		t := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.mu.Unlock()
		t(nil)
		return
	}
	s.units++
	s.mu.Unlock()
}

// Units returns the currently free units (for tests).
func (s *Sema) Units() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.units
}

// GenCount is a generation counter: triggers wait for the counter to
// reach a specific generation. It models hpx's gencount LCO, used for
// phased algorithms (e.g. stencil timesteps).
type GenCount struct {
	mu      sync.Mutex
	gen     uint64
	waiters map[uint64][]Trigger
}

// NewGenCount returns a counter at generation 0.
func NewGenCount() *GenCount {
	return &GenCount{waiters: make(map[uint64][]Trigger)}
}

// Gen returns the current generation.
func (g *GenCount) Gen() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gen
}

// WaitFor runs t once the counter reaches gen (immediately if it already
// has).
func (g *GenCount) WaitFor(gen uint64, t Trigger) {
	g.mu.Lock()
	if g.gen >= gen {
		g.mu.Unlock()
		t(nil)
		return
	}
	g.waiters[gen] = append(g.waiters[gen], t)
	g.mu.Unlock()
}

// Advance increments the generation and releases its waiters.
func (g *GenCount) Advance() uint64 {
	g.mu.Lock()
	g.gen++
	ts := g.waiters[g.gen]
	delete(g.waiters, g.gen)
	gen := g.gen
	g.mu.Unlock()
	runAll(ts, nil)
	return gen
}
