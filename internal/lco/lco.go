// Package lco implements local control objects: the synchronization
// primitives of the message-driven runtime. An LCO accumulates inputs
// (Set calls, usually delivered by parcels) and, once its firing condition
// holds, invokes every registered trigger exactly once with the final
// value. Actions never block on an LCO — they register continuations —
// so the same LCO code runs on the deterministic discrete-event engine
// and on the concurrent goroutine engine.
package lco

import (
	"errors"
	"sync"
)

// Trigger is a continuation invoked when an LCO fires. The data slice
// must not be mutated by the trigger.
type Trigger func(data []byte)

// ErrAlreadySet reports a second Set on a single-assignment LCO.
var ErrAlreadySet = errors.New("lco: already set")

// ErrOverflow reports more contributions than an LCO was created for.
var ErrOverflow = errors.New("lco: contribution overflow")

// LCO is the common interface of all control objects.
type LCO interface {
	// Set contributes data. Depending on the LCO type this may or may
	// not fire it.
	Set(data []byte) error
	// Ready reports whether the LCO has fired.
	Ready() bool
	// Value returns the fired value; it is only meaningful when Ready.
	Value() []byte
	// OnFire registers a trigger, invoking it immediately if the LCO has
	// already fired.
	OnFire(Trigger)
}

// base carries the shared fired/value/trigger machinery. Concrete LCOs
// embed it and call fire under their own mutex discipline.
type base struct {
	mu       sync.Mutex
	fired    bool
	value    []byte
	triggers []Trigger
}

// fire marks the LCO fired and returns the triggers to run; the caller
// invokes them outside the lock so triggers may re-enter LCO code.
func (b *base) fire(v []byte) []Trigger {
	b.fired = true
	b.value = v
	ts := b.triggers
	b.triggers = nil
	return ts
}

func runAll(ts []Trigger, v []byte) {
	for _, t := range ts {
		t(v)
	}
}

func (b *base) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fired
}

func (b *base) Value() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.value
}

func (b *base) OnFire(t Trigger) {
	b.mu.Lock()
	if b.fired {
		v := b.value
		b.mu.Unlock()
		t(v)
		return
	}
	b.triggers = append(b.triggers, t)
	b.mu.Unlock()
}

// Future is a single-assignment LCO: the first Set fires it; further Sets
// fail with ErrAlreadySet.
type Future struct {
	base
}

// NewFuture returns an unset future.
func NewFuture() *Future { return &Future{} }

// Set fires the future with data.
func (f *Future) Set(data []byte) error {
	f.mu.Lock()
	if f.fired {
		f.mu.Unlock()
		return ErrAlreadySet
	}
	ts := f.fire(data)
	f.mu.Unlock()
	runAll(ts, data)
	return nil
}

// AndGate fires with a nil value after exactly n contributions.
type AndGate struct {
	base
	need int
}

// NewAndGate returns a gate requiring n contributions; n == 0 fires
// immediately.
func NewAndGate(n int) *AndGate {
	g := &AndGate{need: n}
	if n == 0 {
		g.fired = true
	}
	return g
}

// Set consumes one contribution; the data is ignored (use Reduce to
// combine values).
func (g *AndGate) Set(data []byte) error {
	g.mu.Lock()
	if g.need == 0 {
		g.mu.Unlock()
		return ErrOverflow
	}
	g.need--
	if g.need > 0 {
		g.mu.Unlock()
		return nil
	}
	ts := g.fire(nil)
	g.mu.Unlock()
	runAll(ts, nil)
	return nil
}

// Remaining returns how many contributions are still outstanding.
func (g *AndGate) Remaining() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.need
}
