// Flight recorder: an always-on, fixed-memory trace ring that, when a
// watchdog trips (or on demand), dumps a correlated diagnostic bundle —
// the last window of protocol events as a Perfetto-loadable trace plus
// the metrics, membership, heat, and watchdog state at the moment of the
// anomaly. The recording path is the plain Ring record (zero allocations
// once the ring is full); bundle capture allocates, but only on trips.
package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"

	"nmvgas/internal/runtime"
)

// FlightConfig tunes the recorder.
type FlightConfig struct {
	// Capacity is the retained event window across all ranks (0 = 8192).
	Capacity int
	// SampleShift records 1 in 2^shift events (0 = every event). High-
	// rate workloads use it to stretch the retained window at the same
	// memory cost; the ring stays a faithful sample of the tail.
	SampleShift uint
	// MaxBundles bounds the retained trip bundles (0 = 4); older bundles
	// fall off the front.
	MaxBundles int
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Capacity <= 0 {
		c.Capacity = 8192
	}
	if c.SampleShift > 20 {
		c.SampleShift = 20
	}
	if c.MaxBundles <= 0 {
		c.MaxBundles = 4
	}
	return c
}

// Bundle is one correlated diagnostic capture. Everything in it refers
// to the same instant: the health report that (for trip captures)
// contains the escalated watchdog, the world counters, membership and
// heat state, an optional Prometheus-registry snapshot, and the retained
// trace window in Chrome trace-event JSON.
type Bundle struct {
	// Trigger names what caused the capture: "watchdog:<name>" for
	// trips, or the caller's tag for on-demand snapshots.
	Trigger string `json:"trigger"`
	// Level is the worst watchdog level at capture time.
	Level runtime.WatchLevel `json:"level"`
	// Detail carries the tripping watchdog's one-liner ("" on demand).
	Detail string `json:"detail,omitempty"`
	// Pulse and Time locate the capture on the pulse/trace clock.
	Pulse uint64 `json:"pulse"`
	Time  int64  `json:"time_ns"`

	Health  runtime.HealthReport `json:"health"`
	Stats   runtime.WorldStats   `json:"stats"`
	Members []string             `json:"members"`
	HeatTop []runtime.HeatSample `json:"heat_top,omitempty"`
	// Metrics is the registry snapshot in the registry's own JSON form;
	// absent unless SetMetricsSource was wired.
	Metrics json.RawMessage `json:"metrics,omitempty"`
	// Trace is the retained event window as Chrome trace-event JSON
	// (load it in Perfetto).
	Trace json.RawMessage `json:"trace"`
	// TraceEvents and TraceTotal size the window: retained vs observed.
	TraceEvents int    `json:"trace_events"`
	TraceTotal  uint64 `json:"trace_total"`
}

// Flight couples a per-rank sampled Ring to a world. Create it before
// w.Start (it installs itself as the world's tracer), then Arm it to
// capture on watchdog trips.
type Flight struct {
	w    *runtime.World
	ring *Ring
	cfg  FlightConfig
	mask uint64
	n    atomic.Uint64

	mu        sync.Mutex
	metricsFn func() []byte
	bundles   []*Bundle
}

// NewFlight builds the recorder and installs it as w's tracer. Must run
// before w.Start, like Attach.
func NewFlight(w *runtime.World, cfg FlightConfig) *Flight {
	cfg = cfg.withDefaults()
	f := &Flight{
		w:    w,
		ring: newRing(cfg.Capacity, w.Ranks()),
		cfg:  cfg,
		mask: 1<<cfg.SampleShift - 1,
	}
	w.SetTracer(f.Record)
	return f
}

// Ring exposes the underlying event ring (for /trace.json and tests).
func (f *Flight) Ring() *Ring { return f.ring }

// Record is the tracer hook: count every event, retain 1 in 2^shift.
// With shift 0 it is exactly Ring.Record — zero allocations once the
// ring is full.
func (f *Flight) Record(ev runtime.TraceEvent) {
	if f.mask != 0 && f.n.Add(1)&f.mask != 0 {
		return
	}
	f.ring.Record(ev)
}

// Arm registers the trip capture: every watchdog escalation dumps a
// bundle. A world without watchdogs makes this a no-op.
func (f *Flight) Arm() {
	f.w.OnWatchdogTrip(func(ev runtime.WatchdogEvent) {
		b := f.capture("watchdog:" + ev.Status.Name)
		b.Detail = ev.Status.Detail
		f.keep(b)
	})
}

// SetMetricsSource wires a registry snapshot (JSON bytes) into future
// bundles. The runtime → trace → metrics import direction means the
// metrics layer injects itself here rather than being imported.
func (f *Flight) SetMetricsSource(fn func() []byte) {
	f.mu.Lock()
	f.metricsFn = fn
	f.mu.Unlock()
}

// Snapshot captures an on-demand bundle (the /debug/flight path). It
// does not enter the retained trip-bundle history.
func (f *Flight) Snapshot(trigger string) *Bundle {
	return f.capture(trigger)
}

func (f *Flight) capture(trigger string) *Bundle {
	h := f.w.Health()
	b := &Bundle{
		Trigger: trigger,
		Level:   h.Level,
		Pulse:   h.Pulse,
		Time:    int64(h.Time),
		Health:  h,
		Stats:   f.w.Stats(),
		HeatTop: f.w.HeatTop(8),
	}
	for r := 0; r < f.w.Ranks(); r++ {
		b.Members = append(b.Members, f.w.MemberState(r).String())
	}
	f.mu.Lock()
	mfn := f.metricsFn
	f.mu.Unlock()
	if mfn != nil {
		b.Metrics = json.RawMessage(mfn())
	}
	var buf bytes.Buffer
	if err := f.ring.DumpChrome(&buf); err == nil {
		b.Trace = json.RawMessage(buf.Bytes())
	}
	b.TraceEvents = len(f.ring.Events())
	b.TraceTotal = f.ring.Total()
	return b
}

func (f *Flight) keep(b *Bundle) {
	f.mu.Lock()
	f.bundles = append(f.bundles, b)
	if over := len(f.bundles) - f.cfg.MaxBundles; over > 0 {
		f.bundles = append([]*Bundle(nil), f.bundles[over:]...)
	}
	f.mu.Unlock()
}

// Bundles returns the retained trip bundles, oldest first.
func (f *Flight) Bundles() []*Bundle {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Bundle(nil), f.bundles...)
}

// Latest returns the most recent trip bundle (nil when none tripped).
func (f *Flight) Latest() *Bundle {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.bundles) == 0 {
		return nil
	}
	return f.bundles[len(f.bundles)-1]
}

// WriteBundle JSON-encodes b to w (indented: bundles are for humans and
// artifact diffing).
func WriteBundle(w io.Writer, b *Bundle) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
