// Package trace provides a bounded, concurrency-safe collector for the
// runtime's protocol trace events, with filtering, causal-journey
// reconstruction, and both text and Chrome trace-event dumping. It is
// the debugging companion a production runtime ships with: attach it to
// a world, run the workload, and read back exactly which parcels
// executed where, what was forwarded or NACKed, and how each migration
// progressed — or load the Chrome export into Perfetto and see every
// operation's journey as a span.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"nmvgas/internal/runtime"
)

// seqEvent pairs a recorded event with its global arrival sequence, so
// per-shard buffers merge back into one arrival-ordered stream.
type seqEvent struct {
	seq uint64
	ev  runtime.TraceEvent
}

// ringShard is one independently locked slice of the flight recorder.
type ringShard struct {
	mu   sync.Mutex
	buf  []seqEvent
	next int
}

func (s *ringShard) record(e seqEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, e)
		return
	}
	s.buf[s.next] = e
	s.next = (s.next + 1) % cap(s.buf)
}

func (s *ringShard) snapshot(out []seqEvent) []seqEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) < cap(s.buf) {
		return append(out, s.buf...)
	}
	out = append(out, s.buf[s.next:]...)
	return append(out, s.buf[:s.next]...)
}

// Ring is a fixed-capacity event buffer; once full, new events overwrite
// the oldest (the usual flight-recorder discipline). Internally the
// buffer may be sharded per rank (see AttachSharded) so the goroutine
// engine's concurrent localities do not serialize on one mutex; a
// sharded ring's retention is per shard, so a rank-imbalanced workload
// retains slightly different tails than a single ring would.
type Ring struct {
	shards []ringShard
	seq    atomic.Uint64 // global arrival order
	total  atomic.Uint64
}

// NewRing returns a single-shard collector holding up to capacity
// events, with exact oldest-first overwrite semantics.
func NewRing(capacity int) *Ring {
	return newRing(capacity, 1)
}

func newRing(capacity, shards int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	per := (capacity + shards - 1) / shards
	r := &Ring{shards: make([]ringShard, shards)}
	for i := range r.shards {
		r.shards[i].buf = make([]seqEvent, 0, per)
	}
	return r
}

// Attach installs a ring sharded per rank as w's tracer, so concurrent
// localities record without contending on one lock. Must run before
// w.Start.
func Attach(w *runtime.World, capacity int) *Ring {
	r := newRing(capacity, w.Ranks())
	w.SetTracer(r.Record)
	return r
}

// Record appends one event (the runtime calls this).
func (r *Ring) Record(ev runtime.TraceEvent) {
	r.total.Add(1)
	e := seqEvent{seq: r.seq.Add(1), ev: ev}
	sh := 0
	if n := len(r.shards); n > 1 {
		if sh = ev.Rank % n; sh < 0 {
			sh = 0
		}
	}
	r.shards[sh].record(e)
}

// Total returns how many events were observed (including overwritten
// ones).
func (r *Ring) Total() uint64 { return r.total.Load() }

// Events returns the retained events in arrival order.
func (r *Ring) Events() []runtime.TraceEvent {
	es := r.merged()
	out := make([]runtime.TraceEvent, len(es))
	for i, e := range es {
		out[i] = e.ev
	}
	return out
}

func (r *Ring) merged() []seqEvent {
	var es []seqEvent
	for i := range r.shards {
		es = r.shards[i].snapshot(es)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].seq < es[j].seq })
	return es
}

// Filter returns retained events matching the predicate.
func (r *Ring) Filter(pred func(runtime.TraceEvent) bool) []runtime.TraceEvent {
	var out []runtime.TraceEvent
	for _, ev := range r.Events() {
		if pred(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// CountKind returns how many retained events have the given kind.
func (r *Ring) CountKind(k runtime.TraceKind) int {
	return len(r.Filter(func(ev runtime.TraceEvent) bool { return ev.Kind == k }))
}

// Journey returns every retained event carrying the given OpID, in
// arrival order: the causal chain of one logical operation (send → NIC
// forward/NACK → queue → retransmit → exec).
func (r *Ring) Journey(opID uint64) []runtime.TraceEvent {
	return r.Filter(func(ev runtime.TraceEvent) bool { return ev.OpID == opID })
}

// Dump writes the retained events as one line each.
func (r *Ring) Dump(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintf(w, "%12v rank=%d %-14s block=%d info=%d op=%#x\n",
			ev.Time, ev.Rank, ev.Kind, ev.Block, ev.Info, ev.OpID); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one record in the Chrome trace-event JSON format
// (loadable in Perfetto / chrome://tracing).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// DumpChrome writes the retained events as Chrome trace-event JSON.
// Every operation's journey becomes one async span keyed by OpID:
// TraceSend opens it ("b"), the final TraceExec closes it ("e"), and
// protocol steps in between (forwards, NACKs, queueing, retransmits)
// are async instants ("n") on the same id. Events with no OpID render
// as thread-scoped instants. Timestamps are the runtime's trace clock
// (simulated ns under DES, wall ns under the goroutine engine)
// converted to microseconds.
func (r *Ring) DumpChrome(w io.Writer) error {
	es := r.merged()
	evs := make([]chromeEvent, 0, len(es)+1)
	evs = append(evs, chromeEvent{
		Name: "process_name", Phase: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "nmvgas"},
	})
	for _, e := range es {
		ev := e.ev
		ce := chromeEvent{
			Name: ev.Kind.String(),
			TS:   float64(ev.Time) / 1e3,
			PID:  0,
			TID:  ev.Rank,
			Args: map[string]any{
				"block": uint64(ev.Block),
				"info":  ev.Info,
				"seq":   e.seq,
			},
		}
		if ev.OpID != 0 {
			ce.Cat = "op"
			ce.ID = fmt.Sprintf("%#x", ev.OpID)
			switch ev.Span {
			case runtime.SpanBegin:
				ce.Phase = "b"
			case runtime.SpanEnd:
				ce.Phase = "e"
			default:
				ce.Phase = "n"
			}
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		evs = append(evs, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ns",
	})
}
