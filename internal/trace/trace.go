// Package trace provides a bounded, concurrency-safe collector for the
// runtime's protocol trace events, with filtering and text dumping. It is
// the debugging companion a production runtime ships with: attach it to a
// world, run the workload, and read back exactly which parcels executed
// where, what was forwarded or NACKed, and how each migration progressed.
package trace

import (
	"fmt"
	"io"
	"sync"

	"nmvgas/internal/runtime"
)

// Ring is a fixed-capacity event buffer; once full, new events overwrite
// the oldest (the usual flight-recorder discipline).
type Ring struct {
	mu    sync.Mutex
	buf   []runtime.TraceEvent
	next  int
	total uint64
}

// NewRing returns a collector holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]runtime.TraceEvent, 0, capacity)}
}

// Attach installs the ring as w's tracer. Must run before w.Start.
func Attach(w *runtime.World, capacity int) *Ring {
	r := NewRing(capacity)
	w.SetTracer(r.Record)
	return r
}

// Record appends one event (the runtime calls this).
func (r *Ring) Record(ev runtime.TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns how many events were observed (including overwritten
// ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events in arrival order.
func (r *Ring) Events() []runtime.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]runtime.TraceEvent, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Filter returns retained events matching the predicate.
func (r *Ring) Filter(pred func(runtime.TraceEvent) bool) []runtime.TraceEvent {
	var out []runtime.TraceEvent
	for _, ev := range r.Events() {
		if pred(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// CountKind returns how many retained events have the given kind.
func (r *Ring) CountKind(k runtime.TraceKind) int {
	return len(r.Filter(func(ev runtime.TraceEvent) bool { return ev.Kind == k }))
}

// Dump writes the retained events as one line each.
func (r *Ring) Dump(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintf(w, "%12v rank=%d %-14s block=%d info=%d\n",
			ev.Time, ev.Rank, ev.Kind, ev.Block, ev.Info); err != nil {
			return err
		}
	}
	return nil
}
