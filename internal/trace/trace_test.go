package trace

import (
	"strings"
	"testing"

	"nmvgas/internal/runtime"
)

func TestRingRetainsInOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Record(runtime.TraceEvent{Rank: i})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Rank != i {
			t.Fatalf("order broken: %v", evs)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 7; i++ {
		r.Record(runtime.TraceEvent{Rank: i})
	}
	if r.Total() != 7 {
		t.Fatalf("total %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, want := range []int{4, 5, 6} {
		if evs[i].Rank != want {
			t.Fatalf("ring order %v", evs)
		}
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Record(runtime.TraceEvent{Rank: 9})
	if len(r.Events()) != 1 {
		t.Fatal("zero-capacity ring lost the event")
	}
}

func TestAttachObservesProtocol(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{Ranks: 3, Mode: runtime.AGASNM, Engine: runtime.EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	ring := Attach(w, 1024)
	echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Call(lay.BlockAt(1), echo, nil))
	w.MustWait(w.Proc(0).Migrate(lay.BlockAt(1), 2))
	w.MustWait(w.Proc(0).Call(lay.BlockAt(1), echo, nil))

	if ring.CountKind(runtime.TraceSend) == 0 || ring.CountKind(runtime.TraceExec) == 0 {
		t.Fatal("no send/exec events observed")
	}
	if ring.CountKind(runtime.TraceMigrateStart) != 1 || ring.CountKind(runtime.TraceMigrateDone) != 1 {
		t.Fatalf("migration events: start=%d done=%d",
			ring.CountKind(runtime.TraceMigrateStart), ring.CountKind(runtime.TraceMigrateDone))
	}
	// The migrate-done event names the destination.
	done := ring.Filter(func(ev runtime.TraceEvent) bool { return ev.Kind == runtime.TraceMigrateDone })
	if done[0].Info != 2 {
		t.Fatalf("migrate-done info %d", done[0].Info)
	}
	var sb strings.Builder
	if err := ring.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "migrate-done") {
		t.Fatal("dump missing event kind")
	}
}

func TestTraceKindStrings(t *testing.T) {
	kinds := []runtime.TraceKind{
		runtime.TraceSend, runtime.TraceExec, runtime.TraceHostForward,
		runtime.TraceHostNack, runtime.TraceNICNack, runtime.TraceMigrateStart,
		runtime.TraceMigrateDone, runtime.TraceQueued,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("bad kind string %q", s)
		}
		seen[s] = true
	}
	if runtime.TraceKind(99).String() != "unknown" {
		t.Fatal("unknown kind string")
	}
}

func TestQueuedEventsDuringMigration(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{Ranks: 3, Mode: runtime.AGASSW, Engine: runtime.EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	ring := Attach(w, 4096)
	w.Start()
	lay, err := w.AllocLocal(1, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(0)
	mig := w.Proc(0).Migrate(g, 2)
	w.Engine().RunUntil(func() bool { return w.Locality(1).Moving(g.Block()) })
	put := w.Proc(0).Put(g, []byte{1})
	w.MustWait(mig)
	w.MustWait(put)
	if ring.CountKind(runtime.TraceQueued) == 0 {
		t.Fatal("no queued events despite a mid-migration put")
	}
}
