package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
)

func flightWorld(t *testing.T, cfg FlightConfig) (*runtime.World, *Flight) {
	t.Helper()
	w, err := runtime.NewWorld(runtime.Config{Ranks: 2, Mode: runtime.AGASNM, Engine: runtime.EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w, NewFlight(w, cfg)
}

// TestFlightWraparoundWindow: a ring fed past its capacity retains
// exactly the tail, and the snapshot's trace window reflects it.
func TestFlightWraparoundWindow(t *testing.T) {
	_, f := flightWorld(t, FlightConfig{Capacity: 8})
	const total = 50
	for i := 0; i < total; i++ {
		f.Record(runtime.TraceEvent{Time: netsim.VTime(i), Rank: i % 2, Info: uint64(i)})
	}
	b := f.Snapshot("test")
	if b.TraceTotal != total {
		t.Fatalf("total %d, want %d", b.TraceTotal, total)
	}
	if b.TraceEvents == 0 || b.TraceEvents > 8 {
		t.Fatalf("retained %d events, want (0,8]", b.TraceEvents)
	}
	// The retained window is the newest tail: every kept Info must be
	// from the last Capacity records.
	evs := f.Ring().Events()
	if len(evs) != b.TraceEvents {
		t.Fatalf("snapshot says %d events, ring has %d", b.TraceEvents, len(evs))
	}
	for _, ev := range evs {
		if ev.Info < total-8 {
			t.Fatalf("stale event %d survived wraparound (window starts at %d)", ev.Info, total-8)
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("merged window out of order at %d: %v", i, evs)
		}
	}
	if !json.Valid(b.Trace) {
		t.Fatal("bundle trace is not valid JSON")
	}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("bundle is not valid JSON")
	}
}

// TestFlightSampling: SampleShift keeps 1 in 2^shift events while
// counting every one.
func TestFlightSampling(t *testing.T) {
	_, f := flightWorld(t, FlightConfig{Capacity: 1024, SampleShift: 2})
	for i := 0; i < 400; i++ {
		f.Record(runtime.TraceEvent{Rank: i % 2})
	}
	kept := len(f.Ring().Events())
	if kept != 100 {
		t.Fatalf("kept %d of 400 at shift 2, want 100", kept)
	}
}

// TestFlightRecordAllocatesNothing pins the always-on cost: once the
// ring is warm, the record path performs zero allocations.
func TestFlightRecordAllocatesNothing(t *testing.T) {
	_, f := flightWorld(t, FlightConfig{Capacity: 64})
	ev := runtime.TraceEvent{Rank: 1, Info: 7}
	for i := 0; i < 256; i++ {
		f.Record(ev)
	}
	if allocs := testing.AllocsPerRun(1000, func() { f.Record(ev) }); allocs != 0 {
		t.Fatalf("flight record allocates %v per event, want 0", allocs)
	}
}

// TestFlightConcurrentRecordAndDump is the -race stress: writers on
// every rank race snapshot captures and trip-history reads.
func TestFlightConcurrentRecordAndDump(t *testing.T) {
	_, f := flightWorld(t, FlightConfig{Capacity: 128})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				f.Record(runtime.TraceEvent{Time: netsim.VTime(i), Rank: r % 2, Info: uint64(i)})
				i++
			}
		}(r)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		b := f.Snapshot("stress")
		if !json.Valid(b.Trace) {
			t.Error("snapshot trace invalid under concurrency")
			break
		}
		_ = f.Bundles()
	}
	close(stop)
	wg.Wait()
}

// TestFlightTripCapture: a watchdog escalation must produce a retained
// bundle whose trace window contains the anomaly's events and whose
// health report names the tripped monitor.
func TestFlightTripCapture(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{
		Ranks: 4, Mode: runtime.AGASNM, Engine: runtime.EngineDES,
		Pulse: runtime.PulseConfig{
			Enabled: true, Period: 20 * netsim.Microsecond,
			Watchdogs: runtime.WatchdogConfig{StallWarnPulses: 2, StallCriticalPulses: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	f := NewFlight(w, FlightConfig{Capacity: 512})
	f.Arm()
	f.SetMetricsSource(func() []byte { return []byte(`{"probe":true}`) })
	w.Start()
	lay, err := w.AllocCyclic(0, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	w.Proc(0).PutWait(g, []byte{0xAB})

	release := w.InjectMigrationStall()
	fut := w.Proc(0).Migrate(g, 3)
	if !w.AwaitHealth(runtime.WatchCritical, 2*time.Second) {
		t.Fatalf("stall never went critical: %+v", w.Health())
	}
	release()
	if st := runtime.MigrateStatus(w.MustWait(fut)); st != runtime.MigrateOK {
		t.Fatalf("migrate status %d", st)
	}

	bundles := f.Bundles()
	if len(bundles) == 0 {
		t.Fatal("no trip bundle captured")
	}
	b := f.Latest()
	if b.Trigger != "watchdog:"+runtime.WatchMigrationStall {
		t.Fatalf("trigger %q", b.Trigger)
	}
	if b.Level != runtime.WatchCritical {
		t.Fatalf("bundle level %v", b.Level)
	}
	if !bytes.Contains(b.Trace, []byte("migrate-start")) {
		t.Fatal("anomaly window lost: no migrate-start in bundle trace")
	}
	if !bytes.Contains(b.Metrics, []byte("probe")) {
		t.Fatalf("metrics source not captured: %s", b.Metrics)
	}
	if len(b.Members) != 4 {
		t.Fatalf("members %v", b.Members)
	}
	found := false
	for _, st := range b.Health.Watchdogs {
		if st.Name == runtime.WatchMigrationStall && st.Level == runtime.WatchCritical {
			found = true
		}
	}
	if !found {
		t.Fatalf("bundle health does not show the trip: %+v", b.Health.Watchdogs)
	}
}
