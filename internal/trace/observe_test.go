package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"nmvgas/internal/runtime"
)

// --- wraparound semantics -------------------------------------------------

func TestRingWrapTotalVsRetained(t *testing.T) {
	r := NewRing(5)
	for i := 0; i < 17; i++ {
		r.Record(runtime.TraceEvent{Rank: i, Kind: runtime.TraceSend})
	}
	if r.Total() != 17 {
		t.Fatalf("Total = %d, want 17 (overwritten events still count)", r.Total())
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("retained %d, want capacity 5", len(evs))
	}
	// The oldest retained event is #12 (0-indexed): 17 recorded, 5 kept.
	for i, ev := range evs {
		if ev.Rank != 12+i {
			t.Fatalf("wraparound order broken: %v", evs)
		}
	}
}

func TestRingWrapFilterAndCountKind(t *testing.T) {
	r := NewRing(4)
	// Record 10 events alternating kinds; only the last 4 are retained:
	// ranks 6..9 with kinds exec,send,exec,send.
	for i := 0; i < 10; i++ {
		k := runtime.TraceSend
		if i%2 == 0 {
			k = runtime.TraceExec
		}
		r.Record(runtime.TraceEvent{Rank: i, Kind: k})
	}
	if n := r.CountKind(runtime.TraceSend); n != 2 {
		t.Fatalf("CountKind(send) on wrapped ring = %d, want 2", n)
	}
	got := r.Filter(func(ev runtime.TraceEvent) bool { return ev.Kind == runtime.TraceExec })
	if len(got) != 2 || got[0].Rank != 6 || got[1].Rank != 8 {
		t.Fatalf("Filter on wrapped ring = %v", got)
	}
}

func TestShardedRingMergesInArrivalOrder(t *testing.T) {
	r := newRing(64, 4)
	for i := 0; i < 32; i++ {
		r.Record(runtime.TraceEvent{Rank: i % 4, Info: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 32 {
		t.Fatalf("retained %d, want 32", len(evs))
	}
	for i, ev := range evs {
		if ev.Info != uint64(i) {
			t.Fatalf("merge order broken at %d: %v", i, ev)
		}
	}
}

// --- concurrent record vs dump (run with -race) ---------------------------

func TestRingConcurrentRecordAndDump(t *testing.T) {
	r := newRing(256, 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Record(runtime.TraceEvent{
					Rank: rank, Kind: runtime.TraceSend,
					OpID: uint64(rank+1)<<48 | uint64(i),
				})
			}
		}(g)
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Events()
			var sink bytes.Buffer
			_ = r.DumpChrome(&sink)
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if r.Total() != 4*2000 {
		t.Fatalf("Total = %d, want %d", r.Total(), 4*2000)
	}
}

// --- Journey and Chrome export --------------------------------------------

func TestJourneyFiltersByOpID(t *testing.T) {
	r := NewRing(16)
	r.Record(runtime.TraceEvent{Kind: runtime.TraceSend, OpID: 7, Span: runtime.SpanBegin})
	r.Record(runtime.TraceEvent{Kind: runtime.TraceSend, OpID: 8, Span: runtime.SpanBegin})
	r.Record(runtime.TraceEvent{Kind: runtime.TraceNICForward, OpID: 7, Span: runtime.SpanInstant})
	r.Record(runtime.TraceEvent{Kind: runtime.TraceExec, OpID: 7, Span: runtime.SpanEnd})
	j := r.Journey(7)
	if len(j) != 3 {
		t.Fatalf("journey length %d, want 3", len(j))
	}
	if j[0].Span != runtime.SpanBegin || j[2].Span != runtime.SpanEnd {
		t.Fatalf("journey spans wrong: %v", j)
	}
}

// chromeDoc mirrors the export envelope for decoding in tests.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"`
		TID   int            `json:"tid"`
		ID    string         `json:"id"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestDumpChromeIsValidJSON(t *testing.T) {
	r := NewRing(16)
	r.Record(runtime.TraceEvent{Kind: runtime.TraceSend, Rank: 1, OpID: 5, Span: runtime.SpanBegin, Time: 1500})
	r.Record(runtime.TraceEvent{Kind: runtime.TraceExec, Rank: 2, OpID: 5, Span: runtime.SpanEnd, Time: 4500})
	r.Record(runtime.TraceEvent{Kind: runtime.TraceMigrateStart, Rank: 0})
	var buf bytes.Buffer
	if err := r.DumpChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// metadata + 3 events
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("exported %d events, want 4", len(doc.TraceEvents))
	}
	var b, e, inst int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "b":
			b++
			if ev.ID != "0x5" {
				t.Fatalf("span id %q, want 0x5", ev.ID)
			}
			if ev.TS != 1.5 {
				t.Fatalf("ts %v µs, want 1.5", ev.TS)
			}
		case "e":
			e++
		case "i":
			inst++
		}
	}
	if b != 1 || e != 1 || inst != 1 {
		t.Fatalf("phases b=%d e=%d i=%d", b, e, inst)
	}
}

// journeyAcceptance runs a migration-under-load workload and checks that
// a parcel sent at a migrated block reconstructs as one OpID-linked span
// chain (SpanBegin ... SpanEnd, same OpID) in the Chrome export.
func journeyAcceptance(t *testing.T, engine runtime.EngineKind) {
	t.Helper()
	w, err := runtime.NewWorld(runtime.Config{
		Ranks: 3, Mode: runtime.AGASNM, Engine: engine, Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	ring := Attach(w, 8192)
	echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := lay.BlockAt(1)
	w.MustWait(w.Proc(0).Migrate(g, 2))
	w.MustWait(w.Proc(0).Call(g, echo, nil))

	// Find the send → exec chain for a parcel aimed at the migrated block.
	sends := ring.Filter(func(ev runtime.TraceEvent) bool {
		return ev.Kind == runtime.TraceSend && ev.Block == g.Block() && ev.OpID != 0
	})
	if len(sends) == 0 {
		t.Fatal("no send event with an OpID for the migrated block")
	}
	var chained bool
	for _, s := range sends {
		j := ring.Journey(s.OpID)
		if len(j) < 2 {
			continue
		}
		if j[0].Span == runtime.SpanBegin && j[len(j)-1].Span == runtime.SpanEnd &&
			j[len(j)-1].Kind == runtime.TraceExec {
			chained = true
			// Every hop carries the originator's id.
			for _, ev := range j {
				if ev.OpID != s.OpID {
					t.Fatalf("journey leaked a foreign OpID: %v", j)
				}
			}
		}
	}
	if !chained {
		t.Fatal("no OpID-linked begin→end span chain for the migrated block's parcel")
	}

	// The Chrome export must contain that chain as an async span pair.
	var buf bytes.Buffer
	if err := ring.DumpChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
	begins := map[string]bool{}
	var paired bool
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "b" {
			begins[ev.ID] = true
		}
		if ev.Phase == "e" && begins[ev.ID] {
			paired = true
		}
	}
	if !paired {
		t.Fatal("chrome export has no begin/end async span pair")
	}
	if engine == runtime.EngineGo {
		// Satellite (a): EngineGo events must carry wall-clock stamps.
		var nonzero bool
		for _, ev := range ring.Events() {
			if ev.Time != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			t.Fatal("EngineGo trace events all have Time 0")
		}
	}
}

func TestJourneyAcceptanceDES(t *testing.T) { journeyAcceptance(t, runtime.EngineDES) }
func TestJourneyAcceptanceGo(t *testing.T)  { journeyAcceptance(t, runtime.EngineGo) }

func TestJourneyAcceptanceAllModes(t *testing.T) {
	for _, mode := range []runtime.Mode{runtime.PGAS, runtime.AGASSW, runtime.AGASNM} {
		mode := mode
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			w, err := runtime.NewWorld(runtime.Config{
				Ranks: 2, Mode: mode, Engine: runtime.EngineDES,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(w.Stop)
			ring := Attach(w, 2048)
			echo := w.Register("echo", func(c *runtime.Ctx) { c.Continue(nil) })
			w.Start()
			lay, err := w.AllocCyclic(0, 64, 2)
			if err != nil {
				t.Fatal(err)
			}
			w.MustWait(w.Proc(0).Call(lay.BlockAt(1), echo, nil))
			sends := ring.Filter(func(ev runtime.TraceEvent) bool {
				return ev.Kind == runtime.TraceSend && ev.OpID != 0
			})
			if len(sends) == 0 {
				t.Fatal("no OpID on sends")
			}
			if j := ring.Journey(sends[0].OpID); len(j) < 2 {
				t.Fatalf("journey too short: %v", j)
			}
		})
	}
}
