package gas

import (
	"fmt"
	"sync"
)

// BlockKind distinguishes plain data blocks from LCO control blocks. LCOs
// live in the global address space too (a parcel can target an LCO's GVA),
// but their payload is interpreted by the LCO layer rather than read as
// raw bytes.
type BlockKind uint8

const (
	KindData BlockKind = iota
	KindLCO
)

// Block is one unit of globally addressable memory resident on a locality.
type Block struct {
	ID    BlockID
	Kind  BlockKind
	BSize uint32
	Data  []byte
	// Home is the rank the block's GVA names as its home (where the
	// ownership directory entry lives). Residency code never consults it;
	// it exists so elastic-membership code can rebuild a block's GVA from
	// its resident image when draining or recovering a locality.
	Home int
	// Pinned blocks (LCOs, per-locality infrastructure) refuse to
	// migrate.
	Pinned bool
	// Replica marks a coherent read copy living on a non-owner
	// locality. Replicas serve reads only (the coherence protocol keeps
	// them fresh or marks them stale); they are invisible to ownership
	// routing, and writes/parcels always resolve to the master.
	Replica bool
	// Ctl holds the LCO object for KindLCO blocks; the concrete type is
	// owned by the lco package. Keeping it as any avoids an import cycle.
	Ctl any
}

// Store is a locality's table of resident blocks. It is safe for
// concurrent use: the goroutine engine reaches into stores from multiple
// locality actors, and the DES engine is single-threaded but shares the
// same code path.
type Store struct {
	mu     sync.RWMutex
	blocks map[BlockID]*Block
}

// NewStore returns an empty block store.
func NewStore() *Store {
	return &Store{blocks: make(map[BlockID]*Block)}
}

// Insert makes a block resident. It returns an error if the block is
// already resident: double-insertion indicates a broken migration or
// allocation protocol and must surface loudly in tests.
func (s *Store) Insert(b *Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blocks[b.ID]; ok {
		return fmt.Errorf("gas: block %d already resident", b.ID)
	}
	s.blocks[b.ID] = b
	return nil
}

// Create allocates and inserts a zeroed data block.
func (s *Store) Create(id BlockID, bsize uint32) (*Block, error) {
	if bsize == 0 || bsize > MaxBlockSize {
		return nil, fmt.Errorf("gas: block size %d out of range: %w", bsize, ErrBadAddress)
	}
	b := &Block{ID: id, Kind: KindData, BSize: bsize, Data: make([]byte, bsize)}
	if err := s.Insert(b); err != nil {
		return nil, err
	}
	return b, nil
}

// Get returns the resident block with the given id, or false if the block
// is not resident here (it may live on another locality).
func (s *Store) Get(id BlockID) (*Block, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blocks[id]
	return b, ok
}

// Remove evicts a block, returning it so a migration can ship its bytes.
func (s *Store) Remove(id BlockID) (*Block, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[id]
	if ok {
		delete(s.blocks, id)
	}
	return b, ok
}

// Len returns the number of resident blocks.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// Range calls fn for every resident block until fn returns false. The
// store lock is held during the walk; fn must not call back into the
// store.
func (s *Store) Range(fn func(*Block) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, b := range s.blocks {
		if !fn(b) {
			return
		}
	}
}

// ReadAt copies len(dst) bytes from the block at the given offset. It
// returns an error if the block is not resident or the range is out of
// bounds.
func (s *Store) ReadAt(id BlockID, off uint32, dst []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blocks[id]
	if !ok {
		return fmt.Errorf("gas: read of non-resident block %d", id)
	}
	if uint64(off)+uint64(len(dst)) > uint64(len(b.Data)) {
		return fmt.Errorf("gas: read [%d,%d) beyond block %d size %d: %w",
			off, uint64(off)+uint64(len(dst)), id, len(b.Data), ErrBadAddress)
	}
	copy(dst, b.Data[off:])
	return nil
}

// WriteAt copies src into the block at the given offset, with the same
// error contract as ReadAt.
func (s *Store) WriteAt(id BlockID, off uint32, src []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[id]
	if !ok {
		return fmt.Errorf("gas: write to non-resident block %d", id)
	}
	if uint64(off)+uint64(len(src)) > uint64(len(b.Data)) {
		return fmt.Errorf("gas: write [%d,%d) beyond block %d size %d: %w",
			off, uint64(off)+uint64(len(src)), id, len(b.Data), ErrBadAddress)
	}
	copy(b.Data[off:], src)
	return nil
}
