// Package gas implements the global address space substrate: 64-bit global
// virtual addresses (GVAs), fixed-size blocks, distribution layouts, and the
// per-locality block store that backs them.
//
// A GVA names a byte inside a block. The encoding is
//
//	bits 63..52  home locality (12 bits, up to 4096 localities)
//	bits 51..20  block number  (32 bits, globally unique)
//	bits 19..0   offset        (20 bits, blocks up to 1 MiB)
//
// The "home" field is a *hint*: it names the locality whose directory is
// authoritative for the block, which is also where the block's data starts
// out. Under AGAS the data may migrate away from home; the GVA does not
// change when it does.
package gas

import (
	"errors"
	"fmt"
)

// GVA is a 64-bit global virtual address. The zero value is the null
// address, which never names valid memory.
type GVA uint64

// Field widths and shifts of the GVA encoding.
const (
	HomeBits   = 12
	BlockBits  = 32
	OffsetBits = 20

	offsetShift = 0
	blockShift  = OffsetBits
	homeShift   = OffsetBits + BlockBits

	// MaxHome is the largest encodable home locality rank.
	MaxHome = 1<<HomeBits - 1
	// MaxBlock is the largest encodable block number.
	MaxBlock = 1<<BlockBits - 1
	// MaxBlockSize is the largest supported block size in bytes (the
	// offset field must be able to address every byte of a block).
	MaxBlockSize = 1 << OffsetBits

	offsetMask = 1<<OffsetBits - 1
	blockMask  = 1<<BlockBits - 1
	homeMask   = 1<<HomeBits - 1
)

// Null is the invalid address.
const Null GVA = 0

// ErrBadAddress reports a malformed or out-of-range global address.
var ErrBadAddress = errors.New("gas: bad global address")

// New assembles a GVA from its fields. It panics if a field is out of
// range; callers construct addresses from allocator-issued block numbers,
// so an out-of-range field is a programming error, not an input error.
func New(home int, block BlockID, offset uint32) GVA {
	if home < 0 || home > MaxHome {
		panic(fmt.Sprintf("gas.New: home %d out of range", home))
	}
	if offset >= MaxBlockSize {
		panic(fmt.Sprintf("gas.New: offset %d out of range", offset))
	}
	return GVA(uint64(home)<<homeShift | uint64(block)<<blockShift | uint64(offset))
}

// Home returns the home locality encoded in the address.
func (g GVA) Home() int { return int(uint64(g) >> homeShift & homeMask) }

// Block returns the block number encoded in the address.
func (g GVA) Block() BlockID { return BlockID(uint64(g) >> blockShift & blockMask) }

// Offset returns the byte offset within the block.
func (g GVA) Offset() uint32 { return uint32(uint64(g) >> offsetShift & offsetMask) }

// IsNull reports whether g is the null address.
func (g GVA) IsNull() bool { return g == Null }

// Base returns the address of byte 0 of g's block.
func (g GVA) Base() GVA { return g &^ GVA(offsetMask) }

// WithOffset returns an address in the same block at the given offset.
func (g GVA) WithOffset(offset uint32) GVA {
	if offset >= MaxBlockSize {
		panic(fmt.Sprintf("gas: WithOffset %d out of range", offset))
	}
	return g.Base() | GVA(offset)
}

// String formats the address as home/block+offset for logs and tests.
func (g GVA) String() string {
	if g.IsNull() {
		return "gva(null)"
	}
	return fmt.Sprintf("gva(%d/%d+%d)", g.Home(), g.Block(), g.Offset())
}

// BlockID is a globally unique block number. Block numbers are issued by a
// single global sequence (see Sequence) so that a block can be identified
// without reference to its current owner.
type BlockID uint32
