package gas

import (
	"testing"
	"testing/quick"
)

func TestGVARoundTrip(t *testing.T) {
	cases := []struct {
		home   int
		block  BlockID
		offset uint32
	}{
		{0, 1, 0},
		{1, 2, 3},
		{MaxHome, MaxBlock, MaxBlockSize - 1},
		{7, 123456, 4095},
		{4095, 1, 1},
	}
	for _, c := range cases {
		g := New(c.home, c.block, c.offset)
		if g.Home() != c.home || g.Block() != c.block || g.Offset() != c.offset {
			t.Errorf("New(%d,%d,%d) round-tripped to (%d,%d,%d)",
				c.home, c.block, c.offset, g.Home(), g.Block(), g.Offset())
		}
	}
}

func TestGVARoundTripProperty(t *testing.T) {
	f := func(home uint16, block uint32, offset uint32) bool {
		h := int(home) & MaxHome
		o := offset & (MaxBlockSize - 1)
		g := New(h, BlockID(block), o)
		return g.Home() == h && g.Block() == BlockID(block) && g.Offset() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGVADistinctFieldsDistinctAddresses(t *testing.T) {
	f := func(b1, b2 uint32, o1, o2 uint32) bool {
		a := New(3, BlockID(b1), o1&(MaxBlockSize-1))
		b := New(3, BlockID(b2), o2&(MaxBlockSize-1))
		same := b1 == b2 && o1&(MaxBlockSize-1) == o2&(MaxBlockSize-1)
		return (a == b) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGVANull(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must report IsNull")
	}
	if g := New(1, 1, 0); g.IsNull() {
		t.Fatalf("%v must not be null", g)
	}
	if Null.String() != "gva(null)" {
		t.Fatalf("null string = %q", Null.String())
	}
}

func TestGVABaseAndWithOffset(t *testing.T) {
	g := New(5, 77, 100)
	if got := g.Base(); got.Offset() != 0 || got.Block() != 77 || got.Home() != 5 {
		t.Fatalf("Base() = %v", got)
	}
	w := g.WithOffset(200)
	if w.Offset() != 200 || w.Block() != 77 || w.Home() != 5 {
		t.Fatalf("WithOffset = %v", w)
	}
}

func TestNewPanicsOnBadFields(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("home too big", func() { New(MaxHome+1, 1, 0) })
	mustPanic("negative home", func() { New(-1, 1, 0) })
	mustPanic("offset too big", func() { New(0, 1, MaxBlockSize) })
	mustPanic("WithOffset too big", func() { New(0, 1, 0).WithOffset(MaxBlockSize) })
}

func TestGVAString(t *testing.T) {
	g := New(2, 9, 16)
	if got, want := g.String(), "gva(2/9+16)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestGVACompositionProperties(t *testing.T) {
	f := func(home uint16, block uint32, o1, o2 uint32) bool {
		h := int(home) & MaxHome
		a := o1 & (MaxBlockSize - 1)
		b := o2 & (MaxBlockSize - 1)
		g := New(h, BlockID(block), a)
		// Base is idempotent and WithOffset composes.
		if g.Base() != g.Base().Base() {
			return false
		}
		w := g.WithOffset(b)
		return w.WithOffset(a) == g && w.Base() == g.Base()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
