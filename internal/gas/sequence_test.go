package gas

import (
	"sync"
	"testing"
)

func TestSequenceReserve(t *testing.T) {
	s := NewSequence()
	a, err := s.Reserve(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Reserve(2)
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 {
		t.Fatalf("first reservation = %d, want 1 (0 is reserved for null)", a)
	}
	if b != 5 {
		t.Fatalf("second reservation = %d, want 5", b)
	}
	if s.Issued() != 6 {
		t.Fatalf("Issued = %d, want 6", s.Issued())
	}
}

func TestSequenceZeroReserve(t *testing.T) {
	s := NewSequence()
	if _, err := s.Reserve(0); err == nil {
		t.Fatal("Reserve(0) accepted")
	}
}

func TestSequenceExhaustion(t *testing.T) {
	s := NewSequence()
	if _, err := s.Reserve(MaxBlock - 1); err != nil {
		t.Fatalf("reserving the full space failed: %v", err)
	}
	if _, err := s.Reserve(1); err == nil {
		t.Fatal("reservation beyond the block space accepted")
	}
}

func TestSequenceConcurrentUnique(t *testing.T) {
	s := NewSequence()
	const workers, per = 8, 100
	got := make([][]BlockID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id, err := s.Reserve(3)
				if err != nil {
					t.Error(err)
					return
				}
				got[w] = append(got[w], id)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[BlockID]bool)
	for _, ids := range got {
		for _, id := range ids {
			for k := BlockID(0); k < 3; k++ {
				if seen[id+k] {
					t.Fatalf("block %d issued twice", id+k)
				}
				seen[id+k] = true
			}
		}
	}
	if len(seen) != workers*per*3 {
		t.Fatalf("issued %d unique ids, want %d", len(seen), workers*per*3)
	}
}
