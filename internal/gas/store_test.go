package gas

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestStoreCreateGetRemove(t *testing.T) {
	s := NewStore()
	b, err := s.Create(7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 7 || len(b.Data) != 64 || b.Kind != KindData {
		t.Fatalf("bad block %+v", b)
	}
	got, ok := s.Get(7)
	if !ok || got != b {
		t.Fatal("Get after Create failed")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	rb, ok := s.Remove(7)
	if !ok || rb != b {
		t.Fatal("Remove failed")
	}
	if _, ok := s.Get(7); ok {
		t.Fatal("block still resident after Remove")
	}
	if _, ok := s.Remove(7); ok {
		t.Fatal("double Remove succeeded")
	}
}

func TestStoreDoubleInsertFails(t *testing.T) {
	s := NewStore()
	if _, err := s.Create(1, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(1, 8); err == nil {
		t.Fatal("double create must fail")
	}
}

func TestStoreCreateBadSize(t *testing.T) {
	s := NewStore()
	if _, err := s.Create(1, 0); err == nil {
		t.Fatal("zero-size block accepted")
	}
	if _, err := s.Create(2, MaxBlockSize+1); err == nil {
		t.Fatal("oversized block accepted")
	}
	if _, err := s.Create(3, MaxBlockSize); err != nil {
		t.Fatalf("max-size block rejected: %v", err)
	}
}

func TestStoreReadWrite(t *testing.T) {
	s := NewStore()
	if _, err := s.Create(9, 32); err != nil {
		t.Fatal(err)
	}
	src := []byte{1, 2, 3, 4}
	if err := s.WriteAt(9, 10, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4)
	if err := s.ReadAt(9, 10, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatalf("read back %v", dst)
	}
}

func TestStoreReadWriteBounds(t *testing.T) {
	s := NewStore()
	if _, err := s.Create(9, 32); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(9, 30, []byte{1, 2, 3}); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if err := s.ReadAt(9, 31, make([]byte, 2)); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if err := s.ReadAt(8, 0, make([]byte, 1)); err == nil {
		t.Fatal("read of absent block accepted")
	}
	if err := s.WriteAt(8, 0, []byte{1}); err == nil {
		t.Fatal("write to absent block accepted")
	}
}

func TestStoreRange(t *testing.T) {
	s := NewStore()
	for i := BlockID(1); i <= 5; i++ {
		if _, err := s.Create(i, 8); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	s.Range(func(*Block) bool { seen++; return true })
	if seen != 5 {
		t.Fatalf("Range visited %d blocks", seen)
	}
	seen = 0
	s.Range(func(*Block) bool { seen++; return false })
	if seen != 1 {
		t.Fatalf("early-stop Range visited %d blocks", seen)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	// The goroutine engine hits stores from many locality actors at once;
	// this must be race-free under -race.
	s := NewStore()
	const n = 64
	for i := BlockID(1); i <= n; i++ {
		if _, err := s.Create(i, 16); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := BlockID(1); i <= n; i++ {
				if err := s.WriteAt(i, 0, []byte{byte(w), 1, 2, 3, 4, 5, 6, 7}); err != nil {
					t.Error(err)
					return
				}
				if err := s.ReadAt(i, 0, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestStoreWriteReadRoundTripProperty(t *testing.T) {
	s := NewStore()
	if _, err := s.Create(1, 1024); err != nil {
		t.Fatal(err)
	}
	f := func(offRaw uint16, data []byte) bool {
		if len(data) > 256 {
			data = data[:256]
		}
		off := uint32(offRaw) % (1024 - 256)
		if err := s.WriteAt(1, off, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := s.ReadAt(1, off, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
