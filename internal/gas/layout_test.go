package gas

import (
	"testing"
	"testing/quick"
)

func mkLayout(dist Dist, home int, base BlockID, bsize, nblocks uint32, ranks int) Layout {
	return Layout{
		Base:    New(home, base, 0),
		BSize:   bsize,
		NBlocks: nblocks,
		Ranks:   ranks,
		Dist:    dist,
	}
}

func TestLayoutCyclicHomes(t *testing.T) {
	l := mkLayout(DistCyclic, 1, 10, 64, 8, 4)
	want := []int{1, 2, 3, 0, 1, 2, 3, 0}
	for d, w := range want {
		if got := l.HomeOf(uint32(d)); got != w {
			t.Errorf("HomeOf(%d) = %d, want %d", d, got, w)
		}
	}
}

func TestLayoutBlockedHomes(t *testing.T) {
	// 10 blocks over 4 ranks: per = ceil(10/4) = 3 -> ranks 0,0,0,1,1,1,2,2,2,3
	l := mkLayout(DistBlocked, 0, 10, 64, 10, 4)
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}
	for d, w := range want {
		if got := l.HomeOf(uint32(d)); got != w {
			t.Errorf("HomeOf(%d) = %d, want %d", d, got, w)
		}
	}
}

func TestLayoutLocalHomes(t *testing.T) {
	l := mkLayout(DistLocal, 3, 10, 64, 5, 8)
	for d := uint32(0); d < 5; d++ {
		if got := l.HomeOf(d); got != 3 {
			t.Errorf("HomeOf(%d) = %d, want 3", d, got)
		}
	}
}

func TestLayoutAtAddressing(t *testing.T) {
	l := mkLayout(DistCyclic, 0, 100, 32, 4, 2)
	g := l.At(0)
	if g.Block() != 100 || g.Offset() != 0 || g.Home() != 0 {
		t.Fatalf("At(0) = %v", g)
	}
	g = l.At(33) // second block, offset 1
	if g.Block() != 101 || g.Offset() != 1 || g.Home() != 1 {
		t.Fatalf("At(33) = %v", g)
	}
	g = l.At(127) // last byte
	if g.Block() != 103 || g.Offset() != 31 || g.Home() != 1 {
		t.Fatalf("At(127) = %v", g)
	}
}

func TestLayoutAtOutOfRangePanics(t *testing.T) {
	l := mkLayout(DistCyclic, 0, 100, 32, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.At(l.Bytes())
}

func TestLayoutIndexInvertsAt(t *testing.T) {
	f := func(rawIdx uint32, ranksRaw uint8, distRaw uint8) bool {
		ranks := int(ranksRaw%7) + 1
		dist := Dist(distRaw % 3)
		l := mkLayout(dist, 0, 50, 128, 64, ranks)
		i := uint64(rawIdx) % l.Bytes()
		g := l.At(i)
		got, ok := l.Index(g)
		return ok && got == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutIndexRejectsForeignBlocks(t *testing.T) {
	l := mkLayout(DistCyclic, 0, 50, 128, 4, 2)
	if _, ok := l.Index(New(0, 49, 0)); ok {
		t.Error("block below range accepted")
	}
	if _, ok := l.Index(New(0, 54, 0)); ok {
		t.Error("block above range accepted")
	}
}

func TestLayoutCyclicCoversAllRanksEvenly(t *testing.T) {
	// Property: a cyclic allocation of k*R blocks puts exactly k blocks
	// on each rank.
	f := func(kRaw, ranksRaw uint8) bool {
		k := int(kRaw%5) + 1
		r := int(ranksRaw%8) + 1
		l := mkLayout(DistCyclic, 0, 10, 8, uint32(k*r), r)
		counts := make([]int, r)
		for d := uint32(0); d < l.NBlocks; d++ {
			counts[l.HomeOf(d)]++
		}
		for _, c := range counts {
			if c != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutBlockAt(t *testing.T) {
	l := mkLayout(DistCyclic, 1, 20, 16, 3, 4)
	g := l.BlockAt(2)
	if g.Block() != 22 || g.Offset() != 0 || g.Home() != 3 {
		t.Fatalf("BlockAt(2) = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range block")
		}
	}()
	l.BlockAt(3)
}

func TestDistString(t *testing.T) {
	if DistLocal.String() != "local" || DistCyclic.String() != "cyclic" || DistBlocked.String() != "blocked" {
		t.Error("Dist.String mismatch")
	}
	if Dist(99).String() != "dist(99)" {
		t.Error("unknown Dist.String mismatch")
	}
}
