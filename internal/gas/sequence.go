package gas

import (
	"fmt"
	"sync/atomic"
)

// Sequence issues globally unique block-number ranges. The real system
// coordinates this through the runtime's bootstrap network; because all
// simulated localities share one process we use a shared atomic counter.
// This is a documented simulation shortcut: block *numbering* is not part
// of what the paper evaluates (placement and translation are), and the
// counter is only touched on allocation, never on the data path.
//
// Block number 0 is never issued so that the null GVA stays invalid.
type Sequence struct {
	next atomic.Uint64
}

// NewSequence returns a sequence whose first issued block number is 1.
func NewSequence() *Sequence {
	s := &Sequence{}
	s.next.Store(1)
	return s
}

// Reserve claims n consecutive block numbers and returns the first. It
// returns an error if the 32-bit block-number space would be exhausted.
func (s *Sequence) Reserve(n uint32) (BlockID, error) {
	if n == 0 {
		return 0, fmt.Errorf("gas: reserve of zero blocks")
	}
	end := s.next.Add(uint64(n))
	start := end - uint64(n)
	if end > MaxBlock {
		return 0, fmt.Errorf("gas: block number space exhausted (want %d, at %d)", n, start)
	}
	return BlockID(start), nil
}

// Issued returns how many block numbers have been handed out.
func (s *Sequence) Issued() uint64 { return s.next.Load() - 1 }
