package gas

import "fmt"

// Dist selects how an allocation's blocks are spread over localities.
type Dist uint8

const (
	// DistLocal places every block on the allocating locality.
	DistLocal Dist = iota
	// DistCyclic places block i on locality (home+i) mod ranks.
	DistCyclic
	// DistBlocked places contiguous runs of ceil(n/ranks) blocks per
	// locality, starting at the allocation's home.
	DistBlocked
)

func (d Dist) String() string {
	switch d {
	case DistLocal:
		return "local"
	case DistCyclic:
		return "cyclic"
	case DistBlocked:
		return "blocked"
	}
	return fmt.Sprintf("dist(%d)", uint8(d))
}

// Layout describes one allocation: a run of NBlocks consecutive block
// numbers of BSize bytes each, distributed over Ranks localities starting
// at the home encoded in Base. Layout is a value type; it is cheap to copy
// and is replicated to every locality that touches the allocation.
type Layout struct {
	Base    GVA    // block 0, offset 0
	BSize   uint32 // bytes per block
	NBlocks uint32 // number of blocks
	Ranks   int    // localities cycled over (>=1)
	Dist    Dist
}

// Bytes returns the total size of the allocation in bytes.
func (l Layout) Bytes() uint64 { return uint64(l.BSize) * uint64(l.NBlocks) }

// At returns the address of global byte index i within the allocation.
// It panics if i is out of range: workloads index with computed bounds,
// so a bad index is a bug, not an input error.
func (l Layout) At(i uint64) GVA {
	if i >= l.Bytes() {
		panic(fmt.Sprintf("gas: Layout.At(%d) out of range (%d bytes)", i, l.Bytes()))
	}
	d := uint32(i / uint64(l.BSize))
	off := uint32(i % uint64(l.BSize))
	return New(l.HomeOf(d), l.Base.Block()+BlockID(d), off)
}

// BlockAt returns the address of byte 0 of the allocation's d-th block.
func (l Layout) BlockAt(d uint32) GVA {
	if d >= l.NBlocks {
		panic(fmt.Sprintf("gas: Layout.BlockAt(%d) out of range (%d blocks)", d, l.NBlocks))
	}
	return New(l.HomeOf(d), l.Base.Block()+BlockID(d), 0)
}

// HomeOf returns the home locality of the allocation's d-th block under
// the layout's distribution.
func (l Layout) HomeOf(d uint32) int {
	base := l.Base.Home()
	switch l.Dist {
	case DistLocal:
		return base
	case DistCyclic:
		return (base + int(d)) % l.Ranks
	case DistBlocked:
		per := (l.NBlocks + uint32(l.Ranks) - 1) / uint32(l.Ranks)
		return (base + int(d/per)) % l.Ranks
	}
	panic("gas: unknown distribution")
}

// Index is the inverse of At for block-aligned addresses: it returns the
// global byte index of g within the allocation, and false if g does not
// belong to the allocation.
func (l Layout) Index(g GVA) (uint64, bool) {
	b := g.Block()
	if b < l.Base.Block() || uint32(b-l.Base.Block()) >= l.NBlocks {
		return 0, false
	}
	d := uint32(b - l.Base.Block())
	return uint64(d)*uint64(l.BSize) + uint64(g.Offset()), true
}
