package workloads

import (
	"fmt"
	"math/rand"
	"sync"

	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// ReadHot is the read-heavy skewed workload the replication evaluation
// drives: every rank fires one-sided reads at Zipf-distributed blocks of
// a shared table, with a small configurable fraction of 8-byte writes
// mixed into the same skewed stream. A handful of hot blocks absorb most
// of the reads — exactly the shape replica sets exploit — while the
// writes keep the coherence machinery honest (invalidation fan-out,
// refills, stale-window forwards).
//
// The caller owns the replication decision: allocate via Setup, then
// World.ReplicateLive(Layout(), n) (or nothing, for the baseline), then
// Run. The workload itself only issues reads and writes.
type ReadHot struct {
	w *runtime.World

	mu         sync.Mutex
	lay        gas.Layout
	zips       []*rand.Zipf
	rngs       []*rand.Rand
	readBytes  int
	writeEvery int
	st         []readHotRank
	gate       *runtime.LCORef
	reads      int64
	writes     int64
}

type readHotRank struct {
	issued, completed, target int
}

// NewReadHot builds the workload. It registers no actions (reads and
// writes are one-sided), so it may be created before or after
// World.Start.
func NewReadHot(w *runtime.World) *ReadHot {
	return &ReadHot{w: w, st: make([]readHotRank, w.Ranks())}
}

// Setup allocates the table (nblocks blocks of bsize bytes, cyclic) and
// seeds the per-rank Zipf block streams with skew s. Reads pull readBytes
// per operation — sizing them up makes the hot block's serving link, not
// the issuing host, the bottleneck, which is the regime replication
// relieves. Every writeEvery-th operation is an 8-byte write (0 disables
// writes entirely); writeEvery=20 gives the canonical 5% write mix.
func (rh *ReadHot) Setup(bsize, nblocks uint32, readBytes int, skew float64, writeEvery int, seed int64) error {
	if skew <= 1 {
		return fmt.Errorf("workloads: zipf skew must be > 1, got %v", skew)
	}
	if nblocks < 2 {
		return fmt.Errorf("workloads: readhot needs at least 2 blocks, got %d", nblocks)
	}
	if bsize%8 != 0 {
		return fmt.Errorf("workloads: readhot bsize %d not 8-byte aligned", bsize)
	}
	if readBytes < 8 || readBytes%8 != 0 || uint32(readBytes) > bsize {
		return fmt.Errorf("workloads: readhot read size %d (need 8-aligned, 8..bsize)", readBytes)
	}
	lay, err := rh.w.AllocCyclic(0, bsize, nblocks)
	if err != nil {
		return err
	}
	rh.mu.Lock()
	defer rh.mu.Unlock()
	rh.lay = lay
	rh.readBytes = readBytes
	rh.writeEvery = writeEvery
	rh.zips = rh.zips[:0]
	rh.rngs = rh.rngs[:0]
	for r := 0; r < rh.w.Ranks(); r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*7_919))
		rh.rngs = append(rh.rngs, rng)
		rh.zips = append(rh.zips, rand.NewZipf(rng, skew, 1, uint64(nblocks)-1))
	}
	return nil
}

// Layout returns the table allocation (for ReplicateLive).
func (rh *ReadHot) Layout() gas.Layout {
	rh.mu.Lock()
	defer rh.mu.Unlock()
	return rh.lay
}

// SetWriteEvery changes the write mix between runs (0 = pure reads),
// letting one table serve both a coherence-churning warm phase and a
// write-free measured phase.
func (rh *ReadHot) SetWriteEvery(n int) {
	rh.mu.Lock()
	defer rh.mu.Unlock()
	rh.writeEvery = n
}

// Reads and Writes report how many operations of each kind the last Run
// issued.
func (rh *ReadHot) Reads() int64  { rh.mu.Lock(); defer rh.mu.Unlock(); return rh.reads }
func (rh *ReadHot) Writes() int64 { rh.mu.Lock(); defer rh.mu.Unlock(); return rh.writes }

// issue fires rank's seq-th operation; its completion re-arms the window.
func (rh *ReadHot) issue(rank, seq int) {
	rh.mu.Lock()
	blk := uint32(rh.zips[rank].Uint64())
	write := rh.writeEvery > 0 && (seq+1)%rh.writeEvery == 0
	span := 8
	if !write {
		span = rh.readBytes
	}
	off := uint64(rh.rngs[rank].Intn((int(rh.lay.BSize)-span)/8+1)) * 8
	if write {
		rh.writes++
	} else {
		rh.reads++
	}
	target := rh.lay.BlockAt(blk).WithOffset(uint32(off))
	size := rh.readBytes
	rh.mu.Unlock()
	l := rh.w.Locality(rank)
	if write {
		l.PutAsync(target, parcel.PutU64(nil, uint64(seq)<<16|uint64(rank)), func() { rh.onDone(rank) })
		return
	}
	l.GetAsync(target, uint32(size), func([]byte) { rh.onDone(rank) })
}

// onDone runs on the issuing locality at each completion.
func (rh *ReadHot) onDone(rank int) {
	rh.mu.Lock()
	st := &rh.st[rank]
	st.completed++
	if st.issued < st.target {
		seq := st.issued
		st.issued++
		rh.mu.Unlock()
		rh.issue(rank, seq)
		return
	}
	done := st.completed == st.target
	gate := rh.gate
	rh.mu.Unlock()
	if done {
		rh.w.Locality(rank).SendParcel(&parcel.Parcel{Action: runtime.ALCOSet, Target: gate.G})
	}
}

// Run performs perRank operations from every rank, keeping up to window
// outstanding per rank, and waits for completion. It returns the total
// operation count.
func (rh *ReadHot) Run(perRank, window int) (int, error) {
	if perRank < 1 || window < 1 {
		return 0, fmt.Errorf("workloads: readhot needs perRank>=1 and window>=1, got %d/%d", perRank, window)
	}
	if window > perRank {
		window = perRank
	}
	rh.mu.Lock()
	if rh.lay.NBlocks == 0 {
		rh.mu.Unlock()
		return 0, fmt.Errorf("workloads: readhot Run before Setup")
	}
	rh.gate = rh.w.NewAndGate(0, rh.w.Ranks())
	rh.reads, rh.writes = 0, 0
	for r := range rh.st {
		rh.st[r] = readHotRank{target: perRank}
	}
	gate := rh.gate
	rh.mu.Unlock()
	for r := 0; r < rh.w.Ranks(); r++ {
		r := r
		prime := window
		rh.w.Proc(r).Run(func() {
			rh.mu.Lock()
			rh.st[r].issued = prime
			rh.mu.Unlock()
			for i := 0; i < prime; i++ {
				rh.issue(r, i)
			}
		})
	}
	if _, err := rh.w.Wait(gate); err != nil {
		return 0, err
	}
	return perRank * rh.w.Ranks(), nil
}
