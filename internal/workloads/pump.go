// Package workloads implements the benchmark applications the evaluation
// drives through the runtime: GUPS-style random updates, pointer chasing,
// breadth-first search over a synthetic graph, a 1-D stencil, and a
// skewed histogram. Each workload is written purely against the runtime's
// public operations (parcels, LCOs, one-sided ops, migration), so its
// performance differences across address-space modes come from the system
// under test, not from the workload code.
package workloads

import (
	"fmt"
	"sync"

	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// Pump drives a fixed number of asynchronous operations per rank while
// keeping a bounded number outstanding — the standard way throughput
// benchmarks saturate a network without unbounded queueing. Each
// operation's continuation re-arms the pump, so the window refills itself
// until the per-rank quota is met; a final gate fires when every rank
// finishes.
type Pump struct {
	w    *runtime.World
	act  parcel.ActionID
	mu   sync.Mutex
	st   []pumpRank
	gate *runtime.LCORef

	// Issue sends the seq-th operation from rank. The operation's
	// continuation must be (ContAction, ContTarget(rank)) — use Wire.
	Issue func(rank, seq int)
}

type pumpRank struct {
	issued, completed, target int
}

// NewPump registers the pump's re-arm action under name (unique per
// world). Call before World.Start, set Issue before Run.
func NewPump(w *runtime.World, name string) *Pump {
	p := &Pump{w: w, st: make([]pumpRank, w.Ranks())}
	p.act = w.Register(name, p.onDone)
	return p
}

// Wire returns the continuation (action, target) the Issue callback must
// attach to every operation it sends from rank.
func (p *Pump) Wire(rank int) (parcel.ActionID, gas.GVA) {
	return p.act, p.w.LocalityGVA(rank)
}

// onDone runs at the issuing rank when one operation completes.
func (p *Pump) onDone(c *runtime.Ctx) {
	r := c.Rank()
	p.mu.Lock()
	st := &p.st[r]
	st.completed++
	if st.issued < st.target {
		seq := st.issued
		st.issued++
		p.mu.Unlock()
		p.Issue(r, seq)
		return
	}
	done := st.completed == st.target
	gate := p.gate
	p.mu.Unlock()
	if done {
		c.ContinueTo(gate.G, nil)
	}
}

// Run primes `window` operations on every rank and returns a gate that
// fires when each rank has completed perRank operations.
func (p *Pump) Run(perRank, window int) (*runtime.LCORef, error) {
	if p.Issue == nil {
		return nil, fmt.Errorf("workloads: pump has no Issue callback")
	}
	if perRank < 1 || window < 1 {
		return nil, fmt.Errorf("workloads: pump needs perRank>=1 and window>=1, got %d/%d", perRank, window)
	}
	if window > perRank {
		window = perRank
	}
	p.gate = p.w.NewAndGate(0, p.w.Ranks())
	p.mu.Lock()
	for r := range p.st {
		p.st[r] = pumpRank{target: perRank}
	}
	p.mu.Unlock()
	for r := 0; r < p.w.Ranks(); r++ {
		r := r
		prime := window
		p.w.Proc(r).Run(func() {
			p.mu.Lock()
			p.st[r].issued = prime
			p.mu.Unlock()
			for i := 0; i < prime; i++ {
				p.Issue(r, i)
			}
		})
	}
	return p.gate, nil
}
