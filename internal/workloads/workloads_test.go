package workloads

import (
	"math"
	"testing"

	"nmvgas/internal/gas"

	"nmvgas/internal/collective"
	"nmvgas/internal/loadbal"
	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
)

var testModes = []runtime.Mode{runtime.PGAS, runtime.AGASSW, runtime.AGASNM}

func newW(t *testing.T, mode runtime.Mode, ranks int) *runtime.World {
	t.Helper()
	w, err := runtime.NewWorld(runtime.Config{Ranks: ranks, Mode: mode, Engine: runtime.EngineDES,
		Heat: runtime.HeatConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

func TestGUPSChecksumModeIndependent(t *testing.T) {
	// Translation must never change semantics: identical seeds must give
	// identical table contents in every mode.
	var sums []uint64
	for _, mode := range testModes {
		w := newW(t, mode, 4)
		g := NewGUPS(w, "gups")
		w.Start()
		if err := g.Setup(256, 16, KeysUniform, 42); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Run(100, 8); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, g.Checksum())
	}
	if sums[0] == 0 {
		t.Fatal("checksum zero: no updates landed")
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Fatalf("checksums diverge across modes: %x %x %x", sums[0], sums[1], sums[2])
	}
}

func TestGUPSZipfSkewsHeat(t *testing.T) {
	w := newW(t, runtime.AGASNM, 4)
	g := NewGUPS(w, "gups")
	w.Start()
	if err := g.Setup(256, 16, KeysZipf, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(200, 8); err != nil {
		t.Fatal(err)
	}
	heat := loadbal.HeatMap(w, g.Layout())
	var hottest, total uint64
	for _, h := range heat {
		total += h
		if h > hottest {
			hottest = h
		}
	}
	if total == 0 {
		t.Fatal("no heat recorded")
	}
	// Zipf(1.2) concentrates: the hottest of 16 blocks must be well over
	// the uniform share (1/16).
	if float64(hottest)/float64(total) < 0.2 {
		t.Fatalf("zipf heat not skewed: hottest %d of %d", hottest, total)
	}
}

func TestGUPSRejectsBadConfig(t *testing.T) {
	w := newW(t, runtime.PGAS, 2)
	g := NewGUPS(w, "gups")
	w.Start()
	if err := g.Setup(100, 4, KeysUniform, 1); err == nil {
		t.Fatal("unaligned bsize accepted")
	}
	if err := g.Setup(256, 4, KeysUniform, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0, 4); err == nil {
		t.Fatal("zero updates accepted")
	}
}

func TestChaseLandsWhereExpected(t *testing.T) {
	for _, mode := range testModes {
		w := newW(t, mode, 4)
		c := NewChase(w, "chase")
		w.Start()
		if err := c.Setup(64, 11); err != nil {
			t.Fatal(err)
		}
		for _, hops := range []uint64{0, 1, 7, 64, 130} {
			got, err := c.Run(0, hops)
			if err != nil {
				t.Fatal(err)
			}
			if want := c.Expected(hops); got != want {
				t.Fatalf("%s: %d hops landed at %v, want %v", mode, hops, got, want)
			}
		}
	}
}

func TestChaseFasterAfterConsolidation(t *testing.T) {
	// The AGAS payoff: consolidating the ring onto one locality turns
	// remote hops into local dispatches.
	w := newW(t, runtime.AGASNM, 4)
	c := NewChase(w, "chase")
	w.Start()
	if err := c.Setup(32, 3); err != nil {
		t.Fatal(err)
	}
	const hops = 128
	start := w.Now()
	if _, err := c.Run(0, hops); err != nil {
		t.Fatal(err)
	}
	remote := w.Now() - start

	if err := loadbal.Consolidate(w, 0, c.Layout(), 2); err != nil {
		t.Fatal(err)
	}
	start = w.Now()
	if _, err := c.Run(0, hops); err != nil {
		t.Fatal(err)
	}
	local := w.Now() - start
	if local*2 >= remote {
		t.Fatalf("consolidation did not help: remote %v, local %v", remote, local)
	}
}

func TestGraphGenerator(t *testing.T) {
	g := GenGraph(500, 8, 123)
	if g.N != 500 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Edges() != 500*8 {
		t.Fatalf("edges = %d, want %d", g.Edges(), 500*8)
	}
	for v := uint32(0); v < g.N; v++ {
		for _, u := range g.Out(v) {
			if u >= g.N {
				t.Fatalf("edge target %d out of range", u)
			}
		}
	}
	// Determinism.
	g2 := GenGraph(500, 8, 123)
	for i, e := range g.Targets {
		if g2.Targets[i] != e {
			t.Fatal("graph generation not deterministic")
		}
	}
	// Skew: max degree far above the average.
	var maxDeg uint32
	for v := uint32(0); v < g.N; v++ {
		if d := g.Offsets[v+1] - g.Offsets[v]; d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 16 {
		t.Fatalf("degree distribution not skewed: max %d", maxDeg)
	}
}

func TestSeqBFS(t *testing.T) {
	// A tiny hand-checked graph: 0→1→2, 0→2, 3 isolated.
	g := &Graph{N: 4, Offsets: []uint32{0, 2, 3, 3, 3}, Targets: []uint32{1, 2, 2}}
	dist := g.SeqBFS(0)
	want := []uint32{0, 1, 1, ^uint32(0)}
	for v, d := range want {
		if dist[v] != d {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
}

func TestBFSMatchesSequential(t *testing.T) {
	for _, mode := range testModes {
		w := newW(t, mode, 4)
		ops := collective.New(w)
		b := NewBFS(w, ops, "bfs")
		w.Start()
		g := GenGraph(200, 4, 9)
		if err := b.Setup(g, 16, gas.DistCyclic); err != nil {
			t.Fatal(err)
		}
		edges, levels, err := b.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if edges == 0 || levels == 0 {
			t.Fatalf("%s: degenerate run: %d edges, %d levels", mode, edges, levels)
		}
		ref := g.SeqBFS(0)
		for v := uint32(0); v < g.N; v++ {
			if got := b.Dist(v); got != ref[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", mode, v, got, ref[v])
			}
		}
	}
}

func TestBFSAfterRebalanceStillCorrect(t *testing.T) {
	w := newW(t, runtime.AGASNM, 4)
	ops := collective.New(w)
	b := NewBFS(w, ops, "bfs")
	w.Start()
	g := GenGraph(200, 4, 10)
	if err := b.Setup(g, 16, gas.DistCyclic); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := loadbal.Rebalance(w, 0, b.Layout()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Run(0); err != nil {
		t.Fatal(err)
	}
	ref := g.SeqBFS(0)
	for v := uint32(0); v < g.N; v++ {
		if got := b.Dist(v); got != ref[v] {
			t.Fatalf("dist[%d] = %d, want %d after rebalance", v, got, ref[v])
		}
	}
}

func TestStencilConservesHeatAndSpreads(t *testing.T) {
	for _, mode := range testModes {
		w := newW(t, mode, 4)
		s := NewStencil(w, "st")
		w.Start()
		if err := s.Setup(16, 8, nil, 10*netsim.Nanosecond); err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Sum()-1.0) > 1e-9 {
			t.Fatalf("initial heat = %v", s.Sum())
		}
		mid := s.Cells() / 2
		before := s.Cell(mid)
		if err := s.Run(10); err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Sum()-1.0) > 1e-6 {
			t.Fatalf("%s: heat not conserved: %v", mode, s.Sum())
		}
		if s.Cell(mid) >= before {
			t.Fatalf("%s: spike did not diffuse", mode)
		}
		if s.Cell(mid-3) == 0 {
			t.Fatalf("%s: heat did not spread", mode)
		}
	}
}

func TestStencilCrossesBlockBoundaries(t *testing.T) {
	w := newW(t, runtime.AGASNM, 4)
	s := NewStencil(w, "st")
	w.Start()
	if err := s.Setup(4, 8, nil, 0); err != nil {
		t.Fatal(err)
	}
	// Spike at cell 16 (block 4); after enough steps heat must appear in
	// block 3 (cell 15) and block 5 (cell 20).
	if err := s.Run(8); err != nil {
		t.Fatal(err)
	}
	if s.Cell(15) == 0 || s.Cell(20) == 0 {
		t.Fatalf("heat stuck at block boundary: c15=%v c20=%v", s.Cell(15), s.Cell(20))
	}
}

func TestStencilAdaptiveBeatsStaticUnderImbalance(t *testing.T) {
	run := func(adapt bool) netsim.VTime {
		w := newW(t, runtime.AGASNM, 4)
		s := NewStencil(w, "st")
		w.Start()
		// Rank 0 is 8x slower than the rest.
		slow := []float64{8, 1, 1, 1}
		if err := s.Setup(64, 16, slow, 50*netsim.Nanosecond); err != nil {
			t.Fatal(err)
		}
		if adapt {
			if err := s.AdaptPartition(0); err != nil {
				t.Fatal(err)
			}
		}
		start := w.Now()
		if err := s.Run(5); err != nil {
			t.Fatal(err)
		}
		return w.Now() - start
	}
	static, adaptive := run(false), run(true)
	if adaptive >= static {
		t.Fatalf("adaptive (%v) not faster than static (%v)", adaptive, static)
	}
}

func TestStencilNumericsUnaffectedByAdaptation(t *testing.T) {
	run := func(adapt bool) []float64 {
		w := newW(t, runtime.AGASNM, 4)
		s := NewStencil(w, "st")
		w.Start()
		if err := s.Setup(8, 8, []float64{4, 1, 1, 1}, 0); err != nil {
			t.Fatal(err)
		}
		if adapt {
			if err := s.AdaptPartition(0); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(6); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, s.Cells())
		for i := range out {
			out[i] = s.Cell(uint64(i))
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("cell %d diverges: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHistogramTotalExact(t *testing.T) {
	for _, mode := range testModes {
		w := newW(t, mode, 4)
		h := NewHistogram(w, "hist")
		w.Start()
		if err := h.Setup(32, 8, 1.5, 3); err != nil {
			t.Fatal(err)
		}
		n, err := h.Run(150, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got := h.Total(); got != uint64(n) {
			t.Fatalf("%s: total = %d, want %d", mode, got, n)
		}
	}
}

func TestHistogramRejectsBadSkew(t *testing.T) {
	w := newW(t, runtime.PGAS, 2)
	h := NewHistogram(w, "hist")
	w.Start()
	if err := h.Setup(8, 4, 1.0, 1); err == nil {
		t.Fatal("skew 1.0 accepted")
	}
}

func TestPumpValidation(t *testing.T) {
	w := newW(t, runtime.PGAS, 2)
	p := NewPump(w, "p")
	w.Start()
	if _, err := p.Run(10, 4); err == nil {
		t.Fatal("pump without Issue accepted")
	}
	p.Issue = func(rank, seq int) {}
	if _, err := p.Run(0, 4); err == nil {
		t.Fatal("zero perRank accepted")
	}
}

func TestReadHotSkewAndMix(t *testing.T) {
	// The Zipf stream must concentrate on low-numbered blocks, the write
	// mix must follow writeEvery, and replication must not change what
	// the workload observes (same op counts, all completions fire).
	for _, mode := range testModes {
		w := newW(t, mode, 4)
		rh := NewReadHot(w)
		w.Start()
		if err := rh.Setup(256, 8, 64, 1.6, 10, 7); err != nil {
			t.Fatal(err)
		}
		if err := w.ReplicateLive(rh.Layout(), 2); err != nil {
			t.Fatal(err)
		}
		total, err := rh.Run(100, 4)
		if err != nil {
			t.Fatal(err)
		}
		if total != 400 {
			t.Fatalf("mode %v: total ops %d, want 400", mode, total)
		}
		if rh.Reads()+rh.Writes() != 400 {
			t.Fatalf("mode %v: reads %d + writes %d != 400", mode, rh.Reads(), rh.Writes())
		}
		if rh.Writes() != 40 {
			t.Fatalf("mode %v: writes %d, want every 10th of 400", mode, rh.Writes())
		}
		if w.Stats().ReplicaReads == 0 {
			t.Fatalf("mode %v: skewed reads never hit a replica", mode)
		}
	}
}

func TestReadHotRejectsBadConfig(t *testing.T) {
	w := newW(t, runtime.PGAS, 2)
	rh := NewReadHot(w)
	w.Start()
	for _, bad := range []func() error{
		func() error { return rh.Setup(256, 8, 64, 0.9, 10, 1) },  // skew <= 1
		func() error { return rh.Setup(256, 1, 64, 1.5, 10, 1) },  // too few blocks
		func() error { return rh.Setup(250, 8, 64, 1.5, 10, 1) },  // unaligned block
		func() error { return rh.Setup(256, 8, 0, 1.5, 10, 1) },   // zero read size
		func() error { return rh.Setup(256, 8, 512, 1.5, 10, 1) }, // read > block
	} {
		if err := bad(); err == nil {
			t.Fatal("bad config accepted")
		}
	}
	if _, err := rh.Run(10, 2); err == nil {
		t.Fatal("Run before a successful Setup accepted")
	}
}
