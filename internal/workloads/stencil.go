package workloads

import (
	"fmt"
	"math"
	"sync"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// Stencil is a 1-D heat-diffusion kernel over a blocked distribution.
// Each timestep runs two phases per block, each driven by one parcel to
// the block's current owner:
//
//  1. halo: fetch the neighbouring blocks' edge cells with one-sided
//     gets and stash them (no block is written during this phase, so the
//     exchange reads a consistent timestep);
//  2. compute: apply the three-point update using the stashed halos and
//     charge the simulated compute cost, scaled by the owner rank's
//     slowdown factor.
//
// Per-rank slowdown factors model heterogeneous nodes; the adaptive
// variant migrates blocks from slow ranks to fast ones between steps,
// which only the AGAS modes can do.
type Stencil struct {
	w       *runtime.World
	halo    parcel.ActionID
	compute parcel.ActionID
	lay     gas.Layout
	perB    uint32 // cells per block

	mu    sync.Mutex
	slow  []float64    // per-rank compute multiplier (1.0 = nominal)
	cost  netsim.VTime // simulated cost per cell at multiplier 1
	halos map[uint32][2]float64
}

const (
	stencilAlpha = 0.25
	stencilEdge  = 0.0 // fixed boundary value
)

// NewStencil registers the stencil actions. Call before World.Start.
func NewStencil(w *runtime.World, name string) *Stencil {
	s := &Stencil{w: w, halos: make(map[uint32][2]float64)}
	s.halo = w.Register(name+".halo", s.onHalo)
	s.compute = w.Register(name+".compute", s.onCompute)
	return s
}

// Setup allocates nblocks blocks of perBlock float64 cells, blocked
// distribution, with a hot spike in the middle, and sets per-rank
// slowdown factors (nil means all 1.0).
func (s *Stencil) Setup(perBlock, nblocks uint32, slow []float64, cellCost netsim.VTime) error {
	if perBlock < 2 {
		return fmt.Errorf("workloads: stencil needs >=2 cells per block")
	}
	lay, err := s.w.AllocBlocked(0, perBlock*8, nblocks)
	if err != nil {
		return err
	}
	s.lay = lay
	s.perB = perBlock
	s.cost = cellCost
	if slow == nil {
		slow = make([]float64, s.w.Ranks())
		for i := range slow {
			slow[i] = 1
		}
	}
	if len(slow) != s.w.Ranks() {
		return fmt.Errorf("workloads: %d slow factors for %d ranks", len(slow), s.w.Ranks())
	}
	s.slow = slow
	// Initial condition: unit spike in the middle cell.
	mid := uint64(nblocks) * uint64(perBlock) / 2
	s.writeCell(mid, 1.0)
	return nil
}

// Layout returns the cell allocation.
func (s *Stencil) Layout() gas.Layout { return s.lay }

func (s *Stencil) cellAddr(i uint64) gas.GVA { return s.lay.At(i * 8) }

func (s *Stencil) writeCell(i uint64, v float64) {
	g := s.cellAddr(i)
	blk := s.mustFind(g.Block())
	copy(blk.Data[g.Offset():], parcel.PutU64(nil, math.Float64bits(v)))
}

// Cell reads cell i wherever its block lives (driver-side verification).
func (s *Stencil) Cell(i uint64) float64 {
	g := s.cellAddr(i)
	blk := s.mustFind(g.Block())
	return math.Float64frombits(parcel.U64(blk.Data, int(g.Offset())))
}

// Cells returns the total cell count.
func (s *Stencil) Cells() uint64 { return uint64(s.lay.NBlocks) * uint64(s.perB) }

// Sum returns the total heat (conserved away from the boundary).
func (s *Stencil) Sum() float64 {
	var sum float64
	for i := uint64(0); i < s.Cells(); i++ {
		sum += s.Cell(i)
	}
	return sum
}

// onHalo fetches both neighbour edge cells and stashes them for the
// compute phase. Payload: block index u32, gate GVA u64.
func (s *Stencil) onHalo(c *runtime.Ctx) {
	d := parcel.U32(c.P.Payload, 0)
	gate := gas.GVA(parcel.U64(c.P.Payload, 4))
	if c.Local(s.lay.BlockAt(d)) == nil {
		panic("stencil: halo ran against non-resident block")
	}
	var left, right float64 = stencilEdge, stencilEdge
	need, done := 0, 0
	if d > 0 {
		need++
	}
	if d+1 < s.lay.NBlocks {
		need++
	}
	finish := func() {
		s.mu.Lock()
		s.halos[d] = [2]float64{left, right}
		s.mu.Unlock()
		c.ContinueTo(gate, nil)
	}
	if need == 0 {
		finish()
		return
	}
	onOne := func() {
		if done++; done == need {
			finish()
		}
	}
	if d > 0 {
		c.Get(s.lay.BlockAt(d-1).WithOffset((s.perB-1)*8), 8, func(b []byte) {
			left = math.Float64frombits(parcel.U64(b, 0))
			onOne()
		})
	}
	if d+1 < s.lay.NBlocks {
		c.Get(s.lay.BlockAt(d+1), 8, func(b []byte) {
			right = math.Float64frombits(parcel.U64(b, 0))
			onOne()
		})
	}
}

// onCompute applies the update using the stashed halos.
func (s *Stencil) onCompute(c *runtime.Ctx) {
	d := parcel.U32(c.P.Payload, 0)
	gate := gas.GVA(parcel.U64(c.P.Payload, 4))
	data := c.Local(s.lay.BlockAt(d))
	if data == nil {
		panic("stencil: compute ran against non-resident block")
	}
	s.mu.Lock()
	h := s.halos[d]
	mult := s.slow[c.Rank()]
	s.mu.Unlock()

	n := int(s.perB)
	cells := make([]float64, n)
	for i := 0; i < n; i++ {
		cells[i] = math.Float64frombits(parcel.U64(data, i*8))
	}
	for i := 0; i < n; i++ {
		l, r := h[0], h[1]
		if i > 0 {
			l = cells[i-1]
		}
		if i < n-1 {
			r = cells[i+1]
		}
		nv := cells[i] + stencilAlpha*(l-2*cells[i]+r)
		copy(data[i*8:], parcel.PutU64(nil, math.Float64bits(nv)))
	}
	c.Charge(netsim.VTime(float64(s.cost) * float64(n) * mult))
	c.ContinueTo(gate, nil)
}

// phase sends one action per block and waits for all contributions.
func (s *Stencil) phase(act parcel.ActionID) error {
	gate := s.w.NewAndGate(0, int(s.lay.NBlocks))
	for d := uint32(0); d < s.lay.NBlocks; d++ {
		payload := parcel.PutU32(nil, d)
		payload = parcel.PutU64(payload, uint64(gate.G))
		s.w.Proc(0).Invoke(s.lay.BlockAt(d), act, payload)
	}
	_, err := s.w.Wait(gate)
	return err
}

// Step advances every block by one timestep.
func (s *Stencil) Step() error {
	if err := s.phase(s.halo); err != nil {
		return err
	}
	return s.phase(s.compute)
}

// Run advances steps timesteps.
func (s *Stencil) Run(steps int) error {
	for i := 0; i < steps; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// AdaptPartition migrates blocks so per-rank block counts are inversely
// proportional to the slowdown factors (a slow rank keeps fewer blocks).
// Only meaningful under the AGAS modes.
func (s *Stencil) AdaptPartition(from int) error {
	s.mu.Lock()
	inv := make([]float64, len(s.slow))
	var sum float64
	for r, f := range s.slow {
		inv[r] = 1 / f
		sum += inv[r]
	}
	s.mu.Unlock()

	n := s.lay.NBlocks
	counts := make([]uint32, len(inv))
	var assigned uint32
	for r := range inv {
		counts[r] = uint32(float64(n) * inv[r] / sum)
		assigned += counts[r]
	}
	for r := 0; assigned < n; r = (r + 1) % len(counts) {
		counts[r]++
		assigned++
	}
	// Assign blocks contiguously in index order (preserves halo
	// locality) and migrate the ones whose target differs.
	var futs []*runtime.LCORef
	d := uint32(0)
	for r, cnt := range counts {
		for i := uint32(0); i < cnt; i++ {
			g := s.lay.BlockAt(d)
			if !s.residentAt(g.Block(), r) {
				futs = append(futs, s.w.Proc(from).Migrate(g, r))
			}
			d++
		}
	}
	for _, f := range futs {
		if _, err := s.w.Wait(f); err != nil {
			return err
		}
	}
	return nil
}

func (s *Stencil) residentAt(b gas.BlockID, r int) bool {
	_, ok := s.w.Locality(r).Store().Get(b)
	return ok
}

func (s *Stencil) mustFind(b gas.BlockID) *gas.Block {
	for r := 0; r < s.w.Ranks(); r++ {
		if blk, ok := s.w.Locality(r).Store().Get(b); ok {
			return blk
		}
	}
	panic(fmt.Sprintf("stencil: block %d unreachable", b))
}
